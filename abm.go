// Package abm is a pure-Go reproduction of "ABM: Active Buffer
// Management in Datacenters" (SIGCOMM 2022): a packet-level
// discrete-event simulator for shared-memory datacenter switches, the
// ABM buffer-sharing algorithm with every baseline the paper compares
// against (DT, Complete Sharing, Complete Partitioning, FAB, Cisco IB,
// and the control-plane ABM approximation), five congestion-control
// algorithms (Cubic, DCTCP, TIMELY, PowerTCP, θ-PowerTCP), the paper's
// workloads, and the fluid-model analysis from its appendix.
//
// The package exposes three levels of API:
//
//   - Experiment: run one evaluation cell (fabric + workloads +
//     buffer-management scheme) and obtain the paper's metrics. This is
//     what the figures and benchmarks use.
//   - Simulation: build a leaf-spine fabric and drive flows manually for
//     custom scenarios.
//   - Analysis: closed-form burst tolerance and isolation bounds
//     (Theorems 1-3, Eqs. 6-11) without running any simulation.
package abm

import (
	"io"

	"abm/internal/analytic"
	"abm/internal/bm"
	"abm/internal/cc"
	"abm/internal/experiments"
	"abm/internal/metrics"
	"abm/internal/scenario"
	"abm/internal/sim"
	"abm/internal/topo"
	"abm/internal/trace"
	"abm/internal/units"
	"abm/internal/workload"
)

// Re-exported quantity types. These are stable aliases of the internal
// representations so all package APIs interoperate.
type (
	// Time is simulated time in picoseconds.
	Time = units.Time
	// Rate is a data rate in bits per second.
	Rate = units.Rate
	// ByteCount is an amount of data in bytes.
	ByteCount = units.ByteCount
)

// Common constants re-exported for convenience.
const (
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second

	Kilobyte = units.Kilobyte
	Megabyte = units.Megabyte

	GigabitPerSec = units.GigabitPerSec
)

// BMSchemes lists the available buffer-management policies.
func BMSchemes() []string { return bm.Names() }

// CCAlgorithms lists the available congestion-control algorithms.
func CCAlgorithms() []string { return cc.Names() }

// Experiment is one evaluation cell: a buffer-management scheme facing
// the paper's workloads on a leaf-spine fabric.
type Experiment = experiments.Cell

// ExperimentResult is the outcome of an experiment.
type ExperimentResult = experiments.Result

// CCAssignment binds a congestion-control algorithm to a priority for
// mixed-protocol experiments (Fig. 8).
type CCAssignment = experiments.CCAssignment

// Summary carries the paper's headline metrics for one run.
type Summary = metrics.Summary

// Scale selects the fabric size for experiments.
type Scale = experiments.Scale

// Fabric scales.
const (
	ScaleSmall  = experiments.ScaleSmall
	ScaleMedium = experiments.ScaleMedium
	ScalePaper  = experiments.ScalePaper
)

// ParseScale resolves "small", "medium" or "paper".
func ParseScale(name string) (Scale, error) { return experiments.ParseScale(name) }

// RunExperiment executes one evaluation cell.
func RunExperiment(e Experiment) (ExperimentResult, error) { return experiments.Run(e) }

// RunExperimentDetailed executes one cell and additionally returns the
// metrics collector with every flow record, for tracing and custom
// analysis.
func RunExperimentDetailed(e Experiment) (ExperimentResult, *metrics.Collector, error) {
	return experiments.RunDetailed(e)
}

// Scenario is the declarative description of one run: fabric shape
// (including oversubscription and asymmetric link rates), buffer model,
// buffer-management and scheduler policy, workload mix, shard count,
// telemetry, duration and seed. Every entry point — experiments, the
// CLIs, the Simulation API — compiles down to one of these.
type Scenario = scenario.Scenario

// ScenarioResult is the outcome of a scenario run, embedding the
// fully-resolved spec it executed.
type ScenarioResult = scenario.Result

// LoadScenario reads a scenario spec from a JSON file. The result is
// unresolved; overrides may be applied before running.
func LoadScenario(path string) (Scenario, error) { return scenario.Load(path) }

// ParseScenario decodes a scenario spec from JSON, rejecting unknown
// fields.
func ParseScenario(data []byte) (Scenario, error) { return scenario.Parse(data) }

// RunScenario resolves and executes one scenario on the engine its
// Shards field selects.
func RunScenario(s Scenario) (ScenarioResult, error) {
	res, _, err := scenario.Run(s)
	return res, err
}

// RunScenarioDetailed is RunScenario, additionally returning the
// metrics collector with every flow record.
func RunScenarioDetailed(s Scenario) (ScenarioResult, *metrics.Collector, error) {
	return scenario.Run(s)
}

// SetScenarioField assigns one scenario field by its dotted JSON-tag
// path (e.g. "switch.bm", "fabric.uplink_gbps"), parsing the value by
// the field's type — the mechanism sweep grids use for axes.
func SetScenarioField(s *Scenario, path, value string) error {
	return scenario.SetField(s, path, value)
}

// WriteFlowTrace dumps flow records as a TSV table.
func WriteFlowTrace(w io.Writer, flows []FlowRecord) error { return trace.WriteFlows(w, flows) }

// FigureIDs lists the reproducible paper figures.
func FigureIDs() []string { return experiments.FigureIDs }

// RunFigure regenerates one of the paper's figures as a TSV table.
func RunFigure(id string, scale Scale, seed int64, w io.Writer) error {
	return experiments.RunFigure(id, scale, seed, w)
}

// BurstScenario is the analytic Figure 5 setting: a steady-state buffer
// plus an arriving burst. Its methods evaluate DT's and ABM's burst
// tolerance in closed form.
type BurstScenario = analytic.BurstScenario

// PriorityLoad describes one priority's congestion for the steady-state
// formulas.
type PriorityLoad = analytic.PriorityLoad

// DTSteadyThreshold evaluates Eq. 6 of the paper.
func DTSteadyThreshold(b ByteCount, alpha float64, prios []PriorityLoad) ByteCount {
	return analytic.DTSteadyThreshold(b, alpha, prios)
}

// ABMMinGuarantee evaluates Theorem 1.
func ABMMinGuarantee(b ByteCount, alphaP, sumAlphas float64) ByteCount {
	return analytic.ABMMinGuarantee(b, alphaP, sumAlphas)
}

// ABMMaxAllocation evaluates Theorem 2.
func ABMMaxAllocation(b ByteCount, alphaP float64) ByteCount {
	return analytic.ABMMaxAllocation(b, alphaP)
}

// ABMDrainTimeBound evaluates Theorem 3.
func ABMDrainTimeBound(b ByteCount, alphaP float64, bandwidth Rate) Time {
	return analytic.ABMDrainTimeBound(b, alphaP, bandwidth)
}

// Simulation wraps a live fabric for custom scenarios: start flows by
// hand or attach the paper's workload generators, then run the virtual
// clock.
type Simulation struct {
	sim *sim.Simulator
	net *topo.Network
	col *metrics.Collector
}

// SimulationConfig parameterizes a custom fabric.
type SimulationConfig struct {
	Seed int64

	// Fabric dimensions; zero values select the paper's 8x8x32 at 10G.
	Spines       int
	Leaves       int
	HostsPerLeaf int
	LinkRate     Rate
	LinkDelay    Time

	QueuesPerPort int

	// BM names the buffer-management scheme (see BMSchemes). Empty
	// selects DT. UpdateInterval applies to ABM-approx.
	BM             string
	UpdateInterval Time

	// BufferKBPerPortPerGbps sizes the switch buffer (§4.3); zero selects
	// the Trident2 value of 9.6.
	BufferKBPerPortPerGbps float64

	// Headroom reserves this fraction of the buffer for first-RTT
	// packets; negative disables, zero selects 1/8 for ABM/IB and 0
	// otherwise.
	Headroom float64

	// Alphas are the per-priority DT/ABM parameters; empty selects 0.5
	// everywhere. AlphaUnscheduled defaults to 64 (§3.3).
	Alphas           []float64
	AlphaUnscheduled float64

	// EnableINT stamps per-hop telemetry (required by PowerTCP).
	EnableINT bool
}

// Scenario converts the config to the declarative spec the scenario
// layer builds fabrics from.
func (cfg SimulationConfig) Scenario() Scenario {
	sc := Scenario{
		Seed: cfg.Seed,
		Fabric: scenario.Fabric{
			Spines:       cfg.Spines,
			Leaves:       cfg.Leaves,
			HostsPerLeaf: cfg.HostsPerLeaf,
			LinkGbps:     float64(cfg.LinkRate) / float64(units.GigabitPerSec),
			LinkDelay:    scenario.Duration(cfg.LinkDelay),
		},
		Buffer: scenario.Buffer{
			KBPerPortPerGbps: cfg.BufferKBPerPortPerGbps,
			QueuesPerPort:    cfg.QueuesPerPort,
			AlphaUnscheduled: cfg.AlphaUnscheduled,
		},
		Switch: scenario.Switch{
			BM:             cfg.BM,
			UpdateInterval: scenario.Duration(cfg.UpdateInterval),
			EnableINT:      cfg.EnableINT,
		},
	}
	// The sentinel float maps to the spec's explicit pointer: positive
	// pins the fraction, negative disables, zero keeps the scheme default.
	switch {
	case cfg.Headroom > 0:
		v := cfg.Headroom
		sc.Buffer.HeadroomFrac = &v
	case cfg.Headroom < 0:
		v := 0.0
		sc.Buffer.HeadroomFrac = &v
	}
	// This config's alpha vector pads missing entries with 0.5 rather
	// than replicating a single entry; expand here so the spec's
	// single-entry shorthand doesn't reinterpret it.
	if len(cfg.Alphas) > 0 {
		qpp := cfg.QueuesPerPort
		if qpp <= 0 {
			qpp = 1
		}
		alphas := make([]float64, qpp)
		for i := range alphas {
			alphas[i] = 0.5
			if i < len(cfg.Alphas) && cfg.Alphas[i] > 0 {
				alphas[i] = cfg.Alphas[i]
			}
		}
		sc.Buffer.Alphas = alphas
	}
	return sc
}

// NewSimulation builds a fabric.
func NewSimulation(cfg SimulationConfig) (*Simulation, error) {
	return NewSimulationFromScenario(cfg.Scenario())
}

// NewSimulationFromScenario builds a fabric from a declarative scenario
// spec (its workload and duration fields are ignored — the caller
// drives traffic and the clock).
func NewSimulationFromScenario(sc Scenario) (*Simulation, error) {
	_, eng, net, _, err := scenario.BuildFabric(sc)
	if err != nil {
		return nil, err
	}
	return &Simulation{sim: eng, net: net, col: &metrics.Collector{}}, nil
}

// NumHosts returns the number of servers in the fabric.
func (s *Simulation) NumHosts() int { return s.net.NumHosts() }

// BaseRTT returns the fabric's longest-path propagation RTT.
func (s *Simulation) BaseRTT() Time { return s.net.BaseRTT() }

// Now returns the current simulated time.
func (s *Simulation) Now() Time { return s.sim.Now() }

// StartFlow launches one flow using the named congestion-control
// algorithm. onComplete (may be nil) fires when every byte is
// acknowledged.
func (s *Simulation) StartFlow(src, dst int, size ByteCount, prio uint8,
	ccName string, onComplete func(fct Time)) error {
	factory, err := cc.NewFactory(ccName)
	if err != nil {
		return err
	}
	start := s.sim.Now()
	rec := metrics.FlowRecord{
		Class: metrics.ClassOther,
		Prio:  prio,
		Size:  size,
		Start: start,
		Ideal: s.net.IdealFCT(src, dst, size),
	}
	s.col.AddFlow(rec)
	idx := len(s.col.Flows) - 1
	id := s.net.StartFlow(src, dst, size, prio, factory(), func(now Time) {
		s.col.Flows[idx].End = now
		s.col.Flows[idx].Finished = true
		if onComplete != nil {
			onComplete(now - start)
		}
	})
	s.col.Flows[idx].ID = id
	return nil
}

// AttachWebSearch starts the paper's Poisson web-search workload at the
// given bisection load.
func (s *Simulation) AttachWebSearch(load float64, ccName string, prio uint8) (*workload.WebSearch, error) {
	factory, err := cc.NewFactory(ccName)
	if err != nil {
		return nil, err
	}
	ws := &workload.WebSearch{Net: s.net, Load: load, CC: factory, Prio: prio, Collect: s.col}
	ws.Start()
	return ws, nil
}

// AttachIncast starts the paper's query/response incast workload.
func (s *Simulation) AttachIncast(requestSize ByteCount, fanout int, qps float64,
	ccName string, prio uint8) (*workload.Incast, error) {
	factory, err := cc.NewFactory(ccName)
	if err != nil {
		return nil, err
	}
	ic := &workload.Incast{
		Net: s.net, RequestSize: requestSize, Fanout: fanout,
		QueryRate: qps, CC: factory, Prio: prio, Collect: s.col,
	}
	ic.Start()
	return ic, nil
}

// Run advances the virtual clock to the given absolute time.
func (s *Simulation) Run(until Time) {
	s.sim.RunUntil(until)
}

// Drain stops the switch tickers and runs the calendar dry; call once at
// the end of a scenario.
func (s *Simulation) Drain() {
	s.net.Stop()
	s.sim.Run()
}

// Flows returns the records of all flows started so far.
func (s *Simulation) Flows() []metrics.FlowRecord { return s.col.Flows }

// Summarize computes the paper's headline metrics for the run.
func (s *Simulation) Summarize() Summary {
	return s.col.Summarize(s.net.Cfg.LinkRate)
}

// TotalDrops returns fabric-wide packet drops.
func (s *Simulation) TotalDrops() int64 { return s.net.TotalDrops() }

// FlowClass labels re-exported for filtering Flows().
const (
	ClassWebSearch = metrics.ClassWebSearch
	ClassIncast    = metrics.ClassIncast
	ClassOther     = metrics.ClassOther
)

// FlowRecord re-exported for Flows().
type FlowRecord = metrics.FlowRecord

// Percentile computes the p-th percentile of vals.
func Percentile(vals []float64, p float64) float64 { return metrics.Percentile(vals, p) }
