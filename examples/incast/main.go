// Incast: reproduce the paper's headline scenario — the distributed
// file-system query/response workload colliding with web-search
// background traffic — and compare every buffer-management scheme on
// tail flow-completion time. This is Figure 6 at one load point.
//
// The run is declared in the committed scenario.json next to this file;
// the program only varies the buffer-management scheme across it.
package main

import (
	"fmt"
	"log"
	"os"

	"abm"
)

// loadScenario finds the example's committed spec whether the program
// runs from this directory or the repository root.
func loadScenario(name string) abm.Scenario {
	for _, path := range []string{"scenario.json", "examples/" + name + "/scenario.json"} {
		if _, err := os.Stat(path); err != nil {
			continue
		}
		s, err := abm.LoadScenario(path)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	log.Fatalf("scenario.json not found (run from the repo root or examples/%s)", name)
	panic("unreachable")
}

func main() {
	base := loadScenario("incast")
	fmt.Println("Buffer management under incast (web-search at 60% load, request = 30% of buffer)")
	fmt.Println()
	fmt.Printf("%-6s %18s %18s %14s %12s\n", "scheme", "p99 incast FCT", "p99 short FCT", "p99 buffer", "throughput")

	for _, scheme := range []string{"DT", "FAB", "CS", "IB", "ABM"} {
		sc := base.Clone()
		if err := abm.SetScenarioField(&sc, "switch.bm", scheme); err != nil {
			log.Fatal(err)
		}
		res, err := abm.RunScenario(sc)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-6s %17.1fx %17.1fx %13.1f%% %11.1f%%\n",
			scheme, s.P99IncastSlowdown, s.P99ShortSlowdown,
			100*s.P99BufferFrac, 100*s.AvgThroughputFrac)
	}
	fmt.Println()
	fmt.Println("ABM absorbs the bursts (lowest incast tail) without sacrificing throughput;")
	fmt.Println("complete sharing (CS) fills the buffer; DT sits in between (paper Fig. 6).")
}
