// Incast: reproduce the paper's headline scenario — the distributed
// file-system query/response workload colliding with web-search
// background traffic — and compare every buffer-management scheme on
// tail flow-completion time. This is Figure 6 at one load point.
package main

import (
	"fmt"
	"log"

	"abm"
)

func main() {
	fmt.Println("Buffer management under incast (web-search at 60% load, request = 30% of buffer)")
	fmt.Println()
	fmt.Printf("%-6s %18s %18s %14s %12s\n", "scheme", "p99 incast FCT", "p99 short FCT", "p99 buffer", "throughput")

	for _, scheme := range []string{"DT", "FAB", "CS", "IB", "ABM"} {
		res, err := abm.RunExperiment(abm.Experiment{
			Scale: abm.ScaleSmall,
			Seed:  42,
			BM:    scheme,
			Load:  0.6,
			WSCC:  "cubic",

			RequestFrac: 0.3,
			Fanout:      8,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-6s %17.1fx %17.1fx %13.1f%% %11.1f%%\n",
			scheme, s.P99IncastSlowdown, s.P99ShortSlowdown,
			100*s.P99BufferFrac, 100*s.AvgThroughputFrac)
	}
	fmt.Println()
	fmt.Println("ABM absorbs the bursts (lowest incast tail) without sacrificing throughput;")
	fmt.Println("complete sharing (CS) fills the buffer; DT sits in between (paper Fig. 6).")
}
