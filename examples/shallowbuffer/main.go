// Shallowbuffer: the paper's Figure 11 — sweep the buffer across real
// switch generations (Trident2 down to Tofino) and watch DT collapse
// below ~7KB/port/Gbps while ABM keeps the incast tail flat.
//
// The base run lives in the committed scenario.json next to this file;
// the program sweeps the chip size and the scheme across it.
package main

import (
	"fmt"
	"log"
	"os"

	"abm"
)

// loadScenario finds the example's committed spec whether the program
// runs from this directory or the repository root.
func loadScenario(name string) abm.Scenario {
	for _, path := range []string{"scenario.json", "examples/" + name + "/scenario.json"} {
		if _, err := os.Stat(path); err != nil {
			continue
		}
		s, err := abm.LoadScenario(path)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	log.Fatalf("scenario.json not found (run from the repo root or examples/%s)", name)
	panic("unreachable")
}

func main() {
	base := loadScenario("shallowbuffer")
	devices := []struct {
		name string
		kb   float64
	}{
		{"Trident2", 9.6},
		{"8KB", 8},
		{"7KB", 7},
		{"6KB", 6},
		{"Tomahawk", 5.12},
		{"Tofino", 3.44},
	}

	fmt.Println("Shallow buffers with DCTCP (web-search 40% + incast)")
	fmt.Println()
	fmt.Printf("%-10s %14s %14s %14s\n", "device", "KB/port/Gbps", "DT p99", "ABM p99")
	for _, dev := range devices {
		var vals [2]float64
		for i, scheme := range []string{"DT", "ABM"} {
			sc := base.Clone()
			for path, value := range map[string]string{
				"switch.bm":                   scheme,
				"buffer.kb_per_port_per_gbps": fmt.Sprint(dev.kb),
				// Burst sized against Trident2 so it stays constant while
				// the buffer shrinks.
				"workload.incast.request_frac": fmt.Sprint(0.25 * 9.6 / dev.kb),
			} {
				if err := abm.SetScenarioField(&sc, path, value); err != nil {
					log.Fatal(err)
				}
			}
			res, err := abm.RunScenario(sc)
			if err != nil {
				log.Fatal(err)
			}
			vals[i] = res.Summary.P99IncastSlowdown
		}
		fmt.Printf("%-10s %14.2f %13.1fx %13.1fx\n", dev.name, dev.kb, vals[0], vals[1])
	}
	fmt.Println()
	fmt.Println("ABM stays robust into Tomahawk/Tofino territory (paper Fig. 11).")
}
