// Shallowbuffer: the paper's Figure 11 — sweep the buffer across real
// switch generations (Trident2 down to Tofino) and watch DT collapse
// below ~7KB/port/Gbps while ABM keeps the incast tail flat.
package main

import (
	"fmt"
	"log"

	"abm"
)

func main() {
	devices := []struct {
		name string
		kb   float64
	}{
		{"Trident2", 9.6},
		{"8KB", 8},
		{"7KB", 7},
		{"6KB", 6},
		{"Tomahawk", 5.12},
		{"Tofino", 3.44},
	}

	fmt.Println("Shallow buffers with DCTCP (web-search 40% + incast)")
	fmt.Println()
	fmt.Printf("%-10s %14s %14s %14s\n", "device", "KB/port/Gbps", "DT p99", "ABM p99")
	for _, dev := range devices {
		var vals [2]float64
		for i, scheme := range []string{"DT", "ABM"} {
			res, err := abm.RunExperiment(abm.Experiment{
				Scale: abm.ScaleSmall,
				Seed:  42,
				BM:    scheme,
				Load:  0.4,
				WSCC:  "dctcp",
				// Burst sized against Trident2 so it stays constant while
				// the buffer shrinks.
				RequestFrac:         0.25 * 9.6 / dev.kb,
				BufferKBPerPortGbps: dev.kb,
			})
			if err != nil {
				log.Fatal(err)
			}
			vals[i] = res.Summary.P99IncastSlowdown
		}
		fmt.Printf("%-10s %14.2f %13.1fx %13.1fx\n", dev.name, dev.kb, vals[0], vals[1])
	}
	fmt.Println()
	fmt.Println("ABM stays robust into Tomahawk/Tofino territory (paper Fig. 11).")
}
