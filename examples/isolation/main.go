// Isolation: the paper's Figure 8 scenario — three traffic classes
// running different congestion-control algorithms (Cubic, DCTCP,
// θ-PowerTCP) in separate priority queues of the same shared buffer.
// Under DT the aggressive Cubic class starves the others even though
// they use different queues; ABM bounds each priority's occupancy
// (Theorem 2) and keeps them isolated.
package main

import (
	"fmt"
	"log"

	"abm"
)

func main() {
	fmt.Println("Cross-priority isolation (cubic vs dctcp vs theta-powertcp, growing cubic load)")
	fmt.Println()
	fmt.Printf("%-5s %-12s %14s %14s %16s\n", "bm", "cubic load", "p99 cubic", "p99 dctcp", "p99 theta-ptcp")

	for _, scheme := range []string{"DT", "ABM"} {
		for _, load := range []float64{0.2, 0.4, 0.6} {
			res, err := abm.RunExperiment(abm.Experiment{
				Scale:         abm.ScaleSmall,
				Seed:          42,
				BM:            scheme,
				Load:          load + 0.2,
				QueuesPerPort: 3,
				MixedCC: []abm.CCAssignment{
					{CC: "cubic", Prio: 0},
					{CC: "dctcp", Prio: 1},
				},
				RequestFrac: 0.25,
				IncastCC:    "theta-powertcp",
				IncastPrio:  2,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-5s %10.0f%% %13.1fx %13.1fx %15.1fx\n",
				scheme, load*100,
				res.PerPrioP99Short[0], res.PerPrioP99Short[1], res.PerPrioP99Short[2])
		}
	}
	fmt.Println()
	fmt.Println("Under ABM the dctcp and theta-powertcp tails stay flat as the cubic")
	fmt.Println("load grows; under DT they degrade with it (paper Fig. 8).")
}
