// Isolation: the paper's Figure 8 scenario — three traffic classes
// running different congestion-control algorithms (Cubic, DCTCP,
// θ-PowerTCP) in separate priority queues of the same shared buffer.
// Under DT the aggressive Cubic class starves the others even though
// they use different queues; ABM bounds each priority's occupancy
// (Theorem 2) and keeps them isolated.
//
// The traffic mix lives in the committed scenario.json next to this
// file; the program varies the scheme and the cubic load across it.
package main

import (
	"fmt"
	"log"
	"os"

	"abm"
)

// loadScenario finds the example's committed spec whether the program
// runs from this directory or the repository root.
func loadScenario(name string) abm.Scenario {
	for _, path := range []string{"scenario.json", "examples/" + name + "/scenario.json"} {
		if _, err := os.Stat(path); err != nil {
			continue
		}
		s, err := abm.LoadScenario(path)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	log.Fatalf("scenario.json not found (run from the repo root or examples/%s)", name)
	panic("unreachable")
}

func main() {
	base := loadScenario("isolation")
	fmt.Println("Cross-priority isolation (cubic vs dctcp vs theta-powertcp, growing cubic load)")
	fmt.Println()
	fmt.Printf("%-5s %-12s %14s %14s %16s\n", "bm", "cubic load", "p99 cubic", "p99 dctcp", "p99 theta-ptcp")

	for _, scheme := range []string{"DT", "ABM"} {
		for _, load := range []float64{0.2, 0.4, 0.6} {
			sc := base.Clone()
			if err := abm.SetScenarioField(&sc, "switch.bm", scheme); err != nil {
				log.Fatal(err)
			}
			if err := abm.SetScenarioField(&sc, "workload.load", fmt.Sprint(load+0.2)); err != nil {
				log.Fatal(err)
			}
			res, err := abm.RunScenario(sc)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-5s %10.0f%% %13.1fx %13.1fx %15.1fx\n",
				scheme, load*100,
				res.PerPrioP99Short[0], res.PerPrioP99Short[1], res.PerPrioP99Short[2])
		}
	}
	fmt.Println()
	fmt.Println("Under ABM the dctcp and theta-powertcp tails stay flat as the cubic")
	fmt.Println("load grows; under DT they degrade with it (paper Fig. 8).")
}
