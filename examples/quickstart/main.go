// Quickstart: build a small leaf-spine fabric managed by ABM, run one
// flow and one incast, and print what happened. Start here.
//
// The fabric is declared in the committed scenario.json next to this
// file — the same spec format every CLI takes via -scenario — and the
// program drives individual flows through the programmatic API.
package main

import (
	"fmt"
	"log"
	"os"

	"abm"
)

// loadScenario finds the example's committed spec whether the program
// runs from this directory or the repository root.
func loadScenario(name string) abm.Scenario {
	for _, path := range []string{"scenario.json", "examples/" + name + "/scenario.json"} {
		if _, err := os.Stat(path); err != nil {
			continue
		}
		s, err := abm.LoadScenario(path)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	log.Fatalf("scenario.json not found (run from the repo root or examples/%s)", name)
	panic("unreachable")
}

func main() {
	// A 2-spine, 2-leaf fabric with 4 hosts per leaf, 10 Gb/s links, and
	// ABM managing every switch buffer (see scenario.json).
	sim, err := abm.NewSimulationFromScenario(loadScenario("quickstart"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %d hosts, base RTT %v\n", sim.NumHosts(), sim.BaseRTT())

	// One 200KB DCTCP flow across racks.
	err = sim.StartFlow(0, 5, 200*abm.Kilobyte, 0, "dctcp", func(fct abm.Time) {
		fmt.Printf("single flow finished in %v\n", fct)
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(10 * abm.Millisecond)

	// A 7-to-1 incast burst into host 0: every other-rack host responds
	// with a share of a 400KB request at once.
	for i := 4; i < 8; i++ {
		i := i
		err = sim.StartFlow(i, 0, 100*abm.Kilobyte, 0, "dctcp", func(fct abm.Time) {
			fmt.Printf("incast responder %d finished in %v\n", i, fct)
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	sim.Run(sim.Now() + 100*abm.Millisecond)
	sim.Drain()

	fmt.Printf("\nflows: %d, fabric drops: %d\n", len(sim.Flows()), sim.TotalDrops())
	for _, f := range sim.Flows() {
		fmt.Printf("  flow %d: %v, slowdown %.2fx ideal\n", f.ID, f.Size, f.Slowdown())
	}
}
