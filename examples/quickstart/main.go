// Quickstart: build a small leaf-spine fabric managed by ABM, run one
// flow and one incast, and print what happened. Start here.
package main

import (
	"fmt"
	"log"

	"abm"
)

func main() {
	// A 2-spine, 2-leaf fabric with 4 hosts per leaf, 10 Gb/s links, and
	// ABM managing every switch buffer.
	sim, err := abm.NewSimulation(abm.SimulationConfig{
		Seed:         1,
		Spines:       2,
		Leaves:       2,
		HostsPerLeaf: 4,
		BM:           "ABM",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %d hosts, base RTT %v\n", sim.NumHosts(), sim.BaseRTT())

	// One 200KB DCTCP flow across racks.
	err = sim.StartFlow(0, 5, 200*abm.Kilobyte, 0, "dctcp", func(fct abm.Time) {
		fmt.Printf("single flow finished in %v\n", fct)
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(10 * abm.Millisecond)

	// A 7-to-1 incast burst into host 0: every other-rack host responds
	// with a share of a 400KB request at once.
	for i := 4; i < 8; i++ {
		i := i
		err = sim.StartFlow(i, 0, 100*abm.Kilobyte, 0, "dctcp", func(fct abm.Time) {
			fmt.Printf("incast responder %d finished in %v\n", i, fct)
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	sim.Run(sim.Now() + 100*abm.Millisecond)
	sim.Drain()

	fmt.Printf("\nflows: %d, fabric drops: %d\n", len(sim.Flows()), sim.TotalDrops())
	for _, f := range sim.Flows() {
		fmt.Printf("  flow %d: %v, slowdown %.2fx ideal\n", f.ID, f.Size, f.Slowdown())
	}
}
