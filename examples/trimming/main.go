// Trimming: the cut-payload AQM from the paper's Figure-1 taxonomy.
// When queues exceed the trim threshold, the switch removes payloads
// but still delivers headers, so receivers signal losses at line rate
// (duplicate ACKs) instead of waiting out a 10 ms retransmission
// timeout. This example measures how trimming changes the incast tail
// under DT, and how it compares with ABM's approach of absorbing the
// burst instead of cutting it.
package main

import (
	"fmt"
	"log"

	"abm"
)

func main() {
	fmt.Println("Cut-payload trimming vs buffer management (web-search 40% + incast 50%)")
	fmt.Println()
	fmt.Printf("%-22s %16s %16s\n", "configuration", "p99 incast FCT", "p99 short FCT")

	type variant struct {
		label string
		cell  abm.Experiment
	}
	base := abm.Experiment{
		Scale: abm.ScaleSmall, Seed: 42,
		Load: 0.4, WSCC: "cubic",
		RequestFrac: 0.5,
	}
	variants := []variant{
		{"DT", func() abm.Experiment { c := base; c.BM = "DT"; return c }()},
		{"DT + trimming", func() abm.Experiment { c := base; c.BM = "DT"; c.Trimming = true; return c }()},
		{"ABM", func() abm.Experiment { c := base; c.BM = "ABM"; return c }()},
		{"ABM + trimming", func() abm.Experiment { c := base; c.BM = "ABM"; c.Trimming = true; return c }()},
	}
	for _, v := range variants {
		res, err := abm.RunExperiment(v.cell)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %15.1fx %15.1fx\n", v.label,
			res.Summary.P99IncastSlowdown, res.Summary.P99ShortSlowdown)
	}
	fmt.Println()
	fmt.Println("Trimming helps the short-flow tail (losses surface as dupacks, not")
	fmt.Println("timeouts) but caps every queue at the trim threshold, which destroys")
	fmt.Println("ABM's burst absorption and leaves retransmissions exposed to further")
	fmt.Println("trimming — without an NDP-style receiver-driven transport, cutting")
	fmt.Println("payloads is no substitute for admitting the burst (ABM).")
}
