// Trimming: the cut-payload AQM from the paper's Figure-1 taxonomy.
// When queues exceed the trim threshold, the switch removes payloads
// but still delivers headers, so receivers signal losses at line rate
// (duplicate ACKs) instead of waiting out a 10 ms retransmission
// timeout. This example measures how trimming changes the incast tail
// under DT, and how it compares with ABM's approach of absorbing the
// burst instead of cutting it.
//
// The base run lives in the committed scenario.json next to this file;
// the program varies the scheme and the trimming switch across it.
package main

import (
	"fmt"
	"log"
	"os"

	"abm"
)

// loadScenario finds the example's committed spec whether the program
// runs from this directory or the repository root.
func loadScenario(name string) abm.Scenario {
	for _, path := range []string{"scenario.json", "examples/" + name + "/scenario.json"} {
		if _, err := os.Stat(path); err != nil {
			continue
		}
		s, err := abm.LoadScenario(path)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}
	log.Fatalf("scenario.json not found (run from the repo root or examples/%s)", name)
	panic("unreachable")
}

func main() {
	base := loadScenario("trimming")
	fmt.Println("Cut-payload trimming vs buffer management (web-search 40% + incast 50%)")
	fmt.Println()
	fmt.Printf("%-22s %16s %16s\n", "configuration", "p99 incast FCT", "p99 short FCT")

	variants := []struct {
		label    string
		bm       string
		trimming bool
	}{
		{"DT", "DT", false},
		{"DT + trimming", "DT", true},
		{"ABM", "ABM", false},
		{"ABM + trimming", "ABM", true},
	}
	for _, v := range variants {
		sc := base.Clone()
		if err := abm.SetScenarioField(&sc, "switch.bm", v.bm); err != nil {
			log.Fatal(err)
		}
		if err := abm.SetScenarioField(&sc, "switch.trimming", fmt.Sprint(v.trimming)); err != nil {
			log.Fatal(err)
		}
		res, err := abm.RunScenario(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %15.1fx %15.1fx\n", v.label,
			res.Summary.P99IncastSlowdown, res.Summary.P99ShortSlowdown)
	}
	fmt.Println()
	fmt.Println("Trimming helps the short-flow tail (losses surface as dupacks, not")
	fmt.Println("timeouts) but caps every queue at the trim threshold, which destroys")
	fmt.Println("ABM's burst absorption and leaves retransmissions exposed to further")
	fmt.Println("trimming — without an NDP-style receiver-driven transport, cutting")
	fmt.Println("payloads is no substitute for admitting the burst (ABM).")
}
