module abm

go 1.22
