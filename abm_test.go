package abm

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistriesExposed(t *testing.T) {
	if len(BMSchemes()) < 6 {
		t.Fatalf("BM schemes: %v", BMSchemes())
	}
	if len(CCAlgorithms()) < 6 {
		t.Fatalf("CC algorithms: %v", CCAlgorithms())
	}
	if len(FigureIDs()) != 13 {
		t.Fatalf("figures: %v", FigureIDs())
	}
}

func TestAnalyticFacade(t *testing.T) {
	b := ByteCount(1000)
	if got := ABMMaxAllocation(b, 1); got != 500 {
		t.Fatalf("Theorem 2 facade = %v", got)
	}
	if got := ABMMinGuarantee(b, 1, 2); got != 333 {
		t.Fatalf("Theorem 1 facade = %v", got)
	}
	if ABMDrainTimeBound(1_250_000, 1, 10*GigabitPerSec) != 500*Microsecond {
		t.Fatal("Theorem 3 facade broken")
	}
	thr := DTSteadyThreshold(1000, 1, []PriorityLoad{{Alpha: 1, Congested: 1}})
	if thr != 500 {
		t.Fatalf("Eq. 6 facade = %v", thr)
	}
	s := BurstScenario{
		B: 5 * Megabyte, PortRate: 10 * GigabitPerSec,
		Alpha: 0.5, AlphaBurst: 64,
		CongestedPorts: 8, QueuesPerPort: 2,
		BurstRate: 150 * GigabitPerSec,
	}
	if s.ABMBurstTolerance() <= s.DTBurstTolerance() {
		t.Fatal("burst tolerance facade: ABM must beat DT under load")
	}
}

func TestSimulationLifecycle(t *testing.T) {
	simn, err := NewSimulation(SimulationConfig{
		Seed: 1, Spines: 2, Leaves: 2, HostsPerLeaf: 4, BM: "ABM",
	})
	if err != nil {
		t.Fatal(err)
	}
	if simn.NumHosts() != 8 {
		t.Fatalf("hosts = %d", simn.NumHosts())
	}
	if simn.BaseRTT() != 80*Microsecond {
		t.Fatalf("base RTT = %v", simn.BaseRTT())
	}
	var fct Time
	if err := simn.StartFlow(0, 5, 50*Kilobyte, 0, "dctcp", func(d Time) { fct = d }); err != nil {
		t.Fatal(err)
	}
	simn.Run(100 * Millisecond)
	simn.Drain()
	if fct == 0 {
		t.Fatal("flow did not complete")
	}
	flows := simn.Flows()
	if len(flows) != 1 || !flows[0].Finished {
		t.Fatalf("flows = %+v", flows)
	}
	if flows[0].Slowdown() < 1 {
		t.Fatalf("slowdown = %v", flows[0].Slowdown())
	}
}

func TestSimulationWithWorkloads(t *testing.T) {
	simn, err := NewSimulation(SimulationConfig{
		Seed: 2, Spines: 2, Leaves: 2, HostsPerLeaf: 4, BM: "DT",
	})
	if err != nil {
		t.Fatal(err)
	}
	ws, err := simn.AttachWebSearch(0.3, "cubic", 0)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := simn.AttachIncast(200*Kilobyte, 4, 500, "cubic", 0)
	if err != nil {
		t.Fatal(err)
	}
	simn.Run(20 * Millisecond)
	ws.Stop()
	ic.Stop()
	simn.Run(simn.Now() + 500*Millisecond)
	simn.Drain()
	sum := simn.Summarize()
	if sum.Flows == 0 {
		t.Fatal("workloads generated nothing")
	}
}

func TestSimulationRejectsBadNames(t *testing.T) {
	if _, err := NewSimulation(SimulationConfig{BM: "bogus", Spines: 1, Leaves: 1, HostsPerLeaf: 2}); err == nil {
		t.Fatal("expected BM error")
	}
	simn, err := NewSimulation(SimulationConfig{Spines: 1, Leaves: 2, HostsPerLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := simn.StartFlow(0, 1, 1000, 0, "bogus", nil); err == nil {
		t.Fatal("expected cc error")
	}
}

func TestRunFigureFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFigure("fig4", ScaleSmall, 1, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Fatal("fig4 output missing header")
	}
	if err := RunFigure("nope", ScaleSmall, 1, &buf); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	res, err := RunExperiment(Experiment{
		Scale: ScaleSmall, Seed: 5,
		BM: "ABM", Load: 0.2, WSCC: "dctcp",
		RequestFrac: 0.2,
		Duration:    5 * Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Flows == 0 {
		t.Fatal("no flows")
	}
}

func TestPercentileFacade(t *testing.T) {
	if Percentile([]float64{1, 2, 3}, 50) != 2 {
		t.Fatal("percentile facade broken")
	}
}

func TestRunExperimentDetailedAndTrace(t *testing.T) {
	res, col, err := RunExperimentDetailed(Experiment{
		Scale: ScaleSmall, Seed: 7,
		BM: "DT", Load: 0.2, WSCC: "reno",
		Duration: 5 * Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Flows != len(col.Flows) {
		t.Fatalf("summary flows %d != collector %d", res.Summary.Flows, len(col.Flows))
	}
	var buf bytes.Buffer
	if err := WriteFlowTrace(&buf, col.Flows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "websearch") {
		t.Fatal("trace missing flow rows")
	}
}
