package abm

import (
	"testing"

	"abm/internal/experiments"
	"abm/internal/units"
)

// allocsForCell runs the cell a few times and returns the mean
// allocations per run (setup + simulation; the cell is small enough
// that both matter).
func allocsForCell(t *testing.T, cell experiments.Cell) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		if _, err := experiments.Run(cell); err != nil {
			t.Fatal(err)
		}
	})
}

// TestParallelAllocParity pins the sharded engine's allocation overhead
// against the serial loop: a shards=1 run of the Fig 6 parallel
// benchmark cell must allocate within 10% (plus a small constant for
// engine construction: workers, mailboxes, channels) of the serial run
// of the same cell. This is the regression guard for per-window churn —
// reused mailbox buffers and by-value window requests mean steady-state
// windows allocate nothing, so the two engines stay within construction
// distance of each other.
func TestParallelAllocParity(t *testing.T) {
	cell := experiments.Cell{
		Scale: experiments.ScaleMedium, Seed: 42,
		BM: "ABM", Load: 0.4, WSCC: "cubic", RequestFrac: 0.3,
		Duration: 2 * units.Millisecond,
	}
	serial := allocsForCell(t, cell)
	sharded := cell
	sharded.Shards = 1
	parallel := allocsForCell(t, sharded)

	limit := serial*1.10 + 500
	if parallel > limit {
		t.Errorf("shards=1 allocates %.0f/run vs serial %.0f/run (limit %.0f): per-window churn regressed",
			parallel, serial, limit)
	}
	t.Logf("serial %.0f allocs/run, shards=1 %.0f allocs/run", serial, parallel)
}
