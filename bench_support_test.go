package abm

import (
	"testing"

	"abm/internal/bm"
	"abm/internal/units"
)

// benchThresholdCtx builds a spread of buffer states exercising the
// threshold functions across occupancy levels.
func benchThresholdCtx() []*bm.Ctx {
	out := make([]*bm.Ctx, 0, 16)
	total := units.ByteCount(4 * units.Megabyte)
	for i := 0; i < 16; i++ {
		out = append(out, &bm.Ctx{
			Total:             total,
			Occupied:          total / 16 * units.ByteCount(i),
			QueueLen:          units.ByteCount(i) * 10 * units.Kilobyte,
			Port:              i % 4,
			Prio:              i % 2,
			Alpha:             0.5,
			AlphaUnscheduled:  64,
			NormDrain:         1.0 / float64(i%3+1),
			CongestedSamePrio: i%5 + 1,
			Unscheduled:       i%4 == 0,
			FlowID:            uint64(i),
			PacketSize:        1500,
		})
	}
	return out
}

func benchThreshold(b *testing.B, name string, ctxs []*bm.Ctx) {
	b.Helper()
	pol, err := bm.New(name, 64, units.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	var sink units.ByteCount
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += pol.Threshold(ctxs[i%len(ctxs)])
	}
	_ = sink
}
