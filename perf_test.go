package abm

// Steady-state allocation discipline for the packet pipeline. The event
// engine (internal/eventq's arena heap) and the per-simulator packet
// free list exist so that, once a topology is warmed up, pushing a
// packet through sender → NIC → link → switch MMU → port transmitter →
// link → receiver → ACK → retire touches the heap zero times. These
// tests pin that property: BenchmarkPacketLifecycle reports the
// per-packet cost and allocs/op of the full round trip, and
// TestSteadyStateZeroAlloc fails the build if a per-packet allocation
// creeps back into the hot path.

import (
	"testing"

	"abm/internal/bm"
	"abm/internal/cc"
	"abm/internal/device"
	"abm/internal/host"
	"abm/internal/obs"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/units"
)

// lifecycleFabric is the smallest closed loop exercising the full
// packet lifecycle: two hosts on a one-switch fabric with a single
// long-lived flow from a to b.
type lifecycleFabric struct {
	s  *sim.Simulator
	a  *host.Host
	b  *host.Host
	sw *device.Switch
}

func newLifecycleFabric(seed int64, sink *obs.Sink) *lifecycleFabric {
	s := sim.New(seed)
	// Hosts are faster than the switch ports so the switch is the
	// bottleneck: the DT threshold then bounds the congestion window
	// (and with it the in-flight packet population) via drops, which is
	// what makes the packet free list reach a steady high-water mark.
	mkHost := func(id packet.NodeID) *host.Host {
		return host.New(s, host.Config{
			ID: id, Rate: 40 * units.GigabitPerSec, BaseRTT: 8 * units.Microsecond,
			Obs: sink,
		})
	}
	a, b := mkHost(1), mkHost(2)
	sw := device.NewSwitch(s, device.SwitchConfig{
		ID: 10, NumPorts: 2, QueuesPerPort: 1, PortRate: 10 * units.GigabitPerSec,
		Obs: sink,
		MMU: device.MMUConfig{
			BufferSize:    150 * units.Kilobyte,
			Alphas:        []float64{0.5},
			BM:            bm.DT{},
			StatsInterval: 80 * units.Microsecond,
		},
	})
	sw.SetRouter(func(_ *device.Switch, pkt *packet.Packet) int { return int(pkt.Dst) - 1 })
	a.Connect(device.NewLink(s, units.Microsecond, sw))
	b.Connect(device.NewLink(s, units.Microsecond, sw))
	sw.ConnectPort(0, device.NewLink(s, units.Microsecond, a))
	sw.ConnectPort(1, device.NewLink(s, units.Microsecond, b))
	// One effectively-endless flow keeps the pipeline full for the whole
	// measurement; Reno reaches a stable cwnd well inside the warmup.
	a.StartFlow(1, 2, 1<<40, 0, cc.NewReno(), nil)
	return &lifecycleFabric{s: s, a: a, b: b, sw: sw}
}

// warm runs the fabric long enough for every amortized growth to
// settle: event arena, NIC and switch queue backing arrays, the packet
// free list, transport maps, and the cwnd ramp.
func (f *lifecycleFabric) warm() {
	f.s.RunUntil(20 * units.Millisecond)
}

// TestSteadyStateZeroAlloc asserts that advancing the warmed fabric —
// thousands of full packet round trips — allocates nothing, both with
// telemetry fully disabled (nil sink: the default configuration) and
// with the counter registry active (plain int64 increments through
// pre-resolved handles; no events recorded).
func TestSteadyStateZeroAlloc(t *testing.T) {
	cases := []struct {
		name string
		sink func(t *testing.T) *obs.Sink
	}{
		{"disabled", func(t *testing.T) *obs.Sink { return nil }},
		{"counters", func(t *testing.T) *obs.Sink {
			sess, err := obs.NewSession(obs.Options{Counters: true}, 1)
			if err != nil {
				t.Fatal(err)
			}
			return sess.ShardSink(0)
		}},
		{"histograms", func(t *testing.T) *obs.Sink {
			// Counters plus the streaming histograms: queue delay and
			// admission headroom record on every packet through fixed
			// arrays behind pre-resolved handles, so the hot path must
			// stay allocation-free here too.
			sess, err := obs.NewSession(obs.Options{Counters: true, Hists: true}, 1)
			if err != nil {
				t.Fatal(err)
			}
			return sess.ShardSink(0)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sink := tc.sink(t)
			f := newLifecycleFabric(42, sink)
			f.warm()
			next := f.s.Now()
			window := units.Millisecond
			before := f.b.RxBytes
			allocs := testing.AllocsPerRun(10, func() {
				next += window
				f.s.RunUntil(next)
			})
			if f.b.RxBytes == before {
				t.Fatal("no traffic flowed during the measurement window")
			}
			if allocs != 0 {
				t.Fatalf("steady-state run allocated %.1f objects per %v window, want 0", allocs, window)
			}
			if sink != nil && sink.Ctr(obs.CtrDataSent).Get() == 0 {
				t.Fatal("counter registry recorded no sends")
			}
		})
	}
}

// BenchmarkPacketLifecycle reports the cost of one packet's full
// sender→switch→receiver→ACK round trip in steady state. Each
// iteration advances the virtual clock by one wire-serialization time,
// i.e. one packet's worth of pipeline work at line rate.
func BenchmarkPacketLifecycle(b *testing.B) {
	b.ReportAllocs()
	f := newLifecycleFabric(42, nil)
	f.warm()
	perPkt := (10 * units.GigabitPerSec).TxTime(1440 + packet.HeaderBytes)
	next := f.s.Now()
	startEv := f.s.Executed()
	startRx := f.b.RxBytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next += perPkt
		f.s.RunUntil(next)
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(f.s.Executed()-startEv)/elapsed, "events/s")
	}
	if n := b.N; n > 0 {
		b.ReportMetric(float64(f.b.RxBytes-startRx)/float64(n), "bytes/op")
	}
}
