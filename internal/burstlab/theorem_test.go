package burstlab

import (
	"testing"

	"abm/internal/analytic"
	"abm/internal/bm"
	"abm/internal/units"
)

// Packet-level validation of the paper's theorems: drive a switch into
// a saturated steady state and check the measured occupancy against the
// closed-form bounds. (The burst measurement itself is irrelevant here;
// the rig's warmup produces the steady state we inspect.)

func steadyOccupancy(t *testing.T, pol func() bm.Policy, ports int) units.ByteCount {
	t.Helper()
	res := Measure(Config{
		Seed:           3,
		CongestedPorts: ports,
		QueuesPerPort:  1,
		BurstRate:      11 * units.GigabitPerSec,
		BM:             pol,
	})
	return res.SteadyOccupancy
}

// Theorem 2: ABM bounds any priority's total occupancy by
// B*alpha/(1+alpha), no matter how many of its queues are congested.
func TestTheorem2OnPacketSimulator(t *testing.T) {
	bound := analytic.ABMMaxAllocation(5*units.Megabyte, 0.5)
	for _, ports := range []int{2, 6, 12} {
		occ := steadyOccupancy(t, func() bm.Policy { return bm.ABM{} }, ports)
		// Periodic stats updates allow transient overshoot; accept 15%.
		if float64(occ) > float64(bound)*1.15 {
			t.Errorf("ABM occupancy %v at %d ports exceeds Theorem 2 bound %v", occ, ports, bound)
		}
	}
}

// The contrast: DT's occupancy grows with the congested-queue count
// right past ABM's bound (Eq. 6 — the §2.3 critique).
func TestDTExceedsABMBound(t *testing.T) {
	bound := analytic.ABMMaxAllocation(5*units.Megabyte, 0.5)
	occ := steadyOccupancy(t, func() bm.Policy { return bm.DT{} }, 12)
	if occ <= bound {
		t.Fatalf("DT occupancy %v at 12 ports should exceed %v", occ, bound)
	}
}

// Eq. 6 quantitatively: DT's measured steady occupancy tracks the
// closed form across congestion levels.
func TestEq6OnPacketSimulator(t *testing.T) {
	b := 5 * units.Megabyte
	for _, n := range []int{1, 4, 8} {
		occ := steadyOccupancy(t, func() bm.Policy { return bm.DT{} }, n)
		thr := analytic.DTSteadyThreshold(b, 0.5, []analytic.PriorityLoad{{Alpha: 0.5, Congested: n}})
		want := float64(thr) * float64(n)
		got := float64(occ)
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("n=%d: packet-level occupancy %.0f, Eq. 6 predicts %.0f", n, got, want)
		}
	}
}

// Theorem 3: with ABM the backlog of any single queue divided by its
// drain rate stays below B*alpha/((1+alpha)*b).
func TestTheorem3OnPacketSimulator(t *testing.T) {
	b := 5 * units.Megabyte
	rate := 10 * units.GigabitPerSec
	bound := analytic.ABMDrainTimeBound(b, 0.5, rate)
	// A single saturated ABM queue: its length/bandwidth is its drain
	// time (it owns the whole port).
	res := Measure(Config{
		Seed:           3,
		CongestedPorts: 1,
		QueuesPerPort:  1,
		BurstRate:      11 * units.GigabitPerSec,
		BM:             func() bm.Policy { return bm.ABM{} },
	})
	drainTime := rate.TxTime(res.SteadyOccupancy)
	if float64(drainTime) > float64(bound)*1.15 {
		t.Fatalf("drain time %v exceeds Theorem 3 bound %v", drainTime, bound)
	}
}

// Theorem 1: even with another priority saturating many ports, a fresh
// priority can still claim at least B*alpha/(1+sum alphas) of buffer —
// ABM's minimum guarantee. We saturate prio 0 on 12 ports under ABM,
// then drive an untagged burst of the second priority and require its
// admitted volume to reach the bound.
func TestTheorem1OnPacketSimulator(t *testing.T) {
	b := 5 * units.Megabyte
	res := Measure(Config{
		Seed:           5,
		Buffer:         b,
		CongestedPorts: 12,
		QueuesPerPort:  1,
		BurstRate:      12 * units.GigabitPerSec, // gentle overload
		Unscheduled:    false,                    // plain alpha admission
		BM:             func() bm.Policy { return bm.ABM{} },
	})
	// Two priorities with alpha 0.5 each: min guarantee = B*0.5/2.
	bound := analytic.ABMMinGuarantee(b, 0.5, 1.0)
	if res.Tolerance < bound*85/100 {
		t.Fatalf("priority claimed only %v, Theorem 1 guarantees ~%v", res.Tolerance, bound)
	}
}
