package burstlab

import (
	"testing"

	"abm/internal/bm"
	"abm/internal/units"
)

func dtCfg(ports, queues int, rate units.Rate) Config {
	return Config{
		Seed:           1,
		CongestedPorts: ports,
		QueuesPerPort:  queues,
		BurstRate:      rate,
		BM:             func() bm.Policy { return bm.DT{} },
	}
}

func abmCfg(ports, queues int, rate units.Rate) Config {
	c := dtCfg(ports, queues, rate)
	c.BM = func() bm.Policy { return bm.ABM{} }
	c.Unscheduled = true
	c.Headroom = 512 * units.Kilobyte
	c.Buffer = 5*units.Megabyte - 512*units.Kilobyte
	return c
}

func TestIdleBufferAbsorbsEverything(t *testing.T) {
	// No background congestion, burst at port rate: the queue drains as
	// fast as the burst arrives and nothing ever drops.
	res := Measure(dtCfg(0, 1, 10*units.GigabitPerSec))
	if res.Dropped {
		t.Fatalf("burst at drain rate must not drop: %v", res)
	}
	if res.SteadyOccupancy != 0 {
		t.Fatalf("idle switch occupancy = %v", res.SteadyOccupancy)
	}
}

func TestSteadyOccupancyMatchesEq6(t *testing.T) {
	// Four congested background queues under DT with alpha=0.5:
	// Eq. 6 occupancy = B * n*alpha/(1+n*alpha) = B/1.5... for n=4:
	// Q = B * 2/3.
	cfg := dtCfg(4, 1, 150*units.GigabitPerSec)
	res := Measure(cfg)
	wantFrac := 4 * 0.5 / (1 + 4*0.5)
	gotFrac := float64(res.SteadyOccupancy) / float64(5*units.Megabyte)
	if gotFrac < wantFrac-0.1 || gotFrac > wantFrac+0.1 {
		t.Fatalf("steady occupancy fraction %.3f, Eq. 6 predicts %.3f", gotFrac, wantFrac)
	}
}

func TestDTToleranceDecreasesWithPorts(t *testing.T) {
	rate := 150 * units.GigabitPerSec
	few := Measure(dtCfg(2, 1, rate))
	many := Measure(dtCfg(12, 1, rate))
	if !few.Dropped || !many.Dropped {
		t.Fatalf("expected drops under a 15x-line-rate burst: %v / %v", few, many)
	}
	if many.Tolerance >= few.Tolerance {
		t.Fatalf("DT tolerance must fall with congested ports: %v (2 ports) vs %v (12 ports)",
			few.Tolerance, many.Tolerance)
	}
}

func TestDTToleranceDecreasesWithQueuesPerPort(t *testing.T) {
	rate := 150 * units.GigabitPerSec
	few := Measure(dtCfg(4, 2, rate))
	many := Measure(dtCfg(4, 8, rate))
	if many.Tolerance >= few.Tolerance {
		t.Fatalf("DT tolerance must fall with queues per port: %v (2q) vs %v (8q)",
			few.Tolerance, many.Tolerance)
	}
}

func TestABMToleranceStableAcrossPorts(t *testing.T) {
	rate := 150 * units.GigabitPerSec
	base := Measure(abmCfg(2, 1, rate))
	for _, ports := range []int{6, 12} {
		res := Measure(abmCfg(ports, 1, rate))
		ratio := float64(res.Tolerance) / float64(base.Tolerance)
		if ratio < 0.6 || ratio > 1.7 {
			t.Fatalf("ABM tolerance varies %.2fx between 2 and %d ports (%v vs %v)",
				ratio, ports, base.Tolerance, res.Tolerance)
		}
	}
}

func TestABMBeatsDTUnderHeavyCongestion(t *testing.T) {
	rate := 150 * units.GigabitPerSec
	dt := Measure(dtCfg(12, 4, rate))
	abm := Measure(abmCfg(12, 4, rate))
	if abm.Tolerance <= dt.Tolerance {
		t.Fatalf("ABM tolerance %v must exceed DT %v under heavy congestion",
			abm.Tolerance, dt.Tolerance)
	}
}

func TestToleranceNeverExceedsChip(t *testing.T) {
	res := Measure(abmCfg(0, 1, 11*units.GigabitPerSec))
	if res.Tolerance > 5*units.Megabyte {
		t.Fatalf("tolerance %v exceeds the chip buffer", res.Tolerance)
	}
}

func TestMissingBurstRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Measure(Config{})
}
