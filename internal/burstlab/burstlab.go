// Package burstlab measures burst tolerance in simulation: the
// micro-benchmark behind the paper's Figure 5, run on the packet
// simulator instead of the fluid model. A single shared-memory switch is
// driven to a configurable steady state (congested background ports and
// queues), then a burst arrives at a fresh queue at rate r; the measured
// burst tolerance is the number of burst bytes admitted before the
// first burst-packet drop — Appendix A.8's definition made operational.
package burstlab

import (
	"fmt"

	"abm/internal/bm"
	"abm/internal/device"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/units"
)

// Config describes one burst-tolerance measurement.
type Config struct {
	Seed int64

	PortRate   units.Rate      // b; defaults to 10 Gb/s
	Buffer     units.ByteCount // shared pool; defaults to 5 MB
	Headroom   units.ByteCount // reserved pool for unscheduled packets
	Alpha      float64         // alpha for all priorities; defaults to 0.5
	AlphaBurst float64         // alpha for unscheduled packets; defaults to 64

	// CongestedPorts is the number of background ports with one
	// saturated queue each (Figure 5a/5c axis).
	CongestedPorts int
	// QueuesPerPort is the number of saturated queues sharing the
	// burst's port, including the burst queue (Figure 5b/5d axis).
	QueuesPerPort int

	// BurstRate is the arrival rate r of the burst.
	BurstRate units.Rate
	// Unscheduled tags burst packets with the first-RTT tag (§3.3). The
	// paper's ABM measurements assume it; DT ignores the tag.
	Unscheduled bool

	// BM constructs the policy under test.
	BM func() bm.Policy

	// StatsInterval is the MMU refresh period; defaults to 80us (one
	// fabric RTT). Zero keeps the default; negative selects instant mode.
	StatsInterval units.Time

	// PacketPayload defaults to 1440 bytes.
	PacketPayload units.ByteCount
}

func (c *Config) fillDefaults() {
	if c.PortRate <= 0 {
		c.PortRate = 10 * units.GigabitPerSec
	}
	if c.Buffer <= 0 {
		c.Buffer = 5 * units.Megabyte
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.AlphaBurst <= 0 {
		c.AlphaBurst = 64
	}
	if c.QueuesPerPort < 1 {
		c.QueuesPerPort = 1
	}
	if c.CongestedPorts < 0 {
		c.CongestedPorts = 0
	}
	if c.BurstRate <= 0 {
		panic("burstlab: burst rate required")
	}
	if c.BM == nil {
		c.BM = func() bm.Policy { return bm.DT{} }
	}
	if c.StatsInterval == 0 {
		c.StatsInterval = 80 * units.Microsecond
	}
	if c.StatsInterval < 0 {
		c.StatsInterval = 0 // instant mode
	}
	if c.PacketPayload <= 0 {
		c.PacketPayload = 1440
	}
}

// Result is one measurement.
type Result struct {
	// Tolerance is the burst bytes admitted before the first burst drop.
	Tolerance units.ByteCount
	// Dropped reports whether the burst experienced any drop; when
	// false, Tolerance is the full injected burst (the buffer absorbed
	// everything offered).
	Dropped bool
	// SteadyOccupancy is the shared-pool occupancy when the burst began.
	SteadyOccupancy units.ByteCount
}

// sink retires packets, returning them to the simulator's free list.
type sink struct {
	id  packet.NodeID
	sim *sim.Simulator
}

func (s *sink) ID() packet.NodeID          { return s.id }
func (s *sink) Receive(pkt *packet.Packet) { s.sim.FreePacket(pkt) }

// Measure runs one burst-tolerance experiment.
func Measure(cfg Config) Result {
	cfg.fillDefaults()
	s := sim.New(cfg.Seed)

	// Port 0 hosts the burst queue (plus QueuesPerPort-1 saturated
	// port-mates); ports 1..CongestedPorts carry background queues.
	numPorts := cfg.CongestedPorts + 1
	prios := 2 // prio 0: background, prio 1: burst
	if cfg.QueuesPerPort > 1 {
		prios = cfg.QueuesPerPort + 1 // port-mates each in their own queue
	}

	alphas := make([]float64, prios)
	for i := range alphas {
		alphas[i] = cfg.Alpha
	}
	sw := device.NewSwitch(s, device.SwitchConfig{
		ID:            1,
		NumPorts:      numPorts,
		QueuesPerPort: prios,
		PortRate:      cfg.PortRate,
		MMU: device.MMUConfig{
			BufferSize:       cfg.Buffer,
			Headroom:         cfg.Headroom,
			Alphas:           alphas,
			AlphaUnscheduled: cfg.AlphaBurst,
			BM:               cfg.BM(),
			StatsInterval:    cfg.StatsInterval,
		},
	})
	// Route by packet priority: all traffic to its designated port via
	// the Dst field (port index).
	sw.SetRouter(func(_ *device.Switch, pkt *packet.Packet) int { return int(pkt.Dst) })
	for i := 0; i < numPorts; i++ {
		sw.ConnectPort(i, device.NewLink(s, units.Microsecond, &sink{id: packet.NodeID(100 + i), sim: s}))
	}

	payload := cfg.PacketPayload
	wire := payload + packet.HeaderBytes
	// Overdrive the background queues at 2x line rate so they sit pinned
	// at their thresholds (the steady state of Eq. 6).
	interArrival := cfg.PortRate.TxTime(wire) / 2

	// Background generators: saturate one prio-0 queue on each congested
	// port, and the burst port's extra queues (prios 1..QueuesPerPort-1).
	var flowID uint64
	saturate := func(port int, prio uint8) {
		flowID++
		id := flowID
		var inject func()
		inject = func() {
			pkt := s.NewPacket()
			pkt.FlowID, pkt.Dst, pkt.Prio, pkt.Payload = id, packet.NodeID(port), prio, payload
			sw.Receive(pkt)
			s.After(interArrival, inject)
		}
		inject()
	}
	s.At(0, func() {
		for p := 1; p <= cfg.CongestedPorts; p++ {
			saturate(p, 0)
		}
		for q := 1; q < cfg.QueuesPerPort; q++ {
			saturate(0, uint8(q))
		}
	})

	// Warm up to steady state: several stats intervals plus drain time.
	warmup := 20 * units.MaxTime(cfg.StatsInterval, 80*units.Microsecond)
	s.RunUntil(warmup)

	res := Result{SteadyOccupancy: sw.MMU().Used()}

	// Inject the burst at rate r into the burst queue until the first
	// drop (or a 2x-buffer cap).
	burstPrio := uint8(prios - 1)
	burstGap := cfg.BurstRate.TxTime(wire)
	cap := 2 * cfg.Buffer
	burstQueue := sw.Port(0).Queue(int(burstPrio))
	dropsBefore := burstQueue.TotalDrops()

	var admitted, injected units.ByteCount
	flowID++
	burstID := flowID
	var injectBurst func()
	injectBurst = func() {
		if burstQueue.TotalDrops() > dropsBefore {
			res.Dropped = true
			s.Halt()
			return
		}
		if injected >= cap {
			s.Halt()
			return
		}
		pkt := s.NewPacket()
		pkt.FlowID, pkt.Dst, pkt.Prio, pkt.Payload = burstID, 0, burstPrio, payload
		if cfg.Unscheduled {
			pkt.Set(packet.FlagUnscheduled)
		}
		injected += wire
		sw.Receive(pkt)
		if burstQueue.TotalDrops() > dropsBefore {
			res.Dropped = true
			s.Halt()
			return
		}
		admitted += wire
		s.After(burstGap, injectBurst)
	}
	s.At(s.Now(), func() { injectBurst() })
	s.Run()
	sw.Stop()

	res.Tolerance = admitted
	if res.Tolerance > cfg.Buffer+cfg.Headroom {
		res.Tolerance = cfg.Buffer + cfg.Headroom
	}
	return res
}

// String renders the result.
func (r Result) String() string {
	return fmt.Sprintf("tolerance=%v dropped=%v steady=%v", r.Tolerance, r.Dropped, r.SteadyOccupancy)
}
