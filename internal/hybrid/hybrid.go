// Package hybrid couples a per-flow fluid approximation to the packet
// engine: flows in provable steady state are *demoted* to fluid mode —
// their per-packet events torn down, their throughput modeled as an
// arrival rate into per-queue integrators (internal/analytic) stepped
// once per epoch — while bursts, queue excursions, and every loss, mark
// or retransmission remain packet-level. Any disturbance *promotes* the
// affected flows back to packet mode with sender/receiver state
// reconstructed from the fluid trajectory.
//
// # Mode lifecycle
//
// A flow becomes a demotion candidate at launch (topo.Network.OnFlowStart)
// if it is large enough to plausibly reach steady state. Each epoch the
// controller demotes candidates that satisfy all of: an RTT estimate
// exists, no congestion signal (recovery entry, RTO, ECN mark) for
// SteadyRTTs smoothed RTTs, the congestion window stable across epochs,
// enough bytes remaining, and every queue on the routed path below the
// guard band. A fluid flow is promoted when any of: a new flow starts
// on a shared port (burst/incast), a path queue's packet+fluid occupancy
// crosses the guard band, a congestion signal arrives on a straggler
// ACK, or completion nears — so completion, like every drop and mark, is
// always observed in packet mode.
//
// # Exactness
//
// Byte counts are exact: fluid delivery is credited to the receiver
// exactly once at promotion (transport.Receiver.AdvanceTo), and the
// sender resumes from the same offset. FCT is exact in expectation —
// the fluid rate is the max-min fair share over measured spare capacity,
// capped by the flow's own cwnd/srtt demand, which is what the packet
// engine converges to in steady state. MMU admission stays coupled:
// each switch's fluid occupancy is charged against its shared buffer
// (device.MMU.SetFluidBytes), so thresholds seen by packet-mode bursts
// account for fluid traffic. The one approximation: packets that were
// in flight at demotion are presumed delivered (the demotion criteria
// make a loss among them vanishingly rare); a loss there would surface
// as a missing retransmission, never as corrupt accounting.
package hybrid

import (
	"abm/internal/analytic"
	"abm/internal/cc"
	"abm/internal/device"
	"abm/internal/host"
	"abm/internal/obs"
	"abm/internal/obs/hist"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/topo"
	"abm/internal/transport"
	"abm/internal/units"
)

// Config parameterizes the controller; scenario.Hybrid resolves into it.
type Config struct {
	// GuardBandFrac is the fraction of a queue's admission threshold at
	// which fluid flows are promoted back to packet mode (and above
	// which demotion is refused).
	GuardBandFrac float64
	// SteadyRTTs is how many smoothed RTTs must pass without a
	// congestion signal before a flow may be demoted.
	SteadyRTTs int
	// EpochDt is the fluid integration epoch.
	EpochDt units.Time
	// Obs is the telemetry sink; nil disables counters and trace events.
	Obs *obs.Sink
}

// Stats summarizes one run's hybrid activity.
type Stats struct {
	Demotions  int64
	Promotions int64
	Epochs     int64
	FluidBytes int64 // bytes delivered in fluid mode
	MaxFluid   int   // high-water concurrent fluid flows
}

// cand is a packet-mode flow being watched for steady state. The
// steadiness detector is a window band: bandW anchors the congestion
// window when the observation window (re)starts, and any excursion
// beyond ±5% restarts it — so a flow still drifting toward its
// equilibrium share (additive increase, or losing a capture contest)
// keeps resetting and is not demoted until its window genuinely holds.
type cand struct {
	id       uint64
	src, dst int
	prio     uint8
	sn       *transport.Sender
	bandW    units.ByteCount // window anchor of the current stable period
	lastUna  int64
	emaRate  float64    // EWMA of achieved goodput (payload bytes/s)
	obsAt    units.Time // when the current stable period began
	obsUna   int64      // sndUna at that point
}

// portKey names a capacity constraint: a switch egress port, or a
// source host NIC (port == -1).
type portKey struct {
	node packet.NodeID
	port int
}

// portState measures the packet traffic through one constraint and
// holds the water-filling scratch.
type portState struct {
	sw   *device.Switch // nil for a NIC
	port int
	h    *host.Host // non-nil for a NIC

	lastTx  units.ByteCount
	pktRate float64 // smoothed packet bytes/s (EWMA over epochs)
	seeded  bool    // pktRate has a first sample
	nflows  int

	capRem float64 // allocation scratch
	nact   int
	demand float64 // drain-split scratch: sum of fluid queue demand
}

func (ps *portState) txBytes() units.ByteCount {
	if ps.sw != nil {
		return ps.sw.Port(ps.port).TxBytes
	}
	return ps.h.TxBytes
}

func (ps *portState) lineRate() units.Rate {
	if ps.sw != nil {
		return ps.sw.Port(ps.port).Rate()
	}
	return ps.h.Rate()
}

// queueKey names one egress queue carrying fluid.
type queueKey struct {
	node packet.NodeID
	port int
	prio uint8
}

// queueState is the fluid integrator state of one egress queue.
type queueState struct {
	fq     *analytic.FluidQueue
	q      *device.Queue
	ps     *portState // the queue's port constraint (for spare capacity)
	sm     *swModel
	nflows int
}

// swModel is one switch's coupled fluid model; its occupancy feeds the
// MMU's fluid-bytes charge.
type swModel struct {
	sw    *device.Switch
	model *analytic.FluidModel
	qs    []*queueState
	dirty bool // queue set changed; rebuild model.Queues before stepping
}

// flow is one fluid-mode flow.
type flow struct {
	id       uint64
	src, dst int
	prio     uint8
	sn       *transport.Sender
	path     []topo.PathHop
	cons     []*portState  // NIC + path ports
	qss      []*queueState // path queues at the flow's priority

	base      int64      // stream offset (sndNxt) at demotion
	delivered float64    // fluid payload bytes delivered since demotion
	rate      float64    // wire bytes/s allocated for the current epoch
	ramp      float64    // wire bytes/s the CC has demonstrably reached
	ramp0     float64    // anchor wire rate (achieved at demotion, rebalanced)
	drain0    float64    // raw achieved wire rate at demotion (settle credit)
	eta       float64    // CC efficiency: achieved / available; 0 = uncalibrated
	pot0      float64    // potential at calibration (linear-response anchor)
	srtt      units.Time // smoothed RTT at demotion, frozen
	demotedAt units.Time
	// settleUntil: until then, packets in flight at demotion are still
	// draining through the path at ~ramp0, polluting the port counters.
	settleUntil units.Time

	frozen bool // water-filling scratch
}

// Controller runs the hybrid engine for one serial simulation.
type Controller struct {
	sim *sim.Simulator
	net *topo.Network
	cfg Config

	tick      *sim.Ticker
	lastEpoch units.Time

	cands []*cand
	flows []*flow

	ports    map[portKey]*portState
	portList []*portState
	queues   map[queueKey]*queueState
	models   map[packet.NodeID]*swModel
	modelLst []*swModel

	pathBuf []topo.PathHop // OnFlowStart scratch
	minSize units.ByteCount
	// payloadFrac converts wire rate to goodput (MSS over MSS+header):
	// port capacities are wire bytes, delivery credits are stream bytes.
	payloadFrac float64

	stats         Stats
	ctrDemotions  *obs.Counter
	ctrPromotions *obs.Counter
	ctrEpochs     *obs.Counter
	ctrFluidBytes *obs.Counter
	histResidency *hist.Histogram
	histPromoLead *hist.Histogram
}

// New builds a controller over a serial-engine network. Call Start to
// begin integration epochs and install the flow-start hook.
func New(s *sim.Simulator, n *topo.Network, cfg Config) *Controller {
	if cfg.GuardBandFrac <= 0 || cfg.GuardBandFrac > 1 {
		cfg.GuardBandFrac = 0.5
	}
	if cfg.SteadyRTTs <= 0 {
		cfg.SteadyRTTs = 8
	}
	if cfg.EpochDt <= 0 {
		cfg.EpochDt = 8 * n.Cfg.LinkDelay
	}
	c := &Controller{
		sim:    s,
		net:    n,
		cfg:    cfg,
		ports:  make(map[portKey]*portState),
		queues: make(map[queueKey]*queueState),
		models: make(map[packet.NodeID]*swModel),
		// A flow must outlast the steady-state probation to be worth
		// demoting; 4 BDPs is a cheap prefilter for the candidate list.
		minSize:       4 * n.Cfg.LinkRate.BytesOver(n.BaseRTT()),
		payloadFrac:   float64(n.Cfg.MSS) / float64(n.Cfg.MSS+packet.HeaderBytes),
		ctrDemotions:  cfg.Obs.Ctr(obs.CtrHybridDemotions),
		ctrPromotions: cfg.Obs.Ctr(obs.CtrHybridPromotions),
		ctrEpochs:     cfg.Obs.Ctr(obs.CtrHybridEpochs),
		ctrFluidBytes: cfg.Obs.Ctr(obs.CtrHybridFluidBytes),
		histResidency: cfg.Obs.Hist(obs.HistHybridResidency),
		histPromoLead: cfg.Obs.Hist(obs.HistHybridPromoLead),
	}
	return c
}

// Start installs the flow-start hook and begins integration epochs.
func (c *Controller) Start() {
	c.net.OnFlowStart = c.onFlowStart
	c.lastEpoch = c.sim.Now()
	c.tick = c.sim.NewTicker(c.cfg.EpochDt, c.epoch)
}

// Stop halts integration, advances fluid delivery to now, and promotes
// every remaining fluid flow so the post-deadline event flush completes
// flows in packet mode exactly like a pure-packet run. MMU fluid
// charges are cleared.
func (c *Controller) Stop() {
	if c.tick != nil {
		c.tick.Stop()
		c.tick = nil
	}
	c.net.OnFlowStart = nil
	now := c.sim.Now()
	for _, f := range c.flows {
		c.settle(f, now)
		c.promote(f, now)
	}
	c.lastEpoch = now
	c.flows = c.flows[:0]
	for _, sm := range c.modelLst {
		sm.sw.MMU().SetFluidBytes(0)
	}
}

// Stats returns the run's hybrid activity summary.
func (c *Controller) Stats() Stats { return c.stats }

// FluidFlows returns the number of flows currently in fluid mode.
func (c *Controller) FluidFlows() int { return len(c.flows) }

// settle credits a fluid flow's delivery for the partial epoch since
// the last integration tick. Promotions that happen outside epoch()
// (which has already credited the interval) must settle first, or the
// lastEpoch..now stretch of the fluid trajectory is silently dropped
// and the promoted sender re-covers those bytes in packet mode.
func (c *Controller) settle(f *flow, now units.Time) {
	if sec := (now - c.lastEpoch).Seconds(); sec > 0 {
		f.delivered += f.rate * sec * c.payloadFrac
	}
}

// onFlowStart is the topo.Network flow-launch hook: a new burst at a
// shared port promotes fluid flows before the burst's first packet can
// race them, and large flows join the candidate list.
func (c *Controller) onFlowStart(id uint64, src, dst int, size units.ByteCount, prio uint8) {
	if len(c.flows) > 0 {
		c.pathBuf = c.net.PathQueues(id, src, dst, c.pathBuf[:0])
		now := c.sim.Now()
		kept := c.flows[:0]
		for _, f := range c.flows {
			if sharesPort(f.path, c.pathBuf) {
				c.settle(f, now)
				c.promote(f, now)
				continue
			}
			kept = append(kept, f)
		}
		c.flows = kept
	}
	if size >= c.minSize {
		c.cands = append(c.cands, &cand{id: id, src: src, dst: dst, prio: prio})
	}
}

// sharesPort reports whether two routed paths traverse a common egress
// port (any priority: port bandwidth is the shared resource).
func sharesPort(a, b []topo.PathHop) bool {
	for _, ha := range a {
		for _, hb := range b {
			if ha.Sw == hb.Sw && ha.Port == hb.Port {
				return true
			}
		}
	}
	return false
}

// epoch is the integration tick: advance fluid trajectories, step the
// per-switch models into the MMUs, run promotion checks, scan
// candidates for demotion, then re-measure spare capacity and
// re-allocate fluid rates.
func (c *Controller) epoch() {
	now := c.sim.Now()
	dt := now - c.lastEpoch
	c.lastEpoch = now
	sec := dt.Seconds()
	c.stats.Epochs++
	c.ctrEpochs.Inc()

	for _, f := range c.flows {
		f.delivered += f.rate * sec * c.payloadFrac
	}
	for _, sm := range c.modelLst {
		if sm.dirty {
			sm.model.Queues = sm.model.Queues[:0]
			for _, qs := range sm.qs {
				sm.model.Queues = append(sm.model.Queues, qs.fq)
			}
			sm.dirty = false
		}
		sm.model.Step(dt)
		sm.sw.MMU().SetFluidBytes(units.ByteCount(sm.model.Occupancy() + 0.5))
	}

	c.checkPromotions(now)
	c.scanCandidates(now, sec)
	c.measure(now, dt)
	c.allocate(now, sec)
}

// remaining returns the bytes the fluid trajectory has not yet covered.
func (f *flow) remaining() float64 {
	return float64(f.sn.Size) - float64(f.base) - f.delivered
}

// margin is the completion lead: promote while at least this many bytes
// remain, so the tail — and the FIN/ACK exchange that stamps the FCT —
// plays out packet-level.
func (c *Controller) margin(f *flow) float64 {
	lead := (2*f.sn.SRTT() + 2*c.cfg.EpochDt).Seconds()
	return f.rate*lead + float64(f.sn.Alg().Window()) + 4*float64(c.net.Cfg.MSS)
}

// guardBandHot reports whether any queue on the flow's path holds more
// packet+fluid bytes than the guard band below its admission threshold
// allows.
func (c *Controller) guardBandHot(f *flow) bool {
	for i, hop := range f.path {
		q := hop.Sw.Port(hop.Port).Queue(int(f.prio))
		occ := float64(q.Bytes())
		if i < len(f.qss) {
			occ += f.qss[i].fq.Len
		}
		thr := float64(q.LastThreshold())
		if thr > 0 {
			if occ > c.cfg.GuardBandFrac*thr {
				return true
			}
		} else if occ > 0 {
			return true // no threshold on record yet: any backlog is hot
		}
	}
	return false
}

// checkPromotions promotes fluid flows whose steady-state premise no
// longer holds, or whose completion nears.
func (c *Controller) checkPromotions(now units.Time) {
	kept := c.flows[:0]
	for _, f := range c.flows {
		switch {
		case f.sn.Disturbed(),
			f.remaining() <= c.margin(f),
			c.guardBandHot(f):
			c.promote(f, now)
		default:
			kept = append(kept, f)
		}
	}
	c.flows = kept
}

// scanCandidates demotes packet-mode flows that reached steady state.
//
// Demotion is all-or-none across the candidate set: a fluid flow stops
// emitting packets, so any still-packet flow sharing a port with it —
// including via its ACK return path — would see an emptier network
// than the pure packet engine shows (lower RTT, spare bandwidth) and
// converge to a different, unfaithful equilibrium before its own
// demotion froze that error into its anchor. Holding the cohort back
// until every candidate is simultaneously steady means nobody observes
// a fluid-perturbed network from packet mode; if the mesh never
// globally settles (e.g. ECMP capture contests keep windows drifting),
// the run degrades gracefully toward pure packet fidelity.
func (c *Controller) scanCandidates(now units.Time, sec float64) {
	// First pass: refresh every candidate's observation state and count
	// how many are individually steady.
	kept := c.cands[:0]
	ready := 0
	for _, cd := range c.cands {
		if cd.sn == nil {
			cd.sn = c.net.Hosts[cd.src].Sender(cd.id)
			if cd.sn == nil {
				kept = append(kept, cd)
				continue
			}
			cd.obsAt = now
			cd.obsUna = cd.sn.SndUna()
			cd.bandW = cd.sn.Alg().Window()
		}
		sn := cd.sn
		if sn.Finished() || sn.Fluid() {
			continue // drop: done, or already tracked as fluid
		}
		una := sn.SndUna()
		// Band check: a window excursion restarts the stable period, so
		// the observation average only ever covers one CC regime.
		w := sn.Alg().Window()
		if diff := w - cd.bandW; diff > cd.bandW/20 || -diff > cd.bandW/20 {
			cd.bandW = w
			cd.obsAt = now
			cd.obsUna = una
		}
		// EWMA of achieved goodput, smoothing the CC's sawtooth over a
		// few RTTs (diagnostic comparator for the stable-period average).
		if cd.lastUna > 0 && sec > 0 {
			inst := float64(una-cd.lastUna) / sec
			if cd.emaRate == 0 {
				cd.emaRate = inst
			} else {
				cd.emaRate += 0.25 * (inst - cd.emaRate)
			}
		}
		cd.lastUna = una
		if c.steady(cd, now) {
			ready++
		}
		kept = append(kept, cd)
	}
	c.cands = kept
	if ready == 0 || ready < len(c.cands) {
		return
	}
	// Second pass: the whole cohort is steady — demote everyone in the
	// same epoch so no candidate ever runs packet-mode beside a fluid
	// peer.
	start := len(c.flows)
	for _, cd := range c.cands {
		c.demote(cd, now)
	}
	c.cands = c.cands[:0]
	c.rebalance(c.flows[start:])
}

// rebalance redistributes a freshly demoted cohort's anchors toward the
// max-min fair split of what the cohort collectively achieved on each
// shared constraint. Identical competitors on a shared bottleneck can
// hold an unfair split for many RTTs (capture under delay-based CC) —
// long enough to pass the band gate — but the packet engine rebalances
// such splits on timescales far beyond the probation window, so
// freezing one into the anchors would extrapolate a transient. Each
// port's cohort aggregate is preserved exactly (only the split among
// members moves), so queue and MMU fidelity is untouched; ports
// carrying a single cohort member redistribute nothing and impose no
// bound (their anchor already reflects whatever else they carry).
func (c *Controller) rebalance(cohort []*flow) {
	if len(cohort) < 2 {
		return
	}
	for _, f := range cohort {
		for _, ps := range f.cons {
			ps.capRem = 0
			ps.nact = 0
		}
	}
	shared := make(map[*portState]bool)
	for _, f := range cohort {
		for _, ps := range f.cons {
			ps.capRem += f.ramp0
			ps.nact++
			if ps.nact > 1 {
				shared[ps] = true
			}
		}
	}
	if len(shared) == 0 {
		return
	}
	// Only members touching a shared constraint participate: a flow that
	// shares no port with any other member has nothing to redistribute,
	// and water-filling it would replace its measured anchor with an
	// unconstrained bound (the NIC line rate).
	contested := cohort[:0:0]
	for _, f := range cohort {
		for _, ps := range f.cons {
			if shared[ps] {
				contested = append(contested, f)
				break
			}
		}
	}
	for _, f := range contested {
		f.frozen = false
	}
	bound := func(f *flow) float64 {
		r := float64(f.cons[0].lineRate()) / 8 // source NIC line rate
		for _, ps := range f.cons {
			if !shared[ps] || ps.nact == 0 {
				continue
			}
			if share := ps.capRem / float64(ps.nact); share < r {
				r = share
			}
		}
		return r
	}
	for unfrozen := len(contested); unfrozen > 0; {
		minRate := -1.0
		for _, f := range contested {
			if f.frozen {
				continue
			}
			if r := bound(f); minRate < 0 || r < minRate {
				minRate = r
			}
		}
		for _, f := range contested {
			if f.frozen {
				continue
			}
			r := bound(f)
			if r <= minRate*(1+1e-9) {
				f.frozen = true
				f.ramp0 = r
				f.ramp = r
				unfrozen--
				for _, ps := range f.cons {
					ps.capRem -= r
					if ps.capRem < 0 {
						ps.capRem = 0
					}
					ps.nact--
				}
			}
		}
	}
}

// steady applies the demotion criteria.
func (c *Controller) steady(cd *cand, now units.Time) bool {
	sn := cd.sn
	srtt := sn.SRTT()
	if srtt <= 0 || sn.InRecovery() || cd.emaRate <= 0 {
		return false
	}
	probation := units.Time(c.cfg.SteadyRTTs) * srtt
	// The window band must have held for the whole probation: a flow
	// whose share is still drifting (additive-increase climb, capture
	// contests under ECMP collisions) keeps restarting the band and
	// never gets this far with a stale rate.
	if now-cd.obsAt < probation {
		return false
	}
	if d := sn.LastDisturb(); d > 0 && now-d < probation {
		return false
	}
	// The stable-period average must corroborate the window's implied
	// rate: disagreement means srtt or the delivery trace is still
	// moving, and the anchor would extrapolate a transient.
	stint := float64(sn.SndUna()-cd.obsUna) / (now - cd.obsAt).Seconds()
	implied := float64(sn.Alg().Window()) / srtt.Seconds()
	if stint <= 0 || implied < 0.9*stint || implied > 1.1*stint {
		return false
	}
	// Enough runway that demotion pays for the promote/demote round trip.
	demand := float64(sn.Alg().Window()) / srtt.Seconds()
	lead := demand*(2*srtt+2*c.cfg.EpochDt).Seconds() + float64(sn.Alg().Window()) + 4*float64(c.net.Cfg.MSS)
	if float64(sn.Size)-float64(sn.SndNxt()) <= 2*lead {
		return false
	}
	// Path calm: every queue below the guard band.
	for _, hop := range c.net.PathQueues(cd.id, cd.src, cd.dst, c.pathBuf[:0]) {
		q := hop.Sw.Port(hop.Port).Queue(int(cd.prio))
		thr := float64(q.LastThreshold())
		occ := float64(q.Bytes())
		if qs, ok := c.queues[queueKey{hop.Sw.ID(), hop.Port, cd.prio}]; ok {
			occ += qs.fq.Len
		}
		if thr > 0 {
			if occ > c.cfg.GuardBandFrac*thr {
				return false
			}
		} else if occ > 0 {
			return false
		}
	}
	c.pathBuf = c.pathBuf[:0]
	return true
}

// portStateFor returns (creating if needed) the constraint for a switch
// egress port or, with sw == nil, the src host's NIC.
func (c *Controller) portStateFor(sw *device.Switch, port int, hostIdx int) *portState {
	var k portKey
	if sw != nil {
		k = portKey{sw.ID(), port}
	} else {
		k = portKey{packet.NodeID(hostIdx), -1}
	}
	ps, ok := c.ports[k]
	if !ok {
		ps = &portState{sw: sw, port: port}
		if sw == nil {
			ps.h = c.net.Hosts[hostIdx]
		}
		ps.lastTx = ps.txBytes()
		c.ports[k] = ps
		c.portList = append(c.portList, ps)
	}
	return ps
}

// queueStateFor returns (creating if needed) the fluid integrator for
// one egress queue, wiring it into its switch's coupled model.
func (c *Controller) queueStateFor(sw *device.Switch, port int, prio uint8, ps *portState) *queueState {
	k := queueKey{sw.ID(), port, prio}
	qs, ok := c.queues[k]
	if !ok {
		sm, ok := c.models[sw.ID()]
		if !ok {
			mmu := sw.MMU()
			sm = &swModel{sw: sw, model: analytic.NewFluidModel(mmu.BufferSize())}
			c.models[sw.ID()] = sm
			c.modelLst = append(c.modelLst, sm)
		}
		// Omega 1: the model's own admission cap is the whole buffer;
		// the real Eq. 9 thresholds gate promotion via the guard band
		// long before fluid could reach it.
		qs = &queueState{
			fq: &analytic.FluidQueue{Omega: 1},
			q:  sw.Port(port).Queue(int(prio)),
			ps: ps,
			sm: sm,
		}
		c.queues[k] = qs
		sm.qs = append(sm.qs, qs)
		sm.dirty = true
	}
	return qs
}

// demote moves a candidate into fluid mode.
func (c *Controller) demote(cd *cand, now units.Time) {
	sn := cd.sn
	srtt := sn.SRTT()
	// The calibration rate is the average goodput over the stable period
	// the band gate just certified — the delivered rate of the regime
	// being extrapolated, free of pre-steady ramp and sawtooth phase
	// (steady() has already cross-checked it against W/SRTT).
	achieved := float64(sn.SndUna()-cd.obsUna) / (now - cd.obsAt).Seconds()
	if achieved <= 0 {
		achieved = cd.emaRate
	}
	f := &flow{
		id: cd.id, src: cd.src, dst: cd.dst, prio: cd.prio,
		sn:        sn,
		path:      c.net.PathQueues(cd.id, cd.src, cd.dst, nil),
		base:      sn.SndNxt(),
		ramp0:     achieved / c.payloadFrac, // achieved goodput, on the wire
		drain0:    achieved / c.payloadFrac,
		srtt:      srtt,
		demotedAt: now,
		// In-flight packets drain through the farthest hop for about one
		// RTT after the last send; until then port counters still see
		// this flow.
		settleUntil: now + srtt + 2*c.cfg.EpochDt,
	}
	f.ramp = f.ramp0
	f.cons = append(f.cons, c.portStateFor(nil, -1, f.src))
	for _, hop := range f.path {
		ps := c.portStateFor(hop.Sw, hop.Port, 0)
		f.cons = append(f.cons, ps)
		f.qss = append(f.qss, c.queueStateFor(hop.Sw, hop.Port, f.prio, ps))
	}
	for _, ps := range f.cons {
		ps.nflows++
	}
	for _, qs := range f.qss {
		qs.nflows++
	}
	sn.Demote()
	c.flows = append(c.flows, f)
	if len(c.flows) > c.stats.MaxFluid {
		c.stats.MaxFluid = len(c.flows)
	}
	c.stats.Demotions++
	c.ctrDemotions.Inc()
	if c.cfg.Obs.Enabled(obs.KindHybridDemote) {
		c.cfg.Obs.Emit(obs.Event{
			At:   now,
			Kind: obs.KindHybridDemote,
			Node: int32(f.src),
			Flow: f.id,
			Seq:  f.base,
			QLen: sn.Alg().Window(),
			Aux:  int64(f.ramp0),
		})
	}
}

// promote returns one flow to packet mode: the receiver is credited
// with the fluid trajectory, the congestion window is re-centered on
// the achieved rate, and the sender resumes (or completes). The caller
// removes f from c.flows.
func (c *Controller) promote(f *flow, now units.Time) {
	deliveredTo := f.base + int64(f.delivered)
	if deliveredTo > int64(f.sn.Size) {
		deliveredTo = int64(f.sn.Size)
	}
	fluidBytes := deliveredTo - f.base
	for _, ps := range f.cons {
		ps.nflows--
	}
	for _, qs := range f.qss {
		qs.nflows--
		if qs.nflows == 0 {
			qs.fq.Arrival = 0 // residual fluid drains out of the model
		}
		// Per-queue visibility for the counters table: the stint's
		// payload bytes traversed every queue on the flow's path in
		// fluid mode, invisible to the enq/deq counters.
		qs.q.FluidBytes += units.ByteCount(fluidBytes)
	}
	c.stats.Promotions++
	c.stats.FluidBytes += fluidBytes
	c.ctrPromotions.Inc()
	c.ctrFluidBytes.Add(fluidBytes)
	c.histResidency.Record(int64(now - f.demotedAt))
	c.histPromoLead.Record(int64(f.sn.Size) - deliveredTo)

	c.net.Hosts[f.dst].AdvanceReceiver(f.id, packet.NodeID(f.src), deliveredTo)
	sn := f.sn
	if rs, ok := sn.Alg().(cc.WindowRescaler); ok && sn.SRTT() > 0 && f.rate > 0 {
		w := units.ByteCount(f.rate * c.payloadFrac * sn.SRTT().Seconds())
		old := sn.Alg().Window()
		// The reconstruction must not leap outside what the algorithm
		// could have reached: clamp to a halving/doubling of the
		// demotion-time window.
		if w < old/2 {
			w = old / 2
		}
		if w > 2*old {
			w = 2 * old
		}
		rs.SetWindow(w)
	}
	if c.cfg.Obs.Enabled(obs.KindHybridPromote) {
		c.cfg.Obs.Emit(obs.Event{
			At:   now,
			Kind: obs.KindHybridPromote,
			Node: int32(f.src),
			Flow: f.id,
			Seq:  deliveredTo,
			QLen: sn.Alg().Window(),
			Aux:  fluidBytes,
		})
	}
	sn.Promote(deliveredTo)
	if !sn.Finished() {
		// Back on the candidate list: it may reach steady state again.
		// Observation restarts here so the achieved-rate average covers
		// only this packet-mode stint, not earlier contention regimes.
		c.cands = append(c.cands, &cand{
			id: f.id, src: f.src, dst: f.dst, prio: f.prio, sn: sn,
			obsAt: now, obsUna: deliveredTo, bandW: sn.Alg().Window(),
		})
	}
}

// measure refreshes each constraint's packet throughput over the last
// epoch. Fluid flows emit no packets, so the counters measure exactly
// the competing packet traffic whose leftovers fluid may use — except
// freshly demoted flows, whose pre-demotion sends and still-draining
// flight pollute the counters until settleUntil: the known achieved
// rate is credited back for the polluted fraction of the epoch.
func (c *Controller) measure(now, dt units.Time) {
	sec := dt.Seconds()
	if sec <= 0 {
		return
	}
	for _, ps := range c.portList {
		cur := ps.txBytes()
		ps.capRem = float64(cur-ps.lastTx) / sec // raw sample, in scratch
		ps.lastTx = cur
	}
	epochStart := now - dt
	for _, f := range c.flows {
		if f.settleUntil <= epochStart {
			continue
		}
		end := f.settleUntil
		if end > now {
			end = now
		}
		frac := (end - epochStart).Seconds() / sec
		if frac > 1 {
			frac = 1
		}
		for _, ps := range f.cons {
			ps.capRem -= f.drain0 * frac
			if ps.capRem < 0 {
				ps.capRem = 0
			}
		}
	}
	// EWMA over epochs damps the CC sawtooth of still-packet-mode flows,
	// which otherwise injects ±15% noise into spare-capacity estimates.
	for _, ps := range c.portList {
		if !ps.seeded {
			ps.pktRate = ps.capRem
			ps.seeded = true
		} else {
			ps.pktRate += 0.3 * (ps.capRem - ps.pktRate)
		}
	}
}

// cap is the flow's own rate bound this epoch: what its congestion
// control has demonstrably reached (ramp), plus one epoch of additive
// increase (1 MSS of cwnd per RTT, the conservative common pace), never
// beyond the source NIC. A competitor completing frees share instantly,
// but a real CC claims it over many RTTs — the ramp makes the fluid
// trajectory claim it at the same pace.
func (f *flow) cap(sec float64, mss float64) float64 {
	srtt := f.srtt.Seconds()
	r := f.ramp + mss*sec/(srtt*srtt)
	if nic := float64(f.cons[0].lineRate()) / 8; r > nic {
		r = nic
	}
	return r
}

// allocate computes each fluid flow's rate for the next epoch: the
// max-min fair share over the spare (line minus measured packet) wire
// capacity of its constraints, capped by the flow's AI ramp, then
// scaled by its calibrated CC efficiency. Progressive filling: each
// round freezes the globally most-constrained flows and subtracts
// their share. The resulting per-queue arrival and drain rates feed
// the fluid integrators.
//
// The efficiency factor eta is what separates the fluid trajectory
// from an idealized fluid model: a CC does not necessarily use the
// capacity available to it (delay-based Swift backs off against its
// own queueing and sustains ~2/3 of a bottleneck; loss-based Cubic
// sustains nearly all of it). Rather than hard-code per-CC knowledge,
// eta is measured per flow: the achieved rate at demotion over the
// capacity available once the flow's own traffic has fully left the
// packet counters (after settleUntil, when the measurement is clean).
func (c *Controller) allocate(now units.Time, sec float64) {
	if len(c.flows) == 0 {
		return
	}
	mss := float64(c.net.Cfg.MSS)
	for _, ps := range c.portList {
		spare := float64(ps.lineRate())/8 - ps.pktRate
		if spare < 0 {
			spare = 0
		}
		ps.capRem = spare
		ps.nact = 0
	}
	for _, f := range c.flows {
		f.frozen = false
		for _, ps := range f.cons {
			ps.nact++
		}
	}
	for unfrozen := len(c.flows); unfrozen > 0; {
		// Tightest rate any active flow can get this round.
		minRate := -1.0
		for _, f := range c.flows {
			if f.frozen {
				continue
			}
			r := f.cap(sec, mss)
			for _, ps := range f.cons {
				if share := ps.capRem / float64(ps.nact); share < r {
					r = share
				}
			}
			if minRate < 0 || r < minRate {
				minRate = r
			}
		}
		// Freeze every flow at that level (bottlenecked or ramp-capped).
		for _, f := range c.flows {
			if f.frozen {
				continue
			}
			r := f.cap(sec, mss)
			for _, ps := range f.cons {
				if share := ps.capRem / float64(ps.nact); share < r {
					r = share
				}
			}
			if r <= minRate*(1+1e-9) {
				f.frozen = true
				f.rate = r
				unfrozen--
				for _, ps := range f.cons {
					ps.capRem -= r
					if ps.capRem < 0 {
						ps.capRem = 0
					}
					ps.nact--
				}
			}
		}
	}
	// Efficiency calibration and application. potential is the rate the
	// flow COULD sustain: its allocation plus the slack left on its
	// tightest constraint.
	for _, f := range c.flows {
		slack := -1.0
		for _, ps := range f.cons {
			if slack < 0 || ps.capRem < slack {
				slack = ps.capRem
			}
		}
		potential := f.rate + slack
		if f.eta == 0 && potential > 0 && now >= f.settleUntil {
			f.eta = f.ramp0 / potential
			if f.eta > 1 {
				f.eta = 1
			}
			f.pot0 = potential
		}
		if f.eta > 0 {
			// Linear response around the calibration point: exactly the
			// achieved rate while the constraint environment is unchanged,
			// and an eta-scaled claim on capacity that frees up later.
			target := f.ramp0 + f.eta*(potential-f.pot0)
			if target < 0 {
				target = 0
			}
			if f.rate > target {
				f.rate = target
			}
		}
		f.ramp = f.rate
	}
	// Push per-queue arrival/drain into the integrators.
	for _, qs := range c.queues {
		qs.fq.Arrival = 0
	}
	for _, f := range c.flows {
		for _, qs := range f.qss {
			qs.fq.Arrival += units.Rate(f.rate * 8)
		}
	}
	// A port's spare capacity serves all its fluid queues combined, so
	// split it by demand (arrival plus backlog over one epoch) rather
	// than granting each queue the full spare — otherwise two priorities
	// sharing an egress port double-count service and understate the
	// fluid occupancy charged to the MMU. A queue with no arrivals but
	// residual fluid still gets a share, so promotion leftovers drain.
	edt := c.cfg.EpochDt.Seconds()
	for _, ps := range c.portList {
		ps.demand = 0
	}
	for _, sm := range c.modelLst {
		for _, qs := range sm.qs {
			qs.ps.demand += float64(qs.fq.Arrival)/8 + qs.fq.Len/edt
		}
	}
	for _, sm := range c.modelLst {
		for _, qs := range sm.qs {
			spare := float64(qs.ps.lineRate())/8 - qs.ps.pktRate
			if spare < 0 {
				spare = 0
			}
			if qs.ps.demand > 0 {
				d := float64(qs.fq.Arrival)/8 + qs.fq.Len/edt
				spare *= d / qs.ps.demand
			}
			qs.fq.Drain = units.Rate(spare * 8)
		}
	}
}
