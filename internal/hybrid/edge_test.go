package hybrid

// White-box edge cases: the promotion triggers that guard the fluid
// approximation's validity. Each test drives a real (tiny) fabric to a
// genuine demotion, then forces one trigger and checks the flow is back
// in packet mode at the right moment.

import (
	"testing"

	"abm/internal/cc"
	"abm/internal/sim"
	"abm/internal/topo"
	"abm/internal/units"
)

// edgeNet is a one-spine two-leaf fabric: every cross-leaf flow shares
// the single uplink/downlink pair, so port-sharing triggers are easy to
// provoke.
func edgeNet(seed int64) (*sim.Simulator, *topo.Network, *Controller) {
	s := sim.New(seed)
	n := topo.NewNetwork(s, topo.Config{
		NumSpines:    1,
		NumLeaves:    2,
		HostsPerLeaf: 2,
		LinkRate:     10 * units.GigabitPerSec,
		LinkDelay:    10 * units.Microsecond,
	})
	c := New(s, n, Config{})
	c.Start()
	return s, n, c
}

// runToDemotion steps the simulation until the controller has demoted
// at least one flow (it may already have been promoted again by the
// time a poll sees it — check c.flows for current residency).
func runToDemotion(t *testing.T, s *sim.Simulator, c *Controller) units.Time {
	t.Helper()
	deadline := 20 * units.Millisecond
	for step := units.Time(0); step < deadline; step += 20 * units.Microsecond {
		s.RunUntil(step)
		if c.stats.Demotions >= 1 {
			return s.Now()
		}
	}
	t.Fatalf("flow never demoted within %v (candidates %d)", deadline, len(c.cands))
	return 0
}

// A burst landing mid-epoch on a shared port must promote the fluid
// flow at flow-start time — before the burst's first packet can race a
// flow the packet engine no longer simulates — not at the next epoch
// boundary.
func TestBurstMidEpochPromotes(t *testing.T) {
	s, n, c := edgeNet(7)
	defer n.Stop()
	s.At(0, func() {
		n.StartFlow(0, 2, 20*units.Megabyte, 0, cc.NewSwift(), nil)
	})
	at := runToDemotion(t, s, c)
	f := c.flows[0]

	// Land the burst strictly between two epoch ticks.
	burstAt := at + c.cfg.EpochDt/2
	s.At(burstAt, func() {
		n.StartFlow(1, 3, 100*units.Kilobyte, 0, cc.NewSwift(), nil)
	})
	s.RunUntil(burstAt + 1)

	if got := c.FluidFlows(); got != 0 {
		t.Fatalf("fluid flows after mid-epoch burst = %d, want 0", got)
	}
	if c.stats.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", c.stats.Promotions)
	}
	if f.sn.Fluid() {
		t.Error("sender still marked fluid after promotion")
	}
	if f.sn.SndUna() < f.base {
		t.Errorf("receiver credit lost: sndUna %d < demotion base %d", f.sn.SndUna(), f.base)
	}
}

// A fluid queue crossing the guard band during integration must promote
// the flows feeding it at the next epoch.
func TestGuardBandCrossingPromotes(t *testing.T) {
	s, n, c := edgeNet(9)
	defer n.Stop()
	s.At(0, func() {
		n.StartFlow(0, 2, 20*units.Megabyte, 0, cc.NewSwift(), nil)
	})
	at := runToDemotion(t, s, c)
	f := c.flows[0]

	// One quiet epoch first: the flow must stay fluid on its own.
	s.RunUntil(at + 2*c.cfg.EpochDt)
	if got := c.FluidFlows(); got != 1 {
		t.Fatalf("fluid flows after quiet epoch = %d, want 1", got)
	}

	// Force the integrator far past any admission threshold.
	f.qss[0].fq.Len = 10 * 1024 * 1024
	s.RunUntil(s.Now() + 2*c.cfg.EpochDt)

	if got := c.FluidFlows(); got != 0 {
		t.Fatalf("fluid flows after guard-band crossing = %d, want 0", got)
	}
	if c.stats.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", c.stats.Promotions)
	}
}

// A flow whose fluid trajectory nears its end must be promoted with
// enough runway that the tail — and the FCT-stamping completion — plays
// out packet-level, with every byte accounted for exactly once.
func TestCompletionInPacketMode(t *testing.T) {
	s, n, c := edgeNet(11)
	defer n.Stop()
	size := 8 * units.Megabyte
	var fct units.Time
	s.At(0, func() {
		n.StartFlow(0, 2, size, 0, cc.NewSwift(), func(now units.Time) { fct = now })
	})
	runToDemotion(t, s, c)
	sn := n.Hosts[0].Sender(1)

	s.RunUntil(50 * units.Millisecond)
	if !sn.Finished() {
		t.Fatalf("flow not finished; fluid=%v sndUna=%d of %d", sn.Fluid(), sn.SndUna(), size)
	}
	if fct == 0 {
		t.Fatal("completion callback never fired")
	}
	if got := c.FluidFlows(); got != 0 {
		t.Fatalf("fluid flows after completion = %d, want 0", got)
	}
	st := c.Stats()
	if st.Demotions < 1 || st.Promotions < st.Demotions {
		t.Fatalf("demotions %d / promotions %d: completion must follow a promotion", st.Demotions, st.Promotions)
	}
	if st.FluidBytes <= 0 || st.FluidBytes >= int64(size) {
		t.Fatalf("fluid bytes %d outside (0, %d): tail must be packet-level", st.FluidBytes, size)
	}
	if sn.SndUna() != int64(size) {
		t.Fatalf("sndUna %d != size %d after completion", sn.SndUna(), size)
	}
}

// Cohort demotion is all-or-none: while one of two candidates is still
// unsteady, neither may be demoted.
func TestCohortHoldsBackUnsteady(t *testing.T) {
	s, n, c := edgeNet(13)
	defer n.Stop()
	s.At(0, func() {
		n.StartFlow(0, 2, 20*units.Megabyte, 0, cc.NewSwift(), nil)
	})
	// The second large flow arrives much later: while it climbs toward
	// steady state, the first must not be demoted without it.
	late := 5 * units.Millisecond
	s.At(late, func() {
		n.StartFlow(1, 3, 20*units.Megabyte, 0, cc.NewSwift(), nil)
	})
	s.RunUntil(late + 100*units.Microsecond)
	if got := c.FluidFlows(); got != 0 {
		t.Fatalf("fluid flows right after second arrival = %d, want 0 (all-or-none)", got)
	}
	if len(c.cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(c.cands))
	}
	// Eventually both settle and the whole cohort goes together.
	for step := s.Now(); step < 30*units.Millisecond; step += 100 * units.Microsecond {
		s.RunUntil(step)
		if nf := c.FluidFlows(); nf == 1 {
			t.Fatalf("partial cohort demotion: 1 fluid flow with %d candidates left", len(c.cands))
		} else if nf == 2 {
			return
		}
	}
	t.Fatal("cohort never demoted together")
}
