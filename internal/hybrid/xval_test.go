package hybrid_test

// Cross-validation: the hybrid engine against the pure packet engine on
// a steady long-flow permutation. This is the committed form of the
// acceptance experiment EXPERIMENTS.md reports at full scale — the
// fabric here is shrunk so the packet-mode reference stays CI-cheap,
// but the assertions are the same: per-class FCT statistics within
// tolerance, and an event-count reduction that makes the fluid phase
// worth having.

import (
	"math"
	"testing"

	"abm/internal/metrics"
	"abm/internal/scenario"
	"abm/internal/units"
)

func xvalSpec(hybrid bool) scenario.Scenario {
	return scenario.Scenario{
		Seed:     42,
		Duration: scenario.Duration(25 * units.Millisecond),
		Fabric: scenario.Fabric{
			Spines: 2, Leaves: 2, HostsPerLeaf: 4,
			LinkGbps: 10, LinkDelay: scenario.Duration(10 * units.Microsecond),
		},
		Buffer: scenario.Buffer{KBPerPortPerGbps: 9.6, QueuesPerPort: 1},
		Switch: scenario.Switch{BM: "ABM"},
		Workload: scenario.Workload{
			CC: "swift",
			LongFlows: scenario.LongFlows{
				FlowKB: 50000, Stride: 4, Count: 4,
				Stagger: scenario.Duration(units.Microsecond),
			},
		},
		Hybrid: scenario.Hybrid{Enabled: hybrid},
	}
}

func longFCTs(t *testing.T, col *metrics.Collector) []float64 {
	t.Helper()
	var fcts []float64
	for _, fr := range col.Flows {
		if fr.Class != metrics.ClassLong {
			continue
		}
		if !fr.Finished {
			t.Fatalf("long flow %d did not finish", fr.ID)
		}
		fcts = append(fcts, float64(fr.FCT()))
	}
	return fcts
}

func TestCrossValidation(t *testing.T) {
	pr, pcol, err := scenario.Run(xvalSpec(false))
	if err != nil {
		t.Fatal(err)
	}
	hr, hcol, err := scenario.Run(xvalSpec(true))
	if err != nil {
		t.Fatal(err)
	}

	pf, hf := longFCTs(t, pcol), longFCTs(t, hcol)
	if len(pf) != 4 || len(hf) != 4 {
		t.Fatalf("finished long flows: packet %d, hybrid %d, want 4", len(pf), len(hf))
	}

	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	const tol = 0.05
	if d := (mean(hf) - mean(pf)) / mean(pf); math.Abs(d) > tol {
		t.Errorf("mean FCT delta %+.2f%% exceeds %.0f%%", 100*d, 100*tol)
	}
	pp, hp := metrics.Percentile(pf, 99), metrics.Percentile(hf, 99)
	if d := (hp - pp) / pp; math.Abs(d) > tol {
		t.Errorf("p99 FCT delta %+.2f%% exceeds %.0f%%", 100*d, 100*tol)
	}

	// The fluid phase must actually carry the run: every flow demoted,
	// most bytes delivered fluid, and the event count collapsed.
	if hr.Hybrid == nil {
		t.Fatal("hybrid run carries no hybrid stats")
	}
	if hr.Hybrid.Demotions != 4 {
		t.Errorf("demotions = %d, want 4", hr.Hybrid.Demotions)
	}
	if hr.Hybrid.Promotions < hr.Hybrid.Demotions {
		t.Errorf("promotions %d < demotions %d", hr.Hybrid.Promotions, hr.Hybrid.Demotions)
	}
	total := int64(4 * 50000 * 1000)
	if hr.Hybrid.FluidBytes < total/2 || hr.Hybrid.FluidBytes >= total {
		t.Errorf("fluid bytes %d outside [%d, %d): fluid phase should dominate, tails stay packet",
			hr.Hybrid.FluidBytes, total/2, total)
	}
	if ratio := float64(pr.Events) / float64(hr.Events); ratio < 5 {
		t.Errorf("event reduction %.1fx < 5x (packet %d, hybrid %d)", ratio, pr.Events, hr.Events)
	}
	if pr.Hybrid != nil {
		t.Error("packet run unexpectedly carries hybrid stats")
	}
}
