package sim

import (
	"fmt"
	"reflect"
	"testing"

	"abm/internal/units"
)

const hopDelay = units.Time(10_000) // cross-shard latency used by the tests

// pingNode is a minimal two-shard model: each node runs on its own
// shard and bounces a counter to its peer through a mailbox, recording
// every receipt. It exercises exactly the Link.Send-through-mailbox
// shape the topology layer uses.
type pingNode struct {
	sim   *Simulator
	out   *Mailbox
	peer  *pingNode
	trace []string
	hops  int
	limit int
}

func (n *pingNode) recv(arg any) {
	hop := arg.(int)
	n.trace = append(n.trace, fmt.Sprintf("%d@%v", hop, n.sim.Now()))
	n.hops++
	if hop < n.limit {
		n.out.Post(n.sim.Now()+hopDelay, n.peer.recv, hop+1)
	}
}

func buildPingPong(p *Parallel, limit int) (*pingNode, *pingNode) {
	a := &pingNode{sim: p.Shard(0), limit: limit}
	b := &pingNode{sim: p.Shard(1 % p.NumShards()), limit: limit}
	a.peer, b.peer = b, a
	a.out = p.NewMailbox(1%p.NumShards(), hopDelay)
	b.out = p.NewMailbox(0, hopDelay)
	return a, b
}

// TestParallelPingPongMatchesSerial runs the bounce chain on a
// two-shard engine and on a plain serial simulator; receipt traces
// must be identical.
func TestParallelPingPongMatchesSerial(t *testing.T) {
	const limit = 40
	deadline := units.Time(1_000_000)

	p := NewParallel(42, 2)
	defer p.Close()
	a, b := buildPingPong(p, limit)
	a.sim.AtArg(0, a.recv, 0)
	p.RunUntil(deadline)
	p.Drain()

	// Serial reference: same chain, direct scheduling.
	s := New(42)
	var sa, sb *serialNode
	sa = &serialNode{sim: s, limit: limit}
	sb = &serialNode{sim: s, limit: limit}
	sa.peer, sb.peer = sb, sa
	s.AtArg(0, sa.recv, 0)
	s.Run()

	if !reflect.DeepEqual(a.trace, sa.trace) {
		t.Fatalf("shard-0 trace diverged:\nparallel %v\nserial   %v", a.trace, sa.trace)
	}
	if !reflect.DeepEqual(b.trace, sb.trace) {
		t.Fatalf("shard-1 trace diverged:\nparallel %v\nserial   %v", b.trace, sb.trace)
	}
	if a.hops+b.hops != limit+1 {
		t.Fatalf("chain incomplete: %d hops, want %d", a.hops+b.hops, limit+1)
	}
}

type serialNode struct {
	sim   *Simulator
	peer  *serialNode
	trace []string
	limit int
}

func (n *serialNode) recv(arg any) {
	hop := arg.(int)
	n.trace = append(n.trace, fmt.Sprintf("%d@%v", hop, n.sim.Now()))
	if hop < n.limit {
		n.sim.AfterArg(hopDelay, n.peer.recv, hop+1)
	}
}

// TestParallelDeterministic runs the same model twice and demands
// identical traces and event counts.
func TestParallelDeterministic(t *testing.T) {
	run := func() ([]string, []string, uint64) {
		p := NewParallel(7, 2)
		defer p.Close()
		a, b := buildPingPong(p, 25)
		a.sim.AtArg(0, a.recv, 0)
		p.RunUntil(500_000)
		p.Drain()
		return a.trace, b.trace, p.Executed()
	}
	a1, b1, n1 := run()
	a2, b2, n2 := run()
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(b1, b2) || n1 != n2 {
		t.Fatalf("repeat run diverged: %v/%v (%d) vs %v/%v (%d)", a1, b1, n1, a2, b2, n2)
	}
}

// TestMailboxMergeOrder posts simultaneous deliveries from two source
// mailboxes and checks the canonical order: time first, then mailbox
// registration order, then posting order within a mailbox.
func TestMailboxMergeOrder(t *testing.T) {
	p := NewParallel(1, 2)
	defer p.Close()
	first := p.NewMailbox(0, hopDelay)  // registered first
	second := p.NewMailbox(0, hopDelay) // registered second

	var got []int
	rec := func(arg any) { got = append(got, arg.(int)) }

	// Seed an event on shard 1 whose execution posts out-of-order times
	// into both boxes.
	p.Shard(1).AtArg(0, func(any) {
		second.Post(2*hopDelay, rec, 10) // same time, later registration
		second.Post(hopDelay, rec, 11)
		first.Post(2*hopDelay, rec, 20)
		first.Post(hopDelay, rec, 21)
		first.Post(hopDelay, rec, 22) // same box+time: posting order
	}, nil)
	p.RunUntil(1_000_000)

	want := []int{21, 22, 11, 20, 10}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order %v, want %v", got, want)
	}
}

// TestBarrierTickerObservesQuiescence fires a ticker every interval and
// checks each firing sees every event before its due time executed and
// none at or after it.
func TestBarrierTickerObservesQuiescence(t *testing.T) {
	p := NewParallel(3, 2)
	defer p.Close()
	a, _ := buildPingPong(p, 60)
	a.sim.AtArg(0, a.recv, 0)

	interval := units.Time(35_000) // deliberately not a multiple of hopDelay
	var fires []units.Time
	tick := p.NewBarrierTicker(interval, func(now units.Time) {
		fires = append(fires, now)
		for i := 0; i < p.NumShards(); i++ {
			if tm, ok := p.Shard(i).NextEventTime(); ok && tm < now {
				t.Fatalf("ticker at %v saw unexecuted event at %v on shard %d", now, tm, i)
			}
		}
	})
	deadline := units.Time(300_000)
	p.RunUntil(deadline)
	tick.Stop()
	p.Drain()

	want := int(deadline / interval)
	if len(fires) != want {
		t.Fatalf("ticker fired %d times, want %d (fires=%v)", len(fires), want, fires)
	}
	for i, at := range fires {
		if at != units.Time(i+1)*interval {
			t.Fatalf("fire %d at %v, want %v", i, at, units.Time(i+1)*interval)
		}
	}
}

// TestRunUntilInclusiveDeadline checks the serial RunUntil contract
// carries over: events at exactly the deadline run, later ones wait.
func TestRunUntilInclusiveDeadline(t *testing.T) {
	p := NewParallel(5, 2)
	defer p.Close()
	// Shard-local records: cross-shard windows run concurrently, so the
	// model (and the test) must not share mutable state across shards.
	var got0, got1 []int
	p.Shard(0).AtArg(100, func(any) { got0 = append(got0, 1) }, nil)
	p.Shard(1).AtArg(100, func(any) { got1 = append(got1, 2) }, nil)
	p.Shard(0).AtArg(101, func(any) { got0 = append(got0, 3) }, nil)
	p.RunUntil(100)
	if !reflect.DeepEqual(got0, []int{1}) || !reflect.DeepEqual(got1, []int{2}) {
		t.Fatalf("after RunUntil(100): shard0=%v shard1=%v, want [1] [2]", got0, got1)
	}
	p.RunUntil(200)
	if !reflect.DeepEqual(got0, []int{1, 3}) {
		t.Fatalf("after RunUntil(200): shard0=%v, want [1 3]", got0)
	}
}

// TestDrainCrossesShards verifies Drain keeps windows rolling through
// cross-shard chains queued past the last deadline.
func TestDrainCrossesShards(t *testing.T) {
	p := NewParallel(9, 4)
	defer p.Close()
	boxes := make([]*Mailbox, 4)
	for i := range boxes {
		boxes[i] = p.NewMailbox((i+1)%4, hopDelay)
	}
	var visits int
	var hop func(arg any)
	hop = func(arg any) {
		n := arg.(int)
		visits++
		if n < 37 {
			shard := n % 4
			boxes[shard].Post(p.Shard(shard).Now()+hopDelay, hop, n+1)
		}
	}
	p.Shard(0).AtArg(0, hop, 0)
	p.RunUntil(1) // chain barely started
	p.Drain()
	if visits != 38 {
		t.Fatalf("drain completed %d visits, want 38", visits)
	}
	if tm, ok := p.peekMin(); ok {
		t.Fatalf("events remain after Drain (next at %v)", tm)
	}
}

// TestShardSeedsDiffer ensures shard RNG streams are distinct and
// derived from the base seed.
func TestShardSeedsDiffer(t *testing.T) {
	p := NewParallel(42, 4)
	defer p.Close()
	if p.Seed() != 42 {
		t.Fatalf("base seed %d", p.Seed())
	}
	seen := map[int64]bool{}
	for i := 0; i < 4; i++ {
		s := p.Shard(i).Seed()
		if seen[s] {
			t.Fatalf("duplicate derived seed %d", s)
		}
		seen[s] = true
	}
}

// TestAdaptiveWideningMatchesUnwidened runs a model with long
// mailbox-silent stretches (a local event chain beside a finite bounce
// chain) at maxWiden=1 (widening off) and the default K. Widening must
// actually engage, and the receipt traces and executed-event counts
// must be identical: extension windows only skip no-op barriers.
func TestAdaptiveWideningMatchesUnwidened(t *testing.T) {
	run := func(maxWiden int) (trace []string, widened, execs uint64) {
		p := NewParallel(7, 2)
		defer p.Close()
		p.SetMaxWiden(maxWiden)
		a, b := buildPingPong(p, 6)

		// A shard-local chain far longer than the bounce exchange: 600
		// events half a lookahead apart, no crossings. While bounces
		// are live every window posts (widening must snap back); after
		// they finish the chain runs through mailbox-silent windows
		// (widening must engage), continuing past the deadline so the
		// Drain loop widens too.
		s0 := p.Shard(0)
		count := 0
		var local func()
		local = func() {
			count++
			if count < 600 {
				s0.After(hopDelay/2, local)
			}
		}
		s0.After(0, local)

		a.sim.AtArg(0, a.recv, 0)
		p.RunUntil(units.Time(2_000_000))
		p.Drain()
		if count != 600 {
			t.Fatalf("local chain ran %d of 600 events", count)
		}
		return append(append([]string{}, a.trace...), b.trace...), p.Widened(), p.Executed()
	}

	trace1, widened1, execs1 := run(1)
	traceK, widenedK, execsK := run(0) // SetMaxWiden clamps 0 to 1...
	if widened1 != 0 {
		t.Errorf("maxWiden=1 recorded %d extension windows, want 0", widened1)
	}
	trace8, widened8, execs8 := run(defaultMaxWiden)
	if widened8 == 0 {
		t.Error("widening never engaged on a mailbox-silent workload")
	}
	if !reflect.DeepEqual(trace1, trace8) {
		t.Errorf("traces differ between maxWiden=1 and %d:\n%v\nvs\n%v", defaultMaxWiden, trace1, trace8)
	}
	if execs1 != execs8 {
		t.Errorf("executed %d events at maxWiden=1 vs %d at %d", execs1, execs8, defaultMaxWiden)
	}
	if !reflect.DeepEqual(traceK, trace1) || execsK != execs1 || widenedK != 0 {
		t.Errorf("SetMaxWiden(0) should clamp to 1: widened=%d", widenedK)
	}
}
