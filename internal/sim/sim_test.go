package sim

import (
	"testing"

	"abm/internal/units"
)

func TestRunExecutesInOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 30 {
		t.Fatalf("clock = %v, want 30", s.Now())
	}
	if s.Executed() != 3 {
		t.Fatalf("executed = %d", s.Executed())
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New(1)
	var fired units.Time
	s.At(100, func() {
		s.After(50, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 150 {
		t.Fatalf("fired at %v, want 150", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic when scheduling in the past")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	s.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []units.Time
	for _, tm := range []units.Time{10, 20, 30, 40} {
		tm := tm
		s.At(tm, func() { fired = append(fired, tm) })
	}
	s.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10,20", fired)
	}
	if s.Now() != 25 {
		t.Fatalf("clock = %v, want 25", s.Now())
	}
	s.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v, want all four", fired)
	}
	// Clock advances to the deadline even with an empty calendar.
	if s.Now() != 100 {
		t.Fatalf("clock = %v, want 100", s.Now())
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	count := 0
	s.At(1, func() { count++; s.Halt() })
	s.At(2, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("count = %d, want 1 (halted)", count)
	}
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d, resume should execute remaining", count)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	s := New(1)
	fired := false
	e := s.At(10, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestTicker(t *testing.T) {
	s := New(1)
	var ticks []units.Time
	tk := s.NewTicker(10, func() {
		ticks = append(ticks, s.Now())
		if len(ticks) == 3 {
			s.Halt()
		}
	})
	s.Run()
	tk.Stop()
	want := []units.Time{10, 20, 30}
	if len(ticks) != 3 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
	s.Run()
	if len(ticks) != 3 {
		t.Fatal("ticker fired after Stop")
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = s.NewTicker(5, func() {
		n++
		tk.Stop()
	})
	s.RunUntil(1000)
	if n != 1 {
		t.Fatalf("ticker fired %d times after Stop in callback", n)
	}
}

func TestZeroIntervalTickerPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.NewTicker(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(99)
		var vals []int64
		for i := 0; i < 10; i++ {
			s.After(units.Time(i), func() { vals = append(vals, s.Rand().Int63()) })
		}
		s.Run()
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must produce identical runs")
		}
	}
}

func TestPending(t *testing.T) {
	s := New(1)
	s.At(5, func() {})
	s.At(6, func() {})
	if s.Pending() != 2 {
		t.Fatalf("pending = %d", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("pending after run = %d", s.Pending())
	}
}
