// Parallel is the topology-sharded run mode of the simulation kernel:
// N independent Simulators (one per shard, each with its own event
// calendar, packet free list, and derived seed) advance together in
// conservative lookahead windows.
//
// # Model contract
//
// Shards may interact only through registered Mailboxes. A mailbox
// carries events from a producer owned by one shard to a destination
// shard with a minimum latency (for a network link, its propagation
// delay): an event posted while the producer's shard executes a window
// starting at T fires no earlier than T + latency. The engine sizes
// every window at most the minimum registered latency (the lookahead),
// so all deliveries into a window are already buffered when the window
// starts — within a window shards run with no synchronization at all.
//
// # Determinism
//
// At every barrier the engine drains all mailboxes and injects the
// buffered events into their destination calendars in a canonical
// order: delivery time first, ties broken by mailbox registration
// order, then by posting order within a mailbox. The canonical order
// depends only on the model (which link, which packet sequence), not on
// which goroutine ran first, so a parallel run is deterministic and —
// as long as mailbox registration is partition-invariant — identical
// at any shard count.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"abm/internal/eventq"
	"abm/internal/obs"
	"abm/internal/randutil"
	"abm/internal/units"
)

// Mailbox buffers events crossing into a destination shard. It is
// single-producer: only the owning shard's goroutine may Post, only
// the engine's coordinator drains it at barriers.
type Mailbox struct {
	dst int
	buf []eventq.Item
}

// Post buffers fn(arg) to fire at absolute time t in the destination
// shard. t must be at least one lookahead beyond the current window's
// start; the engine injects it at the next barrier.
func (m *Mailbox) Post(t units.Time, fn func(any), arg any) {
	m.buf = append(m.buf, eventq.Item{Time: t, Fn: fn, Arg: arg})
}

// BarrierTicker invokes a callback at fixed simulated intervals on the
// engine's coordinator, between windows: when it fires at time T, every
// shard has executed all events before T and none at or after it. It is
// the parallel-mode home for global observers that read state across
// shards (e.g. the fabric-wide buffer occupancy sampler).
type BarrierTicker struct {
	interval units.Time
	next     units.Time
	fn       func(now units.Time)
	stopped  bool
	oneShot  bool
}

// Stop cancels future firings.
func (t *BarrierTicker) Stop() { t.stopped = true }

// windowReq asks a shard worker to run one window.
type windowReq struct {
	start     units.Time // window start (the frontier), for telemetry spans
	limit     units.Time
	inclusive bool // RunUntil(limit) instead of RunBefore(limit)
}

// Parallel coordinates the sharded run.
type Parallel struct {
	seed    int64
	now     units.Time // barrier frontier: all shards have executed events < now
	look    units.Time // lookahead: minimum mailbox latency; 0 until registered
	shards  []*Simulator
	boxes   []*Mailbox
	tickers []*BarrierTicker

	work    []chan windowReq
	wg      sync.WaitGroup
	started bool
	closed  bool

	// Adaptive lookahead widening: after a window ends with every
	// mailbox empty, the coordinator skips the (no-op) barrier and runs
	// the next lookahead-sized window immediately, up to maxWiden
	// windows per barrier cycle. widened counts the extension windows.
	maxWiden int
	widened  uint64

	// Telemetry (nil when disabled). Each shard's worker writes window
	// spans into its own shard sink (single-writer); the coordinator
	// alone touches the engine sink and counters, between windows.
	shardSinks        []*obs.Sink
	engineSink        *obs.Sink
	ctrWindows        *obs.Counter
	ctrBarriers       *obs.Counter
	ctrBarrierWaitNs  *obs.Counter
	ctrMailboxBatches *obs.Counter
	ctrMailboxEvents  *obs.Counter
}

// NewParallel creates an engine with n shards. Shard i's simulator is
// seeded with a SplitMix64-derived stream of seed, so shard-local
// randomness is independent of the partition.
func NewParallel(seed int64, n int) *Parallel {
	if n < 1 {
		panic(fmt.Sprintf("sim: parallel engine needs at least one shard, got %d", n))
	}
	p := &Parallel{seed: seed, maxWiden: defaultMaxWiden}
	p.shards = make([]*Simulator, n)
	for i := range p.shards {
		p.shards[i] = New(randutil.DeriveSeed(seed, i))
	}
	return p
}

// Seed returns the engine's base seed (not a shard's derived seed).
func (p *Parallel) Seed() int64 { return p.seed }

// defaultMaxWiden bounds how many consecutive lookahead windows may run
// between barriers when no mailbox receives a post. K=8 captures most
// of the barrier savings on sparse phases while keeping the coordinator
// responsive to new crossings.
const defaultMaxWiden = 8

// SetMaxWiden bounds adaptive window widening to k lookahead windows
// per barrier cycle; k=1 disables widening (every window is followed by
// a barrier, the pre-widening behavior). Widening never changes
// simulation output — the skipped barriers are exactly the ones that
// would have drained zero events and fired zero tickers — so this knob
// exists for benchmarking and for tests that pin the window schedule.
func (p *Parallel) SetMaxWiden(k int) {
	if k < 1 {
		k = 1
	}
	p.maxWiden = k
}

// Widened returns the number of extension windows run so far: windows
// that followed a mailbox-silent window without an intervening barrier.
func (p *Parallel) Widened() uint64 { return p.widened }

// anyPosted reports whether any mailbox holds a pending crossing.
// Coordinator-only (between windows).
func (p *Parallel) anyPosted() bool {
	for _, m := range p.boxes {
		if len(m.buf) > 0 {
			return true
		}
	}
	return false
}

// SetObs attaches a telemetry session, which must have been created with
// this engine's shard count. Call before the first window: the engine
// resolves per-shard sinks and its coordinator counter handles once
// here. A nil session (telemetry off) is a no-op.
func (p *Parallel) SetObs(sess *obs.Session) {
	if sess == nil {
		return
	}
	p.engineSink = sess.EngineSink()
	p.ctrWindows = p.engineSink.Ctr(obs.CtrWindows)
	p.ctrBarriers = p.engineSink.Ctr(obs.CtrBarriers)
	p.ctrBarrierWaitNs = p.engineSink.Ctr(obs.CtrBarrierWaitNs)
	p.ctrMailboxBatches = p.engineSink.Ctr(obs.CtrMailboxBatches)
	p.ctrMailboxEvents = p.engineSink.Ctr(obs.CtrMailboxEvents)
	p.shardSinks = make([]*obs.Sink, len(p.shards))
	for i := range p.shardSinks {
		p.shardSinks[i] = sess.ShardSink(i)
	}
}

// shardSink returns shard i's telemetry sink (nil when disabled).
func (p *Parallel) shardSink(i int) *obs.Sink {
	if p.shardSinks == nil {
		return nil
	}
	return p.shardSinks[i]
}

// NumShards returns the shard count.
func (p *Parallel) NumShards() int { return len(p.shards) }

// Shard returns shard i's simulator. Model components owned by shard i
// must schedule exclusively on it.
func (p *Parallel) Shard(i int) *Simulator { return p.shards[i] }

// Now returns the barrier frontier: every shard has executed all events
// strictly before it.
func (p *Parallel) Now() units.Time { return p.now }

// Lookahead returns the window bound (the minimum mailbox latency).
func (p *Parallel) Lookahead() units.Time { return p.look }

// Executed sums executed events across shards.
func (p *Parallel) Executed() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.Executed()
	}
	return n
}

// NewMailbox registers a mailbox delivering into shard dst with the
// given minimum latency. Registration order is the tie-break of the
// barrier merge, so callers must register mailboxes in a deterministic,
// partition-invariant order (the topology builder registers them in
// link-construction order).
func (p *Parallel) NewMailbox(dst int, latency units.Time) *Mailbox {
	if dst < 0 || dst >= len(p.shards) {
		panic(fmt.Sprintf("sim: mailbox destination shard %d out of range", dst))
	}
	if latency <= 0 {
		panic(fmt.Sprintf("sim: mailbox latency %v must be positive (it bounds the lookahead)", latency))
	}
	if p.look == 0 || latency < p.look {
		p.look = latency
	}
	// Preallocate the batch buffer: it is reused across barriers
	// (drained with buf[:0]), so seeding a useful capacity up front
	// removes the early append-growth reallocations every run pays.
	m := &Mailbox{dst: dst, buf: make([]eventq.Item, 0, 128)}
	p.boxes = append(p.boxes, m)
	return m
}

// NewBarrierTicker registers fn to run every interval of simulated
// time, first firing one interval from the current frontier.
func (p *Parallel) NewBarrierTicker(interval units.Time, fn func(now units.Time)) *BarrierTicker {
	if interval <= 0 {
		panic("sim: barrier ticker interval must be positive")
	}
	t := &BarrierTicker{interval: interval, next: p.now + interval, fn: fn}
	p.tickers = append(p.tickers, t)
	return t
}

// AtBarrier registers fn to run once at a window barrier landing
// exactly at simulated time t: when it fires, every shard has executed
// all events before t and none at or after it — the only point where
// state read by multiple shards (routing tables, link rates) may
// safely change. Like mailbox registration, AtBarrier calls made
// before the run are part of the model and must be made in a
// deterministic order. t must be beyond the current frontier.
func (p *Parallel) AtBarrier(t units.Time, fn func(now units.Time)) *BarrierTicker {
	if t <= p.now {
		panic(fmt.Sprintf("sim: AtBarrier(%v) not beyond frontier %v", t, p.now))
	}
	bt := &BarrierTicker{next: t, fn: fn, oneShot: true}
	p.tickers = append(p.tickers, bt)
	return bt
}

// flush drains every mailbox and injects the buffered events into their
// destination shards in canonical order (time, registration order,
// posting order). Injecting each mailbox separately, in registration
// order, realizes exactly that order: the destination heap breaks time
// ties by push sequence, so an earlier-registered mailbox's equal-time
// events pop first, and posting order decides within one mailbox.
// Coordinator-only.
func (p *Parallel) flush() {
	p.ctrBarriers.Inc()
	for _, m := range p.boxes {
		buf := m.buf
		if len(buf) == 0 {
			continue
		}
		p.ctrMailboxBatches.Inc()
		p.ctrMailboxEvents.Add(int64(len(buf)))
		// A link posts deliveries in nondecreasing time order, so the
		// buffer is nearly always sorted; check before paying for a sort.
		sorted := true
		for i := 1; i < len(buf); i++ {
			if buf[i].Time < buf[i-1].Time {
				sorted = false
				break
			}
		}
		if !sorted {
			sort.SliceStable(buf, func(i, j int) bool { return buf[i].Time < buf[j].Time })
		}
		p.shards[m.dst].InjectBatch(buf)
		m.buf = buf[:0]
	}
}

// fireTickers runs every live ticker due at the current frontier.
func (p *Parallel) fireTickers() {
	for _, t := range p.tickers {
		for !t.stopped && t.next <= p.now {
			at := t.next
			if t.oneShot {
				t.stopped = true
			} else {
				t.next += t.interval
			}
			t.fn(at)
		}
	}
}

// nextTicker returns the earliest pending ticker time.
func (p *Parallel) nextTicker() (units.Time, bool) {
	var best units.Time
	ok := false
	for _, t := range p.tickers {
		if t.stopped {
			continue
		}
		if !ok || t.next < best {
			best, ok = t.next, true
		}
	}
	return best, ok
}

// peekMin returns the earliest event time across all shard calendars.
func (p *Parallel) peekMin() (units.Time, bool) {
	var best units.Time
	ok := false
	for _, s := range p.shards {
		if t, live := s.NextEventTime(); live && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// ensureWorkers lazily starts one goroutine per shard. Workers block on
// their request channel; the coordinator hands each a window and waits
// on the shared WaitGroup, which is the synchronization that makes
// shard state safely visible across window/coordinator transitions.
func (p *Parallel) ensureWorkers() {
	if p.started {
		return
	}
	p.started = true
	p.work = make([]chan windowReq, len(p.shards))
	for i := range p.shards {
		i := i
		p.work[i] = make(chan windowReq)
		go func() {
			for req := range p.work[i] {
				p.runShardWindow(i, req)
				p.wg.Done()
			}
		}()
	}
}

// runShardWindow executes one window on shard i and, when tracing is on,
// records it as a span in the shard's own sink. Exactly one goroutine —
// the shard's worker or the coordinator inline — runs this per window,
// so the sink stays single-writer.
func (p *Parallel) runShardWindow(i int, req windowReq) {
	s := p.shards[i]
	sink := p.shardSink(i)
	traced := sink.Enabled(obs.KindWindow)
	var before uint64
	var wall time.Time
	if traced {
		before = s.Executed()
		wall = time.Now()
	}
	if req.inclusive {
		s.RunUntil(req.limit)
	} else {
		s.RunBefore(req.limit)
	}
	if traced {
		sink.Emit(obs.Event{
			At:   req.start,
			Dur:  req.limit - req.start,
			Kind: obs.KindWindow,
			Node: int32(i),
			Aux:  int64(s.Executed() - before),
			Wall: time.Since(wall).Nanoseconds(),
		})
	}
}

// runWindow executes one window on every shard that has work in it.
// Exactly one active shard runs inline on the coordinator; the rest run
// on their workers.
func (p *Parallel) runWindow(limit units.Time, inclusive bool) {
	if p.closed {
		panic("sim: parallel engine used after Close")
	}
	p.ctrWindows.Inc()
	req := windowReq{start: p.now, limit: limit, inclusive: inclusive}
	inline := -1
	dispatched := 0
	for i, s := range p.shards {
		t, ok := s.NextEventTime()
		if !ok || t > limit || (!inclusive && t == limit) {
			continue
		}
		if inline < 0 {
			inline = i
			continue
		}
		p.ensureWorkers()
		p.wg.Add(1)
		p.work[i] <- req
		dispatched++
	}
	if inline >= 0 {
		p.runShardWindow(inline, req)
	}
	if dispatched == 0 {
		return
	}
	// Measure the coordinator's wait only when telemetry asks for it;
	// the handle is nil exactly when the whole subsystem is off.
	if p.ctrBarrierWaitNs == nil {
		p.wg.Wait()
		return
	}
	wall := time.Now()
	p.wg.Wait()
	waitNs := time.Since(wall).Nanoseconds()
	p.ctrBarrierWaitNs.Add(waitNs)
	if p.engineSink.Enabled(obs.KindBarrier) {
		active := int64(dispatched)
		if inline >= 0 {
			active++
		}
		p.engineSink.Emit(obs.Event{
			At:   limit,
			Kind: obs.KindBarrier,
			Aux:  active,
			Wall: waitNs,
		})
	}
}

// windowEnd picks the next barrier: bounded by the lookahead past the
// earliest event, by the next global ticker, and by the deadline.
func (p *Parallel) windowEnd(deadline units.Time) units.Time {
	next := deadline
	if t, ok := p.peekMin(); ok && p.look > 0 {
		if b := t + p.look; b < next {
			next = b
		}
	}
	if t, ok := p.nextTicker(); ok && t < next {
		next = t
	}
	return next
}

// RunUntil advances every shard through lookahead windows until all
// events with firing time <= deadline (the same inclusive bound as
// Simulator.RunUntil) have executed, firing barrier tickers and merging
// mailbox crossings at each barrier. Shard clocks end at the deadline.
func (p *Parallel) RunUntil(deadline units.Time) {
	if deadline < p.now {
		panic(fmt.Sprintf("sim: parallel RunUntil(%v) before frontier %v", deadline, p.now))
	}
	for {
		p.flush()
		p.fireTickers()
		if p.now >= deadline {
			break
		}
		// Adaptive widening: each barrier cycle runs up to maxWiden
		// lookahead windows back to back, stopping early the moment a
		// window posts a crossing (it must be injected before any shard
		// may enter the window it lands in) or a barrier ticker comes
		// due. A skipped barrier would have drained nothing and fired
		// nothing, so widening cannot change simulation output — it
		// only skips coordinator turnover between windows. Every
		// decision below reads partition-invariant state (the global
		// event minimum, the mailbox set, the ticker schedule), so the
		// window schedule — and with it the injection order — is itself
		// identical at every shard count.
		for phase := 0; ; phase++ {
			next := p.windowEnd(deadline)
			if next <= p.now {
				panic(fmt.Sprintf("sim: window did not advance past %v", p.now))
			}
			p.runWindow(next, false)
			p.now = next
			if p.now >= deadline || phase+1 >= p.maxWiden || p.anyPosted() {
				break
			}
			if t, ok := p.nextTicker(); ok && t <= p.now {
				break
			}
			p.widened++
		}
	}
	// Events at exactly the deadline: every event before it has run and
	// crossings due at it were injected by the flush above; anything
	// these events post crosses no earlier than deadline + lookahead.
	p.runWindow(deadline, true)
}

// Drain runs every shard to calendar exhaustion (the parallel
// counterpart of Simulator.Run after the workloads stop): windows keep
// advancing past the frontier with no deadline until no shard holds a
// live event and no mailbox holds a crossing. Periodic model tickers
// must be stopped first or Drain will not terminate, exactly like the
// serial run loop.
func (p *Parallel) Drain() {
	for {
		p.flush()
		t, ok := p.peekMin()
		if !ok {
			return
		}
		if p.look == 0 {
			// No mailboxes: a single shard draining serially.
			p.runWindow(t, true)
			if p.now < t {
				p.now = t
			}
			continue
		}
		// Same widening rule as RunUntil: keep running windows while no
		// crossing is posted (tickers are stopped by contract here).
		for phase := 0; ; phase++ {
			limit := t + p.look
			p.runWindow(limit, false)
			if p.now < limit {
				p.now = limit
			}
			if phase+1 >= p.maxWiden || p.anyPosted() {
				break
			}
			if t, ok = p.peekMin(); !ok {
				break
			}
			p.widened++
		}
	}
}

// Close shuts down the worker goroutines. The engine must not run
// afterwards; Close is idempotent and safe if workers never started.
func (p *Parallel) Close() {
	if p.closed {
		return
	}
	p.closed = true
	if p.started {
		for _, ch := range p.work {
			close(ch)
		}
	}
}
