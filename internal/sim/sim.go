// Package sim provides the discrete-event simulation kernel: a virtual
// clock, an event calendar, and a deterministic single-threaded run loop.
//
// All model components (links, switches, hosts) schedule closures on a
// shared *Simulator. Determinism is guaranteed by the event queue's FIFO
// tie-break and by the single seeded random source.
package sim

import (
	"fmt"
	"math/rand"

	"abm/internal/eventq"
	"abm/internal/units"
)

// Event is a cancelable handle to a scheduled callback.
type Event = eventq.Event

// Simulator owns the virtual clock and the event calendar.
type Simulator struct {
	now    units.Time
	q      eventq.Queue
	rng    *rand.Rand
	nexec  uint64
	halted bool
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (s *Simulator) Now() units.Time { return s.now }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.nexec }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Simulator) At(t units.Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	return s.q.Push(t, fn)
}

// After schedules fn to run d from now.
func (s *Simulator) After(d units.Time, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.q.Push(s.now+d, fn)
}

// Halt stops the run loop after the currently executing event returns.
func (s *Simulator) Halt() { s.halted = true }

// Run executes events until the calendar is empty or Halt is called.
func (s *Simulator) Run() {
	s.halted = false
	for !s.halted {
		e := s.q.Pop()
		if e == nil {
			return
		}
		s.now = e.Time
		s.nexec++
		e.Fn()
	}
}

// RunUntil executes events with firing time <= deadline, then advances
// the clock to the deadline. Events scheduled beyond the deadline stay
// queued and fire on a later call.
func (s *Simulator) RunUntil(deadline units.Time) {
	s.halted = false
	for !s.halted {
		e := s.q.Peek()
		if e == nil || e.Time > deadline {
			break
		}
		s.q.Pop()
		s.now = e.Time
		s.nexec++
		e.Fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of events still in the calendar (including
// canceled events not yet discarded).
func (s *Simulator) Pending() int { return s.q.Len() }

// Ticker repeatedly invokes fn every interval until Stop is called.
type Ticker struct {
	sim      *Simulator
	interval units.Time
	fn       func()
	ev       *Event
	stopped  bool
}

// NewTicker schedules fn every interval, first firing one interval from
// now. The interval must be positive.
func (s *Simulator) NewTicker(interval units.Time, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{sim: s, interval: interval, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.After(t.interval, func() {
		if t.stopped {
			return
		}
		t.fn()
		t.arm()
	})
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
