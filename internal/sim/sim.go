// Package sim provides the discrete-event simulation kernel: a virtual
// clock, an event calendar, and a deterministic single-threaded run loop.
//
// All model components (links, switches, hosts) schedule callbacks on a
// shared *Simulator. Determinism is guaranteed by the event queue's FIFO
// tie-break and by the single seeded random source.
//
// The hot path is allocation-free: AtArg/AfterArg schedule a long-lived
// func with a pointer-shaped argument (no closure allocation, no heap
// node — see internal/eventq), and the simulator owns a deterministic
// free list of packets (NewPacket/FreePacket) so per-packet model
// objects are recycled instead of re-allocated.
package sim

import (
	"fmt"
	"math/rand"

	"abm/internal/eventq"
	"abm/internal/packet"
	"abm/internal/units"
)

// Event is a cancelable handle to a scheduled callback. It is a small
// value; the zero Event is inert (Cancel is a no-op, Scheduled reports
// false), so components can hold one without a nil check.
type Event = eventq.Event

// LaneID names a per-source FIFO lane of the simulator's calendar; see
// NewLane.
type LaneID = eventq.LaneID

// Simulator owns the virtual clock, the event calendar, and the packet
// free list.
type Simulator struct {
	now    units.Time
	q      eventq.Queue
	pool   packet.Pool
	rng    *rand.Rand
	seed   int64
	nexec  uint64
	halted bool
}

// New returns a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Now returns the current simulated time.
func (s *Simulator) Now() units.Time { return s.now }

// Seed returns the seed the simulator was created with. Model builders
// use it to derive per-component random streams that are independent of
// execution order (see topo: per-switch MMU randomness).
func (s *Simulator) Seed() int64 { return s.seed }

// Rand returns the simulator's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Simulator) Executed() uint64 { return s.nexec }

// NewPacket returns a zeroed packet from the simulator's free list.
func (s *Simulator) NewPacket() *packet.Packet { return s.pool.Get() }

// FreePacket releases a packet back to the free list. The caller must
// be the packet's sole owner and drop every reference to it (and its
// INT slices).
func (s *Simulator) FreePacket(p *packet.Packet) { s.pool.Put(p) }

// PacketPool exposes the free list for instrumentation and tests.
func (s *Simulator) PacketPool() *packet.Pool { return &s.pool }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it would silently reorder causality.
func (s *Simulator) At(t units.Time, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	return s.q.Push(t, fn)
}

// After schedules fn to run d from now.
func (s *Simulator) After(d units.Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.q.Push(s.now+d, fn)
}

// AtArg schedules fn(arg) at absolute time t. With a long-lived fn and
// a pointer-shaped arg this performs no allocation; it is the
// scheduling primitive of the packet hot path.
func (s *Simulator) AtArg(t units.Time, fn func(any), arg any) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	return s.q.PushArg(t, fn, arg)
}

// AfterArg schedules fn(arg) to run d from now; see AtArg.
func (s *Simulator) AfterArg(d units.Time, fn func(any), arg any) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.q.PushArg(s.now+d, fn, arg)
}

// NewLane allocates a FIFO lane in the calendar. A component whose
// events are born in nondecreasing time order — a link with fixed
// delay, a serializing transmitter, a pacing or retransmission timer —
// should allocate one lane per such stream at construction time and
// schedule through the AtLane/AfterLane variants: in-order pushes then
// bypass the calendar heap entirely (see internal/eventq). Lanes are
// never reclaimed; allocate them per component, not per packet.
func (s *Simulator) NewLane() LaneID { return s.q.NewLane() }

// ReleaseLane recycles a lane for a future NewLane; transient
// components (per-flow timers) call it on completion so lane state
// stays bounded by the number of live components, not the number ever
// created. The releasing component must not schedule through the ID
// again.
func (s *Simulator) ReleaseLane(id LaneID) { s.q.ReleaseLane(id) }

// AtLane schedules fn at absolute time t through the given lane.
func (s *Simulator) AtLane(id LaneID, t units.Time, fn func()) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	return s.q.PushLane(id, t, fn)
}

// AfterLane schedules fn to run d from now through the given lane.
func (s *Simulator) AfterLane(id LaneID, d units.Time, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.q.PushLane(id, s.now+d, fn)
}

// AtLaneArg schedules fn(arg) at absolute time t through the given
// lane; the lane counterpart of AtArg.
func (s *Simulator) AtLaneArg(id LaneID, t units.Time, fn func(any), arg any) Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	return s.q.PushLaneArg(id, t, fn, arg)
}

// AfterLaneArg schedules fn(arg) to run d from now through the given
// lane; the lane counterpart of AfterArg.
func (s *Simulator) AfterLaneArg(id LaneID, d units.Time, fn func(any), arg any) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.q.PushLaneArg(id, s.now+d, fn, arg)
}

// Halt stops the run loop after the currently executing event returns.
func (s *Simulator) Halt() { s.halted = true }

// Run executes events until the calendar is empty or Halt is called.
func (s *Simulator) Run() {
	s.halted = false
	for !s.halted {
		fn, arg, t, ok := s.q.Pop()
		if !ok {
			return
		}
		s.now = t
		s.nexec++
		fn(arg)
	}
}

// RunUntil executes events with firing time <= deadline, then advances
// the clock to the deadline. Events scheduled beyond the deadline stay
// queued and fire on a later call.
func (s *Simulator) RunUntil(deadline units.Time) {
	s.halted = false
	for !s.halted {
		fn, arg, t, ok := s.q.PopLE(deadline)
		if !ok {
			break
		}
		s.now = t
		s.nexec++
		fn(arg)
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunBefore executes events with firing time strictly less than limit
// and leaves events at or beyond limit queued. Unlike RunUntil it does
// not advance the clock to the limit: the clock stays at the last
// executed event, so a later injection at limit (a window-barrier
// delivery) still schedules in the shard's future. This is the
// lookahead-window body of the parallel engine.
func (s *Simulator) RunBefore(limit units.Time) {
	s.halted = false
	for !s.halted {
		fn, arg, t, ok := s.q.PopLT(limit)
		if !ok {
			return
		}
		s.now = t
		s.nexec++
		fn(arg)
	}
}

// NextEventTime returns the firing time of the earliest live event, or
// ok=false for an empty calendar. The parallel engine's coordinator
// uses it to size lookahead windows.
func (s *Simulator) NextEventTime() (units.Time, bool) { return s.q.PeekTime() }

// InjectBatch schedules a pre-ordered batch of events in one pass; see
// eventq.PushBatch. The batch must already be sorted by the caller's
// merge order — items keep that order among simultaneous events.
// Injecting before the shard clock would silently reorder causality,
// so that panics (checking the first item suffices: the batch is
// sorted by time).
func (s *Simulator) InjectBatch(items []eventq.Item) {
	if len(items) > 0 && items[0].Time < s.now {
		panic(fmt.Sprintf("sim: injecting at %v before now %v", items[0].Time, s.now))
	}
	s.q.PushBatch(items)
}

// Pending returns the number of events still in the calendar (including
// canceled events not yet discarded).
func (s *Simulator) Pending() int { return s.q.Len() }

// Ticker repeatedly invokes fn every interval until Stop is called.
type Ticker struct {
	sim      *Simulator
	interval units.Time
	fn       func()
	fire     func() // prebound so re-arming never allocates
	ev       Event
	lane     LaneID // firing times are strictly increasing: a perfect lane
	stopped  bool
}

// NewTicker schedules fn every interval, first firing one interval from
// now. The interval must be positive.
func (s *Simulator) NewTicker(interval units.Time, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{sim: s, interval: interval, fn: fn, lane: s.NewLane()}
	t.fire = func() {
		if t.stopped {
			return
		}
		t.fn()
		t.arm()
	}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.sim.AfterLane(t.lane, t.interval, t.fire)
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}
