package device

import (
	"math/rand"
	"testing"

	"abm/internal/aqm"
	"abm/internal/bm"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/units"
)

// sink collects delivered packets with their arrival times.
type sink struct {
	id      packet.NodeID
	sim     *sim.Simulator
	pkts    []*packet.Packet
	arrived []units.Time
}

func (s *sink) ID() packet.NodeID { return s.id }
func (s *sink) Receive(p *packet.Packet) {
	s.pkts = append(s.pkts, p)
	s.arrived = append(s.arrived, s.sim.Now())
}

func dataPkt(flow uint64, payload units.ByteCount) *packet.Packet {
	return &packet.Packet{FlowID: flow, Payload: payload}
}

// testSwitch builds a 1-in-1-out switch: everything routes to port 0,
// whose link goes to the returned sink.
func testSwitch(s *sim.Simulator, cfg SwitchConfig) (*Switch, *sink) {
	if cfg.NumPorts == 0 {
		cfg.NumPorts = 1
	}
	if cfg.QueuesPerPort == 0 {
		cfg.QueuesPerPort = 1
	}
	if cfg.PortRate == 0 {
		cfg.PortRate = 10 * units.GigabitPerSec
	}
	if cfg.MMU.BufferSize == 0 {
		cfg.MMU.BufferSize = units.Megabyte
	}
	sw := NewSwitch(s, cfg)
	sw.SetRouter(func(_ *Switch, _ *packet.Packet) int { return 0 })
	dst := &sink{id: 99, sim: s}
	sw.ConnectPort(0, NewLink(s, 10*units.Microsecond, dst))
	return sw, dst
}

func TestForwardingTiming(t *testing.T) {
	s := sim.New(1)
	sw, dst := testSwitch(s, SwitchConfig{})
	p := dataPkt(1, 1440) // 1500 on the wire: 1.2us at 10G
	s.At(0, func() { sw.Receive(p) })
	s.Run()
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(dst.pkts))
	}
	// Serialization 1.2us + propagation 10us.
	if want := 11200 * units.Nanosecond; dst.arrived[0] != want {
		t.Fatalf("arrival at %v, want %v", dst.arrived[0], want)
	}
}

func TestFIFOOrderWithinQueue(t *testing.T) {
	s := sim.New(1)
	sw, dst := testSwitch(s, SwitchConfig{})
	for i := 0; i < 10; i++ {
		p := dataPkt(uint64(i), 1440)
		s.At(units.Time(i), func() { sw.Receive(p) })
	}
	s.Run()
	if len(dst.pkts) != 10 {
		t.Fatalf("delivered %d, want 10", len(dst.pkts))
	}
	for i, p := range dst.pkts {
		if p.FlowID != uint64(i) {
			t.Fatalf("out of order: pos %d has flow %d", i, p.FlowID)
		}
	}
}

func TestBackToBackThroughput(t *testing.T) {
	s := sim.New(1)
	sw, dst := testSwitch(s, SwitchConfig{})
	const n = 100
	s.At(0, func() {
		for i := 0; i < n; i++ {
			sw.Receive(dataPkt(uint64(i), 1440))
		}
	})
	s.Run()
	if len(dst.pkts) != n {
		t.Fatalf("delivered %d, want %d", len(dst.pkts), n)
	}
	// Last arrival = n serializations + one propagation.
	want := units.Time(n)*1200*units.Nanosecond + 10*units.Microsecond
	if got := dst.arrived[n-1]; got != want {
		t.Fatalf("last arrival %v, want %v", got, want)
	}
}

func TestDTThresholdDrops(t *testing.T) {
	s := sim.New(1)
	// B = 15000, alpha = 1: first packet sees T = 15000. As the queue
	// fills, remaining shrinks; the queue stabilizes near alpha/(1+alpha)
	// of B = 7500.
	sw, _ := testSwitch(s, SwitchConfig{
		MMU: MMUConfig{BufferSize: 15000, BM: bm.DT{}, Alphas: []float64{1}},
	})
	s.At(0, func() {
		for i := 0; i < 20; i++ {
			sw.Receive(dataPkt(1, 1440))
		}
	})
	s.RunUntil(1) // before any serialization completes
	q := sw.Port(0).Queue(0)
	if q.DropsThreshold == 0 {
		t.Fatal("expected DT threshold drops")
	}
	// Steady occupancy must be around 7500 (5 packets), certainly < B.
	if q.Bytes() > 9000 {
		t.Fatalf("queue %v exceeds DT fixed point", q.Bytes())
	}
	sw.MMU().checkInvariants()
}

func TestBufferFullDrops(t *testing.T) {
	s := sim.New(1)
	sw, _ := testSwitch(s, SwitchConfig{
		MMU: MMUConfig{BufferSize: 4500, BM: bm.CS{}},
	})
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			sw.Receive(dataPkt(1, 1440))
		}
	})
	s.RunUntil(1)
	q := sw.Port(0).Queue(0)
	if q.DropsNoBuffer == 0 {
		t.Fatal("expected buffer-full drops under CS")
	}
	if got := sw.MMU().Used(); got > 4500 {
		t.Fatalf("pool overflow: %v", got)
	}
	sw.MMU().checkInvariants()
}

func TestSharedBufferAcrossPorts(t *testing.T) {
	s := sim.New(1)
	cfg := SwitchConfig{NumPorts: 2, QueuesPerPort: 1, PortRate: 10 * units.GigabitPerSec,
		MMU: MMUConfig{BufferSize: 30000, BM: bm.CS{}}}
	sw := NewSwitch(s, cfg)
	sw.SetRouter(func(_ *Switch, p *packet.Packet) int { return int(p.FlowID % 2) })
	d0, d1 := &sink{id: 90, sim: s}, &sink{id: 91, sim: s}
	sw.ConnectPort(0, NewLink(s, units.Microsecond, d0))
	sw.ConnectPort(1, NewLink(s, units.Microsecond, d1))
	s.At(0, func() {
		for i := 0; i < 30; i++ {
			sw.Receive(dataPkt(uint64(i), 1440))
		}
	})
	s.RunUntil(1)
	// Both ports' queues draw from one pool: used = sum of both backlogs.
	used := sw.MMU().Used()
	if used != sw.Port(0).Backlog()+sw.Port(1).Backlog() {
		t.Fatalf("pool %v != backlogs %v+%v", used, sw.Port(0).Backlog(), sw.Port(1).Backlog())
	}
	sw.MMU().checkInvariants()
	s.Run()
	if len(d0.pkts)+len(d1.pkts)+int(sw.TotalDrops()) != 30 {
		t.Fatalf("conservation: delivered %d+%d, dropped %d, want 30 total",
			len(d0.pkts), len(d1.pkts), sw.TotalDrops())
	}
}

func TestRoundRobinFairness(t *testing.T) {
	s := sim.New(1)
	cfg := SwitchConfig{NumPorts: 1, QueuesPerPort: 2, PortRate: 10 * units.GigabitPerSec,
		MMU: MMUConfig{BufferSize: units.Megabyte, BM: bm.CS{}}}
	sw := NewSwitch(s, cfg)
	sw.SetRouter(func(_ *Switch, _ *packet.Packet) int { return 0 })
	dst := &sink{id: 99, sim: s}
	sw.ConnectPort(0, NewLink(s, units.Microsecond, dst))
	s.At(0, func() {
		for i := 0; i < 20; i++ {
			p := dataPkt(uint64(i), 1440)
			p.Prio = uint8(i % 2)
			sw.Receive(p)
		}
	})
	s.Run()
	// Deliveries must alternate between priorities.
	for i := 1; i < len(dst.pkts); i++ {
		if dst.pkts[i].Prio == dst.pkts[i-1].Prio {
			t.Fatalf("round robin should alternate, got %d then %d at %d",
				dst.pkts[i-1].Prio, dst.pkts[i].Prio, i)
		}
	}
}

func TestStrictPriority(t *testing.T) {
	s := sim.New(1)
	cfg := SwitchConfig{NumPorts: 1, QueuesPerPort: 2, PortRate: 10 * units.GigabitPerSec,
		NewScheduler: func() Scheduler { return StrictPriority{} },
		MMU:          MMUConfig{BufferSize: units.Megabyte, BM: bm.CS{}}}
	sw := NewSwitch(s, cfg)
	sw.SetRouter(func(_ *Switch, _ *packet.Packet) int { return 0 })
	dst := &sink{id: 99, sim: s}
	sw.ConnectPort(0, NewLink(s, units.Microsecond, dst))
	s.At(0, func() {
		// Low priority first, then high: high must still win.
		for i := 0; i < 5; i++ {
			p := dataPkt(uint64(i), 1440)
			p.Prio = 1
			sw.Receive(p)
		}
		for i := 5; i < 10; i++ {
			p := dataPkt(uint64(i), 1440)
			p.Prio = 0
			sw.Receive(p)
		}
	})
	s.Run()
	// The first packet was already in transmission; all subsequent
	// prio-0 packets must precede remaining prio-1.
	var order []uint8
	for _, p := range dst.pkts {
		order = append(order, p.Prio)
	}
	// After position 0, we expect the five prio-0 then four prio-1.
	for i := 1; i <= 5; i++ {
		if order[i] != 0 {
			t.Fatalf("strict priority violated: %v", order)
		}
	}
}

func TestDWRRWeights(t *testing.T) {
	s := sim.New(1)
	cfg := SwitchConfig{NumPorts: 1, QueuesPerPort: 2, PortRate: 10 * units.GigabitPerSec,
		NewScheduler: func() Scheduler { return &DWRR{Weights: []int{3, 1}} },
		MMU:          MMUConfig{BufferSize: units.Megabyte, BM: bm.CS{}}}
	sw := NewSwitch(s, cfg)
	sw.SetRouter(func(_ *Switch, _ *packet.Packet) int { return 0 })
	dst := &sink{id: 99, sim: s}
	sw.ConnectPort(0, NewLink(s, units.Microsecond, dst))
	s.At(0, func() {
		for i := 0; i < 200; i++ {
			p := dataPkt(uint64(i), 1440)
			p.Prio = uint8(i % 2)
			sw.Receive(p)
		}
	})
	// Run long enough for ~40 departures, then count the mix.
	s.RunUntil(50 * units.Microsecond)
	var q0 int
	for _, p := range dst.pkts {
		if p.Prio == 0 {
			q0++
		}
	}
	total := len(dst.pkts)
	if total < 20 {
		t.Fatalf("too few deliveries to judge: %d", total)
	}
	frac := float64(q0) / float64(total)
	if frac < 0.6 || frac > 0.9 {
		t.Fatalf("weight-3 queue got %.2f of service, want ~0.75", frac)
	}
	sw.Stop()
}

func TestECNMarkingIntegration(t *testing.T) {
	s := sim.New(1)
	sw, dst := testSwitch(s, SwitchConfig{
		MMU: MMUConfig{
			BufferSize: units.Megabyte,
			BM:         bm.CS{},
			AQMFactory: func() aqm.Policy { return aqm.ECNThreshold{K: 3000} },
		},
	})
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			p := dataPkt(1, 1440)
			p.Set(packet.FlagECT)
			sw.Receive(p)
		}
	})
	s.Run()
	marked := 0
	for _, p := range dst.pkts {
		if p.Is(packet.FlagCE) {
			marked++
		}
	}
	// The first packet dequeues immediately; arrivals 2-3 see a queue
	// under K; the remaining 7 are marked.
	if marked != 7 {
		t.Fatalf("marked %d, want 7", marked)
	}
	if sw.MMU().MarkedPkts != 7 {
		t.Fatalf("counter = %d, want 7", sw.MMU().MarkedPkts)
	}
}

func TestHeadroomForUnscheduled(t *testing.T) {
	s := sim.New(1)
	// Tiny shared pool: a burst of unscheduled packets must overflow into
	// headroom under ABM instead of dropping.
	sw, _ := testSwitch(s, SwitchConfig{
		MMU: MMUConfig{
			BufferSize: 3000,
			Headroom:   30000,
			BM:         bm.ABM{},
			Alphas:     []float64{0.5},
		},
	})
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			p := dataPkt(1, 1440)
			p.Set(packet.FlagUnscheduled)
			sw.Receive(p)
		}
	})
	s.RunUntil(1)
	m := sw.MMU()
	if m.HeadroomUsed() == 0 {
		t.Fatal("expected headroom to absorb the unscheduled burst")
	}
	m.checkInvariants()
	q := sw.Port(0).Queue(0)
	if q.TotalDrops() > 0 && m.HeadroomUsed() < 30000-1500 {
		t.Fatalf("dropped %d with headroom to spare (%v used)", q.TotalDrops(), m.HeadroomUsed())
	}
	s.Run()
	m.checkInvariants()
	if m.TotalUsed() != 0 {
		t.Fatalf("buffer not drained: %v", m.TotalUsed())
	}
}

func TestScheduledPacketsCannotUseHeadroom(t *testing.T) {
	s := sim.New(1)
	sw, _ := testSwitch(s, SwitchConfig{
		MMU: MMUConfig{BufferSize: 3000, Headroom: 30000, BM: bm.ABM{}, Alphas: []float64{0.5}},
	})
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			sw.Receive(dataPkt(1, 1440)) // no unscheduled tag
		}
	})
	s.RunUntil(1)
	if sw.MMU().HeadroomUsed() != 0 {
		t.Fatal("scheduled packets must not be charged to headroom under ABM")
	}
}

func TestINTAppending(t *testing.T) {
	s := sim.New(1)
	sw, dst := testSwitch(s, SwitchConfig{EnableINT: true})
	p := dataPkt(1, 1440)
	s.At(0, func() { sw.Receive(p) })
	s.Run()
	if len(dst.pkts[0].Hops) != 1 {
		t.Fatalf("INT hops = %d, want 1", len(dst.pkts[0].Hops))
	}
	hop := dst.pkts[0].Hops[0]
	if hop.Rate != 10*units.GigabitPerSec {
		t.Fatalf("INT rate = %v", hop.Rate)
	}
	if hop.TxBytes != 1500 {
		t.Fatalf("INT txBytes = %v, want 1500", hop.TxBytes)
	}
	// ACKs are not stamped.
	ack := &packet.Packet{Flags: packet.FlagACK}
	s.At(s.Now(), func() { sw.Receive(ack) })
	s.Run()
	if len(ack.Hops) != 0 {
		t.Fatal("ACKs must not accumulate INT")
	}
}

func TestCodelDequeueDropsIntegration(t *testing.T) {
	s := sim.New(1)
	sw, dst := testSwitch(s, SwitchConfig{
		PortRate: 100 * units.MegabitPerSec, // slow port: long sojourns
		MMU: MMUConfig{
			BufferSize: 10 * units.Megabyte,
			BM:         bm.CS{},
			AQMFactory: func() aqm.Policy { return aqm.NewCodel(units.Millisecond, 5*units.Millisecond) },
		},
	})
	s.At(0, func() {
		for i := 0; i < 600; i++ {
			sw.Receive(dataPkt(1, 1440))
		}
	})
	s.Run()
	drops := sw.Port(0).Queue(0).DropsAQM
	if drops == 0 {
		t.Fatal("codel should drop under sustained sojourn above target")
	}
	if len(dst.pkts)+int(drops) != 600 {
		t.Fatalf("conservation: %d delivered + %d dropped != 600", len(dst.pkts), drops)
	}
}

func TestInstantCongestedCount(t *testing.T) {
	s := sim.New(1)
	cfg := SwitchConfig{NumPorts: 3, QueuesPerPort: 1, PortRate: 10 * units.GigabitPerSec,
		MMU: MMUConfig{BufferSize: 100_000, BM: bm.DT{}, Alphas: []float64{0.5}}}
	sw := NewSwitch(s, cfg)
	sw.SetRouter(func(_ *Switch, p *packet.Packet) int { return int(p.FlowID % 3) })
	for i := 0; i < 3; i++ {
		sw.ConnectPort(i, NewLink(s, units.Microsecond, &sink{id: packet.NodeID(90 + i), sim: s}))
	}
	// Fill ports 0 and 1 to their thresholds.
	s.At(0, func() {
		for i := 0; i < 60; i++ {
			sw.Receive(dataPkt(uint64(i%2), 1440))
		}
	})
	s.RunUntil(1)
	n := sw.MMU().CongestedSamePrio(0)
	if n != 2 {
		t.Fatalf("congested queues = %d, want 2", n)
	}
}

func TestInstantNormDrainShare(t *testing.T) {
	s := sim.New(1)
	cfg := SwitchConfig{NumPorts: 1, QueuesPerPort: 4, PortRate: 10 * units.GigabitPerSec,
		MMU: MMUConfig{BufferSize: units.Megabyte, BM: bm.CS{}}}
	sw := NewSwitch(s, cfg)
	sw.SetRouter(func(_ *Switch, _ *packet.Packet) int { return 0 })
	sw.ConnectPort(0, NewLink(s, units.Microsecond, &sink{id: 99, sim: s}))
	s.At(0, func() {
		// Backlog queues 0 and 1.
		for i := 0; i < 8; i++ {
			p := dataPkt(uint64(i), 1440)
			p.Prio = uint8(i % 2)
			sw.Receive(p)
		}
	})
	s.RunUntil(1)
	m := sw.MMU()
	// Queues 0,1 active: each gets 1/2. Queue 2 idle: would join as 3rd.
	if got := m.NormDrain(0, 0); got != 0.5 {
		t.Fatalf("active queue share = %v, want 0.5", got)
	}
	if got := m.NormDrain(0, 2); got < 0.32 || got > 0.34 {
		t.Fatalf("idle queue share = %v, want 1/3", got)
	}
}

func TestPeriodicStatsMode(t *testing.T) {
	s := sim.New(1)
	sw, _ := testSwitch(s, SwitchConfig{
		MMU: MMUConfig{
			BufferSize:    100_000,
			BM:            bm.ABM{},
			Alphas:        []float64{0.5},
			StatsInterval: 10 * units.Microsecond,
		},
	})
	s.At(0, func() {
		for i := 0; i < 40; i++ {
			sw.Receive(dataPkt(1, 1440))
		}
	})
	s.RunUntil(50 * units.Microsecond)
	// After a few ticks the congested count must reflect the backlog.
	if n := sw.MMU().CongestedSamePrio(0); n < 1 {
		t.Fatalf("congested = %d", n)
	}
	sw.Stop()
	s.Run()
	sw.MMU().checkInvariants()
}

func TestMeasuredDrainRate(t *testing.T) {
	s := sim.New(1)
	sw, _ := testSwitch(s, SwitchConfig{
		MMU: MMUConfig{
			BufferSize:    units.Megabyte,
			BM:            bm.CS{},
			StatsInterval: 12 * units.Microsecond,
			DrainRate:     DrainRateMeasured,
		},
	})
	s.At(0, func() {
		for i := 0; i < 30; i++ {
			sw.Receive(dataPkt(1, 1440))
		}
	})
	// One backlogged queue drains at full port rate; after a tick the
	// measured estimate must be ~1.
	s.RunUntil(13 * units.Microsecond)
	got := sw.MMU().NormDrain(0, 0)
	if got < 0.9 || got > 1.0 {
		t.Fatalf("measured norm drain = %v, want ~1", got)
	}
	sw.Stop()
}

func TestTrimIntegration(t *testing.T) {
	s := sim.New(1)
	sw, dst := testSwitch(s, SwitchConfig{
		MMU: MMUConfig{
			BufferSize: units.Megabyte,
			BM:         bm.CS{},
			AQMFactory: func() aqm.Policy { return aqm.CutPayload{TrimAbove: 3000} },
		},
	})
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			sw.Receive(dataPkt(1, 1440))
		}
	})
	s.Run()
	trimmed := 0
	for _, p := range dst.pkts {
		if p.Is(packet.FlagTrimmed) {
			trimmed++
		}
	}
	if trimmed != 7 {
		t.Fatalf("trimmed %d, want 7", trimmed)
	}
	if sw.MMU().TrimmedPkts != 7 {
		t.Fatalf("trim counter = %d", sw.MMU().TrimmedPkts)
	}
	sw.MMU().checkInvariants()
}

// Property-style fuzz: random bursts with random policies never violate
// the buffer accounting invariants or lose conservation.
func TestInvariantsUnderRandomTraffic(t *testing.T) {
	policies := []bm.Policy{bm.DT{}, bm.CS{}, bm.ABM{}, bm.NewFAB(0, 0), bm.NewIB(), bm.CP{NumQueues: 8}}
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name(), func(t *testing.T) {
			s := sim.New(7)
			rng := rand.New(rand.NewSource(13))
			cfg := SwitchConfig{NumPorts: 4, QueuesPerPort: 2, PortRate: 10 * units.GigabitPerSec,
				MMU: MMUConfig{BufferSize: 50_000, Headroom: 10_000, BM: pol,
					Alphas: []float64{0.5, 0.5}, StatsInterval: 5 * units.Microsecond}}
			sw := NewSwitch(s, cfg)
			sw.SetRouter(func(_ *Switch, p *packet.Packet) int { return int(p.FlowID) % 4 })
			sinks := make([]*sink, 4)
			for i := range sinks {
				sinks[i] = &sink{id: packet.NodeID(90 + i), sim: s}
				sw.ConnectPort(i, NewLink(s, units.Microsecond, sinks[i]))
			}
			sent := 0
			for i := 0; i < 400; i++ {
				at := units.Time(rng.Int63n(int64(100 * units.Microsecond)))
				p := dataPkt(uint64(rng.Intn(16)), units.ByteCount(rng.Intn(1440)+1))
				p.Prio = uint8(rng.Intn(2))
				if rng.Intn(3) == 0 {
					p.Set(packet.FlagUnscheduled)
				}
				sent++
				s.At(at, func() {
					sw.Receive(p)
					sw.MMU().checkInvariants()
				})
			}
			s.RunUntil(95 * units.Microsecond)
			sw.MMU().checkInvariants()
			sw.Stop()
			s.Run()
			sw.MMU().checkInvariants()
			if sw.MMU().TotalUsed() != 0 {
				t.Fatalf("buffer not drained: %v", sw.MMU().TotalUsed())
			}
			delivered := 0
			for _, k := range sinks {
				delivered += len(k.pkts)
			}
			if delivered+int(sw.TotalDrops()) != sent {
				t.Fatalf("conservation: %d delivered + %d dropped != %d sent",
					delivered, sw.TotalDrops(), sent)
			}
		})
	}
}

func TestNormShare(t *testing.T) {
	rr := &RoundRobin{}
	if got := NormShare(rr, []int{0, 1}, 0); got != 0.5 {
		t.Fatalf("rr share = %v", got)
	}
	if got := NormShare(rr, []int{1}, 0); got != 0.5 {
		t.Fatalf("rr join share = %v", got)
	}
	if got := NormShare(rr, nil, 0); got != 1 {
		t.Fatalf("rr sole share = %v", got)
	}
	d := &DWRR{Weights: []int{3, 1}}
	if got := NormShare(d, []int{0, 1}, 0); got != 0.75 {
		t.Fatalf("dwrr share = %v", got)
	}
	sp := StrictPriority{}
	if got := NormShare(sp, []int{0, 1}, 0); got != 1 {
		t.Fatalf("strict high share = %v", got)
	}
	if got := NormShare(sp, []int{0, 1}, 1); got != 0.01 {
		t.Fatalf("strict low share = %v", got)
	}
}

func TestLinkValidation(t *testing.T) {
	s := sim.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil destination")
		}
	}()
	NewLink(s, 0, nil)
}

func TestSwitchConfigValidation(t *testing.T) {
	s := sim.New(1)
	for _, cfg := range []SwitchConfig{
		{NumPorts: 0, QueuesPerPort: 1, PortRate: 1},
		{NumPorts: 1, QueuesPerPort: 0, PortRate: 1},
		{NumPorts: 1, QueuesPerPort: 1, PortRate: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", cfg)
				}
			}()
			cfg.MMU.BufferSize = 1000
			NewSwitch(s, cfg)
		}()
	}
}

func TestQueueWatermark(t *testing.T) {
	s := sim.New(1)
	sw, _ := testSwitch(s, SwitchConfig{})
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			sw.Receive(dataPkt(1, 1440))
		}
	})
	s.RunUntil(1)
	q := sw.Port(0).Queue(0)
	peak := q.MaxBytes
	if peak < 9*1500 {
		t.Fatalf("watermark %v, want >= 9 packets", peak)
	}
	s.Run()
	if q.Bytes() != 0 {
		t.Fatal("queue should drain")
	}
	if q.MaxBytes != peak {
		t.Fatal("watermark must persist after drain")
	}
}

func TestINTMultiHop(t *testing.T) {
	// Chain two switches: the packet must accumulate one INT entry per
	// hop, in path order.
	s := sim.New(1)
	cfgA := SwitchConfig{NumPorts: 1, QueuesPerPort: 1, PortRate: 10 * units.GigabitPerSec,
		EnableINT: true, MMU: MMUConfig{BufferSize: units.Megabyte, BM: bm.CS{}}}
	swB := NewSwitch(s, cfgA)
	swA := NewSwitch(s, cfgA)
	swA.SetRouter(func(_ *Switch, _ *packet.Packet) int { return 0 })
	swB.SetRouter(func(_ *Switch, _ *packet.Packet) int { return 0 })
	dst := &sink{id: 99, sim: s}
	swA.ConnectPort(0, NewLink(s, units.Microsecond, swB))
	swB.ConnectPort(0, NewLink(s, units.Microsecond, dst))
	p := dataPkt(1, 1440)
	s.At(0, func() { swA.Receive(p) })
	s.Run()
	if len(dst.pkts) != 1 {
		t.Fatal("packet lost")
	}
	hops := dst.pkts[0].Hops
	if len(hops) != 2 {
		t.Fatalf("INT hops = %d, want 2", len(hops))
	}
	if hops[0].TS >= hops[1].TS {
		t.Fatalf("hop timestamps out of order: %v, %v", hops[0].TS, hops[1].TS)
	}
}
