package device

import (
	"testing"

	"abm/internal/obs"
)

// TestVerdictAlignment pins the obs verdict constants to the MMU's
// AdmitResult values: the tracer records the AdmitResult numerically,
// so the first six verdicts must mirror it value for value.
func TestVerdictAlignment(t *testing.T) {
	pairs := []struct {
		res  AdmitResult
		verd uint8
	}{
		{Admitted, obs.VerdictAdmit},
		{AdmittedMarked, obs.VerdictAdmitMark},
		{DroppedThreshold, obs.VerdictDropThreshold},
		{DroppedNoBuffer, obs.VerdictDropNoBuffer},
		{DroppedAQM, obs.VerdictDropAQM},
		{DroppedAFD, obs.VerdictDropAFD},
	}
	for _, p := range pairs {
		if uint8(p.res) != p.verd {
			t.Errorf("AdmitResult %d != obs verdict %d (%s)", p.res, p.verd, obs.VerdictName(p.verd))
		}
		if p.res.Dropped() != obs.VerdictDropped(p.verd) {
			t.Errorf("Dropped() disagrees for %s", obs.VerdictName(p.verd))
		}
	}
	// The dequeue-only verdicts must stay out of the AdmitResult range
	// and keep their drop classification.
	if obs.VerdictDropped(obs.VerdictTx) {
		t.Error("VerdictTx classified as a drop")
	}
	if !obs.VerdictDropped(obs.VerdictDropDequeue) {
		t.Error("VerdictDropDequeue not classified as a drop")
	}
}
