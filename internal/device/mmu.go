package device

import (
	"fmt"
	"math/rand"

	"abm/internal/aqm"
	"abm/internal/bm"
	"abm/internal/obs"
	"abm/internal/obs/hist"
	"abm/internal/packet"
	"abm/internal/units"
)

// DrainRateMode selects how the MMU estimates a queue's normalized drain
// rate mu/b for the BM context.
type DrainRateMode uint8

const (
	// DrainRateShare derives mu/b from the scheduler: the queue's
	// bandwidth share among currently active queues at the port, counting
	// the queue itself (the §3.4 example: two congested queues under
	// round robin -> 0.5). This is the default.
	DrainRateShare DrainRateMode = iota
	// DrainRateMeasured uses bytes dequeued during the last stats
	// interval divided by interval*portRate, falling back to the share
	// estimate for queues that saw no service.
	DrainRateMeasured
)

// AdmitResult reports what the MMU did with a packet.
type AdmitResult uint8

// Admission outcomes.
const (
	Admitted AdmitResult = iota
	AdmittedMarked
	DroppedThreshold
	DroppedNoBuffer
	DroppedAQM
	DroppedAFD
)

// Dropped reports whether the result is any drop.
func (r AdmitResult) Dropped() bool { return r >= DroppedThreshold }

// MMUConfig parameterizes the memory-management unit.
type MMUConfig struct {
	BufferSize units.ByteCount // shared pool B
	Headroom   units.ByteCount // reserved pool for headroom-eligible packets

	Alphas           []float64 // per-priority alpha_p; missing entries get 0.5
	AlphaUnscheduled float64   // alpha for unscheduled packets (§3.3; paper uses 64)

	BM         bm.Policy
	AQMFactory aqm.Factory // per-queue AQM; nil means none

	// CongestedFactor is the fraction of the threshold above which a
	// queue counts as congested (paper: 0.9).
	CongestedFactor float64

	// DropControl subjects header-only packets (pure ACKs, trimmed
	// headers) to the BM threshold like data. By default they bypass the
	// threshold and are dropped only when the pool itself is full,
	// mirroring switches' special handling of sub-cell packets; without
	// this, tail-ACK losses convert into spurious retransmission
	// timeouts that drown the FCT signal the paper measures.
	DropControl bool

	// StatsInterval is the period at which n_p and mu/b are refreshed
	// (paper: once per RTT). Zero selects instant mode, where they are
	// recomputed on every admission — exact but slower, used in tests
	// and fluid-model validation.
	StatsInterval units.Time

	DrainRate DrainRateMode
}

// MMU is the memory-management unit of one switch: it owns the shared
// buffer accounting and runs hierarchical admission control.
type MMU struct {
	cfg MMUConfig
	sw  *Switch

	used         units.ByteCount // shared-pool occupancy
	headroomUsed units.ByteCount

	// fluid is the occupancy the hybrid engine's per-switch integrator
	// attributes to fluid-mode flows. It participates in every admission
	// decision (thresholds see it as used buffer, as do the fits checks)
	// but holds no packets, so the queue-sum invariant excludes it. Zero
	// whenever the hybrid engine is off.
	fluid units.ByteCount

	aqms [][]aqm.Policy // [port][prio]

	// Cached statistics (periodic mode).
	nCongested []int       // per priority
	normDrain  [][]float64 // [port][prio]

	// Per-admission scratch space, reused so the hot path performs no
	// allocation. Policies receive pointers to these for the duration
	// of one call and must not retain them (bm.Policy contract).
	bmCtx     bm.Ctx
	aqmCtx    aqm.Ctx
	activeSet []int

	rng *rand.Rand

	// Telemetry. The sink is nil when telemetry is off; the counter
	// handles are resolved once here so the admission path performs
	// plain nil-checked increments (see internal/obs).
	obsSink            *obs.Sink
	ctrAdmittedPkts    *obs.Counter
	ctrAdmittedBytes   *obs.Counter
	ctrDropThreshold   *obs.Counter
	ctrDropNoBuffer    *obs.Counter
	ctrDropAQM         *obs.Counter
	ctrDropAFD         *obs.Counter
	ctrDropUnscheduled *obs.Counter
	ctrMarked          *obs.Counter
	ctrTrimmed         *obs.Counter
	histHeadroom       *hist.Histogram

	// Counters.
	AdmittedPkts  int64
	AdmittedBytes units.ByteCount
	MarkedPkts    int64
	TrimmedPkts   int64
}

func newMMU(cfg MMUConfig, sw *Switch, rng *rand.Rand, sink *obs.Sink) *MMU {
	if cfg.BufferSize <= 0 {
		panic("device: MMU buffer size must be positive")
	}
	if cfg.BM == nil {
		cfg.BM = bm.DT{}
	}
	if cfg.CongestedFactor <= 0 {
		cfg.CongestedFactor = 0.9
	}
	if cfg.AlphaUnscheduled <= 0 {
		cfg.AlphaUnscheduled = 64
	}
	m := &MMU{cfg: cfg, sw: sw, rng: rng, obsSink: sink}
	m.ctrAdmittedPkts = sink.Ctr(obs.CtrAdmittedPkts)
	m.ctrAdmittedBytes = sink.Ctr(obs.CtrAdmittedBytes)
	m.ctrDropThreshold = sink.Ctr(obs.CtrDropThreshold)
	m.ctrDropNoBuffer = sink.Ctr(obs.CtrDropNoBuffer)
	m.ctrDropAQM = sink.Ctr(obs.CtrDropAQM)
	m.ctrDropAFD = sink.Ctr(obs.CtrDropAFD)
	m.ctrDropUnscheduled = sink.Ctr(obs.CtrDropUnscheduled)
	m.ctrMarked = sink.Ctr(obs.CtrECNMarked)
	m.ctrTrimmed = sink.Ctr(obs.CtrTrimmed)
	m.histHeadroom = sink.Hist(obs.HistAdmitHeadroom)
	np, nq := len(sw.ports), sw.prios
	m.aqms = make([][]aqm.Policy, np)
	m.normDrain = make([][]float64, np)
	for i := 0; i < np; i++ {
		m.aqms[i] = make([]aqm.Policy, nq)
		m.normDrain[i] = make([]float64, nq)
		for j := 0; j < nq; j++ {
			if cfg.AQMFactory != nil {
				m.aqms[i][j] = cfg.AQMFactory()
			} else {
				m.aqms[i][j] = aqm.None{}
			}
			m.normDrain[i][j] = 1
		}
	}
	m.nCongested = make([]int, nq)
	if b, ok := cfg.BM.(bm.Binder); ok {
		b.Bind(m)
	}
	if ap, ok := cfg.BM.(*bm.Approx); ok {
		ap.SetAlphas(m.allAlphas())
	}
	return m
}

func (m *MMU) allAlphas() []float64 {
	out := make([]float64, m.sw.prios)
	for i := range out {
		out[i] = m.alpha(i)
	}
	return out
}

func (m *MMU) alpha(prio int) float64 {
	if prio < len(m.cfg.Alphas) && m.cfg.Alphas[prio] > 0 {
		return m.cfg.Alphas[prio]
	}
	return 0.5
}

// Used returns the shared-pool occupancy (excluding headroom).
func (m *MMU) Used() units.ByteCount { return m.used }

// TotalUsed returns shared-pool plus headroom plus fluid occupancy.
func (m *MMU) TotalUsed() units.ByteCount { return m.used + m.headroomUsed + m.fluid }

// SetFluidBytes sets the fluid-mode occupancy the admission machinery
// charges against the shared buffer (hybrid engine integration epochs).
func (m *MMU) SetFluidBytes(b units.ByteCount) {
	if b < 0 {
		b = 0
	}
	m.fluid = b
}

// FluidBytes returns the current fluid-mode occupancy.
func (m *MMU) FluidBytes() units.ByteCount { return m.fluid }

// HeadroomUsed returns the headroom-pool occupancy.
func (m *MMU) HeadroomUsed() units.ByteCount { return m.headroomUsed }

// --- bm.Stats implementation -------------------------------------------

// BufferSize implements bm.Stats.
func (m *MMU) BufferSize() units.ByteCount { return m.cfg.BufferSize }

// BufferUsed implements bm.Stats.
func (m *MMU) BufferUsed() units.ByteCount { return m.used + m.fluid }

// Ports implements bm.Stats.
func (m *MMU) Ports() int { return len(m.sw.ports) }

// Prios implements bm.Stats.
func (m *MMU) Prios() int { return m.sw.prios }

// PortRate implements bm.Stats. Mixed-rate switches (SwitchConfig.
// PortRates) report port 0 — the host-facing side on leaf switches —
// as the nominal b the stateful policies normalize against.
func (m *MMU) PortRate() units.Rate { return m.sw.ports[0].rate }

// QueueLen implements bm.Stats.
func (m *MMU) QueueLen(port, prio int) units.ByteCount {
	return m.sw.ports[port].queues[prio].bytes
}

// NormDrain implements bm.Stats, returning the current estimate.
func (m *MMU) NormDrain(port, prio int) float64 {
	if m.cfg.StatsInterval == 0 {
		return m.instantNormDrain(port, prio)
	}
	return m.normDrain[port][prio]
}

// CongestedSamePrio implements bm.Stats, returning n_p (at least 1).
func (m *MMU) CongestedSamePrio(prio int) int {
	var n int
	if m.cfg.StatsInterval == 0 {
		n = m.countCongested(prio)
	} else {
		n = m.nCongested[prio]
	}
	if n < 1 {
		n = 1
	}
	return n
}

// -------------------------------------------------------------------------

// instantNormDrain computes the share-based estimate from live queue
// state. The active set is built in reused scratch space (NormShare
// only reads it).
func (m *MMU) instantNormDrain(port, prio int) float64 {
	p := m.sw.ports[port]
	active := m.activeSet[:0]
	for i, q := range p.queues {
		if q.bytes > 0 || i == prio {
			active = append(active, i)
		}
	}
	m.activeSet = active
	return NormShare(p.sched, active, prio)
}

// countCongested counts queues of the given priority whose occupancy is
// at or above CongestedFactor of their last threshold. It compares the
// cached float mirrors (bytesF, congestedAtF) maintained on enqueue/
// dequeue and threshold update, so the per-admission scan performs no
// int→float conversions or multiplies.
func (m *MMU) countCongested(prio int) int {
	n := 0
	for _, p := range m.sw.ports {
		q := p.queues[prio]
		if q.bytes > 0 && q.lastThreshold > 0 && q.bytesF >= q.congestedAtF {
			n++
		}
	}
	return n
}

// setThreshold records a freshly computed BM threshold on the queue,
// keeping the cached congestion cutoff in sync.
func (m *MMU) setThreshold(q *Queue, thr units.ByteCount) {
	q.lastThreshold = thr
	q.congestedAtF = m.cfg.CongestedFactor * float64(thr)
}

// tick refreshes the cached statistics: thresholds (for congestion
// detection), congested counts, and drain-rate estimates. Runs every
// StatsInterval in periodic mode.
func (m *MMU) tick(now units.Time) {
	// Refresh drain rates first: thresholds depend on them.
	for pi, p := range m.sw.ports {
		for qi, q := range p.queues {
			switch m.cfg.DrainRate {
			case DrainRateMeasured:
				if q.dequeuedInTick > 0 {
					rate := units.RateOf(q.dequeuedInTick, m.cfg.StatsInterval)
					share := float64(rate) / float64(p.rate)
					if share > 1 {
						share = 1
					}
					m.normDrain[pi][qi] = share
				} else {
					m.normDrain[pi][qi] = m.instantNormDrain(pi, qi)
				}
			default:
				m.normDrain[pi][qi] = m.instantNormDrain(pi, qi)
			}
			q.dequeuedInTick = 0
		}
	}
	// Recompute thresholds with the previous congested counts, then
	// recount. Starting from the previous counts breaks the circular
	// dependency the same way periodic hardware measurement does.
	for _, p := range m.sw.ports {
		for qi, q := range p.queues {
			ctx := m.ctx(p.idx, qi, q, nil)
			m.setThreshold(q, m.cfg.BM.Threshold(ctx))
		}
	}
	for prio := 0; prio < m.sw.prios; prio++ {
		m.nCongested[prio] = m.countCongested(prio)
	}
	if t, ok := m.cfg.BM.(bm.Ticker); ok {
		t.Tick(now)
	}
}

// ctx builds the BM context for a queue in the MMU's scratch space;
// pkt may be nil for stats-only threshold computation. The returned
// pointer is valid until the next ctx call.
func (m *MMU) ctx(port, prio int, q *Queue, pkt *packet.Packet) *bm.Ctx {
	// Field-wise assignment rather than a struct literal: this runs per
	// admission decision, and rebuilding the whole Ctx through a
	// temporary costs a measurable block copy on the hot path.
	c := &m.bmCtx
	c.Total = m.cfg.BufferSize
	c.Occupied = m.used + m.fluid
	c.QueueLen = q.bytes
	c.Port = port
	c.Prio = prio
	c.Alpha = m.alpha(prio)
	c.AlphaUnscheduled = m.cfg.AlphaUnscheduled
	c.NormDrain = m.NormDrain(port, prio)
	c.CongestedSamePrio = m.CongestedSamePrio(prio)
	c.Now = m.sw.sim.Now()
	if pkt != nil {
		c.Unscheduled = pkt.Is(packet.FlagUnscheduled)
		c.FlowID = pkt.FlowID
		c.PacketSize = pkt.Size()
	} else {
		c.Unscheduled = false
		c.FlowID = 0
		c.PacketSize = 0
	}
	return c
}

// headroomEligible decides whether pkt may be charged to the headroom
// pool when the shared pool rejects it.
func (m *MMU) headroomEligible(ctx *bm.Ctx) bool {
	if m.cfg.Headroom <= 0 {
		return false
	}
	if he, ok := m.cfg.BM.(bm.HeadroomEligible); ok {
		return he.UseHeadroom(ctx)
	}
	return ctx.Unscheduled
}

// Admit runs the full hierarchical admission check for pkt arriving at
// (port, prio) and, on success, enqueues it.
func (m *MMU) Admit(port, prio int, pkt *packet.Packet) AdmitResult {
	q := m.sw.ports[port].queues[prio]
	ctx := m.ctx(port, prio, q, pkt)
	traced := m.obsSink.Enabled(obs.KindAdmit)

	// Stage 0: AFD-style early drop (IB).
	if d, ok := m.cfg.BM.(bm.Dropper); ok && d.ShouldDrop(ctx, m.rng) {
		q.DropsAFD++
		m.ctrDropAFD.Inc()
		m.notifyDrop(ctx)
		if traced {
			// No threshold was computed on this path; trace the queue's
			// last one.
			m.emitAdmit(ctx, pkt, obs.VerdictDropAFD, q.lastThreshold)
		}
		return DroppedAFD
	}

	// Stage 1: buffer-management threshold (Ψ).
	thr := m.cfg.BM.Threshold(ctx)
	m.setThreshold(q, thr)
	// Headroom left under the Eq. 9 threshold before this packet; at-
	// or-past-threshold decisions land in the histogram's <=0 bucket.
	m.histHeadroom.Record(int64(thr) - int64(q.bytes))
	size := pkt.Size()
	fitsThreshold := q.bytes+size <= thr
	if pkt.Payload == 0 && !m.cfg.DropControl {
		fitsThreshold = true
	}
	fitsBuffer := m.used+m.fluid+size <= m.cfg.BufferSize

	useHeadroom := false
	if !fitsThreshold || !fitsBuffer {
		if m.headroomEligible(ctx) && m.headroomUsed+size <= m.cfg.Headroom {
			useHeadroom = true
		} else {
			if !fitsBuffer {
				q.DropsNoBuffer++
				m.ctrDropNoBuffer.Inc()
				m.notifyDrop(ctx)
				if traced {
					m.emitAdmit(ctx, pkt, obs.VerdictDropNoBuffer, thr)
				}
				return DroppedNoBuffer
			}
			q.DropsThreshold++
			m.ctrDropThreshold.Inc()
			m.notifyDrop(ctx)
			if traced {
				m.emitAdmit(ctx, pkt, obs.VerdictDropThreshold, thr)
			}
			return DroppedThreshold
		}
	}

	// Stage 2: AQM verdict (Φ).
	m.aqmCtx = aqm.Ctx{
		QueueLen:   q.bytes,
		PacketSize: size,
		DrainRate:  m.drainRateAbs(port, prio),
		ECNCapable: pkt.Is(packet.FlagECT),
		Now:        m.sw.sim.Now(),
	}
	decision := m.aqms[port][prio].OnArrival(&m.aqmCtx, m.rng)

	switch decision {
	case aqm.Drop:
		q.DropsAQM++
		m.ctrDropAQM.Inc()
		m.notifyDrop(ctx)
		if traced {
			m.emitAdmit(ctx, pkt, obs.VerdictDropAQM, thr)
		}
		return DroppedAQM
	case aqm.Trim:
		pkt.Trim()
		size = pkt.Size()
		m.TrimmedPkts++
		m.ctrTrimmed.Inc()
	case aqm.Mark:
		pkt.Set(packet.FlagCE)
		m.MarkedPkts++
		q.MarkedPkts++
		m.ctrMarked.Inc()
		if m.obsSink.Enabled(obs.KindMark) {
			m.emitQueueEvent(obs.KindMark, ctx, pkt, q.bytes)
		}
	}

	// Charge and enqueue.
	if useHeadroom {
		m.headroomUsed += size
		pkt.HeadroomCharged = true
	} else {
		m.used += size
		pkt.HeadroomCharged = false
	}
	q.push(pkt, m.sw.sim.Now())
	m.AdmittedPkts++
	m.AdmittedBytes += size
	m.ctrAdmittedPkts.Inc()
	m.ctrAdmittedBytes.Add(int64(size))
	if fa, ok := m.cfg.BM.(bm.FlowAware); ok {
		fa.OnAdmit(ctx)
	}
	verdict := obs.VerdictAdmit
	result := Admitted
	if decision == aqm.Mark {
		verdict, result = obs.VerdictAdmitMark, AdmittedMarked
	}
	if traced {
		m.emitAdmit(ctx, pkt, verdict, thr)
	}
	if m.obsSink.Enabled(obs.KindEnqueue) {
		m.emitQueueEvent(obs.KindEnqueue, ctx, pkt, q.bytes)
	}
	return result
}

// emitAdmit traces one admission decision with its Eq. 9 context. The
// caller has checked Enabled(KindAdmit); ctx still holds the pre-
// decision queue state.
func (m *MMU) emitAdmit(ctx *bm.Ctx, pkt *packet.Packet, verdict uint8, thr units.ByteCount) {
	m.obsSink.Emit(obs.Event{
		At:      ctx.Now,
		Kind:    obs.KindAdmit,
		Verdict: verdict,
		Unsched: ctx.Unscheduled,
		Node:    int32(m.sw.id),
		Port:    int16(ctx.Port),
		Prio:    int16(ctx.Prio),
		Flow:    pkt.FlowID,
		Seq:     pkt.Seq,
		Size:    int32(pkt.Size()),
		QLen:    ctx.QueueLen,
		Free:    m.cfg.BufferSize - ctx.Occupied,
		Thresh:  thr,
		Alpha:   ctx.Alpha,
		MuB:     ctx.NormDrain,
		NCong:   int32(ctx.CongestedSamePrio),
	})
}

// emitQueueEvent traces an enqueue or mark with the queue length after
// the operation. The caller has checked Enabled(kind).
func (m *MMU) emitQueueEvent(kind obs.Kind, ctx *bm.Ctx, pkt *packet.Packet, qlen units.ByteCount) {
	m.obsSink.Emit(obs.Event{
		At:   m.sw.sim.Now(),
		Kind: kind,
		Node: int32(m.sw.id),
		Port: int16(ctx.Port),
		Prio: int16(ctx.Prio),
		Flow: pkt.FlowID,
		Seq:  pkt.Seq,
		Size: int32(pkt.Size()),
		QLen: qlen,
	})
}

func (m *MMU) notifyDrop(ctx *bm.Ctx) {
	if ctx.Unscheduled {
		m.sw.ports[ctx.Port].queues[ctx.Prio].DropsUnscheduled++
		m.ctrDropUnscheduled.Inc()
	}
	if fa, ok := m.cfg.BM.(bm.FlowAware); ok {
		fa.OnDrop(ctx)
	}
}

// release returns a dequeued packet's bytes to the right pool.
func (m *MMU) release(pkt *packet.Packet) {
	size := pkt.Size()
	if pkt.HeadroomCharged {
		m.headroomUsed -= size
		if m.headroomUsed < 0 {
			panic("device: headroom accounting underflow")
		}
		return
	}
	m.used -= size
	if m.used < 0 {
		panic("device: buffer accounting underflow")
	}
}

// drainRateAbs converts the normalized estimate into an absolute rate
// for the AQM context.
func (m *MMU) drainRateAbs(port, prio int) units.Rate {
	p := m.sw.ports[port]
	return units.Rate(float64(p.rate) * m.NormDrain(port, prio))
}

// dequeueHook returns the queue's AQM dequeue hook, if any.
func (m *MMU) dequeueHook(port, prio int) aqm.DequeueHook {
	if h, ok := m.aqms[port][prio].(aqm.DequeueHook); ok {
		return h
	}
	return nil
}

// checkInvariants panics if the MMU accounting disagrees with the sum of
// queue occupancies. Called from tests.
func (m *MMU) checkInvariants() {
	var sum units.ByteCount
	for _, p := range m.sw.ports {
		for _, q := range p.queues {
			sum += q.bytes
		}
	}
	if sum != m.used+m.headroomUsed {
		panic(fmt.Sprintf("device: queue sum %v != pools %v+%v", sum, m.used, m.headroomUsed))
	}
	if m.used > m.cfg.BufferSize {
		panic(fmt.Sprintf("device: shared pool %v over capacity %v", m.used, m.cfg.BufferSize))
	}
	if m.headroomUsed > m.cfg.Headroom {
		panic(fmt.Sprintf("device: headroom %v over capacity %v", m.headroomUsed, m.cfg.Headroom))
	}
}
