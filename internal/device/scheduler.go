package device

// Scheduler selects the next queue a port should serve. Implementations
// must return nil only when every queue is empty.
type Scheduler interface {
	Name() string
	// Next picks a non-empty queue among qs, or nil.
	Next(qs []*Queue) *Queue
}

// RoundRobin serves non-empty queues in rotating order, one packet per
// turn — the schedule the paper assumes when it derives mu/b = 1/k for k
// active queues (§3.4).
type RoundRobin struct {
	last int
}

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "rr" }

// Next implements Scheduler.
func (r *RoundRobin) Next(qs []*Queue) *Queue {
	n := len(qs)
	for i := 1; i <= n; i++ {
		idx := (r.last + i) % n
		if qs[idx].Len() > 0 {
			r.last = idx
			return qs[idx]
		}
	}
	return nil
}

// StrictPriority always serves the lowest-index non-empty queue; queue 0
// is the highest priority.
type StrictPriority struct{}

// Name implements Scheduler.
func (StrictPriority) Name() string { return "strict" }

// Next implements Scheduler.
func (StrictPriority) Next(qs []*Queue) *Queue {
	for _, q := range qs {
		if q.Len() > 0 {
			return q
		}
	}
	return nil
}

// DWRR is deficit weighted round robin: the scheduler visits queues in
// order; entering a queue grants it weight*Quantum credit once, and the
// queue is served packet by packet while its deficit covers the head
// packet, then the visit moves on. Higher weights drain proportionally
// faster; equal weights degrade to round robin.
type DWRR struct {
	Weights []int // per-queue weight; missing entries default to 1
	Quantum int64 // bytes of credit per weight unit per visit, default MTU

	deficits   []int64
	cur        int
	needCredit bool
	inited     bool
}

// Name implements Scheduler.
func (d *DWRR) Name() string { return "dwrr" }

// Next implements Scheduler.
func (d *DWRR) Next(qs []*Queue) *Queue {
	n := len(qs)
	if !d.inited {
		d.deficits = make([]int64, n)
		d.needCredit = true
		d.inited = true
	}
	if d.Quantum <= 0 {
		d.Quantum = 1500
	}
	anyBacklog := false
	for _, q := range qs {
		if q.Len() > 0 {
			anyBacklog = true
			break
		}
	}
	if !anyBacklog {
		return nil
	}
	// Each full cycle adds at least weight*Quantum to any visited
	// backlogged queue, so the deficit eventually covers any head packet;
	// 16 cycles cover heads up to 16*Quantum with weight 1.
	for iter := 0; iter < 16*n; iter++ {
		q := qs[d.cur]
		if q.Len() == 0 {
			d.deficits[d.cur] = 0
			d.advance(n)
			continue
		}
		if d.needCredit {
			d.deficits[d.cur] += d.weight(d.cur) * d.Quantum
			d.needCredit = false
		}
		head := int64(q.items[q.head].pkt.Size())
		if d.deficits[d.cur] >= head {
			d.deficits[d.cur] -= head
			return q
		}
		d.advance(n)
	}
	for _, q := range qs {
		if q.Len() > 0 {
			return q
		}
	}
	return nil
}

func (d *DWRR) advance(n int) {
	d.cur = (d.cur + 1) % n
	d.needCredit = true
}

func (d *DWRR) weight(i int) int64 {
	if i < len(d.Weights) && d.Weights[i] > 0 {
		return int64(d.Weights[i])
	}
	return 1
}

// NormShare returns the long-run bandwidth share of queue prio among the
// given set of active queues under this scheduler. Used by the
// share-based drain-rate estimator.
func NormShare(s Scheduler, active []int, prio int) float64 {
	if len(active) == 0 {
		return 1
	}
	switch sch := s.(type) {
	case *DWRR:
		var total, mine int64
		for _, a := range active {
			w := sch.weight(a)
			total += w
			if a == prio {
				mine = w
			}
		}
		if total == 0 {
			return 1
		}
		if mine == 0 {
			// prio not in the active set: it would get its weight share if
			// it became active.
			mine = sch.weight(prio)
			total += mine
		}
		return float64(mine) / float64(total)
	case StrictPriority:
		// The highest-priority active queue takes the full port.
		best := active[0]
		for _, a := range active {
			if a < best {
				best = a
			}
		}
		if prio <= best {
			return 1
		}
		return 0.01 // starved, but keep thresholds non-zero
	default: // round robin
		in := false
		for _, a := range active {
			if a == prio {
				in = true
				break
			}
		}
		n := len(active)
		if !in {
			n++
		}
		return 1 / float64(n)
	}
}
