package device

import (
	"fmt"
	"math/rand"

	"abm/internal/obs"
	"abm/internal/obs/hist"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/units"
)

// Endpoint is anything a link can deliver packets to: a switch or a host.
type Endpoint interface {
	ID() packet.NodeID
	Receive(pkt *packet.Packet)
}

// Link is a unidirectional wire with fixed propagation delay. The sender
// models serialization; the link only adds latency.
type Link struct {
	sim     *sim.Simulator
	delay   units.Time
	dst     Endpoint
	deliver func(any) // prebound: delivery schedules without allocating
	lane    sim.LaneID
	box     *sim.Mailbox

	Delivered      int64
	DeliveredBytes units.ByteCount
}

// NewLink returns a link delivering to dst after delay.
func NewLink(s *sim.Simulator, delay units.Time, dst Endpoint) *Link {
	if dst == nil {
		panic("device: link destination must not be nil")
	}
	if delay < 0 {
		panic("device: negative link delay")
	}
	// Fixed delay means departures and arrivals share one time order:
	// deliveries ride a private calendar lane (O(1) scheduling).
	l := &Link{sim: s, delay: delay, dst: dst, lane: s.NewLane()}
	l.deliver = func(a any) { l.dst.Receive(a.(*packet.Packet)) }
	return l
}

// NewLinkVia returns a link whose deliveries route through a parallel-
// engine mailbox instead of the sender's event calendar: the receive
// fires on the destination's shard at the next window barrier. The
// sharded topology builder uses it for every tier link so the delivery
// merge order is the same at any shard count; sim here is the SENDER's
// shard simulator (it stamps departure times).
func NewLinkVia(s *sim.Simulator, delay units.Time, dst Endpoint, box *sim.Mailbox) *Link {
	l := NewLink(s, delay, dst)
	if box == nil {
		panic("device: mailbox-routed link needs a mailbox")
	}
	if delay <= 0 {
		panic("device: mailbox-routed link needs positive delay (it is the lookahead)")
	}
	l.box = box
	return l
}

// Dst returns the link's destination endpoint.
func (l *Link) Dst() Endpoint { return l.dst }

// Send delivers pkt to the destination after the propagation delay.
// Any number of packets may be in flight at once, so the packet rides
// as the event argument rather than in link state.
func (l *Link) Send(pkt *packet.Packet) {
	l.Delivered++
	l.DeliveredBytes += pkt.Size()
	if l.box != nil {
		l.box.Post(l.sim.Now()+l.delay, l.deliver, pkt)
		return
	}
	l.sim.AfterLaneArg(l.lane, l.delay, l.deliver, pkt)
}

// Router maps a packet to an egress port index on a given switch.
// Provided by the topology layer (ECMP lives there).
type Router func(sw *Switch, pkt *packet.Packet) int

// SwitchConfig parameterizes a shared-memory switch.
type SwitchConfig struct {
	ID            packet.NodeID
	NumPorts      int
	QueuesPerPort int        // number of priorities
	PortRate      units.Rate // uniform port bandwidth b

	// PortRates optionally overrides PortRate per port (mixed-rate
	// fabrics: host-facing ports vs uplinks). Entries <= 0 and ports
	// beyond the slice fall back to PortRate, which must still be set.
	PortRates []units.Rate

	MMU MMUConfig

	// NewScheduler creates the per-port scheduler; nil selects round
	// robin, the paper's default.
	NewScheduler func() Scheduler

	// EnableINT appends per-hop telemetry to transiting data packets
	// (needed by PowerTCP).
	EnableINT bool

	// RNG is the switch's private random stream (MMU policies such as
	// IB's random-early drop and RED/PIE AQMs draw from it). nil falls
	// back to the simulator's shared source. The topology layer passes
	// a stream derived from (seed, switch ID) so switch randomness is
	// independent of event interleaving and of the shard partition.
	RNG *rand.Rand

	// Obs is the telemetry sink for this switch's shard; nil disables
	// telemetry at zero hot-path cost (see internal/obs).
	Obs *obs.Sink
}

// Switch is an output-queued shared-memory switch.
type Switch struct {
	sim   *sim.Simulator
	id    packet.NodeID
	ports []*Port
	prios int
	mmu   *MMU
	route Router
	cfg   SwitchConfig

	statsTicker *sim.Ticker

	obsSink        *obs.Sink
	ctrDropDequeue *obs.Counter
	histQDelay     *hist.Histogram

	RxPkts int64
	// RouteDrops counts packets discarded because the router returned a
	// negative port: the destination had no surviving next hop (a
	// routing black hole during link failures).
	RouteDrops int64
}

// NewSwitch builds a switch. The router must be set with SetRouter before
// traffic arrives; links are attached per port with ConnectPort.
func NewSwitch(s *sim.Simulator, cfg SwitchConfig) *Switch {
	if cfg.NumPorts <= 0 || cfg.QueuesPerPort <= 0 {
		panic(fmt.Sprintf("device: switch needs ports and queues, got %d/%d", cfg.NumPorts, cfg.QueuesPerPort))
	}
	if cfg.PortRate <= 0 {
		panic("device: switch port rate must be positive")
	}
	sw := &Switch{sim: s, id: cfg.ID, prios: cfg.QueuesPerPort, cfg: cfg}
	sw.ports = make([]*Port, cfg.NumPorts)
	for i := range sw.ports {
		rate := cfg.PortRate
		if i < len(cfg.PortRates) && cfg.PortRates[i] > 0 {
			rate = cfg.PortRates[i]
		}
		sw.ports[i] = newPort(sw, i, rate, cfg.QueuesPerPort, cfg.NewScheduler)
	}
	rng := cfg.RNG
	if rng == nil {
		rng = s.Rand()
	}
	sw.obsSink = cfg.Obs
	sw.ctrDropDequeue = cfg.Obs.Ctr(obs.CtrDropDequeue)
	sw.histQDelay = cfg.Obs.Hist(obs.HistQueueDelay)
	sw.mmu = newMMU(cfg.MMU, sw, rng, cfg.Obs)
	if iv := cfg.MMU.StatsInterval; iv > 0 {
		sw.statsTicker = s.NewTicker(iv, func() { sw.mmu.tick(s.Now()) })
	}
	return sw
}

// ID implements Endpoint.
func (sw *Switch) ID() packet.NodeID { return sw.id }

// MMU exposes the switch's memory-management unit.
func (sw *Switch) MMU() *MMU { return sw.mmu }

// Port returns port i.
func (sw *Switch) Port(i int) *Port { return sw.ports[i] }

// NumPorts returns the port count.
func (sw *Switch) NumPorts() int { return len(sw.ports) }

// Prios returns the number of queues per port.
func (sw *Switch) Prios() int { return sw.prios }

// SetRouter installs the forwarding function.
func (sw *Switch) SetRouter(r Router) { sw.route = r }

// ConnectPort attaches the egress link of port i.
func (sw *Switch) ConnectPort(i int, l *Link) { sw.ports[i].link = l }

// RoutePort returns the egress port the installed router picks for pkt
// without enqueuing it. The topology layer uses it to walk the actual
// forwarding path (hop counting for RTT/FCT normalization).
func (sw *Switch) RoutePort(pkt *packet.Packet) int { return sw.route(sw, pkt) }

// Link returns the port's attached egress link (nil before ConnectPort).
func (p *Port) Link() *Link { return p.link }

// Stop cancels the periodic stats ticker (for dismantling topologies in
// tests).
func (sw *Switch) Stop() {
	if sw.statsTicker != nil {
		sw.statsTicker.Stop()
	}
}

// Receive implements Endpoint: route, classify, admit, transmit.
func (sw *Switch) Receive(pkt *packet.Packet) {
	sw.RxPkts++
	if sw.route == nil {
		panic(fmt.Sprintf("device: switch %d has no router", sw.id))
	}
	out := sw.route(sw, pkt)
	if out < 0 {
		// No route (every next hop toward the destination failed): the
		// switch is the drop point and thus the release point.
		sw.RouteDrops++
		sw.sim.FreePacket(pkt)
		return
	}
	if out >= len(sw.ports) {
		panic(fmt.Sprintf("device: switch %d routed flow %d to invalid port %d", sw.id, pkt.FlowID, out))
	}
	prio := int(pkt.Prio)
	if prio >= sw.prios {
		prio = sw.prios - 1
	}
	res := sw.mmu.Admit(out, prio, pkt)
	if res.Dropped() {
		// The MMU is the drop point and thus the release point: the
		// packet has no owner beyond this frame.
		sw.sim.FreePacket(pkt)
		return
	}
	sw.ports[out].maybeTransmit()
}

// TotalDrops sums drops across all queues.
func (sw *Switch) TotalDrops() int64 {
	var n int64
	for _, p := range sw.ports {
		for _, q := range p.queues {
			n += q.TotalDrops()
		}
	}
	return n
}

// Port is one egress port: per-priority queues, a scheduler, and the
// transmitter state machine.
type Port struct {
	sw     *Switch
	idx    int
	rate   units.Rate
	queues []*Queue
	sched  Scheduler
	link   *Link

	busy bool
	// txPkt/txQ hold the single in-flight transmission (the port is
	// busy while it serializes); txDone is the prebound completion
	// callback so per-packet transmission allocates no closure.
	txPkt  *packet.Packet
	txQ    *Queue
	txDone func()
	// Single-in-flight serialization means txDone completions are
	// scheduled in nondecreasing time order: a private calendar lane.
	txLane sim.LaneID

	TxPkts  int64
	TxBytes units.ByteCount
}

func newPort(sw *Switch, idx int, rate units.Rate, prios int, newSched func() Scheduler) *Port {
	p := &Port{sw: sw, idx: idx, rate: rate, txLane: sw.sim.NewLane()}
	p.queues = make([]*Queue, prios)
	for i := range p.queues {
		p.queues[i] = &Queue{Port: idx, Prio: i}
	}
	if newSched != nil {
		p.sched = newSched()
	} else {
		p.sched = &RoundRobin{}
	}
	p.txDone = p.finishTx
	return p
}

// Queue returns the queue of the given priority.
func (p *Port) Queue(prio int) *Queue { return p.queues[prio] }

// Rate returns the port bandwidth.
func (p *Port) Rate() units.Rate { return p.rate }

// SetRate changes the port bandwidth (link degradation/restoration).
// The new rate applies from the next transmission start; a packet
// already serializing finishes at the old rate. Callers must hold the
// fabric quiescent (serial execution or a window barrier).
func (p *Port) SetRate(r units.Rate) {
	if r <= 0 {
		panic("device: port rate must be positive")
	}
	p.rate = r
}

// Backlog returns the total bytes queued at this port.
func (p *Port) Backlog() units.ByteCount {
	var sum units.ByteCount
	for _, q := range p.queues {
		sum += q.bytes
	}
	return sum
}

// maybeTransmit starts the transmitter if it is idle and a packet is
// queued.
func (p *Port) maybeTransmit() {
	if p.busy {
		return
	}
	for {
		q := p.sched.Next(p.queues)
		if q == nil {
			return
		}
		pkt, enqAt, ok := q.pop()
		if !ok {
			return
		}
		p.sw.mmu.release(pkt)
		if p.sw.histQDelay != nil {
			p.sw.histQDelay.Record(int64(p.sw.sim.Now() - enqAt))
		}
		// Sojourn-based AQM (Codel) may discard at dequeue.
		if hook := p.sw.mmu.dequeueHook(p.idx, q.Prio); hook != nil {
			now := p.sw.sim.Now()
			if hook.OnDequeue(now-enqAt, now) {
				q.DropsAQM++
				p.sw.ctrDropDequeue.Inc()
				if p.sw.obsSink.Enabled(obs.KindDequeue) {
					p.emitDequeue(pkt, q, enqAt, obs.VerdictDropDequeue)
				}
				p.sw.sim.FreePacket(pkt)
				continue
			}
		}
		if p.sw.obsSink.Enabled(obs.KindDequeue) {
			p.emitDequeue(pkt, q, enqAt, obs.VerdictTx)
		}
		p.transmit(pkt, q)
		return
	}
}

// emitDequeue traces one dequeue with the post-pop queue length and the
// packet's sojourn time. The caller has checked Enabled(KindDequeue).
func (p *Port) emitDequeue(pkt *packet.Packet, q *Queue, enqAt units.Time, verdict uint8) {
	now := p.sw.sim.Now()
	p.sw.obsSink.Emit(obs.Event{
		At:      now,
		Kind:    obs.KindDequeue,
		Verdict: verdict,
		Node:    int32(p.sw.id),
		Port:    int16(p.idx),
		Prio:    int16(q.Prio),
		Flow:    pkt.FlowID,
		Seq:     pkt.Seq,
		Size:    int32(pkt.Size()),
		QLen:    q.bytes,
		Aux:     int64(now - enqAt),
	})
}

func (p *Port) transmit(pkt *packet.Packet, q *Queue) {
	p.busy = true
	p.txPkt, p.txQ = pkt, q
	p.sw.sim.AfterLane(p.txLane, p.rate.TxTime(pkt.Size()), p.txDone)
}

// finishTx completes the in-flight transmission: stamp INT, hand the
// packet to the egress link, and restart the transmitter.
func (p *Port) finishTx() {
	pkt, q := p.txPkt, p.txQ
	p.txPkt, p.txQ = nil, nil
	p.TxPkts++
	p.TxBytes += pkt.Size()
	if p.sw.cfg.EnableINT && !pkt.Is(packet.FlagACK) {
		pkt.Hops = append(pkt.Hops, packet.HopINT{
			QLen:    q.bytes,
			TxBytes: p.TxBytes,
			TS:      p.sw.sim.Now(),
			Rate:    p.rate,
		})
	}
	if p.link == nil {
		panic(fmt.Sprintf("device: switch %d port %d has no link", p.sw.id, p.idx))
	}
	p.link.Send(pkt)
	p.busy = false
	p.maybeTransmit()
}
