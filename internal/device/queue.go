// Package device implements the shared-memory output-queued switch the
// paper models (§2, "Model"): ports with one queue per priority, a
// scheduler per port, and an MMU that runs the hierarchical admission
// scheme of Eq. 4 — a buffer-management threshold (Ψ) combined with an
// AQM verdict (Φ) — over a single shared packet buffer.
package device

import (
	"abm/internal/packet"
	"abm/internal/units"
)

// queued wraps a packet with its enqueue timestamp, needed by
// sojourn-based AQMs (Codel) and for queueing-delay stats.
type queued struct {
	pkt   *packet.Packet
	enqAt units.Time
}

// Queue is one priority queue at one egress port: a FIFO of packets plus
// the bookkeeping the MMU needs (occupancy, last computed threshold,
// dequeue counters for drain-rate measurement).
type Queue struct {
	Port int
	Prio int

	items []queued
	head  int

	bytes units.ByteCount

	// bytesF mirrors bytes as float64, refreshed on every enqueue and
	// dequeue, so the MMU's congestion scan avoids per-queue int→float
	// conversions on the admission hot path.
	bytesF float64

	// MaxBytes is the occupancy high-water mark since creation.
	MaxBytes units.ByteCount

	// lastThreshold is the most recent BM threshold computed for this
	// queue; the MMU uses it for congestion detection (q >= 0.9*T).
	lastThreshold units.ByteCount

	// congestedAtF caches CongestedFactor*lastThreshold, refreshed
	// whenever lastThreshold is, for the same reason as bytesF.
	congestedAtF float64

	// dequeuedInTick counts bytes dequeued since the last stats tick,
	// feeding the measured drain-rate estimator.
	dequeuedInTick units.ByteCount

	// DequeuedBytes counts all bytes ever dequeued (service received).
	DequeuedBytes units.ByteCount

	// Lifetime enqueue/dequeue/mark counters, for the per-queue
	// telemetry summary (trace.WriteQueueCounters).
	EnqueuedPkts  int64
	EnqueuedBytes units.ByteCount
	DequeuedPkts  int64
	MarkedPkts    int64

	// FluidBytes counts payload bytes that traversed this queue in the
	// hybrid engine's fluid mode — invisible to the packet counters
	// above, charged by the controller at promotion. Queues that only
	// ever carried fluid traffic show up in the counters table through
	// this column alone.
	FluidBytes units.ByteCount

	// Drop counters by cause, for experiment reporting.
	DropsThreshold int64
	DropsNoBuffer  int64
	DropsAQM       int64
	DropsAFD       int64
	// DropsUnscheduled counts dropped packets that carried the
	// first-RTT tag (any cause).
	DropsUnscheduled int64
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.items) - q.head }

// Bytes returns the queue occupancy in bytes.
func (q *Queue) Bytes() units.ByteCount { return q.bytes }

// LastThreshold returns the BM threshold from the most recent admission
// or stats tick.
func (q *Queue) LastThreshold() units.ByteCount { return q.lastThreshold }

// push appends a packet.
func (q *Queue) push(p *packet.Packet, now units.Time) {
	q.items = append(q.items, queued{pkt: p, enqAt: now})
	q.bytes += p.Size()
	q.bytesF = float64(q.bytes)
	q.EnqueuedPkts++
	q.EnqueuedBytes += p.Size()
	if q.bytes > q.MaxBytes {
		q.MaxBytes = q.bytes
	}
}

// pop removes and returns the head packet and its enqueue time.
func (q *Queue) pop() (pkt *packet.Packet, enqAt units.Time, ok bool) {
	if q.Len() == 0 {
		return nil, 0, false
	}
	item := q.items[q.head]
	q.items[q.head] = queued{}
	q.head++
	size := item.pkt.Size()
	q.bytes -= size
	q.bytesF = float64(q.bytes)
	q.dequeuedInTick += size
	q.DequeuedBytes += size
	q.DequeuedPkts++
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return item.pkt, item.enqAt, true
}

// TotalDrops returns the sum of all drop counters.
func (q *Queue) TotalDrops() int64 {
	return q.DropsThreshold + q.DropsNoBuffer + q.DropsAQM + q.DropsAFD
}
