package trace

import (
	"bytes"
	"strings"
	"testing"

	"abm/internal/cc"
	"abm/internal/metrics"
	"abm/internal/sim"
	"abm/internal/topo"
	"abm/internal/units"
)

func TestWriteFlows(t *testing.T) {
	flows := []metrics.FlowRecord{
		{ID: 2, Class: metrics.ClassIncast, Size: 1000, Start: 5 * units.Microsecond,
			End: 15 * units.Microsecond, Ideal: 5 * units.Microsecond, Finished: true},
		{ID: 1, Class: metrics.ClassWebSearch, Size: 2000, Start: units.Microsecond, Finished: false},
	}
	var buf bytes.Buffer
	if err := WriteFlows(&buf, flows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2", len(lines))
	}
	// Sorted by start: flow 1 first.
	if !strings.HasPrefix(lines[1], "1\twebsearch") {
		t.Fatalf("first row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "incast") || !strings.Contains(lines[2], "2.00") {
		t.Fatalf("second row = %q (want slowdown 2.00)", lines[2])
	}
	// Unfinished flows report zero FCT.
	if !strings.Contains(lines[1], "\tfalse") {
		t.Fatalf("unfinished flag missing: %q", lines[1])
	}
}

func TestRecorder(t *testing.T) {
	s := sim.New(1)
	n := topo.NewNetwork(s, topo.Config{
		NumSpines: 2, NumLeaves: 2, HostsPerLeaf: 4,
		LinkRate: 10 * units.GigabitPerSec, LinkDelay: 10 * units.Microsecond,
	})
	rec := &Recorder{Net: n, Interval: 50 * units.Microsecond}
	rec.Start()
	s.At(0, func() {
		for i := 1; i < 8; i++ {
			n.StartFlow(i, 0, 100*units.Kilobyte, 0, cc.NewCubic(), nil)
		}
	})
	s.RunUntil(20 * units.Millisecond)
	rec.Stop()
	n.Stop()
	if len(rec.Samples) < 100 {
		t.Fatalf("samples = %d, want ~20", len(rec.Samples))
	}
	if got := len(rec.Samples[0].PerSwitch); got != 4 {
		t.Fatalf("columns = %d, want 4 switches", got)
	}
	if rec.MaxOccupancy() <= 0 {
		t.Fatal("no occupancy observed during an incast")
	}
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(buf.String(), "\n", 2)[0]
	if head != "time_us\tleaf0\tleaf1\tspine0\tspine1" {
		t.Fatalf("header = %q", head)
	}
}

func TestRecorderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(&Recorder{}).Start()
}
