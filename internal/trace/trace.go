// Package trace records simulation time series and flow logs in TSV
// form: per-flow completion records and per-switch buffer/queue
// occupancy samples. The cmd/abmsim binary exposes both as flags; they
// are how a user inspects what happened inside an experiment beyond the
// headline percentiles.
package trace

import (
	"fmt"
	"io"
	"sort"

	"abm/internal/metrics"
	"abm/internal/sim"
	"abm/internal/topo"
	"abm/internal/units"
)

// WriteFlows dumps one TSV row per recorded flow, sorted by start time.
func WriteFlows(w io.Writer, flows []metrics.FlowRecord) error {
	if _, err := fmt.Fprintln(w, "id\tclass\tprio\tsize_bytes\tstart_us\tfct_us\tideal_us\tslowdown\tfinished"); err != nil {
		return err
	}
	sorted := append([]metrics.FlowRecord(nil), flows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	for _, f := range sorted {
		fct, slow := 0.0, 0.0
		if f.Finished {
			fct = f.FCT().Microseconds()
			slow = f.Slowdown()
		}
		if _, err := fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%.3f\t%.3f\t%.3f\t%.2f\t%v\n",
			f.ID, f.Class, f.Prio, int64(f.Size),
			f.Start.Microseconds(), fct, f.Ideal.Microseconds(), slow, f.Finished); err != nil {
			return err
		}
	}
	return nil
}

// OccupancySample is one instant of fabric-wide buffer state.
type OccupancySample struct {
	At units.Time
	// PerSwitch is the occupancy fraction of each switch (leaves first,
	// in topo.Switches order).
	PerSwitch []float64
}

// Recorder samples the fabric's buffer occupancy on a fixed interval.
type Recorder struct {
	Net      *topo.Network
	Interval units.Time

	Samples []OccupancySample
	ticker  *sim.Ticker
}

// Start begins sampling; interval must be positive.
func (r *Recorder) Start() {
	if r.Interval <= 0 {
		panic("trace: recorder interval must be positive")
	}
	r.ticker = r.Net.Sim.NewTicker(r.Interval, func() {
		switches := r.Net.Switches()
		s := OccupancySample{At: r.Net.Sim.Now(), PerSwitch: make([]float64, len(switches))}
		for i, sw := range switches {
			s.PerSwitch[i] = float64(sw.MMU().TotalUsed()) / float64(r.Net.Cfg.BufferSize)
		}
		r.Samples = append(r.Samples, s)
	})
}

// Stop halts sampling.
func (r *Recorder) Stop() {
	if r.ticker != nil {
		r.ticker.Stop()
	}
}

// Write dumps the samples as TSV: time plus one column per switch.
func (r *Recorder) Write(w io.Writer) error {
	if _, err := fmt.Fprint(w, "time_us"); err != nil {
		return err
	}
	for _, sw := range r.Net.Switches() {
		fmt.Fprintf(w, "\t%s", r.Net.NodeName(sw.ID()))
	}
	fmt.Fprintln(w)
	for _, s := range r.Samples {
		fmt.Fprintf(w, "%.3f", s.At.Microseconds())
		for _, v := range s.PerSwitch {
			fmt.Fprintf(w, "\t%.4f", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// WriteQueueCounters dumps one TSV row per port-priority queue across
// the fabric (leaves first, in topo.Switches order): lifetime enqueue/
// dequeue totals, drops by cause, ECN marks, the occupancy high-water
// mark, the queue's last BM threshold, and the payload bytes the hybrid
// engine carried through the queue in fluid mode — so queues whose
// traffic was entirely fluid (zero packet counters) are still visibly
// active in the table. These counters are always maintained by the
// device layer, so the summary is available whether or not event
// tracing was enabled.
func WriteQueueCounters(w io.Writer, n *topo.Network) error {
	if _, err := fmt.Fprintln(w, "node\tport\tprio\tenq_pkts\tenq_bytes\tdeq_pkts\tdeq_bytes\t"+
		"drops_threshold\tdrops_nobuffer\tdrops_aqm\tdrops_afd\tdrops_unscheduled\t"+
		"marked_pkts\tmax_bytes\tlast_threshold\tfluid_bytes"); err != nil {
		return err
	}
	for _, sw := range n.Switches() {
		name := n.NodeName(sw.ID())
		for p := 0; p < sw.NumPorts(); p++ {
			for qi := 0; qi < sw.Prios(); qi++ {
				q := sw.Port(p).Queue(qi)
				if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
					name, p, qi,
					q.EnqueuedPkts, int64(q.EnqueuedBytes), q.DequeuedPkts, int64(q.DequeuedBytes),
					q.DropsThreshold, q.DropsNoBuffer, q.DropsAQM, q.DropsAFD, q.DropsUnscheduled,
					q.MarkedPkts, int64(q.MaxBytes), int64(q.LastThreshold()), int64(q.FluidBytes)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// MaxOccupancy returns the largest per-switch fraction observed.
func (r *Recorder) MaxOccupancy() float64 {
	max := 0.0
	for _, s := range r.Samples {
		for _, v := range s.PerSwitch {
			if v > max {
				max = v
			}
		}
	}
	return max
}
