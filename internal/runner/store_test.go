package runner

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := Record{
		ID: "sweep/0001-bm=ABM", Experiment: "sweep", Group: "bm=ABM",
		Seed: 99, Status: StatusOK, Attempts: 1, WallMS: 12.5,
		Config: map[string]any{"BM": "ABM"},
		Result: &Result{Events: 1234, Extra: map[string]float64{"x": 1}},
	}
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	done, err := st.Completed()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := done[rec.ID]
	if !ok {
		t.Fatalf("record not found; have %v", done)
	}
	if got.Seed != 99 || got.Result == nil || got.Result.Events != 1234 || got.Result.Extra["x"] != 1 {
		t.Fatalf("round trip mangled record: %+v", got)
	}
	// The job file itself is valid standalone JSON.
	data, err := os.ReadFile(filepath.Join(st.Dir(), "jobs", fileFor(rec.ID)))
	if err != nil {
		t.Fatal(err)
	}
	var plain map[string]any
	if err := json.Unmarshal(data, &plain); err != nil {
		t.Fatal(err)
	}
	if plain["status"] != "ok" {
		t.Fatalf("job file schema: %v", plain)
	}
}

func TestStoreFailedNotCompleted(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put(Record{ID: "a", Status: StatusFailed, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	done, err := st.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatalf("failed record treated as completed: %v", done)
	}
	// A later successful attempt supersedes the failure.
	if err := st.Put(Record{ID: "a", Status: StatusOK, Result: &Result{}}); err != nil {
		t.Fatal(err)
	}
	if done, _ = st.Completed(); len(done) != 1 {
		t.Fatalf("ok record not visible: %v", done)
	}
}

// TestStoreTornManifestTail replays the crash a kill mid-append leaves
// behind: the final manifest line is a partial write. The torn tail must
// be dropped (its job re-runs) while every fully-appended record before
// it resumes, and corruption anywhere *else* in the manifest must be an
// error rather than a silent skip.
func TestStoreTornManifestTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := st.Put(Record{ID: id, Status: StatusOK, Result: &Result{}}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	manifest := filepath.Join(dir, "manifest.jsonl")
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("manifest lines = %d, want 3", len(lines))
	}

	// Crash replay: the last entry is cut mid-line, no trailing newline.
	torn := lines[0] + lines[1] + lines[2][:len(lines[2])/2]
	if err := os.WriteFile(manifest, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	done, err := st2.Completed()
	if err != nil {
		t.Fatalf("torn tail must not fail resume: %v", err)
	}
	if len(done) != 2 {
		t.Fatalf("resumed %d records, want 2 (torn tail dropped): %v", len(done), done)
	}
	for _, id := range []string{"a", "b"} {
		if _, ok := done[id]; !ok {
			t.Fatalf("record %q lost: %v", id, done)
		}
	}

	// A fully-terminated garbage line mid-file is corruption, not a torn
	// append (appends are single line+newline writes), and must surface.
	bad := lines[0] + "{broken\n" + lines[2]
	if err := os.WriteFile(manifest, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Completed(); err == nil {
		t.Fatal("mid-file corruption silently skipped")
	}
}

// TestStoreTornTailThenAppend proves a store reopened over a torn tail
// keeps working: OpenStore truncates the fragment, so the next append
// starts on its own line instead of merging with the torn bytes into
// one unparseable (and now mid-file, so fatal) garbage line.
func TestStoreTornTailThenAppend(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(Record{ID: "a", Status: StatusOK, Result: &Result{}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	manifest := filepath.Join(dir, "manifest.jsonl")
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the only line, then append a fresh record through a reopened
	// store.
	if err := os.WriteFile(manifest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.Put(Record{ID: "b", Status: StatusOK, Result: &Result{}}); err != nil {
		t.Fatal(err)
	}
	done, err := st2.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := done["b"]; !ok || len(done) != 1 {
		t.Fatalf("want exactly {b}, got %v", done)
	}
}

func TestFileForCollisionSafety(t *testing.T) {
	a, b := fileFor("fig6/00-bm=DT"), fileFor("fig6 00-bm=DT")
	if a == b {
		t.Fatalf("sanitized collision: %s", a)
	}
	for _, name := range []string{a, b} {
		if strings.ContainsAny(name, "/ ") {
			t.Fatalf("unsafe file name %q", name)
		}
	}
	long := fileFor(strings.Repeat("x", 500))
	if len(long) > 170 {
		t.Fatalf("file name not truncated: %d bytes", len(long))
	}
}

func TestPoolResumeFromManifest(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	var fixed atomic.Bool // flips the injected failure off for the resume sweep
	build := func() *Plan {
		plan := &Plan{Name: "resume", Seed: 5}
		for i := 0; i < 12; i++ {
			plan.Add(Spec{Experiment: "resume", Run: fakeJob(&calls)})
		}
		// Job 7 fails until "fixed".
		inner := plan.Specs[7].Run
		plan.Specs[7].Run = func(ctx context.Context, seed int64) (Result, error) {
			if !fixed.Load() {
				return Result{}, errors.New("transient infrastructure failure")
			}
			return inner(ctx, seed)
		}
		return plan
	}

	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := (&Pool{Workers: 4, Store: st}).Run(context.Background(), build())
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if len(Failed(recs)) != 1 || recs[7].Status != StatusFailed {
		t.Fatalf("first sweep: %+v", Failed(recs))
	}
	firstCalls := calls.Load()
	if firstCalls != 11 {
		t.Fatalf("first sweep calls = %d, want 11", firstCalls)
	}

	// Second sweep: completed jobs come from the manifest, only the
	// failed one re-runs (and now succeeds).
	fixed.Store(true)
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs2, err := (&Pool{Workers: 4, Store: st2}).Run(context.Background(), build())
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load() - firstCalls; n != 1 {
		t.Fatalf("resume re-ran %d jobs, want 1", n)
	}
	cached := 0
	for i, r := range recs2 {
		if !r.OK() {
			t.Fatalf("record %d: %+v", i, r)
		}
		if r.Cached {
			cached++
		}
		if r.Seed != recs[i].Seed {
			t.Fatalf("resume changed seed of job %d: %d vs %d", i, r.Seed, recs[i].Seed)
		}
	}
	if cached != 11 {
		t.Fatalf("cached = %d, want 11", cached)
	}
}
