package runner

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store persists one JSON record per job under dir/jobs/ plus an
// append-only manifest (dir/manifest.jsonl) naming every completed job.
// The manifest is what makes sweeps resumable: a pool pointed at an
// existing store skips jobs the manifest lists as ok, and re-runs
// failed ones. Writes are atomic (temp file + rename) and safe for
// concurrent use by one process.
type Store struct {
	dir string

	mu       sync.Mutex
	manifest *os.File
}

// manifestEntry is one line of manifest.jsonl.
type manifestEntry struct {
	ID     string `json:"id"`
	Status Status `json:"status"`
	File   string `json:"file"`
}

// OpenStore creates (or reopens) a result store rooted at dir. Reopening
// first heals a torn manifest tail — the partial final line a killed
// sweep can leave behind — by truncating it, so fresh appends never
// merge with the fragment into one unparseable line.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "manifest.jsonl")
	if err := truncateTornTail(path); err != nil {
		return nil, err
	}
	mf, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, manifest: mf}, nil
}

// truncateTornTail drops a trailing partial line (one with no final
// newline) from the file at path, if any.
func truncateTornTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return nil
	}
	keep := 0
	if i := strings.LastIndexByte(string(data), '\n'); i >= 0 {
		keep = i + 1
	}
	return os.Truncate(path, int64(keep))
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the manifest handle.
func (s *Store) Close() error { return s.manifest.Close() }

// Put persists one record and registers it in the manifest.
func (s *Store) Put(rec Record) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: marshal record %s: %w", rec.ID, err)
	}
	rel := filepath.Join("jobs", fileFor(rec.ID))
	path := filepath.Join(s.dir, rel)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".rec-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	// Fsync before the rename and the manifest append: the manifest
	// acknowledges the record, so the record bytes must be durable
	// first — otherwise a crash could leave a manifest entry pointing
	// at a missing or empty job file and resume would silently skip a
	// job that never really completed. (Completed re-checks the job
	// file, so the failure mode is losing work, not corruption — but
	// an acknowledged record should survive a crash.)
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	line, err := json.Marshal(manifestEntry{ID: rec.ID, Status: rec.Status, File: rel})
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.manifest.Write(append(line, '\n')); err != nil {
		return err
	}
	return s.manifest.Sync()
}

// Completed replays the manifest and loads the latest record of every
// job whose final entry says ok. A truncated final manifest line — the
// partial write of a sweep killed mid-append — is explicitly tolerated
// and dropped (its job simply re-runs); a malformed line anywhere else
// is corruption and an error, because silently skipping it could hide
// completed work or mask a damaged store. Corrupt or missing job files
// are treated as incomplete (the job will simply re-run), so a sweep
// killed mid-write resumes cleanly.
func (s *Store) Completed() (map[string]Record, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, "manifest.jsonl"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}

	latest := make(map[string]manifestEntry)
	lines := strings.Split(string(data), "\n")
	for i, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		var e manifestEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			if i == len(lines)-1 {
				// No trailing newline: a torn final append from a
				// killed run. Drop it; the job re-runs.
				continue
			}
			return nil, fmt.Errorf("runner: manifest.jsonl:%d: corrupt entry: %w", i+1, err)
		}
		latest[e.ID] = e
	}

	done := make(map[string]Record)
	for id, e := range latest {
		if e.Status != StatusOK {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, e.File))
		if err != nil {
			continue
		}
		var rec Record
		if err := json.Unmarshal(data, &rec); err != nil || rec.ID != id || !rec.OK() {
			continue
		}
		done[id] = rec
	}
	return done, nil
}

// fileFor maps a job ID to a unique, filesystem-safe file name: the
// sanitized ID plus a short hash of the raw ID so that IDs differing
// only in sanitized characters cannot collide.
func fileFor(id string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.', r == '_', r == '=', r == ',', r == '-':
			return r
		default:
			return '-'
		}
	}, id)
	if len(safe) > 150 {
		safe = safe[:150]
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return fmt.Sprintf("%s-%08x.json", safe, h.Sum32())
}
