package runner

import (
	"fmt"

	"abm/internal/randutil"
)

// Plan is an ordered list of jobs plus the base seed their per-job
// seeds derive from. The expansion order defines each job's index, and
// the index alone defines its seed, so a plan's results are independent
// of how many workers execute it.
type Plan struct {
	// Name labels the sweep (used in progress output and store records).
	Name string
	// Seed is the base seed for per-job seed derivation.
	Seed int64
	// Specs are the jobs, in expansion order.
	Specs []Spec
}

// Add appends a job, assigning a positional ID if the spec has none.
func (p *Plan) Add(s Spec) {
	if s.ID == "" {
		s.ID = fmt.Sprintf("%s/%04d", p.Name, len(p.Specs))
	}
	p.Specs = append(p.Specs, s)
}

// SeedFor derives the simulation seed for the job at the given index:
// the index-th output of a SplitMix64 stream seeded with the plan seed.
func (p *Plan) SeedFor(index int) int64 {
	return randutil.DeriveSeed(p.Seed, index)
}

// seedOf resolves the effective seed of job i: an explicit spec seed
// wins, otherwise the derived one.
func (p *Plan) seedOf(i int) int64 {
	if s := p.Specs[i].Seed; s != 0 {
		return s
	}
	return p.SeedFor(i)
}

// Validate checks that every job is runnable and IDs are unique.
func (p *Plan) Validate() error {
	seen := make(map[string]int, len(p.Specs))
	for i, s := range p.Specs {
		if s.Run == nil {
			return fmt.Errorf("runner: job %d (%s) has no Run function", i, s.ID)
		}
		if j, dup := seen[s.ID]; dup {
			return fmt.Errorf("runner: duplicate job ID %q at indexes %d and %d", s.ID, j, i)
		}
		seen[s.ID] = i
	}
	return nil
}
