package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"abm/internal/metrics"
)

// fakeJob returns a RunFunc whose result is a pure function of the
// derived seed, standing in for a deterministic simulation.
func fakeJob(calls *atomic.Int64) RunFunc {
	return func(_ context.Context, seed int64) (Result, error) {
		if calls != nil {
			calls.Add(1)
		}
		return Result{
			Summary: metrics.Summary{
				P99IncastSlowdown: float64(seed%1000) / 10,
				Flows:             int(seed % 97),
			},
			Events: uint64(seed),
			Extra:  map[string]float64{"seed_mod": float64(seed % 13)},
		}, nil
	}
}

func fakePlan(n int, calls *atomic.Int64) *Plan {
	p := &Plan{Name: "fake", Seed: 42}
	for i := 0; i < n; i++ {
		p.Add(Spec{
			Experiment: "fake",
			Group:      fmt.Sprintf("g%d", i%4),
			Run:        fakeJob(calls),
		})
	}
	return p
}

func TestPoolRunsEveryJob(t *testing.T) {
	var calls atomic.Int64
	plan := fakePlan(50, &calls)
	recs, err := (&Pool{Workers: 8}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 || calls.Load() != 50 {
		t.Fatalf("records=%d calls=%d, want 50/50", len(recs), calls.Load())
	}
	for i, r := range recs {
		if !r.OK() || r.Attempts != 1 {
			t.Fatalf("record %d: %+v", i, r)
		}
		if r.ID != plan.Specs[i].ID {
			t.Fatalf("record %d out of order: %s vs %s", i, r.ID, plan.Specs[i].ID)
		}
		if r.Result == nil || r.Result.Events != uint64(r.Seed) {
			t.Fatalf("record %d result mismatch: %+v", i, r)
		}
	}
	if n := len(Failed(recs)); n != 0 {
		t.Fatalf("failed=%d", n)
	}
}

// TestPoolJobShardsCapsWorkers drives a pool whose jobs each claim
// twice the machine (JobShards = 2 x GOMAXPROCS): the worker count
// must clamp to one — observed as at most one job in flight — and the
// adjustment must be logged to Progress.
func TestPoolJobShardsCapsWorkers(t *testing.T) {
	var inFlight, peak atomic.Int64
	plan := &Plan{Name: "shards", Seed: 1}
	for i := 0; i < 12; i++ {
		plan.Add(Spec{Run: func(context.Context, int64) (Result, error) {
			if n := inFlight.Add(1); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(2 * time.Millisecond)
			inFlight.Add(-1)
			return Result{}, nil
		}})
	}
	var progress strings.Builder
	pool := &Pool{Workers: 8, JobShards: 2 * runtime.GOMAXPROCS(0), Progress: &progress}
	if _, err := pool.Run(context.Background(), plan); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 1 {
		t.Fatalf("%d jobs in flight at once; shards x workers exceeds GOMAXPROCS", peak.Load())
	}
	if !strings.Contains(progress.String(), "capping workers 8 -> 1") {
		t.Fatalf("worker cap not logged:\n%s", progress.String())
	}
}

func TestSeedDerivation(t *testing.T) {
	plan := &Plan{Name: "p", Seed: 7}
	for i := 0; i < 100; i++ {
		plan.Add(Spec{Run: fakeJob(nil)})
	}
	seen := map[int64]bool{}
	for i := range plan.Specs {
		s := plan.seedOf(i)
		if s <= 0 {
			t.Fatalf("seed %d not positive: %d", i, s)
		}
		if seen[s] {
			t.Fatalf("duplicate derived seed at %d", i)
		}
		seen[s] = true
		if s != plan.SeedFor(i) {
			t.Fatal("seedOf disagrees with SeedFor")
		}
	}
	// Explicit seeds pass through untouched.
	plan.Specs[3].Seed = 1234
	if plan.seedOf(3) != 1234 {
		t.Fatal("explicit seed not honored")
	}
	// A different plan seed yields different derived seeds.
	other := &Plan{Name: "p", Seed: 8}
	other.Add(Spec{Run: fakeJob(nil)})
	if other.seedOf(0) == plan.SeedFor(0) {
		t.Fatal("plan seed does not influence derivation")
	}
}

func TestPoolPanicCapture(t *testing.T) {
	plan := fakePlan(10, nil)
	plan.Specs[4].Run = func(context.Context, int64) (Result, error) {
		panic("injected crash")
	}
	recs, err := (&Pool{Workers: 4}).Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	bad := recs[4]
	if bad.Status != StatusPanic {
		t.Fatalf("status = %s, want panic", bad.Status)
	}
	if !strings.Contains(bad.Error, "injected crash") || !strings.Contains(bad.Stack, "goroutine") {
		t.Fatalf("panic record missing detail: err=%q stack=%q", bad.Error, bad.Stack)
	}
	if bad.Attempts != 1 {
		t.Fatalf("panics must not be retried, attempts=%d", bad.Attempts)
	}
	for i, r := range recs {
		if i != 4 && !r.OK() {
			t.Fatalf("panic killed sibling job %d: %+v", i, r)
		}
	}
}

func TestPoolTimeout(t *testing.T) {
	plan := fakePlan(4, nil)
	release := make(chan struct{})
	defer close(release)
	plan.Specs[1].Run = func(context.Context, int64) (Result, error) {
		<-release // hung simulation
		return Result{}, nil
	}
	start := time.Now()
	recs, err := (&Pool{Workers: 2, Timeout: 30 * time.Millisecond, Retries: 3}).
		Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := recs[1].Status; got != StatusTimeout {
		t.Fatalf("status = %s, want timeout", got)
	}
	if recs[1].Attempts != 1 {
		t.Fatalf("timeouts must not be retried, attempts=%d", recs[1].Attempts)
	}
	if !strings.Contains(recs[1].Error, "deadline") {
		t.Fatalf("error = %q", recs[1].Error)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not bound the sweep")
	}
	// Per-spec timeout overrides the pool default.
	plan2 := fakePlan(1, nil)
	plan2.Specs[0].Timeout = 10 * time.Millisecond
	plan2.Specs[0].Run = func(ctx context.Context, _ int64) (Result, error) {
		<-ctx.Done() // a ctx-aware job sees the deadline too
		return Result{}, ctx.Err()
	}
	recs2, err := (&Pool{Workers: 1, Timeout: time.Hour}).Run(context.Background(), plan2)
	if err != nil {
		t.Fatal(err)
	}
	if recs2[0].Status != StatusTimeout {
		t.Fatalf("spec timeout not honored: %+v", recs2[0])
	}
}

func TestPoolRetryWithBackoff(t *testing.T) {
	var tries atomic.Int64
	plan := &Plan{Name: "retry", Seed: 1}
	plan.Add(Spec{Run: func(_ context.Context, seed int64) (Result, error) {
		if tries.Add(1) < 3 {
			return Result{}, errors.New("transient")
		}
		return Result{Events: uint64(seed)}, nil
	}})
	recs, err := (&Pool{Workers: 1, Retries: 3, Backoff: time.Millisecond}).
		Run(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !recs[0].OK() || recs[0].Attempts != 3 {
		t.Fatalf("record = %+v, want ok after 3 attempts", recs[0])
	}
	if recs[0].Error != "" || recs[0].Stack != "" {
		t.Fatalf("stale failure detail on success: %+v", recs[0])
	}

	// Exhausted retries leave a failed record with the attempt count.
	plan2 := &Plan{Name: "retry2"}
	plan2.Add(Spec{Run: func(context.Context, int64) (Result, error) {
		return Result{}, errors.New("permanent")
	}})
	recs2, err := (&Pool{Workers: 1, Retries: 2, Backoff: time.Millisecond}).
		Run(context.Background(), plan2)
	if err != nil {
		t.Fatal(err)
	}
	if recs2[0].Status != StatusFailed || recs2[0].Attempts != 3 {
		t.Fatalf("record = %+v, want failed after 3 attempts", recs2[0])
	}
}

func TestPoolCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	plan := &Plan{Name: "cancel"}
	for i := 0; i < 64; i++ {
		plan.Add(Spec{Run: func(context.Context, int64) (Result, error) {
			if started.Add(1) == 2 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return Result{}, nil
		}})
	}
	recs, err := (&Pool{Workers: 2}).Run(ctx, plan)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	canceled := 0
	for _, r := range recs {
		if r.Status == "" {
			t.Fatal("record with empty status")
		}
		if r.Status == StatusCanceled {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no canceled records despite early cancel")
	}
}

func TestPlanValidate(t *testing.T) {
	p := &Plan{Name: "v"}
	p.Add(Spec{ID: "a", Run: fakeJob(nil)})
	p.Add(Spec{ID: "a", Run: fakeJob(nil)})
	if _, err := (&Pool{}).Run(context.Background(), p); err == nil {
		t.Fatal("duplicate IDs not rejected")
	}
	p2 := &Plan{Name: "v2"}
	p2.Add(Spec{ID: "a"})
	if err := p2.Validate(); err == nil {
		t.Fatal("nil Run not rejected")
	}
}
