// Package runner is the sweep orchestration layer behind cmd/sweep,
// cmd/figures and the figure entry points of internal/experiments: it
// expands experiment grids into job lists (Plan), shards them across
// worker goroutines with per-job timeouts, panic recovery and bounded
// retries (Pool), persists one JSON record per job plus a manifest that
// enables resumption (Store), and reduces replicated seeds into summary
// statistics with bootstrap confidence intervals (Aggregate).
//
// The runner is generic: a Spec carries an opaque Run function, so any
// simulation entry point — evaluation cells, burst-lab measurements,
// whole figures — can be driven by the same pool. Determinism holds by
// construction: each job's seed is derived from the plan seed and the
// job's index with SplitMix64, and results are collected by job index,
// so the outcome is byte-identical at any worker count or completion
// order.
package runner

import (
	"context"
	"time"

	"abm/internal/metrics"
	"abm/internal/obs/hist"
)

// RunFunc executes one job. The seed is the job's derived simulation
// seed; ctx carries the per-job deadline (simulations that cannot
// observe it are abandoned by the pool when it expires). The returned
// Result is persisted verbatim in the job's Record.
type RunFunc func(ctx context.Context, seed int64) (Result, error)

// Spec describes one simulation job: which experiment it belongs to,
// its configuration echo, its seed and deadline, and the function that
// runs it.
type Spec struct {
	// ID uniquely identifies the job within its plan; it keys the result
	// store, so it must be stable across runs for --resume to work.
	ID string
	// Experiment names the figure or grid the job belongs to.
	Experiment string
	// Group keys aggregation: jobs that differ only in their replication
	// seed share a Group and are reduced together by Aggregate.
	Group string
	// Seed is the job's simulation seed. Zero means "derive from the
	// plan seed and job index" (the default for replicated sweeps);
	// nonzero pins the seed (the figure runners do this so their TSV
	// output is a pure function of the figure seed).
	Seed int64
	// Timeout bounds the job's wall-clock time; zero uses the pool
	// default, and zero there means no limit.
	Timeout time.Duration
	// Config is echoed into the job's JSON record for provenance.
	Config any
	// Run executes the job.
	Run RunFunc
}

// Result is the payload of a successful job: the paper's flow-metric
// summary plus simulator counters and free-form named extras (per-prio
// tails, burst tolerances, ...).
type Result struct {
	Summary          metrics.Summary    `json:"summary"`
	Events           uint64             `json:"events,omitempty"`
	Drops            int64              `json:"drops,omitempty"`
	UnscheduledDrops int64              `json:"unscheduled_drops,omitempty"`
	Extra            map[string]float64 `json:"extra,omitempty"`
	// Counters carries the run's telemetry counter totals by export
	// name when the job enabled telemetry (see internal/obs).
	Counters map[string]int64 `json:"counters,omitempty"`
	// Hists carries the run's merged histogram snapshots by export name
	// when the job enabled histogram recording; the coordinator merges
	// them fleet-wide (hist.Snapshot.Merge is order-invariant).
	Hists map[string]hist.Snapshot `json:"hists,omitempty"`
	// Scenario is the fully-resolved scenario spec the job executed
	// (scenario.Scenario, typed any to keep this package policy-free):
	// unlike the Config echo, it records every defaulted knob explicitly,
	// so the record alone is enough to re-run the job exactly.
	Scenario any `json:"scenario,omitempty"`
}

// Status classifies how a job ended.
type Status string

// Job statuses.
const (
	StatusOK       Status = "ok"
	StatusFailed   Status = "failed"   // Run returned an error (after retries)
	StatusPanic    Status = "panic"    // Run panicked; Stack holds the trace
	StatusTimeout  Status = "timeout"  // per-job deadline expired
	StatusCanceled Status = "canceled" // the sweep's context was canceled
)

// Record is the persisted outcome of one job — the unit of the Store's
// JSON schema and the input to Aggregate.
type Record struct {
	ID         string  `json:"id"`
	Experiment string  `json:"experiment,omitempty"`
	Group      string  `json:"group,omitempty"`
	Seed       int64   `json:"seed"`
	Config     any     `json:"config,omitempty"`
	Status     Status  `json:"status"`
	Error      string  `json:"error,omitempty"`
	Stack      string  `json:"stack,omitempty"`
	Attempts   int     `json:"attempts"`
	WallMS     float64 `json:"wall_ms"`
	Result     *Result `json:"result,omitempty"`

	// Cached marks records served from the store by --resume rather than
	// executed in this run. Not persisted.
	Cached bool `json:"-"`
}

// OK reports whether the job completed successfully.
func (r Record) OK() bool { return r.Status == StatusOK }

// Failed filters records down to the ones that did not complete.
func Failed(records []Record) []Record {
	var out []Record
	for _, r := range records {
		if !r.OK() {
			out = append(out, r)
		}
	}
	return out
}
