package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"testing"
)

// detPlan is a 48-job multi-seed grid of deterministic fake
// simulations: 6 groups x 8 replications.
func detPlan() *Plan {
	plan := &Plan{Name: "det", Seed: 1234}
	for g := 0; g < 6; g++ {
		for rep := 0; rep < 8; rep++ {
			group := fmt.Sprintf("cfg=%d", g)
			plan.Add(Spec{
				ID:         fmt.Sprintf("det/%02d-%s,rep=%d", g*8+rep, group, rep),
				Experiment: "det",
				Group:      group,
				Run:        fakeJob(nil),
			})
		}
	}
	return plan
}

// TestDeterminismAcrossWorkerCounts is the core runner guarantee: the
// aggregated output of one plan seed is byte-identical at 1, 4 and 16
// workers, because seeds derive from job indexes and aggregation orders
// records before any arithmetic.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	var golden []byte
	for _, workers := range []int{1, 4, 16} {
		recs, err := (&Pool{Workers: workers}).Run(context.Background(), detPlan())
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(Aggregate(recs), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = out
			continue
		}
		if string(out) != string(golden) {
			t.Fatalf("workers=%d changed the aggregate:\n%s\nvs\n%s", workers, out, golden)
		}
	}
	if len(golden) == 0 {
		t.Fatal("empty aggregate")
	}
}

// TestDeterminismSameSeedTwice guards against hidden global state: two
// fresh runs of the same plan produce identical records.
func TestDeterminismSameSeedTwice(t *testing.T) {
	run := func() []Record {
		recs, err := (&Pool{Workers: 8}).Run(context.Background(), detPlan())
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			recs[i].WallMS = 0 // the only legitimately nondeterministic field
		}
		return recs
	}
	a, _ := json.Marshal(run())
	b, _ := json.Marshal(run())
	if string(a) != string(b) {
		t.Fatal("same plan produced different records")
	}
}

func TestAggregateStatistics(t *testing.T) {
	var recs []Record
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for i, v := range vals {
		recs = append(recs, Record{
			ID: fmt.Sprintf("a/%02d", i), Experiment: "a", Group: "g",
			Seed: int64(i + 1), Status: StatusOK,
			Result: &Result{Extra: map[string]float64{"v": v}},
		})
	}
	recs = append(recs, Record{
		ID: "a/98", Experiment: "a", Group: "g", Status: StatusFailed, Error: "x",
	})
	recs = append(recs, Record{
		ID: "a/99", Experiment: "a", Group: "h", Status: StatusOK,
		Result: &Result{Extra: map[string]float64{"v": 7}},
	})

	groups := Aggregate(recs)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	g := groups[0]
	if g.Group != "g" || g.N != 10 || g.Failed != 1 {
		t.Fatalf("group g: %+v", g)
	}
	st := g.Metrics["v"]
	if math.Abs(st.Mean-5.5) > 1e-12 {
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.P99 != 10 || st.P50 != 5 {
		t.Fatalf("percentiles: %+v", st)
	}
	if !(st.CILo <= st.Mean && st.Mean <= st.CIHi) {
		t.Fatalf("CI does not bracket the mean: %+v", st)
	}
	if st.CILo == st.CIHi {
		t.Fatal("degenerate CI for n=10")
	}
	// Singleton group degenerates to the point estimate.
	h := groups[1]
	if hs := h.Metrics["v"]; hs.CILo != 7 || hs.CIHi != 7 || hs.Mean != 7 {
		t.Fatalf("singleton group: %+v", hs)
	}
	if out := FormatGroups(groups); len(out) == 0 {
		t.Fatal("empty FormatGroups")
	}
}
