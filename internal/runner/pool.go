package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// errTimeout marks a per-job deadline expiry (distinct from sweep-level
// cancellation, which is never retried and aborts dispatch).
var errTimeout = errors.New("job deadline exceeded")

// RecordSink is where a pool persists records as jobs complete and
// where it reads previously-completed jobs from when resuming. *Store
// (one JSON file per job plus a manifest) is the classic implementation;
// internal/sweepd's batched append-only record log is another.
type RecordSink interface {
	// Put persists one finished record durably.
	Put(Record) error
	// Completed returns the latest successful record of every job the
	// sink already holds, keyed by job ID; jobs it lists are skipped on
	// resume.
	Completed() (map[string]Record, error)
}

// Pool executes a Plan's jobs across a fixed set of worker goroutines.
// Each job runs with an optional wall-clock timeout and panic recovery:
// a crashing or hung simulation marks its own record failed and never
// takes the sweep down. Errors (but not panics or timeouts, which are
// deterministic) are retried up to Retries times with exponential
// backoff. The zero value is a working pool with NumCPU workers, no
// timeout, no retries and no persistence.
type Pool struct {
	// Workers is the number of concurrent jobs; <=0 means NumCPU.
	Workers int
	// JobShards is the number of simulation shards each job itself runs
	// on (its internal goroutine fan-out); <=1 means jobs are serial.
	// When >1, Run caps the worker count so that workers x JobShards
	// stays within GOMAXPROCS instead of silently oversubscribing the
	// machine, and logs the adjustment to Progress.
	JobShards int
	// Timeout is the default per-job wall-clock limit; 0 means none.
	// A simulation cannot be preempted, so on expiry the job goroutine
	// is abandoned (it still counts against no worker slot) and the job
	// is recorded as StatusTimeout.
	Timeout time.Duration
	// Retries is how many times a job returning an error is re-run.
	Retries int
	// Backoff is the first retry delay, doubling per attempt; <=0 means
	// 100ms.
	Backoff time.Duration
	// Progress, when non-nil, receives live completion/ETA lines
	// (typically os.Stderr).
	Progress io.Writer
	// Store, when non-nil, persists every record as it completes and
	// lets already-completed jobs be skipped on a re-run (resume).
	// Assign a concrete value only when it is non-nil: a typed-nil
	// *Store inside the interface would read as "persistence on".
	Store RecordSink
}

// Run executes the plan and returns one record per job, in plan order.
// The error reports setup problems (invalid plan, unreadable store) or
// context cancellation; per-job failures are carried in the records —
// check Failed on the result.
func (p *Pool) Run(ctx context.Context, plan *Plan) ([]Record, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if p.JobShards > 1 && workers > 1 {
		maxWorkers := runtime.GOMAXPROCS(0) / p.JobShards
		if maxWorkers < 1 {
			maxWorkers = 1
		}
		if workers > maxWorkers {
			if p.Progress != nil {
				fmt.Fprintf(p.Progress,
					"runner: capping workers %d -> %d (%d shards/job, GOMAXPROCS %d)\n",
					workers, maxWorkers, p.JobShards, runtime.GOMAXPROCS(0))
			}
			workers = maxWorkers
		}
	}
	var done map[string]Record
	if p.Store != nil {
		var err error
		done, err = p.Store.Completed()
		if err != nil {
			return nil, err
		}
	}

	records := make([]Record, len(plan.Specs))
	prog := newProgress(p.Progress, plan.Name, len(plan.Specs))
	var (
		wg       sync.WaitGroup
		storeErr error
		storeMu  sync.Mutex
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				spec := plan.Specs[i]
				if rec, ok := done[spec.ID]; ok && rec.OK() {
					rec.Cached = true
					records[i] = rec
					prog.record(rec)
					continue
				}
				rec := p.runJob(ctx, spec, plan.seedOf(i))
				if p.Store != nil && rec.Status != StatusCanceled {
					if err := p.Store.Put(rec); err != nil {
						storeMu.Lock()
						if storeErr == nil {
							storeErr = err
						}
						storeMu.Unlock()
					}
				}
				records[i] = rec
				prog.record(rec)
			}
		}()
	}
dispatch:
	for i := range plan.Specs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	prog.finish()

	for i := range records {
		if records[i].Status == "" {
			spec := plan.Specs[i]
			records[i] = Record{
				ID: spec.ID, Experiment: spec.Experiment, Group: spec.Group,
				Seed: plan.seedOf(i), Config: spec.Config,
				Status: StatusCanceled, Error: ctx.Err().Error(),
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return records, err
	}
	return records, storeErr
}

// runJob executes one job to a final record, including its retry loop.
func (p *Pool) runJob(ctx context.Context, spec Spec, seed int64) Record {
	return Execute(ctx, spec, seed, ExecOptions{
		Timeout: p.Timeout, Retries: p.Retries, Backoff: p.Backoff,
	})
}

// ExecOptions bounds one Execute call: the defaults a Pool would apply
// to a job whose spec leaves them unset.
type ExecOptions struct {
	// Timeout is the wall-clock limit when spec.Timeout is zero; zero
	// means none.
	Timeout time.Duration
	// Retries is how many times a job returning a plain error re-runs.
	Retries int
	// Backoff is the first retry delay, doubling per attempt; <=0 means
	// 100ms.
	Backoff time.Duration
}

// Execute runs one job to a final record — panic recovery, per-job
// deadline, bounded retries with exponential backoff — exactly as a
// Pool worker would. It is the single job-execution path shared by the
// in-process Pool and the distributed sweep workers (internal/sweepd),
// so a job's record is identical wherever it runs.
func Execute(ctx context.Context, spec Spec, seed int64, opt ExecOptions) Record {
	rec := Record{
		ID: spec.ID, Experiment: spec.Experiment, Group: spec.Group,
		Seed: seed, Config: spec.Config,
	}
	timeout := spec.Timeout
	if timeout == 0 {
		timeout = opt.Timeout
	}
	backoff := opt.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	start := time.Now()
	for {
		rec.Attempts++
		res, stack, err := attempt(ctx, spec, seed, timeout)
		switch {
		case err == nil:
			rec.Status, rec.Result, rec.Error, rec.Stack = StatusOK, &res, "", ""
		case stack != nil:
			rec.Status, rec.Error, rec.Stack = StatusPanic, err.Error(), string(stack)
		case errors.Is(err, errTimeout):
			rec.Status, rec.Error = StatusTimeout, err.Error()
		case ctx.Err() != nil:
			rec.Status, rec.Error = StatusCanceled, err.Error()
		default:
			rec.Status, rec.Error = StatusFailed, err.Error()
		}
		// Panics and timeouts are deterministic in a seeded simulator;
		// only plain errors are worth retrying.
		if rec.Status != StatusFailed || rec.Attempts > opt.Retries {
			break
		}
		select {
		case <-time.After(backoff << (rec.Attempts - 1)):
		case <-ctx.Done():
			rec.Status, rec.Error = StatusCanceled, ctx.Err().Error()
		}
		if rec.Status == StatusCanceled {
			break
		}
	}
	rec.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	return rec
}

// attempt runs spec.Run once under the deadline, converting panics into
// errors with their stack attached.
func attempt(ctx context.Context, spec Spec, seed int64,
	timeout time.Duration) (Result, []byte, error) {

	jobCtx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		jobCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	type outcome struct {
		res   Result
		stack []byte
		err   error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("panic: %v", r), stack: debug.Stack()}
			}
		}()
		res, err := spec.Run(jobCtx, seed)
		ch <- outcome{res: res, err: err}
	}()
	select {
	case o := <-ch:
		return o.res, o.stack, o.err
	case <-jobCtx.Done():
		if ctx.Err() == nil {
			return Result{}, nil, fmt.Errorf("runner: %s: %w after %v", spec.ID, errTimeout, timeout)
		}
		return Result{}, nil, ctx.Err()
	}
}
