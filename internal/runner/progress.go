package runner

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// progress prints live completion counts and a throughput-based ETA to
// one line of the given writer. A nil writer disables all output.
type progress struct {
	w     io.Writer
	name  string
	total int

	mu     sync.Mutex
	start  time.Time
	done   int
	failed int
	cached int
}

func newProgress(w io.Writer, name string, total int) *progress {
	return &progress{w: w, name: name, total: total, start: time.Now()}
}

// record accounts one finished job and repaints the status line.
func (p *progress) record(rec Record) {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if !rec.OK() {
		p.failed++
	}
	if rec.Cached {
		p.cached++
	}
	elapsed := time.Since(p.start)
	// Completions arrive at the pool's aggregate throughput, so
	// elapsed/done predicts the remaining wall time at any worker count.
	eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
	fmt.Fprintf(p.w, "\r%s: %d/%d done, %d failed, %d cached, %s elapsed, eta %s   ",
		p.name, p.done, p.total, p.failed, p.cached,
		elapsed.Round(100*time.Millisecond), eta.Round(100*time.Millisecond))
}

// finish terminates the status line.
func (p *progress) finish() {
	if p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done > 0 {
		fmt.Fprintln(p.w)
	}
}
