package runner

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"abm/internal/metrics"
	"abm/internal/randutil"
)

// Stat summarizes one metric across a group's replicated seeds.
type Stat struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	// CILo/CIHi bound the 95% bootstrap confidence interval of the mean.
	CILo float64 `json:"ci95_lo"`
	CIHi float64 `json:"ci95_hi"`
}

// Group is the aggregate of every successful replication of one
// configuration (same Experiment and Group key, different seeds).
type Group struct {
	Experiment string          `json:"experiment,omitempty"`
	Group      string          `json:"group"`
	N          int             `json:"n"`
	Failed     int             `json:"failed,omitempty"`
	Seeds      []int64         `json:"seeds,omitempty"`
	Metrics    map[string]Stat `json:"metrics"`
}

// bootstrapResamples is the bootstrap sample count for the CIs.
const bootstrapResamples = 1000

// Aggregate reduces job records into per-group statistics: mean, p50,
// p95, p99 and a 95% bootstrap confidence interval of the mean for
// every metric, across the seeds replicated within each (Experiment,
// Group) pair. The reduction is deterministic: records are ordered by
// ID before any arithmetic and the bootstrap RNG is seeded from the
// group name, so output bytes do not depend on worker count or
// completion order. Wall times and attempt counts are deliberately
// excluded for the same reason.
func Aggregate(records []Record) []Group {
	ordered := append([]Record(nil), records...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })

	type key struct{ exp, group string }
	groups := make(map[key]*Group)
	vals := make(map[key]map[string][]float64)
	var keys []key
	for _, rec := range ordered {
		k := key{rec.Experiment, rec.Group}
		g, ok := groups[k]
		if !ok {
			g = &Group{Experiment: k.exp, Group: k.group, Metrics: map[string]Stat{}}
			groups[k] = g
			vals[k] = map[string][]float64{}
			keys = append(keys, k)
		}
		if !rec.OK() {
			g.Failed++
			continue
		}
		g.N++
		g.Seeds = append(g.Seeds, rec.Seed)
		for name, v := range MetricsOf(rec) {
			vals[k][name] = append(vals[k][name], v)
		}
	}

	sort.Slice(keys, func(i, j int) bool {
		if keys[i].exp != keys[j].exp {
			return keys[i].exp < keys[j].exp
		}
		return keys[i].group < keys[j].group
	})
	out := make([]Group, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		names := make([]string, 0, len(vals[k]))
		for name := range vals[k] {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			g.Metrics[name] = statOf(vals[k][name], k.exp+"/"+k.group+"/"+name)
		}
		out = append(out, *g)
	}
	return out
}

// statOf computes one metric's statistics; tag seeds the bootstrap RNG
// deterministically.
func statOf(vs []float64, tag string) Stat {
	st := Stat{
		Mean: metrics.Mean(vs),
		P50:  metrics.Percentile(vs, 50),
		P95:  metrics.Percentile(vs, 95),
		P99:  metrics.Percentile(vs, 99),
	}
	st.CILo, st.CIHi = bootstrapCI(vs, tag)
	return st
}

// bootstrapCI returns the 2.5th and 97.5th percentiles of the
// resampled mean. With fewer than two observations the interval
// degenerates to the point estimate.
func bootstrapCI(vs []float64, tag string) (lo, hi float64) {
	if len(vs) == 0 {
		return 0, 0
	}
	if len(vs) < 2 {
		return vs[0], vs[0]
	}
	h := fnv.New64a()
	h.Write([]byte(tag))
	rng := rand.New(rand.NewSource(randutil.DeriveSeed(int64(h.Sum64()), 0)))
	means := make([]float64, bootstrapResamples)
	for b := range means {
		var sum float64
		for range vs {
			sum += vs[rng.Intn(len(vs))]
		}
		means[b] = sum / float64(len(vs))
	}
	return metrics.Percentile(means, 2.5), metrics.Percentile(means, 97.5)
}

// MetricsOf flattens a record's result into named scalar metrics — the
// exact value set Aggregate reduces. Exported so other layers (the
// sweep coordinator's adaptive-replication check) agree byte-for-byte
// with Aggregate on what a record is worth.
func MetricsOf(rec Record) map[string]float64 {
	if rec.Result == nil {
		return nil
	}
	s := rec.Result.Summary
	m := map[string]float64{
		"p99_incast_slowdown":     s.P99IncastSlowdown,
		"p99_short_slowdown":      s.P99ShortSlowdown,
		"p999_short_slowdown":     s.P999ShortSlowdown,
		"p999_all_short_slowdown": s.P999AllShortSlowdown,
		"median_long_slowdown":    s.MedianLongSlowdown,
		"p99_buffer_frac":         s.P99BufferFrac,
		"avg_tput_frac":           s.AvgThroughputFrac,
		"flows":                   float64(s.Flows),
		"unfinished":              float64(s.Unfinished),
		"drops":                   float64(rec.Result.Drops),
		"events":                  float64(rec.Result.Events),
	}
	for name, v := range rec.Result.Extra {
		m[name] = v
	}
	return m
}

// FormatGroups renders aggregated groups as a TSV table (group rows x
// one headline metric column set), for quick terminal inspection.
func FormatGroups(groups []Group) string {
	out := "experiment\tgroup\tn\tfailed\tp99_incast_mean\tp99_incast_ci95\tp99_short_mean\tavg_tput_mean\n"
	for _, g := range groups {
		inc := g.Metrics["p99_incast_slowdown"]
		short := g.Metrics["p99_short_slowdown"]
		tput := g.Metrics["avg_tput_frac"]
		out += fmt.Sprintf("%s\t%s\t%d\t%d\t%.2f\t[%.2f,%.2f]\t%.2f\t%.3f\n",
			g.Experiment, g.Group, g.N, g.Failed,
			inc.Mean, inc.CILo, inc.CIHi, short.Mean, tput.Mean)
	}
	return out
}
