package bm

import (
	"abm/internal/units"
)

// FAB is the Flow-Aware Buffer policy (Apostolaki et al., Buffer Sizing
// Workshop 2019): Dynamic Thresholds, but packets belonging to flows
// that have so far sent fewer than ShortFlowBytes are admitted with a
// boosted alpha, giving short flows a larger slice of the remaining
// buffer. It inherits DT's pitfalls (§5 of the ABM paper).
type FAB struct {
	// ShortFlowBytes is the cumulative per-flow byte count under which a
	// flow still counts as short. Defaults to 100 KB.
	ShortFlowBytes units.ByteCount
	// BoostFactor multiplies alpha for short-flow packets. Defaults to 8.
	BoostFactor float64
	// AgeAfter evicts idle flow entries after this long. Defaults to 10ms.
	AgeAfter units.Time

	flows map[uint64]*fabFlow
}

type fabFlow struct {
	bytes    units.ByteCount
	lastSeen units.Time
}

// NewFAB returns a FAB policy with the given short-flow cutoff and boost;
// zero values select the defaults.
func NewFAB(shortBytes units.ByteCount, boost float64) *FAB {
	f := &FAB{ShortFlowBytes: shortBytes, BoostFactor: boost}
	f.init()
	return f
}

func (f *FAB) init() {
	if f.ShortFlowBytes <= 0 {
		f.ShortFlowBytes = 100 * units.Kilobyte
	}
	if f.BoostFactor <= 0 {
		f.BoostFactor = 8
	}
	if f.AgeAfter <= 0 {
		f.AgeAfter = 10 * units.Millisecond
	}
	if f.flows == nil {
		f.flows = make(map[uint64]*fabFlow)
	}
}

// Name implements Policy.
func (f *FAB) Name() string { return "FAB" }

// Threshold implements Policy: DT with a boosted alpha for short flows.
func (f *FAB) Threshold(ctx *Ctx) units.ByteCount {
	f.init()
	alpha := ctx.Alpha
	if fl, ok := f.flows[ctx.FlowID]; !ok || fl.bytes < f.ShortFlowBytes {
		alpha *= f.BoostFactor
	}
	remaining := float64(ctx.Total - ctx.Occupied)
	return clampBytes(alpha * remaining)
}

// OnAdmit implements FlowAware: account the flow's bytes.
func (f *FAB) OnAdmit(ctx *Ctx) {
	f.init()
	fl, ok := f.flows[ctx.FlowID]
	if !ok {
		fl = &fabFlow{}
		f.flows[ctx.FlowID] = fl
	}
	fl.bytes += ctx.PacketSize
	fl.lastSeen = ctx.Now
}

// OnDrop implements FlowAware. Drops still advance lastSeen so an active
// but heavily dropped flow is not evicted and re-classified as short.
func (f *FAB) OnDrop(ctx *Ctx) {
	f.init()
	if fl, ok := f.flows[ctx.FlowID]; ok {
		fl.lastSeen = ctx.Now
	}
}

// Tick implements Ticker: age out idle flows so the table stays small.
func (f *FAB) Tick(now units.Time) {
	f.init()
	for id, fl := range f.flows {
		if now-fl.lastSeen > f.AgeAfter {
			delete(f.flows, id)
		}
	}
}

// FlowTableSize reports the number of tracked flows (for tests and
// introspection).
func (f *FAB) FlowTableSize() int { return len(f.flows) }
