package bm

import (
	"testing"

	"abm/internal/units"
)

func edtCtx(qlen units.ByteCount, now units.Time) *Ctx {
	c := ctx(1_000_000, 400_000, qlen)
	c.Now = now
	return c
}

func TestEDTGrantsBurstAllowanceFromEmpty(t *testing.T) {
	e := NewEDT()
	dt := (DT{}).Threshold(edtCtx(0, 0))
	got := e.Threshold(edtCtx(0, 0))
	if got <= dt {
		t.Fatalf("EDT from empty = %v, want above DT %v", got, dt)
	}
	if got != dt+1_000_000/8 {
		t.Fatalf("allowance = %v, want DT + B/8", got)
	}
}

func TestEDTAllowanceExpires(t *testing.T) {
	e := NewEDT()
	e.Threshold(edtCtx(0, 0)) // arm burst state
	dt := (DT{}).Threshold(edtCtx(50_000, 0))
	// Within the burst window the allowance holds.
	if got := e.Threshold(edtCtx(50_000, 500*units.Microsecond)); got <= dt {
		t.Fatalf("allowance vanished early: %v", got)
	}
	// After BurstDuration it reverts to DT (evacuation).
	if got := e.Threshold(edtCtx(50_000, 2*units.Millisecond)); got != dt {
		t.Fatalf("post-burst threshold = %v, want DT %v", got, dt)
	}
	// Still evacuating while backlogged.
	if got := e.Threshold(edtCtx(50_000, 3*units.Millisecond)); got != dt {
		t.Fatalf("evacuation threshold = %v, want DT %v", got, dt)
	}
}

func TestEDTRearmsAfterDrain(t *testing.T) {
	e := NewEDT()
	e.Threshold(edtCtx(0, 0))                              // burst
	e.Threshold(edtCtx(50_000, 2*units.Millisecond))       // evacuate
	e.Threshold(edtCtx(1_000, 3*units.Millisecond))        // drained: back to normal
	got := e.Threshold(edtCtx(1_000, 4*units.Millisecond)) // re-arms
	dt := (DT{}).Threshold(edtCtx(1_000, 0))
	if got <= dt {
		t.Fatalf("EDT did not re-arm after drain: %v vs DT %v", got, dt)
	}
}

func TestEDTIndependentPerQueue(t *testing.T) {
	e := NewEDT()
	a := edtCtx(0, 0)
	a.Port, a.Prio = 0, 0
	b := edtCtx(200_000, 0)
	b.Port, b.Prio = 1, 0
	e.Threshold(a)
	// Queue b is deep in normal state: no allowance.
	dt := (DT{}).Threshold(b)
	if got := e.Threshold(b); got != dt {
		t.Fatalf("deep queue got allowance: %v vs DT %v", got, dt)
	}
}
