package bm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"abm/internal/units"
)

func ctx(total, occupied, qlen units.ByteCount) *Ctx {
	return &Ctx{
		Total:             total,
		Occupied:          occupied,
		QueueLen:          qlen,
		Alpha:             0.5,
		AlphaUnscheduled:  64,
		NormDrain:         1,
		CongestedSamePrio: 1,
		PacketSize:        1500,
	}
}

func TestDTThreshold(t *testing.T) {
	c := ctx(1000, 400, 0)
	// T = alpha*(B-Q) = 0.5*600 = 300.
	if got := (DT{}).Threshold(c); got != 300 {
		t.Fatalf("DT threshold = %v, want 300", got)
	}
	c.Occupied = 1000
	if got := (DT{}).Threshold(c); got != 0 {
		t.Fatalf("full buffer threshold = %v, want 0", got)
	}
}

func TestCSThreshold(t *testing.T) {
	c := ctx(1000, 999, 500)
	if got := (CS{}).Threshold(c); got != 1000 {
		t.Fatalf("CS threshold = %v, want B", got)
	}
}

func TestCPThreshold(t *testing.T) {
	c := ctx(1000, 0, 0)
	if got := (CP{NumQueues: 4}).Threshold(c); got != 250 {
		t.Fatalf("CP threshold = %v, want B/N=250", got)
	}
}

func TestCPPanicsWithoutN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(CP{}).Threshold(ctx(1000, 0, 0))
}

func TestABMThreshold(t *testing.T) {
	c := ctx(1000, 400, 0)
	c.NormDrain = 0.5
	c.CongestedSamePrio = 2
	// T = 0.5 * (1/2) * 600 * 0.5 = 75.
	if got := (ABM{}).Threshold(c); got != 75 {
		t.Fatalf("ABM threshold = %v, want 75", got)
	}
}

func TestABMUnscheduledBoost(t *testing.T) {
	c := ctx(1000, 400, 0)
	c.Unscheduled = true
	// alpha becomes 64: T = 64 * 600 = 38400 (clamped later by buffer).
	if got := (ABM{}).Threshold(c); got != 38400 {
		t.Fatalf("unscheduled threshold = %v, want 38400", got)
	}
	if !(ABM{}).UseHeadroom(c) {
		t.Fatal("unscheduled packets should be headroom-eligible")
	}
	c.Unscheduled = false
	if (ABM{}).UseHeadroom(c) {
		t.Fatal("scheduled packets should not be headroom-eligible")
	}
}

func TestABMZeroCongestedTreatedAsOne(t *testing.T) {
	c := ctx(1000, 0, 0)
	c.CongestedSamePrio = 0
	got := (ABM{}).Threshold(c)
	c.CongestedSamePrio = 1
	want := (ABM{}).Threshold(c)
	if got != want {
		t.Fatalf("n=0 threshold %v, want same as n=1 (%v)", got, want)
	}
}

// Property: ABM's threshold is never negative and never exceeds DT's for
// the same state when NormDrain<=1 and n>=1 and the same alpha is used —
// ABM only *shrinks* the DT allocation (Eq. 9 vs Eq. 5).
func TestABMDominatedByDTProperty(t *testing.T) {
	f := func(totRaw, occRaw uint32, drainRaw uint8, nRaw uint8) bool {
		total := units.ByteCount(totRaw%10_000_000) + 1
		occupied := units.ByteCount(occRaw) % total
		c := ctx(total, occupied, 0)
		c.NormDrain = float64(drainRaw%101) / 100
		c.CongestedSamePrio = int(nRaw%16) + 1
		abm := (ABM{}).Threshold(c)
		dt := (DT{}).Threshold(c)
		return abm >= 0 && abm <= dt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: thresholds decrease (weakly) as occupancy grows, for DT and ABM.
func TestThresholdMonotoneInOccupancyProperty(t *testing.T) {
	f := func(totRaw, aRaw, bRaw uint32) bool {
		total := units.ByteCount(totRaw%10_000_000) + 2
		qa := units.ByteCount(aRaw) % total
		qb := units.ByteCount(bRaw) % total
		if qa > qb {
			qa, qb = qb, qa
		}
		ca, cb := ctx(total, qa, 0), ctx(total, qb, 0)
		return (DT{}).Threshold(ca) >= (DT{}).Threshold(cb) &&
			(ABM{}).Threshold(ca) >= (ABM{}).Threshold(cb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFABBoostsShortFlows(t *testing.T) {
	f := NewFAB(10_000, 4)
	c := ctx(1000, 400, 0)
	c.FlowID = 1
	// Unknown flow: boosted threshold 0.5*4*600 = 1200 (above DT's 300).
	if got := f.Threshold(c); got != 1200 {
		t.Fatalf("short-flow threshold = %v, want 1200", got)
	}
	// Feed 10KB through the flow: becomes long, back to DT.
	for i := 0; i < 10; i++ {
		c.PacketSize = 1000
		f.OnAdmit(c)
	}
	if got := f.Threshold(c); got != 300 {
		t.Fatalf("long-flow threshold = %v, want plain DT 300", got)
	}
}

func TestFABAging(t *testing.T) {
	f := NewFAB(10_000, 4)
	c := ctx(1000, 0, 0)
	c.FlowID = 9
	c.Now = 0
	f.OnAdmit(c)
	if f.FlowTableSize() != 1 {
		t.Fatal("flow not tracked")
	}
	f.Tick(20 * units.Millisecond)
	if f.FlowTableSize() != 0 {
		t.Fatal("idle flow not aged out")
	}
}

func TestFABDropKeepsFlowAlive(t *testing.T) {
	f := NewFAB(10_000, 4)
	c := ctx(1000, 0, 0)
	c.FlowID = 3
	f.OnAdmit(c)
	c.Now = 9 * units.Millisecond
	f.OnDrop(c)
	f.Tick(12 * units.Millisecond) // 3ms after last activity: below AgeAfter
	if f.FlowTableSize() != 1 {
		t.Fatal("active (dropped) flow was evicted")
	}
}

type fakeStats struct {
	size  units.ByteCount
	used  units.ByteCount
	ports int
	prios int
	rate  units.Rate
	qlen  func(p, q int) units.ByteCount
	drain func(p, q int) float64
	ncong func(q int) int
}

func (s fakeStats) BufferSize() units.ByteCount { return s.size }
func (s fakeStats) BufferUsed() units.ByteCount { return s.used }
func (s fakeStats) Ports() int                  { return s.ports }
func (s fakeStats) Prios() int                  { return s.prios }
func (s fakeStats) PortRate() units.Rate {
	if s.rate == 0 {
		return 10 * units.GigabitPerSec
	}
	return s.rate
}
func (s fakeStats) QueueLen(p, q int) units.ByteCount {
	if s.qlen == nil {
		return 0
	}
	return s.qlen(p, q)
}
func (s fakeStats) NormDrain(p, q int) float64 {
	if s.drain == nil {
		return 1
	}
	return s.drain(p, q)
}
func (s fakeStats) CongestedSamePrio(q int) int {
	if s.ncong == nil {
		return 1
	}
	return s.ncong(q)
}

func TestIBElephantDropping(t *testing.T) {
	ib := NewIB()
	ib.Bind(fakeStats{size: 1_000_000, ports: 1, prios: 1})
	rng := rand.New(rand.NewSource(4))
	c := ctx(1_000_000, 0, 200*units.Kilobyte) // queue above the AFD target
	c.FlowID = 1

	// A brand-new flow is a mouse: never dropped.
	if ib.ShouldDrop(c, rng) {
		t.Fatal("new flow must not be AFD-dropped")
	}
	// Below the target queue AFD is inactive even for known flows.
	calm := ctx(1_000_000, 0, 10*units.Kilobyte)
	calm.FlowID = 1
	if ib.ShouldDrop(calm, rng) {
		t.Fatal("AFD must be inactive below the target queue")
	}
	// Pump 500KB through the flow in one window: clearly an elephant.
	c.PacketSize = 1500
	for i := 0; i < 350; i++ {
		ib.OnAdmit(c)
	}
	// Force the fair share far below the flow's rate; lift the TCP cap to
	// test the raw AFD law.
	ib.fairBytes = 1500
	ib.MaxDropProb = 1
	drops := 0
	for i := 0; i < 1000; i++ {
		if ib.ShouldDrop(c, rng) {
			drops++
		}
	}
	if drops < 900 {
		t.Fatalf("elephant should be dropped aggressively, got %d/1000", drops)
	}
	// With the default cap the drop rate is bounded.
	ib.MaxDropProb = 0.05
	drops = 0
	for i := 0; i < 2000; i++ {
		if ib.ShouldDrop(c, rng) {
			drops++
		}
	}
	if drops > 250 {
		t.Fatalf("capped AFD dropped %d/2000, want <= ~5%%", drops)
	}
	// A different small flow is untouched.
	c2 := ctx(1_000_000, 0, 0)
	c2.FlowID = 2
	ib.OnAdmit(c2)
	if ib.ShouldDrop(c2, rng) {
		t.Fatal("mouse must not be dropped")
	}
}

func TestIBFairShareAdapts(t *testing.T) {
	// Queues above target: the fair share must shrink.
	high := fakeStats{size: 1_000_000, ports: 1, prios: 1,
		qlen: func(p, q int) units.ByteCount { return 300 * units.Kilobyte }}
	ib := NewIB()
	ib.Bind(high)
	before := ib.FairShare()
	ib.Tick(2 * units.Millisecond)
	if ib.FairShare() >= before {
		t.Fatalf("fair share should shrink above target: %v -> %v", before, ib.FairShare())
	}
	// Queues below target: it must grow.
	ib2 := NewIB()
	ib2.Bind(fakeStats{size: 1_000_000, ports: 1, prios: 1})
	before = ib2.FairShare()
	ib2.Tick(2 * units.Millisecond)
	if ib2.FairShare() <= before {
		t.Fatalf("fair share should grow below target: %v -> %v", before, ib2.FairShare())
	}
}

func TestIBWindowRollover(t *testing.T) {
	ib := NewIB()
	ib.Bind(fakeStats{size: 1_000_000, ports: 1, prios: 1})
	c := ctx(1_000_000, 0, 0)
	c.FlowID = 5
	c.PacketSize = 200_000
	ib.OnAdmit(c)
	ib.Tick(2 * units.Millisecond) // closes the window
	fl := ib.flows[5]
	if fl.prevBytes != 200_000 || fl.winBytes != 0 {
		t.Fatalf("window rollover broken: prev=%v win=%v", fl.prevBytes, fl.winBytes)
	}
	// Flow idles away after 4 windows.
	ib.Tick(10 * units.Millisecond)
	if _, ok := ib.flows[5]; ok {
		t.Fatal("idle flow should be evicted")
	}
}

func TestIBHeadroomEligibility(t *testing.T) {
	ib := NewIB()
	c := ctx(1_000_000, 0, 0)
	c.FlowID = 8
	if !ib.UseHeadroom(c) {
		t.Fatal("unknown flow (mouse) should use headroom")
	}
	c.PacketSize = 1500
	for i := 0; i < 100; i++ {
		ib.OnAdmit(c)
	}
	if ib.UseHeadroom(c) {
		t.Fatal("elephant should not use headroom")
	}
	c.Unscheduled = true
	if !ib.UseHeadroom(c) {
		t.Fatal("unscheduled always headroom-eligible")
	}
}

func TestApproxBeforeFirstTickIsDT(t *testing.T) {
	a := NewApprox(units.Millisecond)
	c := ctx(1000, 400, 0)
	if got, want := a.Threshold(c), (DT{}).Threshold(c); got != want {
		t.Fatalf("pre-tick approx = %v, want DT %v", got, want)
	}
}

func TestApproxTracksABMAfterTick(t *testing.T) {
	stats := fakeStats{
		size: 1000, used: 400, ports: 1, prios: 1,
		drain: func(p, q int) float64 { return 0.5 },
		ncong: func(q int) int { return 2 },
	}
	a := NewApprox(units.Millisecond)
	a.SetAlphas([]float64{0.5})
	a.Bind(stats)
	a.Tick(units.Millisecond)
	c := ctx(1000, 400, 0)
	c.NormDrain = 0.5
	c.CongestedSamePrio = 2
	if got, want := a.Threshold(c), (ABM{}).Threshold(c); got != want {
		t.Fatalf("post-tick approx = %v, want ABM %v", got, want)
	}
}

func TestApproxRespectsInterval(t *testing.T) {
	calls := 0
	stats := fakeStats{size: 1000, ports: 1, prios: 1,
		ncong: func(q int) int { calls++; return 1 }}
	a := NewApprox(10 * units.Millisecond)
	a.Bind(stats)
	a.Tick(units.Millisecond) // first tick always fires
	first := calls
	a.Tick(2 * units.Millisecond) // within interval: ignored
	if calls != first {
		t.Fatal("tick fired before interval elapsed")
	}
	a.Tick(12 * units.Millisecond)
	if calls == first {
		t.Fatal("tick did not fire after interval")
	}
}

func TestApproxPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewApprox(0)
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, 16, units.Millisecond)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p == nil {
			t.Fatalf("New(%q) returned nil", name)
		}
	}
	if _, err := New("bogus", 0, 0); err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if _, err := New("CP", 0, 0); err == nil {
		t.Fatal("CP without queue count must error")
	}
	if _, err := New("ABM-approx", 0, 0); err == nil {
		t.Fatal("ABM-approx without interval must error")
	}
}

func TestEffectiveAlpha(t *testing.T) {
	c := ctx(1000, 0, 0)
	if got := c.EffectiveAlpha(true); got != 0.5 {
		t.Fatalf("scheduled alpha = %v", got)
	}
	c.Unscheduled = true
	if got := c.EffectiveAlpha(true); got != 64 {
		t.Fatalf("unscheduled alpha = %v", got)
	}
	if got := c.EffectiveAlpha(false); got != 0.5 {
		t.Fatalf("tag-ignoring alpha = %v", got)
	}
}

func TestClampBytes(t *testing.T) {
	if clampBytes(-5) != 0 {
		t.Fatal("negative must clamp to 0")
	}
	if clampBytes(1e20) != units.ByteCount(1e15) {
		t.Fatal("huge must clamp")
	}
	if clampBytes(123.9) != 123 {
		t.Fatal("fraction truncates")
	}
}
