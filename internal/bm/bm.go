// Package bm implements buffer-management policies for shared-memory
// switches: the per-queue threshold functions that decide how much of the
// shared buffer each queue may occupy (Eq. 4's Ψ term in the paper).
//
// The package provides the paper's contribution, ABM (Eq. 9), alongside
// every baseline the evaluation compares against: Dynamic Thresholds
// (DT), Complete Sharing (CS), Complete Partitioning (CP), Flow-Aware
// Buffer (FAB), Cisco's Intelligent Buffer (IB, approximated as AFD plus
// an elephant trap on top of DT), and the control-plane approximation of
// ABM on top of DT (§3.4, evaluated in §4.4).
package bm

import (
	"math/rand"

	"abm/internal/units"
)

// Ctx is the buffer state the MMU exposes to a policy when it computes
// the threshold for one queue. All byte quantities are instantaneous.
type Ctx struct {
	Total    units.ByteCount // B: shared buffer size (excluding headroom)
	Occupied units.ByteCount // Q(t): current total occupancy of the shared pool
	QueueLen units.ByteCount // q: occupancy of the target queue

	Port int // egress port index
	Prio int // priority (queue index within the port)

	Alpha            float64 // alpha_p configured for this priority
	AlphaUnscheduled float64 // alpha used for unscheduled packets (§3.3)

	// NormDrain is mu_p^i / b: the fraction of the port's bandwidth
	// available to this queue under the current schedule (§3.1).
	NormDrain float64

	// CongestedSamePrio is n_p: the number of congested queues of this
	// priority across the device, at least 1 whenever this queue is being
	// offered traffic.
	CongestedSamePrio int

	Unscheduled bool // the packet being admitted carries the first-RTT tag
	FlowID      uint64
	PacketSize  units.ByteCount
	Now         units.Time
}

// EffectiveAlpha returns the alpha the policy should use for the packet
// under admission: the unscheduled alpha if the packet is tagged and the
// policy honours the tag.
func (c *Ctx) EffectiveAlpha(honourUnscheduled bool) float64 {
	if honourUnscheduled && c.Unscheduled && c.AlphaUnscheduled > 0 {
		return c.AlphaUnscheduled
	}
	return c.Alpha
}

// Policy computes per-queue thresholds. Implementations must be
// deterministic functions of Ctx plus their own internal state.
type Policy interface {
	Name() string
	// Threshold returns the instantaneous maximum length of the queue: a
	// packet is admitted only if QueueLen+PacketSize stays at or below it.
	Threshold(ctx *Ctx) units.ByteCount
}

// FlowAware is implemented by policies that track per-flow state (FAB's
// short-flow detection, IB's elephant trap). The MMU invokes the hooks on
// every admitted or dropped packet.
type FlowAware interface {
	OnAdmit(ctx *Ctx)
	OnDrop(ctx *Ctx)
}

// Dropper is implemented by policies that can reject a packet before the
// threshold check (IB's approximate fair dropping).
type Dropper interface {
	ShouldDrop(ctx *Ctx, rng *rand.Rand) bool
}

// Ticker is implemented by policies with periodic control loops (the
// ABM-on-DT approximation, AFD's fair-share adaptation, FAB's flow-table
// aging). The MMU calls Tick on its stats interval.
type Ticker interface {
	Tick(now units.Time)
}

// Stats is the device-level view offered to policies that recompute
// state periodically rather than per packet.
type Stats interface {
	BufferSize() units.ByteCount
	BufferUsed() units.ByteCount
	Ports() int
	Prios() int
	PortRate() units.Rate
	QueueLen(port, prio int) units.ByteCount
	NormDrain(port, prio int) float64
	CongestedSamePrio(prio int) int
}

// Binder is implemented by policies that need the device stats view; the
// MMU calls Bind once during switch construction.
type Binder interface {
	Bind(s Stats)
}

// HeadroomEligible is implemented by policies that admit some packets
// from the reserved headroom pool when the shared pool rejects them
// (IB protects mice this way; ABM uses headroom for unscheduled packets,
// §4.1). If a policy does not implement it, only unscheduled packets are
// eligible when headroom is configured.
type HeadroomEligible interface {
	UseHeadroom(ctx *Ctx) bool
}

func clampBytes(v float64) units.ByteCount {
	if v < 0 {
		return 0
	}
	if v > 1e15 {
		return units.ByteCount(1e15)
	}
	return units.ByteCount(v)
}
