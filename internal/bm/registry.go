package bm

import (
	"fmt"
	"sort"

	"abm/internal/units"
)

// Validate checks that a policy name and its parameters are
// constructible without building anything: the scenario layer calls it
// once during Resolve so that factory closures (one construction per
// switch) can no longer fail at build time.
func Validate(name string, numQueues int, interval units.Time) error {
	switch name {
	case "DT", "CS", "FAB", "IB", "ABM", "EDT":
		return nil
	case "CP":
		if numQueues <= 0 {
			return fmt.Errorf("bm: CP requires the total queue count")
		}
		return nil
	case "ABM-approx":
		if interval <= 0 {
			return fmt.Errorf("bm: ABM-approx requires an update interval")
		}
		return nil
	default:
		return fmt.Errorf("bm: unknown policy %q (known: %v)", name, Names())
	}
}

// New constructs a policy by name. Recognized names: "DT", "CS", "CP"
// (requires numQueues > 0), "FAB", "IB", "ABM", and "ABM-approx"
// (requires interval > 0). It is the single place CLIs and the
// experiment harness resolve scheme names.
func New(name string, numQueues int, interval units.Time) (Policy, error) {
	if err := Validate(name, numQueues, interval); err != nil {
		return nil, err
	}
	switch name {
	case "DT":
		return DT{}, nil
	case "CS":
		return CS{}, nil
	case "CP":
		return CP{NumQueues: numQueues}, nil
	case "FAB":
		return NewFAB(0, 0), nil
	case "IB":
		return NewIB(), nil
	case "ABM":
		return ABM{}, nil
	case "EDT":
		return NewEDT(), nil
	default: // "ABM-approx"; Validate admits nothing else
		return NewApprox(interval), nil
	}
}

// MustNew is New for pre-validated parameters: per-switch factory
// closures use it after Validate has accepted the name, so a panic here
// is an invariant violation, not a user-input path.
func MustNew(name string, numQueues int, interval units.Time) Policy {
	p, err := New(name, numQueues, interval)
	if err != nil {
		panic(err)
	}
	return p
}

// Names lists the recognized policy names.
func Names() []string {
	n := []string{"ABM", "ABM-approx", "CP", "CS", "DT", "EDT", "FAB", "IB"}
	sort.Strings(n)
	return n
}
