package bm

import (
	"fmt"
	"sort"

	"abm/internal/units"
)

// New constructs a policy by name. Recognized names: "DT", "CS", "CP"
// (requires numQueues > 0), "FAB", "IB", "ABM", and "ABM-approx"
// (requires interval > 0). It is the single place CLIs and the
// experiment harness resolve scheme names.
func New(name string, numQueues int, interval units.Time) (Policy, error) {
	switch name {
	case "DT":
		return DT{}, nil
	case "CS":
		return CS{}, nil
	case "CP":
		if numQueues <= 0 {
			return nil, fmt.Errorf("bm: CP requires the total queue count")
		}
		return CP{NumQueues: numQueues}, nil
	case "FAB":
		return NewFAB(0, 0), nil
	case "IB":
		return NewIB(), nil
	case "ABM":
		return ABM{}, nil
	case "EDT":
		return NewEDT(), nil
	case "ABM-approx":
		if interval <= 0 {
			return nil, fmt.Errorf("bm: ABM-approx requires an update interval")
		}
		return NewApprox(interval), nil
	default:
		return nil, fmt.Errorf("bm: unknown policy %q (known: %v)", name, Names())
	}
}

// Names lists the recognized policy names.
func Names() []string {
	n := []string{"ABM", "ABM-approx", "CP", "CS", "DT", "EDT", "FAB", "IB"}
	sort.Strings(n)
	return n
}
