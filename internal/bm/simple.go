package bm

import (
	"fmt"

	"abm/internal/units"
)

// DT is Dynamic Thresholds (Choudhury & Hahne 1998), the state of the art
// the paper analyzes in §2.3:
//
//	T_p^i(t) = alpha_p * (B - Q(t))          (Eq. 5)
//
// The threshold reacts only to the total remaining buffer, which makes
// the steady-state allocation shrink with the number of congested queues
// (Eq. 6) and leaves the scheme oblivious to drain time.
type DT struct{}

// Name implements Policy.
func (DT) Name() string { return "DT" }

// Threshold implements Policy (Eq. 5).
func (DT) Threshold(ctx *Ctx) units.ByteCount {
	remaining := float64(ctx.Total - ctx.Occupied)
	return clampBytes(ctx.Alpha * remaining)
}

// CS is Complete Sharing: every queue may grow while any shared buffer
// remains. Maximum utilization, zero isolation.
type CS struct{}

// Name implements Policy.
func (CS) Name() string { return "CS" }

// Threshold implements Policy: the whole buffer.
func (CS) Threshold(ctx *Ctx) units.ByteCount { return ctx.Total }

// CP is Complete Partitioning: the buffer is split statically across all
// N queues (Ψ = B/N). Perfect isolation, lowest utilization — the
// top-left corner of the paper's Figure 1.
type CP struct {
	// NumQueues is the total number of queues N sharing the device. It
	// must be positive.
	NumQueues int
}

// Name implements Policy.
func (c CP) Name() string { return "CP" }

// Threshold implements Policy: a fixed 1/N share.
func (c CP) Threshold(ctx *Ctx) units.ByteCount {
	if c.NumQueues <= 0 {
		panic(fmt.Sprintf("bm: CP with NumQueues=%d", c.NumQueues))
	}
	return ctx.Total / units.ByteCount(c.NumQueues)
}

// ABM is the paper's contribution, Active Buffer Management (§3.1):
//
//	T_p^i(t) = alpha_p * (1/n_p) * (B - Q(t)) * (mu_p^i / b)   (Eq. 9)
//
// The first two factors give isolation (Theorems 1-2: per-priority
// allocation bounded between B*alpha/(1+Σalpha) and B*alpha/(1+alpha));
// the drain-rate factor bounds the queue's drain time (Theorem 3:
// Γ ≤ B*alpha/((1+alpha)*b)). Unscheduled (first-RTT) packets are
// admitted with Ctx.AlphaUnscheduled to maximize burst tolerance (§3.3).
type ABM struct{}

// Name implements Policy.
func (ABM) Name() string { return "ABM" }

// Threshold implements Policy (Eq. 9).
func (ABM) Threshold(ctx *Ctx) units.ByteCount {
	alpha := ctx.EffectiveAlpha(true)
	n := ctx.CongestedSamePrio
	if n < 1 {
		n = 1
	}
	remaining := float64(ctx.Total - ctx.Occupied)
	return clampBytes(alpha / float64(n) * remaining * ctx.NormDrain)
}

// UseHeadroom implements HeadroomEligible: unscheduled packets may dip
// into the reserved headroom pool, mirroring the evaluation setup where
// "ABM ... uses headroom similar to IB" (§4.1).
func (ABM) UseHeadroom(ctx *Ctx) bool { return ctx.Unscheduled }
