package bm

import (
	"abm/internal/units"
)

// EDT is the Enhanced Dynamic Threshold policy (Shan, Jiang, Ren —
// INFOCOM 2015), one of the DT-descendant schemes the paper's related
// work discusses (§5): DT augmented with a micro-burst absorption state
// machine. A queue that starts growing from (near) empty is classified
// as bursty and temporarily granted a fixed allowance on top of its DT
// threshold; after BurstDuration the queue enters evacuation and falls
// back to plain DT until it drains. This absorbs short bursts that DT
// would clip, but — like every DT descendant — remains oblivious to
// drain time and inherits DT's unbounded steady-state allocation.
type EDT struct {
	// BurstAllowance is the extra admission granted during a burst;
	// defaults to 1/8 of the buffer.
	BurstAllowance units.ByteCount
	// BurstDuration bounds how long the allowance lasts; defaults to 1ms.
	BurstDuration units.Time
	// LowWater defines "near empty"; a growth from below it arms the
	// burst state. Defaults to 2 MTUs.
	LowWater units.ByteCount

	states map[[2]int]*edtState
}

type edtState struct {
	mode       uint8 // 0 normal, 1 absorbing, 2 evacuating
	burstStart units.Time
}

// NewEDT returns an EDT instance with defaults filled at first use.
func NewEDT() *EDT { return &EDT{} }

func (e *EDT) init(total units.ByteCount) {
	if e.BurstAllowance <= 0 {
		e.BurstAllowance = total / 8
	}
	if e.BurstDuration <= 0 {
		e.BurstDuration = units.Millisecond
	}
	if e.LowWater <= 0 {
		e.LowWater = 3000
	}
	if e.states == nil {
		e.states = make(map[[2]int]*edtState)
	}
}

// Name implements Policy.
func (e *EDT) Name() string { return "EDT" }

// Threshold implements Policy: DT plus the burst-state allowance.
func (e *EDT) Threshold(ctx *Ctx) units.ByteCount {
	e.init(ctx.Total)
	key := [2]int{ctx.Port, ctx.Prio}
	st, ok := e.states[key]
	if !ok {
		st = &edtState{}
		e.states[key] = st
	}
	base := clampBytes(ctx.Alpha * float64(ctx.Total-ctx.Occupied))

	switch st.mode {
	case 0: // normal
		if ctx.QueueLen <= e.LowWater {
			// An arrival at a near-empty queue arms burst absorption.
			st.mode = 1
			st.burstStart = ctx.Now
			return base + e.BurstAllowance
		}
		return base
	case 1: // absorbing
		if ctx.Now-st.burstStart > e.BurstDuration {
			st.mode = 2
			return base
		}
		return base + e.BurstAllowance
	default: // evacuating: plain DT until the queue drains
		if ctx.QueueLen <= e.LowWater {
			st.mode = 0
		}
		return base
	}
}
