package bm

import (
	"math/rand"

	"abm/internal/units"
)

// IB approximates Cisco's Intelligent Buffer (the paper's fourth
// baseline, §4.1): Dynamic Thresholds at the device level combined with
// Approximate Fair Dropping (AFD) and an elephant trap at the queue
// level. Flows sending more than ElephantBytes within a measurement
// window are elephants; their packets are dropped with probability
// 1 - fairShare/arrivalRate so that each elephant converges to the fair
// share, steered by a control loop that tracks a target queue length.
// Mice (non-elephant flows) bypass AFD entirely and may use the
// headroom pool, mirroring the priority treatment Cisco gives bursts.
//
// The real IB is proprietary; this reconstruction follows the public AFD
// description and Cisco's white paper [4], the same approximation the
// paper's ns-3 artifact makes.
type IB struct {
	// Alpha for the underlying DT stage is taken from Ctx (per priority).

	// ElephantBytes is the per-window byte count above which a flow is
	// trapped as an elephant. Defaults to 100 KB.
	ElephantBytes units.ByteCount
	// TargetQueue is the per-queue occupancy AFD steers toward. Defaults
	// to 100 KB (about one BDP at 10G/80us).
	TargetQueue units.ByteCount
	// Window is the measurement window; per-flow counters reset every
	// window. Defaults to 1 ms.
	Window units.Time
	// Gain scales the fair-share adjustment per window. Defaults to 0.25.
	Gain float64
	// MaxDropProb caps the per-packet AFD drop probability. The textbook
	// 1 - fair/arrival law is meant for non-reactive flows; applied
	// per-packet to TCP it collapses elephants entirely, so the cap
	// keeps drops at a level loss-based senders respond to. Defaults to
	// 0.05.
	MaxDropProb float64

	flows     map[uint64]*ibFlow
	fairBytes float64 // current fair share, bytes per window
	stats     Stats
	lastTick  units.Time
}

type ibFlow struct {
	winBytes  units.ByteCount // bytes arrived in the current window
	prevBytes units.ByteCount // bytes in the previous (complete) window
	lastSeen  units.Time
}

// NewIB returns an IB policy with defaults filled in.
func NewIB() *IB {
	ib := &IB{}
	ib.init()
	return ib
}

func (ib *IB) init() {
	if ib.ElephantBytes <= 0 {
		ib.ElephantBytes = 100 * units.Kilobyte
	}
	if ib.TargetQueue <= 0 {
		ib.TargetQueue = 100 * units.Kilobyte
	}
	if ib.Window <= 0 {
		ib.Window = units.Millisecond
	}
	if ib.Gain <= 0 {
		ib.Gain = 0.25
	}
	if ib.MaxDropProb <= 0 {
		ib.MaxDropProb = 0.05
	}
	if ib.flows == nil {
		ib.flows = make(map[uint64]*ibFlow)
		ib.fairBytes = float64(ib.ElephantBytes)
	}
}

// Name implements Policy.
func (ib *IB) Name() string { return "IB" }

// Bind implements Binder.
func (ib *IB) Bind(s Stats) { ib.stats = s }

// Threshold implements Policy: the DT stage (Eq. 5).
func (ib *IB) Threshold(ctx *Ctx) units.ByteCount {
	remaining := float64(ctx.Total - ctx.Occupied)
	return clampBytes(ctx.Alpha * remaining)
}

// ShouldDrop implements Dropper: AFD for elephants, active only while
// the target queue sits above its reference occupancy (AFD's goal is to
// hold the queue at the target, not to police an uncongested port).
func (ib *IB) ShouldDrop(ctx *Ctx, rng *rand.Rand) bool {
	ib.init()
	if ctx.QueueLen <= ib.TargetQueue {
		return false
	}
	fl := ib.flows[ctx.FlowID]
	if fl == nil {
		return false // first packet of a window: a mouse until proven otherwise
	}
	arrived := fl.prevBytes
	if fl.winBytes > arrived {
		arrived = fl.winBytes
	}
	if arrived < ib.ElephantBytes {
		return false // mice pass
	}
	if ib.fairBytes >= float64(arrived) {
		return false
	}
	p := 1 - ib.fairBytes/float64(arrived)
	if p > ib.MaxDropProb {
		p = ib.MaxDropProb
	}
	return rng.Float64() < p
}

// OnAdmit implements FlowAware.
func (ib *IB) OnAdmit(ctx *Ctx) {
	ib.init()
	fl := ib.flows[ctx.FlowID]
	if fl == nil {
		fl = &ibFlow{}
		ib.flows[ctx.FlowID] = fl
	}
	fl.winBytes += ctx.PacketSize
	fl.lastSeen = ctx.Now
}

// OnDrop implements FlowAware: AFD counts offered load, including drops,
// so the drop probability reflects the flow's arrival rate.
func (ib *IB) OnDrop(ctx *Ctx) {
	ib.init()
	fl := ib.flows[ctx.FlowID]
	if fl == nil {
		fl = &ibFlow{}
		ib.flows[ctx.FlowID] = fl
	}
	fl.winBytes += ctx.PacketSize
	fl.lastSeen = ctx.Now
}

// UseHeadroom implements HeadroomEligible: mice and unscheduled packets
// may be admitted from headroom when the shared pool rejects them.
func (ib *IB) UseHeadroom(ctx *Ctx) bool {
	ib.init()
	if ctx.Unscheduled {
		return true
	}
	fl := ib.flows[ctx.FlowID]
	return fl == nil || (fl.prevBytes < ib.ElephantBytes && fl.winBytes < ib.ElephantBytes)
}

// Tick implements Ticker: closes measurement windows and adapts the fair
// share toward the target queue occupancy.
func (ib *IB) Tick(now units.Time) {
	ib.init()
	if now-ib.lastTick < ib.Window {
		return
	}
	ib.lastTick = now

	// Control law: grow the fair share when backlogged queues sit below
	// target, shrink when above. The signal is the mean occupancy of
	// backlogged queues — the max would let one transient incast spike
	// strangle every elephant in the device.
	if ib.stats != nil {
		var sum units.ByteCount
		backlogged := 0
		for port := 0; port < ib.stats.Ports(); port++ {
			for prio := 0; prio < ib.stats.Prios(); prio++ {
				if q := ib.stats.QueueLen(port, prio); q > 0 {
					sum += q
					backlogged++
				}
			}
		}
		avgQ := units.ByteCount(0)
		if backlogged > 0 {
			avgQ = sum / units.ByteCount(backlogged)
		}
		err := float64(ib.TargetQueue-avgQ) / float64(ib.TargetQueue)
		if err > 1 {
			err = 1
		}
		if err < -1 {
			err = -1
		}
		ib.fairBytes *= 1 + ib.Gain*err
		// Anchor the fair share to the per-window port capacity: an
		// elephant alone on a port deserves close to the full rate, and
		// the share never drops below a small fraction of it.
		capacity := float64(ib.stats.PortRate().BytesOver(ib.Window))
		if lo := capacity / 16; ib.fairBytes < lo {
			ib.fairBytes = lo
		}
		if ib.fairBytes > capacity {
			ib.fairBytes = capacity
		}
	}

	for id, fl := range ib.flows {
		if now-fl.lastSeen > 4*ib.Window {
			delete(ib.flows, id)
			continue
		}
		fl.prevBytes = fl.winBytes
		fl.winBytes = 0
	}
}

// FairShare reports the current AFD fair share in bytes per window.
func (ib *IB) FairShare() units.ByteCount {
	ib.init()
	return units.ByteCount(ib.fairBytes)
}
