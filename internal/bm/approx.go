package bm

import (
	"fmt"

	"abm/internal/units"
)

// Approx approximates ABM on top of Dynamic Thresholds by periodically
// reconfiguring DT's per-queue alpha from the control plane (§3.4,
// evaluated in §4.4 / Figure 12): every UpdateInterval the policy pulls
// queue statistics and sets
//
//	alphaEff(i,p) = alpha_p * (1/n_p) * (mu_p^i / b)
//
// so that between updates the data path computes plain DT,
// T = alphaEff * (B - Q(t)), with stale alphaEff. With a small interval
// this converges to ABM; with a very large one it degenerates to DT.
type Approx struct {
	// UpdateInterval is the control-plane reconfiguration period. The
	// paper sweeps 1x to 1000x the base RTT.
	UpdateInterval units.Time
	// AlphaUnscheduledBoost applies ABM's §3.3 unscheduled prioritization
	// per packet. Enabled by default: DT hardware supports static
	// per-class alpha profiles (the control plane configures the tagged
	// class's profile once), so the boost does not depend on the update
	// interval — only the dynamic factors (n_p, mu/b) go stale.
	AlphaUnscheduledBoost bool

	stats    Stats
	alphaEff [][]float64 // [port][prio], cached multiplier on (B-Q)
	alphas   []float64   // per-priority alphas, mirrored from the MMU config
	lastTick units.Time
	ticked   bool
}

// NewApprox returns an ABM-on-DT approximation with the given update
// interval. The interval must be positive.
func NewApprox(interval units.Time) *Approx {
	if interval <= 0 {
		panic(fmt.Sprintf("bm: Approx interval %v must be positive", interval))
	}
	return &Approx{UpdateInterval: interval, AlphaUnscheduledBoost: true}
}

// Name implements Policy.
func (a *Approx) Name() string { return fmt.Sprintf("ABM-approx(%v)", a.UpdateInterval) }

// Bind implements Binder.
func (a *Approx) Bind(s Stats) {
	a.stats = s
	a.alphaEff = make([][]float64, s.Ports())
	for i := range a.alphaEff {
		a.alphaEff[i] = make([]float64, s.Prios())
	}
}

// Threshold implements Policy: DT with the last reconfigured alpha.
func (a *Approx) Threshold(ctx *Ctx) units.ByteCount {
	remaining := float64(ctx.Total - ctx.Occupied)
	alpha := ctx.Alpha // before the first reconfiguration: plain DT
	if a.ticked && ctx.Port < len(a.alphaEff) && ctx.Prio < len(a.alphaEff[ctx.Port]) {
		alpha = a.alphaEff[ctx.Port][ctx.Prio]
		if a.AlphaUnscheduledBoost && ctx.Unscheduled && ctx.AlphaUnscheduled > 0 && ctx.Alpha > 0 {
			// Scale the cached multiplier the way ABM would scale alpha.
			alpha *= ctx.AlphaUnscheduled / ctx.Alpha
		}
	}
	return clampBytes(alpha * remaining)
}

// UseHeadroom implements HeadroomEligible, matching ABM's configuration.
func (a *Approx) UseHeadroom(ctx *Ctx) bool { return ctx.Unscheduled }

// Tick implements Ticker: the control-plane reconfiguration.
func (a *Approx) Tick(now units.Time) {
	if a.stats == nil {
		return
	}
	// The first reconfiguration also waits a full interval: before it,
	// the data path runs the alphas DT shipped with.
	if now-a.lastTick < a.UpdateInterval {
		return
	}
	a.lastTick = now
	a.ticked = true
	for port := range a.alphaEff {
		for prio := range a.alphaEff[port] {
			n := a.stats.CongestedSamePrio(prio)
			if n < 1 {
				n = 1
			}
			a.alphaEff[port][prio] = a.alphaFor(prio) / float64(n) * a.stats.NormDrain(port, prio)
		}
	}
}

// alphaFor returns the configured alpha for a priority during the
// control-plane recomputation. Alphas arrive via SetAlphas.
func (a *Approx) alphaFor(prio int) float64 {
	if prio < len(a.alphas) {
		return a.alphas[prio]
	}
	return 0.5
}

// SetAlphas provides the per-priority alpha values used during Tick.
func (a *Approx) SetAlphas(alphas []float64) {
	a.alphas = append([]float64(nil), alphas...)
}
