package packet

import (
	"testing"

	"abm/internal/units"
)

func TestPoolRecycles(t *testing.T) {
	var p Pool
	a := p.Get()
	a.FlowID = 7
	a.Payload = 1440
	a.Set(FlagCE | FlagUnscheduled)
	a.HeadroomCharged = true
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Fatal("pool must recycle the released packet (LIFO)")
	}
	if b.FlowID != 0 || b.Payload != 0 || b.Flags != 0 || b.HeadroomCharged {
		t.Fatalf("recycled packet not reset: %+v", b)
	}
	if p.Allocs != 1 || p.Recycled != 1 {
		t.Fatalf("counters: allocs=%d recycled=%d", p.Allocs, p.Recycled)
	}
}

func TestPoolLIFODeterministic(t *testing.T) {
	var p Pool
	a, b, c := p.Get(), p.Get(), p.Get()
	p.Put(a)
	p.Put(b)
	p.Put(c)
	if p.Get() != c || p.Get() != b || p.Get() != a {
		t.Fatal("pool reuse order must be LIFO")
	}
}

func TestPoolDoubleFreePanics(t *testing.T) {
	var p Pool
	pkt := p.Get()
	p.Put(pkt)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put must panic")
		}
	}()
	p.Put(pkt)
}

func TestPoolKeepsHopCapacity(t *testing.T) {
	var p Pool
	pkt := p.Get()
	pkt.Hops = append(pkt.Hops, HopINT{QLen: 1}, HopINT{QLen: 2})
	p.Put(pkt)
	got := p.Get()
	if len(got.Hops) != 0 {
		t.Fatalf("Hops length must reset, got %d", len(got.Hops))
	}
	if cap(got.Hops) < 2 {
		t.Fatalf("Hops capacity should be retained, got %d", cap(got.Hops))
	}
}

// TestPoolRehomesAckINT covers ACK retirement: the telemetry array a
// receiver moved onto AckINT comes back as Hops capacity.
func TestPoolRehomesAckINT(t *testing.T) {
	var p Pool
	ack := p.Get()
	ack.Flags = FlagACK
	ack.AckINT = []HopINT{{QLen: 3, TS: units.Microsecond}}
	p.Put(ack)
	got := p.Get()
	if got.AckINT != nil {
		t.Fatal("AckINT must be cleared on release")
	}
	if len(got.Hops) != 0 || cap(got.Hops) < 1 {
		t.Fatalf("AckINT capacity should re-home into Hops, len=%d cap=%d",
			len(got.Hops), cap(got.Hops))
	}
}
