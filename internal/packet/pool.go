package packet

// Pool is a deterministic LIFO free list of packets. It deliberately
// avoids sync.Pool: the simulator is single-threaded per run, and
// sync.Pool's GC-driven eviction and per-P sharding would make packet
// reuse (and thus allocation behavior) nondeterministic across runs.
//
// Ownership contract: packets are single-owner (see Packet). Exactly
// the component that consumes a packet releases it — the MMU on drop,
// the receiving host after the transport consumes a data segment or
// retires an ACK. Put panics on double-release.
//
// INT slices migrate with the packet's payload arrays: a receiver
// transfers a data packet's Hops array to the ACK's AckINT (nilling
// Hops), so Put re-homes whichever array the retired packet still owns
// into Hops for the next Get to append into.
type Pool struct {
	free []*Packet

	// Allocs counts packets newly allocated because the free list was
	// empty; Recycled counts Gets served from the free list. Their sum
	// is the total Get count.
	Allocs   int64
	Recycled int64
}

// Get returns a packet with all fields zeroed, reusing a released one
// when available (any retained Hops capacity is kept, length 0).
func (p *Pool) Get() *Packet {
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.Recycled++
		pkt.pooled = false
		return pkt
	}
	p.Allocs++
	return &Packet{}
}

// Put releases a packet back to the pool. The caller must own the
// packet and hold no references to it (or its INT slices) afterwards.
// Put resets every field, keeping INT array capacity for reuse.
func (p *Pool) Put(pkt *Packet) {
	if pkt == nil {
		return
	}
	if pkt.pooled {
		panic("packet: double release to pool")
	}
	hops := pkt.Hops
	if hops == nil {
		// ACK retirement: the telemetry array rode in on AckINT.
		hops = pkt.AckINT
	}
	*pkt = Packet{Hops: hops[:0], pooled: true}
	p.free = append(p.free, pkt)
}

// Len returns the number of packets currently on the free list.
func (p *Pool) Len() int { return len(p.free) }
