package packet

import (
	"strings"
	"testing"
)

func TestSize(t *testing.T) {
	p := &Packet{Payload: 1440}
	if p.Size() != 1500 {
		t.Fatalf("Size = %v, want 1500", p.Size())
	}
	ack := &Packet{Flags: FlagACK}
	if ack.Size() != HeaderBytes {
		t.Fatalf("ACK size = %v, want header only", ack.Size())
	}
}

func TestFlagOps(t *testing.T) {
	p := &Packet{}
	p.Set(FlagCE | FlagECT)
	if !p.Is(FlagCE) || !p.Is(FlagECT) {
		t.Fatal("flags not set")
	}
	if !p.Is(FlagCE | FlagECT) {
		t.Fatal("combined Is failed")
	}
	if p.Is(FlagACK) {
		t.Fatal("unset flag reported set")
	}
	p.Clear(FlagCE)
	if p.Is(FlagCE) {
		t.Fatal("Clear failed")
	}
	if !p.Is(FlagECT) {
		t.Fatal("Clear removed unrelated flag")
	}
}

func TestTrim(t *testing.T) {
	p := &Packet{Payload: 1440}
	p.Trim()
	if p.Payload != 0 {
		t.Fatal("payload not removed")
	}
	if !p.Is(FlagTrimmed) {
		t.Fatal("trimmed flag not set")
	}
	if p.Size() != HeaderBytes {
		t.Fatal("trimmed packet should be header-only")
	}
}

func TestString(t *testing.T) {
	p := &Packet{FlowID: 7, Src: 1, Dst: 2, Seq: 100, Payload: 1440}
	if !strings.Contains(p.String(), "DATA") || !strings.Contains(p.String(), "flow=7") {
		t.Fatalf("String = %q", p.String())
	}
	a := &Packet{Flags: FlagACK, AckNo: 5}
	if !strings.Contains(a.String(), "ACK") {
		t.Fatalf("String = %q", a.String())
	}
}
