// Package packet defines the simulated packet: a TCP-like segment with
// the fields the reproduced systems need — ECN bits for DCTCP, the
// unscheduled (first-RTT) tag that ABM prioritizes (§3.3), and in-band
// network telemetry (INT) hops for PowerTCP.
package packet

import (
	"fmt"

	"abm/internal/units"
)

// NodeID identifies a host or switch in the topology.
type NodeID int32

// HeaderBytes is the wire overhead per segment (Ethernet + IP + TCP,
// rounded to the values common in datacenter simulators).
const HeaderBytes units.ByteCount = 60

// Flag is a set of packet flags.
type Flag uint16

// Packet flags.
const (
	FlagACK         Flag = 1 << iota // acknowledgment segment
	FlagSYN                          // connection open (unused by default workloads)
	FlagFIN                          // sender has no more data after this segment
	FlagCE                           // ECN congestion-experienced, set by switches
	FlagECE                          // ECN echo, set by receivers on ACKs
	FlagECT                          // ECN-capable transport
	FlagUnscheduled                  // first-RTT packet, tagged by hosts (ABM §3.3)
	FlagRetransmit                   // diagnostic: segment is a retransmission
	FlagTrimmed                      // payload removed by a trimming AQM
)

// HopINT is one hop's worth of in-band telemetry, appended by switches
// with INT enabled and echoed back to the sender on ACKs. PowerTCP
// consumes these.
type HopINT struct {
	QLen    units.ByteCount // egress queue length after this packet
	TxBytes units.ByteCount // cumulative bytes transmitted by the egress port
	TS      units.Time      // timestamp of transmission
	Rate    units.Rate      // egress port bandwidth
}

// Packet is a simulated segment. Packets are passed by pointer and owned
// by exactly one component at a time; they are never shared.
type Packet struct {
	FlowID uint64
	Src    NodeID
	Dst    NodeID
	Prio   uint8 // switch queue (priority) index

	Seq     int64 // first payload byte offset within the flow
	Payload units.ByteCount
	AckNo   int64 // cumulative ACK (valid when FlagACK)

	Flags Flag

	SentAt units.Time // stamped by the sender, echoed on ACKs
	EchoTS units.Time // on ACKs: the SentAt of the segment being acked

	// Hops accumulates INT as the packet crosses switches; AckINT carries
	// the data packet's telemetry back to the sender.
	Hops   []HopINT
	AckINT []HopINT

	// HeadroomCharged records that the MMU admitted this packet from the
	// headroom pool, so dequeue releases the right accounting bucket.
	HeadroomCharged bool

	// pooled guards against double-release to a Pool.
	pooled bool
}

// Size returns the wire size of the packet.
func (p *Packet) Size() units.ByteCount { return HeaderBytes + p.Payload }

// Is reports whether all flags in f are set.
func (p *Packet) Is(f Flag) bool { return p.Flags&f == f }

// Set sets the given flags.
func (p *Packet) Set(f Flag) { p.Flags |= f }

// Clear clears the given flags.
func (p *Packet) Clear(f Flag) { p.Flags &^= f }

// Trim removes the payload, marking the packet as trimmed. Used by
// cut-payload AQMs: the header still reaches the receiver so the loss is
// signaled without a timeout.
func (p *Packet) Trim() {
	p.Payload = 0
	p.Set(FlagTrimmed)
}

// String renders a compact debug representation.
func (p *Packet) String() string {
	kind := "DATA"
	if p.Is(FlagACK) {
		kind = "ACK"
	}
	return fmt.Sprintf("%s flow=%d %d->%d seq=%d len=%d ack=%d prio=%d flags=%04b",
		kind, p.FlowID, p.Src, p.Dst, p.Seq, p.Payload, p.AckNo, p.Prio, p.Flags)
}
