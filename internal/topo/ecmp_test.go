package topo

import (
	"testing"
	"testing/quick"

	"abm/internal/aqm"
	"abm/internal/cc"
	"abm/internal/device"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/units"
)

// Property: ECMP is flow-consistent — every packet of a flow picks the
// same uplink, for any flow ID.
func TestECMPFlowConsistencyProperty(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig()
	cfg.NumSpines = 4
	n := NewNetwork(s, cfg)
	defer n.Stop()
	router := n.tableRouter(0)
	f := func(flowID uint64) bool {
		pkt := &packet.Packet{FlowID: flowID, Dst: 7} // other rack
		first := router(nil, pkt)
		for i := 0; i < 5; i++ {
			if router(nil, pkt) != first {
				return false
			}
		}
		return first >= cfg.HostsPerLeaf && first < cfg.HostsPerLeaf+cfg.NumSpines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: the ECMP hash spreads sequential flow IDs roughly uniformly
// across uplinks.
func TestECMPUniformity(t *testing.T) {
	s := sim.New(1)
	cfg := smallConfig()
	cfg.NumSpines = 4
	n := NewNetwork(s, cfg)
	defer n.Stop()
	router := n.tableRouter(0)
	counts := make(map[int]int)
	const flows = 10_000
	for id := uint64(0); id < flows; id++ {
		counts[router(nil, &packet.Packet{FlowID: id, Dst: 7})]++
	}
	if len(counts) != 4 {
		t.Fatalf("only %d uplinks used", len(counts))
	}
	for port, c := range counts {
		frac := float64(c) / flows
		if frac < 0.2 || frac > 0.3 {
			t.Errorf("uplink %d carries %.3f of flows, want ~0.25", port, frac)
		}
	}
}

// Intra-rack traffic must never touch the spines.
func TestIntraRackStaysLocal(t *testing.T) {
	s := sim.New(5)
	n := NewNetwork(s, smallConfig())
	done := false
	s.At(0, func() {
		n.StartFlow(0, 3, 50*units.Kilobyte, 0, cc.NewReno(), func(units.Time) { done = true })
	})
	s.RunUntil(50 * units.Millisecond)
	n.Stop()
	if !done {
		t.Fatal("flow did not complete")
	}
	for i, sp := range n.Spines {
		if sp.RxPkts != 0 {
			t.Fatalf("spine %d saw %d packets of intra-rack traffic", i, sp.RxPkts)
		}
	}
}

// Packet conservation across the whole fabric: everything a host sent
// was delivered to a host, dropped by a switch, or is still in flight
// (zero after drain).
func TestFabricConservation(t *testing.T) {
	s := sim.New(6)
	n := NewNetwork(s, smallConfig())
	s.At(0, func() {
		for i := 0; i < 8; i++ {
			n.StartFlow(i, (i+5)%8, 80*units.Kilobyte, 0, cc.NewCubic(), nil)
		}
	})
	s.RunUntil(200 * units.Millisecond)
	n.Stop()
	s.Run()

	var hostTx, hostRx units.ByteCount
	for _, h := range n.Hosts {
		hostTx += h.TxBytes
		hostRx += h.RxBytes
	}
	// hostRx counts payload only; hostTx counts wire bytes. Check the
	// fabric holds nothing: every switch MMU empty.
	for _, sw := range n.Switches() {
		if sw.MMU().TotalUsed() != 0 {
			t.Fatalf("switch %d still holds %v after drain", sw.ID(), sw.MMU().TotalUsed())
		}
	}
	if hostRx != 8*80*units.Kilobyte {
		t.Fatalf("goodput %v, want 640KB", hostRx)
	}
}

// The DWRR scheduler gives long-run service proportional to weights on
// the fabric's ports.
func TestDWRRServiceRatioProperty(t *testing.T) {
	s := sim.New(9)
	cfg := smallConfig()
	cfg.QueuesPerPort = 2
	cfg.NewScheduler = func() device.Scheduler { return &device.DWRR{Weights: []int{3, 1}} }
	n := NewNetwork(s, cfg)
	// Saturate both queues of one host downlink with two long flows.
	s.At(0, func() {
		n.StartFlow(1, 0, 4*units.Megabyte, 0, cc.NewCubic(), nil)
		n.StartFlow(2, 0, 4*units.Megabyte, 1, cc.NewCubic(), nil)
	})
	s.RunUntil(10 * units.Millisecond)
	leaf := n.Leaves[0]
	q0 := leaf.Port(0).Queue(0).DequeuedBytes
	q1 := leaf.Port(0).Queue(1).DequeuedBytes
	n.Stop()
	if q0 == 0 || q1 == 0 {
		t.Fatalf("both queues must receive service: %v / %v", q0, q1)
	}
	ratio := float64(q0) / float64(q1)
	// Weight 3:1 — allow slack for window dynamics and the measurement
	// window edges.
	if ratio < 2 || ratio > 4.5 {
		t.Fatalf("DWRR service ratio = %.2f, want ~3", ratio)
	}
}

// DCTCP's marking threshold holds the bottleneck queue near K: with
// several long DCTCP flows into one host, the leaf downlink queue
// stabilizes around the marking threshold instead of filling the buffer.
func TestDCTCPQueueStabilizesNearK(t *testing.T) {
	s := sim.New(11)
	cfg := smallConfig()
	k := 65 * units.ByteCount(1500)
	cfg.AQMFactory = func() aqm.Policy { return aqm.ECNThreshold{K: k} }
	n := NewNetwork(s, cfg)
	s.At(0, func() {
		for i := 4; i < 8; i++ {
			n.StartFlow(i, 0, 8*units.Megabyte, 0, cc.NewDCTCP(), nil)
		}
	})
	s.RunUntil(20 * units.Millisecond)
	q := n.Leaves[0].Port(0).Queue(0)
	peak := q.MaxBytes
	n.Stop()
	if peak == 0 {
		t.Fatal("no queue built at the bottleneck")
	}
	// The peak stays in the K neighbourhood (well below buffer scale):
	// allow start-up overshoot of a few windows.
	if peak > 4*k {
		t.Fatalf("DCTCP queue peaked at %v, want near K=%v", peak, k)
	}
}
