// Package topo builds simulated fabrics from graph shapes: the paper's
// leaf–spine evaluation topology (§4.1) and the three-tier k-ary
// fat-tree, with ECMP routing tables computed from the graph, hosts
// attached to edge switches, and optional link failure injection.
// Default dimensions follow the paper (8 spines, 8 leaves, 32 hosts per
// leaf, 10 Gb/s, 10us per link); the experiment harness scales them
// down for CI-sized runs.
package topo

import (
	"fmt"
	"math/rand"

	"abm/internal/aqm"
	"abm/internal/bm"
	"abm/internal/cc"
	"abm/internal/device"
	"abm/internal/host"
	"abm/internal/obs"
	"abm/internal/packet"
	"abm/internal/randutil"
	"abm/internal/sim"
	"abm/internal/units"
)

// Config describes a fabric: a shape (an explicit Graph, or the default
// leaf–spine built from the dimension fields) plus the device-level
// parameters shared by every switch.
type Config struct {
	// Topo is the fabric shape. nil builds a leaf–spine graph from the
	// three dimension fields below; an explicit graph (e.g. FatTree(k))
	// makes them irrelevant.
	Topo *Graph

	NumSpines    int
	NumLeaves    int
	HostsPerLeaf int

	LinkRate  units.Rate
	LinkDelay units.Time

	// UplinkRate, when positive and different from LinkRate, gives the
	// switch<->switch tiers their own link speed (mixed-rate fabrics,
	// e.g. 10G hosts under 25G uplinks). Zero keeps the uniform
	// LinkRate. Host access links always run at LinkRate.
	UplinkRate units.Rate

	QueuesPerPort int

	BufferSize units.ByteCount // shared buffer per switch
	Headroom   units.ByteCount

	// BMFactory builds one buffer-management policy per switch; stateful
	// policies (FAB, IB, ABM-approx) must not be shared across devices.
	BMFactory  func() bm.Policy
	AQMFactory aqm.Factory

	Alphas           []float64
	AlphaUnscheduled float64
	CongestedFactor  float64
	StatsInterval    units.Time // 0 selects one base RTT (§4.1)
	DrainRate        device.DrainRateMode
	NewScheduler     func() device.Scheduler

	EnableINT bool

	MSS    units.ByteCount
	MinRTO units.Time

	// Obs is the run's telemetry session; nil disables telemetry. Each
	// switch and host receives the sink of its shard (the session must be
	// created with the partition's shard count; serial mode uses shard 0).
	Obs *obs.Session
}

func (c *Config) fillDefaults() {
	if c.Topo == nil {
		if c.NumSpines <= 0 {
			c.NumSpines = 8
		}
		if c.NumLeaves <= 0 {
			c.NumLeaves = 8
		}
		if c.HostsPerLeaf <= 0 {
			c.HostsPerLeaf = 32
		}
		c.Topo = LeafSpine(c.NumSpines, c.NumLeaves, c.HostsPerLeaf)
	}
	if c.LinkRate <= 0 {
		c.LinkRate = 10 * units.GigabitPerSec
	}
	if c.LinkDelay <= 0 {
		c.LinkDelay = 10 * units.Microsecond
	}
	if c.QueuesPerPort <= 0 {
		c.QueuesPerPort = 1
	}
	if c.BufferSize <= 0 {
		// Trident2: 9.6 KB per port per Gb/s (§4.1), sized by the
		// fabric's largest radix so all switches share one config.
		ports := c.Topo.MaxPorts()
		c.BufferSize = BufferFor(9.6, ports, c.LinkRate)
	}
	if c.BMFactory == nil {
		c.BMFactory = func() bm.Policy { return bm.DT{} }
	}
	if c.MSS <= 0 {
		c.MSS = 1440
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 10 * units.Millisecond
	}
	if c.StatsInterval <= 0 {
		c.StatsInterval = 8 * c.LinkDelay // one base RTT on the two-tier fabric
	}
}

// Graph returns the fabric shape the config will build, constructing
// the default leaf–spine graph (and filling the other defaults) on
// first use. The run layer uses it to derive partitions and to resolve
// fault link names before the network exists.
func (c *Config) Graph() *Graph {
	c.fillDefaults()
	return c.Topo
}

// Uplink returns the switch<->switch tier rate: UplinkRate when set,
// the uniform LinkRate otherwise. Workload generators define bisection
// capacity against it.
func (c Config) Uplink() units.Rate {
	if c.UplinkRate > 0 {
		return c.UplinkRate
	}
	return c.LinkRate
}

// BufferFor computes a switch buffer from a KB-per-port-per-Gbps spec,
// the sizing the paper sweeps in §4.3 (Trident2 9.6, Tomahawk 5.12,
// Tofino 3.44, ...).
func BufferFor(kbPerPortPerGbps float64, ports int, rate units.Rate) units.ByteCount {
	return units.ByteCount(kbPerPortPerGbps * 1024 * float64(ports) * rate.Gbps())
}

// Partition assigns every switch (and, implicitly, every host: a host
// lives with its edge switch) to a shard of the parallel engine.
type Partition struct {
	Shards      int
	SwitchShard []int // per graph switch index
}

// MakePartition builds the standard partition for any shape: edge
// switches in balanced contiguous blocks (hosts follow their edge
// switch, so rack-local traffic stays shard-local), higher tiers
// round-robin by tier-local index so every shard owns a share of each
// tier. Shards is clamped to [1, edge-switch count] — beyond one shard
// per edge switch there is nothing left to split.
func MakePartition(g *Graph, shards int) Partition {
	numEdge := g.NumGroups()
	if shards < 1 {
		shards = 1
	}
	if shards > numEdge {
		shards = numEdge
	}
	p := Partition{Shards: shards, SwitchShard: make([]int, g.NumSwitches())}
	base := 0
	for t := 0; t < g.Tiers; t++ {
		for i := 0; i < g.TierCount[t]; i++ {
			if t == 0 {
				p.SwitchShard[base+i] = i * shards / numEdge
			} else {
				p.SwitchShard[base+i] = i % shards
			}
		}
		base += g.TierCount[t]
	}
	return p
}

// Network is a built fabric, driven either by one serial simulator
// (Sim) or by the sharded parallel engine (Par); exactly one is set.
type Network struct {
	Sim  *sim.Simulator // serial mode; nil when sharded
	Par  *sim.Parallel  // sharded mode; nil when serial
	Part Partition
	Cfg  Config
	G    *Graph

	// Leaves holds the edge tier, Spines every higher tier, both in
	// graph order (fat-tree "Spines" are the agg then core switches —
	// the names keep the leaf–spine call sites readable).
	Spines []*device.Switch
	Leaves []*device.Switch
	Hosts  []*host.Host

	switches []*device.Switch // all switches, graph order
	swSim    []*sim.Simulator // per switch: the simulator it schedules on

	rt        *routeTables
	linkUp    []bool
	linkRates [][2]units.Rate // built (lo, hi) port rates per link, for restore

	baseRTT   units.Time
	worstHops int

	nextFlow uint64

	// OnFlowStart, when set, observes every flow launch just before its
	// first packet is emitted (hybrid engine: a new burst at a shared
	// queue promotes fluid flows back to packet mode before the burst's
	// packets can race them). It runs on the source host's shard, so a
	// sharded run must only install it when the engine is serial.
	OnFlowStart func(id uint64, src, dst int, size units.ByteCount, prio uint8)
}

// NodeName renders a node ID as a human-readable label ("host3",
// "leaf0", "spine2", "core1") following the fixed tiered NodeID layout.
// It is shape-blind (tier 0 is always "leaf", tier 2 "core"); prefer
// Network.NodeName, which uses the built graph's own tier labels.
func NodeName(id packet.NodeID) string {
	switch {
	case id >= coreIDBase:
		return fmt.Sprintf("core%d", int(id)-coreIDBase)
	case id >= spineIDBase:
		return fmt.Sprintf("spine%d", int(id)-spineIDBase)
	case id >= leafIDBase:
		return fmt.Sprintf("leaf%d", int(id)-leafIDBase)
	default:
		return fmt.Sprintf("host%d", int(id))
	}
}

// NodeName renders a node ID with the fabric's own tier labels
// ("edge0"/"agg1"/"core2" on a fat-tree, "leaf0"/"spine1" on
// leaf–spine). Telemetry exporters use it to name trace tracks and TSV
// rows.
func (n *Network) NodeName(id packet.NodeID) string { return n.G.NodeNameOf(id) }

// NewNetwork builds and wires the fabric on a single serial simulator.
func NewNetwork(s *sim.Simulator, cfg Config) *Network {
	cfg.fillDefaults()
	n := &Network{Sim: s, Cfg: cfg, G: cfg.Topo}
	n.Part = MakePartition(n.G, 1)
	n.swSim = make([]*sim.Simulator, n.G.NumSwitches())
	for i := range n.swSim {
		n.swSim[i] = s
	}
	n.build(s.Seed())
	return n
}

// NewShardedNetwork builds the same fabric across the shards of a
// parallel engine: each switch (and each host, via its edge switch)
// schedules on its shard's simulator, and every switch<->switch link
// routes through an engine mailbox — including same-shard tier links,
// so the barrier merge order is a property of the topology alone and
// the run is identical at any shard count.
func NewShardedNetwork(p *sim.Parallel, cfg Config, part Partition) *Network {
	cfg.fillDefaults()
	if part.Shards != p.NumShards() {
		panic(fmt.Sprintf("topo: partition has %d shards, engine has %d", part.Shards, p.NumShards()))
	}
	if len(part.SwitchShard) != cfg.Topo.NumSwitches() {
		panic(fmt.Sprintf("topo: partition covers %d switches, fabric has %d",
			len(part.SwitchShard), cfg.Topo.NumSwitches()))
	}
	n := &Network{Par: p, Cfg: cfg, Part: part, G: cfg.Topo}
	n.swSim = make([]*sim.Simulator, n.G.NumSwitches())
	for i, sh := range part.SwitchShard {
		n.swSim[i] = p.Shard(sh)
	}
	n.build(p.Seed())
	return n
}

// switchRNG derives the switch's private random stream from the base
// seed and its node ID — the same stream in serial and sharded mode,
// regardless of partition or event interleaving.
func switchRNG(baseSeed int64, id int) *rand.Rand {
	return rand.New(rand.NewSource(randutil.DeriveSeed(baseSeed, id)))
}

// tierLink creates one switch<->switch link: direct in serial mode,
// mailbox-routed in sharded mode. Mailboxes register in call order,
// which build keeps partition-invariant (the canonical Graph.Links
// order).
func (n *Network) tierLink(src *sim.Simulator, dst device.Endpoint, dstShard int) *device.Link {
	if n.Par == nil {
		return device.NewLink(src, n.Cfg.LinkDelay, dst)
	}
	box := n.Par.NewMailbox(dstShard, n.Cfg.LinkDelay)
	return device.NewLinkVia(src, n.Cfg.LinkDelay, dst, box)
}

// build constructs switches in graph order, wires the tiers along the
// canonical link list, computes routing tables and hop counts from the
// graph, and attaches hosts.
func (n *Network) build(baseSeed int64) {
	cfg := n.Cfg
	g := n.G
	mmuFor := func() device.MMUConfig {
		return device.MMUConfig{
			BufferSize:       cfg.BufferSize,
			Headroom:         cfg.Headroom,
			Alphas:           cfg.Alphas,
			AlphaUnscheduled: cfg.AlphaUnscheduled,
			BM:               cfg.BMFactory(),
			AQMFactory:       cfg.AQMFactory,
			CongestedFactor:  cfg.CongestedFactor,
			StatsInterval:    cfg.StatsInterval,
			DrainRate:        cfg.DrainRate,
		}
	}

	// Mixed-rate fabrics: every switch<->switch port runs at UplinkRate,
	// host-facing ports stay at LinkRate. Uniform fabrics (UplinkRate
	// zero or equal) take the single-rate path untouched.
	mixed := cfg.UplinkRate > 0 && cfg.UplinkRate != cfg.LinkRate

	n.switches = make([]*device.Switch, g.NumSwitches())
	for i := range n.switches {
		var portRates []units.Rate
		if mixed {
			portRates = make([]units.Rate, g.NumPorts(i))
			for p := range portRates {
				if g.Peer(i, p).ToHost {
					portRates[p] = cfg.LinkRate
				} else {
					portRates[p] = cfg.UplinkRate
				}
			}
		}
		sw := device.NewSwitch(n.swSim[i], device.SwitchConfig{
			ID:            g.SwitchID(i),
			NumPorts:      g.NumPorts(i),
			QueuesPerPort: cfg.QueuesPerPort,
			PortRate:      cfg.LinkRate,
			PortRates:     portRates,
			MMU:           mmuFor(),
			NewScheduler:  cfg.NewScheduler,
			EnableINT:     cfg.EnableINT,
			RNG:           switchRNG(baseSeed, int(g.SwitchID(i))),
			Obs:           cfg.Obs.ShardSink(n.Part.SwitchShard[i]),
		})
		sw.SetRouter(n.tableRouter(i))
		n.switches[i] = sw
		if g.TierOf(i) == 0 {
			n.Leaves = append(n.Leaves, sw)
		} else {
			n.Spines = append(n.Spines, sw)
		}
	}

	// Wire every switch<->switch link in canonical order: the lower-tier
	// egress registers its mailbox first, then the upper-tier one — for
	// leaf–spine this is exactly the historical l x sp double loop.
	n.linkUp = make([]bool, len(g.Links))
	n.linkRates = make([][2]units.Rate, len(g.Links))
	for li := range g.Links {
		lk := &g.Links[li]
		lo, hi := n.switches[lk.Lo], n.switches[lk.Hi]
		lo.ConnectPort(lk.LoPort, n.tierLink(n.swSim[lk.Lo], hi, n.Part.SwitchShard[lk.Hi]))
		hi.ConnectPort(lk.HiPort, n.tierLink(n.swSim[lk.Hi], lo, n.Part.SwitchShard[lk.Lo]))
		n.linkUp[li] = true
		n.linkRates[li] = [2]units.Rate{lo.Port(lk.LoPort).Rate(), hi.Port(lk.HiPort).Rate()}
	}

	// Routing tables and hop counts come from the graph, not from probe
	// walks: one BFS per destination edge group yields the ECMP next-hop
	// sets and the pairwise group distances in one pass.
	n.rt = newRouteTables(g)
	n.rt.recompute(g, n.linkUp)
	n.worstHops = 2 // host up to the edge switch and back down
	if d := n.rt.worstGroupDist(); d > 0 {
		n.worstHops = 2 + d
	}
	n.baseRTT = units.Time(2*n.worstHops) * cfg.LinkDelay

	numHosts := g.NumHosts()
	for h := 0; h < numHosts; h++ {
		e := g.GroupOfHost(h)
		edge := n.switches[e]
		s := n.swSim[e]
		hostPort := h % g.HostsPerEdge
		hs := host.New(s, host.Config{
			ID:      packet.NodeID(h),
			Rate:    cfg.LinkRate,
			BaseRTT: n.baseRTT,
			MSS:     cfg.MSS,
			MinRTO:  cfg.MinRTO,
			Obs:     cfg.Obs.ShardSink(n.Part.SwitchShard[e]),
		})
		hs.Connect(device.NewLink(s, cfg.LinkDelay, edge))
		edge.ConnectPort(hostPort, device.NewLink(s, cfg.LinkDelay, hs))
		n.Hosts = append(n.Hosts, hs)
	}
}

// tableRouter adapts switch i's forwarding table to the device router
// interface. The closure reads the shared table state on every packet,
// so a table recompute (link failure) applies to the next routed packet
// with no per-packet allocation.
func (n *Network) tableRouter(i int) device.Router {
	hpe := n.G.HostsPerEdge
	return func(_ *device.Switch, pkt *packet.Packet) int {
		return n.rt.routeFrom(i, hpe, pkt)
	}
}

// NumHosts returns the host count.
func (n *Network) NumHosts() int { return len(n.Hosts) }

// GroupOf returns the edge group (rack) index of a host index.
func (n *Network) GroupOf(hostIdx int) int { return n.G.GroupOfHost(hostIdx) }

// LeafOf is GroupOf under its historical leaf–spine name.
func (n *Network) LeafOf(hostIdx int) int { return n.GroupOf(hostIdx) }

// HostsPerGroup returns the uniform host count per edge group.
func (n *Network) HostsPerGroup() int { return n.G.HostsPerEdge }

// BisectionBits returns the fabric's bisection capacity in bits/s: the
// aggregate rate of every edge-switch uplink, the denominator workload
// load fractions are defined against. On leaf–spine this is
// leaves x spines x uplink rate.
func (n *Network) BisectionBits() units.Rate {
	var total units.Rate
	for li := range n.G.Links {
		if n.G.TierOf(n.G.Links[li].Lo) == 0 {
			total += n.linkRates[li][0]
		}
	}
	return total
}

// BaseRTT returns the propagation round-trip of the longest path,
// derived from the routing tables' worst pairwise hop count (eight link
// traversals on the paper's two-tier fabric, twelve on a fat-tree).
func (n *Network) BaseRTT() units.Time { return n.baseRTT }

// Hops returns the one-way hop-link count between two hosts on the
// routed path: the two host access links plus the switch-to-switch
// distance between their edge groups.
func (n *Network) Hops(src, dst int) int {
	a, b := n.GroupOf(src), n.GroupOf(dst)
	if a == b {
		return 2
	}
	return 2 + int(n.rt.groupDist[b][a])
}

// SimOfHost returns the simulator host h's events must schedule on (the
// serial simulator, or in sharded mode its edge switch's shard).
func (n *Network) SimOfHost(h int) *sim.Simulator { return n.swSim[n.GroupOf(h)] }

// ShardOfHost returns host h's shard index.
func (n *Network) ShardOfHost(h int) int { return n.Part.SwitchShard[n.GroupOf(h)] }

// IdealFCT returns the completion time the flow would see alone in the
// fabric: round-trip propagation (the FCT is measured at the sender, so
// it includes the final ACK), serialization of the full wire size at the
// line rate, and per-hop store-and-forward of one MTU.
func (n *Network) IdealFCT(src, dst int, size units.ByteCount) units.Time {
	hops := n.Hops(src, dst)
	segs := int64(size+n.Cfg.MSS-1) / int64(n.Cfg.MSS)
	wire := size + units.ByteCount(segs)*packet.HeaderBytes
	// On mixed-rate fabrics the slower tier bottlenecks a lone flow.
	rate := n.Cfg.LinkRate
	if up := n.Cfg.UplinkRate; up > 0 && up < rate {
		rate = up
	}
	prop := units.Time(2*hops) * n.Cfg.LinkDelay
	tx := rate.TxTime(wire)
	sf := units.Time(hops-1) * rate.TxTime(n.Cfg.MSS+packet.HeaderBytes)
	ackBack := rate.TxTime(packet.HeaderBytes) * units.Time(hops)
	return prop + tx + sf + ackBack
}

// StartFlow launches a flow from host src to host dst. class is an
// opaque label recorded by metrics (e.g. "websearch", "incast").
func (n *Network) StartFlow(src, dst int, size units.ByteCount, prio uint8,
	algo cc.Algorithm, onComplete func(now units.Time)) uint64 {
	id := n.AllocFlowID()
	n.StartFlowWithID(id, src, dst, size, prio, algo, onComplete)
	return id
}

// AllocFlowID reserves the next flow ID. The pre-generated workload
// path allocates IDs at planning time (on the coordinator, in arrival
// order) and launches the flows later on their source hosts' shards.
func (n *Network) AllocFlowID() uint64 {
	n.nextFlow++
	return n.nextFlow
}

// StartFlowWithID launches a flow under a pre-allocated ID; see
// AllocFlowID. It must run on the source host's shard.
func (n *Network) StartFlowWithID(id uint64, src, dst int, size units.ByteCount, prio uint8,
	algo cc.Algorithm, onComplete func(now units.Time)) {
	if src == dst {
		panic(fmt.Sprintf("topo: flow to self (host %d)", src))
	}
	if n.OnFlowStart != nil {
		n.OnFlowStart(id, src, dst, size, prio)
	}
	n.Hosts[src].StartFlow(id, packet.NodeID(dst), size, prio, algo, onComplete)
}

// PathHop identifies one egress port on a flow's routed path.
type PathHop struct {
	Sw   *device.Switch
	Port int
}

// PathQueues appends to buf the egress (switch, port) pairs a flow's
// packets traverse from src to dst, in path order, by walking the
// forwarding tables with the flow's real ID — so the ECMP choice
// matches what the packet engine will do. The hybrid engine uses it to
// map a fluid flow's rate onto the queues it loads. The walk follows
// graph adjacency, so it terminates for any shape; it panics if the
// destination became unreachable (a failed fabric partition).
func (n *Network) PathQueues(flowID uint64, src, dst int, buf []PathHop) []PathHop {
	if src == dst {
		return buf
	}
	var probe packet.Packet
	probe.Dst = packet.NodeID(dst)
	probe.FlowID = flowID
	cur := n.GroupOf(src)
	for range n.switches {
		port := n.rt.routeFrom(cur, n.G.HostsPerEdge, &probe)
		if port < 0 {
			panic(fmt.Sprintf("topo: no route from %d to %d (failed links partitioned the fabric)", src, dst))
		}
		buf = append(buf, PathHop{Sw: n.switches[cur], Port: port})
		ref := n.G.Peer(cur, port)
		if ref.ToHost {
			return buf
		}
		cur = int(ref.Peer)
	}
	panic(fmt.Sprintf("topo: routed path from %d to %d did not terminate", src, dst))
}

// WorstBufferFrac returns the worst shared-buffer occupancy fraction
// across all switches, the fabric-wide statistic the buffer sampler
// records. Callers must hold the fabric quiescent (serial execution or
// a window barrier).
func (n *Network) WorstBufferFrac() float64 {
	worst := 0.0
	for _, sw := range n.switches {
		if f := float64(sw.MMU().TotalUsed()) / float64(n.Cfg.BufferSize); f > worst {
			worst = f
		}
	}
	return worst
}

// Switches returns all switches in graph order (edge tier first). The
// slice is the network's own — callers must not mutate it.
func (n *Network) Switches() []*device.Switch { return n.switches }

// SwitchAt returns the switch at graph index i.
func (n *Network) SwitchAt(i int) *device.Switch { return n.switches[i] }

// Stop cancels all periodic switch tickers.
func (n *Network) Stop() {
	for _, sw := range n.switches {
		sw.Stop()
	}
}

// TotalDrops sums packet drops across the fabric, including packets
// dropped for lack of any route (black-holed during link failures).
func (n *Network) TotalDrops() int64 {
	var total int64
	for _, sw := range n.switches {
		total += sw.TotalDrops() + sw.RouteDrops
	}
	return total
}
