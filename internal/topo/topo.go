// Package topo builds the paper's evaluation fabric (§4.1): a leaf–spine
// topology with ECMP per-flow routing, uniform link rates, and hosts
// attached to leaf switches. Default dimensions follow the paper (8
// spines, 8 leaves, 32 hosts per leaf, 10 Gb/s, 10us per link); the
// experiment harness scales them down for CI-sized runs.
package topo

import (
	"fmt"

	"abm/internal/aqm"
	"abm/internal/bm"
	"abm/internal/cc"
	"abm/internal/device"
	"abm/internal/host"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/units"
)

// Config describes a leaf–spine fabric.
type Config struct {
	NumSpines    int
	NumLeaves    int
	HostsPerLeaf int

	LinkRate  units.Rate
	LinkDelay units.Time

	QueuesPerPort int

	BufferSize units.ByteCount // shared buffer per switch
	Headroom   units.ByteCount

	// BMFactory builds one buffer-management policy per switch; stateful
	// policies (FAB, IB, ABM-approx) must not be shared across devices.
	BMFactory  func() bm.Policy
	AQMFactory aqm.Factory

	Alphas           []float64
	AlphaUnscheduled float64
	CongestedFactor  float64
	StatsInterval    units.Time // 0 selects one base RTT (§4.1)
	DrainRate        device.DrainRateMode
	NewScheduler     func() device.Scheduler

	EnableINT bool

	MSS    units.ByteCount
	MinRTO units.Time
}

func (c *Config) fillDefaults() {
	if c.NumSpines <= 0 {
		c.NumSpines = 8
	}
	if c.NumLeaves <= 0 {
		c.NumLeaves = 8
	}
	if c.HostsPerLeaf <= 0 {
		c.HostsPerLeaf = 32
	}
	if c.LinkRate <= 0 {
		c.LinkRate = 10 * units.GigabitPerSec
	}
	if c.LinkDelay <= 0 {
		c.LinkDelay = 10 * units.Microsecond
	}
	if c.QueuesPerPort <= 0 {
		c.QueuesPerPort = 1
	}
	if c.BufferSize <= 0 {
		// Trident2: 9.6 KB per port per Gb/s (§4.1), sized by the leaf
		// radix so leaves and spines share one config.
		ports := c.HostsPerLeaf + c.NumSpines
		c.BufferSize = BufferFor(9.6, ports, c.LinkRate)
	}
	if c.BMFactory == nil {
		c.BMFactory = func() bm.Policy { return bm.DT{} }
	}
	if c.MSS <= 0 {
		c.MSS = 1440
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 10 * units.Millisecond
	}
	if c.StatsInterval <= 0 {
		c.StatsInterval = 8 * c.LinkDelay // one base RTT
	}
}

// BufferFor computes a switch buffer from a KB-per-port-per-Gbps spec,
// the sizing the paper sweeps in §4.3 (Trident2 9.6, Tomahawk 5.12,
// Tofino 3.44, ...).
func BufferFor(kbPerPortPerGbps float64, ports int, rate units.Rate) units.ByteCount {
	return units.ByteCount(kbPerPortPerGbps * 1024 * float64(ports) * rate.Gbps())
}

// Network is a built fabric.
type Network struct {
	Sim    *sim.Simulator
	Cfg    Config
	Spines []*device.Switch
	Leaves []*device.Switch
	Hosts  []*host.Host

	nextFlow uint64
}

// NodeID layout: hosts are 0..N-1, leaves 10000+l, spines 20000+s.
const (
	leafIDBase  = 10000
	spineIDBase = 20000
)

// NewNetwork builds and wires the fabric.
func NewNetwork(s *sim.Simulator, cfg Config) *Network {
	cfg.fillDefaults()
	n := &Network{Sim: s, Cfg: cfg}

	mmuFor := func() device.MMUConfig {
		return device.MMUConfig{
			BufferSize:       cfg.BufferSize,
			Headroom:         cfg.Headroom,
			Alphas:           cfg.Alphas,
			AlphaUnscheduled: cfg.AlphaUnscheduled,
			BM:               cfg.BMFactory(),
			AQMFactory:       cfg.AQMFactory,
			CongestedFactor:  cfg.CongestedFactor,
			StatsInterval:    cfg.StatsInterval,
			DrainRate:        cfg.DrainRate,
		}
	}

	for l := 0; l < cfg.NumLeaves; l++ {
		sw := device.NewSwitch(s, device.SwitchConfig{
			ID:            packet.NodeID(leafIDBase + l),
			NumPorts:      cfg.HostsPerLeaf + cfg.NumSpines,
			QueuesPerPort: cfg.QueuesPerPort,
			PortRate:      cfg.LinkRate,
			MMU:           mmuFor(),
			NewScheduler:  cfg.NewScheduler,
			EnableINT:     cfg.EnableINT,
		})
		sw.SetRouter(n.leafRouter(l))
		n.Leaves = append(n.Leaves, sw)
	}
	for sp := 0; sp < cfg.NumSpines; sp++ {
		sw := device.NewSwitch(s, device.SwitchConfig{
			ID:            packet.NodeID(spineIDBase + sp),
			NumPorts:      cfg.NumLeaves,
			QueuesPerPort: cfg.QueuesPerPort,
			PortRate:      cfg.LinkRate,
			MMU:           mmuFor(),
			NewScheduler:  cfg.NewScheduler,
			EnableINT:     cfg.EnableINT,
		})
		sw.SetRouter(n.spineRouter())
		n.Spines = append(n.Spines, sw)
	}

	numHosts := cfg.NumLeaves * cfg.HostsPerLeaf
	for h := 0; h < numHosts; h++ {
		leaf := n.Leaves[h/cfg.HostsPerLeaf]
		hostPort := h % cfg.HostsPerLeaf
		hs := host.New(s, host.Config{
			ID:      packet.NodeID(h),
			Rate:    cfg.LinkRate,
			BaseRTT: n.BaseRTT(),
			MSS:     cfg.MSS,
			MinRTO:  cfg.MinRTO,
		})
		hs.Connect(device.NewLink(s, cfg.LinkDelay, leaf))
		leaf.ConnectPort(hostPort, device.NewLink(s, cfg.LinkDelay, hs))
		n.Hosts = append(n.Hosts, hs)
	}

	for l, leaf := range n.Leaves {
		for sp, spine := range n.Spines {
			leaf.ConnectPort(cfg.HostsPerLeaf+sp, device.NewLink(s, cfg.LinkDelay, spine))
			spine.ConnectPort(l, device.NewLink(s, cfg.LinkDelay, leaf))
		}
	}
	return n
}

// leafRouter forwards to the local host port or ECMP-hashes the flow
// onto an uplink.
func (n *Network) leafRouter(leafIdx int) device.Router {
	hpl := n.Cfg.HostsPerLeaf
	lo := packet.NodeID(leafIdx * hpl)
	hi := lo + packet.NodeID(hpl)
	return func(_ *device.Switch, pkt *packet.Packet) int {
		if pkt.Dst >= lo && pkt.Dst < hi {
			return int(pkt.Dst - lo)
		}
		return hpl + int(ecmpHash(pkt.FlowID)%uint64(n.Cfg.NumSpines))
	}
}

// spineRouter forwards down to the destination's leaf.
func (n *Network) spineRouter() device.Router {
	hpl := n.Cfg.HostsPerLeaf
	return func(_ *device.Switch, pkt *packet.Packet) int {
		return int(pkt.Dst) / hpl
	}
}

// ecmpHash mixes the flow ID (splitmix64 finalizer) so consecutive flow
// IDs spread across spines.
func ecmpHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NumHosts returns the host count.
func (n *Network) NumHosts() int { return len(n.Hosts) }

// LeafOf returns the leaf (rack) index of a host index.
func (n *Network) LeafOf(hostIdx int) int { return hostIdx / n.Cfg.HostsPerLeaf }

// BaseRTT returns the propagation round-trip of the longest (inter-rack)
// path: eight link traversals.
func (n *Network) BaseRTT() units.Time { return 8 * n.Cfg.LinkDelay }

// Hops returns the one-way hop-link count between two hosts.
func (n *Network) Hops(src, dst int) int {
	if n.LeafOf(src) == n.LeafOf(dst) {
		return 2
	}
	return 4
}

// IdealFCT returns the completion time the flow would see alone in the
// fabric: round-trip propagation (the FCT is measured at the sender, so
// it includes the final ACK), serialization of the full wire size at the
// line rate, and per-hop store-and-forward of one MTU.
func (n *Network) IdealFCT(src, dst int, size units.ByteCount) units.Time {
	hops := n.Hops(src, dst)
	segs := int64(size+n.Cfg.MSS-1) / int64(n.Cfg.MSS)
	wire := size + units.ByteCount(segs)*packet.HeaderBytes
	prop := units.Time(2*hops) * n.Cfg.LinkDelay
	tx := n.Cfg.LinkRate.TxTime(wire)
	sf := units.Time(hops-1) * n.Cfg.LinkRate.TxTime(n.Cfg.MSS+packet.HeaderBytes)
	ackBack := n.Cfg.LinkRate.TxTime(packet.HeaderBytes) * units.Time(hops)
	return prop + tx + sf + ackBack
}

// StartFlow launches a flow from host src to host dst. class is an
// opaque label recorded by metrics (e.g. "websearch", "incast").
func (n *Network) StartFlow(src, dst int, size units.ByteCount, prio uint8,
	algo cc.Algorithm, onComplete func(now units.Time)) uint64 {
	if src == dst {
		panic(fmt.Sprintf("topo: flow to self (host %d)", src))
	}
	n.nextFlow++
	id := n.nextFlow
	n.Hosts[src].StartFlow(id, packet.NodeID(dst), size, prio, algo, onComplete)
	return id
}

// Switches returns all switches, leaves first.
func (n *Network) Switches() []*device.Switch {
	out := make([]*device.Switch, 0, len(n.Leaves)+len(n.Spines))
	out = append(out, n.Leaves...)
	out = append(out, n.Spines...)
	return out
}

// Stop cancels all periodic switch tickers.
func (n *Network) Stop() {
	for _, sw := range n.Switches() {
		sw.Stop()
	}
}

// TotalDrops sums packet drops across the fabric.
func (n *Network) TotalDrops() int64 {
	var total int64
	for _, sw := range n.Switches() {
		total += sw.TotalDrops()
	}
	return total
}
