// Package topo builds the paper's evaluation fabric (§4.1): a leaf–spine
// topology with ECMP per-flow routing, uniform link rates, and hosts
// attached to leaf switches. Default dimensions follow the paper (8
// spines, 8 leaves, 32 hosts per leaf, 10 Gb/s, 10us per link); the
// experiment harness scales them down for CI-sized runs.
package topo

import (
	"fmt"
	"math/rand"

	"abm/internal/aqm"
	"abm/internal/bm"
	"abm/internal/cc"
	"abm/internal/device"
	"abm/internal/host"
	"abm/internal/obs"
	"abm/internal/packet"
	"abm/internal/randutil"
	"abm/internal/sim"
	"abm/internal/units"
)

// Config describes a leaf–spine fabric.
type Config struct {
	NumSpines    int
	NumLeaves    int
	HostsPerLeaf int

	LinkRate  units.Rate
	LinkDelay units.Time

	// UplinkRate, when positive and different from LinkRate, gives the
	// leaf<->spine tier its own link speed (mixed-rate fabrics, e.g.
	// 10G hosts under 25G uplinks). Zero keeps the uniform LinkRate.
	// Host access links always run at LinkRate.
	UplinkRate units.Rate

	QueuesPerPort int

	BufferSize units.ByteCount // shared buffer per switch
	Headroom   units.ByteCount

	// BMFactory builds one buffer-management policy per switch; stateful
	// policies (FAB, IB, ABM-approx) must not be shared across devices.
	BMFactory  func() bm.Policy
	AQMFactory aqm.Factory

	Alphas           []float64
	AlphaUnscheduled float64
	CongestedFactor  float64
	StatsInterval    units.Time // 0 selects one base RTT (§4.1)
	DrainRate        device.DrainRateMode
	NewScheduler     func() device.Scheduler

	EnableINT bool

	MSS    units.ByteCount
	MinRTO units.Time

	// Obs is the run's telemetry session; nil disables telemetry. Each
	// switch and host receives the sink of its shard (the session must be
	// created with the partition's shard count; serial mode uses shard 0).
	Obs *obs.Session
}

func (c *Config) fillDefaults() {
	if c.NumSpines <= 0 {
		c.NumSpines = 8
	}
	if c.NumLeaves <= 0 {
		c.NumLeaves = 8
	}
	if c.HostsPerLeaf <= 0 {
		c.HostsPerLeaf = 32
	}
	if c.LinkRate <= 0 {
		c.LinkRate = 10 * units.GigabitPerSec
	}
	if c.LinkDelay <= 0 {
		c.LinkDelay = 10 * units.Microsecond
	}
	if c.QueuesPerPort <= 0 {
		c.QueuesPerPort = 1
	}
	if c.BufferSize <= 0 {
		// Trident2: 9.6 KB per port per Gb/s (§4.1), sized by the leaf
		// radix so leaves and spines share one config.
		ports := c.HostsPerLeaf + c.NumSpines
		c.BufferSize = BufferFor(9.6, ports, c.LinkRate)
	}
	if c.BMFactory == nil {
		c.BMFactory = func() bm.Policy { return bm.DT{} }
	}
	if c.MSS <= 0 {
		c.MSS = 1440
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 10 * units.Millisecond
	}
	if c.StatsInterval <= 0 {
		c.StatsInterval = 8 * c.LinkDelay // one base RTT
	}
}

// Uplink returns the leaf<->spine tier rate: UplinkRate when set, the
// uniform LinkRate otherwise. Workload generators define bisection
// capacity against it.
func (c Config) Uplink() units.Rate {
	if c.UplinkRate > 0 {
		return c.UplinkRate
	}
	return c.LinkRate
}

// BufferFor computes a switch buffer from a KB-per-port-per-Gbps spec,
// the sizing the paper sweeps in §4.3 (Trident2 9.6, Tomahawk 5.12,
// Tofino 3.44, ...).
func BufferFor(kbPerPortPerGbps float64, ports int, rate units.Rate) units.ByteCount {
	return units.ByteCount(kbPerPortPerGbps * 1024 * float64(ports) * rate.Gbps())
}

// Partition assigns every switch (and, implicitly, every host: a host
// lives with its leaf) to a shard of the parallel engine.
type Partition struct {
	Shards     int
	LeafShard  []int // per leaf index
	SpineShard []int // per spine index
}

// MakePartition builds the standard partition: leaves in balanced
// contiguous blocks (hosts follow their leaf, so rack-local traffic
// stays shard-local), spines round-robin so every shard owns a share of
// the core. Shards is clamped to [1, numLeaves] — beyond one shard per
// leaf there is nothing left to split.
func MakePartition(numLeaves, numSpines, shards int) Partition {
	if shards < 1 {
		shards = 1
	}
	if shards > numLeaves {
		shards = numLeaves
	}
	p := Partition{Shards: shards}
	p.LeafShard = make([]int, numLeaves)
	for l := range p.LeafShard {
		p.LeafShard[l] = l * shards / numLeaves
	}
	p.SpineShard = make([]int, numSpines)
	for sp := range p.SpineShard {
		p.SpineShard[sp] = sp % shards
	}
	return p
}

// Network is a built fabric, driven either by one serial simulator
// (Sim) or by the sharded parallel engine (Par); exactly one is set.
type Network struct {
	Sim    *sim.Simulator // serial mode; nil when sharded
	Par    *sim.Parallel  // sharded mode; nil when serial
	Part   Partition
	Cfg    Config
	Spines []*device.Switch
	Leaves []*device.Switch
	Hosts  []*host.Host

	leafSim  []*sim.Simulator // per leaf: the simulator its devices schedule on
	spineSim []*sim.Simulator

	baseRTT              units.Time
	intraHops, interHops int

	nextFlow uint64

	// OnFlowStart, when set, observes every flow launch just before its
	// first packet is emitted (hybrid engine: a new burst at a shared
	// queue promotes fluid flows back to packet mode before the burst's
	// packets can race them). It runs on the source host's shard, so a
	// sharded run must only install it when the engine is serial.
	OnFlowStart func(id uint64, src, dst int, size units.ByteCount, prio uint8)
}

// NodeID layout: hosts are 0..N-1, leaves 10000+l, spines 20000+s.
const (
	leafIDBase  = 10000
	spineIDBase = 20000
)

// NodeName renders a node ID as a human-readable label ("host3",
// "leaf0", "spine2") following the fixed NodeID layout. Telemetry
// exporters use it to name trace tracks and TSV rows.
func NodeName(id packet.NodeID) string {
	switch {
	case id >= spineIDBase:
		return fmt.Sprintf("spine%d", int(id)-spineIDBase)
	case id >= leafIDBase:
		return fmt.Sprintf("leaf%d", int(id)-leafIDBase)
	default:
		return fmt.Sprintf("host%d", int(id))
	}
}

// NewNetwork builds and wires the fabric on a single serial simulator.
func NewNetwork(s *sim.Simulator, cfg Config) *Network {
	cfg.fillDefaults()
	n := &Network{Sim: s, Cfg: cfg}
	n.Part = MakePartition(cfg.NumLeaves, cfg.NumSpines, 1)
	n.leafSim = make([]*sim.Simulator, cfg.NumLeaves)
	n.spineSim = make([]*sim.Simulator, cfg.NumSpines)
	for i := range n.leafSim {
		n.leafSim[i] = s
	}
	for i := range n.spineSim {
		n.spineSim[i] = s
	}
	n.build(s.Seed())
	return n
}

// NewShardedNetwork builds the same fabric across the shards of a
// parallel engine: each switch (and each host, via its leaf) schedules
// on its shard's simulator, and every tier (leaf<->spine) link routes
// through an engine mailbox — including same-shard tier links, so the
// barrier merge order is a property of the topology alone and the run
// is identical at any shard count.
func NewShardedNetwork(p *sim.Parallel, cfg Config, part Partition) *Network {
	cfg.fillDefaults()
	if part.Shards != p.NumShards() {
		panic(fmt.Sprintf("topo: partition has %d shards, engine has %d", part.Shards, p.NumShards()))
	}
	if len(part.LeafShard) != cfg.NumLeaves || len(part.SpineShard) != cfg.NumSpines {
		panic(fmt.Sprintf("topo: partition covers %d leaves/%d spines, fabric has %d/%d",
			len(part.LeafShard), len(part.SpineShard), cfg.NumLeaves, cfg.NumSpines))
	}
	n := &Network{Par: p, Cfg: cfg, Part: part}
	n.leafSim = make([]*sim.Simulator, cfg.NumLeaves)
	n.spineSim = make([]*sim.Simulator, cfg.NumSpines)
	for l, sh := range part.LeafShard {
		n.leafSim[l] = p.Shard(sh)
	}
	for sp, sh := range part.SpineShard {
		n.spineSim[sp] = p.Shard(sh)
	}
	n.build(p.Seed())
	return n
}

// switchRNG derives the switch's private random stream from the base
// seed and its node ID — the same stream in serial and sharded mode,
// regardless of partition or event interleaving.
func switchRNG(baseSeed int64, id int) *rand.Rand {
	return rand.New(rand.NewSource(randutil.DeriveSeed(baseSeed, id)))
}

// tierLink creates one leaf<->spine link: direct in serial mode,
// mailbox-routed in sharded mode. Mailboxes register in call order,
// which build keeps partition-invariant (the l x sp wiring loop).
func (n *Network) tierLink(src *sim.Simulator, dst device.Endpoint, dstShard int) *device.Link {
	if n.Par == nil {
		return device.NewLink(src, n.Cfg.LinkDelay, dst)
	}
	box := n.Par.NewMailbox(dstShard, n.Cfg.LinkDelay)
	return device.NewLinkVia(src, n.Cfg.LinkDelay, dst, box)
}

// build constructs switches, wires the tier, derives hop counts from
// the routed path, and attaches hosts. Tier links are wired before
// hosts so the hop walk runs on the real forwarding state.
func (n *Network) build(baseSeed int64) {
	cfg := n.Cfg
	mmuFor := func() device.MMUConfig {
		return device.MMUConfig{
			BufferSize:       cfg.BufferSize,
			Headroom:         cfg.Headroom,
			Alphas:           cfg.Alphas,
			AlphaUnscheduled: cfg.AlphaUnscheduled,
			BM:               cfg.BMFactory(),
			AQMFactory:       cfg.AQMFactory,
			CongestedFactor:  cfg.CongestedFactor,
			StatsInterval:    cfg.StatsInterval,
			DrainRate:        cfg.DrainRate,
		}
	}

	// Mixed-rate fabrics: leaf uplink ports and the whole spine tier run
	// at UplinkRate; host-facing ports stay at LinkRate. Uniform fabrics
	// (UplinkRate zero or equal) take the single-rate path untouched.
	var leafRates []units.Rate
	spineRate := cfg.LinkRate
	if up := cfg.UplinkRate; up > 0 && up != cfg.LinkRate {
		leafRates = make([]units.Rate, cfg.HostsPerLeaf+cfg.NumSpines)
		for i := range leafRates {
			if i < cfg.HostsPerLeaf {
				leafRates[i] = cfg.LinkRate
			} else {
				leafRates[i] = up
			}
		}
		spineRate = up
	}

	for l := 0; l < cfg.NumLeaves; l++ {
		sw := device.NewSwitch(n.leafSim[l], device.SwitchConfig{
			ID:            packet.NodeID(leafIDBase + l),
			NumPorts:      cfg.HostsPerLeaf + cfg.NumSpines,
			QueuesPerPort: cfg.QueuesPerPort,
			PortRate:      cfg.LinkRate,
			PortRates:     leafRates,
			MMU:           mmuFor(),
			NewScheduler:  cfg.NewScheduler,
			EnableINT:     cfg.EnableINT,
			RNG:           switchRNG(baseSeed, leafIDBase+l),
			Obs:           cfg.Obs.ShardSink(n.Part.LeafShard[l]),
		})
		sw.SetRouter(n.leafRouter(l))
		n.Leaves = append(n.Leaves, sw)
	}
	for sp := 0; sp < cfg.NumSpines; sp++ {
		sw := device.NewSwitch(n.spineSim[sp], device.SwitchConfig{
			ID:            packet.NodeID(spineIDBase + sp),
			NumPorts:      cfg.NumLeaves,
			QueuesPerPort: cfg.QueuesPerPort,
			PortRate:      spineRate,
			MMU:           mmuFor(),
			NewScheduler:  cfg.NewScheduler,
			EnableINT:     cfg.EnableINT,
			RNG:           switchRNG(baseSeed, spineIDBase+sp),
			Obs:           cfg.Obs.ShardSink(n.Part.SpineShard[sp]),
		})
		sw.SetRouter(n.spineRouter())
		n.Spines = append(n.Spines, sw)
	}

	for l, leaf := range n.Leaves {
		for sp, spine := range n.Spines {
			leaf.ConnectPort(cfg.HostsPerLeaf+sp, n.tierLink(n.leafSim[l], spine, n.Part.SpineShard[sp]))
			spine.ConnectPort(l, n.tierLink(n.spineSim[sp], leaf, n.Part.LeafShard[l]))
		}
	}

	n.intraHops = 2 // up to the leaf and back down: no pair to probe when HostsPerLeaf == 1
	if cfg.HostsPerLeaf > 1 {
		n.intraHops = n.routedHops(0, 1)
	}
	n.interHops = n.intraHops
	if cfg.NumLeaves > 1 {
		n.interHops = n.routedHops(0, cfg.HostsPerLeaf)
	}
	worst := n.interHops
	if n.intraHops > worst {
		worst = n.intraHops
	}
	n.baseRTT = units.Time(2*worst) * cfg.LinkDelay

	numHosts := cfg.NumLeaves * cfg.HostsPerLeaf
	for h := 0; h < numHosts; h++ {
		l := h / cfg.HostsPerLeaf
		leaf := n.Leaves[l]
		s := n.leafSim[l]
		hostPort := h % cfg.HostsPerLeaf
		hs := host.New(s, host.Config{
			ID:      packet.NodeID(h),
			Rate:    cfg.LinkRate,
			BaseRTT: n.baseRTT,
			MSS:     cfg.MSS,
			MinRTO:  cfg.MinRTO,
			Obs:     cfg.Obs.ShardSink(n.Part.LeafShard[l]),
		})
		hs.Connect(device.NewLink(s, cfg.LinkDelay, leaf))
		leaf.ConnectPort(hostPort, device.NewLink(s, cfg.LinkDelay, hs))
		n.Hosts = append(n.Hosts, hs)
	}
}

// routedHops counts link traversals on the path the installed routers
// forward src->dst: the host uplink, switch-to-switch hops along real
// links, and the final down-link to the destination host. ECMP spreads
// flows across spines but never changes the hop count, so one probe
// flow is representative.
func (n *Network) routedHops(src, dst int) int {
	if src == dst {
		return 0
	}
	probe := &packet.Packet{Dst: packet.NodeID(dst), FlowID: 1}
	cur := n.Leaves[n.LeafOf(src)]
	hops := 1 // src host -> leaf
	for step := 0; step < 16; step++ {
		port := cur.RoutePort(probe)
		if int(cur.ID()) < spineIDBase && port < n.Cfg.HostsPerLeaf {
			return hops + 1 // leaf -> dst host
		}
		next, ok := cur.Port(port).Link().Dst().(*device.Switch)
		if !ok {
			panic(fmt.Sprintf("topo: routed path from %d to %d left the switch fabric", src, dst))
		}
		hops++
		cur = next
	}
	panic(fmt.Sprintf("topo: routed path from %d to %d did not terminate", src, dst))
}

// leafRouter forwards to the local host port or ECMP-hashes the flow
// onto an uplink.
func (n *Network) leafRouter(leafIdx int) device.Router {
	hpl := n.Cfg.HostsPerLeaf
	lo := packet.NodeID(leafIdx * hpl)
	hi := lo + packet.NodeID(hpl)
	return func(_ *device.Switch, pkt *packet.Packet) int {
		if pkt.Dst >= lo && pkt.Dst < hi {
			return int(pkt.Dst - lo)
		}
		return hpl + int(ecmpHash(pkt.FlowID)%uint64(n.Cfg.NumSpines))
	}
}

// spineRouter forwards down to the destination's leaf.
func (n *Network) spineRouter() device.Router {
	hpl := n.Cfg.HostsPerLeaf
	return func(_ *device.Switch, pkt *packet.Packet) int {
		return int(pkt.Dst) / hpl
	}
}

// ecmpHash mixes the flow ID (splitmix64 finalizer) so consecutive flow
// IDs spread across spines.
func ecmpHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NumHosts returns the host count.
func (n *Network) NumHosts() int { return len(n.Hosts) }

// LeafOf returns the leaf (rack) index of a host index.
func (n *Network) LeafOf(hostIdx int) int { return hostIdx / n.Cfg.HostsPerLeaf }

// BaseRTT returns the propagation round-trip of the longest path,
// derived from the hop count the installed routers actually report
// (eight link traversals on the paper's two-tier fabric).
func (n *Network) BaseRTT() units.Time { return n.baseRTT }

// Hops returns the one-way hop-link count between two hosts, measured
// on the routed path at build time.
func (n *Network) Hops(src, dst int) int {
	if n.LeafOf(src) == n.LeafOf(dst) {
		return n.intraHops
	}
	return n.interHops
}

// SimOfHost returns the simulator host h's events must schedule on (the
// serial simulator, or in sharded mode its leaf's shard).
func (n *Network) SimOfHost(h int) *sim.Simulator { return n.leafSim[n.LeafOf(h)] }

// ShardOfHost returns host h's shard index.
func (n *Network) ShardOfHost(h int) int { return n.Part.LeafShard[n.LeafOf(h)] }

// IdealFCT returns the completion time the flow would see alone in the
// fabric: round-trip propagation (the FCT is measured at the sender, so
// it includes the final ACK), serialization of the full wire size at the
// line rate, and per-hop store-and-forward of one MTU.
func (n *Network) IdealFCT(src, dst int, size units.ByteCount) units.Time {
	hops := n.Hops(src, dst)
	segs := int64(size+n.Cfg.MSS-1) / int64(n.Cfg.MSS)
	wire := size + units.ByteCount(segs)*packet.HeaderBytes
	// On mixed-rate fabrics the slower tier bottlenecks a lone flow.
	rate := n.Cfg.LinkRate
	if up := n.Cfg.UplinkRate; up > 0 && up < rate {
		rate = up
	}
	prop := units.Time(2*hops) * n.Cfg.LinkDelay
	tx := rate.TxTime(wire)
	sf := units.Time(hops-1) * rate.TxTime(n.Cfg.MSS+packet.HeaderBytes)
	ackBack := rate.TxTime(packet.HeaderBytes) * units.Time(hops)
	return prop + tx + sf + ackBack
}

// StartFlow launches a flow from host src to host dst. class is an
// opaque label recorded by metrics (e.g. "websearch", "incast").
func (n *Network) StartFlow(src, dst int, size units.ByteCount, prio uint8,
	algo cc.Algorithm, onComplete func(now units.Time)) uint64 {
	id := n.AllocFlowID()
	n.StartFlowWithID(id, src, dst, size, prio, algo, onComplete)
	return id
}

// AllocFlowID reserves the next flow ID. The pre-generated workload
// path allocates IDs at planning time (on the coordinator, in arrival
// order) and launches the flows later on their source hosts' shards.
func (n *Network) AllocFlowID() uint64 {
	n.nextFlow++
	return n.nextFlow
}

// StartFlowWithID launches a flow under a pre-allocated ID; see
// AllocFlowID. It must run on the source host's shard.
func (n *Network) StartFlowWithID(id uint64, src, dst int, size units.ByteCount, prio uint8,
	algo cc.Algorithm, onComplete func(now units.Time)) {
	if src == dst {
		panic(fmt.Sprintf("topo: flow to self (host %d)", src))
	}
	if n.OnFlowStart != nil {
		n.OnFlowStart(id, src, dst, size, prio)
	}
	n.Hosts[src].StartFlow(id, packet.NodeID(dst), size, prio, algo, onComplete)
}

// PathHop identifies one egress port on a flow's routed path.
type PathHop struct {
	Sw   *device.Switch
	Port int
}

// PathQueues appends to buf the egress (switch, port) pairs a flow's
// packets traverse from src to dst, in path order, by walking the
// installed routers with the flow's real ID — so the ECMP spine choice
// matches what the packet engine will do. The hybrid engine uses it to
// map a fluid flow's rate onto the queues it loads.
func (n *Network) PathQueues(flowID uint64, src, dst int, buf []PathHop) []PathHop {
	if src == dst {
		return buf
	}
	var probe packet.Packet
	probe.Dst = packet.NodeID(dst)
	probe.FlowID = flowID
	cur := n.Leaves[n.LeafOf(src)]
	for step := 0; step < 16; step++ {
		port := cur.RoutePort(&probe)
		buf = append(buf, PathHop{Sw: cur, Port: port})
		if int(cur.ID()) < spineIDBase && port < n.Cfg.HostsPerLeaf {
			return buf // leaf egress toward the destination host
		}
		next, ok := cur.Port(port).Link().Dst().(*device.Switch)
		if !ok {
			panic(fmt.Sprintf("topo: routed path from %d to %d left the switch fabric", src, dst))
		}
		cur = next
	}
	panic(fmt.Sprintf("topo: routed path from %d to %d did not terminate", src, dst))
}

// WorstBufferFrac returns the worst shared-buffer occupancy fraction
// across all switches, the fabric-wide statistic the buffer sampler
// records. Callers must hold the fabric quiescent (serial execution or
// a window barrier).
func (n *Network) WorstBufferFrac() float64 {
	worst := 0.0
	for _, sw := range n.Switches() {
		if f := float64(sw.MMU().TotalUsed()) / float64(n.Cfg.BufferSize); f > worst {
			worst = f
		}
	}
	return worst
}

// Switches returns all switches, leaves first.
func (n *Network) Switches() []*device.Switch {
	out := make([]*device.Switch, 0, len(n.Leaves)+len(n.Spines))
	out = append(out, n.Leaves...)
	out = append(out, n.Spines...)
	return out
}

// Stop cancels all periodic switch tickers.
func (n *Network) Stop() {
	for _, sw := range n.Switches() {
		sw.Stop()
	}
}

// TotalDrops sums packet drops across the fabric.
func (n *Network) TotalDrops() int64 {
	var total int64
	for _, sw := range n.Switches() {
		total += sw.TotalDrops()
	}
	return total
}
