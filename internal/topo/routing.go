package topo

import (
	"abm/internal/packet"
)

// fwdTable is one switch's forwarding state, computed from the graph.
// The per-packet router is pure array lookup — no allocation, no probe
// walks — and ECMP picks within a destination group's next-hop port set
// by flow hash, so the set degrades gracefully when failures prune it.
type fwdTable struct {
	// ownGroup is the switch's edge group (-1 above the edge tier):
	// packets to its own hosts exit on the host port directly.
	ownGroup int32
	// groupBase is the first host ID of ownGroup.
	groupBase packet.NodeID
	// next[g] lists the candidate egress ports toward edge group g, in
	// ascending port order. A singleton set forwards without hashing;
	// an empty set means g is unreachable (the packet is dropped).
	next [][]int32
}

// routeTables holds the fabric's forwarding and distance state. The
// Network recomputes it in place whenever a link changes state; router
// closures read it through the slice, so updates apply to the next
// routed packet with no per-packet indirection cost.
type routeTables struct {
	tables []fwdTable
	// groupDist[a][b] is the switch-to-switch hop distance between edge
	// groups a and b (0 on the diagonal; leaf-spine remote pairs are 2,
	// fat-tree inter-pod pairs 4). Unreachable pairs keep their last
	// finite value so FCT normalization stays stable across failures.
	groupDist [][]int16

	// scratch, reused across recomputes (failures are rare events; the
	// steady-state path never touches these).
	dist  []int16
	queue []int32
}

// newRouteTables allocates forwarding state for the graph.
func newRouteTables(g *Graph) *routeTables {
	rt := &routeTables{
		tables:    make([]fwdTable, g.NumSwitches()),
		groupDist: make([][]int16, g.NumGroups()),
		dist:      make([]int16, g.NumSwitches()),
		queue:     make([]int32, 0, g.NumSwitches()),
	}
	groups := g.NumGroups()
	for i := range rt.tables {
		t := &rt.tables[i]
		t.ownGroup = -1
		if g.TierOf(i) == 0 {
			t.ownGroup = int32(i)
			t.groupBase = packet.NodeID(i * g.HostsPerEdge)
		}
		t.next = make([][]int32, groups)
	}
	for a := range rt.groupDist {
		rt.groupDist[a] = make([]int16, groups)
		for b := range rt.groupDist[a] {
			if a != b {
				rt.groupDist[a][b] = -1
			}
		}
	}
	return rt
}

// recompute rebuilds every next-hop set from the graph restricted to
// links where linkUp is true: one BFS per destination edge group, next
// hops at each switch being the ports whose live peer is one step
// closer to the destination. Determinism: ports are scanned in
// ascending order, so sets are canonical; the result depends only on
// the graph and the up/down state, never on event interleaving.
func (rt *routeTables) recompute(g *Graph, linkUp []bool) {
	for dstGroup := 0; dstGroup < g.NumGroups(); dstGroup++ {
		dist := rt.dist
		for i := range dist {
			dist[i] = -1
		}
		dist[dstGroup] = 0 // edge switch index == group index
		q := rt.queue[:0]
		q = append(q, int32(dstGroup))
		for len(q) > 0 {
			cur := int(q[0])
			q = q[1:]
			for p := range g.ports[cur] {
				ref := g.ports[cur][p]
				if ref.ToHost || !linkUp[g.linkOf[cur][p]] {
					continue
				}
				if peer := int(ref.Peer); dist[peer] < 0 {
					dist[peer] = dist[cur] + 1
					q = append(q, ref.Peer)
				}
			}
		}
		for i := range rt.tables {
			set := rt.tables[i].next[dstGroup][:0]
			if dist[i] > 0 {
				for p := range g.ports[i] {
					ref := g.ports[i][p]
					if ref.ToHost || !linkUp[g.linkOf[i][p]] {
						continue
					}
					if pd := dist[ref.Peer]; pd >= 0 && pd == dist[i]-1 {
						set = append(set, int32(p))
					}
				}
			}
			rt.tables[i].next[dstGroup] = set
		}
		for srcGroup := 0; srcGroup < g.NumGroups(); srcGroup++ {
			if d := dist[srcGroup]; d >= 0 {
				rt.groupDist[dstGroup][srcGroup] = d
			}
		}
	}
}

// worstGroupDist returns the largest pairwise edge-group distance —
// with the host access links on both ends, the fabric's worst hop
// count is worstGroupDist + 2 (or 2 flat for a single group).
func (rt *routeTables) worstGroupDist() int {
	worst := 0
	for a := range rt.groupDist {
		for b := range rt.groupDist[a] {
			if d := int(rt.groupDist[a][b]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// WorstHops returns the worst-case host-to-host switch hop count on the
// healthy graph: 2 within one edge group, 2 plus the worst inter-group
// distance across it (4 on a multi-leaf leaf–spine, 6 on a fat tree).
func (g *Graph) WorstHops() int {
	rt := newRouteTables(g)
	up := make([]bool, len(g.Links))
	for i := range up {
		up[i] = true
	}
	rt.recompute(g, up)
	if d := rt.worstGroupDist(); d > 0 {
		return 2 + d
	}
	return 2
}

// Reachable reports whether every edge-group pair can still reach each
// other over the in-service links. The scenario layer uses it to reject
// fault schedules that disconnect the fabric permanently: a black-holed
// sender retransmits forever, and the run layer drains event chains to
// exhaustion after the traffic window.
func (g *Graph) Reachable(up []bool) bool {
	rt := newRouteTables(g)
	rt.recompute(g, up)
	for a := range rt.groupDist {
		for b := range rt.groupDist[a] {
			if a != b && rt.groupDist[a][b] < 0 {
				return false
			}
		}
	}
	return true
}

// ecmpHash mixes the flow ID (splitmix64 finalizer) so consecutive flow
// IDs spread across equal-cost next hops.
func ecmpHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// routeFrom picks the egress port for pkt at switch index sw: the host
// port inside the switch's own edge group, otherwise an ECMP choice
// from the destination group's next-hop set. Returns -1 when the
// destination is unreachable (every next hop failed) — the device layer
// drops such packets, the packet analogue of a routing black hole.
func (rt *routeTables) routeFrom(sw int, hostsPerEdge int, pkt *packet.Packet) int {
	t := &rt.tables[sw]
	grp := int32(int(pkt.Dst) / hostsPerEdge)
	if grp == t.ownGroup {
		return int(pkt.Dst - t.groupBase)
	}
	set := t.next[grp]
	switch len(set) {
	case 0:
		return -1
	case 1:
		return int(set[0])
	}
	return int(set[ecmpHash(pkt.FlowID)%uint64(len(set))])
}
