package topo

import (
	"fmt"
	"math/rand"
	"testing"

	"abm/internal/cc"
	"abm/internal/sim"
	"abm/internal/units"
)

// checkPartition asserts the partition invariants on any graph: every
// switch maps to exactly one in-range shard, edge-switch blocks are
// contiguous with every shard owning at least one (rack-local traffic
// never crosses shards), and hosts inherit their edge group's shard.
func checkPartition(t *testing.T, label string, g *Graph, req int) {
	t.Helper()
	p := MakePartition(g, req)
	want := req
	if want > g.NumGroups() {
		want = g.NumGroups()
	}
	if want < 1 {
		want = 1
	}
	if p.Shards != want {
		t.Fatalf("%s: %d shards for %d edge groups (requested %d), want %d",
			label, p.Shards, g.NumGroups(), req, want)
	}
	if len(p.SwitchShard) != g.NumSwitches() {
		t.Fatalf("%s: partition maps %d switches, graph has %d",
			label, len(p.SwitchShard), g.NumSwitches())
	}
	edgeCount := make([]int, p.Shards)
	prev := 0
	for i, sh := range p.SwitchShard {
		if sh < 0 || sh >= p.Shards {
			t.Fatalf("%s: switch %d on shard %d of %d", label, i, sh, p.Shards)
		}
		if g.TierOf(i) != 0 {
			continue
		}
		if sh < prev {
			t.Fatalf("%s: edge blocks not contiguous at switch %d (%d after %d)", label, i, sh, prev)
		}
		prev = sh
		edgeCount[sh]++
	}
	for sh, c := range edgeCount {
		if c == 0 {
			t.Fatalf("%s: shard %d owns no edge switches", label, sh)
		}
	}
	// Host coverage: every host maps through its edge group to one shard.
	for h := 0; h < g.NumHosts(); h++ {
		if sh := p.SwitchShard[g.GroupOfHost(h)]; sh < 0 || sh >= p.Shards {
			t.Fatalf("%s: host %d unassigned", label, h)
		}
	}
}

// TestPartitionCoversEveryDevice is the partitioner property test, on
// random leaf–spine dimensions and on multi-tier fat trees.
func TestPartitionCoversEveryDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		leaves := 1 + rng.Intn(24)
		spines := 1 + rng.Intn(24)
		hostsPer := 1 + rng.Intn(16)
		req := 1 + rng.Intn(12)
		g := LeafSpine(spines, leaves, hostsPer)
		checkPartition(t, fmt.Sprintf("trial %d (%dx%dx%d req %d)", trial, spines, leaves, hostsPer, req), g, req)
	}
	for _, k := range []int{2, 4, 6, 8} {
		g := FatTree(k)
		for req := 1; req <= g.NumGroups()+2; req++ {
			checkPartition(t, fmt.Sprintf("fattree k=%d req %d", k, req), g, req)
		}
	}
}

// runFlows launches the same little flow mix on a network and returns
// the completion times, keyed by flow order.
func runFlows(n *Network) []units.Time {
	type launch struct{ src, dst int }
	mix := []launch{{0, 5}, {4, 1}, {2, 6}, {7, 3}, {1, 2}}
	fcts := make([]units.Time, len(mix))
	for i, m := range mix {
		i, m := i, m
		id := n.AllocFlowID()
		n.SimOfHost(m.src).At(0, func() {
			n.StartFlowWithID(id, m.src, m.dst, 50*units.Kilobyte, 0, cc.NewDCTCP(),
				func(now units.Time) { fcts[i] = now })
		})
	}
	if n.Par != nil {
		n.Par.RunUntil(20 * units.Millisecond)
		n.Stop()
		n.Par.Drain()
		n.Par.Close()
	} else {
		n.Sim.RunUntil(20 * units.Millisecond)
		n.Stop()
		n.Sim.Run()
	}
	return fcts
}

// TestShardedNetworkShardInvariance drives an identical flow mix
// through the engine at 1, 2, and 4 shards (on a 4-leaf fabric) and
// demands identical flow completion times: the canonical mailbox merge
// makes the run a property of the topology, not the partition.
func TestShardedNetworkShardInvariance(t *testing.T) {
	cfg := Config{
		NumSpines:    2,
		NumLeaves:    4,
		HostsPerLeaf: 2,
		LinkRate:     10 * units.GigabitPerSec,
		LinkDelay:    10 * units.Microsecond,
	}
	var ref []units.Time
	for _, shards := range []int{1, 2, 4} {
		p := sim.NewParallel(42, shards)
		got := runFlows(NewShardedNetwork(p, cfg, MakePartition(cfg.Graph(), shards)))
		if got[0] == 0 {
			t.Fatal("flows did not complete")
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("shards=%d: flow %d FCT %v, 1-shard engine %v", shards, i, got[i], ref[i])
			}
		}
	}
}

// TestShardedSingleFlowMatchesSerial checks the engine against the
// legacy serial loop on a lone flow. With no competing traffic there
// are no same-picosecond event ties, so the two run modes must agree
// to the picosecond (contended runs may reorder exact ties; the
// engine's own output is tie-canonical and shard-invariant instead).
func TestShardedSingleFlowMatchesSerial(t *testing.T) {
	cfg := Config{
		NumSpines:    2,
		NumLeaves:    4,
		HostsPerLeaf: 2,
		LinkRate:     10 * units.GigabitPerSec,
		LinkDelay:    10 * units.Microsecond,
	}
	runOne := func(n *Network) units.Time {
		var fct units.Time
		id := n.AllocFlowID()
		n.SimOfHost(0).At(0, func() {
			n.StartFlowWithID(id, 0, 5, 200*units.Kilobyte, 0, cc.NewDCTCP(),
				func(now units.Time) { fct = now })
		})
		if n.Par != nil {
			n.Par.RunUntil(50 * units.Millisecond)
			n.Stop()
			n.Par.Drain()
			n.Par.Close()
		} else {
			n.Sim.RunUntil(50 * units.Millisecond)
			n.Stop()
			n.Sim.Run()
		}
		return fct
	}
	serial := runOne(NewNetwork(sim.New(42), cfg))
	if serial == 0 {
		t.Fatal("serial flow did not complete")
	}
	for _, shards := range []int{2, 4} {
		p := sim.NewParallel(42, shards)
		got := runOne(NewShardedNetwork(p, cfg, MakePartition(cfg.Graph(), shards)))
		if got != serial {
			t.Fatalf("shards=%d: FCT %v, serial %v", shards, got, serial)
		}
	}
}
