package topo

import (
	"math/rand"
	"testing"

	"abm/internal/cc"
	"abm/internal/sim"
	"abm/internal/units"
)

// TestPartitionCoversEveryDevice is the partitioner property test:
// for random fabric dimensions and shard counts, every leaf and spine
// maps to exactly one in-range shard, every shard owns at least one
// leaf, hosts inherit their leaf's shard, and leaf blocks stay
// contiguous (rack-local traffic never crosses shards).
func TestPartitionCoversEveryDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		leaves := 1 + rng.Intn(24)
		spines := 1 + rng.Intn(24)
		hostsPer := 1 + rng.Intn(16)
		req := 1 + rng.Intn(12)

		p := MakePartition(leaves, spines, req)
		want := req
		if want > leaves {
			want = leaves
		}
		if p.Shards != want {
			t.Fatalf("trial %d: %d shards for %d leaves (requested %d), want %d",
				trial, p.Shards, leaves, req, want)
		}
		if len(p.LeafShard) != leaves || len(p.SpineShard) != spines {
			t.Fatalf("trial %d: partition maps %d/%d devices, fabric has %d/%d",
				trial, len(p.LeafShard), len(p.SpineShard), leaves, spines)
		}
		leafCount := make([]int, p.Shards)
		prev := 0
		for l, sh := range p.LeafShard {
			if sh < 0 || sh >= p.Shards {
				t.Fatalf("trial %d: leaf %d on shard %d of %d", trial, l, sh, p.Shards)
			}
			if sh < prev {
				t.Fatalf("trial %d: leaf blocks not contiguous at leaf %d (%d after %d)", trial, l, sh, prev)
			}
			prev = sh
			leafCount[sh]++
		}
		for sh, c := range leafCount {
			if c == 0 {
				t.Fatalf("trial %d: shard %d owns no leaves", trial, sh)
			}
		}
		for sp, sh := range p.SpineShard {
			if sh < 0 || sh >= p.Shards {
				t.Fatalf("trial %d: spine %d on shard %d of %d", trial, sp, sh, p.Shards)
			}
		}
		// Host coverage: every host index maps through its leaf to one shard.
		n := leaves * hostsPer
		for h := 0; h < n; h++ {
			if sh := p.LeafShard[h/hostsPer]; sh < 0 || sh >= p.Shards {
				t.Fatalf("trial %d: host %d unassigned", trial, h)
			}
		}
	}
}

// runFlows launches the same little flow mix on a network and returns
// the completion times, keyed by flow order.
func runFlows(n *Network) []units.Time {
	type launch struct{ src, dst int }
	mix := []launch{{0, 5}, {4, 1}, {2, 6}, {7, 3}, {1, 2}}
	fcts := make([]units.Time, len(mix))
	for i, m := range mix {
		i, m := i, m
		id := n.AllocFlowID()
		n.SimOfHost(m.src).At(0, func() {
			n.StartFlowWithID(id, m.src, m.dst, 50*units.Kilobyte, 0, cc.NewDCTCP(),
				func(now units.Time) { fcts[i] = now })
		})
	}
	if n.Par != nil {
		n.Par.RunUntil(20 * units.Millisecond)
		n.Stop()
		n.Par.Drain()
		n.Par.Close()
	} else {
		n.Sim.RunUntil(20 * units.Millisecond)
		n.Stop()
		n.Sim.Run()
	}
	return fcts
}

// TestShardedNetworkShardInvariance drives an identical flow mix
// through the engine at 1, 2, and 4 shards (on a 4-leaf fabric) and
// demands identical flow completion times: the canonical mailbox merge
// makes the run a property of the topology, not the partition.
func TestShardedNetworkShardInvariance(t *testing.T) {
	cfg := Config{
		NumSpines:    2,
		NumLeaves:    4,
		HostsPerLeaf: 2,
		LinkRate:     10 * units.GigabitPerSec,
		LinkDelay:    10 * units.Microsecond,
	}
	var ref []units.Time
	for _, shards := range []int{1, 2, 4} {
		p := sim.NewParallel(42, shards)
		got := runFlows(NewShardedNetwork(p, cfg, MakePartition(cfg.NumLeaves, cfg.NumSpines, shards)))
		if got[0] == 0 {
			t.Fatal("flows did not complete")
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("shards=%d: flow %d FCT %v, 1-shard engine %v", shards, i, got[i], ref[i])
			}
		}
	}
}

// TestShardedSingleFlowMatchesSerial checks the engine against the
// legacy serial loop on a lone flow. With no competing traffic there
// are no same-picosecond event ties, so the two run modes must agree
// to the picosecond (contended runs may reorder exact ties; the
// engine's own output is tie-canonical and shard-invariant instead).
func TestShardedSingleFlowMatchesSerial(t *testing.T) {
	cfg := Config{
		NumSpines:    2,
		NumLeaves:    4,
		HostsPerLeaf: 2,
		LinkRate:     10 * units.GigabitPerSec,
		LinkDelay:    10 * units.Microsecond,
	}
	runOne := func(n *Network) units.Time {
		var fct units.Time
		id := n.AllocFlowID()
		n.SimOfHost(0).At(0, func() {
			n.StartFlowWithID(id, 0, 5, 200*units.Kilobyte, 0, cc.NewDCTCP(),
				func(now units.Time) { fct = now })
		})
		if n.Par != nil {
			n.Par.RunUntil(50 * units.Millisecond)
			n.Stop()
			n.Par.Drain()
			n.Par.Close()
		} else {
			n.Sim.RunUntil(50 * units.Millisecond)
			n.Stop()
			n.Sim.Run()
		}
		return fct
	}
	serial := runOne(NewNetwork(sim.New(42), cfg))
	if serial == 0 {
		t.Fatal("serial flow did not complete")
	}
	for _, shards := range []int{2, 4} {
		p := sim.NewParallel(42, shards)
		got := runOne(NewShardedNetwork(p, cfg, MakePartition(cfg.NumLeaves, cfg.NumSpines, shards)))
		if got != serial {
			t.Fatalf("shards=%d: FCT %v, serial %v", shards, got, serial)
		}
	}
}
