package topo

import (
	"testing"

	"abm/internal/bm"
	"abm/internal/cc"
	"abm/internal/sim"
	"abm/internal/units"
)

func smallConfig() Config {
	return Config{
		NumSpines:    2,
		NumLeaves:    2,
		HostsPerLeaf: 4,
		LinkRate:     10 * units.GigabitPerSec,
		LinkDelay:    10 * units.Microsecond,
	}
}

func TestTopologyWiring(t *testing.T) {
	s := sim.New(1)
	n := NewNetwork(s, smallConfig())
	if n.NumHosts() != 8 {
		t.Fatalf("hosts = %d, want 8", n.NumHosts())
	}
	if len(n.Leaves) != 2 || len(n.Spines) != 2 {
		t.Fatalf("switches = %d leaves, %d spines", len(n.Leaves), len(n.Spines))
	}
	if n.Leaves[0].NumPorts() != 6 {
		t.Fatalf("leaf ports = %d, want 4 hosts + 2 uplinks", n.Leaves[0].NumPorts())
	}
	if n.Spines[0].NumPorts() != 2 {
		t.Fatalf("spine ports = %d, want 2", n.Spines[0].NumPorts())
	}
	if n.BaseRTT() != 80*units.Microsecond {
		t.Fatalf("base RTT = %v, want 80us", n.BaseRTT())
	}
	if n.LeafOf(0) != 0 || n.LeafOf(5) != 1 {
		t.Fatal("leaf mapping broken")
	}
	if n.Hops(0, 1) != 2 || n.Hops(0, 5) != 4 {
		t.Fatal("hop counts broken")
	}
	n.Stop()
}

func TestSingleFlowIntraRack(t *testing.T) {
	s := sim.New(1)
	n := NewNetwork(s, smallConfig())
	done := false
	var fct units.Time
	size := 100 * units.Kilobyte
	s.At(0, func() {
		n.StartFlow(0, 1, size, 0, cc.NewReno(), func(now units.Time) {
			done = true
			fct = now
		})
	})
	s.RunUntil(100 * units.Millisecond)
	if !done {
		t.Fatal("intra-rack flow did not complete")
	}
	ideal := n.IdealFCT(0, 1, size)
	slowdown := float64(fct) / float64(ideal)
	// Alone in the fabric with slow start from IW=10: modest slowdown.
	if slowdown < 1 {
		t.Fatalf("slowdown %.2f below 1 (ideal=%v, fct=%v)", slowdown, ideal, fct)
	}
	if slowdown > 4 {
		t.Fatalf("slowdown %.2f too high for an idle fabric (ideal=%v, fct=%v)", slowdown, ideal, fct)
	}
	n.Stop()
}

func TestSingleFlowInterRack(t *testing.T) {
	s := sim.New(1)
	n := NewNetwork(s, smallConfig())
	done := false
	s.At(0, func() {
		n.StartFlow(0, 7, 50*units.Kilobyte, 0, cc.NewDCTCP(), func(units.Time) { done = true })
	})
	s.RunUntil(100 * units.Millisecond)
	if !done {
		t.Fatal("inter-rack flow did not complete")
	}
	if n.TotalDrops() != 0 {
		t.Fatalf("idle fabric dropped %d packets", n.TotalDrops())
	}
	n.Stop()
}

func TestAllCCAlgorithmsCompleteOverFabric(t *testing.T) {
	for _, name := range cc.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s := sim.New(2)
			cfg := smallConfig()
			cfg.EnableINT = true // powertcp needs it
			n := NewNetwork(s, cfg)
			f, err := cc.NewFactory(name)
			if err != nil {
				t.Fatal(err)
			}
			done := 0
			s.At(0, func() {
				for i := 0; i < 4; i++ {
					n.StartFlow(i, 4+i, 200*units.Kilobyte, 0, f(), func(units.Time) { done++ })
				}
			})
			s.RunUntil(200 * units.Millisecond)
			if done != 4 {
				t.Fatalf("%d/4 flows completed under %s", done, name)
			}
			n.Stop()
		})
	}
}

func TestECMPSpreadsFlows(t *testing.T) {
	s := sim.New(3)
	cfg := smallConfig()
	cfg.NumSpines = 4
	n := NewNetwork(s, cfg)
	done := 0
	s.At(0, func() {
		for i := 0; i < 16; i++ {
			src := i % 4
			dst := 4 + i%4
			n.StartFlow(src, dst, 10*units.Kilobyte, 0, cc.NewReno(), func(units.Time) { done++ })
		}
	})
	s.RunUntil(100 * units.Millisecond)
	if done != 16 {
		t.Fatalf("%d/16 flows completed", done)
	}
	// At least two spines must have carried traffic.
	used := 0
	for _, sp := range n.Spines {
		if sp.RxPkts > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("ECMP used %d spines, want >= 2", used)
	}
	n.Stop()
}

func TestIncastCausesDropsAndRecovery(t *testing.T) {
	s := sim.New(4)
	cfg := smallConfig()
	// Shallow buffer so the incast overflows.
	cfg.BufferSize = 50 * units.Kilobyte
	cfg.BMFactory = func() bm.Policy { return bm.DT{} }
	cfg.Alphas = []float64{0.5}
	n := NewNetwork(s, cfg)
	done := 0
	s.At(0, func() {
		// 7-to-1 incast into host 0.
		for i := 1; i < 8; i++ {
			n.StartFlow(i, 0, 60*units.Kilobyte, 0, cc.NewReno(), func(units.Time) { done++ })
		}
	})
	s.RunUntil(2 * units.Second)
	if done != 7 {
		t.Fatalf("%d/7 incast flows completed", done)
	}
	if n.TotalDrops() == 0 {
		t.Fatal("expected drops under 7:1 incast with a 50KB buffer")
	}
	n.Stop()
}

func TestFlowToSelfPanics(t *testing.T) {
	s := sim.New(1)
	n := NewNetwork(s, smallConfig())
	defer n.Stop()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.StartFlow(3, 3, 1000, 0, cc.NewReno(), nil)
}

func TestIdealFCTMonotone(t *testing.T) {
	s := sim.New(1)
	n := NewNetwork(s, smallConfig())
	defer n.Stop()
	small := n.IdealFCT(0, 5, 10*units.Kilobyte)
	big := n.IdealFCT(0, 5, 10*units.Megabyte)
	if small >= big {
		t.Fatal("ideal FCT must grow with size")
	}
	near := n.IdealFCT(0, 1, 10*units.Kilobyte)
	far := n.IdealFCT(0, 5, 10*units.Kilobyte)
	if near >= far {
		t.Fatal("inter-rack ideal FCT must exceed intra-rack")
	}
}

func TestBufferFor(t *testing.T) {
	// Trident2 leaf from §4.1: 9.6KB/port/Gbps * 40 ports * 10 Gbps.
	got := BufferFor(9.6, 40, 10*units.GigabitPerSec)
	want := units.ByteCount(9.6 * 1024 * 40 * 10)
	if got != want {
		t.Fatalf("BufferFor = %v, want %v", got, want)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, uint64) {
		s := sim.New(77)
		n := NewNetwork(s, smallConfig())
		s.At(0, func() {
			for i := 0; i < 6; i++ {
				n.StartFlow(i, (i+4)%8, 30*units.Kilobyte, 0, cc.NewCubic(), nil)
			}
		})
		s.RunUntil(50 * units.Millisecond)
		n.Stop()
		return n.TotalDrops(), s.Executed()
	}
	d1, e1 := run()
	d2, e2 := run()
	if d1 != d2 || e1 != e2 {
		t.Fatalf("runs diverged: drops %d/%d events %d/%d", d1, d2, e1, e2)
	}
}
