package topo

import (
	"fmt"
	"testing"

	"abm/internal/cc"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/units"
)

// allUp returns a fresh all-links-in-service vector for g.
func allUp(g *Graph) []bool {
	up := make([]bool, len(g.Links))
	for i := range up {
		up[i] = true
	}
	return up
}

// walkTable follows the forwarding tables hop by hop from src's edge
// switch until the packet reaches a host port, returning the switch
// path and whether it arrived at dst. A walk longer than the switch
// count is a loop.
func walkTable(g *Graph, rt *routeTables, src, dst int, flowID uint64) ([]int, bool) {
	pkt := &packet.Packet{FlowID: flowID, Dst: packet.NodeID(dst)}
	sw := g.GroupOfHost(src)
	var path []int
	for steps := 0; steps <= g.NumSwitches(); steps++ {
		path = append(path, sw)
		out := rt.routeFrom(sw, g.HostsPerEdge, pkt)
		if out < 0 {
			return path, false
		}
		ref := g.Peer(sw, out)
		if ref.ToHost {
			return path, int(ref.Peer) == dst
		}
		sw = int(ref.Peer)
	}
	return path, false
}

// bfsDist computes per-switch hop distance to dstGroup's edge switch
// over in-service links — an independent reference for the table
// builder's cost structure.
func bfsDist(g *Graph, up []bool, dstGroup int) []int {
	dist := make([]int, g.NumSwitches())
	for i := range dist {
		dist[i] = -1
	}
	dist[dstGroup] = 0
	queue := []int{dstGroup}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for p := 0; p < g.NumPorts(i); p++ {
			ref := g.Peer(i, p)
			if ref.ToHost || !up[g.LinkAt(i, p)] {
				continue
			}
			if j := int(ref.Peer); dist[j] < 0 {
				dist[j] = dist[i] + 1
				queue = append(queue, j)
			}
		}
	}
	return dist
}

// propertyGraphs is the shape zoo the routing properties run over.
func propertyGraphs() map[string]*Graph {
	return map[string]*Graph{
		"leafspine-2x2x4": LeafSpine(2, 2, 4),
		"leafspine-4x3x2": LeafSpine(4, 3, 2),
		"leafspine-1x2x2": LeafSpine(1, 2, 2),
		"fattree-k2":      FatTree(2),
		"fattree-k4":      FatTree(4),
	}
}

// TestRoutingTableProperties checks the table invariants on healthy
// graphs and after every possible single-link failure: every in-service
// next hop lies on a shortest surviving path (so ECMP sets are
// symmetric-cost), sets are exactly the minimal-cost port sets, every
// reachable destination group has a nonempty set, and all host pairs
// route loop-free (unreachable pairs black-hole instead of looping).
func TestRoutingTableProperties(t *testing.T) {
	for name, g := range propertyGraphs() {
		t.Run(name, func(t *testing.T) {
			rt := newRouteTables(g)
			states := [][]bool{allUp(g)}
			for l := range g.Links {
				up := allUp(g)
				up[l] = false
				states = append(states, up)
			}
			for si, up := range states {
				label := "healthy"
				if si > 0 {
					label = "down:" + g.LinkName(si-1)
				}
				rt.recompute(g, up)
				for dstGroup := 0; dstGroup < g.NumGroups(); dstGroup++ {
					dist := bfsDist(g, up, dstGroup)
					for i := 0; i < g.NumSwitches(); i++ {
						if g.TierOf(i) == 0 && i == dstGroup {
							continue
						}
						set := rt.tables[i].next[dstGroup]
						if dist[i] < 0 {
							if len(set) != 0 {
								t.Fatalf("%s %s: switch %s unreachable from group %d but has %d next hops",
									name, label, g.SwitchName(i), dstGroup, len(set))
							}
							continue
						}
						// The set must be exactly the ports whose live peer
						// is one step closer — minimal and symmetric-cost.
						var want []int32
						for p := 0; p < g.NumPorts(i); p++ {
							ref := g.Peer(i, p)
							if ref.ToHost || !up[g.LinkAt(i, p)] {
								continue
							}
							if dist[int(ref.Peer)] == dist[i]-1 {
								want = append(want, int32(p))
							}
						}
						if fmt.Sprint(set) != fmt.Sprint(want) {
							t.Fatalf("%s %s: switch %s -> group %d next hops %v, want minimal-cost %v",
								name, label, g.SwitchName(i), dstGroup, set, want)
						}
					}
				}
				// Loop-freedom and reachability for every host pair.
				for src := 0; src < g.NumHosts(); src++ {
					for dst := 0; dst < g.NumHosts(); dst++ {
						if src == dst {
							continue
						}
						path, ok := walkTable(g, rt, src, dst, uint64(src*1009+dst))
						reachable := bfsDist(g, up, g.GroupOfHost(dst))[g.GroupOfHost(src)] >= 0
						if ok != reachable {
							t.Fatalf("%s %s: host %d -> %d arrived=%v, reachability says %v (path %v)",
								name, label, src, dst, ok, reachable, path)
						}
						if len(path) > g.NumSwitches() {
							t.Fatalf("%s %s: host %d -> %d loops: %v", name, label, src, dst, path)
						}
					}
				}
			}
		})
	}
}

// TestHopsMatchWalkedPaths is the replacement for the old probe-walk
// routedHops: the table-derived Hops() must equal the switch count an
// actual packet traverses through the installed routers, for every host
// pair and several flow IDs (ECMP choices never change path length).
func TestHopsMatchWalkedPaths(t *testing.T) {
	for name, build := range map[string]func(*sim.Simulator) *Network{
		"leafspine": func(s *sim.Simulator) *Network {
			return NewNetwork(s, Config{NumSpines: 2, NumLeaves: 2, HostsPerLeaf: 4,
				LinkRate: 10 * units.GigabitPerSec, LinkDelay: 10 * units.Microsecond})
		},
		"fattree-k4": func(s *sim.Simulator) *Network {
			return NewNetwork(s, Config{Topo: FatTree(4),
				LinkRate: 10 * units.GigabitPerSec, LinkDelay: 10 * units.Microsecond})
		},
	} {
		t.Run(name, func(t *testing.T) {
			n := build(sim.New(1))
			defer n.Stop()
			g := n.G
			for src := 0; src < g.NumHosts(); src++ {
				for dst := 0; dst < g.NumHosts(); dst++ {
					if src == dst {
						continue
					}
					for _, flowID := range []uint64{1, 7, 1 << 40} {
						path, ok := walkTable(g, n.rt, src, dst, flowID)
						if !ok {
							t.Fatalf("host %d -> %d did not arrive (path %v)", src, dst, path)
						}
						// Hops counts link traversals: the walked switches
						// plus the destination host link.
						if len(path)+1 != n.Hops(src, dst) {
							t.Fatalf("host %d -> %d walked %d switches (%d links), Hops says %d",
								src, dst, len(path), len(path)+1, n.Hops(src, dst))
						}
					}
				}
			}
			// The worst pair bounds BaseRTT: 2 hops per direction plus
			// host links on both ends.
			worst := 0
			for src := 0; src < g.NumHosts(); src++ {
				for dst := 0; dst < g.NumHosts(); dst++ {
					if src != dst && n.Hops(src, dst) > worst {
						worst = n.Hops(src, dst)
					}
				}
			}
			if want := 2 * units.Time(worst) * n.Cfg.LinkDelay; n.BaseRTT() != want {
				t.Fatalf("BaseRTT %v, want %v from worst hops %d", n.BaseRTT(), want, worst)
			}
		})
	}
}

// TestLinkFailureRerouting drives a cross-fabric flow into a mid-run
// uplink failure: traffic re-converges onto the surviving paths and the
// flow still completes; failing every uplink of its rack black-holes it
// and the route-drop counter accounts for the loss.
func TestLinkFailureRerouting(t *testing.T) {
	s := sim.New(7)
	cfg := Config{NumSpines: 2, NumLeaves: 2, HostsPerLeaf: 4,
		LinkRate: 10 * units.GigabitPerSec, LinkDelay: 10 * units.Microsecond}
	n := NewNetwork(s, cfg)
	li, err := n.G.LinkIndex("leaf0-spine0")
	if err != nil {
		t.Fatal(err)
	}
	done := false
	s.At(0, func() {
		n.StartFlow(0, 5, 400*units.Kilobyte, 0, cc.NewCubic(), func(units.Time) { done = true })
	})
	s.At(50*units.Microsecond, func() {
		n.ApplyLinkEvent(LinkEvent{Link: li, State: LinkDown})
	})
	s.RunUntil(100 * units.Millisecond)
	n.Stop()
	s.Run()
	if !done {
		t.Fatal("flow did not survive a single uplink failure")
	}
	if n.LinkIsUp(li) {
		t.Fatal("failed link reported up")
	}

	// Second fabric: kill both of leaf0's uplinks mid-flow — the
	// destination group becomes unreachable and packets route-drop.
	s2 := sim.New(7)
	n2 := NewNetwork(s2, cfg)
	finished := false
	s2.At(0, func() {
		n2.StartFlow(0, 5, 400*units.Kilobyte, 0, cc.NewCubic(), func(units.Time) { finished = true })
	})
	s2.At(50*units.Microsecond, func() {
		for _, link := range []string{"leaf0-spine0", "leaf0-spine1"} {
			li, err := n2.G.LinkIndex(link)
			if err != nil {
				t.Fatal(err)
			}
			n2.ApplyLinkEvent(LinkEvent{Link: li, State: LinkDown})
		}
	})
	// A black-holed sender retransmits on RTO indefinitely, so only run
	// to a bounded horizon — never to queue exhaustion.
	s2.RunUntil(20 * units.Millisecond)
	var routeDrops int64
	for _, sw := range n2.Switches() {
		routeDrops += sw.RouteDrops
	}
	n2.Stop()
	if finished {
		t.Fatal("flow completed across a disconnected fabric")
	}
	if routeDrops == 0 {
		t.Fatal("no route drops counted on a black-holed path")
	}
	if n2.TotalDrops() < routeDrops {
		t.Fatalf("TotalDrops %d omits %d route drops", n2.TotalDrops(), routeDrops)
	}
}

// TestLinkRecoveryRestoresECMP fails and recovers a link and checks the
// next-hop sets return to their healthy form, including the degraded
// state leaving routing untouched.
func TestLinkRecoveryRestoresECMP(t *testing.T) {
	s := sim.New(3)
	cfg := Config{NumSpines: 4, NumLeaves: 2, HostsPerLeaf: 2,
		LinkRate: 10 * units.GigabitPerSec, LinkDelay: 10 * units.Microsecond}
	n := NewNetwork(s, cfg)
	defer n.Stop()
	healthy := fmt.Sprint(n.rt.tables[0].next[1])
	li, err := n.G.LinkIndex("leaf0-spine2")
	if err != nil {
		t.Fatal(err)
	}
	n.ApplyLinkEvent(LinkEvent{Link: li, State: LinkDegraded, Rate: units.GigabitPerSec})
	if got := fmt.Sprint(n.rt.tables[0].next[1]); got != healthy {
		t.Fatalf("degradation changed routing: %s != %s", got, healthy)
	}
	n.ApplyLinkEvent(LinkEvent{Link: li, State: LinkDown})
	if got := fmt.Sprint(n.rt.tables[0].next[1]); got == healthy {
		t.Fatal("failure did not prune the next-hop set")
	}
	n.ApplyLinkEvent(LinkEvent{Link: li, State: LinkUp})
	if got := fmt.Sprint(n.rt.tables[0].next[1]); got != healthy {
		t.Fatalf("recovery did not restore the healthy set: %s != %s", got, healthy)
	}
}
