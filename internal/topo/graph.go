package topo

import (
	"fmt"

	"abm/internal/packet"
)

// Graph is the pure shape of a fabric: typed switch nodes arranged in
// tiers, host attachment points, and the switch<->switch links between
// tiers. It carries no rates, buffers or simulators — the Network
// builder turns a Graph plus a Config into running devices — so shape
// constructors (LeafSpine, FatTree) and consumers (routing tables,
// partitions, oversubscription math) share one representation.
//
// Conventions, relied on throughout the package:
//   - Switch indices are tier-ascending: all tier-0 (edge) switches
//     first, then tier 1, and so on. Within a tier, indices follow the
//     constructor's natural order (pods left to right).
//   - Edge group g's switch is exactly switch index g, and its hosts
//     are the contiguous host IDs [g*HostsPerEdge, (g+1)*HostsPerEdge).
//   - Links list every switch<->switch wire once, lower tier first, in
//     the canonical construction order. The sharded builder registers
//     its mailboxes in this exact order, which makes the barrier merge
//     order a property of the shape alone (partition-invariant).
type Graph struct {
	// Shape names the constructor: "leafspine" or "fattree".
	Shape string
	// Tiers is the switch tier count (2 for leaf-spine, 3 for fat-tree).
	Tiers int
	// HostsPerEdge is the uniform host count under each edge switch.
	HostsPerEdge int

	// TierCount is the switch count per tier, edge first.
	TierCount []int

	tier  []int8          // per switch index: 0 = edge
	id    []packet.NodeID // per switch index: stable NodeID
	name  []string        // per switch index: "leaf0", "agg3", ...
	ports [][]PortRef     // per switch index, per port: the peer

	// linkOf maps (switch, port) to the index into Links, or -1 for
	// host-facing ports. Routing uses it to honor per-link up/down state.
	linkOf [][]int32

	// Links is every switch<->switch link in canonical wiring order.
	Links []GraphLink
}

// PortRef identifies what a switch port connects to.
type PortRef struct {
	ToHost bool
	Peer   int32 // host index when ToHost, switch index otherwise
	Port   int32 // peer's port index (unused for hosts: host NICs have one port)
}

// GraphLink is one switch<->switch wire, identified by its two ends.
// Lo is always the lower-tier side.
type GraphLink struct {
	Lo, LoPort int
	Hi, HiPort int
}

// NodeID tier bases: hosts are 0..N-1, tier-t switches count from
// (t+1)*10000. Leaf-spine uses the first two bases (leaf, spine);
// fat-tree uses all three (edge, agg, core).
const (
	leafIDBase  = 10000
	spineIDBase = 20000
	coreIDBase  = 30000
	tierIDStep  = 10000
)

// NumSwitches returns the total switch count.
func (g *Graph) NumSwitches() int { return len(g.tier) }

// NumHosts returns the total host count.
func (g *Graph) NumHosts() int { return g.TierCount[0] * g.HostsPerEdge }

// NumGroups returns the edge-group (rack/edge-switch) count.
func (g *Graph) NumGroups() int { return g.TierCount[0] }

// GroupOfHost returns the edge group of a host index.
func (g *Graph) GroupOfHost(h int) int { return h / g.HostsPerEdge }

// TierOf returns the tier of a switch index (0 = edge).
func (g *Graph) TierOf(i int) int { return int(g.tier[i]) }

// SwitchID returns the NodeID of a switch index.
func (g *Graph) SwitchID(i int) packet.NodeID { return g.id[i] }

// SwitchName returns the label of a switch index ("leaf0", "core2").
func (g *Graph) SwitchName(i int) string { return g.name[i] }

// NumPorts returns the port count of a switch index.
func (g *Graph) NumPorts(i int) int { return len(g.ports[i]) }

// Peer returns what (switch i, port p) connects to.
func (g *Graph) Peer(i, p int) PortRef { return g.ports[i][p] }

// LinkAt returns the Links index of (switch i, port p), or -1 for a
// host-facing port.
func (g *Graph) LinkAt(i, p int) int { return int(g.linkOf[i][p]) }

// MaxPorts returns the largest per-switch port count — the radix that
// sizes shared buffers from a KB-per-port spec.
func (g *Graph) MaxPorts() int {
	max := 0
	for i := range g.ports {
		if n := len(g.ports[i]); n > max {
			max = n
		}
	}
	return max
}

// LinkName renders a link as "<lo>-<hi>" ("leaf0-spine1", "agg2-core0"),
// the form scenario fault specs use.
func (g *Graph) LinkName(l int) string {
	lk := g.Links[l]
	return g.name[lk.Lo] + "-" + g.name[lk.Hi]
}

// LinkIndex resolves a "<a>-<b>" link name (either end first) to its
// Links index.
func (g *Graph) LinkIndex(name string) (int, error) {
	for l := range g.Links {
		lk := &g.Links[l]
		if n := g.name[lk.Lo] + "-" + g.name[lk.Hi]; n == name {
			return l, nil
		}
		if n := g.name[lk.Hi] + "-" + g.name[lk.Lo]; n == name {
			return l, nil
		}
	}
	return 0, fmt.Errorf("topo: fabric %s has no link %q", g.Shape, name)
}

// NodeNameOf renders any NodeID in this graph as a human-readable label
// ("host3", "leaf0", "agg1", "core2").
func (g *Graph) NodeNameOf(id packet.NodeID) string {
	if int(id) < leafIDBase {
		return fmt.Sprintf("host%d", int(id))
	}
	tier := int(id)/tierIDStep - 1
	idx := int(id) % tierIDStep
	if tier < len(g.TierCount) {
		base := 0
		for t := 0; t < tier; t++ {
			base += g.TierCount[t]
		}
		if idx < g.TierCount[tier] {
			return g.name[base+idx]
		}
	}
	return fmt.Sprintf("node%d", int(id))
}

// tierLabel names a tier for a shape: leaf-spine tiers are leaf/spine,
// three-tier Clos tiers are edge/agg/core.
func tierLabel(shape string, tier int) string {
	if shape == "leafspine" {
		return [...]string{"leaf", "spine"}[tier]
	}
	return [...]string{"edge", "agg", "core"}[tier]
}

// newGraph allocates the per-switch storage for a shape whose tier
// populations are known. Constructors then wire ports and links.
func newGraph(shape string, hostsPerEdge int, tierCount ...int) *Graph {
	g := &Graph{Shape: shape, Tiers: len(tierCount), HostsPerEdge: hostsPerEdge,
		TierCount: append([]int(nil), tierCount...)}
	total := 0
	for _, c := range tierCount {
		total += c
	}
	g.tier = make([]int8, 0, total)
	g.id = make([]packet.NodeID, 0, total)
	g.name = make([]string, 0, total)
	g.ports = make([][]PortRef, total)
	for t, c := range tierCount {
		for i := 0; i < c; i++ {
			g.tier = append(g.tier, int8(t))
			g.id = append(g.id, packet.NodeID((t+1)*tierIDStep+i))
			g.name = append(g.name, fmt.Sprintf("%s%d", tierLabel(shape, t), i))
		}
	}
	return g
}

// addLink appends one switch<->switch wire (lo the lower-tier side) to
// the canonical link list and records both port peers.
func (g *Graph) addLink(lo, loPort, hi, hiPort int) {
	g.ports[lo][loPort] = PortRef{Peer: int32(hi), Port: int32(hiPort)}
	g.ports[hi][hiPort] = PortRef{Peer: int32(lo), Port: int32(loPort)}
	g.Links = append(g.Links, GraphLink{Lo: lo, LoPort: loPort, Hi: hi, HiPort: hiPort})
}

// finish derives the (switch, port) -> link index map once all links
// are added, and attaches host port refs.
func (g *Graph) finish() *Graph {
	g.linkOf = make([][]int32, len(g.ports))
	for i := range g.ports {
		g.linkOf[i] = make([]int32, len(g.ports[i]))
		for p := range g.linkOf[i] {
			g.linkOf[i][p] = -1
		}
	}
	for l, lk := range g.Links {
		g.linkOf[lk.Lo][lk.LoPort] = int32(l)
		g.linkOf[lk.Hi][lk.HiPort] = int32(l)
	}
	// Hosts attach to edge switch g at ports [0, HostsPerEdge).
	for e := 0; e < g.TierCount[0]; e++ {
		for p := 0; p < g.HostsPerEdge; p++ {
			g.ports[e][p] = PortRef{ToHost: true, Peer: int32(e*g.HostsPerEdge + p)}
		}
	}
	return g
}

// LeafSpine builds the two-tier shape of the paper's evaluation (§4.1):
// every leaf connects to every spine. Leaf l's ports are its hosts
// first ([0, hostsPerLeaf)) then one uplink per spine; spine s's port l
// faces leaf l.
func LeafSpine(spines, leaves, hostsPerLeaf int) *Graph {
	if spines <= 0 || leaves <= 0 || hostsPerLeaf <= 0 {
		panic(fmt.Sprintf("topo: leaf-spine needs positive dimensions, got %dx%dx%d", spines, leaves, hostsPerLeaf))
	}
	g := newGraph("leafspine", hostsPerLeaf, leaves, spines)
	for l := 0; l < leaves; l++ {
		g.ports[l] = make([]PortRef, hostsPerLeaf+spines)
	}
	for s := 0; s < spines; s++ {
		g.ports[leaves+s] = make([]PortRef, leaves)
	}
	// The l x sp double loop is the canonical wiring (and, sharded,
	// mailbox registration) order the engine's merge relies on.
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			g.addLink(l, hostsPerLeaf+s, leaves+s, l)
		}
	}
	return g.finish()
}

// FatTree builds the three-tier k-ary fat-tree (Al-Fares et al.): k
// pods, each with k/2 edge and k/2 aggregation switches; (k/2)^2 core
// switches; k/2 hosts per edge switch; every switch has exactly k
// ports. Aggregation switch j of each pod connects to cores
// [j*k/2, (j+1)*k/2); core c's port p faces pod p. k must be even and
// at least 2; k=4 gives 16 hosts over 20 switches.
func FatTree(k int) *Graph {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: fat-tree arity must be even and >= 2, got %d", k))
	}
	half := k / 2
	edges, aggs, cores := k*half, k*half, half*half
	g := newGraph("fattree", half, edges, aggs, cores)
	for i := 0; i < edges+aggs; i++ {
		g.ports[i] = make([]PortRef, k)
	}
	for c := 0; c < cores; c++ {
		g.ports[edges+aggs+c] = make([]PortRef, k)
	}
	// Tier 0 <-> tier 1: edge switch (pod p, index i) up-port half+j
	// connects agg (pod p, index j) at its down-port i.
	for e := 0; e < edges; e++ {
		pod, i := e/half, e%half
		for j := 0; j < half; j++ {
			g.addLink(e, half+j, edges+pod*half+j, i)
		}
	}
	// Tier 1 <-> tier 2: agg (pod p, index j) up-port half+m connects
	// core j*half+m at its port p.
	for a := 0; a < aggs; a++ {
		pod, j := a/half, a%half
		for m := 0; m < half; m++ {
			g.addLink(edges+a, half+m, edges+aggs+j*half+m, pod)
		}
	}
	return g.finish()
}

// TierOversubscription returns the oversubscription ratio at each
// non-top tier: capacity entering tier-t switches from below over
// capacity leaving them upward. linkRate is the host access rate,
// uplinkRate the switch<->switch tier rate (pass linkRate for uniform
// fabrics). The edge entry (index 0) generalizes the classic
// hosts*rate / spines*uplink leaf ratio.
func (g *Graph) TierOversubscription(linkRate, uplinkRate float64) []float64 {
	if uplinkRate <= 0 {
		uplinkRate = linkRate
	}
	out := make([]float64, g.Tiers-1)
	base := 0
	for t := 0; t < g.Tiers-1; t++ {
		var down, up float64
		for i := base; i < base+g.TierCount[t]; i++ {
			for p := range g.ports[i] {
				ref := g.ports[i][p]
				switch {
				case ref.ToHost:
					down += linkRate
				case int(g.tier[ref.Peer]) < t:
					down += uplinkRate
				case int(g.tier[ref.Peer]) > t:
					up += uplinkRate
				}
			}
		}
		if up > 0 {
			out[t] = down / up
		}
		base += g.TierCount[t]
	}
	return out
}
