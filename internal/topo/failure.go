package topo

import (
	"fmt"
	"sort"

	"abm/internal/units"
)

// LinkState is the service state a LinkEvent moves a link to.
type LinkState int8

// Link states.
const (
	// LinkUp restores the link to service at its built rate.
	LinkUp LinkState = iota
	// LinkDown removes the link: routing re-converges by pruning it from
	// every next-hop set; packets already queued on its ports drain.
	LinkDown
	// LinkDegraded keeps the link in service at a reduced rate.
	LinkDegraded
)

func (s LinkState) String() string {
	switch s {
	case LinkUp:
		return "up"
	case LinkDown:
		return "down"
	case LinkDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("LinkState(%d)", int(s))
	}
}

// LinkEvent is one scheduled change to a fabric link's state. The run
// layer applies events at their times — as plain calendar events on the
// serial engine, at window barriers on the sharded engine (the only
// point where cross-shard routing state may safely change) — so a
// failure schedule is deterministic and shard-count-invariant.
type LinkEvent struct {
	At    units.Time
	Link  int // Graph.Links index
	State LinkState
	Rate  units.Rate // reduced rate, for LinkDegraded
}

// SortLinkEvents orders a schedule canonically: by time, then link,
// then state — the application order ties at one instant resolve to.
func SortLinkEvents(evs []LinkEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Link != b.Link {
			return a.Link < b.Link
		}
		return a.State < b.State
	})
}

// ApplyLinkEvent transitions one link's state and re-converges routing.
// It must run with the fabric quiescent: inline on the serial engine,
// or at a window barrier in sharded mode. Down/up transitions rebuild
// every forwarding table from the surviving graph (next-hop sets are
// pruned or regrown); degradation only changes the two port rates, so
// in-service routing is untouched.
func (n *Network) ApplyLinkEvent(ev LinkEvent) {
	if ev.Link < 0 || ev.Link >= len(n.G.Links) {
		panic(fmt.Sprintf("topo: link event for link %d outside fabric with %d links", ev.Link, len(n.G.Links)))
	}
	lk := &n.G.Links[ev.Link]
	lo := n.switches[lk.Lo].Port(lk.LoPort)
	hi := n.switches[lk.Hi].Port(lk.HiPort)
	switch ev.State {
	case LinkDown:
		if !n.linkUp[ev.Link] {
			return
		}
		n.linkUp[ev.Link] = false
		n.rt.recompute(n.G, n.linkUp)
	case LinkUp:
		lo.SetRate(n.linkRates[ev.Link][0])
		hi.SetRate(n.linkRates[ev.Link][1])
		if n.linkUp[ev.Link] {
			return
		}
		n.linkUp[ev.Link] = true
		n.rt.recompute(n.G, n.linkUp)
	case LinkDegraded:
		if ev.Rate <= 0 {
			panic(fmt.Sprintf("topo: degraded link %s needs a positive rate", n.G.LinkName(ev.Link)))
		}
		lo.SetRate(ev.Rate)
		hi.SetRate(ev.Rate)
	default:
		panic(fmt.Sprintf("topo: unknown link state %d", ev.State))
	}
}

// LinkIsUp reports whether a link is currently in service.
func (n *Network) LinkIsUp(link int) bool { return n.linkUp[link] }
