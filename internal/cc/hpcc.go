package cc

import (
	"abm/internal/packet"
	"abm/internal/units"
)

// HPCC is High Precision Congestion Control (Li et al., SIGCOMM 2019),
// cited by the paper (§3.4) as the in-band-telemetry transport whose
// switches already expose the drain-rate statistics ABM needs. Each ACK
// carries per-hop INT; the sender computes every hop's utilization
//
//	u_j = qlen_j/(b_j·T) + txRate_j/b_j
//
// and drives the window multiplicatively toward the target utilization
// η plus a small additive term:
//
//	W = Wc / (maxU/η) + W_AI
//
// with the reference window Wc resynchronized once per base RTT.
type HPCC struct {
	cfg Config

	cwnd     units.ByteCount
	refCwnd  units.ByteCount
	lastSync units.Time

	// Eta is the target utilization, 0.95 per the paper.
	Eta float64
	// AIBytes is the additive increase per update; defaults to MSS/2.
	AIBytes units.ByteCount

	prevHops []packet.HopINT
	maxU     float64 // latest utilization estimate
}

// NewHPCC returns an HPCC instance with the paper's constants.
func NewHPCC() *HPCC { return &HPCC{Eta: 0.95} }

// Name implements Algorithm.
func (h *HPCC) Name() string { return "hpcc" }

// Init implements Algorithm.
func (h *HPCC) Init(cfg Config) {
	h.cfg = cfg
	h.cwnd = cfg.BDP()
	if h.cwnd < cfg.MSS {
		h.cwnd = cfg.MSS
	}
	h.refCwnd = h.cwnd
	if h.AIBytes == 0 {
		h.AIBytes = cfg.MSS / 2
		if h.AIBytes < 1 {
			h.AIBytes = 1
		}
	}
	h.maxU = h.Eta
}

// Utilization exposes the latest max-hop utilization estimate.
func (h *HPCC) Utilization() float64 { return h.maxU }

// OnAck implements Algorithm.
func (h *HPCC) OnAck(ev AckEvent) {
	if len(ev.INT) == 0 {
		return
	}
	maxU := 0.0
	for i, hop := range ev.INT {
		if i >= len(h.prevHops) {
			h.prevHops = append(h.prevHops, hop)
			continue
		}
		prev := h.prevHops[i]
		h.prevHops[i] = hop
		dt := hop.TS - prev.TS
		if dt <= 0 || hop.Rate <= 0 {
			continue
		}
		txRate := float64(hop.TxBytes-prev.TxBytes) * 8 / dt.Seconds()
		bdpBits := float64(units.BDP(hop.Rate, h.cfg.BaseRTT).Bits())
		u := 0.0
		if bdpBits > 0 {
			u = float64(hop.QLen.Bits()) / bdpBits
		}
		u += txRate / float64(hop.Rate)
		if u > maxU {
			maxU = u
		}
	}
	if maxU <= 0 {
		return
	}
	// EWMA over roughly one RTT of ACKs.
	h.maxU = 0.9*h.maxU + 0.1*maxU

	w := float64(h.refCwnd)/(h.maxU/h.Eta) + float64(h.AIBytes)
	h.cwnd = clampWindow(units.ByteCount(w), h.cfg.MSS, h.maxCwnd())

	if ev.Now-h.lastSync >= h.cfg.BaseRTT {
		h.refCwnd = h.cwnd
		h.lastSync = ev.Now
	}
}

func (h *HPCC) maxCwnd() units.ByteCount {
	if h.cfg.MaxCwnd > 0 {
		return h.cfg.MaxCwnd
	}
	return 4 * h.cfg.BDP()
}

// OnDupAck implements Algorithm.
func (h *HPCC) OnDupAck(units.Time) {}

// OnRecovery implements Algorithm.
func (h *HPCC) OnRecovery(units.Time) {
	h.cwnd = clampWindow(h.cwnd/2, h.cfg.MSS, h.maxCwnd())
	h.refCwnd = h.cwnd
}

// OnTimeout implements Algorithm.
func (h *HPCC) OnTimeout(units.Time) {
	h.cwnd = h.cfg.MSS
	h.refCwnd = h.cwnd
}

// Window implements Algorithm.
func (h *HPCC) Window() units.ByteCount { return h.cwnd }

// PacingRate implements Algorithm: pace at cwnd per base RTT.
func (h *HPCC) PacingRate() units.Rate { return units.RateOf(h.cwnd, h.cfg.BaseRTT) }

// UsesECN implements Algorithm.
func (h *HPCC) UsesECN() bool { return false }

// NeedsINT implements Algorithm.
func (h *HPCC) NeedsINT() bool { return true }
