package cc

import (
	"abm/internal/units"
)

// DCTCP is Data Center TCP (Alizadeh et al. 2011): switches mark packets
// above threshold K; the sender tracks the fraction of marked bytes per
// RTT in an EWMA alpha and cuts the window by alpha/2 once per window
// when marks appear. Growth follows Reno.
type DCTCP struct {
	cfg      Config
	cwnd     units.ByteCount
	ssthresh units.ByteCount

	g     float64 // EWMA gain, 1/16 per the paper
	alpha float64

	ackedBytes   units.ByteCount // bytes acked in the current observation window
	markedBytes  units.ByteCount
	windowTarget units.ByteCount // cwnd snapshot when the window opened
	cutDone      bool            // window already reduced this observation window
}

// NewDCTCP returns a DCTCP instance with the paper's constants.
func NewDCTCP() *DCTCP { return &DCTCP{g: 1.0 / 16} }

// Name implements Algorithm.
func (d *DCTCP) Name() string { return "dctcp" }

// Init implements Algorithm.
func (d *DCTCP) Init(cfg Config) {
	d.cfg = cfg
	d.cwnd = cfg.initialWindow()
	d.ssthresh = cfg.MaxCwnd
	if d.ssthresh == 0 {
		d.ssthresh = 1 << 30
	}
	d.alpha = 1 // conservative start, as in the paper's implementation
	d.windowTarget = d.cwnd
}

// Alpha exposes the marking estimate for tests.
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnAck implements Algorithm.
func (d *DCTCP) OnAck(ev AckEvent) {
	d.ackedBytes += ev.AckedBytes
	if ev.ECNMarked {
		d.markedBytes += ev.AckedBytes
		// React once per window: cut by alpha/2 at the first mark.
		if !d.cutDone {
			d.cutDone = true
			d.cwnd = units.ByteCount(float64(d.cwnd) * (1 - d.alpha/2))
			d.cwnd = clampWindow(d.cwnd, d.cfg.MSS, d.cfg.MaxCwnd)
			d.ssthresh = d.cwnd
		}
	}

	// Close the observation window after the window-open snapshot's worth
	// of ACKs. (Snapshotting avoids chasing a growing cwnd in slow start.)
	if d.ackedBytes >= d.windowTarget {
		f := float64(d.markedBytes) / float64(d.ackedBytes)
		d.alpha = (1-d.g)*d.alpha + d.g*f
		d.ackedBytes, d.markedBytes = 0, 0
		d.cutDone = false
		d.windowTarget = d.cwnd
	}

	if ev.ECNMarked {
		return // no growth on marked ACKs
	}
	if d.cwnd < d.ssthresh {
		d.cwnd += ev.AckedBytes
	} else {
		inc := units.ByteCount(float64(d.cfg.MSS) * float64(ev.AckedBytes) / float64(d.cwnd))
		if inc < 1 {
			inc = 1
		}
		d.cwnd += inc
	}
	d.cwnd = clampWindow(d.cwnd, d.cfg.MSS, d.cfg.MaxCwnd)
}

// OnDupAck implements Algorithm.
func (d *DCTCP) OnDupAck(units.Time) {}

// OnRecovery implements Algorithm.
func (d *DCTCP) OnRecovery(units.Time) {
	d.ssthresh = clampWindow(d.cwnd/2, d.cfg.MSS, d.cfg.MaxCwnd)
	d.cwnd = d.ssthresh
}

// OnTimeout implements Algorithm.
func (d *DCTCP) OnTimeout(units.Time) {
	d.ssthresh = clampWindow(d.cwnd/2, d.cfg.MSS, d.cfg.MaxCwnd)
	d.cwnd = d.cfg.MSS
}

// Window implements Algorithm.
func (d *DCTCP) Window() units.ByteCount { return d.cwnd }

// SetWindow implements WindowRescaler: re-centers congestion avoidance
// on the new window; the alpha EWMA carries over unchanged.
func (d *DCTCP) SetWindow(w units.ByteCount) {
	d.cwnd = clampWindow(w, d.cfg.MSS, d.cfg.MaxCwnd)
	d.ssthresh = d.cwnd
	d.windowTarget = d.cwnd
}

// PacingRate implements Algorithm.
func (d *DCTCP) PacingRate() units.Rate { return 0 }

// UsesECN implements Algorithm.
func (d *DCTCP) UsesECN() bool { return true }

// NeedsINT implements Algorithm.
func (d *DCTCP) NeedsINT() bool { return false }
