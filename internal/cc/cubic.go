package cc

import (
	"math"

	"abm/internal/units"
)

// Cubic is TCP Cubic (Ha, Rhee, Xu 2008): window growth follows a cubic
// function of the time since the last decrease, anchored at the window
// where the loss happened. The paper's loss-based, buffer-hungry
// workhorse (§4.1 uses it for web-search traffic).
type Cubic struct {
	cfg      Config
	cwnd     units.ByteCount
	ssthresh units.ByteCount

	wMax       float64    // window before last reduction, in MSS
	k          float64    // time to regrow to wMax, seconds
	epochStart units.Time // start of the current growth epoch
	ackedBytes units.ByteCount
	rttEst     units.Time // latest RTT sample for the TCP-friendly region

	// Constants per the paper/RFC 8312.
	c    float64 // 0.4
	beta float64 // multiplicative decrease factor, 0.7
}

// NewCubic returns a Cubic instance with standard constants.
func NewCubic() *Cubic { return &Cubic{c: 0.4, beta: 0.7} }

// Name implements Algorithm.
func (cu *Cubic) Name() string { return "cubic" }

// Init implements Algorithm.
func (cu *Cubic) Init(cfg Config) {
	cu.cfg = cfg
	cu.cwnd = cfg.initialWindow()
	cu.ssthresh = cfg.MaxCwnd
	if cu.ssthresh == 0 {
		cu.ssthresh = 1 << 30
	}
}

// OnAck implements Algorithm.
func (cu *Cubic) OnAck(ev AckEvent) {
	if cu.cwnd < cu.ssthresh {
		cu.cwnd += ev.AckedBytes
		cu.cwnd = clampWindow(cu.cwnd, cu.cfg.MSS, cu.cfg.MaxCwnd)
		return
	}
	if cu.epochStart == 0 {
		cu.epochStart = ev.Now
		if cu.wMax < float64(cu.cwnd)/float64(cu.cfg.MSS) {
			cu.wMax = float64(cu.cwnd) / float64(cu.cfg.MSS)
			cu.k = 0
		} else {
			cu.k = math.Cbrt(cu.wMax * (1 - cu.beta) / cu.c)
		}
	}
	if ev.RTT > 0 {
		cu.rttEst = ev.RTT
	}
	t := (ev.Now - cu.epochStart).Seconds()
	target := cu.c*math.Pow(t-cu.k, 3) + cu.wMax // in MSS

	// TCP-friendly region (RFC 8312 §4.2): at datacenter RTTs the Reno
	// estimate dominates the cubic curve; without it Cubic would take
	// seconds to regrow a window the fabric refills in milliseconds.
	rtt := cu.rttEst
	if rtt <= 0 {
		rtt = cu.cfg.BaseRTT
	}
	if rtt > 0 {
		wEst := cu.wMax*cu.beta + 3*(1-cu.beta)/(1+cu.beta)*(t/rtt.Seconds())
		if wEst > target {
			target = wEst
		}
	}
	targetBytes := units.ByteCount(target * float64(cu.cfg.MSS))
	if targetBytes > cu.cwnd {
		// Approach the cubic target within one RTT's worth of ACKs.
		gap := targetBytes - cu.cwnd
		inc := units.ByteCount(float64(gap) * float64(ev.AckedBytes) / float64(cu.cwnd))
		if inc < 1 {
			inc = 1
		}
		cu.cwnd += inc
	} else {
		// Concave plateau: minimal growth keeps the flow probing.
		cu.ackedBytes += ev.AckedBytes
		if cu.ackedBytes >= 100*cu.cwnd {
			cu.cwnd += cu.cfg.MSS
			cu.ackedBytes = 0
		}
	}
	cu.cwnd = clampWindow(cu.cwnd, cu.cfg.MSS, cu.cfg.MaxCwnd)
}

// OnDupAck implements Algorithm.
func (cu *Cubic) OnDupAck(units.Time) {}

// OnRecovery implements Algorithm.
func (cu *Cubic) OnRecovery(units.Time) {
	cu.wMax = float64(cu.cwnd) / float64(cu.cfg.MSS)
	cu.cwnd = units.ByteCount(float64(cu.cwnd) * cu.beta)
	cu.cwnd = clampWindow(cu.cwnd, cu.cfg.MSS, cu.cfg.MaxCwnd)
	cu.ssthresh = cu.cwnd
	cu.epochStart = 0
}

// OnTimeout implements Algorithm.
func (cu *Cubic) OnTimeout(units.Time) {
	cu.wMax = float64(cu.cwnd) / float64(cu.cfg.MSS)
	cu.ssthresh = clampWindow(units.ByteCount(float64(cu.cwnd)*cu.beta), cu.cfg.MSS, cu.cfg.MaxCwnd)
	cu.cwnd = cu.cfg.MSS
	cu.epochStart = 0
}

// Window implements Algorithm.
func (cu *Cubic) Window() units.ByteCount { return cu.cwnd }

// SetWindow implements WindowRescaler: the new window becomes the cubic
// plateau (wMax) and a fresh growth epoch starts from it.
func (cu *Cubic) SetWindow(w units.ByteCount) {
	cu.cwnd = clampWindow(w, cu.cfg.MSS, cu.cfg.MaxCwnd)
	cu.ssthresh = cu.cwnd
	cu.wMax = float64(cu.cwnd) / float64(cu.cfg.MSS)
	cu.epochStart = 0
}

// PacingRate implements Algorithm.
func (cu *Cubic) PacingRate() units.Rate { return 0 }

// UsesECN implements Algorithm.
func (cu *Cubic) UsesECN() bool { return false }

// NeedsINT implements Algorithm.
func (cu *Cubic) NeedsINT() bool { return false }
