package cc

import (
	"testing"

	"abm/internal/units"
)

func TestHPCCShrinksAboveTargetUtilization(t *testing.T) {
	h := NewHPCC()
	h.Init(testCfg())
	before := h.Window()
	now := units.Time(0)
	var tx units.ByteCount
	var q units.ByteCount
	for i := 0; i < 300; i++ {
		now += 10 * units.Microsecond
		tx += 12_500 // full line rate
		q += 10_000  // growing queue: utilization > 1
		h.OnAck(intAck(now, q, tx, now))
	}
	if h.Window() >= before {
		t.Fatalf("window must shrink above eta: %v -> %v (U=%.2f)", before, h.Window(), h.Utilization())
	}
	if h.Utilization() <= h.Eta {
		t.Fatalf("utilization estimate %v should exceed eta", h.Utilization())
	}
}

func TestHPCCGrowsWhenUnderutilized(t *testing.T) {
	h := NewHPCC()
	h.Init(testCfg())
	h.cwnd /= 4
	h.refCwnd = h.cwnd
	before := h.Window()
	now := units.Time(0)
	var tx units.ByteCount
	for i := 0; i < 200; i++ {
		now += 10 * units.Microsecond
		tx += 3_000 // ~25% utilization, empty queue
		h.OnAck(intAck(now, 0, tx, now))
	}
	if h.Window() <= before {
		t.Fatalf("window must grow when underutilized: %v -> %v", before, h.Window())
	}
	if !h.NeedsINT() {
		t.Fatal("HPCC needs INT")
	}
}

func TestHPCCIgnoresAckWithoutINT(t *testing.T) {
	h := NewHPCC()
	h.Init(testCfg())
	w := h.Window()
	h.OnAck(AckEvent{AckedBytes: 1440})
	if h.Window() != w {
		t.Fatal("window moved without telemetry")
	}
}

func TestDCQCNCutsOnMark(t *testing.T) {
	d := NewDCQCN()
	d.Init(testCfg())
	before := d.Rate()
	d.OnAck(AckEvent{ECNMarked: true, AckedBytes: 1440, Now: units.Millisecond})
	if d.Rate() >= before {
		t.Fatalf("CNP must cut the rate: %v -> %v", before, d.Rate())
	}
	// Alpha rises toward 1 with persistent marks.
	a := d.Alpha()
	d.OnAck(AckEvent{ECNMarked: true, AckedBytes: 1440, Now: 2 * units.Millisecond})
	if d.Alpha() < a-1e-9 {
		t.Fatalf("alpha should not fall under marks: %v -> %v", a, d.Alpha())
	}
}

func TestDCQCNRecoversWithoutMarks(t *testing.T) {
	d := NewDCQCN()
	d.Init(testCfg())
	d.OnAck(AckEvent{ECNMarked: true, AckedBytes: 1440, Now: units.Millisecond})
	cut := d.Rate()
	now := units.Millisecond
	for i := 0; i < 100; i++ {
		now += units.Millisecond
		d.OnAck(AckEvent{AckedBytes: 1440, Now: now, RTT: 100 * units.Microsecond})
	}
	if d.Rate() <= cut {
		t.Fatalf("rate must recover without marks: %v -> %v", cut, d.Rate())
	}
	if d.Rate() > testCfg().LineRate {
		t.Fatalf("rate %v above line rate", d.Rate())
	}
	if d.Alpha() >= 1 {
		t.Fatalf("alpha should decay: %v", d.Alpha())
	}
	if !d.UsesECN() {
		t.Fatal("DCQCN uses ECN")
	}
}

func TestSwiftAdditiveIncreaseBelowTarget(t *testing.T) {
	sw := NewSwift()
	sw.Init(testCfg())
	before := sw.Window()
	var acked units.ByteCount
	now := units.Time(0)
	for acked < before {
		now += units.Microsecond
		sw.OnAck(AckEvent{AckedBytes: 1440, RTT: 90 * units.Microsecond, Now: now})
		acked += 1440
	}
	growth := sw.Window() - before
	// ~1 MSS per window of ACKs.
	if growth < 1000 || growth > 3000 {
		t.Fatalf("AI growth per RTT = %v, want ~1 MSS", growth)
	}
}

func TestSwiftDecreaseProportionalToOvershoot(t *testing.T) {
	sw := NewSwift()
	sw.Init(testCfg())
	before := sw.Window()
	sw.OnAck(AckEvent{AckedBytes: 1440, RTT: 400 * units.Microsecond, Now: units.Millisecond})
	mild := sw.Window()
	if mild >= before {
		t.Fatal("overshoot must decrease the window")
	}
	// A second decrease within the same RTT must not happen.
	sw.OnAck(AckEvent{AckedBytes: 1440, RTT: 400 * units.Microsecond, Now: units.Millisecond + units.Microsecond})
	if sw.Window() != mild+1440*0 && sw.Window() < mild {
		t.Fatalf("second decrease within one RTT: %v -> %v", mild, sw.Window())
	}
	// The per-event decrease is capped at MaxMDF.
	sw2 := NewSwift()
	sw2.Init(testCfg())
	w := sw2.Window()
	sw2.OnAck(AckEvent{AckedBytes: 1440, RTT: units.Second, Now: 10 * units.Millisecond})
	if sw2.Window() < units.ByteCount(float64(w)*(1-sw2.MaxMDF))-1 {
		t.Fatalf("decrease exceeded MaxMDF: %v -> %v", w, sw2.Window())
	}
}

func TestNewAlgorithmsCompleteOverFabricSmoke(t *testing.T) {
	// Covered end-to-end in topo tests via the registry; here just check
	// the registry wiring.
	for _, name := range []string{"hpcc", "dcqcn", "swift"} {
		f, err := NewFactory(name)
		if err != nil {
			t.Fatal(err)
		}
		a := f()
		a.Init(testCfg())
		if a.Window() < 1440 {
			t.Fatalf("%s window %v", name, a.Window())
		}
		a.OnTimeout(0)
		a.OnRecovery(0)
		if a.Window() < 1440 {
			t.Fatalf("%s post-loss window %v", name, a.Window())
		}
	}
}
