package cc

import (
	"testing"

	"abm/internal/packet"
	"abm/internal/units"
)

func testCfg() Config {
	return Config{
		MSS:      1440,
		BaseRTT:  80 * units.Microsecond,
		LineRate: 10 * units.GigabitPerSec,
		MaxCwnd:  10 * units.Megabyte,
	}
}

func TestConfigBDP(t *testing.T) {
	// 10 Gb/s * 80us = 100KB.
	if got := testCfg().BDP(); got != 100*units.Kilobyte {
		t.Fatalf("BDP = %v, want 100KB", got)
	}
}

func TestFactoryRegistry(t *testing.T) {
	for _, name := range Names() {
		f, err := NewFactory(name)
		if err != nil {
			t.Fatalf("NewFactory(%q): %v", name, err)
		}
		a := f()
		a.Init(testCfg())
		if a.Name() != name {
			t.Errorf("instance name %q != registry name %q", a.Name(), name)
		}
		if a.Window() < testCfg().MSS {
			t.Errorf("%s initial window %v below one MSS", name, a.Window())
		}
	}
	if _, err := NewFactory("bogus"); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestRenoSlowStartDoubles(t *testing.T) {
	r := NewReno()
	r.Init(testCfg())
	start := r.Window()
	// Ack a full window: slow start should double it.
	var acked units.ByteCount
	for acked < start {
		r.OnAck(AckEvent{AckedBytes: 1440, RTT: 100 * units.Microsecond})
		acked += 1440
	}
	if r.Window() < 2*start-1440 {
		t.Fatalf("slow start: %v -> %v, want ~2x", start, r.Window())
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno()
	r.Init(testCfg())
	r.OnRecovery(0) // forces ssthresh = cwnd/2, cwnd = ssthresh
	w := r.Window()
	var acked units.ByteCount
	for acked < w {
		r.OnAck(AckEvent{AckedBytes: 1440})
		acked += 1440
	}
	growth := r.Window() - w
	if growth < 1200 || growth > 1800 {
		t.Fatalf("CA growth per RTT = %v, want ~1 MSS", growth)
	}
}

func TestRenoTimeoutCollapses(t *testing.T) {
	r := NewReno()
	r.Init(testCfg())
	r.OnTimeout(0)
	if r.Window() != 1440 {
		t.Fatalf("post-timeout window = %v, want 1 MSS", r.Window())
	}
}

func TestCubicRecoveryFactor(t *testing.T) {
	c := NewCubic()
	c.Init(testCfg())
	// Grow a bit first.
	for i := 0; i < 100; i++ {
		c.OnAck(AckEvent{AckedBytes: 1440, Now: units.Time(i) * units.Microsecond})
	}
	before := c.Window()
	c.OnRecovery(0)
	after := c.Window()
	ratio := float64(after) / float64(before)
	if ratio < 0.65 || ratio > 0.75 {
		t.Fatalf("cubic decrease ratio = %.3f, want 0.7", ratio)
	}
}

func TestCubicRegrowsTowardWMax(t *testing.T) {
	c := NewCubic()
	c.Init(testCfg())
	for i := 0; i < 200; i++ {
		c.OnAck(AckEvent{AckedBytes: 1440, Now: units.Time(i) * 10 * units.Microsecond})
	}
	before := c.Window()
	c.OnRecovery(2 * units.Millisecond)
	now := 2 * units.Millisecond
	for i := 0; i < 3000; i++ {
		now += 10 * units.Microsecond
		c.OnAck(AckEvent{AckedBytes: 1440, Now: now, RTT: 100 * units.Microsecond})
	}
	if c.Window() < before*9/10 {
		t.Fatalf("cubic did not regrow: before %v, now %v", before, c.Window())
	}
}

func TestDCTCPAlphaConvergesToMarkingFraction(t *testing.T) {
	d := NewDCTCP()
	cfg := testCfg()
	cfg.MaxCwnd = 20 * 1440 // bound the window so observation windows stay short
	d.Init(cfg)
	// Constant 100% marking drives alpha -> 1; no marking drives -> 0.
	for i := 0; i < 20000; i++ {
		d.OnAck(AckEvent{AckedBytes: 1440, ECNMarked: false})
	}
	if d.Alpha() > 0.05 {
		t.Fatalf("alpha with no marks = %v, want ~0", d.Alpha())
	}
	for i := 0; i < 20000; i++ {
		d.OnAck(AckEvent{AckedBytes: 1440, ECNMarked: true})
	}
	if d.Alpha() < 0.9 {
		t.Fatalf("alpha with all marks = %v, want ~1", d.Alpha())
	}
}

func TestDCTCPCutsOncePerWindow(t *testing.T) {
	d := NewDCTCP()
	d.Init(testCfg())
	// Pin a fresh observation window on a large cwnd with alpha = 1.
	d.cwnd = 100 * 1440
	d.windowTarget = d.cwnd
	d.ackedBytes, d.markedBytes = 0, 0
	d.cutDone = false
	d.alpha = 1
	w := d.Window()
	// Two marked ACKs within the same observation window: only one cut.
	d.OnAck(AckEvent{AckedBytes: 1440, ECNMarked: true})
	afterFirst := d.Window()
	d.OnAck(AckEvent{AckedBytes: 1440, ECNMarked: true})
	afterSecond := d.Window()
	if afterFirst >= w {
		t.Fatalf("no cut on first mark: %v -> %v", w, afterFirst)
	}
	if afterSecond != afterFirst {
		t.Fatalf("second mark cut again within window: %v -> %v", afterFirst, afterSecond)
	}
	// With alpha=1 the cut halves the window.
	if ratio := float64(afterFirst) / float64(w); ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("cut ratio = %.2f, want 0.5 at alpha=1", ratio)
	}
}

func TestDCTCPGrowsWithoutMarks(t *testing.T) {
	d := NewDCTCP()
	d.Init(testCfg())
	w := d.Window()
	for i := 0; i < 50; i++ {
		d.OnAck(AckEvent{AckedBytes: 1440})
	}
	if d.Window() <= w {
		t.Fatal("DCTCP must grow without marks")
	}
	if !d.UsesECN() {
		t.Fatal("DCTCP uses ECN")
	}
}

func TestTimelyAdditiveIncreaseBelowTLow(t *testing.T) {
	tm := NewTimely()
	tm.Init(testCfg())
	tm.rate = units.GigabitPerSec
	tm.OnAck(AckEvent{RTT: 20 * units.Microsecond, Now: 0})
	before := tm.Rate()
	tm.OnAck(AckEvent{RTT: 20 * units.Microsecond, Now: units.Microsecond})
	if tm.Rate() != before+tm.AddStep {
		t.Fatalf("below TLow: %v -> %v, want +%v", before, tm.Rate(), tm.AddStep)
	}
}

func TestTimelyMultiplicativeDecreaseAboveTHigh(t *testing.T) {
	tm := NewTimely()
	tm.Init(testCfg())
	tm.OnAck(AckEvent{RTT: 100 * units.Microsecond})
	before := tm.Rate()
	tm.OnAck(AckEvent{RTT: 2 * units.Millisecond})
	if tm.Rate() >= before {
		t.Fatalf("above THigh rate must drop: %v -> %v", before, tm.Rate())
	}
}

func TestTimelyGradientDecrease(t *testing.T) {
	tm := NewTimely()
	tm.Init(testCfg())
	// Rising RTT inside [TLow, THigh]: positive gradient, rate drops.
	tm.OnAck(AckEvent{RTT: 100 * units.Microsecond})
	before := tm.Rate()
	tm.OnAck(AckEvent{RTT: 300 * units.Microsecond})
	if tm.Rate() >= before {
		t.Fatalf("positive gradient must decrease rate: %v -> %v", before, tm.Rate())
	}
}

func TestTimelyHAI(t *testing.T) {
	tm := NewTimely()
	tm.Init(testCfg())
	tm.rate = units.GigabitPerSec
	// Falling RTTs inside the band: negative gradient streak -> HAI.
	rtt := 400 * units.Microsecond
	for i := 0; i < 6; i++ {
		tm.OnAck(AckEvent{RTT: rtt})
		rtt -= 20 * units.Microsecond
	}
	before := tm.Rate()
	tm.OnAck(AckEvent{RTT: rtt})
	inc := tm.Rate() - before
	if inc != 5*tm.AddStep {
		t.Fatalf("HAI increment = %v, want %v", inc, 5*tm.AddStep)
	}
}

func TestTimelyRateBounds(t *testing.T) {
	tm := NewTimely()
	cfg := testCfg()
	tm.Init(cfg)
	for i := 0; i < 1000; i++ {
		tm.OnAck(AckEvent{RTT: 10 * units.Microsecond})
	}
	if tm.Rate() > cfg.LineRate {
		t.Fatalf("rate %v above line rate", tm.Rate())
	}
	for i := 0; i < 1000; i++ {
		tm.OnAck(AckEvent{RTT: 100 * units.Millisecond})
	}
	if tm.Rate() < tm.MinRate {
		t.Fatalf("rate %v below floor", tm.Rate())
	}
	if tm.PacingRate() != tm.Rate() {
		t.Fatal("pacing rate must equal TIMELY rate")
	}
}

func intAck(now units.Time, qlen units.ByteCount, txBytes units.ByteCount, ts units.Time) AckEvent {
	return AckEvent{
		Now:        now,
		AckedBytes: 1440,
		RTT:        100 * units.Microsecond,
		INT: []packet.HopINT{{
			QLen: qlen, TxBytes: txBytes, TS: ts, Rate: 10 * units.GigabitPerSec,
		}},
	}
}

func TestPowerTCPShrinksUnderHighPower(t *testing.T) {
	p := NewPowerTCP()
	p.Init(testCfg())
	before := p.Window()
	// Growing queue at full throughput: power above base.
	now := units.Time(0)
	var q units.ByteCount
	var tx units.ByteCount
	for i := 0; i < 200; i++ {
		now += 10 * units.Microsecond
		q += 20_000 // rapidly growing queue
		tx += 12_500
		p.OnAck(intAck(now, q, tx, now))
	}
	if p.Window() >= before {
		t.Fatalf("window must shrink under growing queue: %v -> %v", before, p.Window())
	}
	if p.NormPower() <= 1 {
		t.Fatalf("normalized power = %v, want > 1", p.NormPower())
	}
}

func TestPowerTCPGrowsWhenIdle(t *testing.T) {
	p := NewPowerTCP()
	p.Init(testCfg())
	p.cwnd /= 4
	p.prevCwnd = p.cwnd
	before := p.Window()
	now := units.Time(0)
	var tx units.ByteCount
	for i := 0; i < 100; i++ {
		now += 10 * units.Microsecond
		tx += 3000 // low throughput, empty queue: low power
		p.OnAck(intAck(now, 0, tx, now))
	}
	if p.Window() <= before {
		t.Fatalf("window must grow at low power: %v -> %v", before, p.Window())
	}
	if !p.NeedsINT() {
		t.Fatal("PowerTCP needs INT")
	}
}

func TestPowerTCPIgnoresAckWithoutINT(t *testing.T) {
	p := NewPowerTCP()
	p.Init(testCfg())
	w := p.Window()
	p.OnAck(AckEvent{AckedBytes: 1440, RTT: units.Microsecond})
	if p.Window() != w {
		t.Fatal("window changed without telemetry")
	}
}

func TestThetaPowerTCPShrinksOnRisingDelay(t *testing.T) {
	p := NewThetaPowerTCP()
	p.Init(testCfg())
	before := p.Window()
	now := units.Time(0)
	rtt := 80 * units.Microsecond
	for i := 0; i < 200; i++ {
		now += 10 * units.Microsecond
		rtt += 8 * units.Microsecond // steadily rising RTT
		p.OnAck(AckEvent{Now: now, RTT: rtt, AckedBytes: 1440})
	}
	if p.Window() >= before {
		t.Fatalf("rising delay must shrink window: %v -> %v", before, p.Window())
	}
}

func TestThetaPowerTCPGrowsAtBaseRTT(t *testing.T) {
	p := NewThetaPowerTCP()
	p.Init(testCfg())
	p.cwnd /= 4
	p.prevCwnd = p.cwnd
	before := p.Window()
	now := units.Time(0)
	for i := 0; i < 100; i++ {
		now += 10 * units.Microsecond
		p.OnAck(AckEvent{Now: now, RTT: 80 * units.Microsecond, AckedBytes: 1440})
	}
	if p.Window() <= before {
		t.Fatalf("base-RTT operation must grow window: %v -> %v", before, p.Window())
	}
}

func TestTimeoutBehaviours(t *testing.T) {
	algos := []Algorithm{NewReno(), NewCubic(), NewDCTCP(), NewPowerTCP(), NewThetaPowerTCP()}
	for _, a := range algos {
		a.Init(testCfg())
		a.OnTimeout(0)
		if a.Window() != 1440 {
			t.Errorf("%s post-timeout window = %v, want 1 MSS", a.Name(), a.Window())
		}
	}
	tm := NewTimely()
	tm.Init(testCfg())
	tm.OnTimeout(0)
	if tm.Rate() != tm.MinRate {
		t.Errorf("timely post-timeout rate = %v, want floor", tm.Rate())
	}
}

func TestRecoveryNeverBelowOneMSS(t *testing.T) {
	for _, a := range []Algorithm{NewReno(), NewCubic(), NewDCTCP(), NewPowerTCP(), NewThetaPowerTCP()} {
		a.Init(testCfg())
		for i := 0; i < 30; i++ {
			a.OnRecovery(units.Time(i))
		}
		if a.Window() < 1440 {
			t.Errorf("%s window %v below one MSS after repeated recovery", a.Name(), a.Window())
		}
	}
}
