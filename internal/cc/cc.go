// Package cc implements the end-host congestion-control algorithms the
// paper evaluates with and without ABM (§4.2): Cubic (loss-based), DCTCP
// (ECN-based), TIMELY (RTT-gradient, rate-based), PowerTCP (in-band
// telemetry) and θ-PowerTCP (timestamp-only), plus Reno as the textbook
// baseline. Algorithms are pure window/rate state machines; the transport
// layer drives them with ACK, duplicate-ACK, recovery and timeout events.
package cc

import (
	"fmt"
	"sort"

	"abm/internal/packet"
	"abm/internal/units"
)

// Config describes the connection to an algorithm at Init time.
type Config struct {
	MSS      units.ByteCount
	BaseRTT  units.Time // propagation RTT of the longest path (§4.1)
	LineRate units.Rate // host NIC bandwidth
	MaxCwnd  units.ByteCount

	// InitialWindow sets the starting congestion window. Zero selects
	// one bandwidth-delay product, the datacenter-transport convention
	// (flows may fill the first RTT unscheduled, §3.3); window-based
	// algorithms fall back to 10 MSS if the BDP is degenerate.
	InitialWindow units.ByteCount
}

// BDP returns the bandwidth-delay product for the configured path.
func (c Config) BDP() units.ByteCount { return c.LineRate.BytesOver(c.BaseRTT) }

// initialWindow resolves the starting window.
func (c Config) initialWindow() units.ByteCount {
	if c.InitialWindow > 0 {
		return c.InitialWindow
	}
	if bdp := c.BDP(); bdp >= 10*c.MSS {
		return bdp
	}
	return 10 * c.MSS
}

// AckEvent carries the per-ACK feedback the transport extracts.
type AckEvent struct {
	Now        units.Time
	AckedBytes units.ByteCount
	RTT        units.Time // measured from echo timestamp; 0 if unavailable
	ECNMarked  bool       // the acked segment carried CE
	INT        []packet.HopINT
}

// Algorithm is a congestion-control state machine. Window returns the
// current congestion window in bytes; PacingRate returns a non-zero rate
// for rate-based algorithms (the transport then paces packets and uses
// Window only as a cap).
type Algorithm interface {
	Name() string
	Init(cfg Config)
	OnAck(ev AckEvent)
	OnDupAck(now units.Time)
	// OnRecovery fires once when the transport enters fast recovery
	// (triple duplicate ACK): the multiplicative-decrease point.
	OnRecovery(now units.Time)
	OnTimeout(now units.Time)
	Window() units.ByteCount
	PacingRate() units.Rate
	// UsesECN reports whether the algorithm wants ECT set on its packets.
	UsesECN() bool
	// NeedsINT reports whether switches must stamp telemetry.
	NeedsINT() bool
}

// WindowRescaler is an optional interface: algorithms whose state can be
// consistently re-centered on an externally supplied congestion window
// implement it. The hybrid engine uses it when promoting a flow out of
// fluid mode — the window reconstructed from the fluid trajectory
// (fair-share rate x srtt) replaces the pre-demotion window and the
// algorithm re-enters congestion avoidance around it. Algorithms with
// internal state that cannot be re-centered (telemetry histories,
// rate-based pipelines) simply don't implement it and keep their frozen
// window.
type WindowRescaler interface {
	SetWindow(w units.ByteCount)
}

// Factory builds a fresh algorithm instance per flow.
type Factory func() Algorithm

// NewFactory resolves an algorithm name ("reno", "cubic", "dctcp",
// "timely", "powertcp", "theta-powertcp") to a factory.
func NewFactory(name string) (Factory, error) {
	switch name {
	case "reno":
		return func() Algorithm { return NewReno() }, nil
	case "cubic":
		return func() Algorithm { return NewCubic() }, nil
	case "dctcp":
		return func() Algorithm { return NewDCTCP() }, nil
	case "timely":
		return func() Algorithm { return NewTimely() }, nil
	case "powertcp":
		return func() Algorithm { return NewPowerTCP() }, nil
	case "theta-powertcp":
		return func() Algorithm { return NewThetaPowerTCP() }, nil
	case "hpcc":
		return func() Algorithm { return NewHPCC() }, nil
	case "dcqcn":
		return func() Algorithm { return NewDCQCN() }, nil
	case "swift":
		return func() Algorithm { return NewSwift() }, nil
	default:
		return nil, fmt.Errorf("cc: unknown algorithm %q (known: %v)", name, Names())
	}
}

// Names lists the recognized algorithm names.
func Names() []string {
	n := []string{"reno", "cubic", "dctcp", "timely", "powertcp", "theta-powertcp", "hpcc", "dcqcn", "swift"}
	sort.Strings(n)
	return n
}

// clampWindow bounds a window to [MSS, MaxCwnd].
func clampWindow(w, mss, max units.ByteCount) units.ByteCount {
	if w < mss {
		return mss
	}
	if max > 0 && w > max {
		return max
	}
	return w
}
