package cc

import (
	"abm/internal/units"
)

// Reno is TCP NewReno congestion control: slow start, additive increase
// of one MSS per RTT, multiplicative decrease by half. The baseline the
// other window-based algorithms build on.
type Reno struct {
	cfg      Config
	cwnd     units.ByteCount
	ssthresh units.ByteCount
}

// NewReno returns a Reno instance.
func NewReno() *Reno { return &Reno{} }

// Name implements Algorithm.
func (r *Reno) Name() string { return "reno" }

// Init implements Algorithm.
func (r *Reno) Init(cfg Config) {
	r.cfg = cfg
	r.cwnd = cfg.initialWindow()
	r.ssthresh = cfg.MaxCwnd
	if r.ssthresh == 0 {
		r.ssthresh = 1 << 30
	}
}

// OnAck implements Algorithm.
func (r *Reno) OnAck(ev AckEvent) {
	if r.cwnd < r.ssthresh {
		r.cwnd += ev.AckedBytes // slow start
	} else {
		// Congestion avoidance: +MSS per window's worth of ACKs.
		inc := units.ByteCount(float64(r.cfg.MSS) * float64(ev.AckedBytes) / float64(r.cwnd))
		if inc < 1 {
			inc = 1
		}
		r.cwnd += inc
	}
	r.cwnd = clampWindow(r.cwnd, r.cfg.MSS, r.cfg.MaxCwnd)
}

// OnDupAck implements Algorithm.
func (r *Reno) OnDupAck(units.Time) {}

// OnRecovery implements Algorithm.
func (r *Reno) OnRecovery(units.Time) {
	r.ssthresh = clampWindow(r.cwnd/2, r.cfg.MSS, r.cfg.MaxCwnd)
	r.cwnd = r.ssthresh
}

// OnTimeout implements Algorithm.
func (r *Reno) OnTimeout(units.Time) {
	r.ssthresh = clampWindow(r.cwnd/2, r.cfg.MSS, r.cfg.MaxCwnd)
	r.cwnd = r.cfg.MSS
}

// SetWindow implements WindowRescaler: the new window becomes the
// congestion-avoidance operating point (ssthresh = cwnd).
func (r *Reno) SetWindow(w units.ByteCount) {
	r.cwnd = clampWindow(w, r.cfg.MSS, r.cfg.MaxCwnd)
	r.ssthresh = r.cwnd
}

// Window implements Algorithm.
func (r *Reno) Window() units.ByteCount { return r.cwnd }

// PacingRate implements Algorithm.
func (r *Reno) PacingRate() units.Rate { return 0 }

// UsesECN implements Algorithm.
func (r *Reno) UsesECN() bool { return false }

// NeedsINT implements Algorithm.
func (r *Reno) NeedsINT() bool { return false }
