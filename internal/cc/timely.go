package cc

import (
	"abm/internal/units"
)

// Timely is TIMELY (Mittal et al., SIGCOMM 2015): rate-based congestion
// control driven by the RTT gradient. Below TLow the rate increases
// additively; above THigh it decreases multiplicatively; in between the
// normalized RTT gradient steers additive increase (with hyperactive
// increase after N consecutive negative gradients) or gradient-
// proportional decrease.
type Timely struct {
	cfg Config

	rate units.Rate

	prevRTT   units.Time
	rttDiff   float64 // EWMA of RTT differences, picoseconds
	negStreak int     // consecutive completion events with negative gradient

	// Parameters (SIGCOMM '15 values scaled to the simulated fabric).
	EWMAAlpha float64    // weight of the new RTT difference, default 0.875
	TLow      units.Time // default 50us
	THigh     units.Time // default 500us
	AddStep   units.Rate // additive increment delta, default 10 Mb/s
	Beta      float64    // multiplicative decrease factor, default 0.8
	HAICount  int        // negative-gradient streak enabling hyperactive increase, default 5
	MinRate   units.Rate // default 10 Mb/s
}

// NewTimely returns a TIMELY instance with the paper's parameters.
func NewTimely() *Timely {
	return &Timely{
		EWMAAlpha: 0.875,
		TLow:      50 * units.Microsecond,
		THigh:     500 * units.Microsecond,
		AddStep:   10 * units.MegabitPerSec,
		Beta:      0.8,
		HAICount:  5,
		MinRate:   10 * units.MegabitPerSec,
	}
}

// Name implements Algorithm.
func (t *Timely) Name() string { return "timely" }

// Init implements Algorithm.
func (t *Timely) Init(cfg Config) {
	t.cfg = cfg
	t.rate = cfg.LineRate // start at line rate, as TIMELY does
}

// Rate exposes the current sending rate for tests.
func (t *Timely) Rate() units.Rate { return t.rate }

// OnAck implements Algorithm: the per-completion-event rate update.
func (t *Timely) OnAck(ev AckEvent) {
	if ev.RTT <= 0 {
		return
	}
	if t.prevRTT == 0 {
		t.prevRTT = ev.RTT
		return
	}
	newDiff := float64(ev.RTT - t.prevRTT)
	t.prevRTT = ev.RTT
	t.rttDiff = (1-t.EWMAAlpha)*t.rttDiff + t.EWMAAlpha*newDiff
	gradient := t.rttDiff / float64(t.cfg.BaseRTT)

	switch {
	case ev.RTT < t.TLow:
		t.negStreak = 0
		t.setRate(t.rate + t.AddStep)
	case ev.RTT > t.THigh:
		t.negStreak = 0
		factor := 1 - t.Beta*(1-float64(t.THigh)/float64(ev.RTT))
		t.setRate(units.Rate(float64(t.rate) * factor))
	case gradient <= 0:
		t.negStreak++
		n := units.Rate(1)
		if t.negStreak >= t.HAICount {
			n = 5
		}
		t.setRate(t.rate + n*t.AddStep)
	default:
		t.negStreak = 0
		factor := 1 - t.Beta*gradient
		if factor < 0.1 {
			factor = 0.1
		}
		t.setRate(units.Rate(float64(t.rate) * factor))
	}
}

func (t *Timely) setRate(r units.Rate) {
	if r < t.MinRate {
		r = t.MinRate
	}
	if r > t.cfg.LineRate {
		r = t.cfg.LineRate
	}
	t.rate = r
}

// OnDupAck implements Algorithm.
func (t *Timely) OnDupAck(units.Time) {}

// OnRecovery implements Algorithm: loss means severe congestion.
func (t *Timely) OnRecovery(units.Time) {
	t.setRate(units.Rate(float64(t.rate) * 0.5))
}

// OnTimeout implements Algorithm.
func (t *Timely) OnTimeout(units.Time) {
	t.setRate(t.MinRate)
}

// Window implements Algorithm: TIMELY caps in-flight data at two BDPs so
// pacing, not the window, is the control.
func (t *Timely) Window() units.ByteCount {
	w := 2 * t.cfg.BDP()
	return clampWindow(w, t.cfg.MSS, t.cfg.MaxCwnd)
}

// PacingRate implements Algorithm.
func (t *Timely) PacingRate() units.Rate { return t.rate }

// UsesECN implements Algorithm.
func (t *Timely) UsesECN() bool { return false }

// NeedsINT implements Algorithm.
func (t *Timely) NeedsINT() bool { return false }
