package cc

import (
	"abm/internal/packet"
	"abm/internal/units"
)

// PowerTCP (Addanki, Michel, Schmid — NSDI 2022) reacts to "power": the
// product of current (arrival rate λ = queue gradient + throughput) and
// voltage (queue length + BDP) at the bottleneck hop, read from in-band
// telemetry. Normalized power Γ above 1 means the hop operates beyond
// its base power b²·baseRTT and the window contracts; below 1 it grows.
//
//	cwnd = γ·(cwnd_old/Γ + β) + (1−γ)·cwnd
//
// where cwnd_old is the window one RTT ago and β is the additive term.
type PowerTCP struct {
	cfg Config

	cwnd     units.ByteCount
	prevCwnd units.ByteCount // window ~one RTT ago
	lastSnap units.Time

	gamma float64         // EWMA/update weight, 0.9 per the paper
	beta  units.ByteCount // additive increase, defaults to MSS/2

	prevHops  []packet.HopINT // previous telemetry per hop index
	smoothed  float64         // smoothed normalized power
	havePower bool
}

// NewPowerTCP returns a PowerTCP instance with the paper's constants.
func NewPowerTCP() *PowerTCP { return &PowerTCP{gamma: 0.9} }

// Name implements Algorithm.
func (p *PowerTCP) Name() string { return "powertcp" }

// Init implements Algorithm.
func (p *PowerTCP) Init(cfg Config) {
	p.cfg = cfg
	p.cwnd = cfg.BDP()
	if p.cwnd < cfg.MSS {
		p.cwnd = cfg.MSS
	}
	p.prevCwnd = p.cwnd
	if p.beta == 0 {
		p.beta = cfg.MSS / 2
		if p.beta < 1 {
			p.beta = 1
		}
	}
	p.smoothed = 1
}

// NormPower exposes the smoothed normalized power for tests.
func (p *PowerTCP) NormPower() float64 { return p.smoothed }

// OnAck implements Algorithm.
func (p *PowerTCP) OnAck(ev AckEvent) {
	if len(ev.INT) == 0 {
		return
	}
	norm := p.normPower(ev)
	p.updateWindow(norm, ev.Now)
}

// normPower computes the maximum normalized power across hops and
// smooths it over the base RTT.
func (p *PowerTCP) normPower(ev AckEvent) float64 {
	maxNorm := 0.0
	var dtUsed units.Time
	for i, hop := range ev.INT {
		if i >= len(p.prevHops) {
			p.prevHops = append(p.prevHops, hop)
			continue
		}
		prev := p.prevHops[i]
		p.prevHops[i] = hop
		dt := hop.TS - prev.TS
		if dt <= 0 {
			continue
		}
		qDot := float64(hop.QLen-prev.QLen) * 8 / dt.Seconds() // bits/s, may be negative
		txRate := float64(hop.TxBytes-prev.TxBytes) * 8 / dt.Seconds()
		lambda := qDot + txRate // current
		if lambda < 0 {
			lambda = 0
		}
		bdp := float64(units.BDP(hop.Rate, p.cfg.BaseRTT).Bits())
		voltage := float64(hop.QLen.Bits()) + bdp
		power := lambda * voltage
		base := float64(hop.Rate) * bdp // b² · baseRTT in bit units
		if base <= 0 {
			continue
		}
		if n := power / base; n > maxNorm {
			maxNorm = n
			dtUsed = dt
		}
	}
	if maxNorm == 0 {
		return p.smoothed
	}
	// Smooth over one base RTT: Γ ← (Γ·(τ−Δt) + Γ'·Δt)/τ.
	tau := p.cfg.BaseRTT
	if dtUsed > tau {
		dtUsed = tau
	}
	p.smoothed = (p.smoothed*float64(tau-dtUsed) + maxNorm*float64(dtUsed)) / float64(tau)
	p.havePower = true
	return p.smoothed
}

// updateWindow applies the PowerTCP window law.
func (p *PowerTCP) updateWindow(norm float64, now units.Time) {
	if norm < 0.05 {
		norm = 0.05 // avoid explosion on near-idle paths
	}
	newCwnd := p.gamma*(float64(p.prevCwnd)/norm+float64(p.beta)) + (1-p.gamma)*float64(p.cwnd)
	p.cwnd = clampWindow(units.ByteCount(newCwnd), p.cfg.MSS, p.maxCwnd())
	// Snapshot the window once per base RTT as "cwnd_old".
	if now-p.lastSnap >= p.cfg.BaseRTT {
		p.prevCwnd = p.cwnd
		p.lastSnap = now
	}
}

func (p *PowerTCP) maxCwnd() units.ByteCount {
	if p.cfg.MaxCwnd > 0 {
		return p.cfg.MaxCwnd
	}
	return 4 * p.cfg.BDP()
}

// OnDupAck implements Algorithm.
func (p *PowerTCP) OnDupAck(units.Time) {}

// OnRecovery implements Algorithm.
func (p *PowerTCP) OnRecovery(units.Time) {
	p.cwnd = clampWindow(p.cwnd/2, p.cfg.MSS, p.maxCwnd())
	p.prevCwnd = p.cwnd
}

// OnTimeout implements Algorithm.
func (p *PowerTCP) OnTimeout(units.Time) {
	p.cwnd = p.cfg.MSS
	p.prevCwnd = p.cwnd
}

// Window implements Algorithm.
func (p *PowerTCP) Window() units.ByteCount { return p.cwnd }

// PacingRate implements Algorithm: pace at cwnd/baseRTT to smooth bursts,
// as the paper's implementation does.
func (p *PowerTCP) PacingRate() units.Rate {
	return units.RateOf(p.cwnd, p.cfg.BaseRTT)
}

// UsesECN implements Algorithm.
func (p *PowerTCP) UsesECN() bool { return false }

// NeedsINT implements Algorithm.
func (p *PowerTCP) NeedsINT() bool { return true }
