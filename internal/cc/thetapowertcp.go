package cc

import (
	"abm/internal/units"
)

// ThetaPowerTCP is θ-PowerTCP, the telemetry-free variant of PowerTCP
// (NSDI 2022 §5): it reconstructs power from timestamps only. With
// queueing delay θ = RTT − baseRTT, the bottleneck current is
// λ ≈ b·(θ̇ + 1) and the voltage ν ≈ b·(θ + baseRTT), so normalized
// power reduces to
//
//	Γ = (θ̇ + 1) · (θ + baseRTT) / baseRTT
//
// The window law is identical to PowerTCP's. The paper's evaluation uses
// θ-PowerTCP as one of the three isolated priorities in Figure 8.
type ThetaPowerTCP struct {
	cfg Config

	cwnd     units.ByteCount
	prevCwnd units.ByteCount
	lastSnap units.Time

	gamma float64
	beta  units.ByteCount

	prevTheta units.Time
	prevNow   units.Time
	smoothed  float64
}

// NewThetaPowerTCP returns a θ-PowerTCP instance with the paper's
// constants.
func NewThetaPowerTCP() *ThetaPowerTCP { return &ThetaPowerTCP{gamma: 0.9} }

// Name implements Algorithm.
func (p *ThetaPowerTCP) Name() string { return "theta-powertcp" }

// Init implements Algorithm.
func (p *ThetaPowerTCP) Init(cfg Config) {
	p.cfg = cfg
	p.cwnd = cfg.BDP()
	if p.cwnd < cfg.MSS {
		p.cwnd = cfg.MSS
	}
	p.prevCwnd = p.cwnd
	if p.beta == 0 {
		p.beta = cfg.MSS / 2
		if p.beta < 1 {
			p.beta = 1
		}
	}
	p.smoothed = 1
}

// NormPower exposes the smoothed normalized power for tests.
func (p *ThetaPowerTCP) NormPower() float64 { return p.smoothed }

// OnAck implements Algorithm.
func (p *ThetaPowerTCP) OnAck(ev AckEvent) {
	if ev.RTT <= 0 {
		return
	}
	theta := ev.RTT - p.cfg.BaseRTT
	if theta < 0 {
		theta = 0
	}
	if p.prevNow == 0 {
		p.prevNow, p.prevTheta = ev.Now, theta
		return
	}
	dt := ev.Now - p.prevNow
	if dt <= 0 {
		return
	}
	thetaDot := float64(theta-p.prevTheta) / float64(dt)
	p.prevNow, p.prevTheta = ev.Now, theta

	norm := (thetaDot + 1) * float64(theta+p.cfg.BaseRTT) / float64(p.cfg.BaseRTT)
	if norm < 0.05 {
		norm = 0.05
	}
	// Smooth over one base RTT.
	tau := p.cfg.BaseRTT
	if dt > tau {
		dt = tau
	}
	p.smoothed = (p.smoothed*float64(tau-dt) + norm*float64(dt)) / float64(tau)

	newCwnd := p.gamma*(float64(p.prevCwnd)/p.smoothed+float64(p.beta)) + (1-p.gamma)*float64(p.cwnd)
	p.cwnd = clampWindow(units.ByteCount(newCwnd), p.cfg.MSS, p.maxCwnd())
	if ev.Now-p.lastSnap >= p.cfg.BaseRTT {
		p.prevCwnd = p.cwnd
		p.lastSnap = ev.Now
	}
}

func (p *ThetaPowerTCP) maxCwnd() units.ByteCount {
	if p.cfg.MaxCwnd > 0 {
		return p.cfg.MaxCwnd
	}
	return 4 * p.cfg.BDP()
}

// OnDupAck implements Algorithm.
func (p *ThetaPowerTCP) OnDupAck(units.Time) {}

// OnRecovery implements Algorithm.
func (p *ThetaPowerTCP) OnRecovery(units.Time) {
	p.cwnd = clampWindow(p.cwnd/2, p.cfg.MSS, p.maxCwnd())
	p.prevCwnd = p.cwnd
}

// OnTimeout implements Algorithm.
func (p *ThetaPowerTCP) OnTimeout(units.Time) {
	p.cwnd = p.cfg.MSS
	p.prevCwnd = p.cwnd
}

// Window implements Algorithm.
func (p *ThetaPowerTCP) Window() units.ByteCount { return p.cwnd }

// PacingRate implements Algorithm.
func (p *ThetaPowerTCP) PacingRate() units.Rate {
	return units.RateOf(p.cwnd, p.cfg.BaseRTT)
}

// UsesECN implements Algorithm.
func (p *ThetaPowerTCP) UsesECN() bool { return false }

// NeedsINT implements Algorithm.
func (p *ThetaPowerTCP) NeedsINT() bool { return false }
