package cc

import (
	"abm/internal/units"
)

// Swift (Kumar et al., SIGCOMM 2020) is Google's delay-based congestion
// control, cited in the paper's related work: additive increase while
// the measured RTT sits below a target delay, multiplicative decrease
// proportional to the overshoot — with at most one decrease per RTT.
type Swift struct {
	cfg Config

	cwnd units.ByteCount

	// TargetDelay is the end-to-end delay target; defaults to
	// baseRTT + 50us.
	TargetDelay units.Time
	// AI is the additive increase in MSS per RTT (1.0 per the paper).
	AI float64
	// Beta is the multiplicative decrease scale (0.8).
	Beta float64
	// MaxMDF caps a single decrease (0.5).
	MaxMDF float64

	lastDecrease units.Time
}

// NewSwift returns a Swift instance with the paper's constants.
func NewSwift() *Swift { return &Swift{AI: 1, Beta: 0.8, MaxMDF: 0.5} }

// Name implements Algorithm.
func (sw *Swift) Name() string { return "swift" }

// Init implements Algorithm.
func (sw *Swift) Init(cfg Config) {
	sw.cfg = cfg
	sw.cwnd = cfg.BDP()
	if sw.cwnd < cfg.MSS {
		sw.cwnd = cfg.MSS
	}
	if sw.TargetDelay <= 0 {
		sw.TargetDelay = cfg.BaseRTT + 50*units.Microsecond
	}
}

// OnAck implements Algorithm.
func (sw *Swift) OnAck(ev AckEvent) {
	if ev.RTT <= 0 {
		return
	}
	if ev.RTT < sw.TargetDelay {
		// Additive increase: AI MSS per RTT, spread across the window.
		inc := sw.AI * float64(sw.cfg.MSS) * float64(ev.AckedBytes) / float64(sw.cwnd)
		sw.cwnd += units.ByteCount(inc)
		if inc < 1 {
			sw.cwnd++
		}
	} else if ev.Now-sw.lastDecrease >= ev.RTT {
		// Multiplicative decrease proportional to overshoot, at most
		// once per RTT.
		over := float64(ev.RTT-sw.TargetDelay) / float64(ev.RTT)
		factor := 1 - sw.Beta*over
		if factor < 1-sw.MaxMDF {
			factor = 1 - sw.MaxMDF
		}
		sw.cwnd = units.ByteCount(float64(sw.cwnd) * factor)
		sw.lastDecrease = ev.Now
	}
	sw.cwnd = clampWindow(sw.cwnd, sw.cfg.MSS, sw.maxCwnd())
}

func (sw *Swift) maxCwnd() units.ByteCount {
	if sw.cfg.MaxCwnd > 0 {
		return sw.cfg.MaxCwnd
	}
	return 4 * sw.cfg.BDP()
}

// OnDupAck implements Algorithm.
func (sw *Swift) OnDupAck(units.Time) {}

// OnRecovery implements Algorithm.
func (sw *Swift) OnRecovery(now units.Time) {
	sw.cwnd = clampWindow(units.ByteCount(float64(sw.cwnd)*(1-sw.MaxMDF)), sw.cfg.MSS, sw.maxCwnd())
	sw.lastDecrease = now
}

// OnTimeout implements Algorithm.
func (sw *Swift) OnTimeout(units.Time) {
	sw.cwnd = sw.cfg.MSS
}

// Window implements Algorithm.
func (sw *Swift) Window() units.ByteCount { return sw.cwnd }

// SetWindow implements WindowRescaler.
func (sw *Swift) SetWindow(w units.ByteCount) {
	sw.cwnd = clampWindow(w, sw.cfg.MSS, sw.maxCwnd())
}

// PacingRate implements Algorithm.
func (sw *Swift) PacingRate() units.Rate { return 0 }

// UsesECN implements Algorithm.
func (sw *Swift) UsesECN() bool { return false }

// NeedsINT implements Algorithm.
func (sw *Swift) NeedsINT() bool { return false }
