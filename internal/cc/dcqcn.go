package cc

import (
	"abm/internal/units"
)

// DCQCN is Datacenter QCN (Zhu et al., SIGCOMM 2015), the ECN-based
// rate control for RDMA deployments cited in the paper's related work.
// Marked ACKs play the role of CNPs: the rate cuts by alpha/2 and alpha
// rises; without marks alpha decays and the rate recovers in stages —
// fast recovery (binary search back to the target rate) followed by
// additive increase of the target.
type DCQCN struct {
	cfg Config

	targetRate  units.Rate
	currentRate units.Rate
	alpha       float64

	// G is the alpha gain (1/256 per the paper).
	G float64
	// RAI is the additive increase step; defaults to 40 Mb/s.
	RAI units.Rate
	// RecoveryRounds is the number of fast-recovery iterations before
	// additive increase begins (5 per the paper).
	RecoveryRounds int

	// IncreaseTimer is the period between rate-increase events;
	// defaults to 4 base RTTs (scaled from the paper's 55us timer).
	IncreaseTimer units.Time

	rounds       int // completed increase rounds since the last cut
	lastIncrease units.Time
	lastAlphaDec units.Time
}

// NewDCQCN returns a DCQCN instance with the paper's constants scaled
// to the simulated fabric.
func NewDCQCN() *DCQCN {
	return &DCQCN{G: 1.0 / 256, RAI: 40 * units.MegabitPerSec, RecoveryRounds: 5}
}

// Name implements Algorithm.
func (d *DCQCN) Name() string { return "dcqcn" }

// Init implements Algorithm.
func (d *DCQCN) Init(cfg Config) {
	d.cfg = cfg
	d.targetRate = cfg.LineRate
	d.currentRate = cfg.LineRate
	d.alpha = 1
	if d.IncreaseTimer <= 0 {
		d.IncreaseTimer = 4 * cfg.BaseRTT
	}
}

// Rate exposes the current sending rate.
func (d *DCQCN) Rate() units.Rate { return d.currentRate }

// Alpha exposes the congestion estimate.
func (d *DCQCN) Alpha() float64 { return d.alpha }

// OnAck implements Algorithm.
func (d *DCQCN) OnAck(ev AckEvent) {
	if ev.ECNMarked {
		// CNP: cut the rate, raise alpha, restart recovery.
		d.targetRate = d.currentRate
		d.currentRate = units.Rate(float64(d.currentRate) * (1 - d.alpha/2))
		if d.currentRate < 10*units.MegabitPerSec {
			d.currentRate = 10 * units.MegabitPerSec
		}
		d.alpha = (1-d.G)*d.alpha + d.G
		d.rounds = 0
		d.lastIncrease = ev.Now
		return
	}
	// Alpha decays on mark-free RTTs.
	if ev.Now-d.lastAlphaDec >= d.cfg.BaseRTT {
		d.alpha = (1 - d.G) * d.alpha
		d.lastAlphaDec = ev.Now
	}
	// Periodic rate increase.
	if ev.Now-d.lastIncrease < d.IncreaseTimer {
		return
	}
	d.lastIncrease = ev.Now
	d.rounds++
	if d.rounds > d.RecoveryRounds {
		// Additive increase phase: push the target up.
		d.targetRate += d.RAI
		if d.targetRate > d.cfg.LineRate {
			d.targetRate = d.cfg.LineRate
		}
	}
	// Binary-search the current rate toward the target.
	d.currentRate = (d.currentRate + d.targetRate) / 2
	if d.currentRate > d.cfg.LineRate {
		d.currentRate = d.cfg.LineRate
	}
}

// OnDupAck implements Algorithm.
func (d *DCQCN) OnDupAck(units.Time) {}

// OnRecovery implements Algorithm: RDMA fabrics are lossless, but under
// our lossy switches a loss is a strong congestion signal.
func (d *DCQCN) OnRecovery(units.Time) {
	d.targetRate = d.currentRate
	d.currentRate /= 2
	d.rounds = 0
}

// OnTimeout implements Algorithm.
func (d *DCQCN) OnTimeout(units.Time) {
	d.targetRate = d.currentRate
	d.currentRate = 10 * units.MegabitPerSec
	d.rounds = 0
}

// Window implements Algorithm: two BDPs, pacing is the control.
func (d *DCQCN) Window() units.ByteCount {
	return clampWindow(2*d.cfg.BDP(), d.cfg.MSS, d.cfg.MaxCwnd)
}

// PacingRate implements Algorithm.
func (d *DCQCN) PacingRate() units.Rate { return d.currentRate }

// UsesECN implements Algorithm.
func (d *DCQCN) UsesECN() bool { return true }

// NeedsINT implements Algorithm.
func (d *DCQCN) NeedsINT() bool { return false }
