// Package prof wires the standard profiling and tracing outputs into
// the command-line tools: CPU profile, heap profile, and runtime trace.
// The simulator's hot loop is allocation-free by design, so these are
// the instruments used to keep it that way — see DESIGN.md ("Event
// engine internals") for the benchmarking workflow they support.
package prof

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the standard profiling destinations. Register them with
// AddFlags before flag.Parse, then bracket main's work between Start
// and the stop function it returns.
type Flags struct {
	CPUProfile   string
	MemProfile   string
	Trace        string
	BlockProfile string
	MutexProfile string
}

// AddFlags registers -cpuprofile, -memprofile, -trace, -blockprofile
// and -mutexprofile on the default flag set. The block and mutex
// profiles are the instruments for the parallel engine's barrier and
// mailbox contention; they carry a sampling cost, so the runtime rates
// are only raised when the flags are set.
func (f *Flags) AddFlags() {
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
	flag.StringVar(&f.BlockProfile, "blockprofile", "", "write a goroutine blocking profile to this file on exit")
	flag.StringVar(&f.MutexProfile, "mutexprofile", "", "write a mutex contention profile to this file on exit")
}

// Start begins the requested CPU profile and trace. It returns a stop
// function that must run before the process exits (defer it in main);
// the stop function also writes the heap profile, after a GC so the
// numbers reflect live steady-state memory rather than garbage.
func (f *Flags) Start() (stop func(), err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
	}
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	if f.Trace != "" {
		traceFile, err = os.Create(f.Trace)
		if err != nil {
			cleanup()
			return nil, err
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	if f.BlockProfile != "" {
		runtime.SetBlockProfileRate(1)
	}
	if f.MutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	return func() {
		cleanup()
		if f.MemProfile != "" {
			mf, err := os.Create(f.MemProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			mf.Close()
		}
		writeLookup(f.BlockProfile, "block")
		writeLookup(f.MutexProfile, "mutex")
	}, nil
}

// writeLookup dumps one of the runtime's named profiles to path.
func writeLookup(path, profile string) {
	if path == "" {
		return
	}
	p := pprof.Lookup(profile)
	if p == nil {
		fmt.Fprintf(os.Stderr, "%sprofile: runtime profile missing\n", profile)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%sprofile: %v\n", profile, err)
		return
	}
	if err := p.WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "%sprofile: %v\n", profile, err)
	}
	f.Close()
}
