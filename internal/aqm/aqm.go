// Package aqm implements active queue management: the per-queue schemes
// (Eq. 4's Φ term) that mark, drop, or trim packets the buffer-management
// stage has already admitted. It provides the ECN threshold marking used
// by DCTCP (K), RED, Codel, PIE, and a cut-payload trimming scheme —
// covering the taxonomy in the paper's Figure 1.
package aqm

import (
	"math/rand"

	"abm/internal/units"
)

// Decision is an AQM verdict on an arriving packet.
type Decision uint8

// Verdicts. Trim removes the payload but still enqueues the header so
// the receiver can signal the loss without a timeout.
const (
	Enqueue Decision = iota
	Mark
	Drop
	Trim
)

// String renders a decision for logs and tests.
func (d Decision) String() string {
	switch d {
	case Enqueue:
		return "enqueue"
	case Mark:
		return "mark"
	case Drop:
		return "drop"
	case Trim:
		return "trim"
	default:
		return "unknown"
	}
}

// Ctx is the queue state offered to an AQM on each packet arrival.
type Ctx struct {
	QueueLen   units.ByteCount // current queue occupancy (before this packet)
	PacketSize units.ByteCount
	DrainRate  units.Rate // current drain rate estimate of the queue
	ECNCapable bool       // packet carries ECT
	Now        units.Time
}

// Policy decides the fate of packets arriving at one queue. Policies are
// per-queue instances: the device creates one per (port, priority).
type Policy interface {
	Name() string
	OnArrival(ctx *Ctx, rng *rand.Rand) Decision
}

// DequeueHook is implemented by sojourn-time-based policies (Codel) that
// decide drops when packets leave the queue. OnDequeue receives the
// packet's sojourn time and returns true if it must be dropped instead
// of transmitted.
type DequeueHook interface {
	OnDequeue(sojourn units.Time, now units.Time) bool
}

// Factory creates a fresh per-queue policy instance.
type Factory func() Policy

// None admits everything: BM-only operation, the device default.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

// OnArrival implements Policy.
func (None) OnArrival(*Ctx, *rand.Rand) Decision { return Enqueue }

// ECNThreshold marks ECN-capable packets whenever the instantaneous
// queue length is at or above K — the single-threshold RED configuration
// DCTCP prescribes (marking threshold K, §4.1: K = 65 packets).
type ECNThreshold struct {
	// K is the marking threshold in bytes.
	K units.ByteCount
	// DropNonECT drops packets without ECT above K instead of admitting
	// them (RED-like behaviour for non-ECN traffic). Default false.
	DropNonECT bool
}

// Name implements Policy.
func (e ECNThreshold) Name() string { return "ecn" }

// OnArrival implements Policy.
func (e ECNThreshold) OnArrival(ctx *Ctx, _ *rand.Rand) Decision {
	if ctx.QueueLen < e.K {
		return Enqueue
	}
	if ctx.ECNCapable {
		return Mark
	}
	if e.DropNonECT {
		return Drop
	}
	return Enqueue
}

// CutPayload is the trimming scheme from the taxonomy (Figure 1,
// "Cut Payload / Trimming-based"): above the trim threshold the payload
// is removed and only the header is queued, so receivers learn about the
// loss at line rate instead of via a retransmission timeout.
type CutPayload struct {
	// TrimAbove is the queue length beyond which payloads are trimmed.
	TrimAbove units.ByteCount
}

// Name implements Policy.
func (c CutPayload) Name() string { return "cut-payload" }

// OnArrival implements Policy.
func (c CutPayload) OnArrival(ctx *Ctx, _ *rand.Rand) Decision {
	if ctx.QueueLen >= c.TrimAbove && ctx.PacketSize > 0 {
		return Trim
	}
	return Enqueue
}
