package aqm

import (
	"math/rand"

	"abm/internal/units"
)

// ARED is Adaptive RED (Floyd, Gummadi, Shenker 2001), the "ARED" point
// in the paper's Figure 1 taxonomy: plain RED whose MaxP self-tunes so
// the average queue tracks the midpoint between MinTh and MaxTh —
// additive increase when the average runs high, multiplicative decrease
// when it runs low.
type ARED struct {
	RED

	// Interval is the adaptation period; defaults to 1ms (scaled to
	// datacenter RTTs from the paper's 0.5s WAN setting).
	Interval units.Time
	// IncrementP and DecreaseFactor are the adaptation steps (defaults
	// 0.01 and 0.9 per the paper).
	IncrementP     float64
	DecreaseFactor float64

	lastAdapt units.Time
}

// NewARED returns an adaptive RED instance.
func NewARED(minTh, maxTh units.ByteCount) *ARED {
	a := &ARED{RED: *NewRED(minTh, maxTh)}
	a.Interval = units.Millisecond
	a.IncrementP = 0.01
	a.DecreaseFactor = 0.9
	a.MaxP = 0.1
	return a
}

// Name implements Policy.
func (a *ARED) Name() string { return "ared" }

// OnArrival implements Policy: RED with periodic MaxP adaptation.
func (a *ARED) OnArrival(ctx *Ctx, rng *rand.Rand) Decision {
	if ctx.Now-a.lastAdapt >= a.Interval {
		a.lastAdapt = ctx.Now
		target := float64(a.MinTh+a.MaxTh) / 2
		switch {
		case a.Avg() > target && a.MaxP < 0.5:
			a.MaxP += a.IncrementP
		case a.Avg() < target && a.MaxP > 0.01:
			a.MaxP *= a.DecreaseFactor
		}
	}
	return a.RED.OnArrival(ctx, rng)
}
