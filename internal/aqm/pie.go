package aqm

import (
	"math/rand"

	"abm/internal/units"
)

// PIE is the Proportional Integral controller Enhanced AQM (Pan et al.
// 2013), the other delay-based scheme in Figure 1. It estimates queueing
// delay as qlen/drainRate (the paper's Φ = K * mu/b form) and updates a
// drop probability every TUpdate with a PI control law on the deviation
// from DelayTarget.
type PIE struct {
	DelayTarget units.Time // reference delay, default 1ms
	TUpdate     units.Time // control period, default 1ms
	AlphaGain   float64    // proportional gain, default 0.125
	BetaGain    float64    // integral gain, default 1.25

	dropProb   float64
	prevDelay  units.Time
	lastUpdate units.Time
	started    bool
}

// NewPIE returns a PIE instance with datacenter-scale defaults for zero
// fields.
func NewPIE(target units.Time) *PIE {
	p := &PIE{DelayTarget: target}
	if p.DelayTarget <= 0 {
		p.DelayTarget = units.Millisecond
	}
	p.TUpdate = units.Millisecond
	p.AlphaGain = 0.125
	p.BetaGain = 1.25
	return p
}

// Name implements Policy.
func (p *PIE) Name() string { return "pie" }

// DropProb exposes the current drop probability for tests.
func (p *PIE) DropProb() float64 { return p.dropProb }

// OnArrival implements Policy.
func (p *PIE) OnArrival(ctx *Ctx, rng *rand.Rand) Decision {
	delay := estimateDelay(ctx)
	p.maybeUpdate(delay, ctx.Now)
	if p.dropProb <= 0 {
		return Enqueue
	}
	// PIE bypasses control when the queue is nearly empty.
	if ctx.QueueLen <= 2*ctx.PacketSize {
		return Enqueue
	}
	if rng.Float64() < p.dropProb {
		if ctx.ECNCapable && p.dropProb < 0.1 {
			return Mark
		}
		return Drop
	}
	return Enqueue
}

func (p *PIE) maybeUpdate(delay units.Time, now units.Time) {
	if p.started && now-p.lastUpdate < p.TUpdate {
		return
	}
	if !p.started {
		p.started = true
		p.prevDelay = delay
		p.lastUpdate = now
		return
	}
	p.lastUpdate = now
	dp := p.AlphaGain*(delay-p.DelayTarget).Seconds() +
		p.BetaGain*(delay-p.prevDelay).Seconds()
	// Scale the adjustment down while the probability is small, as the
	// RFC 8033 auto-tuning does, to avoid overshoot.
	switch {
	case p.dropProb < 0.000001:
		dp /= 2048
	case p.dropProb < 0.00001:
		dp /= 512
	case p.dropProb < 0.0001:
		dp /= 128
	case p.dropProb < 0.001:
		dp /= 32
	case p.dropProb < 0.01:
		dp /= 8
	case p.dropProb < 0.1:
		dp /= 2
	}
	p.dropProb += dp
	if p.dropProb < 0 {
		p.dropProb = 0
	}
	if p.dropProb > 1 {
		p.dropProb = 1
	}
	p.prevDelay = delay
}

func estimateDelay(ctx *Ctx) units.Time {
	if ctx.DrainRate <= 0 {
		return 0
	}
	return ctx.DrainRate.TxTime(ctx.QueueLen)
}
