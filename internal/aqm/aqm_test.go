package aqm

import (
	"math/rand"
	"testing"

	"abm/internal/units"
)

func TestDecisionString(t *testing.T) {
	want := map[Decision]string{Enqueue: "enqueue", Mark: "mark", Drop: "drop", Trim: "trim", Decision(99): "unknown"}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("Decision(%d).String() = %q, want %q", d, d.String(), s)
		}
	}
}

func TestNone(t *testing.T) {
	p := None{}
	if got := p.OnArrival(&Ctx{QueueLen: 1 << 40}, nil); got != Enqueue {
		t.Fatalf("None = %v, want enqueue", got)
	}
}

func TestECNThreshold(t *testing.T) {
	e := ECNThreshold{K: 10_000}
	tests := []struct {
		qlen units.ByteCount
		ect  bool
		want Decision
	}{
		{0, true, Enqueue},
		{9_999, true, Enqueue},
		{10_000, true, Mark},
		{50_000, true, Mark},
		{10_000, false, Enqueue}, // non-ECT passes by default
	}
	for _, tc := range tests {
		got := e.OnArrival(&Ctx{QueueLen: tc.qlen, ECNCapable: tc.ect}, nil)
		if got != tc.want {
			t.Errorf("qlen=%v ect=%v: got %v, want %v", tc.qlen, tc.ect, got, tc.want)
		}
	}
	e.DropNonECT = true
	if got := e.OnArrival(&Ctx{QueueLen: 10_000, ECNCapable: false}, nil); got != Drop {
		t.Fatalf("DropNonECT: got %v, want drop", got)
	}
}

func TestCutPayload(t *testing.T) {
	c := CutPayload{TrimAbove: 5_000}
	if got := c.OnArrival(&Ctx{QueueLen: 1_000, PacketSize: 1500}, nil); got != Enqueue {
		t.Fatalf("below threshold: %v", got)
	}
	if got := c.OnArrival(&Ctx{QueueLen: 6_000, PacketSize: 1500}, nil); got != Trim {
		t.Fatalf("above threshold: %v", got)
	}
	// Header-only packets are never trimmed again.
	if got := c.OnArrival(&Ctx{QueueLen: 6_000, PacketSize: 0}, nil); got != Enqueue {
		t.Fatalf("header-only: %v", got)
	}
}

func TestREDBelowMinAlwaysEnqueues(t *testing.T) {
	r := NewRED(30_000, 90_000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if got := r.OnArrival(&Ctx{QueueLen: 10_000, ECNCapable: true}, rng); got != Enqueue {
			t.Fatalf("below MinTh must enqueue, got %v", got)
		}
	}
}

func TestREDAboveMaxAlwaysCongests(t *testing.T) {
	r := NewRED(10_000, 20_000)
	rng := rand.New(rand.NewSource(1))
	// Saturate the EWMA at a high queue.
	var d Decision
	for i := 0; i < 5000; i++ {
		d = r.OnArrival(&Ctx{QueueLen: 200_000, ECNCapable: true}, rng)
	}
	if d != Mark {
		t.Fatalf("ECT above MaxTh must mark, got %v", d)
	}
	for i := 0; i < 10; i++ {
		d = r.OnArrival(&Ctx{QueueLen: 200_000, ECNCapable: false}, rng)
	}
	if d != Drop {
		t.Fatalf("non-ECT above MaxTh must drop, got %v", d)
	}
}

func TestREDIntermediateMarksProbabilistically(t *testing.T) {
	r := NewRED(10_000, 100_000)
	r.Wq = 1 // track instantaneous queue for the test
	rng := rand.New(rand.NewSource(2))
	marks := 0
	const n = 20_000
	for i := 0; i < n; i++ {
		if r.OnArrival(&Ctx{QueueLen: 55_000, ECNCapable: true}, rng) == Mark {
			marks++
		}
	}
	if marks == 0 || marks == n {
		t.Fatalf("mid-queue marking should be probabilistic, got %d/%d", marks, n)
	}
}

func TestREDDefaults(t *testing.T) {
	r := NewRED(0, 0)
	if r.MinTh <= 0 || r.MaxTh <= r.MinTh || r.MaxP <= 0 || r.Wq <= 0 {
		t.Fatalf("defaults not filled: %+v", r)
	}
}

func TestCodelStaysQuietUnderTarget(t *testing.T) {
	c := NewCodel(units.Millisecond, 10*units.Millisecond)
	now := units.Time(0)
	for i := 0; i < 1000; i++ {
		now += 100 * units.Microsecond
		if c.OnDequeue(500*units.Microsecond, now) {
			t.Fatal("codel dropped below target")
		}
	}
	if c.Dropping() {
		t.Fatal("codel should not be in dropping state")
	}
}

func TestCodelDropsAfterSustainedDelay(t *testing.T) {
	c := NewCodel(units.Millisecond, 10*units.Millisecond)
	now := units.Time(0)
	drops := 0
	for i := 0; i < 3000; i++ {
		now += 100 * units.Microsecond
		if c.OnDequeue(5*units.Millisecond, now) {
			drops++
		}
	}
	if drops == 0 {
		t.Fatal("codel never dropped under sustained high sojourn")
	}
	if !c.Dropping() {
		t.Fatal("codel should be in dropping state")
	}
	// Drop rate must accelerate: later half has more drops than the first.
	// (The control law shrinks the inter-drop gap as count grows.)
}

func TestCodelRecovers(t *testing.T) {
	c := NewCodel(units.Millisecond, 10*units.Millisecond)
	now := units.Time(0)
	for i := 0; i < 3000; i++ {
		now += 100 * units.Microsecond
		c.OnDequeue(5*units.Millisecond, now)
	}
	// Sojourn falls below target: dropping state must clear.
	now += 100 * units.Microsecond
	if c.OnDequeue(100*units.Microsecond, now) {
		t.Fatal("dropped a below-target packet")
	}
	if c.Dropping() {
		t.Fatal("codel should exit dropping state")
	}
}

func TestPIEProbabilityRisesAboveTarget(t *testing.T) {
	p := NewPIE(units.Millisecond)
	rng := rand.New(rand.NewSource(3))
	now := units.Time(0)
	// Queue implies 10ms delay at 1Gb/s: 1.25MB.
	for i := 0; i < 100; i++ {
		now += units.Millisecond
		p.OnArrival(&Ctx{
			QueueLen:   1_250_000,
			PacketSize: 1500,
			DrainRate:  units.GigabitPerSec,
			Now:        now,
		}, rng)
	}
	if p.DropProb() <= 0 {
		t.Fatal("PIE drop probability should rise when delay exceeds target")
	}
}

func TestPIEProbabilityFallsWhenIdle(t *testing.T) {
	p := NewPIE(units.Millisecond)
	rng := rand.New(rand.NewSource(3))
	now := units.Time(0)
	for i := 0; i < 200; i++ {
		now += units.Millisecond
		p.OnArrival(&Ctx{QueueLen: 2_500_000, PacketSize: 1500, DrainRate: units.GigabitPerSec, Now: now}, rng)
	}
	high := p.DropProb()
	for i := 0; i < 2000; i++ {
		now += units.Millisecond
		p.OnArrival(&Ctx{QueueLen: 0, PacketSize: 1500, DrainRate: units.GigabitPerSec, Now: now}, rng)
	}
	if p.DropProb() >= high {
		t.Fatalf("PIE probability should decay when delay is zero: %v -> %v", high, p.DropProb())
	}
}

func TestPIESmallQueueBypass(t *testing.T) {
	p := NewPIE(units.Millisecond)
	p.dropProb = 1 // force max probability
	p.started = true
	rng := rand.New(rand.NewSource(3))
	got := p.OnArrival(&Ctx{QueueLen: 1500, PacketSize: 1500, DrainRate: units.GigabitPerSec}, rng)
	if got != Enqueue {
		t.Fatalf("tiny queue must bypass PIE, got %v", got)
	}
}

func TestEstimateDelay(t *testing.T) {
	d := estimateDelay(&Ctx{QueueLen: 1_250_000, DrainRate: units.GigabitPerSec})
	if d != 10*units.Millisecond {
		t.Fatalf("delay estimate = %v, want 10ms", d)
	}
	if estimateDelay(&Ctx{QueueLen: 100}) != 0 {
		t.Fatal("zero drain rate must estimate zero delay")
	}
}
