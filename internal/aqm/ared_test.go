package aqm

import (
	"math/rand"
	"testing"

	"abm/internal/units"
)

func TestAREDMaxPRisesUnderSustainedQueue(t *testing.T) {
	a := NewARED(10_000, 100_000)
	a.Wq = 1 // instantaneous avg for the test
	rng := rand.New(rand.NewSource(1))
	before := a.MaxP
	now := units.Time(0)
	for i := 0; i < 50; i++ {
		now += units.Millisecond
		a.OnArrival(&Ctx{QueueLen: 90_000, ECNCapable: true, Now: now}, rng)
	}
	if a.MaxP <= before {
		t.Fatalf("MaxP should rise under a high queue: %v -> %v", before, a.MaxP)
	}
	if a.MaxP > 0.51 {
		t.Fatalf("MaxP exceeded its cap: %v", a.MaxP)
	}
}

func TestAREDMaxPFallsWhenIdle(t *testing.T) {
	a := NewARED(10_000, 100_000)
	a.Wq = 1
	a.MaxP = 0.4
	rng := rand.New(rand.NewSource(1))
	now := units.Time(0)
	for i := 0; i < 100; i++ {
		now += units.Millisecond
		a.OnArrival(&Ctx{QueueLen: 5_000, ECNCapable: true, Now: now}, rng)
	}
	if a.MaxP >= 0.4 {
		t.Fatalf("MaxP should decay at a low queue: %v", a.MaxP)
	}
	if a.MaxP < 0.009 {
		t.Fatalf("MaxP fell through its floor: %v", a.MaxP)
	}
}

func TestAREDStillBehavesLikeRED(t *testing.T) {
	a := NewARED(10_000, 20_000)
	rng := rand.New(rand.NewSource(2))
	// Saturate above MaxTh: must mark ECT traffic.
	var d Decision
	for i := 0; i < 5000; i++ {
		d = a.OnArrival(&Ctx{QueueLen: 200_000, ECNCapable: true, Now: units.Time(i) * units.Microsecond}, rng)
	}
	if d != Mark {
		t.Fatalf("above MaxTh must mark, got %v", d)
	}
}
