package aqm

import (
	"math"
	"math/rand"

	"abm/internal/units"
)

// Codel is the Controlled Delay AQM (Nichols & Jacobson 2012), the
// delay-based scheme in the paper's Figure 1 taxonomy. It watches the
// per-packet sojourn time at dequeue: once the sojourn has stayed above
// Target for a full Interval, it drops one packet and re-arms with the
// interval shrunk by 1/sqrt(count), the control law that gives Codel its
// linear drop-rate ramp.
type Codel struct {
	Target   units.Time // acceptable standing delay, default 1ms (datacenter scale)
	Interval units.Time // sliding window, default 10ms

	dropping   bool
	firstAbove units.Time // when sojourn first exceeded Target, 0 = not yet
	dropNext   units.Time
	count      int
	lastCount  int
}

// NewCodel returns a Codel with the given parameters; zero values select
// datacenter-scale defaults.
func NewCodel(target, interval units.Time) *Codel {
	c := &Codel{Target: target, Interval: interval}
	if c.Target <= 0 {
		c.Target = units.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 10 * units.Millisecond
	}
	return c
}

// Name implements Policy.
func (c *Codel) Name() string { return "codel" }

// OnArrival implements Policy: Codel never acts at enqueue.
func (c *Codel) OnArrival(*Ctx, *rand.Rand) Decision { return Enqueue }

// OnDequeue implements DequeueHook, returning true when the departing
// packet must be dropped.
func (c *Codel) OnDequeue(sojourn, now units.Time) bool {
	okToDrop := c.update(sojourn, now)
	if c.dropping {
		if !okToDrop {
			c.dropping = false
			return false
		}
		if now >= c.dropNext {
			c.count++
			c.dropNext = c.controlLaw(c.dropNext)
			return true
		}
		return false
	}
	if okToDrop && (now-c.dropNext < c.Interval || now-c.firstAbove >= c.Interval) {
		c.dropping = true
		// Resume from the previous drop rate if we were dropping recently.
		if now-c.dropNext < c.Interval && c.lastCount > 2 {
			c.count = c.lastCount - 2
		} else {
			c.count = 1
		}
		c.lastCount = c.count
		c.dropNext = c.controlLaw(now)
		return true
	}
	return false
}

// update tracks how long the sojourn has been above Target and reports
// whether dropping is currently justified.
func (c *Codel) update(sojourn, now units.Time) bool {
	if sojourn < c.Target {
		c.firstAbove = 0
		return false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now + c.Interval
		return false
	}
	return now >= c.firstAbove
}

func (c *Codel) controlLaw(t units.Time) units.Time {
	return t + units.Time(float64(c.Interval)/math.Sqrt(float64(c.count)))
}

// Dropping reports whether Codel is in its dropping state (for tests).
func (c *Codel) Dropping() bool { return c.dropping }
