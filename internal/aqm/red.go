package aqm

import (
	"math/rand"

	"abm/internal/units"
)

// RED is Random Early Detection (Floyd & Jacobson 1993): an EWMA of the
// queue length drives a marking/dropping probability that rises linearly
// from 0 at MinTh to MaxP at MaxTh; above MaxTh every packet is marked
// or dropped.
type RED struct {
	MinTh units.ByteCount // below: always enqueue
	MaxTh units.ByteCount // above: always mark/drop
	MaxP  float64         // probability at MaxTh
	Wq    float64         // EWMA weight for the average queue, e.g. 0.002

	avg     float64
	count   int // packets since last mark, for uniformized spacing
	started bool
}

// NewRED returns a RED instance with classic defaults for any zero field.
func NewRED(minTh, maxTh units.ByteCount) *RED {
	r := &RED{MinTh: minTh, MaxTh: maxTh, MaxP: 0.1, Wq: 0.002}
	if r.MinTh <= 0 {
		r.MinTh = 30 * units.Kilobyte
	}
	if r.MaxTh <= r.MinTh {
		r.MaxTh = 3 * r.MinTh
	}
	return r
}

// Name implements Policy.
func (r *RED) Name() string { return "red" }

// Avg exposes the EWMA queue estimate for tests.
func (r *RED) Avg() float64 { return r.avg }

// OnArrival implements Policy.
func (r *RED) OnArrival(ctx *Ctx, rng *rand.Rand) Decision {
	if !r.started {
		r.avg = float64(ctx.QueueLen)
		r.started = true
	} else {
		r.avg = (1-r.Wq)*r.avg + r.Wq*float64(ctx.QueueLen)
	}
	switch {
	case r.avg < float64(r.MinTh):
		r.count = 0
		return Enqueue
	case r.avg >= float64(r.MaxTh):
		r.count = 0
		return r.congest(ctx)
	default:
		frac := (r.avg - float64(r.MinTh)) / float64(r.MaxTh-r.MinTh)
		pb := r.MaxP * frac
		// Uniformize mark spacing as in the original paper.
		pa := pb / (1 - float64(r.count)*pb)
		r.count++
		if pa < 0 || pa >= 1 || rng.Float64() < pa {
			r.count = 0
			return r.congest(ctx)
		}
		return Enqueue
	}
}

func (r *RED) congest(ctx *Ctx) Decision {
	if ctx.ECNCapable {
		return Mark
	}
	return Drop
}
