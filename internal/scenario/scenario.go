// Package scenario is the declarative layer of the simulator: one
// validated, JSON-serializable Scenario value describes everything a
// run needs — fabric shape (including oversubscription and asymmetric
// link rates), buffer model, buffer-management and scheduler policy,
// workload mix, shard count, telemetry, duration and seed. Every entry
// point (the abm root API, internal/experiments cells, the abmsim/
// figures/sweep CLIs and the examples) compiles down to a Scenario, and
// one builder constructs the fabric and workloads for both the serial
// and the topology-sharded engines.
//
// A Scenario has exactly one defaults-resolution pass: Resolve returns
// a fully-explicit spec (goldens pin it) and is idempotent, so a
// resolved scenario embedded in a runner job record re-runs exactly.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"abm/internal/obs"
	"abm/internal/topo"
	"abm/internal/units"
)

// Duration is a simulated time span (picoseconds, like units.Time) with
// human-friendly JSON: it marshals as a Go duration string ("25ms")
// when representable at nanosecond resolution and as a raw picosecond
// number otherwise; it unmarshals either form. Both directions are
// exact, so specs round-trip without drifting the virtual clock.
type Duration units.Time

// Time converts to the simulator's time type.
func (d Duration) Time() units.Time { return units.Time(d) }

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	if d%1000 == 0 {
		return json.Marshal(time.Duration(d / 1000).String())
	}
	return json.Marshal(int64(d))
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		td, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(td.Nanoseconds()) * Duration(units.Nanosecond)
		return nil
	}
	var ps int64
	if err := json.Unmarshal(data, &ps); err != nil {
		return err
	}
	*d = Duration(ps)
	return nil
}

// Scenario is the complete declarative description of one run.
type Scenario struct {
	// Name labels the scenario in job IDs and reports.
	Name string `json:"name,omitempty"`
	// Seed drives every random stream of the run (workload arrivals,
	// per-switch policy randomness, ...) deterministically.
	Seed int64 `json:"seed"`
	// Shards selects the engine: 0 is the legacy serial loop; >= 1 runs
	// the topology-sharded parallel engine with min(Shards, Leaves)
	// shards. Output is identical at every shard count.
	Shards int `json:"shards,omitempty"`
	// Duration is how long the workload generators offer traffic; the
	// run then drains in-flight flows (bounded) before summarizing.
	Duration Duration `json:"duration"`

	Fabric   Fabric   `json:"fabric"`
	Buffer   Buffer   `json:"buffer"`
	Switch   Switch   `json:"switch"`
	Workload Workload `json:"workload"`

	// Hybrid configures the fluid/packet hybrid engine (internal/hybrid);
	// the zero value keeps the pure packet engine, bit-for-bit.
	Hybrid Hybrid `json:"hybrid,omitzero"`

	// Obs configures the run's telemetry (see internal/obs); the zero
	// value disables it.
	Obs obs.Options `json:"obs,omitempty"`
}

// Fabric is the fabric shape and its link speeds. Topology selects the
// shape constructor: "leafspine" (the default) is the two-tier Clos
// sized by Spines/Leaves/HostsPerLeaf; "fattree" is the three-tier
// k-ary fat tree sized by K alone.
type Fabric struct {
	// Topology is the shape family: "leafspine" or "fattree". Empty
	// resolves to leafspine.
	Topology string `json:"topology,omitempty"`
	// K is the fat-tree arity (even, >= 2): k pods of k/2 edge and k/2
	// aggregation switches under (k/2)^2 cores, k^3/4 hosts. Fattree
	// only; zero resolves to 4.
	K            int `json:"k,omitempty"`
	Spines       int `json:"spines,omitempty"`
	Leaves       int `json:"leaves,omitempty"`
	HostsPerLeaf int `json:"hosts_per_leaf,omitempty"`
	// LinkGbps is the host access rate and the uniform fabric rate.
	LinkGbps float64 `json:"link_gbps"`
	// UplinkGbps gives the switch<->switch tiers their own speed
	// (asymmetric fabrics: 10G hosts under 25G uplinks, or slower
	// uplinks for steeper oversubscription). Zero resolves to LinkGbps.
	UplinkGbps float64 `json:"uplink_gbps,omitempty"`
	// LinkDelay is the one-way propagation delay of every link.
	LinkDelay Duration `json:"link_delay"`
	// LinkFaults schedules link failures, recoveries, flaps and rate
	// degradations at fixed simulation times. Deterministic and
	// shard-count-invariant: serial runs apply them as calendar events,
	// sharded runs at window barriers.
	LinkFaults []LinkFault `json:"link_faults,omitempty"`
}

// LinkFault is one scheduled fault on a named fabric link.
type LinkFault struct {
	// Link names the wire by its endpoint switches, either order:
	// "leaf0-spine1", or "edge2-agg1"/"agg1-core0" on fat trees.
	Link string `json:"link"`
	// At is when the fault begins (must be > 0).
	At Duration `json:"at"`
	// RecoverAt, when positive, restores the link at that time.
	RecoverAt Duration `json:"recover_at,omitempty"`
	// DegradeGbps, when positive, lowers the link to this rate instead
	// of taking it down (routing keeps using it).
	DegradeGbps float64 `json:"degrade_gbps,omitempty"`
	// Flaps repeats a down/up cycle: the link goes down at At+i*Period
	// and recovers half a Period later, for i in [0, Flaps). Requires
	// Period; mutually exclusive with RecoverAt and DegradeGbps.
	Flaps  int      `json:"flaps,omitempty"`
	Period Duration `json:"period,omitempty"`
}

// graph builds the fabric's shape. Zero dimensions fall back to the
// paper's 8x8x32 leaf–spine (resolved specs always have them filled).
func (f Fabric) graph() *topo.Graph {
	if f.Topology == "fattree" {
		k := f.K
		if k <= 0 {
			k = 4
		}
		return topo.FatTree(k)
	}
	sp, lv, hpl := f.Spines, f.Leaves, f.HostsPerLeaf
	if sp <= 0 {
		sp = defaultSpines
	}
	if lv <= 0 {
		lv = defaultLeaves
	}
	if hpl <= 0 {
		hpl = defaultHostsPerLeaf
	}
	return topo.LeafSpine(sp, lv, hpl)
}

// radix returns the switch port count the buffer model is sized
// against: hosts + uplinks on a leaf (leaf–spine) or k (fat tree).
// Resolved fabrics only.
func (f Fabric) radix() int {
	if f.Topology == "fattree" {
		return f.K
	}
	return f.HostsPerLeaf + f.Spines
}

// TierOversubscription returns the oversubscription ratio at each
// non-top switch tier, computed from the fabric graph: capacity
// entering tier-t switches from below over capacity leaving them
// upward. Index 0 is the edge (leaf) tier.
func (f Fabric) TierOversubscription() []float64 {
	return f.graph().TierOversubscription(f.LinkGbps, f.UplinkGbps)
}

// Oversubscription returns the edge-tier oversubscription ratio: host
// capacity per edge switch over its uplink capacity.
func (f Fabric) Oversubscription() float64 {
	return f.TierOversubscription()[0]
}

// Buffer is the shared-memory model of every switch.
type Buffer struct {
	// KBPerPortPerGbps sizes the chip (§4.3): Trident2 9.6, Tomahawk
	// 5.12, Tofino 3.44.
	KBPerPortPerGbps float64 `json:"kb_per_port_per_gbps"`
	// HeadroomFrac reserves this fraction of the chip for first-RTT
	// (unscheduled) packets. nil resolves to the scheme default — 1/8
	// for ABM, IB and ABM-approx, 0 otherwise; an explicit 0 disables.
	HeadroomFrac  *float64 `json:"headroom_frac,omitempty"`
	QueuesPerPort int      `json:"queues_per_port"`
	// Alphas are the per-priority DT/ABM parameters. Resolve expands to
	// one entry per queue: a single entry replicates across all queues,
	// missing or non-positive entries become 0.5.
	Alphas []float64 `json:"alphas,omitempty"`
	// AlphaUnscheduled is the headroom-admission alpha (§3.3, paper 64).
	AlphaUnscheduled float64 `json:"alpha_unscheduled"`
}

// Switch selects the per-switch policies: buffer management, AQM
// behavior and the egress scheduler.
type Switch struct {
	// BM names the buffer-management scheme (bm.Names).
	BM string `json:"bm"`
	// UpdateInterval is ABM-approx's control-plane period.
	UpdateInterval Duration `json:"update_interval,omitempty"`
	// CongestedFactor marks a queue congested above this fraction of
	// its threshold (paper 0.9).
	CongestedFactor float64 `json:"congested_factor"`
	// DrainRateMeasured uses the measured mu/b estimator instead of the
	// scheduler-share one (DESIGN.md §8 ablation).
	DrainRateMeasured bool `json:"drain_rate_measured,omitempty"`
	// StatsInterval is the n_p / mu refresh period; zero resolves to
	// one base RTT (8 link delays on the two-tier fabric).
	StatsInterval Duration `json:"stats_interval"`
	// Scheduler is the per-port egress scheduler: rr, dwrr or strict.
	Scheduler string `json:"scheduler"`
	// Trimming enables the cut-payload AQM. Incompatible with ECN-based
	// congestion control (DCTCP/DCQCN), which installs its own AQM.
	Trimming bool `json:"trimming,omitempty"`
	// EnableINT stamps per-hop telemetry onto data packets. Resolve
	// also forces it on when any configured CC requires it (PowerTCP,
	// HPCC).
	EnableINT bool `json:"enable_int,omitempty"`
}

// Workload is the traffic mix.
type Workload struct {
	// Load is the web-search background load as a fraction of bisection
	// bandwidth; 0 disables the background workload.
	Load float64 `json:"load"`
	// Background selects the flow-size distribution: websearch or
	// datamining.
	Background string `json:"background"`
	// CC names the congestion-control algorithm (cc.Names).
	CC string `json:"cc"`
	// Prio is the priority (queue) background flows use.
	Prio uint8 `json:"prio"`
	// RandomPrio spreads flows uniformly across the queues instead.
	RandomPrio bool `json:"random_prio,omitempty"`
	// MixedCC assigns background flows round-robin to these CC/priority
	// pairs (the Fig. 8 mixed-protocol setting); overrides CC/Prio.
	MixedCC []CCAssignment `json:"mixed_cc,omitempty"`

	Incast Incast `json:"incast"`

	// LongFlows adds the steady long-flow permutation workload; the zero
	// value disables it.
	LongFlows LongFlows `json:"long_flows,omitzero"`
}

// CCAssignment binds a congestion-control algorithm to a priority.
type CCAssignment struct {
	CC   string `json:"cc"`
	Prio uint8  `json:"prio"`
}

// LongFlows is the steady long-flow workload: host i opens one flow to
// host (i+Stride) mod N at time i*Stagger — a full permutation whose
// flows all converge to steady state, the hybrid engine's showcase.
// FlowKB 0 disables.
type LongFlows struct {
	// FlowKB is each flow's size in kilobytes.
	FlowKB float64 `json:"flow_kb,omitempty"`
	// CC defaults to the background workload's algorithm.
	CC string `json:"cc,omitempty"`
	// Prio is the priority long flows use.
	Prio uint8 `json:"prio,omitempty"`
	// Stride is the source-to-destination offset of the permutation;
	// zero resolves to HostsPerLeaf, so every flow crosses the fabric.
	Stride int `json:"stride,omitempty"`
	// Count caps how many source hosts open a flow (hosts 0..Count-1);
	// zero means every host. Count <= N/2 with Stride >= Count gives a
	// half-permutation with dedicated senders and receivers, so no NIC
	// carries both a flow's data and another flow's ACKs.
	Count int `json:"count,omitempty"`
	// Stagger is the launch gap between successive source hosts; zero
	// resolves to 1us.
	Stagger Duration `json:"stagger,omitempty"`
}

// Hybrid configures the fluid/packet hybrid engine; see internal/hybrid
// for the mode-transition rules these knobs parameterize.
type Hybrid struct {
	// Enabled turns the hybrid engine on. Serial engine only: Resolve
	// rejects Enabled together with Shards >= 1.
	Enabled bool `json:"enabled,omitempty"`
	// GuardBandFrac is the fraction of a queue's admission threshold at
	// which fluid flows return to packet mode; zero resolves to 0.5.
	GuardBandFrac float64 `json:"guard_band_frac,omitempty"`
	// SteadyRTTs is how many smoothed RTTs a flow must go without a
	// congestion signal before demotion; zero resolves to 8.
	SteadyRTTs int `json:"steady_rtts,omitempty"`
	// EpochDt is the fluid integration epoch; zero resolves to one base
	// RTT (8 link delays).
	EpochDt Duration `json:"epoch_dt,omitempty"`
}

// Incast is the query/response burst workload; RequestFrac 0 disables.
type Incast struct {
	// RequestFrac sizes each request as a fraction of the chip buffer.
	RequestFrac float64 `json:"request_frac"`
	// Fanout is the fan-in degree of each query.
	Fanout int `json:"fanout"`
	// Load is the fraction of aggregate bandwidth offered as incast.
	Load float64 `json:"load"`
	// CC defaults to the background workload's algorithm.
	CC string `json:"cc"`
	// Prio is the priority incast responses use.
	Prio uint8 `json:"prio"`
}

// Clone returns a deep copy, so callers can mutate axes (SetField) off
// one base scenario without aliasing slices or the headroom pointer.
func (s Scenario) Clone() Scenario {
	if s.Buffer.HeadroomFrac != nil {
		v := *s.Buffer.HeadroomFrac
		s.Buffer.HeadroomFrac = &v
	}
	if s.Buffer.Alphas != nil {
		s.Buffer.Alphas = append([]float64(nil), s.Buffer.Alphas...)
	}
	if s.Workload.MixedCC != nil {
		s.Workload.MixedCC = append([]CCAssignment(nil), s.Workload.MixedCC...)
	}
	if s.Fabric.LinkFaults != nil {
		s.Fabric.LinkFaults = append([]LinkFault(nil), s.Fabric.LinkFaults...)
	}
	return s
}

// Parse decodes a scenario from JSON, rejecting unknown fields so typos
// in hand-written spec files fail loudly instead of silently defaulting.
func Parse(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	return s, nil
}

// Load reads and decodes a scenario file. The result is not resolved;
// callers apply overrides first, then Resolve.
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	s, err := Parse(data)
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Marshal renders the scenario as indented JSON with a trailing
// newline — the committed-file and job-record format.
func (s Scenario) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Save writes the scenario as indented JSON.
func (s Scenario) Save(path string) error {
	data, err := s.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
