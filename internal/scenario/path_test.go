package scenario

import (
	"reflect"
	"strings"
	"testing"

	"abm/internal/units"
)

// TestSetField drives every supported leaf type through the dotted-path
// mutator sweep grids are built on.
func TestSetField(t *testing.T) {
	var s Scenario
	for path, value := range map[string]string{
		"name":                         "tuned",
		"seed":                         "7",
		"shards":                       "4",
		"duration":                     "2ms",
		"fabric.spines":                "4",
		"fabric.uplink_gbps":           "25",
		"fabric.link_delay":            "4us",
		"buffer.queues_per_port":       "4",
		"buffer.headroom_frac":         "0.25",
		"buffer.alphas":                "2, 1, 0.5, 0.25",
		"switch.bm":                    "IB",
		"switch.trimming":              "true",
		"workload.load":                "0.6",
		"workload.prio":                "3",
		"workload.mixed_cc":            "cubic:0, dctcp:1",
		"workload.incast.request_frac": "0.3",
	} {
		if err := SetField(&s, path, value); err != nil {
			t.Fatalf("SetField(%q, %q): %v", path, value, err)
		}
	}
	if s.Name != "tuned" || s.Seed != 7 || s.Shards != 4 {
		t.Errorf("scalar roots not set: %+v", s)
	}
	if s.Duration.Time() != 2*units.Millisecond {
		t.Errorf("duration = %v ps", int64(s.Duration))
	}
	if s.Fabric.Spines != 4 || s.Fabric.UplinkGbps != 25 ||
		s.Fabric.LinkDelay.Time() != 4*units.Microsecond {
		t.Errorf("fabric fields not set: %+v", s.Fabric)
	}
	if s.Buffer.HeadroomFrac == nil || *s.Buffer.HeadroomFrac != 0.25 {
		t.Errorf("headroom pointer not set: %+v", s.Buffer.HeadroomFrac)
	}
	if want := []float64{2, 1, 0.5, 0.25}; !reflect.DeepEqual(s.Buffer.Alphas, want) {
		t.Errorf("alphas = %v", s.Buffer.Alphas)
	}
	if s.Switch.BM != "IB" || !s.Switch.Trimming {
		t.Errorf("switch fields not set: %+v", s.Switch)
	}
	if s.Workload.Prio != 3 || s.Workload.Load != 0.6 ||
		s.Workload.Incast.RequestFrac != 0.3 {
		t.Errorf("workload fields not set: %+v", s.Workload)
	}
	if want := []CCAssignment{{CC: "cubic", Prio: 0}, {CC: "dctcp", Prio: 1}}; !reflect.DeepEqual(s.Workload.MixedCC, want) {
		t.Errorf("mixed cc = %+v", s.Workload.MixedCC)
	}
}

// TestSetFieldErrors: every failure mode names the path and, for
// unknown fields, lists the valid ones.
func TestSetFieldErrors(t *testing.T) {
	var s Scenario
	for name, tc := range map[string]struct{ path, value, want string }{
		"empty path":        {"", "1", "empty"},
		"unknown root":      {"topology", "x", "unknown field"},
		"unknown leaf":      {"fabric.spine_count", "4", "spines"}, // lists valid tags
		"section not leaf":  {"fabric", "4", "sub-fields"},
		"leaf not section":  {"seed.low", "1", "no sub-field"},
		"bad int":           {"fabric.spines", "many", "many"},
		"bad bool":          {"switch.trimming", "maybe", "maybe"},
		"bad duration":      {"duration", "fast", "fast"},
		"bad cc assignment": {"workload.mixed_cc", "cubic", "cc:prio"},
		"prio overflow":     {"workload.prio", "300", "300"},
	} {
		t.Run(name, func(t *testing.T) {
			err := SetField(&s, tc.path, tc.value)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSetFieldMatchesJSON: for a sample of paths, SetField agrees with
// decoding the equivalent JSON document — the two ways a spec field can
// be written must not drift apart.
func TestSetFieldMatchesJSON(t *testing.T) {
	var byPath Scenario
	for path, value := range map[string]string{
		"switch.bm":          "ABM",
		"workload.load":      "0.6",
		"fabric.uplink_gbps": "25",
	} {
		if err := SetField(&byPath, path, value); err != nil {
			t.Fatal(err)
		}
	}
	byJSON, err := Parse([]byte(`{
		"switch": {"bm": "ABM"},
		"workload": {"load": 0.6},
		"fabric": {"uplink_gbps": 25}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byPath, byJSON) {
		t.Fatalf("SetField and JSON disagree:\npath %+v\njson %+v", byPath, byJSON)
	}
}
