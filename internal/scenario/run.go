package scenario

import (
	"math"
	"math/rand"

	"abm/internal/aqm"
	"abm/internal/bm"
	"abm/internal/cc"
	"abm/internal/device"
	"abm/internal/hybrid"
	"abm/internal/metrics"
	"abm/internal/obs"
	"abm/internal/obs/hist"
	"abm/internal/packet"
	"abm/internal/randutil"
	"abm/internal/sim"
	"abm/internal/topo"
	"abm/internal/units"
	"abm/internal/workload"
)

// Result is one finished run.
type Result struct {
	// Scenario is the fully-resolved spec the run executed — embedding it
	// (e.g. in runner job records) makes the result re-runnable as-is.
	Scenario Scenario
	Summary  metrics.Summary
	// PerPrioP99Short holds the per-priority p99 short-flow slowdown for
	// mixed-protocol scenarios (fig8).
	PerPrioP99Short map[uint8]float64

	Drops            int64
	UnscheduledDrops int64
	Events           uint64

	// Counters holds the telemetry counter totals by export name when the
	// scenario enabled telemetry; nil otherwise. The keys and values are
	// shard-count-invariant.
	Counters map[string]int64

	// Hists holds the merged histogram snapshots by export name when the
	// scenario enabled histogram recording (obs.Options.Hists); nil
	// otherwise. Like Counters, shard-count-invariant.
	Hists map[string]hist.Snapshot

	// Hybrid holds the hybrid engine's activity summary when the
	// scenario enabled it; nil otherwise.
	Hybrid *hybrid.Stats
}

// samplerInterval is the buffer-occupancy sampling period in both run
// modes.
const samplerInterval = 100 * units.Microsecond

// rateOf converts a Gbps knob to the simulator's integer bits/s rate.
func rateOf(gbps float64) units.Rate {
	return units.Rate(math.Round(gbps * float64(units.GigabitPerSec)))
}

// topoConfig compiles a resolved scenario into the fabric config and the
// chip buffer size. Incast requests and trim thresholds are sized
// against the chip buffer, not the scheme-dependent shared pool, so
// every scheme sees the same load.
func (s Scenario) topoConfig() (topo.Config, units.ByteCount) {
	f := s.Fabric
	rate := rateOf(f.LinkGbps)
	ports := f.radix()
	totalBuffer := topo.BufferFor(s.Buffer.KBPerPortPerGbps, ports, rate)

	headroom := units.ByteCount(float64(totalBuffer) * *s.Buffer.HeadroomFrac)
	shared := totalBuffer - headroom

	numQueues := s.Buffer.QueuesPerPort * ports
	bmName, bmInterval := s.Switch.BM, s.Switch.UpdateInterval.Time()
	drainMode := device.DrainRateShare
	if s.Switch.DrainRateMeasured {
		drainMode = device.DrainRateMeasured
	}
	cfg := topo.Config{
		Topo:          f.graph(),
		NumSpines:     f.Spines,
		NumLeaves:     f.Leaves,
		HostsPerLeaf:  f.HostsPerLeaf,
		LinkRate:      rate,
		LinkDelay:     f.LinkDelay.Time(),
		QueuesPerPort: s.Buffer.QueuesPerPort,
		BufferSize:    shared,
		Headroom:      headroom,
		// Resolve already validated the name; MustNew only re-checks the
		// invariant per switch.
		BMFactory: func() bm.Policy {
			return bm.MustNew(bmName, numQueues, bmInterval)
		},
		Alphas:           s.Buffer.Alphas,
		AlphaUnscheduled: s.Buffer.AlphaUnscheduled,
		CongestedFactor:  s.Switch.CongestedFactor,
		StatsInterval:    s.Switch.StatsInterval.Time(),
		DrainRate:        drainMode,
		EnableINT:        s.Switch.EnableINT,
	}
	if up := rateOf(f.UplinkGbps); up != rate {
		cfg.UplinkRate = up
	}
	switch s.Switch.Scheduler {
	case "rr":
		// round robin, the device default
	case "dwrr":
		cfg.NewScheduler = func() device.Scheduler { return &device.DWRR{} }
	case "strict":
		cfg.NewScheduler = func() device.Scheduler { return device.StrictPriority{} }
	}
	// DCTCP needs its marking threshold K = 65 packets (§4.1); the
	// threshold only marks ECT packets, so it is safe fabric-wide.
	if s.usesECN() {
		k := 65 * (1440 + packet.HeaderBytes)
		cfg.AQMFactory = func() aqm.Policy { return aqm.ECNThreshold{K: k} }
	} else if s.Switch.Trimming {
		// Trim once a queue holds an eighth of the chip — roughly where
		// deep per-queue backlogs turn into timeout-inducing tail drops.
		trimAt := totalBuffer / 8
		cfg.AQMFactory = func() aqm.Policy { return aqm.CutPayload{TrimAbove: trimAt} }
	}
	return cfg, totalBuffer
}

// BuildFabric resolves the scenario and constructs the serial engine and
// fabric without any workloads attached — the programmatic Simulation
// API drives traffic itself.
func BuildFabric(s Scenario) (Scenario, *sim.Simulator, *topo.Network, units.ByteCount, error) {
	r, err := s.Resolve()
	if err != nil {
		return Scenario{}, nil, nil, 0, err
	}
	cfg, totalBuffer := r.topoConfig()
	eng := sim.New(r.Seed)
	n := topo.NewNetwork(eng, cfg)
	return r, eng, n, totalBuffer, nil
}

// Run resolves and executes one scenario, returning its result and the
// metrics collector with every flow record for tracing and custom
// analysis. Shards selects the engine; output is identical at every
// shard count.
func Run(s Scenario) (Result, *metrics.Collector, error) {
	r, err := s.Resolve()
	if err != nil {
		return Result{}, nil, err
	}
	cfg, totalBuffer := r.topoConfig()
	duration := r.Duration.Time()
	rate := cfg.LinkRate

	if r.Shards >= 1 {
		return runSharded(r, cfg, totalBuffer, duration, rate)
	}

	sess, err := obs.NewSession(r.Obs, 1)
	if err != nil {
		return Result{}, nil, err
	}
	cfg.Obs = sess

	eng := sim.New(r.Seed)
	n := topo.NewNetwork(eng, cfg)
	col := &metrics.Collector{}

	// Fault events are scheduled before anything else so that among ties
	// at one instant they apply first — the serial equivalent of the
	// sharded engine's window-barrier cut.
	for _, ev := range expandFaults(n.G, r.Fabric.LinkFaults) {
		ev := ev
		eng.At(ev.At, func() { n.ApplyLinkEvent(ev) })
	}

	ws, ic, lf, sampler, err := buildWorkloads(n, r, col, totalBuffer)
	if err != nil {
		return Result{}, nil, err
	}
	rec, err := newHistRecorder(r, sess, col, n)
	if err != nil {
		return Result{}, nil, err
	}
	// The hybrid controller installs the flow-start hook and its epoch
	// ticker before any flow launches; LongFlows schedules first so its
	// flow IDs stay in host order on every engine.
	var ctl *hybrid.Controller
	if r.Hybrid.Enabled {
		ctl = hybrid.New(eng, n, hybrid.Config{
			GuardBandFrac: r.Hybrid.GuardBandFrac,
			SteadyRTTs:    r.Hybrid.SteadyRTTs,
			EpochDt:       r.Hybrid.EpochDt.Time(),
			Obs:           sess.ShardSink(0),
		})
		ctl.Start()
	}
	if lf != nil {
		lf.Schedule()
	}
	if ws != nil {
		ws.Start()
	}
	if ic != nil {
		ic.Start()
	}
	sampler.Start(samplerInterval)
	rec.start(eng, samplerInterval)

	eng.RunUntil(duration)
	if ws != nil {
		ws.Stop()
	}
	if ic != nil {
		ic.Stop()
	}
	// Drain: let in-flight flows finish (bounded so pathological runs
	// still terminate).
	drainEnd := duration + 500*units.Millisecond
	eng.RunUntil(drainEnd)
	sampler.Stop()
	rec.stop()
	if ctl != nil {
		// Promote every remaining fluid flow so the final flush below
		// completes flows in packet mode, like a pure-packet run.
		ctl.Stop()
	}
	n.Stop()
	eng.Run() // flush canceled tickers
	rec.finish(drainEnd)

	res := collectResult(r, n, col, rate, eng.Executed())
	res.Counters = sess.Totals()
	res.Hists = sess.HistTotals()
	if ctl != nil {
		st := ctl.Stats()
		res.Hybrid = &st
	}
	if err := writeObsOutputs(r.Obs, sess, n, rec); err != nil {
		return Result{}, nil, err
	}
	return res, col, nil
}

// runSharded executes a scenario on the parallel engine: the fabric is
// partitioned across shards, workloads are pre-generated to the traffic
// horizon (reproducing the live generators' RNG streams draw-for-draw),
// and the buffer sampler runs at window barriers.
func runSharded(r Scenario, cfg topo.Config, totalBuffer units.ByteCount,
	duration units.Time, rate units.Rate) (Result, *metrics.Collector, error) {

	part := topo.MakePartition(cfg.Graph(), r.Shards)
	sess, err := obs.NewSession(r.Obs, part.Shards)
	if err != nil {
		return Result{}, nil, err
	}
	cfg.Obs = sess

	p := sim.NewParallel(r.Seed, part.Shards)
	defer p.Close()
	p.SetObs(sess)
	n := topo.NewShardedNetwork(p, cfg, part)
	col := &metrics.Collector{}

	// Window barriers are the only point where cross-shard routing state
	// may change; every fault lands exactly on one.
	for _, ev := range expandFaults(n.G, r.Fabric.LinkFaults) {
		ev := ev
		p.AtBarrier(ev.At, func(units.Time) { n.ApplyLinkEvent(ev) })
	}

	ws, ic, lf, sampler, err := buildWorkloads(n, r, col, totalBuffer)
	if err != nil {
		return Result{}, nil, err
	}
	rec, err := newHistRecorder(r, sess, col, n)
	if err != nil {
		return Result{}, nil, err
	}
	if lf != nil {
		lf.Schedule()
	}
	workload.SchedulePregen(ws, ic, duration)
	sampler.StartBarrier(samplerInterval)
	rec.startBarrier(p, samplerInterval)

	p.RunUntil(duration)
	drainEnd := duration + 500*units.Millisecond
	p.RunUntil(drainEnd)
	sampler.Stop()
	rec.stop()
	n.Stop()
	p.Drain() // run remaining retransmission chains to exhaustion
	rec.finish(drainEnd)

	res := collectResult(r, n, col, rate, p.Executed())
	res.Counters = sess.Totals()
	res.Hists = sess.HistTotals()
	if err := writeObsOutputs(r.Obs, sess, n, rec); err != nil {
		return Result{}, nil, err
	}
	return res, col, nil
}

// expandFaults compiles the spec's named fault list into a canonically
// sorted link-event schedule against the built fabric graph. Resolve
// already validated names and times, so lookups cannot fail here.
func expandFaults(g *topo.Graph, faults []LinkFault) []topo.LinkEvent {
	var evs []topo.LinkEvent
	for _, lf := range faults {
		li, err := g.LinkIndex(lf.Link)
		if err != nil {
			panic(err)
		}
		switch {
		case lf.Flaps > 0:
			for i := 0; i < lf.Flaps; i++ {
				down := lf.At + Duration(i)*lf.Period
				evs = append(evs,
					topo.LinkEvent{At: down.Time(), Link: li, State: topo.LinkDown},
					topo.LinkEvent{At: (down + lf.Period/2).Time(), Link: li, State: topo.LinkUp})
			}
		case lf.DegradeGbps > 0:
			evs = append(evs, topo.LinkEvent{
				At: lf.At.Time(), Link: li, State: topo.LinkDegraded, Rate: rateOf(lf.DegradeGbps)})
			if lf.RecoverAt > 0 {
				evs = append(evs, topo.LinkEvent{At: lf.RecoverAt.Time(), Link: li, State: topo.LinkUp})
			}
		default:
			evs = append(evs, topo.LinkEvent{At: lf.At.Time(), Link: li, State: topo.LinkDown})
			if lf.RecoverAt > 0 {
				evs = append(evs, topo.LinkEvent{At: lf.RecoverAt.Time(), Link: li, State: topo.LinkUp})
			}
		}
	}
	topo.SortLinkEvents(evs)
	return evs
}

// buildWorkloads builds the scenario's generators and the buffer sampler
// without starting any of them: the serial path Starts the generators
// live, the sharded path pre-generates their schedules instead.
func buildWorkloads(n *topo.Network, r Scenario, col *metrics.Collector,
	chip units.ByteCount) (*workload.WebSearch, *workload.Incast, *workload.LongFlows, *workload.BufferSampler, error) {

	// Workload randomness is isolated from simulation randomness so every
	// scheme at the same seed sees identical arrivals.
	rng := rand.New(rand.NewSource(r.Seed + 1000))
	qpp := r.Buffer.QueuesPerPort
	w := r.Workload

	var ws *workload.WebSearch
	if w.Load > 0 {
		ws = &workload.WebSearch{Net: n, Load: w.Load, Collect: col, Seed: r.Seed + 1}
		if w.Background == "datamining" {
			ws.Sizes = randutil.DataMining
		}
		switch {
		case len(w.MixedCC) > 0:
			factories := make([]cc.Factory, len(w.MixedCC))
			for i, a := range w.MixedCC {
				f, err := cc.NewFactory(a.CC)
				if err != nil {
					return nil, nil, nil, nil, err
				}
				factories[i] = f
			}
			assignments := w.MixedCC
			ws.PickCC = func(i int) (cc.Factory, uint8) {
				j := i % len(assignments)
				return factories[j], assignments[j].Prio
			}
		case w.RandomPrio:
			f, err := cc.NewFactory(w.CC)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			ws.PickCC = func(int) (cc.Factory, uint8) {
				return f, uint8(rng.Intn(qpp))
			}
		default:
			f, err := cc.NewFactory(w.CC)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			ws.CC = f
			ws.Prio = w.Prio
		}
	}

	var ic *workload.Incast
	if w.Incast.RequestFrac > 0 {
		f, err := cc.NewFactory(w.Incast.CC)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		reqSize := units.ByteCount(w.Incast.RequestFrac * float64(chip))
		bisection := float64(n.BisectionBits())
		qps := w.Incast.Load * bisection / float64(reqSize.Bits())
		ic = &workload.Incast{
			Net:         n,
			RequestSize: reqSize,
			Fanout:      w.Incast.Fanout,
			QueryRate:   qps,
			Prio:        w.Incast.Prio,
			CC:          f,
			Collect:     col,
			Seed:        r.Seed + 2,
		}
		if w.RandomPrio {
			ic.PickPrio = func() uint8 { return uint8(rng.Intn(qpp)) }
		}
	}

	var lf *workload.LongFlows
	if w.LongFlows.FlowKB > 0 {
		f, err := cc.NewFactory(w.LongFlows.CC)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		lf = &workload.LongFlows{
			Net:     n,
			Size:    units.ByteCount(w.LongFlows.FlowKB * float64(units.Kilobyte)),
			Stride:  w.LongFlows.Stride,
			Count:   w.LongFlows.Count,
			Stagger: w.LongFlows.Stagger.Time(),
			Prio:    w.LongFlows.Prio,
			CC:      f,
			Collect: col,
		}
	}

	sampler := &workload.BufferSampler{Net: n, Collect: col}
	return ws, ic, lf, sampler, nil
}

// collectResult assembles the result from a finished network.
func collectResult(r Scenario, n *topo.Network, col *metrics.Collector,
	rate units.Rate, events uint64) Result {

	var unschedDrops int64
	for _, sw := range n.Switches() {
		for p := 0; p < sw.NumPorts(); p++ {
			for q := 0; q < sw.Prios(); q++ {
				unschedDrops += sw.Port(p).Queue(q).DropsUnscheduled
			}
		}
	}
	res := Result{
		Scenario:         r,
		Summary:          col.Summarize(rate),
		Drops:            n.TotalDrops(),
		UnscheduledDrops: unschedDrops,
		Events:           events,
	}
	w := r.Workload
	if len(w.MixedCC) > 0 {
		res.PerPrioP99Short = make(map[uint8]float64)
		for _, a := range w.MixedCC {
			vals := col.Filter(func(fr metrics.FlowRecord) bool {
				return fr.Prio == a.Prio && fr.Size <= metrics.ShortFlowCut
			})
			res.PerPrioP99Short[a.Prio] = metrics.Percentile(vals, 99)
		}
		if w.Incast.RequestFrac > 0 {
			vals := col.Filter(metrics.ByClass(metrics.ClassIncast))
			res.PerPrioP99Short[w.Incast.Prio] = metrics.Percentile(vals, 99)
		}
	}
	return res
}
