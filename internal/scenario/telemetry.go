package scenario

import (
	"math"
	"net"
	"net/http"
	"sync/atomic"

	"abm/internal/metrics"
	"abm/internal/obs"
	"abm/internal/obs/hist"
	"abm/internal/obs/prom"
	"abm/internal/sim"
	"abm/internal/topo"
	"abm/internal/units"
)

// histRecorder drives the run's tick-level histogram recording: FCT
// slowdowns of newly finished flows and per-queue occupancy at each
// sampler tick, plus the snapshot series (NDJSON and/or the live
// /metrics exposition). Hot-path histograms (queue delay, admission
// headroom, hybrid residency) record straight into the per-shard sinks
// from the device and hybrid layers; this recorder only adds what needs
// a global view.
//
// Determinism: ticks run at fixed sim times — on the serial engine via
// a plain ticker, on the parallel engine at window barriers, which
// observe the same cut (every event before the tick time executed,
// none after). A finished flow is recorded the first tick strictly
// after its end time, so the recording tick is a pure function of the
// flow record and the snapshot series is byte-identical at any shard
// count.
type histRecorder struct {
	sess *obs.Session
	col  *metrics.Collector
	net  *topo.Network

	slowdown [4]*hist.Histogram // ws, incast, long, other
	occ      *hist.Histogram

	done   []bool // col.Flows[i] already recorded
	series []byte // NDJSON snapshot lines (HistFile)

	ticker  *sim.Ticker
	barrier *sim.BarrierTicker
	live    *liveServer
}

// newHistRecorder returns nil when the scenario records no histograms.
// It starts the live /metrics server immediately when one is requested,
// so a scrape can watch the run from its first tick.
func newHistRecorder(r Scenario, sess *obs.Session, col *metrics.Collector,
	n *topo.Network) (*histRecorder, error) {

	if !sess.HistsEnabled() {
		return nil, nil
	}
	sink := sess.ShardSink(0)
	rec := &histRecorder{
		sess: sess,
		col:  col,
		net:  n,
		slowdown: [4]*hist.Histogram{
			sink.Hist(obs.HistSlowdownWS),
			sink.Hist(obs.HistSlowdownIncast),
			sink.Hist(obs.HistSlowdownLong),
			sink.Hist(obs.HistSlowdownOther),
		},
		occ: sink.Hist(obs.HistQueueOcc),
	}
	if addr := r.Obs.MetricsAddr; addr != "" {
		live, err := startLiveServer(addr)
		if err != nil {
			return nil, err
		}
		rec.live = live
		rec.publish(0)
	}
	return rec, nil
}

// start begins ticking on the serial engine.
func (r *histRecorder) start(eng *sim.Simulator, interval units.Time) {
	if r == nil {
		return
	}
	r.ticker = eng.NewTicker(interval, func() { r.tick(eng.Now()) })
}

// startBarrier begins ticking at the parallel engine's window barriers
// — the same sim-time cut the serial ticker observes.
func (r *histRecorder) startBarrier(p *sim.Parallel, interval units.Time) {
	if r == nil {
		return
	}
	r.barrier = p.NewBarrierTicker(interval, func(now units.Time) { r.tick(now) })
}

// stop halts ticking (called before the fabric is torn down).
func (r *histRecorder) stop() {
	if r == nil {
		return
	}
	if r.ticker != nil {
		r.ticker.Stop()
	}
	if r.barrier != nil {
		r.barrier.Stop()
	}
}

// tick records flows that finished strictly before now plus one
// occupancy sample per fabric queue, then emits a snapshot.
func (r *histRecorder) tick(now units.Time) {
	flows := r.col.Flows
	for len(r.done) < len(flows) {
		r.done = append(r.done, false)
	}
	for i := range flows {
		f := &flows[i]
		if r.done[i] || !f.Finished || f.End >= now {
			continue
		}
		r.recordFlow(f)
		r.done[i] = true
	}
	for _, sw := range r.net.Switches() {
		for p := 0; p < sw.NumPorts(); p++ {
			for q := 0; q < sw.Prios(); q++ {
				r.occ.Record(int64(sw.Port(p).Queue(q).Bytes()))
			}
		}
	}
	r.snapshot(now)
}

// finish records every remaining finished flow after the drain (their
// end times may sit past the last tick) and emits the final snapshot,
// stamped at the drain deadline.
func (r *histRecorder) finish(at units.Time) {
	if r == nil {
		return
	}
	flows := r.col.Flows
	for len(r.done) < len(flows) {
		r.done = append(r.done, false)
	}
	for i := range flows {
		f := &flows[i]
		if r.done[i] || !f.Finished {
			continue
		}
		r.recordFlow(f)
		r.done[i] = true
	}
	r.snapshot(at)
	if r.live != nil {
		r.live.Close()
	}
}

// recordFlow buckets one finished flow's slowdown (x1000) by class.
func (r *histRecorder) recordFlow(f *metrics.FlowRecord) {
	v := int64(math.Round(f.Slowdown() * 1000))
	switch f.Class {
	case metrics.ClassWebSearch:
		r.slowdown[0].Record(v)
	case metrics.ClassIncast:
		r.slowdown[1].Record(v)
	case metrics.ClassLong:
		r.slowdown[2].Record(v)
	default:
		r.slowdown[3].Record(v)
	}
}

// snapshot appends one NDJSON line per non-empty merged histogram to
// the series and refreshes the live exposition.
func (r *histRecorder) snapshot(now units.Time) {
	if r.sess.Options().HistFile != "" {
		for id := obs.HistID(0); id < obs.NumHists; id++ {
			snap := r.sess.MergedHist(id)
			if snap.Count == 0 {
				continue
			}
			r.series = obs.AppendHistJSON(r.series, now, id, snap)
			r.series = append(r.series, '\n')
		}
	}
	r.publish(now)
}

// publish renders the current model-side exposition for live scrapes.
func (r *histRecorder) publish(now units.Time) {
	if r.live == nil {
		return
	}
	var w prom.Writer
	r.sess.WriteProm(&w, now)
	r.live.publish(w.Bytes())
}

// liveServer serves the most recent exposition at /metrics while a run
// executes. The sim goroutine publishes immutable byte slices; scrape
// handlers only load them, so the engine never blocks on HTTP.
type liveServer struct {
	ln  net.Listener
	srv *http.Server
	buf atomic.Value // []byte
}

func startLiveServer(addr string) (*liveServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &liveServer{ln: ln}
	s.buf.Store([]byte{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", prom.ContentType)
		w.Write(s.buf.Load().([]byte))
	})
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

func (s *liveServer) publish(b []byte) { s.buf.Store(b) }

func (s *liveServer) Close() { s.srv.Close() }
