package scenario

import (
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"time"

	"abm/internal/units"
)

// SetField assigns one scenario field addressed by its dotted JSON-tag
// path ("switch.bm", "fabric.uplink_gbps", "workload.incast.load", ...),
// parsing value by the field's type. This is how sweep grids and CLI
// "-vary path=v1,v2" axes mutate a base scenario without the sweep layer
// knowing the spec's shape.
//
// Supported leaf types: string, bool, integers, floats, Duration (Go
// duration syntax), *float64 (headroom_frac), []float64 (comma list) and
// []CCAssignment ("cc:prio" comma list).
func SetField(s *Scenario, path, value string) error {
	if path == "" {
		return fmt.Errorf("scenario: empty field path")
	}
	v := reflect.ValueOf(s).Elem()
	parts := strings.Split(path, ".")
	for i, part := range parts {
		if v.Kind() != reflect.Struct {
			return fmt.Errorf("scenario: field %q has no sub-field %q",
				strings.Join(parts[:i], "."), part)
		}
		fv, ok := fieldByTag(v, part)
		if !ok {
			return fmt.Errorf("scenario: unknown field %q (at %q; known: %s)",
				path, part, strings.Join(tagsOf(v), ", "))
		}
		v = fv
	}
	if err := setLeaf(v, value); err != nil {
		return fmt.Errorf("scenario: field %q: %w", path, err)
	}
	return nil
}

// fieldByTag resolves a struct field by the name part of its json tag.
func fieldByTag(v reflect.Value, tag string) (reflect.Value, bool) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		if tagName(t.Field(i)) == tag {
			return v.Field(i), true
		}
	}
	return reflect.Value{}, false
}

func tagName(f reflect.StructField) string {
	tag := f.Tag.Get("json")
	if tag == "" || tag == "-" {
		return ""
	}
	if i := strings.IndexByte(tag, ','); i >= 0 {
		tag = tag[:i]
	}
	return tag
}

// tagsOf lists the addressable json tags of a struct value, sorted.
func tagsOf(v reflect.Value) []string {
	t := v.Type()
	var tags []string
	for i := 0; i < t.NumField(); i++ {
		if name := tagName(t.Field(i)); name != "" {
			tags = append(tags, name)
		}
	}
	sort.Strings(tags)
	return tags
}

func setLeaf(v reflect.Value, value string) error {
	switch v.Interface().(type) {
	case Duration:
		d, err := time.ParseDuration(value)
		if err != nil {
			return err
		}
		v.Set(reflect.ValueOf(Duration(d.Nanoseconds()) * Duration(units.Nanosecond)))
		return nil
	case *float64:
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return err
		}
		v.Set(reflect.ValueOf(&f))
		return nil
	case []float64:
		var out []float64
		for _, part := range strings.Split(value, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return err
			}
			out = append(out, f)
		}
		v.Set(reflect.ValueOf(out))
		return nil
	case []CCAssignment:
		var out []CCAssignment
		for _, part := range strings.Split(value, ",") {
			name, prioStr, ok := strings.Cut(strings.TrimSpace(part), ":")
			if !ok {
				return fmt.Errorf("bad cc assignment %q (want cc:prio)", part)
			}
			prio, err := strconv.ParseUint(prioStr, 10, 8)
			if err != nil {
				return err
			}
			out = append(out, CCAssignment{CC: name, Prio: uint8(prio)})
		}
		v.Set(reflect.ValueOf(out))
		return nil
	}
	switch v.Kind() {
	case reflect.String:
		v.SetString(value)
	case reflect.Bool:
		b, err := strconv.ParseBool(value)
		if err != nil {
			return err
		}
		v.SetBool(b)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return err
		}
		if v.OverflowInt(n) {
			return fmt.Errorf("value %s overflows %s", value, v.Type())
		}
		v.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, err := strconv.ParseUint(value, 10, 64)
		if err != nil {
			return err
		}
		if v.OverflowUint(n) {
			return fmt.Errorf("value %s overflows %s", value, v.Type())
		}
		v.SetUint(n)
	case reflect.Float32, reflect.Float64:
		f, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return err
		}
		v.SetFloat(f)
	case reflect.Struct:
		return fmt.Errorf("path names a section, not a field (sub-fields: %s)",
			strings.Join(tagsOf(v), ", "))
	default:
		return fmt.Errorf("unsupported field type %s", v.Type())
	}
	return nil
}
