package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"abm/internal/obs"
	"abm/internal/units"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestResolveIdempotent: resolving an already-resolved scenario is a
// no-op — the contract that lets runner job records embed resolved
// specs and re-run them through the same pipeline.
func TestResolveIdempotent(t *testing.T) {
	for name, s := range map[string]Scenario{
		"zero": {},
		"fig6-like": {
			Seed: 42,
			Workload: Workload{
				Load: 0.6, CC: "cubic",
				Incast: Incast{RequestFrac: 0.3},
			},
			Switch: Switch{BM: "ABM"},
		},
		"mixed-rate": {
			Fabric: Fabric{Spines: 2, Leaves: 4, HostsPerLeaf: 8, LinkGbps: 10, UplinkGbps: 25},
			Buffer: Buffer{QueuesPerPort: 4, Alphas: []float64{2, 1, 0.5, 0.25}},
			Switch: Switch{BM: "DT", Scheduler: "dwrr"},
		},
		"abm-approx": {
			Switch: Switch{BM: "ABM-approx", UpdateInterval: Duration(800 * units.Microsecond)},
			Workload: Workload{MixedCC: []CCAssignment{
				{CC: "cubic", Prio: 0}, {CC: "dctcp", Prio: 1},
			}, Load: 0.4},
			Buffer: Buffer{QueuesPerPort: 2},
		},
	} {
		t.Run(name, func(t *testing.T) {
			r1, err := s.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			r2, err := r1.Resolve()
			if err != nil {
				t.Fatalf("resolving the resolved spec: %v", err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("Resolve not idempotent:\nfirst  %+v\nsecond %+v", r1, r2)
			}
		})
	}
}

// TestResolveDoesNotMutateInput guards the documented value semantics:
// callers keep the sparse spec they wrote.
func TestResolveDoesNotMutateInput(t *testing.T) {
	s := Scenario{Switch: Switch{BM: "ABM"}}
	if _, err := s.Resolve(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, Scenario{Switch: Switch{BM: "ABM"}}) {
		t.Fatalf("Resolve mutated its receiver: %+v", s)
	}
}

// TestResolveGolden pins the fully-explicit form of the zero scenario
// (the paper's §4.1 defaults) and of an ABM cell. Any change to a
// default is a behavior change and must show up in this diff.
func TestResolveGolden(t *testing.T) {
	for _, tc := range []struct {
		golden string
		spec   Scenario
	}{
		{"default-resolved.json", Scenario{}},
		{"abm-incast-resolved.json", Scenario{
			Name:   "abm-incast",
			Seed:   42,
			Switch: Switch{BM: "ABM"},
			Workload: Workload{
				Load: 0.6, CC: "cubic",
				Incast: Incast{RequestFrac: 0.3},
			},
		}},
	} {
		t.Run(tc.golden, func(t *testing.T) {
			r, err := tc.spec.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("resolved scenario drifted from %s:\n%s\nwant:\n%s", path, got, want)
			}
		})
	}
}

// TestJSONRoundTrip: encode → decode → Resolve lands on the same
// resolved spec, both from the sparse form and from the resolved form.
func TestJSONRoundTrip(t *testing.T) {
	s := Scenario{
		Name: "rt",
		Seed: 7,
		Fabric: Fabric{Spines: 4, Leaves: 4, HostsPerLeaf: 8, UplinkGbps: 25,
			LinkDelay: Duration(4 * units.Microsecond)},
		Buffer:   Buffer{QueuesPerPort: 2, Alphas: []float64{1, 0.25}},
		Switch:   Switch{BM: "IB", Scheduler: "strict"},
		Workload: Workload{Load: 0.2, CC: "dctcp", Incast: Incast{RequestFrac: 0.1}},
		Duration: Duration(3 * units.Millisecond),
	}
	want, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	for _, from := range []Scenario{s, want} {
		data, err := from.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Parse(data)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip drifted:\ngot  %+v\nwant %+v", got, want)
		}
	}
}

// TestDurationJSON: both encodings are exact, including sub-nanosecond
// picosecond values that have no Go duration representation.
func TestDurationJSON(t *testing.T) {
	for _, tc := range []struct {
		d    Duration
		want string
	}{
		{Duration(25 * units.Millisecond), `"25ms"`},
		{Duration(800 * units.Microsecond), `"800µs"`},
		{Duration(1500), `1500`}, // 1.5ns in ps: not duration-representable
	} {
		data, err := json.Marshal(tc.d)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != tc.want {
			t.Errorf("marshal %d ps = %s, want %s", int64(tc.d), data, tc.want)
		}
		var back Duration
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != tc.d {
			t.Errorf("round trip %d ps → %d ps", int64(tc.d), int64(back))
		}
	}
	var fromString Duration
	if err := json.Unmarshal([]byte(`"10us"`), &fromString); err != nil {
		t.Fatal(err)
	}
	if fromString.Time() != 10*units.Microsecond {
		t.Errorf(`"10us" = %d ps, want %d`, int64(fromString), int64(10*units.Microsecond))
	}
}

// TestParseRejectsUnknownFields: typos in hand-written spec files must
// fail loudly, not silently default.
func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"fabric": {"spine_count": 4}}`)); err == nil {
		t.Fatal("expected unknown-field error")
	}
	if _, err := Parse([]byte(`{"seed": 1, "bogus": true}`)); err == nil {
		t.Fatal("expected unknown-field error")
	}
}

// TestResolveRejects covers the validation surface: one bad spec per
// rule, each naming the offending field in its error.
func TestResolveRejects(t *testing.T) {
	frac := 1.5
	for name, tc := range map[string]struct {
		spec Scenario
		want string
	}{
		"unknown bm":        {Scenario{Switch: Switch{BM: "bogus"}}, "unknown policy"},
		"unknown scheduler": {Scenario{Switch: Switch{Scheduler: "fifo"}}, "scheduler"},
		"abm-approx needs interval": {
			Scenario{Switch: Switch{BM: "ABM-approx"}}, "update interval"},
		"headroom over 1": {
			Scenario{Buffer: Buffer{HeadroomFrac: &frac}}, "headroom_frac"},
		"load over 1": {
			Scenario{Workload: Workload{Load: 1.2}}, "load"},
		"unknown background": {
			Scenario{Workload: Workload{Load: 0.4, Background: "uniform"}}, "background"},
		"unknown cc": {
			Scenario{Workload: Workload{Load: 0.4, CC: "bbr3"}}, "reno"},
		"unknown incast cc": {
			Scenario{Workload: Workload{Incast: Incast{RequestFrac: 0.3, CC: "bbr3"}}}, "bbr3"},
		"unknown mixed cc": {
			Scenario{Workload: Workload{Load: 0.4,
				MixedCC: []CCAssignment{{CC: "bbr3", Prio: 0}}}}, "reno"},
		"trimming with ecn cc": {
			Scenario{Switch: Switch{Trimming: true},
				Workload: Workload{Load: 0.4, CC: "dctcp"}}, "trimming"},
		"obs sample range": {
			Scenario{Obs: obs.Options{Sample: 2}}, "sample"},
		"obs filter": {
			Scenario{Obs: obs.Options{Filter: "bogus-kind"}}, "bogus-kind"},
		"hybrid with shards": {
			Scenario{Shards: 2, Hybrid: Hybrid{Enabled: true}}, "serial"},
		"hybrid guard band over 1": {
			Scenario{Hybrid: Hybrid{Enabled: true, GuardBandFrac: 1.5}}, "guard_band_frac"},
		"long-flow count range": {
			Scenario{Workload: Workload{LongFlows: LongFlows{FlowKB: 100, Count: 9999}}}, "count"},
	} {
		t.Run(name, func(t *testing.T) {
			_, err := tc.spec.Resolve()
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// A disabled hybrid block must stay all-zero through Resolve (so it is
// omitted from resolved specs), while an enabled one gets the defaults.
func TestResolveHybrid(t *testing.T) {
	d := Scenario{}.MustResolve()
	if d.Hybrid != (Hybrid{}) {
		t.Errorf("disabled hybrid resolved to %+v, want zero", d.Hybrid)
	}
	r := Scenario{Hybrid: Hybrid{Enabled: true}}.MustResolve()
	want := Hybrid{Enabled: true, GuardBandFrac: 0.5, SteadyRTTs: 8, EpochDt: 8 * defaultLinkDelay}
	if r.Hybrid != want {
		t.Errorf("enabled hybrid resolved to %+v, want %+v", r.Hybrid, want)
	}
}

// TestResolveDerivations checks the cross-field rules: INT forced on by
// the CC mix, headroom keyed on the BM family, alpha expansion, incast
// CC inheritance.
func TestResolveDerivations(t *testing.T) {
	r, err := Scenario{
		Switch:   Switch{BM: "ABM"},
		Buffer:   Buffer{QueuesPerPort: 4, Alphas: []float64{2}},
		Workload: Workload{Load: 0.4, CC: "powertcp", Incast: Incast{RequestFrac: 0.3}},
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Switch.EnableINT {
		t.Error("powertcp did not force EnableINT")
	}
	if got := *r.Buffer.HeadroomFrac; got != 1.0/8 {
		t.Errorf("ABM headroom = %g, want 1/8", got)
	}
	if want := []float64{2, 2, 2, 2}; !reflect.DeepEqual(r.Buffer.Alphas, want) {
		t.Errorf("single alpha not replicated: %v", r.Buffer.Alphas)
	}
	if r.Workload.Incast.CC != "powertcp" {
		t.Errorf("incast CC = %q, want inherited powertcp", r.Workload.Incast.CC)
	}

	r, err = Scenario{Switch: Switch{BM: "DT"}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if got := *r.Buffer.HeadroomFrac; got != 0 {
		t.Errorf("DT headroom = %g, want 0", got)
	}
	if r.Switch.EnableINT {
		t.Error("cubic-only mix enabled INT")
	}
}

// TestCloneNoAliasing: mutating a clone's slices and headroom pointer
// must not write through to the original — the property sweep axes
// depend on.
func TestCloneNoAliasing(t *testing.T) {
	frac := 0.25
	s := Scenario{
		Buffer:   Buffer{HeadroomFrac: &frac, Alphas: []float64{1, 2}},
		Workload: Workload{MixedCC: []CCAssignment{{CC: "cubic", Prio: 0}}},
	}
	c := s.Clone()
	*c.Buffer.HeadroomFrac = 0.5
	c.Buffer.Alphas[0] = 9
	c.Workload.MixedCC[0].CC = "dctcp"
	if *s.Buffer.HeadroomFrac != 0.25 || s.Buffer.Alphas[0] != 1 || s.Workload.MixedCC[0].CC != "cubic" {
		t.Fatalf("Clone aliases its source: %+v", s)
	}
}

func TestOversubscription(t *testing.T) {
	uniform := Fabric{Spines: 2, Leaves: 2, HostsPerLeaf: 8, LinkGbps: 10}
	if got := uniform.Oversubscription(); got != 4 {
		t.Errorf("2x2x8 uniform = %g:1, want 4:1", got)
	}
	mixed := Fabric{Spines: 2, Leaves: 2, HostsPerLeaf: 8, LinkGbps: 10, UplinkGbps: 25}
	if got := mixed.Oversubscription(); got != 1.6 {
		t.Errorf("25G uplinks = %g:1, want 1.6:1", got)
	}
}

// TestCommittedScenarios resolves every scenario file shipped in the
// repo (scenarios/ and examples/*/scenario.json): each must parse, pass
// validation, and resolve idempotently.
func TestCommittedScenarios(t *testing.T) {
	var paths []string
	for _, glob := range []string{
		filepath.Join("..", "..", "scenarios", "*.json"),
		filepath.Join("..", "..", "examples", "*", "scenario.json"),
	} {
		m, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, m...)
	}
	if len(paths) < 4 {
		t.Fatalf("expected the committed scenario files, found %v", paths)
	}
	for _, path := range paths {
		t.Run(filepath.Base(filepath.Dir(path))+"/"+filepath.Base(path), func(t *testing.T) {
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			r, err := s.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			r2, err := r.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r, r2) {
				t.Fatal("resolution not idempotent")
			}
		})
	}
}
