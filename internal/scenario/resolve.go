package scenario

import (
	"fmt"

	"abm/internal/bm"
	"abm/internal/cc"
	"abm/internal/obs"
	"abm/internal/units"
)

// Paper defaults: the 8x8x32 Trident2 fabric of §4.1 and the scheme
// parameters of §3. Every other layer (experiment cells, the
// Simulation API, CLI flags) used to re-implement these; Resolve is now
// the only place they live.
const (
	defaultSpines       = 8
	defaultLeaves       = 8
	defaultHostsPerLeaf = 32
	defaultLinkGbps     = 10
	defaultKBPerGbps    = 9.6 // Trident2
	defaultAlpha        = 0.5
	defaultAlphaUnsched = 64
	defaultCongestedF   = 0.9
	defaultIncastLoad   = 0.04
	defaultFanout       = 8
	abmHeadroomFrac     = 1.0 / 8 // §4.1: ABM "uses headroom similar to IB"
)

var (
	defaultLinkDelay = Duration(10 * units.Microsecond)
	defaultDuration  = Duration(25 * units.Millisecond)
)

// Resolve validates the scenario and returns the fully-explicit spec:
// every defaulted field is filled with its concrete value, so the
// result is a complete record of what a run will do and resolving it
// again is a no-op. The input is not mutated.
func (s Scenario) Resolve() (Scenario, error) {
	r := s.Clone()

	// Fabric: the paper's 8x8x32 leaf–spine at 10G, 10us per link, or a
	// k-ary fat tree when the spec asks for one.
	f := &r.Fabric
	switch f.Topology {
	case "", "leafspine":
		f.Topology = "leafspine"
		if f.K != 0 {
			return Scenario{}, fmt.Errorf("scenario: fabric k is a fat-tree knob; leaf–spine is sized by spines/leaves/hosts_per_leaf")
		}
		if f.Spines <= 0 {
			f.Spines = defaultSpines
		}
		if f.Leaves <= 0 {
			f.Leaves = defaultLeaves
		}
		if f.HostsPerLeaf <= 0 {
			f.HostsPerLeaf = defaultHostsPerLeaf
		}
	case "fattree":
		if f.Spines != 0 || f.Leaves != 0 || f.HostsPerLeaf != 0 {
			return Scenario{}, fmt.Errorf("scenario: fat-tree fabrics are sized by k alone, not spines/leaves/hosts_per_leaf")
		}
		if f.K == 0 {
			f.K = 4
		}
		if f.K < 2 || f.K%2 != 0 {
			return Scenario{}, fmt.Errorf("scenario: fat-tree k %d must be even and >= 2", f.K)
		}
	default:
		return Scenario{}, fmt.Errorf("scenario: unknown topology %q (known: leafspine, fattree)", f.Topology)
	}
	if f.LinkGbps <= 0 {
		f.LinkGbps = defaultLinkGbps
	}
	if f.UplinkGbps <= 0 {
		f.UplinkGbps = f.LinkGbps
	}
	if f.LinkDelay <= 0 {
		f.LinkDelay = defaultLinkDelay
	}
	g := f.graph()
	for i, lf := range f.LinkFaults {
		if _, err := g.LinkIndex(lf.Link); err != nil {
			return Scenario{}, fmt.Errorf("scenario: link fault %d: %w", i, err)
		}
		if lf.At <= 0 {
			return Scenario{}, fmt.Errorf("scenario: link fault %d (%s): at must be positive", i, lf.Link)
		}
		if lf.Flaps < 0 || lf.DegradeGbps < 0 {
			return Scenario{}, fmt.Errorf("scenario: link fault %d (%s): negative flaps or degrade_gbps", i, lf.Link)
		}
		if lf.Flaps > 0 {
			if lf.Period <= 0 {
				return Scenario{}, fmt.Errorf("scenario: link fault %d (%s): flaps need a positive period", i, lf.Link)
			}
			if lf.RecoverAt != 0 || lf.DegradeGbps != 0 {
				return Scenario{}, fmt.Errorf("scenario: link fault %d (%s): flaps exclude recover_at and degrade_gbps", i, lf.Link)
			}
		} else if lf.Period != 0 {
			return Scenario{}, fmt.Errorf("scenario: link fault %d (%s): period needs flaps", i, lf.Link)
		}
		if lf.RecoverAt != 0 && lf.RecoverAt <= lf.At {
			return Scenario{}, fmt.Errorf("scenario: link fault %d (%s): recover_at %v not after at %v", i, lf.Link, lf.RecoverAt.Time(), lf.At.Time())
		}
	}
	if len(f.LinkFaults) > 0 {
		// A permanently disconnected group black-holes its senders, whose
		// RTO chains then never die out — reject schedules whose final
		// link state partitions the fabric (flaps and degradations end in
		// service; only an unrecovered hard failure stays down).
		final := make([]bool, len(g.Links))
		for i := range final {
			final[i] = true
		}
		for _, lf := range f.LinkFaults {
			if lf.Flaps == 0 && lf.DegradeGbps == 0 && lf.RecoverAt == 0 {
				li, _ := g.LinkIndex(lf.Link)
				final[li] = false
			}
		}
		if !g.Reachable(final) {
			return Scenario{}, fmt.Errorf("scenario: link faults leave the fabric permanently partitioned; recover at least one path per edge group")
		}
	}
	if r.Duration <= 0 {
		r.Duration = defaultDuration
	}
	if r.Shards < 0 {
		r.Shards = 0
	}

	// Buffer model.
	b := &r.Buffer
	if b.KBPerPortPerGbps <= 0 {
		b.KBPerPortPerGbps = defaultKBPerGbps
	}
	if b.QueuesPerPort <= 0 {
		b.QueuesPerPort = 1
	}
	b.Alphas = expandAlphas(b.Alphas, b.QueuesPerPort)
	if b.AlphaUnscheduled <= 0 {
		b.AlphaUnscheduled = defaultAlphaUnsched
	}

	// Switch policies.
	sw := &r.Switch
	if sw.BM == "" {
		sw.BM = "DT"
	}
	if sw.CongestedFactor <= 0 {
		sw.CongestedFactor = defaultCongestedF
	}
	if sw.StatsInterval <= 0 {
		// One healthy-fabric base RTT: 8 link delays on the two-tier
		// leaf–spine, 12 on a fat tree.
		sw.StatsInterval = 2 * Duration(g.WorstHops()) * f.LinkDelay
	}
	switch sw.Scheduler {
	case "":
		sw.Scheduler = "rr"
	case "rr", "dwrr", "strict":
	default:
		return Scenario{}, fmt.Errorf("scenario: unknown scheduler %q (known: rr, dwrr, strict)", sw.Scheduler)
	}
	numQueues := b.QueuesPerPort * f.radix()
	if err := bm.Validate(sw.BM, numQueues, sw.UpdateInterval.Time()); err != nil {
		return Scenario{}, err
	}

	// Headroom: scheme default unless the spec pins a fraction.
	if b.HeadroomFrac == nil {
		frac := 0.0
		if sw.BM == "ABM" || sw.BM == "IB" || sw.BM == "ABM-approx" {
			frac = abmHeadroomFrac
		}
		b.HeadroomFrac = &frac
	}
	if *b.HeadroomFrac < 0 {
		*b.HeadroomFrac = 0
	}
	if *b.HeadroomFrac > 1 {
		return Scenario{}, fmt.Errorf("scenario: headroom_frac %g exceeds the whole buffer", *b.HeadroomFrac)
	}

	// Workload mix.
	w := &r.Workload
	if w.Load < 0 || w.Load > 1 {
		return Scenario{}, fmt.Errorf("scenario: workload load %g outside [0, 1]", w.Load)
	}
	switch w.Background {
	case "":
		w.Background = "websearch"
	case "websearch", "datamining":
	default:
		return Scenario{}, fmt.Errorf("scenario: unknown background workload %q (known: websearch, datamining)", w.Background)
	}
	if w.CC == "" {
		w.CC = "cubic"
	}
	ic := &w.Incast
	if ic.RequestFrac < 0 {
		ic.RequestFrac = 0
	}
	if ic.Fanout <= 0 {
		ic.Fanout = defaultFanout
	}
	if ic.Load <= 0 {
		ic.Load = defaultIncastLoad
	}
	if ic.CC == "" {
		ic.CC = w.CC
	}
	// CC names are checked where a factory will actually be built:
	// background names when Load > 0, incast when RequestFrac > 0.
	if w.Load > 0 {
		if len(w.MixedCC) > 0 {
			for _, a := range w.MixedCC {
				if err := validCC(a.CC); err != nil {
					return Scenario{}, err
				}
			}
		} else if err := validCC(w.CC); err != nil {
			return Scenario{}, err
		}
	}
	if ic.RequestFrac > 0 {
		if err := validCC(ic.CC); err != nil {
			return Scenario{}, err
		}
	}
	lf := &w.LongFlows
	if lf.FlowKB < 0 {
		lf.FlowKB = 0
	}
	if lf.FlowKB > 0 {
		if lf.CC == "" {
			lf.CC = w.CC
		}
		if err := validCC(lf.CC); err != nil {
			return Scenario{}, err
		}
		if lf.Stride <= 0 {
			lf.Stride = g.HostsPerEdge
		}
		if n := g.NumHosts(); lf.Stride%n == 0 {
			return Scenario{}, fmt.Errorf("scenario: long-flow stride %d maps every host onto itself on %d hosts", lf.Stride, n)
		}
		if lf.Stagger <= 0 {
			lf.Stagger = Duration(units.Microsecond)
		}
		n := g.NumHosts()
		if lf.Count < 0 || lf.Count > n {
			return Scenario{}, fmt.Errorf("scenario: long-flow count %d outside [0, %d hosts]", lf.Count, n)
		}
	}

	// Hybrid engine: defaults only when enabled, so a disabled block
	// stays all-zero and is omitted from resolved specs.
	hy := &r.Hybrid
	if hy.Enabled {
		if r.Shards >= 1 {
			return Scenario{}, fmt.Errorf("scenario: the hybrid fluid/packet engine requires the serial engine (shards 0), got shards %d", r.Shards)
		}
		if hy.GuardBandFrac > 1 {
			return Scenario{}, fmt.Errorf("scenario: hybrid guard_band_frac %g exceeds 1", hy.GuardBandFrac)
		}
		if hy.GuardBandFrac <= 0 {
			hy.GuardBandFrac = 0.5
		}
		if hy.SteadyRTTs <= 0 {
			hy.SteadyRTTs = 8
		}
		if hy.EpochDt <= 0 {
			hy.EpochDt = 2 * Duration(g.WorstHops()) * f.LinkDelay // one base RTT
		}
	}

	if sw.Trimming && r.usesECN() {
		return Scenario{}, fmt.Errorf("scenario: trimming and ECN-based CC (dctcp/dcqcn) AQMs are mutually exclusive")
	}
	sw.EnableINT = sw.EnableINT || r.needsINT()

	// Telemetry options share the CLI flag surface's validation.
	if _, err := obs.ParseMask(r.Obs.Filter); err != nil {
		return Scenario{}, err
	}
	if r.Obs.Sample < 0 || r.Obs.Sample > 1 {
		return Scenario{}, fmt.Errorf("scenario: obs sample %g outside [0, 1]", r.Obs.Sample)
	}
	return r, nil
}

// MustResolve is Resolve for specs that are known-valid (committed
// files covered by tests); it panics on error.
func (s Scenario) MustResolve() Scenario {
	r, err := s.Resolve()
	if err != nil {
		panic(err)
	}
	return r
}

// expandAlphas produces the explicit per-queue alpha vector: a single
// entry replicates across every queue (the "one alpha" knob of the
// evaluation cells), missing or non-positive entries take the paper's
// 0.5.
func expandAlphas(in []float64, queues int) []float64 {
	out := make([]float64, queues)
	for i := range out {
		switch {
		case len(in) == 1 && in[0] > 0:
			out[i] = in[0]
		case i < len(in) && in[i] > 0:
			out[i] = in[i]
		default:
			out[i] = defaultAlpha
		}
	}
	return out
}

func validCC(name string) error {
	if _, err := cc.NewFactory(name); err != nil {
		return err
	}
	return nil
}

// ccNames lists every algorithm the scenario configures, enabled or
// not, mirroring how the evaluation cells derived INT and AQM needs.
func (s Scenario) ccNames() []string {
	names := []string{s.Workload.CC, s.Workload.Incast.CC}
	if s.Workload.LongFlows.CC != "" {
		names = append(names, s.Workload.LongFlows.CC)
	}
	for _, a := range s.Workload.MixedCC {
		names = append(names, a.CC)
	}
	return names
}

// needsINT reports whether any configured algorithm requires in-band
// telemetry.
func (s Scenario) needsINT() bool {
	for _, n := range s.ccNames() {
		if n == "powertcp" || n == "hpcc" {
			return true
		}
	}
	return false
}

// usesECN reports whether any configured algorithm needs the ECN
// threshold AQM (DCTCP's K = 65 packets, §4.1).
func (s Scenario) usesECN() bool {
	for _, n := range s.ccNames() {
		if n == "dctcp" || n == "dcqcn" {
			return true
		}
	}
	return false
}
