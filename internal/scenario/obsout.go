package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"abm/internal/obs"
	"abm/internal/packet"
	"abm/internal/topo"
	"abm/internal/trace"
)

// writeObsOutputs flushes a finished run's telemetry to the files its
// options request. A nil session (telemetry off) writes nothing. Called
// after the drain, when every shard is quiescent.
func writeObsOutputs(o obs.Options, sess *obs.Session, n *topo.Network, rec *histRecorder) error {
	if sess == nil {
		return nil
	}
	if o.HistFile != "" && rec != nil {
		if err := writeTo(o.HistFile, func(f *os.File) error {
			_, err := f.Write(rec.series)
			return err
		}); err != nil {
			return err
		}
	}
	var events []obs.Event
	if o.EventsFile != "" || o.ChromeFile != "" {
		events = sess.MergedEvents()
	}
	if o.EventsFile != "" {
		if err := writeTo(o.EventsFile, func(f *os.File) error {
			return obs.WriteNDJSON(f, events)
		}); err != nil {
			return err
		}
	}
	if o.ChromeFile != "" {
		if err := writeTo(o.ChromeFile, func(f *os.File) error {
			return obs.WriteChrome(f, events, func(id int32) string {
				return n.NodeName(packet.NodeID(id))
			})
		}); err != nil {
			return err
		}
	}
	if o.CountersFile != "" {
		if err := writeTo(o.CountersFile, func(f *os.File) error {
			return writeCounters(f, sess, n)
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeCounters renders the counter totals (sorted by name) followed by
// a blank line and the per-queue summary TSV.
func writeCounters(f *os.File, sess *obs.Session, n *topo.Network) error {
	totals := sess.Totals()
	keys := make([]string, 0, len(totals))
	for k := range totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(f, "%s\t%d\n", k, totals[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(f); err != nil {
		return err
	}
	return trace.WriteQueueCounters(f, n)
}

// writeTo creates path (making parent directories, which per-job output
// under a fresh directory needs) and runs the writer against it.
func writeTo(path string, write func(*os.File) error) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
