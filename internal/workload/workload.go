// Package workload generates the paper's two traffic patterns (§4.1):
// a Poisson web-search workload whose flow sizes follow the DCTCP
// measurement CDF, at a configurable fraction of the fabric's access
// bandwidth, and a synthetic incast workload modeling distributed
// file-system query/response fan-in.
package workload

import (
	"fmt"
	"math/rand"

	"abm/internal/cc"
	"abm/internal/metrics"
	"abm/internal/randutil"
	"abm/internal/sim"
	"abm/internal/topo"
	"abm/internal/units"
)

// WebSearch drives the background workload: flows arrive as a global
// Poisson process with rate chosen so the expected inter-rack offered
// load equals Load times the fabric's bisection capacity; sizes follow
// the web-search CDF; sources and destinations are distinct uniform
// hosts.
type WebSearch struct {
	Net     *topo.Network
	Load    float64 // fraction of bisection (uplink) capacity, e.g. 0.4
	Prio    uint8
	CC      cc.Factory
	Sizes   *randutil.EmpiricalCDF
	Collect *metrics.Collector

	// PickCC optionally overrides CC per flow (used by the mixed-protocol
	// isolation experiment); it receives the flow index.
	PickCC func(i int) (cc.Factory, uint8)

	// Seed isolates the workload's randomness from the rest of the
	// simulation, so two runs that differ only in switch configuration
	// see identical arrival patterns. Zero derives a fixed default.
	Seed int64

	rng     *rand.Rand
	started int
	stopped bool
}

// Start begins generating flows until Stop. It panics on a non-positive
// load.
func (w *WebSearch) Start() {
	if w.Load <= 0 || w.Load > 1 {
		panic(fmt.Sprintf("workload: load %v out of (0,1]", w.Load))
	}
	if w.Sizes == nil {
		w.Sizes = randutil.WebSearch
	}
	if w.CC == nil && w.PickCC == nil {
		panic("workload: WebSearch needs a cc factory")
	}
	seed := w.Seed
	if seed == 0 {
		seed = 0x5eed_ab1e
	}
	w.rng = rand.New(rand.NewSource(seed))
	w.scheduleNext()
}

// interArrival returns the mean gap between flow arrivals for the target
// load. Load is defined against the fabric's bisection (leaf-spine
// uplink) capacity: with the paper's 4:1 oversubscription, defining it
// against host bandwidth would saturate the uplinks at 25% already.
// Uniform source/destination selection sends an interRack fraction of
// the bytes across the bisection, so the arrival rate is scaled to make
// that fraction equal Load * bisection capacity.
func (w *WebSearch) interArrival() units.Time {
	bisection := float64(w.Net.BisectionBits()) // bits/s: edge uplink aggregate
	n := float64(w.Net.NumHosts())
	interRackFrac := (n - float64(w.Net.HostsPerGroup())) / (n - 1)
	flowsPerSec := w.Load * bisection / (w.Sizes.Mean() * 8 * interRackFrac)
	return units.Time(float64(units.Second) / flowsPerSec)
}

func (w *WebSearch) scheduleNext() {
	if w.stopped {
		return
	}
	gap := randutil.Exponential(w.rng, w.interArrival())
	w.Net.Sim.After(gap, func() {
		if w.stopped {
			return
		}
		w.launch()
		w.scheduleNext()
	})
}

func (w *WebSearch) launch() {
	rng := w.rng
	n := w.Net.NumHosts()
	src := rng.Intn(n)
	dst := rng.Intn(n - 1)
	if dst >= src {
		dst++
	}
	size := w.Sizes.SampleBytes(rng)
	factory, prio := w.CC, w.Prio
	if w.PickCC != nil {
		factory, prio = w.PickCC(w.started)
	}
	w.started++
	w.record(src, dst, size, prio, factory(), metrics.ClassWebSearch)
}

func (w *WebSearch) record(src, dst int, size units.ByteCount, prio uint8,
	algo cc.Algorithm, class metrics.FlowClass) {
	start := w.Net.Sim.Now()
	rec := metrics.FlowRecord{
		Class: class,
		Prio:  prio,
		Size:  size,
		Start: start,
		Ideal: w.Net.IdealFCT(src, dst, size),
	}
	idx := -1
	if w.Collect != nil {
		w.Collect.AddFlow(rec)
		idx = len(w.Collect.Flows) - 1
	}
	id := w.Net.StartFlow(src, dst, size, prio, algo, func(now units.Time) {
		if idx >= 0 {
			w.Collect.Flows[idx].End = now
			w.Collect.Flows[idx].Finished = true
		}
	})
	if idx >= 0 {
		w.Collect.Flows[idx].ID = id
	}
}

// Started returns the number of flows launched so far.
func (w *WebSearch) Started() int { return w.started }

// genWS is one pre-generated web-search arrival (PickCC not yet
// resolved: the shared experiment RNG must be drawn in merged arrival
// order, see SchedulePregen).
type genWS struct {
	t        units.Time
	src, dst int
	size     units.ByteCount
	idx      int // flow index passed to PickCC
}

// generate replays Start/scheduleNext/launch draw-for-draw against the
// workload's private RNG, producing every arrival with time <= horizon
// (the same inclusive bound RunUntil(duration) gives the live
// generator) without touching any simulator.
func (w *WebSearch) generate(horizon units.Time) []genWS {
	if w.Load <= 0 || w.Load > 1 {
		panic(fmt.Sprintf("workload: load %v out of (0,1]", w.Load))
	}
	if w.Sizes == nil {
		w.Sizes = randutil.WebSearch
	}
	if w.CC == nil && w.PickCC == nil {
		panic("workload: WebSearch needs a cc factory")
	}
	seed := w.Seed
	if seed == 0 {
		seed = 0x5eed_ab1e
	}
	rng := rand.New(rand.NewSource(seed))
	mean := w.interArrival()
	n := w.Net.NumHosts()
	var out []genWS
	t := units.Time(0)
	for {
		t += randutil.Exponential(rng, mean)
		if t > horizon {
			return out
		}
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		size := w.Sizes.SampleBytes(rng)
		out = append(out, genWS{t: t, src: src, dst: dst, size: size, idx: len(out)})
	}
}

// Stop halts flow generation (flows in flight keep running).
func (w *WebSearch) Stop() { w.stopped = true }

// Incast drives the query/response workload: queries arrive as a Poisson
// process; each query picks a requester and Fanout responders uniformly
// from a different rack, and every responder sends RequestSize/Fanout
// bytes back simultaneously — the paper's distributed file-system
// behaviour (§4.1).
type Incast struct {
	Net         *topo.Network
	RequestSize units.ByteCount // total bytes fanned in per query
	Fanout      int             // responding servers per query
	QueryRate   float64         // queries per second across the fabric
	Prio        uint8
	CC          cc.Factory
	Collect     *metrics.Collector

	// PickPrio optionally overrides Prio per response flow (used when the
	// load is spread across queues, §4.4).
	PickPrio func() uint8

	// Seed isolates the workload's randomness; zero derives a default.
	Seed int64

	rng     *rand.Rand
	queries int
	stopped bool
}

// Start begins generating queries until Stop.
func (ic *Incast) Start() {
	if ic.Fanout <= 0 {
		ic.Fanout = 8
	}
	if ic.RequestSize <= 0 {
		panic("workload: incast needs a request size")
	}
	if ic.QueryRate <= 0 {
		panic("workload: incast needs a query rate")
	}
	if ic.CC == nil {
		panic("workload: incast needs a cc factory")
	}
	seed := ic.Seed
	if seed == 0 {
		seed = 0x1ca57
	}
	ic.rng = rand.New(rand.NewSource(seed))
	ic.scheduleNext()
}

func (ic *Incast) scheduleNext() {
	if ic.stopped {
		return
	}
	mean := units.Time(float64(units.Second) / ic.QueryRate)
	gap := randutil.Exponential(ic.rng, mean)
	ic.Net.Sim.After(gap, func() {
		if ic.stopped {
			return
		}
		ic.launchQuery()
		ic.scheduleNext()
	})
}

func (ic *Incast) launchQuery() {
	rng := ic.rng
	n := ic.Net.NumHosts()
	requester := rng.Intn(n)
	reqGroup := ic.Net.GroupOf(requester)

	// Responders come from racks other than the requester's.
	var candidates []int
	for h := 0; h < n; h++ {
		if ic.Net.GroupOf(h) != reqGroup {
			candidates = append(candidates, h)
		}
	}
	fanout := ic.Fanout
	if fanout > len(candidates) {
		fanout = len(candidates)
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	per := ic.RequestSize / units.ByteCount(fanout)
	if per < 1 {
		per = 1
	}
	ic.queries++
	for _, responder := range candidates[:fanout] {
		ic.recordFlow(responder, requester, per)
	}
}

func (ic *Incast) recordFlow(src, dst int, size units.ByteCount) {
	start := ic.Net.Sim.Now()
	prio := ic.Prio
	if ic.PickPrio != nil {
		prio = ic.PickPrio()
	}
	rec := metrics.FlowRecord{
		Class: metrics.ClassIncast,
		Prio:  prio,
		Size:  size,
		Start: start,
		Ideal: ic.Net.IdealFCT(src, dst, size),
	}
	idx := -1
	if ic.Collect != nil {
		ic.Collect.AddFlow(rec)
		idx = len(ic.Collect.Flows) - 1
	}
	id := ic.Net.StartFlow(src, dst, size, prio, ic.CC(), func(now units.Time) {
		if idx >= 0 {
			ic.Collect.Flows[idx].End = now
			ic.Collect.Flows[idx].Finished = true
		}
	})
	if idx >= 0 {
		ic.Collect.Flows[idx].ID = id
	}
}

// Queries returns the number of queries issued.
func (ic *Incast) Queries() int { return ic.queries }

// genQuery is one pre-generated incast query: all of its response
// flows share the arrival time (PickPrio resolved later, in merged
// order).
type genQuery struct {
	t     units.Time
	flows []genFlow
}

type genFlow struct {
	src, dst int
	size     units.ByteCount
}

// generate replays the live incast generator draw-for-draw up to the
// horizon (inclusive); see WebSearch.generate.
func (ic *Incast) generate(horizon units.Time) []genQuery {
	if ic.Fanout <= 0 {
		ic.Fanout = 8
	}
	if ic.RequestSize <= 0 {
		panic("workload: incast needs a request size")
	}
	if ic.QueryRate <= 0 {
		panic("workload: incast needs a query rate")
	}
	if ic.CC == nil {
		panic("workload: incast needs a cc factory")
	}
	seed := ic.Seed
	if seed == 0 {
		seed = 0x1ca57
	}
	rng := rand.New(rand.NewSource(seed))
	mean := units.Time(float64(units.Second) / ic.QueryRate)
	n := ic.Net.NumHosts()
	var out []genQuery
	t := units.Time(0)
	for {
		t += randutil.Exponential(rng, mean)
		if t > horizon {
			return out
		}
		requester := rng.Intn(n)
		reqGroup := ic.Net.GroupOf(requester)
		var candidates []int
		for h := 0; h < n; h++ {
			if ic.Net.GroupOf(h) != reqGroup {
				candidates = append(candidates, h)
			}
		}
		fanout := ic.Fanout
		if fanout > len(candidates) {
			fanout = len(candidates)
		}
		rng.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		per := ic.RequestSize / units.ByteCount(fanout)
		if per < 1 {
			per = 1
		}
		q := genQuery{t: t}
		for _, responder := range candidates[:fanout] {
			q.flows = append(q.flows, genFlow{src: responder, dst: requester, size: per})
		}
		out = append(out, q)
	}
}

// pregenLaunch records one pre-generated flow and schedules its launch
// on the source host's shard. It mirrors the live record path exactly:
// the collector row is appended (and the flow ID allocated) at planning
// time in arrival order, so collector layout and flow IDs match a
// serial live run; only the End/Finished fields are written during the
// run, each by the flow's own completion callback into its private row
// — safe under shard concurrency.
func pregenLaunch(net *topo.Network, col *metrics.Collector, t units.Time,
	src, dst int, size units.ByteCount, prio uint8, algo cc.Algorithm, class metrics.FlowClass) {
	rec := metrics.FlowRecord{
		Class: class,
		Prio:  prio,
		Size:  size,
		Start: t,
		Ideal: net.IdealFCT(src, dst, size),
	}
	idx := -1
	if col != nil {
		col.AddFlow(rec)
		idx = len(col.Flows) - 1
	}
	id := net.AllocFlowID()
	if idx >= 0 {
		col.Flows[idx].ID = id
	}
	onComplete := func(now units.Time) {
		if idx >= 0 {
			col.Flows[idx].End = now
			col.Flows[idx].Finished = true
		}
	}
	net.SimOfHost(src).At(t, func() {
		net.StartFlowWithID(id, src, dst, size, prio, algo, onComplete)
	})
}

// SchedulePregen pre-generates both workloads up to the horizon and
// schedules every flow launch on its source host's simulator. It is the
// sharded-run replacement for Start/Stop: generators draw from their
// private streams exactly as the live path does, and the shared
// experiment RNG behind PickCC/PickPrio is drawn in merged arrival
// order (web-search first on exact ties), reproducing the serial
// interleaving. Either workload may be nil.
func SchedulePregen(ws *WebSearch, ic *Incast, horizon units.Time) {
	var wsArr []genWS
	var icArr []genQuery
	if ws != nil {
		wsArr = ws.generate(horizon)
	}
	if ic != nil {
		icArr = ic.generate(horizon)
	}
	i, j := 0, 0
	for i < len(wsArr) || j < len(icArr) {
		if i < len(wsArr) && (j >= len(icArr) || wsArr[i].t <= icArr[j].t) {
			a := wsArr[i]
			i++
			factory, prio := ws.CC, ws.Prio
			if ws.PickCC != nil {
				factory, prio = ws.PickCC(a.idx)
			}
			ws.started++
			pregenLaunch(ws.Net, ws.Collect, a.t, a.src, a.dst, a.size, prio, factory(), metrics.ClassWebSearch)
		} else {
			q := icArr[j]
			j++
			ic.queries++
			for _, f := range q.flows {
				prio := ic.Prio
				if ic.PickPrio != nil {
					prio = ic.PickPrio()
				}
				pregenLaunch(ic.Net, ic.Collect, q.t, f.src, f.dst, f.size, prio, ic.CC(), metrics.ClassIncast)
			}
		}
	}
}

// Stop halts query generation.
func (ic *Incast) Stop() { ic.stopped = true }

// LongFlows drives the steady long-flow workload: host i opens one flow
// of Size bytes to host (i+Stride) mod N at time i*Stagger — a full
// permutation pattern whose flows all converge to steady state (the
// hybrid engine's demotion showcase). The pattern is deterministic (no
// RNG), so one Schedule path serves both the serial and the sharded
// engines: launches are planned up front on each source host's
// simulator, with flow IDs allocated in host order.
type LongFlows struct {
	Net     *topo.Network
	Size    units.ByteCount
	Stride  int // source-to-destination offset of the permutation
	Count   int // source hosts that open a flow (0 = all)
	Stagger units.Time
	Prio    uint8
	CC      cc.Factory
	Collect *metrics.Collector

	started int
}

// Schedule plans every flow launch. Call before the run starts.
func (lf *LongFlows) Schedule() {
	if lf.Size <= 0 {
		panic("workload: long flows need a size")
	}
	if lf.CC == nil {
		panic("workload: long flows need a cc factory")
	}
	n := lf.Net.NumHosts()
	srcs := n
	if lf.Count > 0 && lf.Count < n {
		srcs = lf.Count
	}
	for src := 0; src < srcs; src++ {
		dst := (src + lf.Stride) % n
		if dst < 0 {
			dst += n
		}
		if dst == src {
			continue
		}
		t := units.Time(src) * lf.Stagger
		pregenLaunch(lf.Net, lf.Collect, t, src, dst, lf.Size, lf.Prio, lf.CC(), metrics.ClassLong)
		lf.started++
	}
}

// Started returns the number of flows scheduled.
func (lf *LongFlows) Started() int { return lf.started }

// BufferSampler periodically records the fabric's worst-switch occupancy
// fraction into the collector. It reads every switch, so in sharded
// mode it must run at window barriers (StartBarrier), where the whole
// fabric is quiescent.
type BufferSampler struct {
	Net     *topo.Network
	Collect *metrics.Collector
	ticker  *sim.Ticker
	barrier *sim.BarrierTicker
}

// Start samples every interval on the serial simulator until Stop.
func (b *BufferSampler) Start(interval units.Time) {
	b.ticker = b.Net.Sim.NewTicker(interval, func() {
		b.Collect.SampleBuffer(b.Net.WorstBufferFrac())
	})
}

// StartBarrier samples every interval of simulated time at the parallel
// engine's window barriers: each sample sees every event before its due
// time executed on every shard and none after — the same cut a serial
// ticker observes.
func (b *BufferSampler) StartBarrier(interval units.Time) {
	b.barrier = b.Net.Par.NewBarrierTicker(interval, func(units.Time) {
		b.Collect.SampleBuffer(b.Net.WorstBufferFrac())
	})
}

// Stop halts sampling.
func (b *BufferSampler) Stop() {
	if b.ticker != nil {
		b.ticker.Stop()
	}
	if b.barrier != nil {
		b.barrier.Stop()
	}
}
