package workload

import (
	"math"
	"testing"

	"abm/internal/cc"
	"abm/internal/metrics"
	"abm/internal/sim"
	"abm/internal/topo"
	"abm/internal/units"
)

func testNet(seed int64) (*sim.Simulator, *topo.Network) {
	s := sim.New(seed)
	n := topo.NewNetwork(s, topo.Config{
		NumSpines:    2,
		NumLeaves:    2,
		HostsPerLeaf: 4,
		LinkRate:     10 * units.GigabitPerSec,
		LinkDelay:    10 * units.Microsecond,
	})
	return s, n
}

func TestWebSearchOfferedLoad(t *testing.T) {
	s, n := testNet(5)
	col := &metrics.Collector{}
	w := &WebSearch{Net: n, Load: 0.4, CC: func() cc.Algorithm { return cc.NewDCTCP() }, Collect: col}
	w.Start()
	dur := 100 * units.Millisecond
	s.RunUntil(dur)
	w.Stop()
	n.Stop()

	// Offered inter-rack bytes / time should be ~40% of the bisection
	// capacity (2 leaves x 2 spines x 10G = 40 Gb/s), scaled by the
	// inter-rack fraction of uniform traffic (8/15).
	var offered units.ByteCount
	for _, f := range col.Flows {
		offered += f.Size
	}
	bisection := float64(n.Cfg.LinkRate) * 4
	interRackFrac := 8.0 / 15
	gotLoad := float64(offered.Bits()) * interRackFrac / dur.Seconds() / bisection
	// Heavy-tailed sizes make short-run load noisy; accept a wide band.
	if gotLoad < 0.15 || gotLoad > 0.8 {
		t.Fatalf("offered load = %.3f, want ~0.4", gotLoad)
	}
	if w.Started() != len(col.Flows) {
		t.Fatalf("started %d but recorded %d", w.Started(), len(col.Flows))
	}
	if w.Started() < 10 {
		t.Fatalf("too few flows: %d", w.Started())
	}
}

func TestWebSearchFlowsComplete(t *testing.T) {
	s, n := testNet(6)
	col := &metrics.Collector{}
	w := &WebSearch{Net: n, Load: 0.2, CC: func() cc.Algorithm { return cc.NewDCTCP() }, Collect: col}
	w.Start()
	s.RunUntil(50 * units.Millisecond)
	w.Stop()
	s.RunUntil(2 * units.Second) // drain
	n.Stop()
	if col.FinishedCount() == 0 {
		t.Fatal("no flows finished")
	}
	for _, f := range col.Flows {
		if f.Finished && f.Slowdown() < 0.999 {
			t.Fatalf("flow %d slowdown %.3f below 1 (ideal FCT too large?)", f.ID, f.Slowdown())
		}
	}
}

func TestWebSearchValidation(t *testing.T) {
	_, n := testNet(1)
	defer n.Stop()
	for _, w := range []*WebSearch{
		{Net: n, Load: 0},
		{Net: n, Load: 1.5, CC: func() cc.Algorithm { return cc.NewReno() }},
		{Net: n, Load: 0.4}, // no CC
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", w)
				}
			}()
			w.Start()
		}()
	}
}

func TestWebSearchPickCC(t *testing.T) {
	s, n := testNet(7)
	col := &metrics.Collector{}
	w := &WebSearch{
		Net: n, Load: 0.3, Collect: col,
		PickCC: func(i int) (cc.Factory, uint8) {
			if i%2 == 0 {
				return func() cc.Algorithm { return cc.NewCubic() }, 0
			}
			return func() cc.Algorithm { return cc.NewDCTCP() }, 1
		},
	}
	w.Start()
	s.RunUntil(30 * units.Millisecond)
	w.Stop()
	n.Stop()
	var p0, p1 int
	for _, f := range col.Flows {
		if f.Prio == 0 {
			p0++
		} else {
			p1++
		}
	}
	if p0 == 0 || p1 == 0 {
		t.Fatalf("PickCC priorities not both used: %d/%d", p0, p1)
	}
}

func TestIncastFanInDifferentRack(t *testing.T) {
	s, n := testNet(8)
	col := &metrics.Collector{}
	ic := &Incast{
		Net:         n,
		RequestSize: 100 * units.Kilobyte,
		Fanout:      4,
		QueryRate:   200,
		CC:          func() cc.Algorithm { return cc.NewReno() },
		Collect:     col,
	}
	ic.Start()
	s.RunUntil(50 * units.Millisecond)
	ic.Stop()
	s.RunUntil(2 * units.Second)
	n.Stop()
	if ic.Queries() == 0 {
		t.Fatal("no queries issued")
	}
	wantFlows := ic.Queries() * 4
	if len(col.Flows) != wantFlows {
		t.Fatalf("flows = %d, want %d (queries * fanout)", len(col.Flows), wantFlows)
	}
	// Per-flow size = request/fanout.
	for _, f := range col.Flows {
		if f.Size != 25*units.Kilobyte {
			t.Fatalf("flow size %v, want 25KB", f.Size)
		}
		if f.Class != metrics.ClassIncast {
			t.Fatal("class not incast")
		}
	}
	if col.FinishedCount() != wantFlows {
		t.Fatalf("finished %d/%d", col.FinishedCount(), wantFlows)
	}
}

func TestIncastFanoutCappedByCandidates(t *testing.T) {
	s, n := testNet(9)
	ic := &Incast{
		Net:         n,
		RequestSize: 40 * units.Kilobyte,
		Fanout:      100, // more than hosts in other racks (4)
		QueryRate:   100,
		CC:          func() cc.Algorithm { return cc.NewReno() },
		Collect:     &metrics.Collector{},
	}
	ic.Start()
	s.RunUntil(30 * units.Millisecond)
	ic.Stop()
	s.RunUntil(time500ms())
	n.Stop()
	if ic.Queries() == 0 {
		t.Fatal("no queries")
	}
	perQuery := float64(len(ic.Collect.Flows)) / float64(ic.Queries())
	if math.Abs(perQuery-4) > 0.001 {
		t.Fatalf("flows per query = %.2f, want 4 (capped)", perQuery)
	}
}

func time500ms() units.Time { return 500 * units.Millisecond }

func TestIncastValidation(t *testing.T) {
	_, n := testNet(1)
	defer n.Stop()
	for _, ic := range []*Incast{
		{Net: n, Fanout: 4, QueryRate: 1, CC: func() cc.Algorithm { return cc.NewReno() }},      // no size
		{Net: n, RequestSize: 1000, Fanout: 4, CC: func() cc.Algorithm { return cc.NewReno() }}, // no rate
		{Net: n, RequestSize: 1000, Fanout: 4, QueryRate: 1},                                    // no cc
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for %+v", ic)
				}
			}()
			ic.Start()
		}()
	}
}

func TestBufferSampler(t *testing.T) {
	s, n := testNet(10)
	col := &metrics.Collector{}
	bs := &BufferSampler{Net: n, Collect: col}
	bs.Start(units.Millisecond)
	w := &WebSearch{Net: n, Load: 0.5, CC: func() cc.Algorithm { return cc.NewCubic() }, Collect: col}
	w.Start()
	s.RunUntil(20 * units.Millisecond)
	w.Stop()
	bs.Stop()
	n.Stop()
	if len(col.BufferSamples) < 15 {
		t.Fatalf("samples = %d, want ~20", len(col.BufferSamples))
	}
	for _, v := range col.BufferSamples {
		if v < 0 || v > 1.2 {
			t.Fatalf("occupancy fraction %v out of range", v)
		}
	}
}

func TestIncastPickPrio(t *testing.T) {
	s, n := testNet(12)
	col := &metrics.Collector{}
	next := uint8(0)
	ic := &Incast{
		Net:         n,
		RequestSize: 40 * units.Kilobyte,
		Fanout:      2,
		QueryRate:   500,
		CC:          func() cc.Algorithm { return cc.NewReno() },
		Collect:     col,
		PickPrio:    func() uint8 { next = (next + 1) % 2; return next },
	}
	ic.Start()
	s.RunUntil(20 * units.Millisecond)
	ic.Stop()
	n.Stop()
	var p0, p1 int
	for _, f := range col.Flows {
		if f.Prio == 0 {
			p0++
		} else {
			p1++
		}
	}
	if p0 == 0 || p1 == 0 {
		t.Fatalf("PickPrio not applied: %d/%d", p0, p1)
	}
}

func TestWorkloadSeedIsolation(t *testing.T) {
	// Two runs with the same workload seed but different fabric seeds
	// must generate identical flow sequences.
	sizes := func(simSeed int64) []units.ByteCount {
		s, n := testNet(simSeed)
		col := &metrics.Collector{}
		w := &WebSearch{Net: n, Load: 0.3, CC: func() cc.Algorithm { return cc.NewReno() },
			Collect: col, Seed: 777}
		w.Start()
		s.RunUntil(10 * units.Millisecond)
		w.Stop()
		n.Stop()
		out := make([]units.ByteCount, len(col.Flows))
		for i, f := range col.Flows {
			out[i] = f.Size
		}
		return out
	}
	a, b := sizes(1), sizes(99)
	if len(a) != len(b) {
		t.Fatalf("flow counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
