package workload

import (
	"math/rand"
	"testing"

	"abm/internal/cc"
	"abm/internal/metrics"
	"abm/internal/units"
)

// buildPair returns matching WebSearch+Incast generators over a fresh
// network, with PickCC/PickPrio wired to a shared RNG the way the
// experiment harness does.
func buildPair(seed int64) (*WebSearch, *Incast, *metrics.Collector) {
	_, n := testNet(seed)
	col := &metrics.Collector{}
	shared := rand.New(rand.NewSource(seed + 1000))
	ws := &WebSearch{
		Net: n, Load: 0.4, Collect: col, Seed: seed + 1,
		PickCC: func(i int) (cc.Factory, uint8) {
			p := uint8(shared.Intn(3))
			return func() cc.Algorithm { return cc.NewDCTCP() }, p
		},
	}
	ic := &Incast{
		Net: n, RequestSize: 40 * units.Kilobyte, Fanout: 4, QueryRate: 2000,
		CC: func() cc.Algorithm { return cc.NewDCTCP() }, Collect: col, Seed: seed + 2,
		PickPrio: func() uint8 { return uint8(shared.Intn(3)) },
	}
	return ws, ic, col
}

// TestPregenMatchesLive replays the pre-generated schedule against a
// live serial run: every collector row's planning-time fields (class,
// priority, size, start time, ideal FCT, flow ID) and the generator
// counters must be identical — the pregen path consumes each RNG
// stream draw-for-draw, including the shared PickCC/PickPrio stream in
// merged arrival order.
func TestPregenMatchesLive(t *testing.T) {
	horizon := 20 * units.Millisecond

	ws, ic, liveCol := buildPair(9)
	ws.Start()
	ic.Start()
	ws.Net.Sim.RunUntil(horizon)
	ws.Stop()
	ic.Stop()
	ws.Net.Stop()
	liveStarted, liveQueries := ws.Started(), ic.Queries()

	pws, pic, preCol := buildPair(9)
	SchedulePregen(pws, pic, horizon)
	// Planning is complete before anything runs; the schedule sits in
	// the calendar. Run it so flows actually work (and Finished fills).
	pws.Net.Sim.RunUntil(horizon)
	pws.Net.Stop()

	if pws.Started() != liveStarted || pic.Queries() != liveQueries {
		t.Fatalf("pregen started %d flows / %d queries, live %d / %d",
			pws.Started(), pic.Queries(), liveStarted, liveQueries)
	}
	if len(preCol.Flows) != len(liveCol.Flows) {
		t.Fatalf("pregen recorded %d flows, live %d", len(preCol.Flows), len(liveCol.Flows))
	}
	if len(preCol.Flows) < 20 {
		t.Fatalf("too few flows for a meaningful check: %d", len(preCol.Flows))
	}
	for i := range preCol.Flows {
		p, l := preCol.Flows[i], liveCol.Flows[i]
		if p.Class != l.Class || p.Prio != l.Prio || p.Size != l.Size ||
			p.Start != l.Start || p.Ideal != l.Ideal || p.ID != l.ID {
			t.Fatalf("flow %d diverged:\npregen %+v\nlive   %+v", i, p, l)
		}
	}
}
