package sweepd

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"

	"abm/internal/obs/prom"
)

// Handler exposes the coordinator over HTTP+JSON:
//
//	GET  /v1/plan      -> PlanInfo
//	POST /v1/lease     LeaseRequest -> LeaseResponse
//	POST /v1/heartbeat HeartbeatRequest -> HeartbeatResponse
//	POST /v1/result    CompleteRequest -> {}
//	GET  /v1/status    -> Status
//	GET  /metrics      -> fleet gauges, Prometheus text format
//
// The protocol assumes a trusted loopback/LAN segment — it carries no
// authentication, exactly like the job queues it replaces.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/plan", func(w http.ResponseWriter, r *http.Request) {
		info, err := c.PlanInfo()
		if err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, info)
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := c.Lease(req.Worker, req.N)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !readJSON(w, r, &req) {
			return
		}
		resp, err := c.Heartbeat(req.Worker, req.JobIDs)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/result", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := c.Complete(req.Worker, req.Record, req.Telemetry); err != nil {
			httpError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, struct{}{})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		var pw prom.Writer
		c.WriteMetrics(&pw)
		w.Header().Set("Content-Type", prom.ContentType)
		w.Write(pw.Bytes())
	})
	return mux
}

// Serve runs the coordinator's HTTP endpoint on l until the listener
// closes. It is a thin convenience over http.Serve.
func (c *Coordinator) Serve(l net.Listener) error {
	return http.Serve(l, c.Handler())
}

// readJSON decodes the request body, answering 400 on failure.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// writeJSON answers 200 with a JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// httpError answers an error as {"error": "..."} with the given code.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
