// Package sweepd is the distributed sweep service: a coordinator that
// owns a job table expanded from the same grids cmd/sweep runs locally,
// hands out time-bounded job leases to workers over HTTP+JSON (or
// in-process), re-leases jobs whose workers miss heartbeats, and
// persists finished records in a durable append-only record log with
// batched fsync commits. Workers are thin wrappers around the
// internal/runner execution path — same SplitMix64 per-job seeding,
// panic/timeout isolation and retries — so a job's record is identical
// whether it ran on the classic in-process pool or on a fleet of worker
// processes, and the aggregated output is byte-identical at seed 42.
//
// The coordinator can also replicate adaptively: with a CI target set,
// it keeps enqueueing extra replication seeds for a group until the
// bootstrap confidence interval of the target metric tightens below the
// target, so large grids spend compute where the variance lives.
package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"sync"

	"abm/internal/runner"
)

// RecordLog is an append-only store of job records: the durable layer
// under a sweep. Append buffers records in the backend; Sync makes
// everything appended so far durable (the batch-commit point). Replay
// returns every durable record in append order — duplicates included,
// latest-wins resolution is the reader's job (see Store.Completed).
type RecordLog interface {
	Append(recs []runner.Record) error
	Sync() error
	Replay() ([]runner.Record, error)
	Close() error
}

// MemLog is an in-memory RecordLog for tests and ephemeral sweeps.
type MemLog struct {
	mu   sync.Mutex
	recs []runner.Record
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// Append implements RecordLog.
func (m *MemLog) Append(recs []runner.Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recs = append(m.recs, recs...)
	return nil
}

// Sync implements RecordLog (memory is always "durable").
func (m *MemLog) Sync() error { return nil }

// Replay implements RecordLog.
func (m *MemLog) Replay() ([]runner.Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]runner.Record(nil), m.recs...), nil
}

// Close implements RecordLog.
func (m *MemLog) Close() error { return nil }

// FileLog is the file-backed RecordLog: one record per line as
//
//	<crc32c-hex-of-payload> '\t' <compact JSON record> '\n'
//
// The checksum makes replay self-validating: a torn final line (the
// partial flush of a crashed process) is detected and dropped, while a
// checksum or JSON failure anywhere before the tail is reported as
// corruption. Appends go through one file handle; Sync fsyncs it, which
// is the log's only durability point — the Batcher calls it once per
// batch rather than per record.
type FileLog struct {
	path string

	mu sync.Mutex
	f  *os.File
}

// OpenFileLog creates or reopens the log at path, first truncating a
// torn tail left by a crash so new appends start on their own line.
func OpenFileLog(path string) (*FileLog, error) {
	if err := healTornTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileLog{path: path, f: f}, nil
}

// Path returns the log's file path.
func (l *FileLog) Path() string { return l.path }

// Append implements RecordLog: the whole batch is serialized into one
// buffer and issued as a single write, so a crash can tear at most one
// suffix of the batch rather than interleave with other writers.
func (l *FileLog) Append(recs []runner.Record) error {
	var buf bytes.Buffer
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("sweepd: marshal record %s: %w", rec.ID, err)
		}
		fmt.Fprintf(&buf, "%08x\t", crc32.ChecksumIEEE(payload))
		buf.Write(payload)
		buf.WriteByte('\n')
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.f.Write(buf.Bytes())
	return err
}

// Sync implements RecordLog: records appended before Sync returns are
// durable.
func (l *FileLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}

// Close implements RecordLog.
func (l *FileLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}

// Replay implements RecordLog: it reads the whole log, verifying each
// line's checksum. A torn final line is dropped; damage anywhere else
// is an error.
func (l *FileLog) Replay() ([]runner.Record, error) {
	data, err := os.ReadFile(l.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return decodeLog(l.path, data)
}

// decodeLog parses the log bytes, tolerating exactly one torn tail.
func decodeLog(path string, data []byte) ([]runner.Record, error) {
	var recs []runner.Record
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		tail := i == len(lines)-1 // no trailing newline: a torn write
		rec, err := decodeLine(line)
		if err != nil {
			if tail {
				continue
			}
			return nil, fmt.Errorf("sweepd: %s:%d: %w", path, i+1, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// decodeLine parses and checksum-verifies one log line.
func decodeLine(line []byte) (runner.Record, error) {
	i := bytes.IndexByte(line, '\t')
	if i != 8 {
		return runner.Record{}, fmt.Errorf("malformed frame")
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return runner.Record{}, fmt.Errorf("malformed checksum: %w", err)
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != uint32(want) {
		return runner.Record{}, fmt.Errorf("checksum mismatch: %08x != %08x", got, want)
	}
	var rec runner.Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return runner.Record{}, fmt.Errorf("corrupt record: %w", err)
	}
	return rec, nil
}

// healTornTail truncates a trailing partial line (no final newline).
func healTornTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return nil
	}
	keep := 0
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		keep = i + 1
	}
	return os.Truncate(path, int64(keep))
}
