package sweepd

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"abm/internal/runner"
)

// Store adapts a batched RecordLog to runner.RecordSink, so the
// append-only log slots in everywhere the classic per-job JSON store
// does: a Pool (or the sweep coordinator) persists through Put and the
// existing Completed-based resume path and all aggregation/TSV emission
// work unchanged.
type Store struct {
	log RecordLog
	b   *Batcher

	// TelemetryDir, when set, is where PutTelemetry lands worker-shipped
	// bundles — one <sanitized job ID>.json.gz per job, beside the
	// record log. Empty disables bundle persistence.
	TelemetryDir string
}

// NewStore wraps log with batched commits (see NewBatcher for the
// defaults zero values select).
func NewStore(log RecordLog, maxBatch int, maxDelay time.Duration) *Store {
	return &Store{log: log, b: NewBatcher(log, maxBatch, maxDelay)}
}

// Put implements runner.RecordSink: the record is durable by the next
// batch commit (size- or deadline-triggered, or an explicit Flush).
func (s *Store) Put(rec runner.Record) error { return s.b.Put(rec) }

// Completed implements runner.RecordSink: it replays the log and
// returns the latest successful record of every job, exactly like the
// manifest-based Store. Pending records are flushed first so a resume
// within one process never misses its own writes.
func (s *Store) Completed() (map[string]runner.Record, error) {
	if err := s.b.Flush(); err != nil {
		return nil, err
	}
	recs, err := s.log.Replay()
	if err != nil {
		return nil, err
	}
	done := make(map[string]runner.Record)
	for _, rec := range recs {
		if rec.OK() {
			done[rec.ID] = rec
		} else {
			// A later failure supersedes an earlier success, matching
			// the manifest store's latest-entry-wins semantics.
			delete(done, rec.ID)
		}
	}
	return done, nil
}

// PutTelemetry persists one job's gzip-compressed telemetry bundle
// beside the record log (the coordinator probes for this method via an
// interface, so stores without it simply drop bundles). A no-op when
// TelemetryDir is unset. Writes go through a temp file + rename so a
// crash never leaves a truncated bundle under the final name.
func (s *Store) PutTelemetry(id string, data []byte) error {
	if s.TelemetryDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.TelemetryDir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(s.TelemetryDir, sanitizeJobID(id)+".json.gz")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// sanitizeJobID maps a job ID to a safe flat filename (job IDs contain
// slashes and commas: "sweep/003-bm=ABM,rep=1").
func sanitizeJobID(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-' || r == '_' || r == '.' || r == '=':
			return r
		default:
			return '_'
		}
	}, id)
}

// ReadTelemetry loads one job's persisted bundle, decompressed and
// decoded — the offline-status path reads these back.
func ReadTelemetry(dir, id string) (*TelemetryBundle, error) {
	data, err := os.ReadFile(filepath.Join(dir, sanitizeJobID(id)+".json.gz"))
	if err != nil {
		return nil, err
	}
	bundle, err := DecodeTelemetry(data)
	if err != nil {
		return nil, fmt.Errorf("sweepd: telemetry for %s: %w", id, err)
	}
	return bundle, nil
}

// Flush commits everything pending and returns when it is durable.
func (s *Store) Flush() error { return s.b.Flush() }

// Stats returns the batch-commit counters.
func (s *Store) Stats() BatchStats { return s.b.Stats() }

// Close flushes and closes the underlying log.
func (s *Store) Close() error {
	if err := s.b.Close(); err != nil {
		s.log.Close()
		return err
	}
	return s.log.Close()
}
