package sweepd

import (
	"time"

	"abm/internal/runner"
)

// Store adapts a batched RecordLog to runner.RecordSink, so the
// append-only log slots in everywhere the classic per-job JSON store
// does: a Pool (or the sweep coordinator) persists through Put and the
// existing Completed-based resume path and all aggregation/TSV emission
// work unchanged.
type Store struct {
	log RecordLog
	b   *Batcher
}

// NewStore wraps log with batched commits (see NewBatcher for the
// defaults zero values select).
func NewStore(log RecordLog, maxBatch int, maxDelay time.Duration) *Store {
	return &Store{log: log, b: NewBatcher(log, maxBatch, maxDelay)}
}

// Put implements runner.RecordSink: the record is durable by the next
// batch commit (size- or deadline-triggered, or an explicit Flush).
func (s *Store) Put(rec runner.Record) error { return s.b.Put(rec) }

// Completed implements runner.RecordSink: it replays the log and
// returns the latest successful record of every job, exactly like the
// manifest-based Store. Pending records are flushed first so a resume
// within one process never misses its own writes.
func (s *Store) Completed() (map[string]runner.Record, error) {
	if err := s.b.Flush(); err != nil {
		return nil, err
	}
	recs, err := s.log.Replay()
	if err != nil {
		return nil, err
	}
	done := make(map[string]runner.Record)
	for _, rec := range recs {
		if rec.OK() {
			done[rec.ID] = rec
		} else {
			// A later failure supersedes an earlier success, matching
			// the manifest store's latest-entry-wins semantics.
			delete(done, rec.ID)
		}
	}
	return done, nil
}

// Flush commits everything pending and returns when it is durable.
func (s *Store) Flush() error { return s.b.Flush() }

// Stats returns the batch-commit counters.
func (s *Store) Stats() BatchStats { return s.b.Stats() }

// Close flushes and closes the underlying log.
func (s *Store) Close() error {
	if err := s.b.Close(); err != nil {
		s.log.Close()
		return err
	}
	return s.log.Close()
}
