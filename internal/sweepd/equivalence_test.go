package sweepd

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"abm/internal/experiments"
	"abm/internal/runner"
)

// equivGrid is a real (tiny) simulation sweep at seed 42: the issue's
// acceptance bar is that single-process sweepd produces byte-identical
// aggregates to the classic pool.
func equivGrid() experiments.Grid {
	return experiments.Grid{
		Name:       "equiv",
		Scale:      "small",
		Seed:       42,
		Reps:       2,
		BMs:        []string{"DT", "ABM"},
		Loads:      []float64{0.4},
		DurationMS: 0.25,
	}
}

// TestSweepdMatchesPoolOnRealGrid runs the same grid through the
// in-process pool and through coordinator + in-process workers backed
// by the durable record log, and demands byte-identical aggregate JSON
// and TSV output.
func TestSweepdMatchesPoolOnRealGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	grid := equivGrid()
	plan, err := grid.Plan()
	if err != nil {
		t.Fatal(err)
	}
	poolRecs, err := (&runner.Pool{Workers: 2}).Run(t.Context(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(runner.Failed(poolRecs)); n != 0 {
		t.Fatalf("%d pool jobs failed", n)
	}
	want := aggBytes(t, poolRecs)

	log, err := OpenFileLog(filepath.Join(t.TempDir(), "records.log"))
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(log, 8, 50*time.Millisecond)
	c, err := NewCoordinator(Config{Grid: &grid, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, c, 2)
	if got := aggBytes(t, c.Records()); got != want {
		t.Fatalf("sweepd aggregate differs from pool\nwant:\n%s\ngot:\n%s", want, got)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// The log replays to the same aggregate, in any process.
	log2, err := OpenFileLog(log.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	replayed, err := log2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if got := aggBytes(t, replayed); got != want {
		t.Fatalf("replayed aggregate differs from pool\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestRemoteWorkerScenarioGrid exercises the full remote path on the
// committed scenario spec: the worker rebuilds the plan from PlanInfo —
// including the scenario bytes shipped over HTTP — and the aggregate
// still matches the pool.
func TestRemoteWorkerScenarioGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	grid := experiments.Grid{
		Name:     "scen",
		Seed:     42,
		Reps:     1,
		Scenario: filepath.Join("..", "..", "scenarios", "oversub-2to1.json"),
		Vary: []experiments.PathAxis{
			{Path: "switch.bm", Values: []string{"DT", "ABM"}},
			{Path: "duration", Values: []string{"200us"}},
		},
	}
	plan, err := grid.Plan()
	if err != nil {
		t.Fatal(err)
	}
	poolRecs, err := (&runner.Pool{Workers: 2}).Run(t.Context(), plan)
	if err != nil {
		t.Fatal(err)
	}
	want := aggBytes(t, poolRecs)

	c, err := NewCoordinator(Config{Grid: &grid})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		// No Plan: the worker must fetch PlanInfo and rebuild it, which
		// is exactly what a worker on another machine does.
		w := &Worker{Dispatcher: NewClient(srv.URL), Name: fmt.Sprintf("remote%d", i)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := aggBytes(t, c.Records()); got != want {
		t.Fatalf("remote-worker aggregate differs from pool\nwant:\n%s\ngot:\n%s", want, got)
	}
}
