package sweepd

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"

	"abm/internal/experiments"
	"abm/internal/obs/hist"
	"abm/internal/runner"
)

// The wire protocol is plain HTTP+JSON on loopback or a trusted LAN:
// four POST/GET endpoints under /v1/ (plan, lease, heartbeat, result,
// status). Everything a worker needs to reconstruct the job table
// travels in PlanInfo, so workers share nothing with the coordinator
// but the socket — the grid expansion they run locally is the same
// deterministic Plan() the coordinator used, which is what makes a
// lease as small as (job ID, spec index, seed).

// PlanInfo is what a worker needs to rebuild the coordinator's plan
// locally: the grid (whose deterministic expansion defines spec
// indexes, job IDs and derived seeds) plus the contents of the grid's
// scenario file, if any, so remote workers need no shared filesystem.
type PlanInfo struct {
	Name string `json:"name"`
	// Jobs is the base plan's job count — a cheap skew check: a worker
	// whose local expansion disagrees must not run anything.
	Jobs int               `json:"jobs"`
	Grid *experiments.Grid `json:"grid"`
	// Scenario is the raw bytes of Grid.Scenario when the grid is in
	// scenario mode; the worker materializes them to a local temp file.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// LeaseTTLMillis is the lease duration; workers must heartbeat
	// comfortably within it (TTL/3 is the convention).
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

// LeaseRequest asks for up to N job leases.
type LeaseRequest struct {
	Worker string `json:"worker"`
	N      int    `json:"n"`
}

// Lease is one time-bounded job assignment.
type Lease struct {
	// JobID is the record ID the worker must report back. For adaptive
	// extra replications it differs from the spec's own ID.
	JobID string `json:"job_id"`
	// Index is the spec to execute, as an index into the deterministic
	// plan expansion both sides share.
	Index int `json:"index"`
	// SpecID is the plan's ID at Index — a skew guard the worker checks
	// against its local expansion before running anything.
	SpecID string `json:"spec_id"`
	// Seed is the explicit simulation seed (already resolved by the
	// coordinator, including adaptive extra-replication seeds).
	Seed int64 `json:"seed"`
	// Attempt counts prior leases of this job (0 on first lease).
	Attempt int `json:"attempt"`
}

// LeaseResponse carries zero or more leases. Done reports that the
// sweep is complete and the worker should exit; an empty non-done
// response means "nothing leasable right now, poll again after
// BackoffMillis".
type LeaseResponse struct {
	Leases        []Lease `json:"leases,omitempty"`
	Done          bool    `json:"done,omitempty"`
	TTLMillis     int64   `json:"ttl_ms"`
	BackoffMillis int64   `json:"backoff_ms,omitempty"`
}

// HeartbeatRequest renews the worker's leases on the listed jobs.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	JobIDs []string `json:"job_ids"`
}

// HeartbeatResponse lists jobs the worker no longer holds (expired and
// re-leased, or already completed elsewhere); results for them will be
// ignored, so the worker can stop caring.
type HeartbeatResponse struct {
	Lost []string `json:"lost,omitempty"`
}

// CompleteRequest submits one finished record, optionally with a
// compressed telemetry bundle.
type CompleteRequest struct {
	Worker string        `json:"worker"`
	Record runner.Record `json:"record"`
	// Telemetry is a gzip-compressed JSON TelemetryBundle (base64 on
	// the wire via encoding/json); empty when the job recorded none.
	// The coordinator persists it beside its records, closing the gap
	// between worker-local NDJSON and the coordinator's durable state.
	Telemetry []byte `json:"telemetry,omitempty"`
}

// TelemetryBundle is the decompressed per-job telemetry a worker ships
// with its result: the counter and histogram state that also rides in
// the record (kept here so a bundle is self-contained), plus the raw
// per-job NDJSON event trace when the grid requested one.
type TelemetryBundle struct {
	JobID    string                   `json:"job_id"`
	Counters map[string]int64         `json:"counters,omitempty"`
	Hists    map[string]hist.Snapshot `json:"hists,omitempty"`
	// TraceNDJSON is the job's -trace-events export, verbatim.
	TraceNDJSON []byte `json:"trace_ndjson,omitempty"`
}

// EncodeTelemetry serializes a bundle to the wire form: gzip over JSON.
// Nil is returned for an empty bundle so callers can skip shipping.
func EncodeTelemetry(b *TelemetryBundle) ([]byte, error) {
	if b == nil || (len(b.Counters) == 0 && len(b.Hists) == 0 && len(b.TraceNDJSON) == 0) {
		return nil, nil
	}
	raw, err := json.Marshal(b)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeTelemetry reverses EncodeTelemetry.
func DecodeTelemetry(data []byte) (*TelemetryBundle, error) {
	zr, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, err
	}
	if err := zr.Close(); err != nil {
		return nil, err
	}
	var b TelemetryBundle
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// SlowdownSummary condenses a merged FCT-slowdown histogram into the
// tail percentiles the sweep is usually after. Values are slowdown
// ratios (recorded milli-slowdowns divided back by 1000).
type SlowdownSummary struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// GroupStatus is the per-group view of the status endpoint: replication
// progress and, with adaptive replication on, how tight the group's
// confidence interval currently is.
type GroupStatus struct {
	Group string `json:"group"`
	// OK and Failed count finished replications; Total counts every job
	// created for the group so far (including leased/pending extras).
	OK     int `json:"ok"`
	Failed int `json:"failed,omitempty"`
	Total  int `json:"total"`
	// Mean and RelCIHalfWidth describe the adaptive target metric: the
	// bootstrap CI half-width of the mean, relative to the mean.
	Mean           float64 `json:"mean,omitempty"`
	RelCIHalfWidth float64 `json:"rel_ci_half_width,omitempty"`
	// Settled reports the group needs no more replications (CI under
	// target, metric absent, or replication cap reached).
	Settled bool `json:"settled"`
	// Slowdown summarizes the group's merged FCT-slowdown histogram
	// (all classes, all finished replications so far); nil when the
	// sweep records no histograms.
	Slowdown *SlowdownSummary `json:"slowdown,omitempty"`
}

// Status is the coordinator's live state summary.
type Status struct {
	Name     string        `json:"name"`
	Jobs     int           `json:"jobs"`
	Pending  int           `json:"pending"`
	Leased   int           `json:"leased"`
	Done     int           `json:"done"`
	Failed   int           `json:"failed"`
	Finished bool          `json:"finished"`
	Groups   []GroupStatus `json:"groups,omitempty"`
	// Batch reports the record log's commit counters when the
	// coordinator persists through a batched store.
	Batch *BatchStats `json:"batch,omitempty"`
}

// Dispatcher is the coordinator as a worker sees it. *Coordinator
// implements it natively for in-process workers; *Client implements it
// over HTTP for worker processes. Workers are written against this
// interface, so single-process and distributed sweeps share every line
// of execution code.
type Dispatcher interface {
	PlanInfo() (*PlanInfo, error)
	Lease(worker string, n int) (*LeaseResponse, error)
	Heartbeat(worker string, jobIDs []string) (*HeartbeatResponse, error)
	// Complete submits one finished record; telemetry is an optional
	// gzip-compressed TelemetryBundle (nil when the job produced none).
	Complete(worker string, rec runner.Record, telemetry []byte) error
}
