package sweepd

import (
	"sort"
	"strings"
	"time"

	"abm/internal/obs/hist"
	"abm/internal/obs/prom"
	"abm/internal/runner"
)

// slowdownPrefix selects the FCT-slowdown histograms (one per flow
// class) out of a record's exported histogram map.
const slowdownPrefix = "fct_slowdown_"

// SlowdownOf merges every FCT-slowdown histogram (all classes) across
// the given records' successful runs and condenses the result to tail
// percentiles. Returns nil when the records carry no slowdown samples
// — the caller renders nothing rather than a row of zeros.
func SlowdownOf(recs []runner.Record) *SlowdownSummary {
	var merged hist.Snapshot
	for _, rec := range recs {
		if !rec.OK() || rec.Result == nil {
			continue
		}
		for name, s := range rec.Result.Hists {
			if strings.HasPrefix(name, slowdownPrefix) {
				merged = merged.Merge(s)
			}
		}
	}
	if merged.Count == 0 {
		return nil
	}
	// Recorded values are milli-slowdowns; divide back to ratios.
	return &SlowdownSummary{
		Count: merged.Count,
		P50:   float64(merged.Quantile(0.50)) / 1000,
		P99:   float64(merged.Quantile(0.99)) / 1000,
		P999:  float64(merged.Quantile(0.999)) / 1000,
	}
}

// MergedHists merges the named histograms of every successful record —
// the fleet-wide view "sweepd status" summarizes. Merge order does not
// matter (hist.Snapshot.Merge is commutative), so the result is
// independent of completion order and worker count.
func MergedHists(recs []runner.Record) map[string]hist.Snapshot {
	out := make(map[string]hist.Snapshot)
	for _, rec := range recs {
		if !rec.OK() || rec.Result == nil {
			continue
		}
		for name, s := range rec.Result.Hists {
			out[name] = out[name].Merge(s)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WriteMetrics renders the coordinator's fleet gauges in Prometheus
// text format: job states, leases outstanding, re-lease/give-up
// totals, per-worker liveness and throughput, and the record-log
// batcher's commit counters.
func (c *Coordinator) WriteMetrics(w *prom.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()

	var pending, leased, doneJobs, failed int
	for _, j := range c.jobs {
		switch j.state {
		case jobPending:
			pending++
		case jobLeased:
			leased++
		case jobDone:
			doneJobs++
			if j.rec == nil || !j.rec.OK() {
				failed++
			}
		}
	}
	w.Family("abm_sweepd_jobs", "gauge", "Coordinator job table by state.")
	w.IntSample("abm_sweepd_jobs", []prom.Label{{Name: "state", Value: "pending"}}, int64(pending))
	w.IntSample("abm_sweepd_jobs", []prom.Label{{Name: "state", Value: "leased"}}, int64(leased))
	w.IntSample("abm_sweepd_jobs", []prom.Label{{Name: "state", Value: "done"}}, int64(doneJobs))
	w.IntSample("abm_sweepd_jobs", []prom.Label{{Name: "state", Value: "failed"}}, int64(failed))

	w.Family("abm_sweepd_leases_outstanding", "gauge", "Leases currently held by workers.")
	w.IntSample("abm_sweepd_leases_outstanding", nil, int64(leased))

	w.Family("abm_sweepd_lease_releases_total", "counter", "Leases that expired and were requeued.")
	w.IntSample("abm_sweepd_lease_releases_total", nil, c.releases)
	w.Family("abm_sweepd_lease_giveups_total", "counter", "Jobs abandoned after the lease-attempt cap.")
	w.IntSample("abm_sweepd_lease_giveups_total", nil, c.giveups)

	if len(c.workers) > 0 {
		names := make([]string, 0, len(c.workers))
		for name := range c.workers {
			names = append(names, name)
		}
		sort.Strings(names)
		now := time.Now()
		w.Family("abm_sweepd_worker_heartbeat_age_seconds", "gauge", "Seconds since the worker was last heard from.")
		for _, name := range names {
			lbl := []prom.Label{{Name: "worker", Value: name}}
			w.Sample("abm_sweepd_worker_heartbeat_age_seconds", lbl, now.Sub(c.workers[name].lastSeen).Seconds())
		}
		w.Family("abm_sweepd_worker_jobs_done_total", "counter", "Records accepted from the worker.")
		for _, name := range names {
			lbl := []prom.Label{{Name: "worker", Value: name}}
			w.IntSample("abm_sweepd_worker_jobs_done_total", lbl, c.workers[name].done)
		}
		w.Family("abm_sweepd_worker_events_total", "counter", "Simulator events across the worker's accepted records (rate() gives events/s).")
		for _, name := range names {
			lbl := []prom.Label{{Name: "worker", Value: name}}
			w.IntSample("abm_sweepd_worker_events_total", lbl, c.workers[name].events)
		}
		w.Family("abm_sweepd_worker_wall_seconds_total", "counter", "Wall-clock seconds the worker spent in accepted jobs.")
		for _, name := range names {
			lbl := []prom.Label{{Name: "worker", Value: name}}
			w.Sample("abm_sweepd_worker_wall_seconds_total", lbl, c.workers[name].wallMS/1000)
		}
	}

	if s, ok := c.cfg.Store.(*Store); ok && s != nil {
		stats := s.Stats()
		w.Family("abm_sweepd_batch_records_total", "counter", "Records committed to the record log.")
		w.IntSample("abm_sweepd_batch_records_total", nil, stats.Records)
		w.Family("abm_sweepd_batch_commits_total", "counter", "Record-log commits (one append + one fsync each).")
		w.IntSample("abm_sweepd_batch_commits_total", nil, stats.Batches)
		w.Family("abm_sweepd_batch_pending", "gauge", "Records buffered awaiting the next commit.")
		w.IntSample("abm_sweepd_batch_pending", nil, int64(stats.Pending))
		w.Family("abm_sweepd_batch_last_fsync_seconds", "gauge", "Duration of the most recent commit (append + fsync).")
		w.Sample("abm_sweepd_batch_last_fsync_seconds", nil, float64(stats.LastCommitMicros)/1e6)
	}
}
