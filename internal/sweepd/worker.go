package sweepd

import (
	"context"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"abm/internal/obs/prom"
	"abm/internal/runner"
	"abm/internal/scenario"
)

// Worker executes leased jobs against a Dispatcher. It is a thin shell
// around runner.Execute — the exact execution path (panic recovery,
// per-job deadline, bounded retries) the in-process pool uses — plus
// the lease lifecycle: poll for leases, heartbeat while running, report
// records, exit when the coordinator says the sweep is done.
type Worker struct {
	// Dispatcher is the coordinator: in-process (*Coordinator) or over
	// HTTP (*Client).
	Dispatcher Dispatcher
	// Name identifies the worker in leases and logs. Default
	// "worker-<pid>".
	Name string
	// Slots is how many jobs run concurrently. Default 1.
	Slots int
	// Timeout, Retries, Backoff configure runner.Execute per job.
	Timeout time.Duration
	Retries int
	Backoff time.Duration
	// Plan, when set, skips the PlanInfo fetch and uses these specs
	// directly — how in-process workers share the coordinator's plan.
	Plan *runner.Plan
	// Progress, when non-nil, receives per-job log lines.
	Progress io.Writer

	mu     sync.Mutex
	active map[string]bool // job IDs currently running (heartbeat set)
	// Lifetime work counters behind the worker's own /metrics endpoint.
	jobsDone int64
	events   int64
	wallMS   float64
}

// Run works the sweep until the coordinator reports it done or ctx is
// canceled. Transport errors back off and retry; ErrCoordinatorGone is
// returned after the coordinator stays unreachable for ~10 consecutive
// polls.
func (w *Worker) Run(ctx context.Context) error {
	if w.Name == "" {
		w.Name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	slots := w.Slots
	if slots <= 0 {
		slots = 1
	}
	w.active = make(map[string]bool)

	// Seed the heartbeat pacing from the coordinator's real lease TTL —
	// the in-process coordinator exposes it directly, remote ones send
	// it in PlanInfo — so the very first heartbeat lands inside even a
	// short lease instead of assuming the 30s default.
	var ttl atomicDuration
	ttl.set(30 * time.Second)
	if src, ok := w.Dispatcher.(interface{ LeaseTTL() time.Duration }); ok {
		if d := src.LeaseTTL(); d > 0 {
			ttl.set(d)
		}
	}
	plan := w.Plan
	if plan == nil {
		info, err := w.fetchPlan()
		if err != nil {
			return err
		}
		plan = info.plan
		if info.leaseTTL > 0 {
			ttl.set(info.leaseTTL)
		}
	}

	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, &ttl)

	errs := make(chan error, slots)
	for s := 0; s < slots; s++ {
		go func() { errs <- w.slot(ctx, plan, &ttl) }()
	}
	var first error
	for s := 0; s < slots; s++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ErrCoordinatorGone reports a coordinator that stopped answering.
var ErrCoordinatorGone = fmt.Errorf("sweepd: coordinator unreachable")

// slot is one lease-execute-report loop.
func (w *Worker) slot(ctx context.Context, plan *runner.Plan, ttl *atomicDuration) error {
	consecutiveFails := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		resp, err := w.Dispatcher.Lease(w.Name, 1)
		if err != nil {
			consecutiveFails++
			if consecutiveFails >= 10 {
				return fmt.Errorf("%w: %v", ErrCoordinatorGone, err)
			}
			w.sleep(ctx, time.Second)
			continue
		}
		consecutiveFails = 0
		if resp.TTLMillis > 0 {
			ttl.set(time.Duration(resp.TTLMillis) * time.Millisecond)
		}
		if len(resp.Leases) == 0 {
			if resp.Done {
				return nil
			}
			backoff := time.Duration(resp.BackoffMillis) * time.Millisecond
			if backoff <= 0 {
				backoff = 200 * time.Millisecond
			}
			w.sleep(ctx, backoff)
			continue
		}
		for _, lease := range resp.Leases {
			if err := w.runLease(ctx, plan, lease); err != nil {
				return err
			}
		}
	}
}

// runLease executes one leased job and reports its record.
func (w *Worker) runLease(ctx context.Context, plan *runner.Plan, lease Lease) error {
	if lease.Index < 0 || lease.Index >= len(plan.Specs) {
		return fmt.Errorf("sweepd: lease %s: spec index %d outside local plan (%d specs) — worker and coordinator disagree on the grid",
			lease.JobID, lease.Index, len(plan.Specs))
	}
	spec := plan.Specs[lease.Index]
	if lease.SpecID != "" && spec.ID != lease.SpecID {
		return fmt.Errorf("sweepd: lease %s: local spec %d is %q, coordinator says %q — worker and coordinator disagree on the grid",
			lease.JobID, lease.Index, spec.ID, lease.SpecID)
	}

	w.mu.Lock()
	w.active[lease.JobID] = true
	w.mu.Unlock()
	w.logf("run %s (seed %d, attempt %d)", lease.JobID, lease.Seed, lease.Attempt)

	rec := runner.Execute(ctx, spec, lease.Seed, runner.ExecOptions{
		Timeout: w.Timeout, Retries: w.Retries, Backoff: w.Backoff,
	})
	// The record reports under the lease's job ID: adaptive extra
	// replications re-run a base spec under their own identity.
	rec.ID = lease.JobID

	w.mu.Lock()
	delete(w.active, lease.JobID)
	w.jobsDone++
	w.wallMS += rec.WallMS
	if rec.Result != nil {
		w.events += int64(rec.Result.Events)
	}
	w.mu.Unlock()

	if rec.Status == runner.StatusCanceled {
		// Ours was the canceled context; the lease will expire and the
		// job re-runs elsewhere. Nothing to report.
		return nil
	}
	telemetry := w.bundleTelemetry(lease.JobID, rec)
	// The result is real work; try hard to deliver it.
	var err error
	for i := 0; i < 5; i++ {
		if err = w.Dispatcher.Complete(w.Name, rec, telemetry); err == nil {
			w.logf("done %s (%s)", lease.JobID, rec.Status)
			return nil
		}
		w.sleep(ctx, time.Duration(i+1)*200*time.Millisecond)
		if ctx.Err() != nil {
			break
		}
	}
	w.logf("dropping result for %s: %v", lease.JobID, err)
	return nil // the lease expires and the job re-runs; not fatal
}

// bundleTelemetry assembles and compresses the per-job telemetry the
// worker ships with a successful record: the record's counter and
// histogram state plus — when the job wrote a per-job NDJSON event
// trace — the raw trace bytes. Returns nil (ship nothing) when the job
// recorded no telemetry; bundling failures only cost the bundle, never
// the result.
func (w *Worker) bundleTelemetry(jobID string, rec runner.Record) []byte {
	if !rec.OK() || rec.Result == nil {
		return nil
	}
	b := &TelemetryBundle{
		JobID:    jobID,
		Counters: rec.Result.Counters,
		Hists:    rec.Result.Hists,
	}
	// The resolved scenario knows where this job's trace landed; jobs
	// run with per-job telemetry each write their own file.
	if sc, ok := rec.Result.Scenario.(scenario.Scenario); ok && sc.Obs.EventsFile != "" {
		if data, err := os.ReadFile(sc.Obs.EventsFile); err == nil {
			b.TraceNDJSON = data
		}
	}
	data, err := EncodeTelemetry(b)
	if err != nil {
		w.logf("telemetry bundle for %s dropped: %v", jobID, err)
		return nil
	}
	return data
}

// WriteMetrics renders the worker's own gauges in Prometheus text
// format — the body behind "sweepd work -metrics-addr".
func (w *Worker) WriteMetrics(pw *prom.Writer) {
	w.mu.Lock()
	active := len(w.active)
	done, events, wallMS := w.jobsDone, w.events, w.wallMS
	w.mu.Unlock()
	pw.Family("abm_sweepd_worker_active_jobs", "gauge", "Jobs this worker is currently running.")
	pw.IntSample("abm_sweepd_worker_active_jobs", nil, int64(active))
	pw.Family("abm_sweepd_worker_jobs_done_total", "counter", "Jobs this worker has finished (any status).")
	pw.IntSample("abm_sweepd_worker_jobs_done_total", nil, done)
	pw.Family("abm_sweepd_worker_events_total", "counter", "Simulator events across finished jobs (rate() gives events/s).")
	pw.IntSample("abm_sweepd_worker_events_total", nil, events)
	pw.Family("abm_sweepd_worker_wall_seconds_total", "counter", "Wall-clock seconds spent in finished jobs.")
	pw.Sample("abm_sweepd_worker_wall_seconds_total", nil, wallMS/1000)
}

// heartbeatLoop renews leases on every active job at TTL/3. It sleeps
// in short steps so a TTL update from a lease response takes effect on
// the in-flight wait, not one full (possibly 30s-stale) interval later.
func (w *Worker) heartbeatLoop(ctx context.Context, ttl *atomicDuration) {
	last := time.Now()
	for {
		interval := ttl.get() / 3
		if interval < 50*time.Millisecond {
			interval = 50 * time.Millisecond
		}
		if wait := interval - time.Since(last); wait > 0 {
			if wait > 100*time.Millisecond {
				wait = 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(wait):
			}
			continue
		}
		last = time.Now()
		w.mu.Lock()
		ids := make([]string, 0, len(w.active))
		for id := range w.active {
			ids = append(ids, id)
		}
		w.mu.Unlock()
		if len(ids) == 0 {
			continue
		}
		resp, err := w.Dispatcher.Heartbeat(w.Name, ids)
		if err != nil {
			continue // transient; the next beat retries
		}
		for _, lost := range resp.Lost {
			w.logf("lease lost: %s (will finish and be ignored)", lost)
		}
	}
}

// fetchedPlan is a rebuilt plan plus the coordinator-announced lease
// TTL that rode along in PlanInfo.
type fetchedPlan struct {
	plan     *runner.Plan
	leaseTTL time.Duration
}

// fetchPlan pulls PlanInfo and rebuilds the plan locally, materializing
// the scenario bytes to a temp file when the grid is in scenario mode.
func (w *Worker) fetchPlan() (*fetchedPlan, error) {
	info, err := w.Dispatcher.PlanInfo()
	if err != nil {
		return nil, err
	}
	if info.Grid == nil {
		return nil, fmt.Errorf("sweepd: coordinator sent no grid")
	}
	grid := *info.Grid
	if grid.Scenario != "" {
		if len(info.Scenario) == 0 {
			return nil, fmt.Errorf("sweepd: grid names scenario %q but plan info carries no scenario bytes", grid.Scenario)
		}
		tmp, err := os.CreateTemp("", "sweepd-scenario-*.json")
		if err != nil {
			return nil, err
		}
		if _, err := tmp.Write(info.Scenario); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil, err
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmp.Name())
			return nil, err
		}
		// The temp spec only needs to exist while Plan() loads it.
		defer os.Remove(tmp.Name())
		grid.Scenario = tmp.Name()
	}
	plan, err := grid.Plan()
	if err != nil {
		return nil, err
	}
	if len(plan.Specs) != info.Jobs {
		return nil, fmt.Errorf("sweepd: local grid expansion has %d jobs, coordinator says %d — version skew",
			len(plan.Specs), info.Jobs)
	}
	return &fetchedPlan{
		plan:     plan,
		leaseTTL: time.Duration(info.LeaseTTLMillis) * time.Millisecond,
	}, nil
}

// sleep waits without outliving ctx.
func (w *Worker) sleep(ctx context.Context, d time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// logf writes one worker log line when Progress is set.
func (w *Worker) logf(format string, args ...any) {
	if w.Progress != nil {
		fmt.Fprintf(w.Progress, "%s: "+format+"\n", append([]any{w.Name}, args...)...)
	}
}

// atomicDuration is a tiny atomic time.Duration.
type atomicDuration struct {
	mu sync.Mutex
	d  time.Duration
}

func (a *atomicDuration) set(d time.Duration) {
	a.mu.Lock()
	a.d = d
	a.mu.Unlock()
}

func (a *atomicDuration) get() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.d
}
