package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"abm/internal/runner"
)

// Client implements Dispatcher over the coordinator's HTTP endpoint —
// the worker side of the wire protocol.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:7077".
	Base string
	// HTTP overrides the transport; nil selects a client with a 30s
	// request timeout.
	HTTP *http.Client
}

// NewClient returns a client for the coordinator at base (scheme
// optional; bare host:port gets "http://").
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/")}
}

// PlanInfo implements Dispatcher.
func (c *Client) PlanInfo() (*PlanInfo, error) {
	var info PlanInfo
	if err := c.call(http.MethodGet, "/v1/plan", nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Lease implements Dispatcher.
func (c *Client) Lease(worker string, n int) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := c.call(http.MethodPost, "/v1/lease", LeaseRequest{Worker: worker, N: n}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Heartbeat implements Dispatcher.
func (c *Client) Heartbeat(worker string, jobIDs []string) (*HeartbeatResponse, error) {
	var resp HeartbeatResponse
	req := HeartbeatRequest{Worker: worker, JobIDs: jobIDs}
	if err := c.call(http.MethodPost, "/v1/heartbeat", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Complete implements Dispatcher.
func (c *Client) Complete(worker string, rec runner.Record, telemetry []byte) error {
	var resp struct{}
	req := CompleteRequest{Worker: worker, Record: rec, Telemetry: telemetry}
	return c.call(http.MethodPost, "/v1/result", req, &resp)
}

// Status fetches the coordinator's live state.
func (c *Client) Status() (*Status, error) {
	var st Status
	if err := c.call(http.MethodGet, "/v1/status", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// call issues one JSON round trip.
func (c *Client) call(method, path string, body, out any) error {
	var reqBody io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		reqBody = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.Base+path, reqBody)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("sweepd: %s: %s", path, e.Error)
		}
		return fmt.Errorf("sweepd: %s: HTTP %d", path, resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}
