package sweepd

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"abm/internal/obs/hist"
	"abm/internal/obs/prom"
	"abm/internal/runner"
)

// histPlan builds jobs whose results carry histogram snapshots, the way
// a real scenario run with hists enabled does: a seed-derived slowdown
// distribution per job, so every shipped bundle is distinguishable.
func histPlan(name string, jobs int) *runner.Plan {
	plan := &runner.Plan{Name: name, Seed: 7}
	for i := 0; i < jobs; i++ {
		group := fmt.Sprintf("g%d", i%2)
		plan.Add(runner.Spec{
			ID:         fmt.Sprintf("%s/%04d-%s", name, i, group),
			Experiment: name,
			Group:      group,
			Run: func(ctx context.Context, seed int64) (runner.Result, error) {
				var h hist.Histogram
				for v := int64(1); v <= 10; v++ {
					h.Record(1000 + (seed%97)*v)
				}
				return runner.Result{
					Events:   uint64(seed),
					Counters: map[string]int64{"model/admitted_pkts": seed % 13},
					Hists:    map[string]hist.Snapshot{"fct_slowdown_websearch": h.Snapshot()},
				}, nil
			},
		})
	}
	return plan
}

// TestTelemetryBundleRoundTrip is the fleet-shipping contract: a worker
// bundles each successful job's counters + histograms, the coordinator
// persists the bundle beside the record log, the file decodes back to
// the worker's state, and the merged histograms surface as the group
// slowdown summary in Status.
func TestTelemetryBundleRoundTrip(t *testing.T) {
	store := NewStore(NewMemLog(), 0, 0)
	store.TelemetryDir = t.TempDir()
	plan := histPlan("tele", 6)
	c, err := NewCoordinator(Config{Plan: plan, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, c, 2)

	recs := c.Records()
	if len(recs) != 6 {
		t.Fatalf("got %d records, want 6", len(recs))
	}
	for _, rec := range recs {
		if !rec.OK() {
			t.Fatalf("job %s failed: %s", rec.ID, rec.Error)
		}
		b, err := ReadTelemetry(store.TelemetryDir, rec.ID)
		if err != nil {
			t.Fatalf("bundle for %s: %v", rec.ID, err)
		}
		if b.JobID != rec.ID {
			t.Errorf("bundle for %s carries job ID %q", rec.ID, b.JobID)
		}
		if !reflect.DeepEqual(b.Hists, rec.Result.Hists) {
			t.Errorf("bundle hists for %s diverge from the record", rec.ID)
		}
		if !reflect.DeepEqual(b.Counters, rec.Result.Counters) {
			t.Errorf("bundle counters for %s diverge from the record", rec.ID)
		}
	}

	st := c.Status()
	for _, g := range st.Groups {
		s := g.Slowdown
		if s == nil || s.Count == 0 {
			t.Fatalf("group %s has no merged slowdown summary", g.Group)
		}
		if s.P50 <= 0 || s.P99 < s.P50 || s.P999 < s.P99 {
			t.Errorf("group %s slowdown quantiles inconsistent: %+v", g.Group, s)
		}
	}

	var pw prom.Writer
	c.WriteMetrics(&pw)
	text := string(pw.Bytes())
	for _, fam := range []string{
		"abm_sweepd_jobs", "abm_sweepd_leases_outstanding",
		"abm_sweepd_worker_jobs_done_total", "abm_sweepd_batch_pending",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("coordinator /metrics missing family %s", fam)
		}
	}
}

// TestSlowdownOfMergesAcrossRecords pins the offline summary math: two
// records' class histograms merge by bucket addition before the
// quantiles are read, and failed records are excluded.
func TestSlowdownOfMergesAcrossRecords(t *testing.T) {
	var a, b hist.Histogram
	a.Record(1000) // slowdown 1.0 in milli units
	a.Record(2000)
	b.Record(8000)
	recs := []runner.Record{
		{Status: runner.StatusOK, Result: &runner.Result{
			Hists: map[string]hist.Snapshot{"fct_slowdown_websearch": a.Snapshot()}}},
		{Status: runner.StatusOK, Result: &runner.Result{
			Hists: map[string]hist.Snapshot{"fct_slowdown_incast": b.Snapshot()}}},
		{Status: runner.StatusFailed, Result: &runner.Result{
			Hists: map[string]hist.Snapshot{"fct_slowdown_long": b.Snapshot()}}},
	}
	s := SlowdownOf(recs)
	if s == nil || s.Count != 3 {
		t.Fatalf("SlowdownOf = %+v, want 3 merged flows", s)
	}
	// Rank 2 of 3 → the bucket holding 2000; rank ceil(.99*3)=3 → 8000's.
	if s.P50 < 2.0 || s.P50 > 2.56 {
		t.Errorf("P50 = %v, want the 2.0-slowdown bucket edge", s.P50)
	}
	if s.P99 < 8.0 || s.P99 > 10.3 {
		t.Errorf("P99 = %v, want the 8.0-slowdown bucket edge", s.P99)
	}
	if SlowdownOf(recs[2:]) != nil {
		t.Error("failed-only records must yield no summary")
	}
}
