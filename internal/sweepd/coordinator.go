package sweepd

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"abm/internal/experiments"
	"abm/internal/randutil"
	"abm/internal/runner"
)

// Config configures a Coordinator.
type Config struct {
	// Grid expands to the job table. Required unless Plan is set
	// directly; also required (alongside the plan) to serve remote
	// workers, which rebuild the plan from the grid's JSON.
	Grid *experiments.Grid
	// Plan overrides the grid expansion with a pre-built plan — the
	// in-process path (tests, embedded coordinators). With only Plan
	// set, remote workers cannot join (PlanInfo errors); in-process
	// workers share the plan pointer instead.
	Plan *runner.Plan

	// LeaseTTL is how long a lease lives without a heartbeat before the
	// job is handed to someone else. Default 30s.
	LeaseTTL time.Duration
	// MaxLeaseAttempts bounds how many times one job may be leased
	// before the coordinator gives up and records it failed — the guard
	// against a job that reliably kills its worker. Default 5.
	MaxLeaseAttempts int

	// CITarget, when > 0, turns on adaptive replication: after a
	// group's base replications finish, the coordinator keeps enqueuing
	// one extra seed at a time until the 95% bootstrap CI half-width of
	// CIMetric's mean, relative to the mean, drops to CITarget or the
	// group reaches MaxReps. Extra-replication seeds derive from
	// (plan seed, group's first spec index, replication number), so
	// they are deterministic regardless of completion order.
	CITarget float64
	// CIMetric is the metric adaptive replication tightens.
	// Default "p99_incast_slowdown".
	CIMetric string
	// MaxReps caps a group's total replications (base included).
	// Default 4x the group's base count.
	MaxReps int

	// Store, when non-nil, persists every record as it arrives and
	// seeds resumption: jobs whose IDs Completed() lists as ok are
	// marked done before any lease is handed out.
	Store runner.RecordSink
	// Progress, when non-nil, receives lease/completion log lines.
	Progress io.Writer
}

// jobState is one job's lifecycle position.
type jobState int

const (
	jobPending jobState = iota
	jobLeased
	jobDone
)

// workerStats is the coordinator's per-worker view, fed by every RPC
// the worker makes and exported as fleet gauges on /metrics.
type workerStats struct {
	lastSeen time.Time
	done     int64   // records accepted from this worker
	events   int64   // simulator events across those records
	wallMS   float64 // wall-clock milliseconds across those records
}

// job is one row of the coordinator's job table.
type job struct {
	id      string
	index   int // spec index in the plan
	group   string
	seed    int64
	state   jobState
	worker  string
	expiry  time.Time
	attempt int // lease count
	rec     *runner.Record
}

// groupInfo tracks one aggregation group for adaptive replication.
type groupInfo struct {
	firstIndex int // spec index extra replications re-run
	baseReps   int // plan-defined replications
	reps       int // replications created so far (base + extras)
	settled    bool
}

// Coordinator owns the job table of one sweep: it leases jobs to
// workers, expires leases whose workers went quiet, collects records,
// persists them, and decides when the sweep — including adaptive
// replications — is finished.
type Coordinator struct {
	cfg      Config
	plan     *runner.Plan
	scenario []byte // raw scenario file bytes for PlanInfo
	planJobs int    // len(plan.Specs) at construction

	mu      sync.Mutex
	jobs    []*job
	byID    map[string]*job
	pending []*job // FIFO; expired leases re-queue at the front
	groups  map[string]*groupInfo
	workers map[string]*workerStats
	// releases counts leases that expired and were requeued; giveups
	// counts jobs abandoned after MaxLeaseAttempts.
	releases int64
	giveups  int64
	done     chan struct{}
	closed   bool
}

// NewCoordinator builds the job table and, when a store is configured,
// marks already-completed jobs done (resume).
func NewCoordinator(cfg Config) (*Coordinator, error) {
	plan := cfg.Plan
	var scenarioJSON []byte
	if plan == nil {
		if cfg.Grid == nil {
			return nil, fmt.Errorf("sweepd: config needs a Grid or a Plan")
		}
		var err error
		if plan, err = cfg.Grid.Plan(); err != nil {
			return nil, err
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Grid != nil && cfg.Grid.Scenario != "" {
		data, err := os.ReadFile(cfg.Grid.Scenario)
		if err != nil {
			return nil, fmt.Errorf("sweepd: scenario file: %w", err)
		}
		scenarioJSON = data
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxLeaseAttempts <= 0 {
		cfg.MaxLeaseAttempts = 5
	}
	if cfg.CIMetric == "" {
		cfg.CIMetric = "p99_incast_slowdown"
	}

	c := &Coordinator{
		cfg:      cfg,
		plan:     plan,
		scenario: scenarioJSON,
		planJobs: len(plan.Specs),
		byID:     make(map[string]*job),
		groups:   make(map[string]*groupInfo),
		workers:  make(map[string]*workerStats),
		done:     make(chan struct{}),
	}
	for i, spec := range plan.Specs {
		seed := spec.Seed
		if seed == 0 {
			seed = plan.SeedFor(i)
		}
		j := &job{id: spec.ID, index: i, group: groupKey(spec), seed: seed}
		c.jobs = append(c.jobs, j)
		c.byID[j.id] = j
		g, ok := c.groups[j.group]
		if !ok {
			g = &groupInfo{firstIndex: i}
			c.groups[j.group] = g
		}
		g.baseReps++
		g.reps++
	}

	var resumed map[string]runner.Record
	if cfg.Store != nil {
		var err error
		if resumed, err = cfg.Store.Completed(); err != nil {
			return nil, err
		}
	}
	for _, j := range c.jobs {
		if rec, ok := resumed[j.id]; ok && rec.OK() {
			rec.Cached = true
			j.state, j.rec = jobDone, &rec
			continue
		}
		c.pending = append(c.pending, j)
	}
	// Adaptive extra replications persisted by a previous run have
	// deterministic IDs and seeds, so they can be revived too — without
	// this a resumed sweep re-runs (and re-logs) every settled group's
	// extras. Extras are created one at a time per group, so replayed
	// records are contiguous in rep; stop at the first gap.
	if cfg.CITarget > 0 && len(resumed) > 0 {
		names := make([]string, 0, len(c.groups))
		for name := range c.groups {
			names = append(names, name)
		}
		sort.Slice(names, func(a, b int) bool {
			return c.groups[names[a]].firstIndex < c.groups[names[b]].firstIndex
		})
		for _, name := range names {
			g := c.groups[name]
			for g.reps < c.maxReps(g) {
				rep := g.reps
				rec, ok := resumed[c.extraJobID(name, rep)]
				if !ok || !rec.OK() || rec.Seed != c.extraSeed(g, rep) {
					break
				}
				rec.Cached = true
				j := &job{id: rec.ID, index: g.firstIndex, group: name,
					seed: rec.Seed, state: jobDone, rec: &rec}
				c.jobs = append(c.jobs, j)
				c.byID[j.id] = j
				g.reps++
			}
		}
	}
	// Groups revived whole from the store still owe their adaptive
	// check; checkGroup is cheap and idempotent, so probe every group.
	for group := range c.groups {
		c.checkGroupLocked(group)
	}
	c.maybeFinishLocked()
	return c, nil
}

// groupKey is the aggregation key the plan assigns a spec.
func groupKey(s runner.Spec) string {
	if s.Group != "" {
		return s.Group
	}
	return s.ID
}

// Plan returns the coordinator's job plan (shared with in-process
// workers).
func (c *Coordinator) Plan() *runner.Plan { return c.plan }

// LeaseTTL returns the configured lease duration, so in-process workers
// can pace heartbeats correctly before their first lease response.
func (c *Coordinator) LeaseTTL() time.Duration { return c.cfg.LeaseTTL }

// PlanInfo implements Dispatcher for remote workers.
func (c *Coordinator) PlanInfo() (*PlanInfo, error) {
	if c.cfg.Grid == nil {
		return nil, fmt.Errorf("sweepd: coordinator has no grid; remote workers cannot join a plan-only sweep")
	}
	return &PlanInfo{
		Name:           c.plan.Name,
		Jobs:           c.planJobs,
		Grid:           c.cfg.Grid,
		Scenario:       c.scenario,
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
	}, nil
}

// Lease implements Dispatcher: it reaps expired leases, then hands out
// up to n pending jobs.
func (c *Coordinator) Lease(worker string, n int) (*LeaseResponse, error) {
	if n <= 0 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker)
	c.reapLocked(time.Now())
	resp := &LeaseResponse{
		TTLMillis:     c.cfg.LeaseTTL.Milliseconds(),
		BackoffMillis: 200,
	}
	for len(resp.Leases) < n && len(c.pending) > 0 {
		j := c.pending[0]
		c.pending = c.pending[1:]
		if j.state != jobPending {
			// A requeued job whose original worker's late Complete
			// landed after all: it is done, not leasable.
			continue
		}
		j.state, j.worker = jobLeased, worker
		j.expiry = time.Now().Add(c.cfg.LeaseTTL)
		j.attempt++
		resp.Leases = append(resp.Leases, Lease{
			JobID:   j.id,
			Index:   j.index,
			SpecID:  c.plan.Specs[j.index].ID,
			Seed:    j.seed,
			Attempt: j.attempt - 1,
		})
		c.logf("lease %s -> %s (attempt %d)", j.id, worker, j.attempt)
	}
	resp.Done = c.finishedLocked()
	return resp, nil
}

// Heartbeat implements Dispatcher: it renews the worker's leases and
// reports the jobs it no longer holds.
func (c *Coordinator) Heartbeat(worker string, jobIDs []string) (*HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker)
	c.reapLocked(time.Now())
	resp := &HeartbeatResponse{}
	for _, id := range jobIDs {
		j, ok := c.byID[id]
		if !ok || j.state != jobLeased || j.worker != worker {
			resp.Lost = append(resp.Lost, id)
			continue
		}
		j.expiry = time.Now().Add(c.cfg.LeaseTTL)
	}
	return resp, nil
}

// Complete implements Dispatcher: it accepts one finished record,
// persists it (with its telemetry bundle, when the store can), and runs
// the group's adaptive-replication check. A record for a job already
// completed elsewhere (a lease that expired and was re-run) is ignored;
// first writer wins, which is safe because identical seeds produce
// identical results.
func (c *Coordinator) Complete(worker string, rec runner.Record, telemetry []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.touchWorkerLocked(worker)
	j, ok := c.byID[rec.ID]
	if !ok {
		return fmt.Errorf("sweepd: unknown job %q", rec.ID)
	}
	if j.state == jobDone {
		c.logf("duplicate result for %s from %s ignored", rec.ID, worker)
		return nil
	}
	if rec.Seed != j.seed {
		return fmt.Errorf("sweepd: job %q: result seed %d, lease says %d", rec.ID, rec.Seed, j.seed)
	}
	if c.cfg.Store != nil {
		if err := c.cfg.Store.Put(rec); err != nil {
			return err
		}
	}
	if len(telemetry) > 0 {
		// Telemetry persistence is best-effort and optional: a store
		// that cannot keep bundles (or a bundle that fails to land)
		// must not fail the result itself.
		if ts, ok := c.cfg.Store.(interface {
			PutTelemetry(id string, data []byte) error
		}); ok {
			if err := ts.PutTelemetry(rec.ID, telemetry); err != nil {
				c.logf("telemetry for %s dropped: %v", rec.ID, err)
			}
		}
	}
	if ws != nil {
		ws.done++
		ws.wallMS += rec.WallMS
		if rec.Result != nil {
			ws.events += int64(rec.Result.Events)
		}
	}
	if j.state == jobPending {
		// A late result for a job reapLocked already requeued: accept it
		// and pull the job back out of the pending queue so it is not
		// leased — and re-run — a second time.
		c.removePendingLocked(j)
	}
	j.state, j.worker, j.rec = jobDone, "", &rec
	c.logf("done %s from %s (%s)", rec.ID, worker, rec.Status)
	c.checkGroupLocked(j.group)
	c.maybeFinishLocked()
	return nil
}

// removePendingLocked deletes one job from the pending queue (a late
// Complete for a requeued job).
func (c *Coordinator) removePendingLocked(target *job) {
	for i, j := range c.pending {
		if j == target {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// reapLocked re-queues jobs whose leases expired; a job leased too many
// times is recorded as failed instead of looping forever.
func (c *Coordinator) reapLocked(now time.Time) {
	for _, j := range c.jobs {
		if j.state != jobLeased || now.Before(j.expiry) {
			continue
		}
		if j.attempt >= c.cfg.MaxLeaseAttempts {
			if j.rec != nil && j.rec.OK() {
				// A successful record already landed for this job (it
				// should not still be leased, but never let the give-up
				// path clobber a real result with a synthesized failure).
				j.state, j.worker = jobDone, ""
				c.checkGroupLocked(j.group)
				continue
			}
			rec := runner.Record{
				ID:         j.id,
				Experiment: c.plan.Specs[j.index].Experiment,
				Group:      c.plan.Specs[j.index].Group,
				Seed:       j.seed,
				Status:     runner.StatusFailed,
				Error: fmt.Sprintf("sweepd: lease expired %d times (last worker %s)",
					j.attempt, j.worker),
				Attempts: j.attempt,
			}
			if c.cfg.Store != nil {
				if err := c.cfg.Store.Put(rec); err != nil {
					c.logf("store error for %s: %v", j.id, err)
				}
			}
			j.state, j.worker, j.rec = jobDone, "", &rec
			c.giveups++
			c.logf("gave up on %s after %d leases", j.id, j.attempt)
			c.checkGroupLocked(j.group)
			continue
		}
		c.releases++
		c.logf("lease expired: %s (worker %s, attempt %d)", j.id, j.worker, j.attempt)
		j.state, j.worker = jobPending, ""
		// Front of the queue: an interrupted job is the oldest work.
		c.pending = append([]*job{j}, c.pending...)
	}
	c.maybeFinishLocked()
}

// checkGroupLocked runs the adaptive-replication decision for a group:
// once its base replications are all in, keep one extra replication in
// flight until the CI target is met or the cap is reached.
func (c *Coordinator) checkGroupLocked(group string) {
	g := c.groups[group]
	if g == nil || g.settled {
		return
	}
	if c.cfg.CITarget <= 0 {
		g.settled = true
		return
	}
	var recs []runner.Record
	finished := 0
	for _, j := range c.jobs {
		if j.group != group {
			continue
		}
		if j.state != jobDone {
			return // replications still in flight; decide when they land
		}
		finished++
		if j.rec != nil && j.rec.OK() {
			recs = append(recs, *j.rec)
		}
	}
	if finished < g.baseReps || len(recs) == 0 {
		// Not enough signal (or everything failed): nothing to tighten.
		g.settled = len(recs) == 0
		return
	}
	rel, ok := c.relCIHalfWidth(recs)
	if !ok {
		// The target metric does not exist in this experiment's records.
		g.settled = true
		return
	}
	if rel <= c.cfg.CITarget || g.reps >= c.maxReps(g) {
		g.settled = true
		return
	}
	c.addReplicationLocked(group, g)
}

// maxReps resolves the replication cap for a group.
func (c *Coordinator) maxReps(g *groupInfo) int {
	if c.cfg.MaxReps > 0 {
		return c.cfg.MaxReps
	}
	return 4 * g.baseReps
}

// relCIHalfWidth computes the target metric's bootstrap-CI half-width
// relative to its mean over the group's successful records, reusing
// runner.Aggregate so the numbers match what the final aggregation will
// report. ok is false when the metric is absent.
func (c *Coordinator) relCIHalfWidth(recs []runner.Record) (rel float64, ok bool) {
	if _, has := runner.MetricsOf(recs[0])[c.cfg.CIMetric]; !has {
		return 0, false
	}
	groups := runner.Aggregate(recs)
	if len(groups) != 1 {
		return 0, false
	}
	st, has := groups[0].Metrics[c.cfg.CIMetric]
	if !has {
		return 0, false
	}
	half := (st.CIHi - st.CILo) / 2
	if mean := math.Abs(st.Mean); mean > 0 {
		return half / mean, true
	}
	return half, true
}

// extraJobID names a group's rep-th replication (base reps included in
// the numbering); extraSeed derives its seed from (plan seed -> first
// spec index -> replication number). Both are pure functions of the
// plan, so the k-th extra replication is identical in every run of the
// sweep — whatever order groups tighten in, and across resumes.
func (c *Coordinator) extraJobID(group string, rep int) string {
	return fmt.Sprintf("%s/extra-%s,rep=%d", c.plan.Name, group, rep)
}

func (c *Coordinator) extraSeed(g *groupInfo, rep int) int64 {
	return randutil.DeriveSeed(randutil.DeriveSeed(c.plan.Seed, g.firstIndex), rep)
}

// addReplicationLocked enqueues one extra replication for the group.
func (c *Coordinator) addReplicationLocked(group string, g *groupInfo) {
	rep := g.reps
	g.reps++
	id := c.extraJobID(group, rep)
	seed := c.extraSeed(g, rep)
	j := &job{id: id, index: g.firstIndex, group: group, seed: seed}
	c.jobs = append(c.jobs, j)
	c.byID[id] = j
	c.pending = append(c.pending, j)
	c.logf("adaptive: +1 replication for %s (rep %d, seed %d)", group, rep, seed)
}

// finishedLocked reports whether every job is done and every group
// settled.
func (c *Coordinator) finishedLocked() bool {
	if len(c.pending) > 0 {
		return false
	}
	for _, j := range c.jobs {
		if j.state != jobDone {
			return false
		}
	}
	for _, g := range c.groups {
		if !g.settled && c.cfg.CITarget > 0 {
			return false
		}
	}
	return true
}

// maybeFinishLocked closes the done channel exactly once.
func (c *Coordinator) maybeFinishLocked() {
	if !c.closed && c.finishedLocked() {
		c.closed = true
		close(c.done)
	}
}

// Done returns a channel closed when the sweep is complete.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Wait blocks until the sweep completes or ctx is canceled. It also
// drives lease expiry while blocked, so a sweep whose workers all died
// still converges (to failed records) instead of hanging.
func (c *Coordinator) Wait(ctx context.Context) error {
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			c.mu.Lock()
			c.reapLocked(time.Now())
			c.mu.Unlock()
		}
	}
}

// Records returns every job's record: plan jobs in plan order first,
// then adaptive extras in creation order. Jobs that never finished
// (the sweep was abandoned) are skipped.
func (c *Coordinator) Records() []runner.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	recs := make([]runner.Record, 0, len(c.jobs))
	for _, j := range c.jobs {
		if j.rec != nil {
			recs = append(recs, *j.rec)
		}
	}
	return recs
}

// Status returns a live snapshot for the status endpoint.
func (c *Coordinator) Status() *Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &Status{Name: c.plan.Name, Jobs: len(c.jobs), Finished: c.finishedLocked()}
	byGroup := make(map[string]*GroupStatus)
	for _, j := range c.jobs {
		gs := byGroup[j.group]
		if gs == nil {
			gs = &GroupStatus{Group: j.group}
			byGroup[j.group] = gs
		}
		gs.Total++
		switch j.state {
		case jobPending:
			st.Pending++
		case jobLeased:
			st.Leased++
		case jobDone:
			st.Done++
			if j.rec != nil && j.rec.OK() {
				gs.OK++
			} else {
				gs.Failed++
				st.Failed++
			}
		}
	}
	names := make([]string, 0, len(byGroup))
	for name := range byGroup {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		gs := byGroup[name]
		g := c.groups[name]
		gs.Settled = g.settled
		var recs []runner.Record
		for _, j := range c.jobs {
			if j.group == name && j.rec != nil && j.rec.OK() {
				recs = append(recs, *j.rec)
			}
		}
		if c.cfg.CITarget > 0 && len(recs) >= 2 {
			if rel, ok := c.relCIHalfWidth(recs); ok {
				gs.RelCIHalfWidth = rel
				gs.Mean = runner.Aggregate(recs)[0].Metrics[c.cfg.CIMetric].Mean
			}
		}
		gs.Slowdown = SlowdownOf(recs)
		st.Groups = append(st.Groups, *gs)
	}
	if s, ok := c.cfg.Store.(*Store); ok && s != nil {
		stats := s.Stats()
		st.Batch = &stats
	}
	return st
}

// touchWorkerLocked records that a worker was heard from just now and
// returns its stats row. Callers hold c.mu. An empty worker name (some
// tests drive the Dispatcher directly) is not tracked.
func (c *Coordinator) touchWorkerLocked(worker string) *workerStats {
	if worker == "" {
		return nil
	}
	ws := c.workers[worker]
	if ws == nil {
		ws = &workerStats{}
		c.workers[worker] = ws
	}
	ws.lastSeen = time.Now()
	return ws
}

// logf writes one progress line when Progress is set.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Progress != nil {
		fmt.Fprintf(c.cfg.Progress, "sweepd: "+format+"\n", args...)
	}
}
