package sweepd

import (
	"sync"
	"time"

	"abm/internal/runner"
)

// Batcher turns individual record Puts into size- and deadline-driven
// batch commits against a RecordLog: a batch is committed (appended and
// fsynced) when it reaches MaxBatch records or when MaxDelay has passed
// since its first record, whichever comes first. One fsync per batch
// amortizes the durability cost across records without letting an
// acknowledged record sit volatile for long. Commit errors are sticky:
// once a commit fails, every later Put/Flush/Close reports it, so a
// sweep never silently keeps feeding a dead log.
type Batcher struct {
	log      RecordLog
	maxBatch int
	maxDelay time.Duration

	mu      sync.Mutex
	pending []runner.Record
	timer   *time.Timer
	err     error

	stats BatchStats
}

// BatchStats counts a batcher's lifetime work.
type BatchStats struct {
	// Records is the number of records committed.
	Records int64 `json:"records"`
	// Batches is the number of commits (each one append + one fsync).
	Batches int64 `json:"batches"`
	// MaxBatchLen is the largest single commit.
	MaxBatchLen int `json:"max_batch_len"`
	// Pending is the number of records buffered for the next commit at
	// the moment Stats was taken.
	Pending int `json:"pending,omitempty"`
	// LastCommitMicros is the wall-clock duration of the most recent
	// commit (append + fsync), in microseconds.
	LastCommitMicros int64 `json:"last_commit_us,omitempty"`
}

// Batching defaults.
const (
	defaultMaxBatch = 64
	defaultMaxDelay = 200 * time.Millisecond
)

// NewBatcher wraps log. maxBatch <= 0 selects 64 records; maxDelay <= 0
// selects 200ms.
func NewBatcher(log RecordLog, maxBatch int, maxDelay time.Duration) *Batcher {
	if maxBatch <= 0 {
		maxBatch = defaultMaxBatch
	}
	if maxDelay <= 0 {
		maxDelay = defaultMaxDelay
	}
	return &Batcher{log: log, maxBatch: maxBatch, maxDelay: maxDelay}
}

// Put enqueues one record for the next commit. It returns immediately
// unless the record fills the batch, in which case it carries out the
// commit (and reports its error) itself.
func (b *Batcher) Put(rec runner.Record) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	b.pending = append(b.pending, rec)
	if len(b.pending) >= b.maxBatch {
		return b.commitLocked()
	}
	if b.timer == nil {
		b.timer = time.AfterFunc(b.maxDelay, b.deadline)
	}
	return nil
}

// deadline is the timer callback committing an aged batch.
func (b *Batcher) deadline() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.commitLocked() // error is sticky; the next Put surfaces it
}

// Flush commits everything pending and returns when it is durable.
func (b *Batcher) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return b.err
	}
	return b.commitLocked()
}

// Close flushes and releases the timer. It does not close the
// underlying log (the log may outlive the batcher, e.g. for Replay).
func (b *Batcher) Close() error {
	err := b.Flush()
	b.mu.Lock()
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	return err
}

// Stats returns a snapshot of the batcher's counters.
func (b *Batcher) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.Pending = len(b.pending)
	return st
}

// commitLocked appends and fsyncs the pending batch. Callers hold b.mu.
func (b *Batcher) commitLocked() error {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(b.pending) == 0 {
		return b.err
	}
	batch := b.pending
	b.pending = nil
	start := time.Now()
	if err := b.log.Append(batch); err != nil {
		b.err = err
		return err
	}
	if err := b.log.Sync(); err != nil {
		b.err = err
		return err
	}
	b.stats.LastCommitMicros = time.Since(start).Microseconds()
	b.stats.Records += int64(len(batch))
	b.stats.Batches++
	if len(batch) > b.stats.MaxBatchLen {
		b.stats.MaxBatchLen = len(batch)
	}
	return nil
}
