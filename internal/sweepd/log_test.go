package sweepd

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"abm/internal/runner"
)

func testRecord(id string, seed int64) runner.Record {
	return runner.Record{
		ID: id, Experiment: "t", Group: "g", Seed: seed,
		Status: runner.StatusOK, Attempts: 1,
		Result: &runner.Result{Events: uint64(seed) * 10, Extra: map[string]float64{"x": float64(seed)}},
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []runner.Record{testRecord("a", 1), testRecord("b", 2), testRecord("c", 3)}
	if err := l.Append(want[:2]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(want[2:]); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := l.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Seed != want[i].Seed ||
			got[i].Result == nil || got[i].Result.Events != want[i].Result.Events {
			t.Fatalf("record %d mangled: %+v", i, got[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileLogTornTail cuts the final line mid-write — the shape a
// SIGKILL during a batch commit leaves — and checks replay keeps every
// whole record and drops only the torn one.
func TestFileLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]runner.Record{testRecord("a", 1), testRecord("b", 2)}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the final record's JSON.
	if err := os.WriteFile(path, data[:len(data)-15], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got, err := l2.Replay()
	if err != nil {
		t.Fatalf("torn tail must not fail replay: %v", err)
	}
	if len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("want only record a, got %+v", got)
	}

	// The reopened log healed the tail, so an append lands cleanly.
	if err := l2.Append([]runner.Record{testRecord("c", 3)}); err != nil {
		t.Fatal(err)
	}
	got, err = l2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1].ID != "c" {
		t.Fatalf("append after heal: got %+v", got)
	}
}

// TestFileLogMidFileCorruption flips a byte away from the tail: that is
// damage, not a crash artifact, and must be an error.
func TestFileLogMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.log")
	l, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]runner.Record{testRecord(string(rune('a'+i)), int64(i+1))}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside the first line's payload.
	i := strings.IndexByte(string(data), '\t') + 5
	data[i] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Replay(); err == nil {
		t.Fatal("mid-file corruption replayed silently")
	}
}

func TestBatcherSizeTrigger(t *testing.T) {
	log := NewMemLog()
	b := NewBatcher(log, 3, time.Hour) // deadline effectively off
	for i := 0; i < 7; i++ {
		if err := b.Put(testRecord(string(rune('a'+i)), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// 7 puts with batch size 3: two full batches committed, one record
	// still pending.
	recs, _ := log.Replay()
	if len(recs) != 6 {
		t.Fatalf("committed %d records before flush, want 6", len(recs))
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ = log.Replay()
	if len(recs) != 7 {
		t.Fatalf("committed %d records after close, want 7", len(recs))
	}
	st := b.Stats()
	if st.Records != 7 || st.Batches != 3 || st.MaxBatchLen != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBatcherDeadlineTrigger(t *testing.T) {
	log := NewMemLog()
	b := NewBatcher(log, 1<<20, 20*time.Millisecond)
	if err := b.Put(testRecord("a", 1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if recs, _ := log.Replay(); len(recs) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("deadline commit never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreCompletedLatestWins checks the RecordSink adapter resolves
// duplicates the same way the manifest store does: the latest entry for
// a job decides, and only ok records resume.
func TestStoreCompletedLatestWins(t *testing.T) {
	s := NewStore(NewMemLog(), 0, 0)
	fail := testRecord("a", 1)
	fail.Status, fail.Result = runner.StatusFailed, nil
	if err := s.Put(fail); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord("a", 1)); err != nil { // retry succeeded
		t.Fatal(err)
	}
	if err := s.Put(testRecord("b", 2)); err != nil {
		t.Fatal(err)
	}
	late := testRecord("b", 2) // later failure supersedes
	late.Status, late.Result = runner.StatusFailed, nil
	if err := s.Put(late); err != nil {
		t.Fatal(err)
	}
	done, err := s.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("completed = %v, want only a", done)
	}
	if _, ok := done["a"]; !ok {
		t.Fatalf("a missing: %v", done)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreAsPoolSink runs a real Pool against the batched log store:
// the existing resume path must work unchanged through the adapter.
func TestStoreAsPoolSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.log")
	log, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore(log, 4, 10*time.Millisecond)
	plan := syntheticPlan("pool-sink", 9, nil)
	recs, err := (&runner.Pool{Workers: 3, Store: store}).Run(t.Context(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(runner.Failed(recs)) != 0 {
		t.Fatalf("failures: %+v", runner.Failed(recs))
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: every job served from the log, zero re-runs.
	log2, err := OpenFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	store2 := NewStore(log2, 0, 0)
	defer store2.Close()
	var calls atomic.Int64
	plan2 := syntheticPlan("pool-sink", 9, &calls)
	recs2, err := (&runner.Pool{Workers: 3, Store: store2}).Run(t.Context(), plan2)
	if err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("resume re-ran %d jobs, want 0", n)
	}
	for i := range recs2 {
		if !recs2[i].Cached || recs2[i].Seed != recs[i].Seed {
			t.Fatalf("record %d not served from log: %+v", i, recs2[i])
		}
	}
}
