package sweepd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"abm/internal/runner"
)

// syntheticPlan builds a plan of instant deterministic jobs: the result
// is a pure function of the seed, so any execution order and any
// worker topology must aggregate identically.
func syntheticPlan(name string, jobs int, calls *atomic.Int64) *runner.Plan {
	plan := &runner.Plan{Name: name, Seed: 7}
	for i := 0; i < jobs; i++ {
		group := fmt.Sprintf("g%d", i%3)
		plan.Add(runner.Spec{
			ID:         fmt.Sprintf("%s/%04d-%s", name, i, group),
			Experiment: name,
			Group:      group,
			Run: func(ctx context.Context, seed int64) (runner.Result, error) {
				if calls != nil {
					calls.Add(1)
				}
				return syntheticResult(seed), nil
			},
		})
	}
	return plan
}

// syntheticResult derives a high-variance metric from the seed.
func syntheticResult(seed int64) runner.Result {
	return runner.Result{
		Events: uint64(seed),
		Extra:  map[string]float64{"val": float64(seed % 977)},
	}
}

// aggBytes renders records the way cmd/sweep persists them: the
// aggregate JSON plus the TSV table. Byte equality of this is the
// equivalence the service guarantees.
func aggBytes(t *testing.T, recs []runner.Record) string {
	t.Helper()
	groups := runner.Aggregate(recs)
	data, err := json.MarshalIndent(groups, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data) + "\n---\n" + runner.FormatGroups(groups)
}

// runWorkers drives the coordinator with n in-process workers sharing
// its plan and waits for the sweep to finish.
func runWorkers(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{
			Dispatcher: c,
			Name:       fmt.Sprintf("w%d", i),
			Plan:       c.Plan(),
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("sweep did not finish: %v", err)
	}
	wg.Wait()
}

// TestCoordinatorMatchesPool is the core determinism contract on
// synthetic jobs: coordinator + workers and the classic in-process pool
// must aggregate byte-identically.
func TestCoordinatorMatchesPool(t *testing.T) {
	poolRecs, err := (&runner.Pool{Workers: 4}).Run(t.Context(), syntheticPlan("eq", 12, nil))
	if err != nil {
		t.Fatal(err)
	}
	want := aggBytes(t, poolRecs)

	c, err := NewCoordinator(Config{
		Plan:  syntheticPlan("eq", 12, nil),
		Store: NewStore(NewMemLog(), 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, c, 3)
	if got := aggBytes(t, c.Records()); got != want {
		t.Fatalf("aggregate mismatch\npool:\n%s\nsweepd:\n%s", want, got)
	}
	// And the durable log replays to the same aggregate.
	done, err := c.cfg.Store.Completed()
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 12 {
		t.Fatalf("log holds %d records, want 12", len(done))
	}
}

// TestLeaseExpiryAndWorkerChurn kills a worker mid-job: its leased job
// must be re-leased after the TTL and the final aggregate must be
// byte-identical to an uninterrupted run.
func TestLeaseExpiryAndWorkerChurn(t *testing.T) {
	const blockedJob = "churn/0004-g1"

	makePlan := func(blockOnce bool) *runner.Plan {
		var once sync.Once
		block := make(chan struct{})
		plan := syntheticPlan("churn", 9, nil)
		if !blockOnce {
			return plan
		}
		for i := range plan.Specs {
			spec := &plan.Specs[i]
			if spec.ID != blockedJob {
				continue
			}
			inner := spec.Run
			spec.Run = func(ctx context.Context, seed int64) (runner.Result, error) {
				var first bool
				once.Do(func() { first = true })
				if first {
					// Simulate the job the dying worker was holding:
					// hang until the test tears the worker down.
					<-ctx.Done()
					<-block // released at cleanup; result is discarded
				}
				return inner(ctx, seed)
			}
		}
		t.Cleanup(func() { close(block) })
		return plan
	}

	poolRecs, err := (&runner.Pool{Workers: 4}).Run(t.Context(), makePlan(false))
	if err != nil {
		t.Fatal(err)
	}
	want := aggBytes(t, poolRecs)

	c, err := NewCoordinator(Config{
		Plan:             makePlan(true),
		LeaseTTL:         150 * time.Millisecond,
		MaxLeaseAttempts: 10,
		Store:            NewStore(NewMemLog(), 0, 0),
	})
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker: runs until it blocks on the poisoned job, then
	// its context is killed once the coordinator shows a stuck lease.
	doomedCtx, killWorker := context.WithCancel(context.Background())
	defer killWorker()
	doomed := &Worker{Dispatcher: c, Name: "doomed", Plan: c.Plan()}
	doomedDone := make(chan struct{})
	go func() {
		defer close(doomedDone)
		doomed.Run(doomedCtx)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.mu.Lock()
		stuck := c.byID[blockedJob].state == jobLeased && c.byID[blockedJob].worker == "doomed"
		c.mu.Unlock()
		if stuck {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("doomed worker never leased the poisoned job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	killWorker()
	<-doomedDone

	// A healthy worker joins; after the TTL the coordinator re-leases
	// the orphaned job to it and the sweep completes.
	runWorkers(t, c, 1)

	c.mu.Lock()
	attempts := c.byID[blockedJob].attempt
	c.mu.Unlock()
	if attempts < 2 {
		t.Fatalf("poisoned job leased %d times, want >= 2 (re-lease after expiry)", attempts)
	}
	if got := aggBytes(t, c.Records()); got != want {
		t.Fatalf("aggregate after churn differs from uninterrupted run\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestLeaseGiveUp bounds re-leasing: a job whose every lease expires is
// eventually recorded failed instead of looping forever.
func TestLeaseGiveUp(t *testing.T) {
	c, err := NewCoordinator(Config{
		Plan:             syntheticPlan("giveup", 1, nil),
		LeaseTTL:         20 * time.Millisecond,
		MaxLeaseAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, err := c.Lease("ghost", 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Leases) != 1 {
			t.Fatalf("lease %d: got %d leases", i, len(resp.Leases))
		}
		time.Sleep(30 * time.Millisecond) // let it expire, never heartbeat
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("coordinator never gave up: %v", err)
	}
	recs := c.Records()
	if len(recs) != 1 || recs[0].Status != runner.StatusFailed ||
		!strings.Contains(recs[0].Error, "lease expired") {
		t.Fatalf("want a lease-expiry failure record, got %+v", recs)
	}
}

// TestLateCompleteAfterRequeue covers the race where a lease expires,
// the job is requeued, and the original worker's result then arrives
// late: the result must be accepted and the job pulled back out of the
// pending queue — not leased (and re-run) a second time, and never
// later overwritten by a synthesized failure.
func TestLateCompleteAfterRequeue(t *testing.T) {
	plan := syntheticPlan("late", 1, nil)
	c, err := NewCoordinator(Config{
		Plan:             plan,
		LeaseTTL:         20 * time.Millisecond,
		MaxLeaseAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Lease("a", 1)
	if err != nil || len(resp.Leases) != 1 {
		t.Fatalf("lease: %v %+v", err, resp)
	}
	lease := resp.Leases[0]

	// Let the lease expire and reap (Heartbeat reaps as a side effect).
	time.Sleep(30 * time.Millisecond)
	if _, err := c.Heartbeat("other", nil); err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	state, npend := c.byID[lease.JobID].state, len(c.pending)
	c.mu.Unlock()
	if state != jobPending || npend != 1 {
		t.Fatalf("job not requeued after expiry: state=%v pending=%d", state, npend)
	}

	// The late result from the original worker lands.
	rec := runner.Execute(context.Background(), plan.Specs[0], lease.Seed, runner.ExecOptions{})
	if err := c.Complete("a", rec, nil); err != nil {
		t.Fatal(err)
	}
	resp2, err := c.Lease("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Leases) != 0 {
		t.Fatalf("done job leased again: %+v", resp2.Leases)
	}
	if !resp2.Done {
		t.Fatal("sweep not done after the late complete")
	}
	recs := c.Records()
	if len(recs) != 1 || !recs[0].OK() {
		t.Fatalf("want one successful record, got %+v", recs)
	}
}

// TestHeartbeatKeepsLease proves the opposite of expiry: a slow worker
// that heartbeats keeps its lease past several TTLs.
func TestHeartbeatKeepsLease(t *testing.T) {
	c, err := NewCoordinator(Config{
		Plan:     syntheticPlan("hb", 1, nil),
		LeaseTTL: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Lease("slow", 1)
	if err != nil || len(resp.Leases) != 1 {
		t.Fatalf("lease: %v %+v", err, resp)
	}
	id := resp.Leases[0].JobID
	for i := 0; i < 6; i++ {
		time.Sleep(20 * time.Millisecond)
		hb, err := c.Heartbeat("slow", []string{id})
		if err != nil {
			t.Fatal(err)
		}
		if len(hb.Lost) != 0 {
			t.Fatalf("heartbeat %d lost the lease: %v", i, hb.Lost)
		}
	}
	rec := runner.Execute(context.Background(), c.Plan().Specs[0], resp.Leases[0].Seed, runner.ExecOptions{})
	if err := c.Complete("slow", rec, nil); err != nil {
		t.Fatal(err)
	}
	if !c.Status().Finished {
		t.Fatal("sweep not finished after the slow job completed")
	}
}

// TestCoordinatorResume seeds the store with half the records: only the
// other half may run, and the final aggregate still matches a full run.
func TestCoordinatorResume(t *testing.T) {
	full, err := (&runner.Pool{Workers: 2}).Run(t.Context(), syntheticPlan("res", 8, nil))
	if err != nil {
		t.Fatal(err)
	}
	want := aggBytes(t, full)

	store := NewStore(NewMemLog(), 0, 0)
	for _, rec := range full[:4] {
		if err := store.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	var calls atomic.Int64
	c, err := NewCoordinator(Config{Plan: syntheticPlan("res", 8, &calls), Store: store})
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, c, 2)
	if n := calls.Load(); n != 4 {
		t.Fatalf("resume ran %d jobs, want 4", n)
	}
	if got := aggBytes(t, c.Records()); got != want {
		t.Fatalf("resumed aggregate differs\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestAdaptiveReplication drives a high-variance group against a tight
// CI target: the coordinator must keep adding deterministic extra
// replications until the cap, and a second identical run must create
// exactly the same extra jobs with the same seeds.
func TestAdaptiveReplication(t *testing.T) {
	run := func() (map[string]int64, int) {
		c, err := NewCoordinator(Config{
			Plan:     syntheticPlan("adapt", 6, nil), // 3 groups x 2 reps
			CITarget: 1e-6,                           // unreachably tight
			CIMetric: "val",
			MaxReps:  5,
		})
		if err != nil {
			t.Fatal(err)
		}
		runWorkers(t, c, 2)
		extras := make(map[string]int64)
		c.mu.Lock()
		for _, j := range c.jobs {
			if strings.HasPrefix(j.id, "adapt/extra-") {
				extras[j.id] = j.seed
			}
		}
		c.mu.Unlock()
		return extras, len(c.Records())
	}

	extras, total := run()
	// 3 groups, 2 base reps each, cap 5: every group gains 3 extras.
	if len(extras) != 9 || total != 15 {
		t.Fatalf("extras = %d (records %d), want 9 extras / 15 records: %v", len(extras), total, extras)
	}
	extras2, total2 := run()
	if total2 != total {
		t.Fatalf("second run made %d records, first %d", total2, total)
	}
	for id, seed := range extras {
		if extras2[id] != seed {
			t.Fatalf("extra %s seed changed across runs: %d vs %d", id, seed, extras2[id])
		}
	}

	// A loose target stays at the base replication count.
	c, err := NewCoordinator(Config{
		Plan:     syntheticPlan("adapt", 6, nil),
		CITarget: 1e9,
		CIMetric: "val",
		MaxReps:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, c, 2)
	if n := len(c.Records()); n != 6 {
		t.Fatalf("loose target ran %d records, want 6", n)
	}
}

// TestResumeRevivesAdaptiveExtras restarts an adaptive sweep against
// its own record log: the extra-replication records (deterministic IDs
// and seeds) must be revived alongside the base jobs, so nothing
// re-runs and the aggregate is unchanged.
func TestResumeRevivesAdaptiveExtras(t *testing.T) {
	mkConfig := func(plan *runner.Plan, store *Store) Config {
		return Config{Plan: plan, Store: store, CITarget: 1e-6, CIMetric: "val", MaxReps: 5}
	}
	store := NewStore(NewMemLog(), 0, 0)
	c1, err := NewCoordinator(mkConfig(syntheticPlan("rev", 6, nil), store))
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, c1, 2)
	want := aggBytes(t, c1.Records())

	var calls atomic.Int64
	c2, err := NewCoordinator(mkConfig(syntheticPlan("rev", 6, &calls), store))
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Status().Finished {
		t.Fatal("fully replayed adaptive sweep should be finished at construction")
	}
	runWorkers(t, c2, 2)
	if n := calls.Load(); n != 0 {
		t.Fatalf("resume re-ran %d jobs, want 0", n)
	}
	if got := aggBytes(t, c2.Records()); got != want {
		t.Fatalf("resumed adaptive aggregate differs\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestWorkerHeartbeatShortTTL runs a job several times longer than the
// lease TTL through a real in-process worker: the worker must learn the
// coordinator's TTL before its first heartbeat window, so the lease is
// renewed and the job runs exactly once.
func TestWorkerHeartbeatShortTTL(t *testing.T) {
	var calls atomic.Int64
	plan := &runner.Plan{Name: "ttl", Seed: 7}
	plan.Add(runner.Spec{
		ID: "ttl/slow", Experiment: "ttl", Group: "g",
		Run: func(ctx context.Context, seed int64) (runner.Result, error) {
			calls.Add(1)
			select {
			case <-ctx.Done():
				return runner.Result{}, ctx.Err()
			case <-time.After(500 * time.Millisecond):
			}
			return syntheticResult(seed), nil
		},
	})
	c, err := NewCoordinator(Config{Plan: plan, LeaseTTL: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	runWorkers(t, c, 1)
	if n := calls.Load(); n != 1 {
		t.Fatalf("short-TTL job ran %d times, want 1 (heartbeats must hold the lease)", n)
	}
	c.mu.Lock()
	attempts := c.byID["ttl/slow"].attempt
	c.mu.Unlock()
	if attempts != 1 {
		t.Fatalf("short-TTL job leased %d times, want 1", attempts)
	}
}

// TestHTTPDispatcher runs the whole lease/heartbeat/result protocol
// over a real HTTP round trip and checks the aggregate still matches
// the pool.
func TestHTTPDispatcher(t *testing.T) {
	poolRecs, err := (&runner.Pool{Workers: 4}).Run(t.Context(), syntheticPlan("http", 10, nil))
	if err != nil {
		t.Fatal(err)
	}
	want := aggBytes(t, poolRecs)

	c, err := NewCoordinator(Config{Plan: syntheticPlan("http", 10, nil)})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &Worker{
			Dispatcher: NewClient(srv.URL),
			Name:       fmt.Sprintf("remote%d", i),
			Plan:       c.Plan(), // synthetic plans cannot travel as grids
			Slots:      2,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got := aggBytes(t, c.Records()); got != want {
		t.Fatalf("HTTP aggregate mismatch\nwant:\n%s\ngot:\n%s", want, got)
	}

	// Status over the wire reflects the finished sweep.
	st, err := NewClient(srv.URL).Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Finished || st.Done != 10 {
		t.Fatalf("status: %+v", st)
	}

	// A plan-only coordinator refuses PlanInfo with a useful error.
	if _, err := NewClient(srv.URL).PlanInfo(); err == nil {
		t.Fatal("PlanInfo on a plan-only coordinator must fail")
	}
}
