package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTxTimeExact(t *testing.T) {
	tests := []struct {
		name string
		rate Rate
		n    ByteCount
		want Time
	}{
		{"1500B at 10G", 10 * GigabitPerSec, 1500, 1200 * Nanosecond},
		{"1B at 10G", 10 * GigabitPerSec, 1, 800 * Picosecond},
		{"1500B at 100G", 100 * GigabitPerSec, 1500, 120 * Nanosecond},
		{"1B at 400G", 400 * GigabitPerSec, 1, 20 * Picosecond},
		{"zero bytes", 10 * GigabitPerSec, 0, 0},
		{"1GB at 1G", GigabitPerSec, Gigabyte, 8 * Second},
		{"64B at 1bps", 1, 64, 512 * Second},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.rate.TxTime(tc.n); got != tc.want {
				t.Errorf("TxTime(%v) at %v = %v, want %v", tc.n, tc.rate, got, tc.want)
			}
		})
	}
}

func TestBytesOver(t *testing.T) {
	tests := []struct {
		rate Rate
		d    Time
		want ByteCount
	}{
		{10 * GigabitPerSec, 1200 * Nanosecond, 1500},
		{10 * GigabitPerSec, Microsecond, 1250},
		{GigabitPerSec, Second, 125 * Megabyte},
		{10 * GigabitPerSec, 0, 0},
		{10 * GigabitPerSec, 100 * Picosecond, 0}, // sub-byte rounds down
	}
	for _, tc := range tests {
		if got := tc.rate.BytesOver(tc.d); got != tc.want {
			t.Errorf("BytesOver(%v) at %v = %v, want %v", tc.d, tc.rate, got, tc.want)
		}
	}
}

func TestRateOf(t *testing.T) {
	if got := RateOf(1250, Microsecond); got != 10*GigabitPerSec {
		t.Errorf("RateOf(1250B, 1us) = %v, want 10Gbps", got)
	}
	if got := RateOf(100, 0); got != 0 {
		t.Errorf("RateOf with zero duration = %v, want 0", got)
	}
	if got := RateOf(0, Second); got != 0 {
		t.Errorf("RateOf(0, 1s) = %v, want 0", got)
	}
}

// TxTime followed by BytesOver must round-trip: transmitting n bytes takes
// exactly the time over which n bytes fit.
func TestRoundTripProperty(t *testing.T) {
	f := func(rawBytes uint32, rawRate uint32) bool {
		n := ByteCount(rawBytes % 10_000_000)
		r := Rate(rawRate%400) * GigabitPerSec
		if r == 0 {
			r = GigabitPerSec
		}
		d := r.TxTime(n)
		got := r.BytesOver(d)
		return got == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TxTime must be monotone in the byte count.
func TestTxTimeMonotoneProperty(t *testing.T) {
	f := func(a, b uint32, rawRate uint32) bool {
		r := Rate(rawRate%100+1) * GigabitPerSec
		na, nb := ByteCount(a%1_000_000), ByteCount(b%1_000_000)
		if na > nb {
			na, nb = nb, na
		}
		return r.TxTime(na) <= r.TxTime(nb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMulDivOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overflow")
		}
	}()
	mulDiv(math.MaxInt64, math.MaxInt64, 1)
}

func TestMulDivZeroDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero division")
		}
	}()
	mulDiv(1, 1, 0)
}

func TestNegativeTxTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative bytes")
		}
	}()
	GigabitPerSec.TxTime(-1)
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		in   Time
		want string
	}{
		{0, "0s"},
		{Second, "1s"},
		{1500 * Microsecond, "1.500ms"},
		{10 * Microsecond, "10.000us"},
		{800 * Picosecond, "800ps"},
		{1200 * Nanosecond, "1.200us"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(tc.in), got, tc.want)
		}
	}
}

func TestByteCountString(t *testing.T) {
	if got := (1500 * Byte).String(); got != "1.50KB" {
		t.Errorf("got %q", got)
	}
	if got := (2 * Megabyte).String(); got != "2.00MB" {
		t.Errorf("got %q", got)
	}
	if got := (12 * Byte).String(); got != "12B" {
		t.Errorf("got %q", got)
	}
	if got := (3 * Gigabyte).String(); got != "3.00GB" {
		t.Errorf("got %q", got)
	}
}

func TestRateString(t *testing.T) {
	if got := (10 * GigabitPerSec).String(); got != "10.00Gbps" {
		t.Errorf("got %q", got)
	}
	if got := (25 * MegabitPerSec).String(); got != "25.00Mbps" {
		t.Errorf("got %q", got)
	}
	if got := (3 * KilobitPerSec).String(); got != "3.00Kbps" {
		t.Errorf("got %q", got)
	}
	if got := Rate(5).String(); got != "5bps" {
		t.Errorf("got %q", got)
	}
}

func TestSeconds(t *testing.T) {
	if got := (250 * Millisecond).Seconds(); got != 0.25 {
		t.Errorf("Seconds = %v", got)
	}
	if got := (3 * Microsecond).Microseconds(); got != 3 {
		t.Errorf("Microseconds = %v", got)
	}
}

func TestMinMaxHelpers(t *testing.T) {
	if MinTime(1, 2) != 1 || MaxTime(1, 2) != 2 {
		t.Error("time min/max broken")
	}
	if MinBytes(5, 3) != 3 || MaxBytes(5, 3) != 5 {
		t.Error("bytes min/max broken")
	}
}

func TestBDP(t *testing.T) {
	// 10 Gb/s over 80us base RTT = 100KB.
	if got := BDP(10*GigabitPerSec, 80*Microsecond); got != 100*Kilobyte {
		t.Errorf("BDP = %v, want 100KB", got)
	}
}

func TestGbps(t *testing.T) {
	if got := (25 * GigabitPerSec).Gbps(); got != 25 {
		t.Errorf("Gbps = %v", got)
	}
}

// BytesOver is monotone in duration.
func TestBytesOverMonotoneProperty(t *testing.T) {
	f := func(a, b uint32, rawRate uint32) bool {
		r := Rate(rawRate%100+1) * GigabitPerSec
		da, db := Time(a), Time(b)
		if da > db {
			da, db = db, da
		}
		return r.BytesOver(da) <= r.BytesOver(db)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// RateOf inverts BytesOver up to rounding.
func TestRateOfRoundTripProperty(t *testing.T) {
	f := func(rawRate uint32) bool {
		r := Rate(rawRate%400+1) * GigabitPerSec
		d := Millisecond
		n := r.BytesOver(d)
		got := RateOf(n, d)
		diff := float64(got-r) / float64(r)
		return diff < 0.001 && diff > -0.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
