// Package units defines the physical quantities used throughout the
// simulator: simulated time, link rates, and byte counts.
//
// Time is measured in integer picoseconds. At picosecond resolution the
// serialization time of a single byte is exact for every realistic link
// rate (1 byte at 400 Gb/s is 20 ps), so repeated rate conversions never
// accumulate rounding drift. An int64 of picoseconds covers about 106
// days of simulated time, far beyond any experiment in this repository.
package units

import (
	"fmt"
	"math/bits"
)

// Time is a simulated instant or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0:
		return fmt.Sprintf("%ds", t/Second)
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond || t <= -Nanosecond:
		return fmt.Sprintf("%.3fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// ByteCount is an amount of data in bytes.
type ByteCount int64

// Common sizes.
const (
	Byte     ByteCount = 1
	Kilobyte           = 1000 * Byte
	Megabyte           = 1000 * Kilobyte
	Gigabyte           = 1000 * Megabyte
	KiB                = 1024 * Byte
	MiB                = 1024 * KiB
)

// Bits returns the number of bits in b.
func (b ByteCount) Bits() int64 { return int64(b) * 8 }

// String formats the byte count with an adaptive unit.
func (b ByteCount) String() string {
	switch {
	case b >= Gigabyte:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(Gigabyte))
	case b >= Megabyte:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(Megabyte))
	case b >= Kilobyte:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(Kilobyte))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Rate is a data rate in bits per second.
type Rate int64

// Common rates.
const (
	BitPerSecond  Rate = 1
	KilobitPerSec      = 1000 * BitPerSecond
	MegabitPerSec      = 1000 * KilobitPerSec
	GigabitPerSec      = 1000 * MegabitPerSec
)

// Gbps returns the rate as floating-point gigabits per second.
func (r Rate) Gbps() float64 { return float64(r) / float64(GigabitPerSec) }

// String formats the rate with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= GigabitPerSec:
		return fmt.Sprintf("%.2fGbps", float64(r)/float64(GigabitPerSec))
	case r >= MegabitPerSec:
		return fmt.Sprintf("%.2fMbps", float64(r)/float64(MegabitPerSec))
	case r >= KilobitPerSec:
		return fmt.Sprintf("%.2fKbps", float64(r)/float64(KilobitPerSec))
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// mulDiv computes a*b/c with a 128-bit intermediate, panicking on overflow
// of the final result or division by zero. All arguments must be
// non-negative.
func mulDiv(a, b, c int64) int64 {
	if c <= 0 {
		panic("units: division by non-positive value")
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi >= uint64(c) {
		panic("units: mulDiv overflow")
	}
	q, _ := bits.Div64(hi, lo, uint64(c))
	return int64(q)
}

// mulDivCeil is mulDiv rounding up.
func mulDivCeil(a, b, c int64) int64 {
	if c <= 0 {
		panic("units: division by non-positive value")
	}
	hi, lo := bits.Mul64(uint64(a), uint64(b))
	if hi >= uint64(c) {
		panic("units: mulDiv overflow")
	}
	q, rem := bits.Div64(hi, lo, uint64(c))
	if rem != 0 {
		q++
	}
	return int64(q)
}

// TxTime returns the serialization time of n bytes at rate r, rounded up
// to the next picosecond (transmission cannot finish early). It panics if
// r is not positive or n is negative.
func (r Rate) TxTime(n ByteCount) Time {
	if n < 0 {
		panic("units: negative byte count")
	}
	return Time(mulDivCeil(n.Bits(), int64(Second), int64(r)))
}

// BytesOver returns the number of whole bytes transmitted over duration d
// at rate r.
func (r Rate) BytesOver(d Time) ByteCount {
	if d < 0 {
		panic("units: negative duration")
	}
	return ByteCount(mulDiv(int64(d), int64(r), int64(Second)) / 8)
}

// RateOf returns the average rate that transfers n bytes in duration d.
// A zero duration yields zero to keep callers branch-free when a
// measurement interval is degenerate.
func RateOf(n ByteCount, d Time) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(mulDiv(n.Bits(), int64(Second), int64(d)))
}

// BDP returns the bandwidth-delay product of rate r over duration d,
// in bytes (rounded down).
func BDP(r Rate, d Time) ByteCount { return r.BytesOver(d) }

// MinTime returns the smaller of two times.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxTime returns the larger of two times.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinBytes returns the smaller of two byte counts.
func MinBytes(a, b ByteCount) ByteCount {
	if a < b {
		return a
	}
	return b
}

// MaxBytes returns the larger of two byte counts.
func MaxBytes(a, b ByteCount) ByteCount {
	if a > b {
		return a
	}
	return b
}
