// Package analytic implements the paper's fluid-model results: Dynamic
// Thresholds' steady state (Eq. 6) and burst tolerance (Eq. 8), ABM's
// isolation and drain-time bounds (Theorems 1-3), and ABM's burst
// tolerance (Eqs. 10-11). These generate Figures 4 and 5 and serve as
// ground truth for property tests against the packet simulator.
package analytic

import (
	"fmt"

	"abm/internal/units"
)

// PriorityLoad describes one priority's steady-state congestion: its
// configured alpha and how many of its queues are congested.
type PriorityLoad struct {
	Alpha     float64
	Congested int
}

// DTSteadyThreshold returns DT's per-queue threshold in steady state
// (Eq. 6): T = alpha_p * B / (1 + Σ n_p·alpha_p).
func DTSteadyThreshold(b units.ByteCount, alphaP float64, prios []PriorityLoad) units.ByteCount {
	denom := 1.0
	for _, p := range prios {
		denom += float64(p.Congested) * p.Alpha
	}
	return units.ByteCount(alphaP * float64(b) / denom)
}

// DTSteadyOccupancy returns the per-priority totals and the overall
// buffer occupancy under DT in steady state, assuming every congested
// queue sits at its threshold.
func DTSteadyOccupancy(b units.ByteCount, prios []PriorityLoad) (perPrio []units.ByteCount, total units.ByteCount) {
	perPrio = make([]units.ByteCount, len(prios))
	for i, p := range prios {
		thr := DTSteadyThreshold(b, p.Alpha, prios)
		perPrio[i] = units.ByteCount(p.Congested) * thr
		total += perPrio[i]
	}
	return perPrio, total
}

// ABMSteadyThreshold returns ABM's per-queue threshold in steady state
// (Eq. 17 with omega = alpha/n * mu/b): the congested-queue count and
// drain share are folded into omega before the DT-like fixed point.
func ABMSteadyThreshold(b units.ByteCount, omegaQueue float64, sumOmega float64) units.ByteCount {
	return units.ByteCount(omegaQueue * float64(b) / (1 + sumOmega))
}

// ABMMinGuarantee is Theorem 1: the buffer available to priority p is at
// least B·alpha_p / (1 + Σ alpha).
func ABMMinGuarantee(b units.ByteCount, alphaP, sumAlphas float64) units.ByteCount {
	return units.ByteCount(float64(b) * alphaP / (1 + sumAlphas))
}

// ABMMaxAllocation is Theorem 2: the buffer used by priority p is at
// most B·alpha_p / (1 + alpha_p).
func ABMMaxAllocation(b units.ByteCount, alphaP float64) units.ByteCount {
	return units.ByteCount(float64(b) * alphaP / (1 + alphaP))
}

// ABMDrainTimeBound is Theorem 3: any queue of priority p drains within
// B·alpha_p / ((1+alpha_p)·bandwidth).
func ABMDrainTimeBound(b units.ByteCount, alphaP float64, bandwidth units.Rate) units.Time {
	bound := float64(b.Bits()) * alphaP / ((1 + alphaP) * float64(bandwidth))
	return units.Time(bound * float64(units.Second))
}

// BurstScenario is the setting of Figure 5: a steady-state buffer with
// background congestion, then a burst arriving at one fresh queue.
type BurstScenario struct {
	B        units.ByteCount // shared buffer
	PortRate units.Rate      // b, uniform port bandwidth

	// Alpha is the configured alpha for every priority (the paper uses
	// 0.5 across queues in §4.1).
	Alpha float64
	// AlphaBurst is the alpha applied to the bursting queue; ABM's
	// unscheduled prioritization sets it to 64 (§3.3), DT has no such
	// notion and uses Alpha.
	AlphaBurst float64

	// CongestedPorts is the number of ports with pre-existing congestion
	// (one congested background queue each) — Figure 5a/5c's axis.
	CongestedPorts int
	// QueuesPerPort is the number of congested queues sharing the
	// burst's port (including the burst queue) — Figure 5b/5d's axis.
	QueuesPerPort int

	// BurstRate is the burst arrival rate r.
	BurstRate units.Rate
}

func (s BurstScenario) validate() {
	if s.B <= 0 || s.PortRate <= 0 || s.BurstRate <= 0 {
		panic(fmt.Sprintf("analytic: invalid scenario %+v", s))
	}
	if s.CongestedPorts < 0 || s.QueuesPerPort < 1 {
		panic(fmt.Sprintf("analytic: invalid congestion in %+v", s))
	}
}

// muBurst returns the drain rate available to the bursting queue: the
// port bandwidth divided by the queues sharing the port.
func (s BurstScenario) muBurst() float64 {
	return float64(s.PortRate) / float64(s.QueuesPerPort)
}

// aggregateDrain returns mu, the buffer's aggregate drain rate from the
// pre-existing congested ports.
func (s BurstScenario) aggregateDrain() float64 {
	return float64(s.CongestedPorts) * float64(s.PortRate)
}

// DTBurstTolerance evaluates DT's burst tolerance. When the burst grows
// slower than the aggregate drain, the burst simply occupies its
// steady-state allocation (Eq. 6); otherwise the transient analysis of
// §2.3 applies (Eq. 8).
func (s BurstScenario) DTBurstTolerance() units.ByteCount {
	s.validate()
	r := float64(s.BurstRate)
	muIP := s.muBurst()
	mu := s.aggregateDrain()

	// All pre-existing congested queues plus the burst's port-mates share
	// the buffer: n = ports + extra queues on the burst port.
	n := s.CongestedPorts + (s.QueuesPerPort - 1)
	sumNAlpha := float64(n) * s.Alpha

	steady := s.Alpha * float64(s.B) / (1 + sumNAlpha + s.Alpha)
	growth := r - muIP
	if growth <= 0 {
		// The burst never backs up: tolerance is effectively the whole
		// remaining buffer; report the steady allocation as the paper does.
		return units.ByteCount(steady)
	}
	if growth <= mu {
		// Case 1: thresholds fall slower than queues drain; the burst
		// reaches its steady-state allocation without transient drops.
		return units.ByteCount(steady)
	}
	// Case 2 (Eq. 8).
	denom := 1 + s.Alpha*(growth-mu)/growth
	bt := s.Alpha * float64(s.B) / ((1 + sumNAlpha + s.Alpha) * denom)
	return units.ByteCount(bt)
}

// ABMBurstTolerance evaluates ABM's burst tolerance. Two mechanisms
// stack:
//
//  1. The transient analysis (Eqs. 10-11) with the configured alpha:
//     the burst's own priority sees n_p = 1, so the tolerance is
//     independent of other-priority congestion.
//  2. The §3.3 unscheduled prioritization: Theorem 2 bounds every
//     background priority to B·alpha/(1+alpha), so at least the
//     complement is guaranteed free, and a burst admitted with
//     AlphaBurst (64) can claim an AlphaBurst/(1+AlphaBurst) share of
//     that guaranteed headroom regardless of the buffer state.
//
// The result is capped by Theorem 2 for the burst priority — this is
// what makes ABM's tolerance *predictable*: every term depends only on
// configured alphas, not on how many ports or queues happen to be
// congested.
func (s BurstScenario) ABMBurstTolerance() units.ByteCount {
	s.validate()
	alphaB := s.AlphaBurst
	if alphaB <= 0 {
		alphaB = s.Alpha
	}
	r := float64(s.BurstRate)
	muIP := s.muBurst()
	mu := s.aggregateDrain()
	gamma := muIP / float64(s.PortRate) // mu/b of the bursting queue
	sumAlpha := 2 * s.Alpha             // background priority + burst priority

	growth := r - muIP
	var bt float64
	if growth <= 0 || growth <= mu {
		// Case 1 (Eq. 10): steady-state allocation, n_p = 1.
		bt = s.Alpha * float64(s.B) * gamma / (1 + sumAlpha)
	} else {
		// Case 2 (Eq. 11).
		denom := (1 + sumAlpha) * (1 + s.Alpha*gamma*(growth-mu)/growth)
		bt = s.Alpha * float64(s.B) * gamma / denom
	}

	// §3.3: the guaranteed-free headroom the unscheduled burst can claim.
	guaranteedFree := float64(s.B) - float64(ABMMaxAllocation(s.B, s.Alpha))
	if opt := guaranteedFree * alphaB / (1 + alphaB); opt > bt {
		bt = opt
	}

	if cap := float64(ABMMaxAllocation(s.B, alphaB)); bt > cap {
		bt = cap
	}
	if bt < 0 {
		bt = 0
	}
	return units.ByteCount(bt)
}
