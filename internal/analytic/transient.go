package analytic

import (
	"fmt"

	"abm/internal/units"
)

// TransientScenario is the Appendix A.4 setting: an ABM-managed buffer
// in steady state when, at t=0, a set of new queues starts receiving
// traffic at rate r each. Theorems 4 and 5 bound the time t1 until a
// new queue experiences its first drop.
//
// Queues are described by their omega values (Definition 1): OldOmegas
// are the ω of the pre-existing congested queues (the set S_old = G_ne,
// assuming constant drain rates so G_e is empty, as the appendix
// requires for guarantees); NewOmegas are the ω of the queues the
// change introduces (S_new).
type TransientScenario struct {
	B units.ByteCount

	OldOmegas []float64
	NewOmegas []float64

	// ArrivalRate is r, the offered rate at each new queue; Drain is the
	// drain rate gamma*b of each new queue. Both in bits/s.
	ArrivalRate units.Rate
	Drain       units.Rate

	// OldDrain is the aggregate drain rate of the pre-existing congested
	// queues, used by the Case-2 bound.
	OldDrain units.Rate
}

func (s TransientScenario) validate() {
	if s.B <= 0 || s.ArrivalRate <= 0 || s.Drain < 0 || len(s.NewOmegas) == 0 {
		panic(fmt.Sprintf("analytic: invalid transient scenario %+v", s))
	}
}

func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

// CaseBoundary returns the arrival rate separating Case 1 (existing
// queues track their falling thresholds, Eq. 28) from Case 2 (they
// cannot, Eq. 38), for the scenario's drain rates.
func (s TransientScenario) CaseBoundary() units.Rate {
	s.validate()
	sumOld := sum(s.OldOmegas)
	nNew := float64(len(s.NewOmegas))
	// Eq. 28 with gamma-sums replaced by aggregate drain rates:
	// r <= (drain of affected+new)/|S_new| + oldDrain*(1+sumOld)/(sumOld*|S_new|).
	term1 := float64(s.Drain) * nNew / nNew // each new queue drains at Drain
	if sumOld == 0 {
		return units.Rate(term1)
	}
	term2 := float64(s.OldDrain) * (1 + sumOld) / (sumOld * nNew)
	return units.Rate(term1 + term2)
}

// ZeroDropTime returns t1, the time during which a new queue is
// guaranteed zero transient drops, choosing Theorem 4 (Case 1, Eq. 34)
// or Theorem 5 (Case 2, Eq. 39/40) by the arrival rate.
func (s TransientScenario) ZeroDropTime() units.Time {
	s.validate()
	growth := float64(s.ArrivalRate - s.Drain)
	if growth <= 0 {
		return units.Time(1<<62 - 1) // never backs up
	}
	omegaNew := s.NewOmegas[0]
	sumOld := sum(s.OldOmegas)
	bBits := float64(s.B.Bits())

	if s.ArrivalRate <= s.CaseBoundary() {
		// Theorem 4, Eq. 34: t1 = omega*B / ((r-γ)·(1 + Σ_old ω + ω·|S_new|)).
		denom := growth * (1 + sumOld + omegaNew*float64(len(s.NewOmegas)))
		return secondsToTime(omegaNew * bBits / denom)
	}
	// Theorem 5, Eq. 39: t1 = ω·B / (X2·Y2) with X2 = 1 + Σ_old ω and
	// Y2 = (r−γ) + ω·(Σ_{S_old}(−γ) + Σ_{S_new}(r−γ))
	//    = (r−γ) + ω·((r−γ)·|S_new| − oldDrain).
	x2 := 1 + sumOld
	y2 := growth + omegaNew*(growth*float64(len(s.NewOmegas))-float64(s.OldDrain))
	if y2 <= 0 {
		// The aggregate drain outruns the burst: thresholds rise, the new
		// queue never hits its threshold.
		return units.Time(1<<62 - 1)
	}
	return secondsToTime(omegaNew * bBits / (x2 * y2))
}

// BurstTolerance returns r·t1, Appendix A.8's burst-tolerance
// definition (Eq. 42), capped at the buffer size.
func (s TransientScenario) BurstTolerance() units.ByteCount {
	t1 := s.ZeroDropTime()
	if t1 >= units.Time(1<<62-1) {
		return s.B
	}
	bt := units.ByteCount(float64(s.ArrivalRate) / 8 * t1.Seconds())
	if bt > s.B {
		bt = s.B
	}
	return bt
}

func secondsToTime(sec float64) units.Time {
	if sec < 0 {
		return 0
	}
	t := sec * float64(units.Second)
	if t > float64(1<<62-1) {
		return units.Time(1<<62 - 1)
	}
	return units.Time(t)
}
