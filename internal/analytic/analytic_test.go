package analytic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"abm/internal/units"
)

const mb = units.Megabyte

func TestDTSteadyThreshold(t *testing.T) {
	// Single priority, alpha=1, one congested queue: T = B/2.
	got := DTSteadyThreshold(1000, 1, []PriorityLoad{{Alpha: 1, Congested: 1}})
	if got != 500 {
		t.Fatalf("T = %v, want 500", got)
	}
	// Eq. 6 with alpha=0.5 and 4 congested queues: T = 0.5B/(1+2) = B/6.
	got = DTSteadyThreshold(600, 0.5, []PriorityLoad{{Alpha: 0.5, Congested: 4}})
	if got != 100 {
		t.Fatalf("T = %v, want 100", got)
	}
}

func TestDTThresholdVanishesWithCongestion(t *testing.T) {
	// The §2.3 result: as n grows, the threshold tends to zero.
	prev := units.ByteCount(1 << 40)
	for n := 1; n <= 128; n *= 2 {
		got := DTSteadyThreshold(mb, 0.5, []PriorityLoad{{Alpha: 0.5, Congested: n}})
		if got >= prev {
			t.Fatalf("threshold did not shrink at n=%d: %v >= %v", n, got, prev)
		}
		prev = got
	}
	if prev > 10*units.Kilobyte {
		t.Fatalf("threshold at n=128 still %v", prev)
	}
}

func TestDTPriorityInversion(t *testing.T) {
	// Figure 4 bottom: a high-alpha priority is starved as low-priority
	// congestion grows, despite its larger alpha.
	alloc := func(nLow int) units.ByteCount {
		per, _ := DTSteadyOccupancy(mb, []PriorityLoad{
			{Alpha: 8, Congested: 1},    // loss-sensitive
			{Alpha: 1, Congested: nLow}, // best effort
		})
		return per[0]
	}
	if alloc(20) >= alloc(1)/2 {
		t.Fatalf("high-priority allocation should collapse: %v -> %v", alloc(1), alloc(20))
	}
}

func TestDTOccupancyApproachesB(t *testing.T) {
	// Figure 4 top: occupancy -> 100% as queues multiply.
	_, total := DTSteadyOccupancy(mb, []PriorityLoad{{Alpha: 0.5, Congested: 20}})
	if frac := float64(total) / float64(mb); frac < 0.85 {
		t.Fatalf("occupied fraction = %.2f, want ~0.91", frac)
	}
	_, small := DTSteadyOccupancy(mb, []PriorityLoad{{Alpha: 0.5, Congested: 1}})
	if frac := float64(small) / float64(mb); frac > 0.4 {
		t.Fatalf("single queue occupancy = %.2f, want 1/3", frac)
	}
}

func TestABMBounds(t *testing.T) {
	b := units.ByteCount(1000)
	// Theorem 1 with two priorities alpha=0.5: min = 1000*0.5/2 = 250.
	if got := ABMMinGuarantee(b, 0.5, 1.0); got != 250 {
		t.Fatalf("min guarantee = %v, want 250", got)
	}
	// Theorem 2: max = 1000*0.5/1.5 = 333.
	if got := ABMMaxAllocation(b, 0.5); got != 333 {
		t.Fatalf("max allocation = %v, want 333", got)
	}
}

func TestABMDrainTimeBound(t *testing.T) {
	// B = 1.25MB, alpha = 1, b = 10Gb/s: bound = B/2 / b = 0.5ms.
	got := ABMDrainTimeBound(1_250_000, 1, 10*units.GigabitPerSec)
	if got != 500*units.Microsecond {
		t.Fatalf("drain bound = %v, want 500us", got)
	}
}

// Property: Theorem bounds are consistent — min guarantee <= max
// allocation, and both within [0, B].
func TestBoundsConsistencyProperty(t *testing.T) {
	f := func(rawB uint32, a1, a2 uint8) bool {
		b := units.ByteCount(rawB%10_000_000) + 1
		alpha := float64(a1%64)/8 + 0.125
		others := float64(a2%64) / 8
		minG := ABMMinGuarantee(b, alpha, alpha+others)
		maxA := ABMMaxAllocation(b, alpha)
		return minG >= 0 && maxA <= b && minG <= maxA
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func scenario(ports, queues int, r units.Rate) BurstScenario {
	return BurstScenario{
		B:              5 * mb,
		PortRate:       10 * units.GigabitPerSec,
		Alpha:          0.5,
		AlphaBurst:     64,
		CongestedPorts: ports,
		QueuesPerPort:  queues,
		BurstRate:      r,
	}
}

func TestFig5aDTDecreasesWithPorts(t *testing.T) {
	r := 150 * units.GigabitPerSec
	prev := units.ByteCount(1 << 50)
	for ports := 2; ports <= 14; ports += 4 {
		bt := scenario(ports, 1, r).DTBurstTolerance()
		if bt >= prev {
			t.Fatalf("DT tolerance must fall with congested ports: %v at %d ports", bt, ports)
		}
		prev = bt
	}
}

func TestFig5bDTDecreasesWithQueues(t *testing.T) {
	r := 150 * units.GigabitPerSec
	prev := units.ByteCount(1 << 50)
	for queues := 2; queues <= 8; queues += 2 {
		bt := scenario(4, queues, r).DTBurstTolerance()
		if bt >= prev {
			t.Fatalf("DT tolerance must fall with queues per port: %v at %d", bt, queues)
		}
		prev = bt
	}
}

func TestFig5cABMStableAcrossPorts(t *testing.T) {
	r := 150 * units.GigabitPerSec
	base := scenario(2, 1, r).ABMBurstTolerance()
	for ports := 2; ports <= 14; ports += 4 {
		bt := scenario(ports, 1, r).ABMBurstTolerance()
		ratio := float64(bt) / float64(base)
		if ratio < 0.8 || ratio > 1.25 {
			t.Fatalf("ABM tolerance varies %.2fx across ports (bt=%v at %d)", ratio, bt, ports)
		}
	}
}

func TestFig5ABMBeatsDTUnderLoad(t *testing.T) {
	r := 180 * units.GigabitPerSec
	for _, ports := range []int{6, 10, 14} {
		s := scenario(ports, 4, r)
		dt, abm := s.DTBurstTolerance(), s.ABMBurstTolerance()
		if abm <= dt {
			t.Fatalf("ABM (%v) must exceed DT (%v) at %d ports", abm, dt, ports)
		}
	}
}

func TestABMToleranceRespectsTheorem2Cap(t *testing.T) {
	s := scenario(0, 1, 11*units.GigabitPerSec) // nearly idle buffer, slow burst
	bt := s.ABMBurstTolerance()
	cap := ABMMaxAllocation(s.B, s.AlphaBurst)
	if bt > cap {
		t.Fatalf("tolerance %v above Theorem 2 cap %v", bt, cap)
	}
}

// Property: burst tolerance is never negative and never exceeds the
// buffer for random scenarios, for both schemes.
func TestBurstToleranceBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := BurstScenario{
			B:              units.ByteCount(rng.Intn(10_000_000) + 1000),
			PortRate:       units.Rate(rng.Intn(40)+1) * units.GigabitPerSec,
			Alpha:          float64(rng.Intn(16)+1) / 8,
			AlphaBurst:     float64(rng.Intn(128) + 1),
			CongestedPorts: rng.Intn(16),
			QueuesPerPort:  rng.Intn(8) + 1,
			BurstRate:      units.Rate(rng.Intn(300)+1) * units.GigabitPerSec,
		}
		dt, abm := s.DTBurstTolerance(), s.ABMBurstTolerance()
		return dt >= 0 && abm >= 0 && dt <= s.B && abm <= s.B
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestScenarioValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BurstScenario{}.DTBurstTolerance()
}
