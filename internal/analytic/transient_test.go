package analytic

import (
	"testing"
	"testing/quick"

	"abm/internal/units"
)

func transientScenario(r units.Rate, oldQueues int) TransientScenario {
	olds := make([]float64, oldQueues)
	for i := range olds {
		olds[i] = 0.5 // omega = alpha for saturated single-queue ports
	}
	return TransientScenario{
		B:           5 * units.Megabyte,
		OldOmegas:   olds,
		NewOmegas:   []float64{0.5},
		ArrivalRate: r,
		Drain:       10 * units.GigabitPerSec,
		OldDrain:    units.Rate(oldQueues) * 10 * units.GigabitPerSec,
	}
}

func TestZeroDropTimeInfiniteBelowDrain(t *testing.T) {
	s := transientScenario(5*units.GigabitPerSec, 4)
	if s.ZeroDropTime() < units.Time(1<<61) {
		t.Fatal("a burst below the drain rate never drops")
	}
	if s.BurstTolerance() != s.B {
		t.Fatal("tolerance should be the whole buffer")
	}
}

func TestZeroDropTimeDecreasesWithRate(t *testing.T) {
	slow := transientScenario(20*units.GigabitPerSec, 4).ZeroDropTime()
	fast := transientScenario(200*units.GigabitPerSec, 4).ZeroDropTime()
	if fast >= slow {
		t.Fatalf("t1 must shrink with arrival rate: %v vs %v", slow, fast)
	}
}

func TestCaseBoundarySeparatesRegimes(t *testing.T) {
	s := transientScenario(20*units.GigabitPerSec, 4)
	b := s.CaseBoundary()
	if b <= s.Drain {
		t.Fatalf("case boundary %v must exceed the drain rate", b)
	}
	// Just below the boundary: Theorem 4 applies; just above: Theorem 5.
	s.ArrivalRate = b - units.GigabitPerSec
	t1Below := s.ZeroDropTime()
	s.ArrivalRate = b + units.GigabitPerSec
	t1Above := s.ZeroDropTime()
	if t1Below <= 0 || t1Above <= 0 {
		t.Fatalf("degenerate t1 around the boundary: %v / %v", t1Below, t1Above)
	}
}

// Theorem 4's promise: t1 is independent of how much *other-priority*
// congestion exists when the drain of the new queue is fixed — adding
// old queues only enters through their omega sum, which is bounded by
// alpha (Lemma 1), not through their count.
func TestLemma1BoundsOldOmegaSum(t *testing.T) {
	// With many old queues of one priority, each queue's omega shrinks
	// (1/n), keeping the sum at alpha: model that directly.
	manyOld := TransientScenario{
		B:           5 * units.Megabyte,
		OldOmegas:   []float64{0.5}, // Lemma 1: Σ omega <= alpha regardless of count
		NewOmegas:   []float64{0.5},
		ArrivalRate: 150 * units.GigabitPerSec,
		Drain:       10 * units.GigabitPerSec,
		OldDrain:    120 * units.GigabitPerSec,
	}
	t1 := manyOld.ZeroDropTime()
	if t1 <= 0 {
		t.Fatal("t1 must be positive")
	}
	// Eq. 40's observation: more old-port drain only *helps* (raises t1).
	lessDrain := manyOld
	lessDrain.OldDrain = 20 * units.GigabitPerSec
	if lessDrain.ZeroDropTime() >= t1 {
		t.Fatalf("higher aggregate drain must extend t1: %v vs %v",
			t1, lessDrain.ZeroDropTime())
	}
}

// Property: burst tolerance is within (0, B] and monotone decreasing in
// the arrival rate for any valid scenario.
func TestTransientToleranceProperty(t *testing.T) {
	f := func(rawR uint8, rawOld uint8) bool {
		r := units.Rate(rawR%30+11) * 10 * units.GigabitPerSec
		old := int(rawOld % 12)
		s := transientScenario(r, old)
		bt := s.BurstTolerance()
		if bt <= 0 || bt > s.B {
			return false
		}
		s2 := transientScenario(r+50*units.GigabitPerSec, old)
		return s2.BurstTolerance() <= bt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestTransientValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TransientScenario{}.ZeroDropTime()
}
