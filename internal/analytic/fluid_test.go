package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"abm/internal/units"
)

const tenG = 10 * units.GigabitPerSec

func saturatedDTQueue(alpha float64) *FluidQueue {
	return &FluidQueue{Omega: alpha, Arrival: 2 * tenG, Drain: tenG}
}

// The fluid model's DT fixed point must match Eq. 6.
func TestFluidDTFixedPointMatchesEq6(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		queues := make([]*FluidQueue, n)
		for i := range queues {
			queues[i] = saturatedDTQueue(0.5)
		}
		m := NewFluidModel(mb, queues...)
		got, err := m.SteadyState(100*units.Millisecond, units.Microsecond, 1.0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := float64(n) * float64(DTSteadyThreshold(mb, 0.5, []PriorityLoad{{Alpha: 0.5, Congested: n}}))
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("n=%d: fluid occupancy %.0f, Eq. 6 predicts %.0f", n, got, want)
		}
	}
}

// Per-queue thresholds settle at the Eq. 6 value.
func TestFluidPerQueueThreshold(t *testing.T) {
	q1, q2 := saturatedDTQueue(1), saturatedDTQueue(1)
	m := NewFluidModel(900_000, q1, q2)
	if _, err := m.SteadyState(100*units.Millisecond, units.Microsecond, 1.0); err != nil {
		t.Fatal(err)
	}
	want := float64(DTSteadyThreshold(900_000, 1, []PriorityLoad{{Alpha: 1, Congested: 2}}))
	if math.Abs(q1.Len-want)/want > 0.02 {
		t.Errorf("queue length %.0f, want %.0f", q1.Len, want)
	}
	if math.Abs(q1.Len-q2.Len) > 1 {
		t.Errorf("symmetric queues diverged: %.0f vs %.0f", q1.Len, q2.Len)
	}
}

// An underloaded queue drains to zero and drops nothing.
func TestFluidUnderloadedQueueEmpty(t *testing.T) {
	q := &FluidQueue{Omega: 0.5, Arrival: tenG / 2, Drain: tenG, Len: 50_000}
	m := NewFluidModel(mb, q)
	m.Run(10*units.Millisecond, units.Microsecond)
	if q.Len > 1 {
		t.Fatalf("underloaded queue still holds %.0f bytes", q.Len)
	}
	if q.DroppedBytes > 0 {
		t.Fatalf("underloaded queue dropped %.0f bytes", q.DroppedBytes)
	}
}

// A saturated queue drops the excess offered load in steady state.
func TestFluidOverloadDrops(t *testing.T) {
	q := saturatedDTQueue(0.5)
	m := NewFluidModel(mb, q)
	m.Run(20*units.Millisecond, units.Microsecond)
	if q.DroppedBytes <= 0 {
		t.Fatal("overloaded queue dropped nothing")
	}
	// Excess = (arrival - drain) * time = 10Gb/s * 20ms = 25MB, minus the
	// fluid stored in the queue.
	excess := 25e6 - q.Len
	if math.Abs(q.DroppedBytes-excess)/excess > 0.05 {
		t.Fatalf("dropped %.0f bytes, want ~%.0f", q.DroppedBytes, excess)
	}
}

// ABM queues (omega scaled by 1/n and drain share) stay within the
// Theorem 2 bound while DT queues exceed it.
func TestFluidABMRespectsTheorem2(t *testing.T) {
	const n = 8
	// DT: omega = alpha.
	dtQueues := make([]*FluidQueue, n)
	for i := range dtQueues {
		dtQueues[i] = saturatedDTQueue(0.5)
	}
	dt := NewFluidModel(mb, dtQueues...)
	dtOcc, err := dt.SteadyState(100*units.Millisecond, units.Microsecond, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// ABM: omega = alpha/n (full drain share).
	abmQueues := make([]*FluidQueue, n)
	for i := range abmQueues {
		abmQueues[i] = &FluidQueue{Omega: 0.5 / n, Arrival: 2 * tenG, Drain: tenG}
	}
	abm := NewFluidModel(mb, abmQueues...)
	abmOcc, err := abm.SteadyState(100*units.Millisecond, units.Microsecond, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(ABMMaxAllocation(mb, 0.5))
	if abmOcc > bound*1.01 {
		t.Fatalf("ABM fluid occupancy %.0f above Theorem 2 bound %.0f", abmOcc, bound)
	}
	if dtOcc <= bound {
		t.Fatalf("DT occupancy %.0f should exceed the ABM bound %.0f at n=%d", dtOcc, bound, n)
	}
}

// Property: occupancy never exceeds the buffer, for random queue mixes.
func TestFluidConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		queues := make([]*FluidQueue, int((seed%5+5)%5)+1)
		for i := range queues {
			queues[i] = &FluidQueue{
				Omega:   float64(i%4+1) / 4,
				Arrival: units.Rate(i+1) * tenG,
				Drain:   tenG,
			}
		}
		m := NewFluidModel(mb, queues...)
		for i := 0; i < 1000; i++ {
			m.Step(10 * units.Microsecond)
			if m.Occupancy() > float64(mb)*1.001 {
				return false
			}
			for _, q := range queues {
				if q.Len < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the adaptive Heun integrator converges to the Eq. 6 fixed
// point regardless of the caller's stride — epoch-sized steps (the
// hybrid engine's regime, 100x the old Euler step) included. This pins
// that any figure or consumer of the fluid model sees the same steady
// state as before the fixed-step Euler upgrade, within tolerance.
func TestFluidAdaptiveStepConvergence(t *testing.T) {
	const n = 4
	want := float64(n) * float64(DTSteadyThreshold(mb, 0.5, []PriorityLoad{{Alpha: 0.5, Congested: n}}))
	for _, step := range []units.Time{
		units.Microsecond, 10 * units.Microsecond,
		100 * units.Microsecond, units.Millisecond,
	} {
		queues := make([]*FluidQueue, n)
		for i := range queues {
			queues[i] = saturatedDTQueue(0.5)
		}
		m := NewFluidModel(mb, queues...)
		m.Run(50*units.Millisecond, step)
		if got := m.Occupancy(); math.Abs(got-want)/want > 0.02 {
			t.Errorf("step %v: occupancy %.0f, Eq. 6 predicts %.0f", step, got, want)
		}
	}
}

// Property: coarse and fine strides agree on occupancy and drops for
// random queue mixes — the error controller, not the caller's step
// size, sets the integration accuracy.
func TestFluidStepSizeInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		mk := func() *FluidModel {
			s := uint64(seed)
			queues := make([]*FluidQueue, int(s%4)+1)
			for i := range queues {
				s = s*6364136223846793005 + 1442695040888963407
				queues[i] = &FluidQueue{
					Omega:   float64(s%7+1) / 4,
					Arrival: units.Rate(s%3+1) * tenG,
					Drain:   tenG,
				}
			}
			return NewFluidModel(mb, queues...)
		}
		fine, coarse := mk(), mk()
		fine.Run(5*units.Millisecond, units.Microsecond)
		coarse.Run(5*units.Millisecond, 250*units.Microsecond)
		if math.Abs(fine.Occupancy()-coarse.Occupancy()) > 0.02*float64(mb) {
			return false
		}
		for i := range fine.Queues {
			df, dc := fine.Queues[i].DroppedBytes, coarse.Queues[i].DroppedBytes
			if math.Abs(df-dc) > 0.02*float64(mb)+0.05*df {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFluidValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero buffer")
		}
	}()
	NewFluidModel(0)
}

func TestFluidRunStepValidation(t *testing.T) {
	m := NewFluidModel(mb)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero step")
		}
	}()
	m.Run(units.Millisecond, 0)
}
