package analytic

import (
	"fmt"

	"abm/internal/units"
)

// FluidQueue is one queue in the numerical fluid model of Appendix A:
// an arrival rate, a drain rate, and the omega multiplier that turns
// the remaining buffer into its threshold (omega = alpha for DT,
// omega = alpha/n * mu/b for ABM, Definition 1).
type FluidQueue struct {
	Omega   float64
	Arrival units.Rate // offered load
	Drain   units.Rate // service rate gamma * b

	// State (bytes), advanced by FluidModel.Step.
	Len       float64
	Threshold float64

	// DroppedBytes accumulates fluid discarded above the threshold.
	DroppedBytes float64
}

// FluidModel numerically integrates the coupled threshold/queue ODEs of
// Appendix A (Eqs. 20-21): every queue's threshold is
// omega * (B - Q(t)), queues grow at min(arrival, threshold headroom)
// and drain at their service rate. Euler integration with a fixed step;
// the model is deterministic and packet-free, serving as ground truth
// between the closed forms and the packet simulator.
type FluidModel struct {
	B      units.ByteCount
	Queues []*FluidQueue

	now units.Time
}

// NewFluidModel builds a model over the given buffer.
func NewFluidModel(b units.ByteCount, queues ...*FluidQueue) *FluidModel {
	if b <= 0 {
		panic("analytic: fluid model needs a buffer")
	}
	return &FluidModel{B: b, Queues: queues}
}

// Now returns the model clock.
func (m *FluidModel) Now() units.Time { return m.now }

// Occupancy returns the total fluid in the buffer.
func (m *FluidModel) Occupancy() float64 {
	var q float64
	for _, fq := range m.Queues {
		q += fq.Len
	}
	return q
}

// Step advances the model by dt.
func (m *FluidModel) Step(dt units.Time) {
	seconds := dt.Seconds()
	occupancy := m.Occupancy()
	remaining := float64(m.B) - occupancy
	if remaining < 0 {
		remaining = 0
	}
	for _, fq := range m.Queues {
		fq.Threshold = fq.Omega * remaining
		in := float64(fq.Arrival) / 8 * seconds
		out := float64(fq.Drain) / 8 * seconds
		if out > fq.Len+in {
			out = fq.Len + in
		}
		next := fq.Len + in - out
		if next > fq.Threshold {
			// Fluid above the threshold is discarded on arrival, but the
			// queue itself is never truncated: admission control gates
			// growth, it does not evict.
			admitted := fq.Threshold
			if fq.Len-out > admitted {
				admitted = fq.Len - out // already above: only drain shrinks it
			}
			fq.DroppedBytes += next - admitted
			next = admitted
		}
		if next < 0 {
			next = 0
		}
		fq.Len = next
	}
	m.now += dt
}

// Run advances the model until the given time with the given step.
func (m *FluidModel) Run(until, step units.Time) {
	if step <= 0 {
		panic("analytic: fluid step must be positive")
	}
	for m.now < until {
		m.Step(step)
	}
}

// SteadyState runs the model until the mean occupancy over consecutive
// 100-step windows changes by less than tol bytes (or the deadline
// passes) and returns that mean. Windowed means absorb the limit cycle
// the explicit Euler step produces around the fixed point.
func (m *FluidModel) SteadyState(deadline, step units.Time, tol float64) (float64, error) {
	const window = 100
	prev := m.Occupancy()
	first := true
	for m.now < deadline {
		var sum float64
		for i := 0; i < window; i++ {
			m.Step(step)
			sum += m.Occupancy()
		}
		cur := sum / window
		if !first {
			if diff := cur - prev; diff < tol && diff > -tol {
				return cur, nil
			}
		}
		first = false
		prev = cur
	}
	return prev, fmt.Errorf("analytic: no steady state before %v", deadline)
}
