package analytic

import (
	"fmt"

	"abm/internal/units"
)

// FluidQueue is one queue in the numerical fluid model of Appendix A:
// an arrival rate, a drain rate, and the omega multiplier that turns
// the remaining buffer into its threshold (omega = alpha for DT,
// omega = alpha/n * mu/b for ABM, Definition 1).
type FluidQueue struct {
	Omega   float64
	Arrival units.Rate // offered load
	Drain   units.Rate // service rate gamma * b

	// State (bytes), advanced by FluidModel.Step.
	Len       float64
	Threshold float64

	// DroppedBytes accumulates fluid discarded above the threshold.
	DroppedBytes float64
}

// FluidModel numerically integrates the coupled threshold/queue ODEs of
// Appendix A (Eqs. 20-21): every queue's threshold is
// omega * (B - Q(t)), queues grow at min(arrival, threshold headroom)
// and drain at their service rate. Step integrates with an adaptive
// Heun (explicit trapezoidal) scheme — the Euler predictor and the
// trapezoidal corrector form an embedded first/second-order pair whose
// disagreement drives substep halving — so a caller may pass epoch-sized
// steps (the hybrid engine does) without losing the fixed point. The
// model is deterministic and packet-free, serving as ground truth
// between the closed forms and the packet simulator.
type FluidModel struct {
	B      units.ByteCount
	Queues []*FluidQueue

	// ErrTol is the per-substep occupancy error tolerance in bytes for
	// the adaptive integrator; zero selects 1e-4 * B, floored at 64
	// bytes (packet-scale errors are below the model's own fidelity).
	ErrTol float64

	now units.Time

	// Integrator scratch, sized to len(Queues) on first Step.
	y0, y1, y2, thr, d1, d2 []float64
}

// NewFluidModel builds a model over the given buffer.
func NewFluidModel(b units.ByteCount, queues ...*FluidQueue) *FluidModel {
	if b <= 0 {
		panic("analytic: fluid model needs a buffer")
	}
	return &FluidModel{B: b, Queues: queues}
}

// Now returns the model clock.
func (m *FluidModel) Now() units.Time { return m.now }

// Occupancy returns the total fluid in the buffer.
func (m *FluidModel) Occupancy() float64 {
	var q float64
	for _, fq := range m.Queues {
		q += fq.Len
	}
	return q
}

// applyEuler applies one explicit-Euler update of the clamped Appendix A
// dynamics over sec seconds: thresholds from the occupancy at the start
// of the substep, fluid above a threshold discarded on arrival (admission
// control gates growth, it does not evict), queues never drained below
// empty. Reads lengths from src and writes next lengths to dst, per-queue
// dropped bytes to drops, and the start-of-substep thresholds to thrOut
// (which may be nil). Free of side effects on the model so a rejected
// substep costs nothing.
func (m *FluidModel) applyEuler(src, dst, drops, thrOut []float64, sec float64) {
	var occ float64
	for _, l := range src {
		occ += l
	}
	remaining := float64(m.B) - occ
	if remaining < 0 {
		remaining = 0
	}
	for i, fq := range m.Queues {
		thr := fq.Omega * remaining
		if thrOut != nil {
			thrOut[i] = thr
		}
		in := float64(fq.Arrival) / 8 * sec
		out := float64(fq.Drain) / 8 * sec
		l := src[i]
		if out > l+in {
			out = l + in
		}
		next := l + in - out
		var dropped float64
		if next > thr {
			admitted := thr
			if l-out > admitted {
				admitted = l - out // already above: only drain shrinks it
			}
			dropped = next - admitted
			next = admitted
		}
		if next < 0 {
			next = 0
		}
		dst[i] = next
		drops[i] = dropped
	}
}

func (m *FluidModel) ensureScratch() {
	if len(m.y0) == len(m.Queues) {
		return
	}
	n := len(m.Queues)
	m.y0 = make([]float64, n)
	m.y1 = make([]float64, n)
	m.y2 = make([]float64, n)
	m.thr = make([]float64, n)
	m.d1 = make([]float64, n)
	m.d2 = make([]float64, n)
}

// maxHalvings bounds adaptive substep refinement: substeps never shrink
// below dt/2^maxHalvings, so a Step call always terminates.
const maxHalvings = 20

// Step advances the model by dt using the adaptive Heun scheme: each
// substep runs an Euler predictor and a trapezoidal corrector (the
// average of the Euler increments at both endpoints); their disagreement
// is the local error estimate, halving the substep until it falls under
// ErrTol. Both stages apply the same clamped update rule, so thresholds,
// admission drops, and conservation (inflow = Δlen + outflow + drops)
// are exact per committed substep, and the clamped-at-threshold fixed
// point has zero estimated error — steady state integrates at full
// stride no matter how large dt is.
func (m *FluidModel) Step(dt units.Time) {
	if dt <= 0 {
		return
	}
	m.ensureScratch()
	tol := m.ErrTol
	if tol <= 0 {
		tol = 1e-4 * float64(m.B)
		if tol < 64 {
			tol = 64
		}
	}
	for i, fq := range m.Queues {
		m.y0[i] = fq.Len
	}
	total := dt.Seconds()
	elapsed := 0.0
	h := total
	minH := total / float64(int64(1)<<maxHalvings)
	for {
		rem := total - elapsed
		if rem <= total*1e-12 {
			break
		}
		if h > rem {
			h = rem
		}
		m.applyEuler(m.y0, m.y1, m.d1, m.thr, h) // predictor
		m.applyEuler(m.y1, m.y2, m.d2, nil, h)   // endpoint slope
		errMax := 0.0
		for i := range m.y2 {
			corr := 0.5 * (m.y0[i] + m.y2[i]) // y0 + avg of the two increments
			if e := corr - m.y1[i]; e > errMax {
				errMax = e
			} else if -e > errMax {
				errMax = -e
			}
			m.y2[i] = corr
		}
		if errMax > tol && h > minH {
			h /= 2
			continue
		}
		for i, fq := range m.Queues {
			fq.DroppedBytes += 0.5 * (m.d1[i] + m.d2[i])
			fq.Threshold = m.thr[i]
			fq.Len = m.y2[i]
			m.y0[i] = m.y2[i]
		}
		elapsed += h
		if errMax < tol/4 {
			h *= 2
		}
	}
	m.now += dt
}

// Run advances the model until the given time with the given step.
func (m *FluidModel) Run(until, step units.Time) {
	if step <= 0 {
		panic("analytic: fluid step must be positive")
	}
	for m.now < until {
		m.Step(step)
	}
}

// SteadyState runs the model until the mean occupancy over consecutive
// 100-step windows changes by less than tol bytes (or the deadline
// passes) and returns that mean. Windowed means absorb the limit cycle
// the explicit Euler step produces around the fixed point.
func (m *FluidModel) SteadyState(deadline, step units.Time, tol float64) (float64, error) {
	const window = 100
	prev := m.Occupancy()
	first := true
	for m.now < deadline {
		var sum float64
		for i := 0; i < window; i++ {
			m.Step(step)
			sum += m.Occupancy()
		}
		cur := sum / window
		if !first {
			if diff := cur - prev; diff < tol && diff > -tol {
				return cur, nil
			}
		}
		first = false
		prev = cur
	}
	return prev, fmt.Errorf("analytic: no steady state before %v", deadline)
}
