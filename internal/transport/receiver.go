package transport

import (
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/units"
)

// Receiver is the receiving half of a flow: it tracks received byte
// ranges, advances the cumulative ACK point, and acknowledges every data
// packet with per-packet ECN echo (DCTCP-style accurate ECN), timestamp
// echo, and telemetry echo.
type Receiver struct {
	sim *sim.Simulator
	out func(*packet.Packet) // host NIC enqueue, toward the sender

	FlowID uint64
	Peer   packet.NodeID // the data sender
	Self   packet.NodeID

	rcvNxt int64
	ooo    []span // out-of-order ranges beyond rcvNxt, sorted, disjoint
	oooAlt []span // spare buffer insert builds into, swapped with ooo

	BytesReceived units.ByteCount // cumulative payload, including out of order
	TrimmedSeen   int64
	LastArrival   units.Time
}

type span struct{ start, end int64 }

// NewReceiver creates the receiving half of a flow.
func NewReceiver(s *sim.Simulator, flowID uint64, self, peer packet.NodeID,
	out func(*packet.Packet)) *Receiver {
	return &Receiver{sim: s, out: out, FlowID: flowID, Self: self, Peer: peer}
}

// RcvNxt returns the cumulative in-order point.
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// OnData processes a data packet and responds with an ACK.
func (r *Receiver) OnData(pkt *packet.Packet) {
	r.LastArrival = r.sim.Now()
	if pkt.Is(packet.FlagTrimmed) {
		// The payload was cut in the fabric: acknowledge what we have so
		// the sender learns about the hole quickly.
		r.TrimmedSeen++
	} else if pkt.Payload > 0 {
		r.insert(pkt.Seq, pkt.Seq+int64(pkt.Payload))
		r.BytesReceived += pkt.Payload
	}

	ack := r.sim.NewPacket()
	ack.FlowID = pkt.FlowID
	ack.Src = r.Self
	ack.Dst = r.Peer
	ack.Prio = pkt.Prio
	ack.AckNo = r.rcvNxt
	ack.Flags = packet.FlagACK
	ack.SentAt = r.sim.Now()
	ack.EchoTS = pkt.SentAt
	// The data packet's telemetry array moves to the ACK; nil it out so
	// releasing the data packet cannot recycle the array underneath us.
	ack.AckINT = pkt.Hops
	pkt.Hops = nil
	if pkt.Is(packet.FlagCE) {
		ack.Set(packet.FlagECE)
	}
	r.out(ack)
}

// insert merges [start, end) into the received set and advances rcvNxt
// over any now-contiguous prefix. It builds the merged list into the
// spare buffer and swaps — appending in place would clobber spans not
// yet read once an insertion shifts the tail, and reslicing the
// consumed prefix away would walk the backing array's base forward so
// every in-order packet reallocates. With the swap, the two buffers
// reach the flow's high-water span count and steady state allocates
// nothing.
func (r *Receiver) insert(start, end int64) {
	if end <= r.rcvNxt {
		return // entirely duplicate
	}
	if start < r.rcvNxt {
		start = r.rcvNxt
	}
	// Merge into the sorted disjoint span list, building into the spare.
	out := r.oooAlt[:0]
	inserted := false
	for _, s := range r.ooo {
		switch {
		case s.end < start:
			out = append(out, s)
		case end < s.start:
			if !inserted {
				out = append(out, span{start, end})
				inserted = true
			}
			out = append(out, s)
		default: // overlap or adjacency: merge
			if s.start < start {
				start = s.start
			}
			if s.end > end {
				end = s.end
			}
		}
	}
	if !inserted {
		out = append(out, span{start, end})
	}
	// Advance the cumulative point over the contiguous prefix, then
	// shift the survivors down so the buffer base never migrates.
	k := 0
	for k < len(out) && out[k].start <= r.rcvNxt {
		if out[k].end > r.rcvNxt {
			r.rcvNxt = out[k].end
		}
		k++
	}
	n := copy(out, out[k:])
	r.oooAlt = r.ooo[:0]
	r.ooo = out[:n]
}

// Gaps returns the number of out-of-order spans currently held.
func (r *Receiver) Gaps() int { return len(r.ooo) }

// AdvanceTo moves the cumulative in-order point to offset to, crediting
// the skipped bytes as received. The hybrid engine calls it at flow
// promotion so the receiver's accounting matches the fluid trajectory:
// bytes delivered in fluid mode were never individual packets, but the
// stream state must agree with what the reconstructed sender believes
// was acknowledged. Spans the fluid interval swallowed are dropped from
// the out-of-order list; double-counted overlap is subtracted from
// BytesReceived so per-flow byte totals stay exact.
func (r *Receiver) AdvanceTo(to int64) {
	if to <= r.rcvNxt {
		return
	}
	credited := to - r.rcvNxt
	out := r.oooAlt[:0]
	for _, s := range r.ooo {
		if s.end <= to {
			credited -= s.end - s.start // was already counted on arrival
			continue
		}
		if s.start <= to {
			credited -= to - s.start
			s.start = to
		}
		out = append(out, s)
	}
	r.rcvNxt = to
	// Contiguous prefix may now touch the first surviving span.
	k := 0
	for k < len(out) && out[k].start <= r.rcvNxt {
		if out[k].end > r.rcvNxt {
			r.rcvNxt = out[k].end
		}
		k++
	}
	n := copy(out, out[k:])
	r.oooAlt = r.ooo[:0]
	r.ooo = out[:n]
	r.BytesReceived += units.ByteCount(credited)
}
