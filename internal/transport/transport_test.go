package transport

import (
	"testing"

	"abm/internal/cc"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/units"
)

// stubCC is a controllable congestion-control for transport tests.
type stubCC struct {
	cwnd    units.ByteCount
	rate    units.Rate
	ecn     bool
	acks    []cc.AckEvent
	dups    int
	recover int
	tmo     int
}

func (s *stubCC) Name() string            { return "stub" }
func (s *stubCC) Init(cc.Config)          {}
func (s *stubCC) OnAck(ev cc.AckEvent)    { s.acks = append(s.acks, ev) }
func (s *stubCC) OnDupAck(units.Time)     { s.dups++ }
func (s *stubCC) OnRecovery(units.Time)   { s.recover++ }
func (s *stubCC) OnTimeout(units.Time)    { s.tmo++ }
func (s *stubCC) Window() units.ByteCount { return s.cwnd }
func (s *stubCC) PacingRate() units.Rate  { return s.rate }
func (s *stubCC) UsesECN() bool           { return s.ecn }
func (s *stubCC) NeedsINT() bool          { return false }

// pipe wires a sender and receiver back-to-back with a fixed one-way
// delay and an optional fault hook on data packets.
type pipe struct {
	s     *sim.Simulator
	delay units.Time
	// faults returns true to drop the given data packet (called once per
	// transmission attempt).
	faults func(*packet.Packet) bool
	// mangle may modify data packets in flight (e.g. set CE).
	mangle func(*packet.Packet)

	snd *Sender
	rcv *Receiver

	done   bool
	doneAt units.Time
}

func newPipe(t *testing.T, size units.ByteCount, alg cc.Algorithm, cfg Config) *pipe {
	t.Helper()
	p := &pipe{s: sim.New(1), delay: 10 * units.Microsecond}
	p.rcv = NewReceiver(p.s, 1, 2, 1, func(ack *packet.Packet) {
		p.s.After(p.delay, func() { p.snd.OnAck(ack) })
	})
	p.snd = NewSender(p.s, cfg, alg, 1, 1, 2, size,
		func(pkt *packet.Packet) {
			if p.faults != nil && p.faults(pkt) {
				return // dropped in the fabric
			}
			if p.mangle != nil {
				p.mangle(pkt)
			}
			p.s.After(p.delay, func() { p.rcv.OnData(pkt) })
		},
		func(now units.Time) { p.done = true; p.doneAt = now })
	return p
}

func TestCleanTransferCompletes(t *testing.T) {
	alg := &stubCC{cwnd: 100 * 1440}
	p := newPipe(t, 10*1440, alg, Config{})
	p.s.At(0, func() { p.snd.Start() })
	p.s.Run()
	if !p.done {
		t.Fatal("flow did not complete")
	}
	if p.snd.PktsSent != 10 {
		t.Fatalf("sent %d packets, want 10", p.snd.PktsSent)
	}
	if p.snd.PktsRetrans != 0 || p.snd.Timeouts != 0 {
		t.Fatalf("unexpected recovery: retrans=%d timeouts=%d", p.snd.PktsRetrans, p.snd.Timeouts)
	}
	if p.rcv.BytesReceived != 10*1440 {
		t.Fatalf("receiver saw %v bytes", p.rcv.BytesReceived)
	}
	if p.rcv.RcvNxt() != 10*1440 {
		t.Fatalf("rcvNxt = %d", p.rcv.RcvNxt())
	}
	// FCT at least one RTT.
	if p.snd.FCT() < 20*units.Microsecond {
		t.Fatalf("FCT = %v implausibly low", p.snd.FCT())
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	alg := &stubCC{cwnd: 2 * 1440} // two packets at a time
	p := newPipe(t, 10*1440, alg, Config{})
	maxInflight := units.ByteCount(0)
	p.faults = func(pkt *packet.Packet) bool {
		if inf := p.snd.inflight(); inf > maxInflight {
			maxInflight = inf
		}
		return false
	}
	p.s.At(0, func() { p.snd.Start() })
	p.s.Run()
	if !p.done {
		t.Fatal("flow did not complete")
	}
	// inflight is measured before the emitted packet is counted, so the
	// cap is cwnd (2 segments).
	if maxInflight > 2*1440 {
		t.Fatalf("inflight reached %v with cwnd 2 segments", maxInflight)
	}
}

func TestRTTEstimate(t *testing.T) {
	alg := &stubCC{cwnd: 4 * 1440}
	p := newPipe(t, 8*1440, alg, Config{})
	p.s.At(0, func() { p.snd.Start() })
	p.s.Run()
	// One-way delay 10us each way: RTT = 20us exactly (no queueing).
	if got := p.snd.SRTT(); got != 20*units.Microsecond {
		t.Fatalf("SRTT = %v, want 20us", got)
	}
	if p.snd.RTO() != 10*units.Millisecond {
		t.Fatalf("RTO = %v, want clamped to minRTO", p.snd.RTO())
	}
}

func TestFastRetransmitOnSingleLoss(t *testing.T) {
	alg := &stubCC{cwnd: 100 * 1440}
	p := newPipe(t, 20*1440, alg, Config{})
	dropped := false
	p.faults = func(pkt *packet.Packet) bool {
		if pkt.Seq == 5*1440 && !dropped && !pkt.Is(packet.FlagRetransmit) {
			dropped = true
			return true
		}
		return false
	}
	p.s.At(0, func() { p.snd.Start() })
	p.s.Run()
	if !p.done {
		t.Fatal("flow did not complete")
	}
	if p.snd.FastRetrans != 1 {
		t.Fatalf("fast retransmits = %d, want 1", p.snd.FastRetrans)
	}
	if p.snd.Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0 (dupacks should recover)", p.snd.Timeouts)
	}
	if alg.recover != 1 {
		t.Fatalf("cc recovery events = %d, want 1", alg.recover)
	}
	// Completion despite the loss means the hole was filled.
	if p.rcv.Gaps() != 0 {
		t.Fatalf("receiver still has %d gaps", p.rcv.Gaps())
	}
}

func TestRTORecoversTailLoss(t *testing.T) {
	alg := &stubCC{cwnd: 100 * 1440}
	p := newPipe(t, 5*1440, alg, Config{})
	dropped := false
	p.faults = func(pkt *packet.Packet) bool {
		// Drop the last segment once: no dupacks possible.
		if pkt.Seq == 4*1440 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	p.s.At(0, func() { p.snd.Start() })
	p.s.Run()
	if !p.done {
		t.Fatal("flow did not complete")
	}
	if p.snd.Timeouts < 1 {
		t.Fatal("tail loss must recover via RTO")
	}
	if alg.tmo < 1 {
		t.Fatal("cc did not see the timeout")
	}
	// Completion happened after minRTO.
	if p.doneAt < 10*units.Millisecond {
		t.Fatalf("completed at %v, before the RTO could fire", p.doneAt)
	}
}

func TestHeavyRandomLossEventuallyCompletes(t *testing.T) {
	alg := &stubCC{cwnd: 20 * 1440}
	p := newPipe(t, 50*1440, alg, Config{})
	rng := p.s.Rand()
	p.faults = func(pkt *packet.Packet) bool { return rng.Float64() < 0.3 }
	p.s.At(0, func() { p.snd.Start() })
	p.s.RunUntil(10 * units.Second)
	if !p.done {
		t.Fatalf("flow did not complete under 30%% loss (sent=%d retrans=%d timeouts=%d una=%d)",
			p.snd.PktsSent, p.snd.PktsRetrans, p.snd.Timeouts, p.snd.sndUna)
	}
}

func TestUnscheduledTagging(t *testing.T) {
	alg := &stubCC{cwnd: 1000 * 1440}
	cfg := Config{UnscheduledBytes: 5 * 1440}
	p := newPipe(t, 20*1440, alg, cfg)
	var tagged, untagged int
	p.mangle = func(pkt *packet.Packet) {
		if pkt.Is(packet.FlagUnscheduled) {
			tagged++
		} else {
			untagged++
		}
	}
	p.s.At(0, func() { p.snd.Start() })
	p.s.Run()
	// Exactly the first 5 segments go out before any ACK (huge window) and
	// fall under the unscheduled budget.
	if tagged != 5 {
		t.Fatalf("tagged %d packets, want 5", tagged)
	}
	if untagged != 15 {
		t.Fatalf("untagged %d, want 15", untagged)
	}
}

func TestECNEchoReachesCC(t *testing.T) {
	alg := &stubCC{cwnd: 2 * 1440, ecn: true}
	p := newPipe(t, 6*1440, alg, Config{})
	p.mangle = func(pkt *packet.Packet) {
		if !pkt.Is(packet.FlagECT) {
			t.Error("ECN-capable flow must set ECT")
		}
		if pkt.Seq == 2*1440 {
			pkt.Set(packet.FlagCE) // switch marks this one
		}
	}
	p.s.At(0, func() { p.snd.Start() })
	p.s.Run()
	marked := 0
	for _, ev := range alg.acks {
		if ev.ECNMarked {
			marked++
		}
	}
	if marked != 1 {
		t.Fatalf("cc saw %d marked ACKs, want exactly 1", marked)
	}
}

func TestINTEcho(t *testing.T) {
	alg := &stubCC{cwnd: 2 * 1440}
	p := newPipe(t, 2*1440, alg, Config{})
	p.mangle = func(pkt *packet.Packet) {
		pkt.Hops = append(pkt.Hops, packet.HopINT{QLen: 777, Rate: units.GigabitPerSec})
	}
	p.s.At(0, func() { p.snd.Start() })
	p.s.Run()
	if len(alg.acks) == 0 || len(alg.acks[0].INT) != 1 || alg.acks[0].INT[0].QLen != 777 {
		t.Fatal("telemetry was not echoed to the sender's cc")
	}
}

func TestPacingSpacesPackets(t *testing.T) {
	alg := &stubCC{cwnd: 1000 * 1440, rate: units.GigabitPerSec}
	p := newPipe(t, 10*1440, alg, Config{})
	var sendTimes []units.Time
	p.mangle = func(pkt *packet.Packet) { sendTimes = append(sendTimes, p.s.Now()) }
	p.s.At(0, func() { p.snd.Start() })
	p.s.Run()
	if len(sendTimes) != 10 {
		t.Fatalf("sent %d", len(sendTimes))
	}
	// 1500B at 1Gb/s = 12us spacing.
	for i := 1; i < len(sendTimes); i++ {
		gap := sendTimes[i] - sendTimes[i-1]
		if gap < 11*units.Microsecond {
			t.Fatalf("pacing gap %v too small at %d", gap, i)
		}
	}
}

func TestTrimmedPacketTriggersDupAcks(t *testing.T) {
	alg := &stubCC{cwnd: 100 * 1440}
	p := newPipe(t, 10*1440, alg, Config{})
	trimmedOnce := false
	p.mangle = func(pkt *packet.Packet) {
		if pkt.Seq == 2*1440 && !trimmedOnce && !pkt.Is(packet.FlagRetransmit) {
			trimmedOnce = true
			pkt.Trim()
		}
	}
	p.s.At(0, func() { p.snd.Start() })
	p.s.Run()
	if !p.done {
		t.Fatal("flow did not complete after trim")
	}
	if p.rcv.TrimmedSeen != 1 {
		t.Fatalf("receiver saw %d trimmed, want 1", p.rcv.TrimmedSeen)
	}
	if p.snd.FastRetrans != 1 {
		t.Fatalf("trim should drive fast retransmit, got %d", p.snd.FastRetrans)
	}
	if p.snd.Timeouts != 0 {
		t.Fatal("trim recovery must not need a timeout")
	}
}

func TestSenderPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	NewSender(s, Config{}, &stubCC{}, 1, 1, 2, 0, nil, nil)
}

func TestFCTPanicsBeforeFinish(t *testing.T) {
	s := sim.New(1)
	sn := NewSender(s, Config{}, &stubCC{cwnd: 1440}, 1, 1, 2, 1440, func(*packet.Packet) {}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sn.FCT()
}

func TestReceiverIntervalMerging(t *testing.T) {
	s := sim.New(1)
	r := NewReceiver(s, 1, 2, 1, func(*packet.Packet) {})
	// Out of order: [10,20) then [0,10) then duplicate [5,15).
	r.insert(10, 20)
	if r.RcvNxt() != 0 || r.Gaps() != 1 {
		t.Fatalf("rcvNxt=%d gaps=%d", r.RcvNxt(), r.Gaps())
	}
	r.insert(0, 10)
	if r.RcvNxt() != 20 || r.Gaps() != 0 {
		t.Fatalf("after fill: rcvNxt=%d gaps=%d", r.RcvNxt(), r.Gaps())
	}
	r.insert(5, 15) // fully duplicate
	if r.RcvNxt() != 20 {
		t.Fatalf("duplicate moved rcvNxt to %d", r.RcvNxt())
	}
	// Disjoint spans merge on adjacency.
	r.insert(30, 40)
	r.insert(50, 60)
	r.insert(40, 50)
	if r.Gaps() != 1 {
		t.Fatalf("expected single merged span, gaps=%d", r.Gaps())
	}
	r.insert(20, 30)
	if r.RcvNxt() != 60 || r.Gaps() != 0 {
		t.Fatalf("final: rcvNxt=%d gaps=%d", r.RcvNxt(), r.Gaps())
	}
}

// TestReceiverMiddleGapInsert pins the fix for a span-list aliasing bug:
// inserting a new range strictly between existing spans, with at least
// two spans after the insertion point, used to overwrite the unread tail
// of the list while it was being rebuilt in place — every span after the
// insertion point was replaced by a copy of the span just before it, so
// already-received ranges were forgotten and had to be retransmitted.
func TestReceiverMiddleGapInsert(t *testing.T) {
	s := sim.New(1)
	r := NewReceiver(s, 1, 2, 1, func(*packet.Packet) {})
	r.insert(10, 20)
	r.insert(30, 40)
	r.insert(50, 60)
	if r.Gaps() != 3 {
		t.Fatalf("setup gaps=%d, want 3", r.Gaps())
	}
	// Middle insertion between the first and second spans.
	r.insert(22, 25)
	if r.Gaps() != 4 {
		t.Fatalf("after middle insert gaps=%d, want 4", r.Gaps())
	}
	// Fill every hole; the cumulative point must reach the end, which
	// requires that [30,40) and [50,60) survived the middle insertion.
	r.insert(0, 10)
	r.insert(20, 22)
	r.insert(25, 30)
	r.insert(40, 50)
	if r.RcvNxt() != 60 || r.Gaps() != 0 {
		t.Fatalf("after filling: rcvNxt=%d gaps=%d, want 60/0", r.RcvNxt(), r.Gaps())
	}
}

// TestReceiverInOrderInsertZeroAlloc pins the steady-state allocation
// contract of the hot path: once warm, in-order delivery must not touch
// the heap (the span buffers are reused via swap, never resliced away).
func TestReceiverInOrderInsertZeroAlloc(t *testing.T) {
	s := sim.New(1)
	r := NewReceiver(s, 1, 2, 1, func(*packet.Packet) {})
	next := int64(0)
	r.insert(next, next+1440) // warm the span buffers
	next += 1440
	allocs := testing.AllocsPerRun(100, func() {
		r.insert(next, next+1440)
		next += 1440
	})
	if allocs != 0 {
		t.Fatalf("in-order insert allocates %.1f objects/op, want 0", allocs)
	}
}

func TestShortFlowSinglePacket(t *testing.T) {
	alg := &stubCC{cwnd: 10 * 1440}
	p := newPipe(t, 100, alg, Config{}) // sub-MSS flow
	p.s.At(0, func() { p.snd.Start() })
	p.s.Run()
	if !p.done {
		t.Fatal("single-packet flow did not complete")
	}
	if p.snd.PktsSent != 1 {
		t.Fatalf("sent %d, want 1", p.snd.PktsSent)
	}
}
