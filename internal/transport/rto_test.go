package transport

import (
	"testing"

	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/units"
)

// Every data packet vanishes: the sender must back off its RTO
// exponentially instead of hammering the fabric.
func TestRTOExponentialBackoff(t *testing.T) {
	alg := &stubCC{cwnd: 4 * 1440}
	p := newPipe(t, 4*1440, alg, Config{})
	var sendTimes []units.Time
	p.faults = func(pkt *packet.Packet) bool {
		sendTimes = append(sendTimes, p.s.Now())
		return true // black hole
	}
	p.s.At(0, func() { p.snd.Start() })
	p.s.RunUntil(500 * units.Millisecond)
	if p.done {
		t.Fatal("flow cannot complete through a black hole")
	}
	// Collect the retransmission gaps (ignore the initial burst at ~0).
	var gaps []units.Time
	prev := units.Time(-1)
	for _, ts := range sendTimes {
		if ts == 0 {
			continue
		}
		if prev >= 0 {
			gaps = append(gaps, ts-prev)
		}
		prev = ts
	}
	if len(gaps) < 3 {
		t.Fatalf("too few retransmissions: %d", len(gaps))
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i] < gaps[i-1] {
			t.Fatalf("RTO gaps must be nondecreasing: %v", gaps)
		}
	}
	// The first retransmission waits at least minRTO.
	if gaps[0] < 10*units.Millisecond {
		t.Fatalf("first backoff gap %v below minRTO", gaps[0])
	}
}

// A new ACK resets the backoff.
func TestRTOBackoffResetsOnProgress(t *testing.T) {
	alg := &stubCC{cwnd: 1440}
	p := newPipe(t, 3*1440, alg, Config{})
	drop := true
	p.faults = func(pkt *packet.Packet) bool {
		if drop && pkt.Seq == 0 {
			return true // drop first segment until backoff kicks in
		}
		return false
	}
	p.s.At(0, func() { p.snd.Start() })
	// Let two RTOs fire, then heal the path.
	p.s.RunUntil(40 * units.Millisecond)
	if p.snd.Timeouts < 1 {
		t.Fatal("expected timeouts while the path is broken")
	}
	drop = false
	p.s.RunUntil(2 * units.Second)
	if !p.done {
		t.Fatal("flow did not complete after the path healed")
	}
}

// MaxRTO caps the backoff.
func TestRTOCappedAtMax(t *testing.T) {
	s := sim.New(1)
	sn := NewSender(s, Config{MaxRTO: 20 * units.Millisecond}, &stubCC{cwnd: 1440},
		1, 1, 2, 1440, func(*packet.Packet) {}, nil)
	sn.Start()
	s.RunUntil(2 * units.Second)
	// With a 20ms cap, two seconds fit at least ~90 timeouts; without the
	// cap exponential backoff would allow only ~7.
	if sn.Timeouts < 50 {
		t.Fatalf("timeouts = %d, backoff cap not applied", sn.Timeouts)
	}
}

// SRTT tracks a changing path delay.
func TestSRTTAdapts(t *testing.T) {
	alg := &stubCC{cwnd: 1440} // one packet at a time: clean samples
	p := newPipe(t, 40*1440, alg, Config{})
	p.s.At(0, func() { p.snd.Start() })
	p.s.RunUntil(200 * units.Microsecond) // ~10 of 40 packets done
	first := p.snd.SRTT()
	if p.done {
		t.Fatal("flow finished too early for the test setup")
	}
	// Slow the path 5x mid-flow.
	p.delay = 50 * units.Microsecond
	p.s.RunUntil(40 * units.Millisecond)
	if !p.done {
		t.Fatal("flow did not complete")
	}
	if p.snd.SRTT() <= first {
		t.Fatalf("SRTT did not adapt upward: %v -> %v", first, p.snd.SRTT())
	}
}
