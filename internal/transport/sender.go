// Package transport implements the host byte-stream transport the
// paper's workloads run over: a TCP-like reliable sender/receiver pair
// with cumulative ACKs, duplicate-ACK fast retransmit, NewReno-style
// recovery, RFC 6298 retransmission timeouts (minRTO = 10ms, §4.1),
// per-packet ECN echo for DCTCP, telemetry echo for PowerTCP, and
// first-RTT "unscheduled" tagging for ABM (§3.3).
package transport

import (
	"fmt"

	"abm/internal/cc"
	"abm/internal/obs"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/units"
)

// Config parameterizes one flow's transport.
type Config struct {
	MSS             units.ByteCount // payload bytes per segment
	MinRTO          units.Time
	MaxRTO          units.Time
	DupAckThreshold int

	// UnscheduledBytes caps how much of the flow's head is tagged
	// unscheduled; the tag also requires that no ACK has arrived yet
	// (i.e. the segment really is a first-RTT packet).
	UnscheduledBytes units.ByteCount

	Prio uint8

	// Obs is the telemetry sink of the sender's shard; nil disables
	// telemetry (see internal/obs).
	Obs *obs.Sink
}

func (c *Config) fillDefaults() {
	if c.MSS <= 0 {
		c.MSS = 1440
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 10 * units.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 320 * units.Millisecond
	}
	if c.DupAckThreshold <= 0 {
		c.DupAckThreshold = 3
	}
}

// Sender is the sending half of a flow.
type Sender struct {
	sim *sim.Simulator
	out func(*packet.Packet) // host NIC enqueue
	cfg Config
	alg cc.Algorithm

	FlowID uint64
	Src    packet.NodeID
	Dst    packet.NodeID
	Size   units.ByteCount

	StartedAt  units.Time
	FinishedAt units.Time
	finished   bool
	onComplete func(now units.Time)

	sndUna int64
	sndNxt int64

	dupAcks    int
	inRecovery bool
	recover    int64

	// Hybrid engine state. While fluid is set the per-packet machinery
	// is torn down: no sends, no timers; OnAck still runs bookkeeping
	// for packets that were in flight at demotion. lastDisturb is the
	// time of the most recent congestion signal (recovery entry, RTO,
	// ECN mark) in either mode; disturbed latches a signal that arrived
	// while fluid, which forces promotion.
	fluid       bool
	disturbed   bool
	lastDisturb units.Time

	srtt, rttvar units.Time
	rto          units.Time
	rtoBackoff   uint
	rtoTimer     sim.Event
	pacingTimer  sim.Event
	pacingNext   units.Time

	// Prebound timer callbacks: created once so re-arming the RTO or
	// pacing timer never allocates a closure.
	rtoFn    func()
	pacingFn func()
	// Timer lanes. RTO deadlines are nondecreasing except across a
	// backoff reset, pacing times except after an RTO rewinds
	// pacingNext; the lane push falls back to the calendar heap in
	// those rare cases, so each timer stream stays O(1) to (re)arm.
	rtoLane    sim.LaneID
	pacingLane sim.LaneID

	// Counters.
	PktsSent    int64
	PktsRetrans int64
	Timeouts    int64
	FastRetrans int64

	// Telemetry handles (nil-safe when disabled).
	obsSink        *obs.Sink
	ctrRTOFired    *obs.Counter
	ctrCwndCuts    *obs.Counter
	ctrFastRetrans *obs.Counter
}

// NewSender creates a flow sender. The congestion-control algorithm must
// already be initialized (cc.Algorithm.Init). out enqueues packets into
// the host NIC; onComplete fires when every byte has been cumulatively
// acknowledged.
func NewSender(s *sim.Simulator, cfg Config, alg cc.Algorithm,
	flowID uint64, src, dst packet.NodeID, size units.ByteCount,
	out func(*packet.Packet), onComplete func(now units.Time)) *Sender {
	if size <= 0 {
		panic(fmt.Sprintf("transport: flow %d has size %v", flowID, size))
	}
	cfg.fillDefaults()
	sn := &Sender{
		sim: s, out: out, cfg: cfg, alg: alg,
		FlowID: flowID, Src: src, Dst: dst, Size: size,
		onComplete: onComplete,
		rto:        cfg.MinRTO,
		rtoLane:    s.NewLane(),
		pacingLane: s.NewLane(),
	}
	sn.rtoFn = sn.onRTO
	sn.pacingFn = func() { sn.trySend() }
	sn.obsSink = cfg.Obs
	sn.ctrRTOFired = cfg.Obs.Ctr(obs.CtrRTOFired)
	sn.ctrCwndCuts = cfg.Obs.Ctr(obs.CtrCwndCuts)
	sn.ctrFastRetrans = cfg.Obs.Ctr(obs.CtrFastRetrans)
	return sn
}

// Start begins transmission at the current simulated time.
func (sn *Sender) Start() {
	sn.StartedAt = sn.sim.Now()
	sn.pacingNext = sn.sim.Now()
	sn.trySend()
}

// Finished reports whether every byte has been acknowledged.
func (sn *Sender) Finished() bool { return sn.finished }

// FCT returns the flow completion time; it panics if the flow has not
// finished.
func (sn *Sender) FCT() units.Time {
	if !sn.finished {
		panic(fmt.Sprintf("transport: flow %d not finished", sn.FlowID))
	}
	return sn.FinishedAt - sn.StartedAt
}

// inflight returns the unacknowledged bytes.
func (sn *Sender) inflight() units.ByteCount {
	return units.ByteCount(sn.sndNxt - sn.sndUna)
}

// trySend emits new segments while the window and pacing allow.
func (sn *Sender) trySend() {
	if sn.finished || sn.fluid {
		return
	}
	rate := sn.alg.PacingRate()
	for int64(sn.Size) > sn.sndNxt {
		payload := units.MinBytes(sn.cfg.MSS, sn.Size-units.ByteCount(sn.sndNxt))
		if sn.inflight()+payload > sn.alg.Window() {
			return // window-limited; ACKs will reopen
		}
		now := sn.sim.Now()
		if rate > 0 && now < sn.pacingNext {
			sn.armPacing(sn.pacingNext)
			return
		}
		sn.emit(sn.sndNxt, payload, false)
		sn.sndNxt += int64(payload)
		if rate > 0 {
			next := units.MaxTime(now, sn.pacingNext) + rate.TxTime(payload+packet.HeaderBytes)
			sn.pacingNext = next
		}
	}
}

func (sn *Sender) armPacing(at units.Time) {
	if sn.pacingTimer.Scheduled() {
		return
	}
	sn.pacingTimer = sn.sim.AtLane(sn.pacingLane, at, sn.pacingFn)
}

// emit builds and sends one segment. The packet comes from the
// simulator's free list; whoever consumes it (MMU drop, receiver,
// peer's ACK path) releases it.
func (sn *Sender) emit(seq int64, payload units.ByteCount, retrans bool) {
	pkt := sn.sim.NewPacket()
	pkt.FlowID = sn.FlowID
	pkt.Src = sn.Src
	pkt.Dst = sn.Dst
	pkt.Prio = sn.cfg.Prio
	pkt.Seq = seq
	pkt.Payload = payload
	pkt.SentAt = sn.sim.Now()
	if sn.alg.UsesECN() {
		pkt.Set(packet.FlagECT)
	}
	if retrans {
		pkt.Set(packet.FlagRetransmit)
		sn.PktsRetrans++
	} else if sn.sndUna == 0 && seq < int64(sn.cfg.UnscheduledBytes) {
		// First-RTT packet: no feedback has arrived and the byte offset is
		// within the unscheduled budget.
		pkt.Set(packet.FlagUnscheduled)
	}
	if seq+int64(payload) >= int64(sn.Size) {
		pkt.Set(packet.FlagFIN)
	}
	sn.PktsSent++
	sn.out(pkt)
	sn.armRTO()
}

// OnAck processes an incoming acknowledgment.
func (sn *Sender) OnAck(pkt *packet.Packet) {
	if sn.finished {
		return
	}
	now := sn.sim.Now()
	ackNo := pkt.AckNo
	if sn.fluid {
		// Fluid mode: the integrator owns delivery; ACKs for packets
		// that were in flight at demotion only update bookkeeping. A
		// congestion signal here means the demotion criteria misjudged
		// the path, so latch it and let the controller promote.
		if ackNo > sn.sndUna {
			sn.sndUna = ackNo
			sn.dupAcks = 0
			if pkt.EchoTS > 0 {
				sn.updateRTO(now - pkt.EchoTS)
			}
			if pkt.Is(packet.FlagECE) {
				sn.disturb(now)
			}
		} else if sn.inflight() > 0 {
			sn.dupAcks++
			if sn.dupAcks >= sn.cfg.DupAckThreshold {
				sn.disturb(now)
			}
		}
		return
	}
	if ackNo > sn.sndUna {
		acked := units.ByteCount(ackNo - sn.sndUna)
		sn.sndUna = ackNo
		sn.dupAcks = 0
		var rtt units.Time
		if pkt.EchoTS > 0 {
			rtt = now - pkt.EchoTS
			sn.updateRTO(rtt)
		}
		if pkt.Is(packet.FlagECE) {
			sn.lastDisturb = now
		}
		sn.alg.OnAck(cc.AckEvent{
			Now:        now,
			AckedBytes: acked,
			RTT:        rtt,
			ECNMarked:  pkt.Is(packet.FlagECE),
			INT:        pkt.AckINT,
		})
		if sn.inRecovery {
			if ackNo >= sn.recover {
				sn.inRecovery = false
			} else {
				// Partial ACK: the next hole is at the new sndUna.
				sn.retransmitHead()
			}
		}
		sn.rtoBackoff = 0
		if sn.sndUna >= int64(sn.Size) {
			sn.complete(now)
			return
		}
		sn.armRTO()
		sn.trySend()
		return
	}
	// Duplicate ACK.
	if sn.inflight() == 0 {
		return
	}
	sn.dupAcks++
	sn.alg.OnDupAck(now)
	if sn.dupAcks == sn.cfg.DupAckThreshold && !sn.inRecovery {
		sn.inRecovery = true
		sn.recover = sn.sndNxt
		sn.lastDisturb = now
		sn.alg.OnRecovery(now)
		sn.FastRetrans++
		sn.ctrFastRetrans.Inc()
		sn.ctrCwndCuts.Inc()
		if sn.obsSink.Enabled(obs.KindCwndCut) {
			sn.obsSink.Emit(obs.Event{
				At:   now,
				Kind: obs.KindCwndCut,
				Node: int32(sn.Src),
				Flow: sn.FlowID,
				QLen: sn.alg.Window(),
			})
		}
		sn.retransmitHead()
	}
	sn.trySend()
}

// retransmitHead resends the segment at sndUna.
func (sn *Sender) retransmitHead() {
	payload := units.MinBytes(sn.cfg.MSS, sn.Size-units.ByteCount(sn.sndUna))
	sn.emit(sn.sndUna, payload, true)
}

func (sn *Sender) armRTO() {
	sn.rtoTimer.Cancel()
	d := sn.rto << sn.rtoBackoff
	if d > sn.cfg.MaxRTO {
		d = sn.cfg.MaxRTO
	}
	sn.rtoTimer = sn.sim.AfterLane(sn.rtoLane, d, sn.rtoFn)
}

func (sn *Sender) onRTO() {
	if sn.finished || sn.fluid {
		return
	}
	sn.Timeouts++
	sn.lastDisturb = sn.sim.Now()
	sn.ctrRTOFired.Inc()
	sn.ctrCwndCuts.Inc()
	sn.alg.OnTimeout(sn.sim.Now())
	if sn.obsSink.Enabled(obs.KindTimeout) {
		// Aux carries the timeout duration that just fired (the armRTO
		// clamp applied to the pre-backoff-bump state).
		d := sn.rto << sn.rtoBackoff
		if d > sn.cfg.MaxRTO {
			d = sn.cfg.MaxRTO
		}
		sn.obsSink.Emit(obs.Event{
			At:   sn.sim.Now(),
			Kind: obs.KindTimeout,
			Node: int32(sn.Src),
			Flow: sn.FlowID,
			Seq:  sn.sndUna,
			Aux:  int64(d),
			QLen: sn.alg.Window(),
		})
	}
	sn.inRecovery = false
	sn.dupAcks = 0
	// Go-back-N: rewind and resend from the first unacknowledged byte.
	sn.sndNxt = sn.sndUna
	sn.pacingNext = sn.sim.Now()
	if sn.rtoBackoff < 16 {
		sn.rtoBackoff++
	}
	sn.retransmitHead()
	sn.sndNxt = sn.sndUna + int64(units.MinBytes(sn.cfg.MSS, sn.Size-units.ByteCount(sn.sndUna)))
}

// updateRTO applies the RFC 6298 estimator.
func (sn *Sender) updateRTO(rtt units.Time) {
	if sn.srtt == 0 {
		sn.srtt = rtt
		sn.rttvar = rtt / 2
	} else {
		diff := sn.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		sn.rttvar = (3*sn.rttvar + diff) / 4
		sn.srtt = (7*sn.srtt + rtt) / 8
	}
	sn.rto = sn.srtt + 4*sn.rttvar
	if sn.rto < sn.cfg.MinRTO {
		sn.rto = sn.cfg.MinRTO
	}
	if sn.rto > sn.cfg.MaxRTO {
		sn.rto = sn.cfg.MaxRTO
	}
}

// disturb records a congestion signal; while fluid it also latches the
// promotion trigger.
func (sn *Sender) disturb(now units.Time) {
	sn.lastDisturb = now
	if sn.fluid {
		sn.disturbed = true
	}
}

// Demote switches the sender into fluid mode: both timers are torn down
// (the lanes are kept — the flow will need them again at promotion) and
// every send path is gated off. The caller (internal/hybrid) takes over
// delivery accounting from sndNxt onward.
func (sn *Sender) Demote() {
	if sn.fluid || sn.finished {
		return
	}
	sn.fluid = true
	sn.rtoTimer.Cancel()
	sn.pacingTimer.Cancel()
}

// Promote returns the sender to packet mode. deliveredTo is the
// cumulative stream offset the fluid trajectory delivered; the stream
// resumes from there with zero bytes in flight (the congestion window
// refills it), pacing re-anchored at now, and the RTO re-armed. If the
// fluid trajectory covered the whole flow the sender completes here —
// completion is always observed in packet mode. The caller is expected
// to have re-centered the congestion window (cc.WindowRescaler) first.
func (sn *Sender) Promote(deliveredTo int64) {
	if !sn.fluid || sn.finished {
		return
	}
	sn.fluid = false
	sn.disturbed = false
	sn.dupAcks = 0
	sn.inRecovery = false
	sn.rtoBackoff = 0
	if deliveredTo > sn.sndUna {
		sn.sndUna = deliveredTo
	}
	if sn.sndNxt < sn.sndUna {
		sn.sndNxt = sn.sndUna
	}
	now := sn.sim.Now()
	if sn.sndUna >= int64(sn.Size) {
		sn.complete(now)
		return
	}
	sn.pacingNext = now
	sn.armRTO()
	sn.trySend()
}

// Fluid reports whether the sender is in fluid mode.
func (sn *Sender) Fluid() bool { return sn.fluid }

// Disturbed reports whether a congestion signal arrived while fluid.
func (sn *Sender) Disturbed() bool { return sn.disturbed }

// LastDisturb returns the time of the most recent congestion signal
// (recovery entry, RTO fire, or ECN mark); zero if none yet.
func (sn *Sender) LastDisturb() units.Time { return sn.lastDisturb }

// SndUna returns the first unacknowledged stream offset.
func (sn *Sender) SndUna() int64 { return sn.sndUna }

// SndNxt returns the next unsent stream offset.
func (sn *Sender) SndNxt() int64 { return sn.sndNxt }

// InRecovery reports whether the sender is in fast recovery.
func (sn *Sender) InRecovery() bool { return sn.inRecovery }

// Alg exposes the congestion-control state machine.
func (sn *Sender) Alg() cc.Algorithm { return sn.alg }

// SRTT exposes the smoothed RTT estimate.
func (sn *Sender) SRTT() units.Time { return sn.srtt }

// RTO exposes the current retransmission timeout.
func (sn *Sender) RTO() units.Time { return sn.rto }

func (sn *Sender) complete(now units.Time) {
	sn.finished = true
	sn.FinishedAt = now
	sn.rtoTimer.Cancel()
	sn.pacingTimer.Cancel()
	// Every entry point checks finished, so nothing schedules through
	// these lanes again: recycle them for the next flow.
	sn.sim.ReleaseLane(sn.rtoLane)
	sn.sim.ReleaseLane(sn.pacingLane)
	if sn.onComplete != nil {
		sn.onComplete(now)
	}
}
