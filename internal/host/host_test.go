package host

import (
	"testing"

	"abm/internal/cc"
	"abm/internal/device"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/transport"
	"abm/internal/units"
)

// loop wires two hosts back-to-back through links (no switch).
func loop(t *testing.T, s *sim.Simulator) (*Host, *Host) {
	t.Helper()
	cfg := Config{Rate: 10 * units.GigabitPerSec, BaseRTT: 80 * units.Microsecond}
	a := New(s, func() Config { c := cfg; c.ID = 1; return c }())
	b := New(s, func() Config { c := cfg; c.ID = 2; return c }())
	a.Connect(device.NewLink(s, 10*units.Microsecond, b))
	b.Connect(device.NewLink(s, 10*units.Microsecond, a))
	return a, b
}

func TestHostToHostFlow(t *testing.T) {
	s := sim.New(1)
	a, b := loop(t, s)
	done := false
	a.StartFlow(1, 2, 100*units.Kilobyte, 0, cc.NewReno(), func(units.Time) { done = true })
	s.RunUntil(100 * units.Millisecond)
	if !done {
		t.Fatal("flow did not complete")
	}
	if b.RxBytes != 100*units.Kilobyte {
		t.Fatalf("receiver goodput = %v", b.RxBytes)
	}
	if a.ActiveSenders() != 0 {
		t.Fatal("sender still active after completion")
	}
}

func TestNICSerializesAtLineRate(t *testing.T) {
	s := sim.New(1)
	cfg := Config{ID: 1, Rate: units.GigabitPerSec, BaseRTT: 80 * units.Microsecond}
	h := New(s, cfg)
	var arrivals []units.Time
	dst := &captureEndpoint{id: 2, s: s, on: func() { arrivals = append(arrivals, s.Now()) }}
	h.Connect(device.NewLink(s, 0, dst))
	s.At(0, func() {
		for i := 0; i < 5; i++ {
			h.Output(&packet.Packet{Dst: 2, Payload: 1440})
		}
	})
	s.Run()
	// 1500B at 1Gb/s = 12us per packet, back to back.
	for i := 1; i < len(arrivals); i++ {
		if gap := arrivals[i] - arrivals[i-1]; gap != 12*units.Microsecond {
			t.Fatalf("gap %d = %v, want 12us", i, gap)
		}
	}
}

type captureEndpoint struct {
	id packet.NodeID
	s  *sim.Simulator
	on func()
}

func (c *captureEndpoint) ID() packet.NodeID      { return c.id }
func (c *captureEndpoint) Receive(*packet.Packet) { c.on() }

func TestReceiverCreatedLazily(t *testing.T) {
	s := sim.New(1)
	a, b := loop(t, s)
	if len(b.receivers) != 0 {
		t.Fatal("receivers should not exist before data")
	}
	a.StartFlow(7, 2, 10*units.Kilobyte, 0, cc.NewReno(), nil)
	s.RunUntil(10 * units.Millisecond)
	if len(b.receivers) != 1 {
		t.Fatalf("receivers = %d, want 1", len(b.receivers))
	}
}

func TestMisdeliveredPacketPanics(t *testing.T) {
	s := sim.New(1)
	h := New(s, Config{ID: 5, Rate: units.GigabitPerSec})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Receive(&packet.Packet{Dst: 9})
}

func TestAckForUnknownFlowIgnored(t *testing.T) {
	s := sim.New(1)
	h := New(s, Config{ID: 5, Rate: units.GigabitPerSec})
	// Must not panic: stale ACK after sender cleanup.
	h.Receive(&packet.Packet{Dst: 5, FlowID: 999, Flags: packet.FlagACK})
}

func TestUnscheduledBudgetDefaultsToBDP(t *testing.T) {
	s := sim.New(1)
	h := New(s, Config{ID: 1, Rate: 10 * units.GigabitPerSec, BaseRTT: 80 * units.Microsecond})
	if h.cfg.UnscheduledBytes != 100*units.Kilobyte {
		t.Fatalf("unscheduled budget = %v, want 1 BDP (100KB)", h.cfg.UnscheduledBytes)
	}
}

func TestHostValidation(t *testing.T) {
	s := sim.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero rate")
		}
	}()
	New(s, Config{ID: 1})
}

func TestBacklogReporting(t *testing.T) {
	s := sim.New(1)
	h := New(s, Config{ID: 1, Rate: units.GigabitPerSec})
	h.Connect(device.NewLink(s, 0, &captureEndpoint{id: 2, s: s, on: func() {}}))
	s.At(0, func() {
		for i := 0; i < 10; i++ {
			h.Output(&packet.Packet{Dst: 2, Payload: 1440})
		}
		// One packet is in transmission; the rest queue.
		if h.Backlog() != 9 {
			t.Errorf("backlog = %d, want 9", h.Backlog())
		}
	})
	s.Run()
	if h.Backlog() != 0 {
		t.Fatalf("backlog after drain = %d", h.Backlog())
	}
}

func TestEachSender(t *testing.T) {
	s := sim.New(1)
	a, _ := loop(t, s)
	a.StartFlow(1, 2, 10*units.Kilobyte, 0, cc.NewReno(), nil)
	a.StartFlow(2, 2, 10*units.Kilobyte, 0, cc.NewReno(), nil)
	count := 0
	a.EachSender(func(*transport.Sender) { count++ })
	if count != 2 {
		t.Fatalf("visited %d senders, want 2", count)
	}
}
