// Package host implements end hosts: a NIC that serializes packets onto
// the access link, a demultiplexer for the transport layer, and the flow
// factory the workload generators drive.
package host

import (
	"fmt"

	"abm/internal/cc"
	"abm/internal/device"
	"abm/internal/obs"
	"abm/internal/packet"
	"abm/internal/sim"
	"abm/internal/transport"
	"abm/internal/units"
)

// Config parameterizes a host.
type Config struct {
	ID      packet.NodeID
	Rate    units.Rate // NIC bandwidth
	BaseRTT units.Time // fabric base RTT, for cc Config and unscheduled budget
	MSS     units.ByteCount
	MinRTO  units.Time

	// UnscheduledBytes is the first-RTT budget tagged unscheduled; zero
	// selects one bandwidth-delay product.
	UnscheduledBytes units.ByteCount

	// Obs is the telemetry sink of the host's shard; nil disables
	// telemetry (see internal/obs).
	Obs *obs.Sink
}

// Host is one server: NIC plus transport endpoints.
type Host struct {
	sim  *sim.Simulator
	cfg  Config
	link *device.Link // egress toward the ToR

	queue   []*packet.Packet // NIC FIFO
	qhead   int
	busy    bool
	TxBytes units.ByteCount
	RxBytes units.ByteCount // payload bytes received (goodput)

	// txPkt is the packet currently serializing onto the wire; txDone is
	// its prebound completion callback, so per-packet transmission
	// schedules without allocating a closure.
	txPkt  *packet.Packet
	txDone func()
	// The NIC serializes one packet at a time, so txDone completions
	// are in nondecreasing time order: a private calendar lane.
	txLane sim.LaneID

	senders   map[uint64]*transport.Sender
	receivers map[uint64]*transport.Receiver

	// Telemetry handles (nil-safe when disabled). Output is the single
	// counting point for emissions: sender data and receiver ACKs both
	// route through it.
	ctrDataSent     *obs.Counter
	ctrRetransSent  *obs.Counter
	ctrAckSent      *obs.Counter
	ctrDataConsumed *obs.Counter
	ctrAckRetired   *obs.Counter
}

// New creates a host. Attach the uplink with Connect before starting
// flows.
func New(s *sim.Simulator, cfg Config) *Host {
	if cfg.Rate <= 0 {
		panic(fmt.Sprintf("host %d: rate must be positive", cfg.ID))
	}
	if cfg.MSS <= 0 {
		cfg.MSS = 1440
	}
	if cfg.UnscheduledBytes <= 0 {
		cfg.UnscheduledBytes = cfg.Rate.BytesOver(cfg.BaseRTT)
	}
	h := &Host{
		sim:       s,
		cfg:       cfg,
		txLane:    s.NewLane(),
		senders:   make(map[uint64]*transport.Sender),
		receivers: make(map[uint64]*transport.Receiver),
	}
	h.txDone = h.finishTx
	h.ctrDataSent = cfg.Obs.Ctr(obs.CtrDataSent)
	h.ctrRetransSent = cfg.Obs.Ctr(obs.CtrRetransSent)
	h.ctrAckSent = cfg.Obs.Ctr(obs.CtrAckSent)
	h.ctrDataConsumed = cfg.Obs.Ctr(obs.CtrDataConsumed)
	h.ctrAckRetired = cfg.Obs.Ctr(obs.CtrAckRetired)
	return h
}

// ID implements device.Endpoint.
func (h *Host) ID() packet.NodeID { return h.cfg.ID }

// Rate returns the NIC line rate.
func (h *Host) Rate() units.Rate { return h.cfg.Rate }

// Connect attaches the host's egress link (toward its leaf switch).
func (h *Host) Connect(l *device.Link) { h.link = l }

// Receive implements device.Endpoint: demultiplex to transport. The
// host is the packet's final owner: once the transport has consumed a
// data segment or retired an ACK, the packet returns to the free list.
func (h *Host) Receive(pkt *packet.Packet) {
	if pkt.Dst != h.cfg.ID {
		panic(fmt.Sprintf("host %d received packet for %d", h.cfg.ID, pkt.Dst))
	}
	if pkt.Is(packet.FlagACK) {
		if sn, ok := h.senders[pkt.FlowID]; ok {
			sn.OnAck(pkt)
		}
		h.ctrAckRetired.Inc()
		h.sim.FreePacket(pkt)
		return
	}
	h.ctrDataConsumed.Inc()
	h.RxBytes += pkt.Payload
	rc, ok := h.receivers[pkt.FlowID]
	if !ok {
		rc = transport.NewReceiver(h.sim, pkt.FlowID, h.cfg.ID, pkt.Src, h.Output)
		h.receivers[pkt.FlowID] = rc
	}
	rc.OnData(pkt)
	h.sim.FreePacket(pkt)
}

// Output enqueues a packet into the NIC FIFO; the NIC serializes at line
// rate onto the access link.
func (h *Host) Output(pkt *packet.Packet) {
	if pkt.Is(packet.FlagACK) {
		h.ctrAckSent.Inc()
	} else {
		h.ctrDataSent.Inc()
		if pkt.Is(packet.FlagRetransmit) {
			h.ctrRetransSent.Inc()
		}
	}
	h.queue = append(h.queue, pkt)
	h.maybeTransmit()
}

func (h *Host) maybeTransmit() {
	if h.busy || h.qhead >= len(h.queue) {
		return
	}
	pkt := h.queue[h.qhead]
	h.queue[h.qhead] = nil
	h.qhead++
	if h.qhead > 64 && h.qhead*2 >= len(h.queue) {
		n := copy(h.queue, h.queue[h.qhead:])
		h.queue = h.queue[:n]
		h.qhead = 0
	}
	h.busy = true
	h.txPkt = pkt
	h.sim.AfterLane(h.txLane, h.cfg.Rate.TxTime(pkt.Size()), h.txDone)
}

// finishTx completes the in-flight NIC transmission.
func (h *Host) finishTx() {
	pkt := h.txPkt
	h.txPkt = nil
	h.TxBytes += pkt.Size()
	if h.link == nil {
		panic(fmt.Sprintf("host %d has no uplink", h.cfg.ID))
	}
	h.link.Send(pkt)
	h.busy = false
	h.maybeTransmit()
}

// StartFlow creates a sender toward dst and begins transmitting
// immediately. The returned sender completes when every byte is
// acknowledged; onComplete may be nil.
func (h *Host) StartFlow(flowID uint64, dst packet.NodeID, size units.ByteCount,
	prio uint8, algo cc.Algorithm, onComplete func(now units.Time)) *transport.Sender {
	algo.Init(cc.Config{
		MSS:      h.cfg.MSS,
		BaseRTT:  h.cfg.BaseRTT,
		LineRate: h.cfg.Rate,
	})
	sn := transport.NewSender(h.sim, transport.Config{
		MSS:              h.cfg.MSS,
		MinRTO:           h.cfg.MinRTO,
		UnscheduledBytes: h.cfg.UnscheduledBytes,
		Prio:             prio,
		Obs:              h.cfg.Obs,
	}, algo, flowID, h.cfg.ID, dst, size, h.Output, onComplete)
	h.senders[flowID] = sn
	sn.Start()
	return sn
}

// Backlog returns the NIC queue depth in packets.
func (h *Host) Backlog() int { return len(h.queue) - h.qhead }

// Sender returns the sender for flowID, or nil.
func (h *Host) Sender(flowID uint64) *transport.Sender { return h.senders[flowID] }

// AdvanceReceiver moves flowID's receive point to stream offset to,
// creating the receiver if no packet has arrived yet (a flow can be
// demoted to fluid mode within its first RTT). The hybrid engine calls
// it at promotion so receiver-side accounting matches the fluid
// trajectory; peer is the data sender. The credited payload also counts
// toward the host's goodput.
func (h *Host) AdvanceReceiver(flowID uint64, peer packet.NodeID, to int64) {
	rc, ok := h.receivers[flowID]
	if !ok {
		rc = transport.NewReceiver(h.sim, flowID, h.cfg.ID, peer, h.Output)
		h.receivers[flowID] = rc
	}
	before := rc.BytesReceived
	rc.AdvanceTo(to)
	h.RxBytes += rc.BytesReceived - before
}

// EachSender visits every sender created on this host.
func (h *Host) EachSender(f func(*transport.Sender)) {
	for _, sn := range h.senders {
		f(sn)
	}
}

// ActiveSenders counts unfinished flows originating here.
func (h *Host) ActiveSenders() int {
	n := 0
	for _, sn := range h.senders {
		if !sn.Finished() {
			n++
		}
	}
	return n
}
