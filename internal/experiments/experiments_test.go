package experiments

import (
	"bytes"
	"strings"
	"testing"

	"abm/internal/units"
)

func TestScaleParsing(t *testing.T) {
	for _, name := range []string{"small", "medium", "paper"} {
		sc, err := ParseScale(name)
		if err != nil {
			t.Fatalf("ParseScale(%q): %v", name, err)
		}
		if sc.String() != name {
			t.Fatalf("round trip %q -> %q", name, sc.String())
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBasicCell(t *testing.T) {
	res, err := Run(Cell{
		Scale: ScaleSmall, Seed: 1,
		BM: "DT", Load: 0.3, WSCC: "cubic",
		RequestFrac: 0.3,
		Duration:    10 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.Flows == 0 {
		t.Fatal("no flows generated")
	}
	if s.Flows-s.Unfinished == 0 {
		t.Fatal("no flows finished")
	}
	if s.P99IncastSlowdown < 1 {
		t.Fatalf("incast slowdown = %v, must be >= 1", s.P99IncastSlowdown)
	}
	if s.P99BufferFrac <= 0 {
		t.Fatal("no buffer occupancy observed")
	}
	if res.Events == 0 {
		t.Fatal("no events executed")
	}
}

func TestRunABMWithHeadroom(t *testing.T) {
	res, err := Run(Cell{
		Scale: ScaleSmall, Seed: 2,
		BM: "ABM", Load: 0.3, WSCC: "dctcp",
		RequestFrac: 0.3,
		Duration:    10 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Flows-res.Summary.Unfinished == 0 {
		t.Fatal("no flows finished under ABM")
	}
}

func TestRunRejectsUnknownNames(t *testing.T) {
	if _, err := Run(Cell{Scale: ScaleSmall, BM: "DT", Load: 0.1, WSCC: "bogus",
		Duration: units.Millisecond}); err == nil {
		t.Fatal("expected cc error")
	}
}

func TestRunRejectsUnknownBM(t *testing.T) {
	// Unknown policies used to panic out of the per-switch factory; name
	// validation now happens once, during scenario resolution.
	if _, err := Run(Cell{Scale: ScaleSmall, BM: "bogus", Load: 0.1, WSCC: "cubic",
		Duration: units.Millisecond}); err == nil {
		t.Fatal("expected bm error")
	}
}

func TestMixedCCPerPrioResults(t *testing.T) {
	res, err := Run(Cell{
		Scale: ScaleSmall, Seed: 3,
		BM: "ABM", Load: 0.4,
		QueuesPerPort: 3,
		MixedCC: []CCAssignment{
			{CC: "cubic", Prio: 0},
			{CC: "dctcp", Prio: 1},
		},
		RequestFrac: 0.2,
		IncastCC:    "theta-powertcp",
		IncastPrio:  2,
		Duration:    10 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerPrioP99Short) != 3 {
		t.Fatalf("per-prio results = %v", res.PerPrioP99Short)
	}
}

func TestFig4Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 4") || strings.Count(out, "\n") < 40 {
		t.Fatalf("fig4 output too short:\n%s", out)
	}
}

func TestFig5Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig5(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "\n") < 70 {
		t.Fatal("fig5 output too short")
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if err := RunFigure("fig99", ScaleSmall, 1, &bytes.Buffer{}); err == nil {
		t.Fatal("expected error")
	}
}

// TestFigureRunnersSmoke runs the light analytic figures and one tiny
// simulated cell from each family to keep CI fast; full figures run via
// the benchmarks and cmd/figures.
func TestFigureRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke tests skipped in -short")
	}
	for _, id := range []string{"fig4", "fig5"} {
		var buf bytes.Buffer
		if err := RunFigure(id, ScaleSmall, 1, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", id)
		}
	}
}

// TestFig8Runner exercises one full simulated figure end to end (the
// cheapest one: six cells on the small fabric).
func TestFig8Runner(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	var buf bytes.Buffer
	if err := Fig8(ScaleSmall, 1, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// Header comment + column header + 2 BMs x 3 loads.
	if len(lines) != 8 {
		t.Fatalf("fig8 rows = %d, want 8:\n%s", len(lines), buf.String())
	}
	for _, line := range lines[2:] {
		if !strings.HasPrefix(line, "DT\t") && !strings.HasPrefix(line, "ABM\t") {
			t.Fatalf("unexpected row %q", line)
		}
	}
}
