package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"abm/internal/obs"
	"abm/internal/runner"
	"abm/internal/scenario"
)

// RunOptions configures how a figure's cells are executed on the
// runner pool. The zero value (or a nil pointer) runs cells in parallel
// across all CPUs with no timeout, no retries and no persistence —
// the default for RunFigure.
type RunOptions struct {
	// Workers is the cell-level parallelism; <=0 means NumCPU.
	Workers int
	// Shards, when >=1, runs every cell on the topology-sharded
	// parallel engine with that many shards (see Cell.Shards); 0 keeps
	// each cell's own setting. The pool caps Workers so that
	// shards x workers stays within GOMAXPROCS.
	Shards int
	// Timeout bounds each cell's wall-clock time; 0 means none.
	Timeout time.Duration
	// Retries re-runs cells that fail with an error.
	Retries int
	// Store, when non-nil, persists one JSON record per cell and lets
	// completed cells be skipped when the same figure re-runs.
	Store *runner.Store
	// Progress, when non-nil, receives live progress/ETA lines.
	Progress io.Writer
	// Obs enables telemetry on every cell. With PerJob set (the flag
	// surface's default for figures), the path fields are directories
	// and each job writes its own files, named by its sanitized ID.
	Obs obs.Options
	// Fabric, when non-nil, overlays an explicit fabric shape on every
	// cell (see Cell.Fabric) — how "figures -scenario" reruns a figure's
	// axes on a fabric loaded from a scenario file.
	Fabric *scenario.Fabric
}

// pool builds the runner pool an options value describes.
func (o *RunOptions) pool() *runner.Pool {
	if o == nil {
		o = &RunOptions{}
	}
	p := &runner.Pool{
		Workers:   o.Workers,
		JobShards: o.Shards,
		Timeout:   o.Timeout,
		Retries:   o.Retries,
		Progress:  o.Progress,
	}
	// Pool.Store is an interface: assigning a nil *runner.Store would
	// make it non-nil and turn persistence on with no store behind it.
	if o.Store != nil {
		p.Store = o.Store
	}
	return p
}

// cellJob is one labeled cell of a figure's grid.
type cellJob struct {
	label string
	cell  Cell
}

// runCells executes a figure's cells on the runner pool and returns
// their results in input order. Cells keep their explicit seeds (a
// figure's TSV is a pure function of the figure seed), run in parallel,
// and each lands as one JSON record in the options' store when set. A
// cell that fails — including one that panics — fails the figure with
// its job ID attached, after the remaining cells finish.
func runCells(o *RunOptions, experiment string, jobs []cellJob) ([]Result, error) {
	plan := &runner.Plan{Name: experiment}
	for i, job := range jobs {
		cell := job.cell
		if o != nil && o.Shards >= 1 {
			cell.Shards = o.Shards
		}
		if o != nil && o.Fabric != nil {
			cell.Fabric = o.Fabric
		}
		id := fmt.Sprintf("%s/%03d-%s", experiment, i, job.label)
		if o != nil && o.Obs.Active() {
			cell.Obs = o.Obs.ForJob(id)
		}
		plan.Add(runner.Spec{
			ID:         id,
			Experiment: experiment,
			Group:      job.label,
			Seed:       cell.Seed,
			Config:     cell,
			Run: func(ctx context.Context, seed int64) (runner.Result, error) {
				c := cell
				c.Seed = seed
				res, err := Run(c)
				if err != nil {
					return runner.Result{}, err
				}
				return runnerResult(res), nil
			},
		})
	}
	records, err := o.pool().Run(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(records))
	for i, rec := range records {
		if !rec.OK() {
			return nil, fmt.Errorf("experiments: %s: %s (%s)", rec.ID, rec.Error, rec.Status)
		}
		results[i] = resultFromRecord(rec)
		results[i].Cell = jobs[i].cell
	}
	return results, nil
}

// perPrioKey names a per-priority p99 short-flow metric in a record's
// Extra map.
func perPrioKey(prio uint8) string { return fmt.Sprintf("p99_short_prio%d", prio) }

// runnerResult converts a cell result into the runner's record payload.
func runnerResult(res Result) runner.Result {
	out := runner.Result{
		Summary:          res.Summary,
		Events:           res.Events,
		Drops:            res.Drops,
		UnscheduledDrops: res.UnscheduledDrops,
		Counters:         res.Counters,
		Hists:            res.Hists,
		Scenario:         res.Resolved,
	}
	if len(res.PerPrioP99Short) > 0 {
		out.Extra = make(map[string]float64, len(res.PerPrioP99Short))
		for prio, v := range res.PerPrioP99Short {
			out.Extra[perPrioKey(prio)] = v
		}
	}
	return out
}

// resultFromRecord reverses runnerResult, so cached records served from
// a store render identically to freshly computed ones.
func resultFromRecord(rec runner.Record) Result {
	res := Result{
		Summary:          rec.Result.Summary,
		Events:           rec.Result.Events,
		Drops:            rec.Result.Drops,
		UnscheduledDrops: rec.Result.UnscheduledDrops,
		Counters:         rec.Result.Counters,
		Hists:            rec.Result.Hists,
	}
	for key, v := range rec.Result.Extra {
		var prio uint8
		if _, err := fmt.Sscanf(key, "p99_short_prio%d", &prio); err == nil {
			if res.PerPrioP99Short == nil {
				res.PerPrioP99Short = make(map[uint8]float64)
			}
			res.PerPrioP99Short[prio] = v
		}
	}
	return res
}
