package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"abm/internal/obs"
	"abm/internal/runner"
	"abm/internal/scenario"
	"abm/internal/units"
)

// Grid describes a cross-product sweep of evaluation cells for
// cmd/sweep: every combination of buffer-management scheme, congestion
// control, load, incast request size and alpha, replicated Reps times
// with per-replication seeds derived from the plan seed. It is the
// JSON schema of a plan file.
type Grid struct {
	// Name labels the sweep; it prefixes every job ID.
	Name string `json:"name"`
	// Scale is the fabric scale: small, medium or paper. Default small.
	Scale string `json:"scale"`
	// Seed is the plan seed replication seeds derive from. Default 1.
	Seed int64 `json:"seed"`
	// Reps is the number of seed replications per configuration.
	// Default 1.
	Reps int `json:"reps"`

	// Axes. Empty axes collapse to a single default point.
	BMs          []string  `json:"bms"`           // default ["ABM"]
	CCs          []string  `json:"ccs"`           // default ["cubic"]
	Loads        []float64 `json:"loads"`         // default [0.4]
	RequestFracs []float64 `json:"request_fracs"` // default [0.3]
	Alphas       []float64 `json:"alphas"`        // default [0] = scheme default (0.5)

	// Scalar knobs applied to every cell.
	QueuesPerPort int     `json:"queues_per_port,omitempty"`
	Workload      string  `json:"workload,omitempty"`
	Trimming      bool    `json:"trimming,omitempty"`
	DurationMS    float64 `json:"duration_ms,omitempty"`
	// Shards runs every cell on the topology-sharded parallel engine
	// with that many shards (see Cell.Shards); 0 keeps the serial loop.
	Shards int `json:"shards,omitempty"`
	// TimeoutSec bounds each job's wall-clock seconds; 0 means none.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
	// Obs enables telemetry on every job; with PerJob set the path
	// fields are directories holding one file per job.
	Obs obs.Options `json:"obs,omitempty"`

	// Scenario switches the grid to scenario mode: every job starts from
	// this scenario JSON file and the Vary axes mutate it by field path.
	// The cell axes above (BMs, CCs, ...) are ignored in this mode.
	Scenario string `json:"scenario,omitempty"`
	// Vary are the scenario-mode sweep axes, crossed in order. Axis
	// order is part of the job-ID/seed contract, exactly like the fixed
	// bm/cc/load/request/alpha order of cell mode.
	Vary []PathAxis `json:"vary,omitempty"`
}

// PathAxis is one scenario-mode sweep axis: a dotted scenario field
// path (see scenario.SetField) and the values it steps through.
type PathAxis struct {
	Path   string   `json:"path"`
	Values []string `json:"values"`
}

// normalized fills the documented defaults.
func (g Grid) normalized() Grid {
	if g.Name == "" {
		g.Name = "sweep"
	}
	if g.Scale == "" {
		g.Scale = "small"
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	if g.Reps <= 0 {
		g.Reps = 1
	}
	if len(g.BMs) == 0 {
		g.BMs = []string{"ABM"}
	}
	if len(g.CCs) == 0 {
		g.CCs = []string{"cubic"}
	}
	if len(g.Loads) == 0 {
		g.Loads = []float64{0.4}
	}
	if len(g.RequestFracs) == 0 {
		g.RequestFracs = []float64{0.3}
	}
	if len(g.Alphas) == 0 {
		g.Alphas = []float64{0}
	}
	return g
}

// Jobs returns the number of jobs the grid expands to.
func (g Grid) Jobs() int {
	g = g.normalized()
	if g.Scenario != "" {
		n := g.Reps
		for _, axis := range g.Vary {
			n *= len(axis.Values)
		}
		return n
	}
	return len(g.BMs) * len(g.CCs) * len(g.Loads) * len(g.RequestFracs) * len(g.Alphas) * g.Reps
}

// Plan expands the grid into a runner plan: one job per configuration
// and replication, in a fixed axis order (bm, cc, load, request, alpha,
// rep — or the declared Vary order in scenario mode), so job indexes —
// and therefore derived seeds — are stable across runs and worker
// counts.
func (g Grid) Plan() (*runner.Plan, error) {
	g = g.normalized()
	if g.Scenario != "" {
		return g.scenarioPlan()
	}
	scale, err := ParseScale(g.Scale)
	if err != nil {
		return nil, err
	}
	timeout := time.Duration(g.TimeoutSec * float64(time.Second))
	plan := &runner.Plan{Name: g.Name, Seed: g.Seed}
	for _, bmName := range g.BMs {
		for _, ccName := range g.CCs {
			for _, load := range g.Loads {
				for _, frac := range g.RequestFracs {
					for _, alpha := range g.Alphas {
						cell := Cell{
							Scale: scale,
							BM:    bmName, Load: load, WSCC: ccName,
							RequestFrac:   frac,
							Alpha:         alpha,
							QueuesPerPort: g.QueuesPerPort,
							Workload:      g.Workload,
							Trimming:      g.Trimming,
							Shards:        g.Shards,
							Duration:      units.Time(g.DurationMS * float64(units.Millisecond)),
						}
						group := fmt.Sprintf("bm=%s,cc=%s,load=%g,req=%g,alpha=%g",
							bmName, ccName, load, frac, alpha)
						for rep := 0; rep < g.Reps; rep++ {
							cell := cell
							id := fmt.Sprintf("%s/%04d-%s,rep=%d", g.Name, len(plan.Specs), group, rep)
							if g.Obs.Active() {
								cell.Obs = g.Obs.ForJob(id)
							}
							plan.Add(runner.Spec{
								ID:         id,
								Experiment: g.Name,
								Group:      group,
								Timeout:    timeout,
								Config:     cell,
								Run: func(ctx context.Context, seed int64) (runner.Result, error) {
									c := cell
									c.Seed = seed
									res, err := Run(c)
									if err != nil {
										return runner.Result{}, err
									}
									return runnerResult(res), nil
								},
							})
						}
					}
				}
			}
		}
	}
	return plan, nil
}

// scenarioPlan expands the Vary axes over the base scenario file into a
// runner plan. Every axis combination is validated up front (bad field
// paths or values fail the whole sweep before any job runs), and each
// job's record embeds the fully-resolved scenario it executed.
func (g Grid) scenarioPlan() (*runner.Plan, error) {
	base, err := scenario.Load(g.Scenario)
	if err != nil {
		return nil, err
	}
	for _, axis := range g.Vary {
		if axis.Path == "" || len(axis.Values) == 0 {
			return nil, fmt.Errorf("experiments: vary axis %q needs a path and at least one value", axis.Path)
		}
	}
	timeout := time.Duration(g.TimeoutSec * float64(time.Second))
	plan := &runner.Plan{Name: g.Name, Seed: g.Seed}

	// Walk the cross product in declared axis order, rightmost axis
	// fastest — the scenario-mode analogue of the fixed cell-axis order.
	choice := make([]int, len(g.Vary))
	for {
		sc := base.Clone()
		var parts []string
		for i, axis := range g.Vary {
			value := axis.Values[choice[i]]
			if err := scenario.SetField(&sc, axis.Path, value); err != nil {
				return nil, fmt.Errorf("experiments: %w", err)
			}
			parts = append(parts, fmt.Sprintf("%s=%s", axis.Path, value))
		}
		if g.Shards >= 1 {
			sc.Shards = g.Shards
		}
		group := strings.Join(parts, ",")
		if group == "" {
			group = "scenario"
		}
		for rep := 0; rep < g.Reps; rep++ {
			job := sc.Clone()
			id := fmt.Sprintf("%s/%04d-%s,rep=%d", g.Name, len(plan.Specs), group, rep)
			if g.Obs.Active() {
				job.Obs = g.Obs.ForJob(id)
			}
			plan.Add(runner.Spec{
				ID:         id,
				Experiment: g.Name,
				Group:      group,
				Timeout:    timeout,
				Config:     job,
				Run: func(ctx context.Context, seed int64) (runner.Result, error) {
					c := job.Clone()
					c.Seed = seed
					res, _, err := scenario.Run(c)
					if err != nil {
						return runner.Result{}, err
					}
					return runnerResult(Result{
						Summary:          res.Summary,
						PerPrioP99Short:  res.PerPrioP99Short,
						Drops:            res.Drops,
						UnscheduledDrops: res.UnscheduledDrops,
						Events:           res.Events,
						Counters:         res.Counters,
						Hists:            res.Hists,
						Resolved:         res.Scenario,
					}), nil
				},
			})
		}
		// Advance the odometer; done when the leftmost axis wraps.
		i := len(choice) - 1
		for ; i >= 0; i-- {
			choice[i]++
			if choice[i] < len(g.Vary[i].Values) {
				break
			}
			choice[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return plan, nil
}
