package experiments

import (
	"context"
	"fmt"
	"io"

	"abm/internal/bm"
	"abm/internal/burstlab"
	"abm/internal/runner"
	"abm/internal/units"
)

// fig5simProbe is one burst-tolerance measurement point.
type fig5simProbe struct {
	scheme  string
	ports   int
	queues  int
	rateX10 int
}

// measureBurst runs one burst-lab measurement for a probe.
func measureBurst(p fig5simProbe) units.ByteCount {
	cfg := burstlab.Config{
		Seed:           1,
		CongestedPorts: p.ports,
		QueuesPerPort:  p.queues,
		BurstRate:      units.Rate(p.rateX10) * 10 * units.GigabitPerSec,
	}
	if p.scheme == "ABM" {
		cfg.BM = func() bm.Policy { return bm.ABM{} }
		cfg.Unscheduled = true
		cfg.Headroom = 512 * units.Kilobyte
		cfg.Buffer = 5*units.Megabyte - cfg.Headroom
	} else {
		cfg.BM = func() bm.Policy { return bm.DT{} }
	}
	return burstlab.Measure(cfg).Tolerance
}

// Fig5Sim regenerates Figure 5's burst-tolerance surfaces by measuring
// them on the packet simulator (package burstlab) instead of the fluid
// model — a cross-check that the analytic shapes of Fig5 survive
// packetization, scheduling, and periodic statistics updates. The
// probes run as generic jobs on the runner pool: the burst lab is not
// an evaluation Cell, so this is the subsystem's non-Cell client.
func Fig5Sim(w io.Writer) error { return fig5sim(nil, w) }

func fig5sim(o *RunOptions, w io.Writer) error {
	var probes []fig5simProbe
	for _, r := range []int{10, 15, 20} {
		for ports := 2; ports <= 14; ports += 4 {
			probes = append(probes,
				fig5simProbe{"DT", ports, 1, r}, fig5simProbe{"ABM", ports, 1, r})
		}
	}
	queueStart := len(probes)
	for _, r := range []int{10, 15, 20} {
		for queues := 2; queues <= 8; queues += 2 {
			probes = append(probes,
				fig5simProbe{"DT", 4, queues, r}, fig5simProbe{"ABM", 4, queues, r})
		}
	}

	plan := &runner.Plan{Name: "fig5sim"}
	for i, p := range probes {
		probe := p
		plan.Add(runner.Spec{
			ID: fmt.Sprintf("fig5sim/%02d-%s,ports=%d,queues=%d,rate=%dx",
				i, probe.scheme, probe.ports, probe.queues, probe.rateX10),
			Experiment: "fig5sim",
			Group: fmt.Sprintf("%s,ports=%d,queues=%d,rate=%dx",
				probe.scheme, probe.ports, probe.queues, probe.rateX10),
			Seed:   1, // the burst lab is seeded internally
			Config: map[string]any{"scheme": probe.scheme, "ports": probe.ports, "queues": probe.queues, "rate_x10g": probe.rateX10},
			Run: func(_ context.Context, _ int64) (runner.Result, error) {
				tol := measureBurst(probe)
				return runner.Result{Extra: map[string]float64{"tolerance_mb": mb(tol)}}, nil
			},
		})
	}
	records, err := o.pool().Run(context.Background(), plan)
	if err != nil {
		return err
	}
	tol := make([]float64, len(records))
	for i, rec := range records {
		if !rec.OK() {
			return fmt.Errorf("experiments: %s: %s (%s)", rec.ID, rec.Error, rec.Status)
		}
		tol[i] = rec.Result.Extra["tolerance_mb"]
	}

	fmt.Fprintln(w, "# Figure 5 (simulated): burst tolerance (MB) vs burst rate and congested ports")
	fmt.Fprintln(w, "rate_x10G\tports\tDT_MB\tABM_MB")
	i := 0
	for _, r := range []int{10, 15, 20} {
		for ports := 2; ports <= 14; ports += 4 {
			fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3f\n", r, ports, tol[i], tol[i+1])
			i += 2
		}
	}
	if i != queueStart {
		return fmt.Errorf("experiments: fig5sim probe bookkeeping off: %d != %d", i, queueStart)
	}
	fmt.Fprintln(w, "# Figure 5 (simulated): burst tolerance (MB) vs burst rate and congested queues per port")
	fmt.Fprintln(w, "rate_x10G\tqueues\tDT_MB\tABM_MB")
	for _, r := range []int{10, 15, 20} {
		for queues := 2; queues <= 8; queues += 2 {
			fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3f\n", r, queues, tol[i], tol[i+1])
			i += 2
		}
	}
	return nil
}
