package experiments

import (
	"fmt"
	"io"

	"abm/internal/bm"
	"abm/internal/burstlab"
	"abm/internal/units"
)

// Fig5Sim regenerates Figure 5's burst-tolerance surfaces by measuring
// them on the packet simulator (package burstlab) instead of the fluid
// model — a cross-check that the analytic shapes of Fig5 survive
// packetization, scheduling, and periodic statistics updates.
func Fig5Sim(w io.Writer) error {
	measure := func(scheme string, ports, queues, rateX10 int) units.ByteCount {
		cfg := burstlab.Config{
			Seed:           1,
			CongestedPorts: ports,
			QueuesPerPort:  queues,
			BurstRate:      units.Rate(rateX10) * 10 * units.GigabitPerSec,
		}
		if scheme == "ABM" {
			cfg.BM = func() bm.Policy { return bm.ABM{} }
			cfg.Unscheduled = true
			cfg.Headroom = 512 * units.Kilobyte
			cfg.Buffer = 5*units.Megabyte - cfg.Headroom
		} else {
			cfg.BM = func() bm.Policy { return bm.DT{} }
		}
		return burstlab.Measure(cfg).Tolerance
	}

	fmt.Fprintln(w, "# Figure 5 (simulated): burst tolerance (MB) vs burst rate and congested ports")
	fmt.Fprintln(w, "rate_x10G\tports\tDT_MB\tABM_MB")
	for _, r := range []int{10, 15, 20} {
		for ports := 2; ports <= 14; ports += 4 {
			fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3f\n", r, ports,
				mb(measure("DT", ports, 1, r)), mb(measure("ABM", ports, 1, r)))
		}
	}
	fmt.Fprintln(w, "# Figure 5 (simulated): burst tolerance (MB) vs burst rate and congested queues per port")
	fmt.Fprintln(w, "rate_x10G\tqueues\tDT_MB\tABM_MB")
	for _, r := range []int{10, 15, 20} {
		for queues := 2; queues <= 8; queues += 2 {
			fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3f\n", r, queues,
				mb(measure("DT", 4, queues, r)), mb(measure("ABM", 4, queues, r)))
		}
	}
	return nil
}
