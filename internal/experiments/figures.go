package experiments

import (
	"fmt"
	"io"

	"abm/internal/analytic"
	"abm/internal/units"
)

// FigureIDs lists the figure identifiers, in paper order. "fig5sim" is
// the simulated (packet-level) cross-check of the analytic Figure 5.
var FigureIDs = []string{"fig4", "fig5", "fig5sim", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "ablation", "alphasweep", "extracc"}

// RunFigure dispatches a figure by id, writing a TSV table to w. Cells
// run in parallel on the runner pool with default options; the output
// is identical at any worker count.
func RunFigure(id string, scale Scale, seed int64, w io.Writer) error {
	return RunFigureOpts(nil, id, scale, seed, w)
}

// RunFigureOpts is RunFigure with explicit execution options: worker
// count, per-cell timeout and retries, an optional JSON record store,
// and progress reporting.
func RunFigureOpts(o *RunOptions, id string, scale Scale, seed int64, w io.Writer) error {
	switch id {
	case "fig4":
		return Fig4(w)
	case "fig5":
		return Fig5(w)
	case "fig5sim":
		return fig5sim(o, w)
	case "fig6":
		return fig6(o, scale, seed, w)
	case "fig7":
		return fig7(o, scale, seed, w)
	case "fig8":
		return fig8(o, scale, seed, w)
	case "fig9":
		return fig9(o, scale, seed, w)
	case "fig10":
		return fig10(o, scale, seed, w)
	case "fig11":
		return fig11(o, scale, seed, w)
	case "fig12":
		return fig12(o, scale, seed, w)
	case "ablation":
		return runAblation(o, scale, seed, w)
	case "alphasweep":
		return runAlphaSweep(o, scale, seed, w)
	case "extracc":
		return runExtraCC(o, scale, seed, w)
	default:
		return fmt.Errorf("experiments: unknown figure %q (known: %v)", id, FigureIDs)
	}
}

// Fig4 regenerates Figure 4 (analytic): DT's unbounded allocation as
// congested queues multiply (top) and the priority inversion between a
// high-alpha and a low-alpha priority (bottom).
func Fig4(w io.Writer) error {
	fmt.Fprintln(w, "# Figure 4 (top): DT occupied buffer % vs congested queues (alpha=0.5)")
	fmt.Fprintln(w, "queues\toccupied_pct")
	b := units.ByteCount(5 * units.Megabyte)
	for n := 1; n <= 20; n++ {
		_, total := analytic.DTSteadyOccupancy(b, []analytic.PriorityLoad{{Alpha: 0.5, Congested: n}})
		fmt.Fprintf(w, "%d\t%.1f\n", n, 100*float64(total)/float64(b))
	}
	fmt.Fprintln(w, "# Figure 4 (bottom): priority inversion, alpha1=8 (loss-sensitive, 2 queues), alpha2=1 (best effort, growing)")
	fmt.Fprintln(w, "queues_prio1\tprio_loss_sensitive_pct\tprio_best_effort_pct")
	for n := 1; n <= 20; n++ {
		per, _ := analytic.DTSteadyOccupancy(b, []analytic.PriorityLoad{
			{Alpha: 8, Congested: 2},
			{Alpha: 1, Congested: n},
		})
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\n", n,
			100*float64(per[0])/float64(b), 100*float64(per[1])/float64(b))
	}
	return nil
}

// Fig5 regenerates Figure 5 (analytic): burst tolerance surfaces for DT
// (a: vs congested ports, b: vs congested queues) and ABM (c, d).
func Fig5(w io.Writer) error {
	base := analytic.BurstScenario{
		B:          5 * units.Megabyte,
		PortRate:   10 * units.GigabitPerSec,
		Alpha:      0.5,
		AlphaBurst: 64,
	}
	fmt.Fprintln(w, "# Figure 5a/5c: burst tolerance (MB) vs burst rate (x10Gbps) and congested ports")
	fmt.Fprintln(w, "rate_x10G\tports\tDT_MB\tABM_MB")
	for r := 10; r <= 20; r += 2 {
		for ports := 2; ports <= 14; ports += 2 {
			s := base
			s.BurstRate = units.Rate(r) * 10 * units.GigabitPerSec
			s.CongestedPorts = ports
			s.QueuesPerPort = 1
			fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3f\n", r, ports,
				mb(s.DTBurstTolerance()), mb(s.ABMBurstTolerance()))
		}
	}
	fmt.Fprintln(w, "# Figure 5b/5d: burst tolerance (MB) vs burst rate (x10Gbps) and congested queues per port")
	fmt.Fprintln(w, "rate_x10G\tqueues\tDT_MB\tABM_MB")
	for r := 10; r <= 20; r += 2 {
		for queues := 2; queues <= 8; queues++ {
			s := base
			s.BurstRate = units.Rate(r) * 10 * units.GigabitPerSec
			s.CongestedPorts = 4
			s.QueuesPerPort = queues
			fmt.Fprintf(w, "%d\t%d\t%.3f\t%.3f\n", r, queues,
				mb(s.DTBurstTolerance()), mb(s.ABMBurstTolerance()))
		}
	}
	return nil
}

func mb(b units.ByteCount) float64 { return float64(b) / float64(units.Megabyte) }

// Fig6BMs are the buffer-management baselines of Figures 6-7.
var Fig6BMs = []string{"DT", "FAB", "CS", "IB", "ABM"}

// fig6Loads are Figure 6's web-search load points.
var fig6Loads = []float64{0.2, 0.4, 0.6, 0.8}

// Fig6 regenerates Figure 6: BM schemes under web-search load 20-80%
// plus incast at 30% of the buffer, all flows Cubic.
func Fig6(scale Scale, seed int64, w io.Writer) error { return fig6(nil, scale, seed, w) }

func fig6(o *RunOptions, scale Scale, seed int64, w io.Writer) error {
	var jobs []cellJob
	for _, bmName := range Fig6BMs {
		for _, load := range fig6Loads {
			jobs = append(jobs, cellJob{
				label: fmt.Sprintf("bm=%s,load=%g", bmName, load),
				cell: Cell{
					Scale: scale, Seed: seed,
					BM: bmName, Load: load, WSCC: "cubic",
					RequestFrac: 0.3,
				},
			})
		}
	}
	results, err := runCells(o, "fig6", jobs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Figure 6: BM under load (incast 30% of buffer, cubic)")
	fmt.Fprintln(w, "bm\tload\tp99_incast_slowdown\tp99_short_slowdown\tp99_buffer_pct\tavg_tput_pct\tflows\tunfinished")
	i := 0
	for _, bmName := range Fig6BMs {
		for _, load := range fig6Loads {
			s := results[i].Summary
			i++
			fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\t%d\t%d\n",
				bmName, load*100, s.P99IncastSlowdown, s.P99ShortSlowdown,
				100*s.P99BufferFrac, 100*s.AvgThroughputFrac, s.Flows, s.Unfinished)
		}
	}
	return nil
}

// fig7Fracs are Figure 7's incast request sizes (fractions of the
// buffer).
var fig7Fracs = []float64{0.1, 0.25, 0.5, 0.75}

// Fig7 regenerates Figure 7: BM schemes across incast request sizes at
// 40% web-search load.
func Fig7(scale Scale, seed int64, w io.Writer) error { return fig7(nil, scale, seed, w) }

func fig7(o *RunOptions, scale Scale, seed int64, w io.Writer) error {
	var jobs []cellJob
	for _, bmName := range Fig6BMs {
		for _, frac := range fig7Fracs {
			jobs = append(jobs, cellJob{
				label: fmt.Sprintf("bm=%s,req=%g", bmName, frac),
				cell: Cell{
					Scale: scale, Seed: seed,
					BM: bmName, Load: 0.4, WSCC: "cubic",
					RequestFrac: frac,
				},
			})
		}
	}
	results, err := runCells(o, "fig7", jobs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Figure 7: BM under request sizes (load 40%, cubic)")
	fmt.Fprintln(w, "bm\treq_frac_pct\tp99_incast_slowdown\tp99_short_slowdown\tp99_buffer_pct\tavg_tput_pct\tflows\tunfinished")
	i := 0
	for _, bmName := range Fig6BMs {
		for _, frac := range fig7Fracs {
			s := results[i].Summary
			i++
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%d\t%d\n",
				bmName, frac*100, s.P99IncastSlowdown, s.P99ShortSlowdown,
				100*s.P99BufferFrac, 100*s.AvgThroughputFrac, s.Flows, s.Unfinished)
		}
	}
	return nil
}

// fig8Loads are Figure 8's Cubic load points.
var fig8Loads = []float64{0.2, 0.4, 0.6}

// Fig8 regenerates Figure 8: three priorities carrying Cubic, DCTCP and
// θ-PowerTCP; the Cubic load grows while the others stay fixed; DT vs
// ABM. Reports per-priority p99 short-flow slowdowns.
func Fig8(scale Scale, seed int64, w io.Writer) error { return fig8(nil, scale, seed, w) }

func fig8(o *RunOptions, scale Scale, seed int64, w io.Writer) error {
	var jobs []cellJob
	for _, bmName := range []string{"DT", "ABM"} {
		for _, load := range fig8Loads {
			jobs = append(jobs, cellJob{
				label: fmt.Sprintf("bm=%s,load=%g", bmName, load),
				cell: Cell{
					Scale: scale, Seed: seed,
					BM:            bmName,
					Load:          load + 0.2, // cubic at `load` + dctcp fixed at 0.2, interleaved
					QueuesPerPort: 3,
					MixedCC: []CCAssignment{
						{CC: "cubic", Prio: 0},
						{CC: "dctcp", Prio: 1},
					},
					RequestFrac: 0.25,
					IncastCC:    "theta-powertcp",
					IncastPrio:  2,
				},
			})
		}
	}
	results, err := runCells(o, "fig8", jobs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Figure 8: isolation across priorities (cubic prio0, dctcp prio1, theta-powertcp incast prio2)")
	fmt.Fprintln(w, "bm\tcubic_load\tp99_cubic\tp99_dctcp\tp99_theta\tp99_buffer_pct")
	i := 0
	for _, bmName := range []string{"DT", "ABM"} {
		for _, load := range fig8Loads {
			res := results[i]
			i++
			fmt.Fprintf(w, "%s\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\n",
				bmName, load*100,
				res.PerPrioP99Short[0], res.PerPrioP99Short[1], res.PerPrioP99Short[2],
				100*res.Summary.P99BufferFrac)
		}
	}
	return nil
}

// fig9CCs are Figure 9's congestion-control algorithms.
var fig9CCs = []string{"cubic", "dctcp", "timely", "powertcp"}

// Fig9 regenerates Figure 9: advanced congestion control with default
// buffer management (DT) vs with ABM, across incast request sizes.
func Fig9(scale Scale, seed int64, w io.Writer) error { return fig9(nil, scale, seed, w) }

func fig9(o *RunOptions, scale Scale, seed int64, w io.Writer) error {
	var jobs []cellJob
	for _, ccName := range fig9CCs {
		for _, frac := range fig7Fracs {
			for _, bmName := range []string{"DT", "ABM"} {
				jobs = append(jobs, cellJob{
					label: fmt.Sprintf("cc=%s,req=%g,bm=%s", ccName, frac, bmName),
					cell: Cell{
						Scale: scale, Seed: seed,
						BM: bmName, Load: 0.4, WSCC: ccName,
						RequestFrac: frac,
					},
				})
			}
		}
	}
	results, err := runCells(o, "fig9", jobs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Figure 9: advanced CC x request size, DT (default) vs ABM")
	fmt.Fprintln(w, "cc\treq_frac_pct\tp99_incast_DT\tp99_incast_ABM")
	i := 0
	for _, ccName := range fig9CCs {
		for _, frac := range fig7Fracs {
			dt := results[i].Summary.P99IncastSlowdown
			abm := results[i+1].Summary.P99IncastSlowdown
			i += 2
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\n", ccName, frac*100, dt, abm)
		}
	}
	return nil
}

// fig10QPPs are Figure 10's queues-per-port points.
var fig10QPPs = []int{2, 4, 6, 8}

// Fig10 regenerates Figure 10: the queues-per-port sweep under stable
// load, Cubic and DCTCP, DT vs ABM.
func Fig10(scale Scale, seed int64, w io.Writer) error { return fig10(nil, scale, seed, w) }

func fig10(o *RunOptions, scale Scale, seed int64, w io.Writer) error {
	var jobs []cellJob
	for _, ccName := range []string{"cubic", "dctcp"} {
		for _, bmName := range []string{"DT", "ABM"} {
			for _, qpp := range fig10QPPs {
				jobs = append(jobs, cellJob{
					label: fmt.Sprintf("cc=%s,bm=%s,qpp=%d", ccName, bmName, qpp),
					cell: Cell{
						Scale: scale, Seed: seed,
						BM: bmName, Load: 0.4, WSCC: ccName,
						RequestFrac:   0.25,
						QueuesPerPort: qpp,
						RandomPrio:    true,
					},
				})
			}
		}
	}
	results, err := runCells(o, "fig10", jobs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Figure 10: queues per port (load 40%, incast 25%)")
	fmt.Fprintln(w, "cc\tbm\tqueues_per_port\tp99_slowdown\tp99_buffer_pct")
	i := 0
	for _, ccName := range []string{"cubic", "dctcp"} {
		for _, bmName := range []string{"DT", "ABM"} {
			for _, qpp := range fig10QPPs {
				s := results[i].Summary
				i++
				fmt.Fprintf(w, "%s\t%s\t%d\t%.1f\t%.1f\n",
					ccName, bmName, qpp, s.P99ShortSlowdown, 100*s.P99BufferFrac)
			}
		}
	}
	return nil
}

// ShallowBuffers maps §4.3's device generations to KB/port/Gbps.
var ShallowBuffers = []struct {
	Name string
	KB   float64
}{
	{"Trident2", 9.6},
	{"8KB", 8},
	{"7KB", 7},
	{"6KB", 6},
	{"Tomahawk", 5.12},
	{"Tofino", 3.44},
}

// fig11BMs are Figure 11's schemes, in column order.
var fig11BMs = []string{"DT", "IB", "ABM"}

// Fig11 regenerates Figure 11: shallow buffers across device
// generations, DCTCP and PowerTCP, DT vs IB vs ABM.
func Fig11(scale Scale, seed int64, w io.Writer) error { return fig11(nil, scale, seed, w) }

func fig11(o *RunOptions, scale Scale, seed int64, w io.Writer) error {
	var jobs []cellJob
	for _, ccName := range []string{"dctcp", "powertcp"} {
		for _, dev := range ShallowBuffers {
			for _, bmName := range fig11BMs {
				jobs = append(jobs, cellJob{
					label: fmt.Sprintf("cc=%s,dev=%s,bm=%s", ccName, dev.Name, bmName),
					cell: Cell{
						Scale: scale, Seed: seed,
						BM: bmName, Load: 0.4, WSCC: ccName,
						// Request sized against the Trident2 buffer so the burst
						// is constant while the buffer shrinks (§4.3).
						RequestFrac:         0.25 * 9.6 / dev.KB,
						BufferKBPerPortGbps: dev.KB,
					},
				})
			}
		}
	}
	results, err := runCells(o, "fig11", jobs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Figure 11: shallow buffers (load 40%, incast 25% of Trident2 buffer)")
	fmt.Fprintln(w, "cc\tdevice\tkb_per_port_gbps\tp99_DT\tp99_IB\tp99_ABM")
	i := 0
	for _, ccName := range []string{"dctcp", "powertcp"} {
		for _, dev := range ShallowBuffers {
			var vals [3]float64
			for j := range fig11BMs {
				vals[j] = results[i].Summary.P99IncastSlowdown
				i++
			}
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.1f\t%.1f\t%.1f\n",
				ccName, dev.Name, dev.KB, vals[0], vals[1], vals[2])
		}
	}
	return nil
}

// fig12Intervals are Figure 12's update intervals in base RTTs.
var fig12Intervals = []int{1, 10, 100, 1000}

// Fig12 regenerates Figure 12: approximating ABM on DT with periodic
// alpha reconfiguration; the update interval sweeps 1x to 1000x RTT,
// with plain DT as the limit.
func Fig12(scale Scale, seed int64, w io.Writer) error { return fig12(nil, scale, seed, w) }

func fig12(o *RunOptions, scale Scale, seed int64, w io.Writer) error {
	baseRTT := 80 * units.Microsecond
	base := Cell{
		Scale: scale, Seed: seed,
		Load: 0.4, WSCC: "cubic",
		RequestFrac:   0.75,
		Fanout:        16, // responses sized within the first RTT (§3.3 traffic)
		QueuesPerPort: 8,
		RandomPrio:    true,
	}
	var jobs []cellJob
	for _, rtts := range fig12Intervals {
		cell := base
		cell.BM = "ABM-approx"
		cell.UpdateInterval = units.Time(rtts) * baseRTT
		jobs = append(jobs, cellJob{label: fmt.Sprintf("update=%drtt", rtts), cell: cell})
	}
	dtCell := base
	dtCell.BM = "DT"
	jobs = append(jobs, cellJob{label: "bm=DT", cell: dtCell})

	results, err := runCells(o, "fig12", jobs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Figure 12: ABM-approx update interval (load 40%, incast 75%, 8 queues/port)")
	fmt.Fprintln(w, "update_rtts\tp999_short_slowdown\tmedian_long_slowdown")
	for i, rtts := range fig12Intervals {
		s := results[i].Summary
		fmt.Fprintf(w, "%d\t%.1f\t%.2f\n", rtts,
			s.P999AllShortSlowdown, s.MedianLongSlowdown)
	}
	s := results[len(results)-1].Summary
	fmt.Fprintf(w, "DT\t%.1f\t%.2f\n", s.P999AllShortSlowdown, s.MedianLongSlowdown)
	return nil
}
