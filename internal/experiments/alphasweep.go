package experiments

import (
	"fmt"
	"io"
)

// alphaPresets are the vendor DT alpha defaults §2.3 cites.
var alphaPresets = []struct {
	label string
	alpha float64
}{
	{"0.5 (paper)", 0.5},
	{"1 (Arista)", 1},
	{"8 (Yahoo)", 8},
	{"14 (Cisco)", 14},
}

// RunAlphaSweep probes the §2.3 operator question: vendors ship very
// different DT alphas (Arista 1, Yahoo 8, Cisco 14) — how sensitive is
// each scheme to the choice? DT's behaviour swings wildly with alpha
// (high alpha ≈ complete sharing, low alpha ≈ partitioning) while ABM's
// bounds (Theorems 1-2) keep it stable; this is the "ABM teaches
// essential lessons on how to configure alpha" argument (§3.4) made
// measurable.
func RunAlphaSweep(scale Scale, seed int64, w io.Writer) error {
	return runAlphaSweep(nil, scale, seed, w)
}

func runAlphaSweep(o *RunOptions, scale Scale, seed int64, w io.Writer) error {
	var jobs []cellJob
	for _, p := range alphaPresets {
		for _, bmName := range []string{"DT", "ABM"} {
			jobs = append(jobs, cellJob{
				label: fmt.Sprintf("alpha=%g,bm=%s", p.alpha, bmName),
				cell: Cell{
					Scale: scale, Seed: seed,
					BM: bmName, Load: 0.4, WSCC: "cubic",
					RequestFrac: 0.3,
					Alpha:       p.alpha,
				},
			})
		}
	}
	results, err := runCells(o, "alphasweep", jobs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Alpha sensitivity: DT vs ABM across vendor alpha presets (load 40%, incast 30%)")
	fmt.Fprintln(w, "alpha\tbm\tp99_incast\tp99_short\tp99_buffer_pct\tavg_tput_pct")
	i := 0
	for _, p := range alphaPresets {
		for _, bmName := range []string{"DT", "ABM"} {
			s := results[i].Summary
			i++
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\n",
				p.label, bmName, s.P99IncastSlowdown, s.P99ShortSlowdown,
				100*s.P99BufferFrac, 100*s.AvgThroughputFrac)
		}
	}
	return nil
}
