package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"abm/internal/obs"
)

// TestHistShardInvariance is the histogram determinism golden test: the
// merged histogram snapshots AND the tick-by-tick snapshot NDJSON
// series must be byte-identical at 1, 2 and 4 shards — histograms merge
// by bucket addition, and every recording site is either per-shard
// single-writer or driven from a barrier tick, so shard count must not
// leak into any count.
func TestHistShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shard sweep")
	}
	dir := t.TempDir()
	var refSeries []byte
	var refHists map[string]interface{}
	for _, shards := range []int{1, 2, 4} {
		cell := obsCell()
		cell.Shards = shards
		path := filepath.Join(dir, "snapshots.ndjson")
		cell.Obs = obs.Options{Hists: true, HistFile: path}
		res, err := Run(cell)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		series, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		hists := make(map[string]interface{}, len(res.Hists))
		for name, s := range res.Hists {
			hists[name] = s
		}
		if shards == 1 {
			refSeries, refHists = series, hists
			if len(series) == 0 {
				t.Fatal("serial run wrote no snapshot series")
			}
			ws, ok := res.Hists["fct_slowdown_websearch"]
			if !ok || ws.Count == 0 {
				t.Fatalf("serial run recorded no web-search slowdowns: %v", res.Hists)
			}
			if qd := res.Hists["queue_delay_ps"]; qd.Count == 0 {
				t.Fatal("serial run recorded no queueing delays")
			}
			if hr := res.Hists["admit_headroom_bytes"]; hr.Count == 0 {
				t.Fatal("serial run recorded no admission headroom")
			}
			continue
		}
		if !reflect.DeepEqual(hists, refHists) {
			t.Errorf("shards=%d merged histograms diverged:\n%v\nwant\n%v", shards, hists, refHists)
		}
		if !bytes.Equal(series, refSeries) {
			t.Errorf("shards=%d snapshot series diverged (%d bytes vs %d)", shards, len(series), len(refSeries))
		}
	}
}
