package experiments

import (
	"bytes"
	"strings"
	"testing"

	"abm/internal/metrics"
	"abm/internal/units"
)

func TestSchedulerSelection(t *testing.T) {
	for _, sched := range []string{"rr", "dwrr", "strict", ""} {
		cell := Cell{
			Scale: ScaleSmall, Seed: 1,
			BM: "DT", Load: 0.2, WSCC: "cubic",
			QueuesPerPort: 2, RandomPrio: true,
			Scheduler: sched,
			Duration:  5 * units.Millisecond,
		}
		res, err := Run(cell)
		if err != nil {
			t.Fatalf("scheduler %q: %v", sched, err)
		}
		if res.Summary.Flows == 0 {
			t.Fatalf("scheduler %q: no flows", sched)
		}
	}
	if _, err := Run(Cell{Scale: ScaleSmall, BM: "DT", Load: 0.2, WSCC: "cubic",
		Scheduler: "fifo", Duration: units.Millisecond}); err == nil {
		t.Fatal("unknown scheduler must error")
	}
}

func TestWorkloadSelection(t *testing.T) {
	medianSize := func(wl string) units.ByteCount {
		_, col, err := RunDetailed(Cell{
			Scale: ScaleSmall, Seed: 1,
			BM: "DT", Load: 0.3, WSCC: "cubic",
			Workload: wl,
			Duration: 10 * units.Millisecond,
		})
		if err != nil {
			t.Fatalf("workload %q: %v", wl, err)
		}
		if len(col.Flows) == 0 {
			t.Fatalf("workload %q: no flows", wl)
		}
		sizes := make([]float64, len(col.Flows))
		for i, f := range col.Flows {
			sizes[i] = float64(f.Size)
		}
		return units.ByteCount(metricsPercentile(sizes, 50))
	}
	ws := medianSize("websearch")
	dm := medianSize("datamining")
	// Data mining is far more skewed: its median flow is tiny compared
	// to web-search's even though its mean is larger.
	if dm >= ws {
		t.Fatalf("datamining median %v should be far below websearch %v", dm, ws)
	}
	if _, err := Run(Cell{Scale: ScaleSmall, BM: "DT", Load: 0.2, WSCC: "cubic",
		Workload: "bogus", Duration: units.Millisecond}); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestAblationOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	var buf bytes.Buffer
	// Tiny ablation at reduced duration via the figure entry point.
	if err := RunFigure("ablation", ScaleSmall, 1, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"drain-rate estimator", "congestion detection",
		"headroom", "unscheduled alpha", "stats update interval"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

func TestStatsIntervalOverride(t *testing.T) {
	res, err := Run(Cell{
		Scale: ScaleSmall, Seed: 1,
		BM: "ABM", Load: 0.2, WSCC: "cubic",
		RequestFrac:           0.2,
		StatsIntervalOverride: 320 * units.Microsecond,
		Duration:              5 * units.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Flows == 0 {
		t.Fatal("no flows")
	}
}

// metricsPercentile avoids an import cycle concern in tests by
// delegating to the metrics package.
func metricsPercentile(vals []float64, p float64) float64 {
	return metrics.Percentile(vals, p)
}

// Two identical cells must produce byte-identical summaries: the whole
// stack is deterministic.
func TestExperimentDeterminism(t *testing.T) {
	run := func() Result {
		res, err := Run(Cell{
			Scale: ScaleSmall, Seed: 123,
			BM: "ABM", Load: 0.3, WSCC: "cubic",
			RequestFrac: 0.25,
			Duration:    8 * units.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Summary != b.Summary {
		t.Fatalf("summaries diverged:\n%+v\n%+v", a.Summary, b.Summary)
	}
	if a.Events != b.Events || a.Drops != b.Drops {
		t.Fatalf("event/drop counts diverged: %d/%d vs %d/%d",
			a.Events, a.Drops, b.Events, b.Drops)
	}
}
