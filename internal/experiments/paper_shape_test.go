package experiments

import (
	"testing"

	"abm/internal/units"
)

// These tests assert the paper's qualitative claims on the small fabric:
// the direction of every headline comparison must reproduce even at
// reduced scale. Absolute magnitudes are checked loosely; EXPERIMENTS.md
// records the medium-scale numbers.

func runShape(t *testing.T, bmName string, load float64) Result {
	t.Helper()
	res, err := Run(Cell{
		Scale: ScaleSmall, Seed: 42,
		BM: bmName, Load: load, WSCC: "cubic",
		RequestFrac: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestABMBeatsDTOnIncastTail is the paper's headline (Fig. 6a): ABM
// improves the 99th-percentile FCT slowdown of incast flows over DT,
// with the gap widening at load.
func TestABMBeatsDTOnIncastTail(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	dt := runShape(t, "DT", 0.6)
	abm := runShape(t, "ABM", 0.6)
	if abm.Summary.P99IncastSlowdown >= dt.Summary.P99IncastSlowdown {
		t.Fatalf("ABM incast p99 %.1f must beat DT %.1f",
			abm.Summary.P99IncastSlowdown, dt.Summary.P99IncastSlowdown)
	}
	// The improvement should be substantial (paper: 90%+ at high load;
	// accept anything above 2x at this scale).
	if abm.Summary.P99IncastSlowdown*2 > dt.Summary.P99IncastSlowdown {
		t.Fatalf("improvement too small: ABM %.1f vs DT %.1f",
			abm.Summary.P99IncastSlowdown, dt.Summary.P99IncastSlowdown)
	}
}

// TestABMOnParThroughput is Fig. 6d: ABM must not sacrifice long-flow
// throughput for burst absorption.
func TestABMOnParThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	dt := runShape(t, "DT", 0.6)
	abm := runShape(t, "ABM", 0.6)
	if abm.Summary.AvgThroughputFrac < 0.8*dt.Summary.AvgThroughputFrac {
		t.Fatalf("ABM throughput %.2f sacrificed vs DT %.2f",
			abm.Summary.AvgThroughputFrac, dt.Summary.AvgThroughputFrac)
	}
}

// TestCSHasHighestOccupancy is Fig. 6c: complete sharing fills the
// buffer; ABM keeps tail occupancy well below it.
func TestCSHasHighestOccupancy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	cs := runShape(t, "CS", 0.6)
	abm := runShape(t, "ABM", 0.6)
	if cs.Summary.P99BufferFrac < 0.6 {
		t.Fatalf("CS p99 occupancy %.2f implausibly low", cs.Summary.P99BufferFrac)
	}
	if abm.Summary.P99BufferFrac >= cs.Summary.P99BufferFrac {
		t.Fatalf("ABM occupancy %.2f must stay below CS %.2f",
			abm.Summary.P99BufferFrac, cs.Summary.P99BufferFrac)
	}
}

// TestNoUnscheduledDropsUnderABM verifies §3.3's mechanism directly:
// with alpha=64 plus headroom, first-RTT packets survive even bursts
// that make DT drop them.
func TestNoUnscheduledDropsUnderABM(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	countUnsched := func(res Result) int64 { return res.UnscheduledDrops }
	dt := runShape(t, "DT", 0.6)
	abm := runShape(t, "ABM", 0.6)
	if countUnsched(abm) > countUnsched(dt)/10 {
		t.Fatalf("ABM unscheduled drops %d, DT %d: protection not working",
			countUnsched(abm), countUnsched(dt))
	}
}

// TestShallowBufferShape is Fig. 11's direction: DT degrades sharply in
// a Tofino-sized buffer while ABM stays close to its Trident2
// performance.
func TestShallowBufferShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	run := func(bmName string, kb float64) float64 {
		res, err := Run(Cell{
			Scale: ScaleSmall, Seed: 42,
			BM: bmName, Load: 0.4, WSCC: "dctcp",
			RequestFrac:         0.25 * 9.6 / kb,
			BufferKBPerPortGbps: kb,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.P99IncastSlowdown
	}
	dtShallow := run("DT", 3.44)
	abmShallow := run("ABM", 3.44)
	if abmShallow >= dtShallow {
		t.Fatalf("in a Tofino buffer ABM (%.1f) must beat DT (%.1f)", abmShallow, dtShallow)
	}
}

// TestApproxInterpolatesBetweenABMAndDT is Fig. 12's direction: a fast
// control plane approximates ABM; a slow one degenerates toward DT.
func TestApproxInterpolatesBetweenABMAndDT(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	baseRTT := 80 * units.Microsecond
	run := func(bmName string, interval units.Time) float64 {
		res, err := Run(Cell{
			Scale: ScaleSmall, Seed: 42,
			BM: bmName, UpdateInterval: interval,
			Load: 0.4, WSCC: "cubic",
			RequestFrac:   0.5,
			QueuesPerPort: 4,
			RandomPrio:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.P99IncastSlowdown
	}
	fast := run("ABM-approx", baseRTT)
	dt := run("DT", 0)
	if fast >= dt {
		t.Fatalf("fast approx (%.1f) should beat DT (%.1f)", fast, dt)
	}
}
