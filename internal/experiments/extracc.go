package experiments

import (
	"fmt"
	"io"
)

// extraCCs are the related-work transports, extraFracs their request
// sizes.
var (
	extraCCs   = []string{"hpcc", "dcqcn", "swift"}
	extraFracs = []float64{0.25, 0.5, 0.75}
)

// RunExtraCC extends Figure 9 beyond the paper: the related-work
// transports the paper cites but does not evaluate (HPCC, DCQCN, Swift)
// under the same incast sweep, with DT vs ABM. The expectation carries
// over — the stronger the transport's own congestion signal, the less
// ABM adds, until the burst exceeds what any end-host control can do
// about the first RTT.
func RunExtraCC(scale Scale, seed int64, w io.Writer) error {
	return runExtraCC(nil, scale, seed, w)
}

func runExtraCC(o *RunOptions, scale Scale, seed int64, w io.Writer) error {
	var jobs []cellJob
	for _, ccName := range extraCCs {
		for _, frac := range extraFracs {
			for _, bmName := range []string{"DT", "ABM"} {
				jobs = append(jobs, cellJob{
					label: fmt.Sprintf("cc=%s,req=%g,bm=%s", ccName, frac, bmName),
					cell: Cell{
						Scale: scale, Seed: seed,
						BM: bmName, Load: 0.4, WSCC: ccName,
						RequestFrac: frac,
					},
				})
			}
		}
	}
	results, err := runCells(o, "extracc", jobs)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "# Extension: related-work transports (HPCC, DCQCN, Swift) x request size, DT vs ABM")
	fmt.Fprintln(w, "cc\treq_frac_pct\tp99_incast_DT\tp99_incast_ABM")
	i := 0
	for _, ccName := range extraCCs {
		for _, frac := range extraFracs {
			dt := results[i].Summary.P99IncastSlowdown
			abm := results[i+1].Summary.P99IncastSlowdown
			i += 2
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\n", ccName, frac*100, dt, abm)
		}
	}
	return nil
}
