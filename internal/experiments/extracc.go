package experiments

import (
	"fmt"
	"io"
)

// RunExtraCC extends Figure 9 beyond the paper: the related-work
// transports the paper cites but does not evaluate (HPCC, DCQCN, Swift)
// under the same incast sweep, with DT vs ABM. The expectation carries
// over — the stronger the transport's own congestion signal, the less
// ABM adds, until the burst exceeds what any end-host control can do
// about the first RTT.
func RunExtraCC(scale Scale, seed int64, w io.Writer) error {
	fmt.Fprintln(w, "# Extension: related-work transports (HPCC, DCQCN, Swift) x request size, DT vs ABM")
	fmt.Fprintln(w, "cc\treq_frac_pct\tp99_incast_DT\tp99_incast_ABM")
	for _, ccName := range []string{"hpcc", "dcqcn", "swift"} {
		for _, frac := range []float64{0.25, 0.5, 0.75} {
			var vals [2]float64
			for i, bmName := range []string{"DT", "ABM"} {
				res, err := Run(Cell{
					Scale: scale, Seed: seed,
					BM: bmName, Load: 0.4, WSCC: ccName,
					RequestFrac: frac,
				})
				if err != nil {
					return err
				}
				vals[i] = res.Summary.P99IncastSlowdown
			}
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\n", ccName, frac*100, vals[0], vals[1])
		}
	}
	return nil
}
