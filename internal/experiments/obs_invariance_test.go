package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"abm/internal/obs"
	"abm/internal/units"
)

// obsCell is a medium-scale cell (4 leaves, so shards=4 is a genuine
// 4-way split) short enough for CI but busy enough to exercise drops,
// marks, retransmits and timeouts.
func obsCell() Cell {
	return Cell{Scale: ScaleMedium, Seed: 42, Duration: 2 * units.Millisecond,
		Load: 0.6, WSCC: "dctcp", RequestFrac: 0.5, BM: "ABM"}
}

// TestObsShardInvariance is the telemetry determinism golden test: the
// model counters and the exported model-kind NDJSON stream must be
// byte-identical at 1, 2 and 4 shards.
func TestObsShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shard sweep")
	}
	dir := t.TempDir()
	var refNDJSON []byte
	var refTotals map[string]int64
	for _, shards := range []int{1, 2, 4} {
		cell := obsCell()
		cell.Shards = shards
		path := filepath.Join(dir, "events.ndjson")
		cell.Obs = obs.Options{EventsFile: path, Filter: "model"}
		res, err := Run(cell)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		model := map[string]int64{}
		for k, v := range res.Counters {
			if strings.HasPrefix(k, "model/") {
				model[k] = v
			}
		}
		if shards == 1 {
			refNDJSON, refTotals = data, model
			if len(data) == 0 {
				t.Fatal("serial run exported no events")
			}
			if refTotals["model/data_pkts_sent"] == 0 || refTotals["model/admitted_pkts"] == 0 {
				t.Fatalf("serial run recorded no traffic: %v", refTotals)
			}
			continue
		}
		if !reflect.DeepEqual(model, refTotals) {
			t.Errorf("shards=%d model counters diverged:\n%v\nwant\n%v", shards, model, refTotals)
		}
		if !bytes.Equal(data, refNDJSON) {
			t.Errorf("shards=%d NDJSON diverged (%d bytes vs %d)", shards, len(data), len(refNDJSON))
		}
	}
}

// TestObsSamplingSubset checks that a sampled trace is a subset of the
// full trace — the hash selection must never invent lines — and that it
// is itself shard-count-invariant.
func TestObsSamplingSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shard sweep")
	}
	dir := t.TempDir()
	run := func(shards int, sample float64) map[string]bool {
		cell := obsCell()
		cell.Shards = shards
		path := filepath.Join(dir, "s.ndjson")
		cell.Obs = obs.Options{EventsFile: path, Filter: "model", Sample: sample}
		if _, err := Run(cell); err != nil {
			t.Fatalf("shards=%d sample=%g: %v", shards, sample, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := map[string]bool{}
		for _, l := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
			lines[l] = true
		}
		return lines
	}
	full := run(1, 0)
	sampled := run(1, 0.2)
	if len(sampled) >= len(full) || len(sampled) == 0 {
		t.Fatalf("sampled %d lines of %d; expected a strict nonempty subset", len(sampled), len(full))
	}
	for l := range sampled {
		if !full[l] {
			t.Fatalf("sampled line not present in the full trace: %s", l)
		}
	}
	if sharded := run(2, 0.2); !reflect.DeepEqual(sharded, sampled) {
		t.Errorf("sampled trace differs across shard counts: %d vs %d lines", len(sharded), len(sampled))
	}
}

// TestPacketConservation pins the packet-conservation invariant on the
// telemetry counters: every packet handed to a NIC is eventually
// dropped at a switch, consumed by a receiver, or retired at a sender —
// no packet is created or destroyed anywhere else.
func TestPacketConservation(t *testing.T) {
	for _, shards := range []int{0, 4} {
		cell := obsCell()
		cell.Shards = shards
		cell.Obs = obs.Options{Counters: true}
		res, err := Run(cell)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		c := res.Counters
		sent := c["model/data_pkts_sent"] + c["model/ack_pkts_sent"]
		accounted := c["model/drops_threshold"] + c["model/drops_nobuffer"] +
			c["model/drops_aqm"] + c["model/drops_afd"] + c["model/drops_dequeue"] +
			c["model/data_pkts_consumed"] + c["model/ack_pkts_retired"]
		if sent == 0 {
			t.Fatalf("shards=%d: no packets sent", shards)
		}
		if sent != accounted {
			t.Errorf("shards=%d: conservation violated: sent %d != accounted %d (counters: %v)",
				shards, sent, accounted, c)
		}
		// The overlapping tags stay within their parent counts.
		if c["model/retrans_pkts_sent"] > c["model/data_pkts_sent"] {
			t.Errorf("shards=%d: retransmits exceed data sends", shards)
		}
		drops := accounted - c["model/data_pkts_consumed"] - c["model/ack_pkts_retired"]
		if c["model/drops_unscheduled"] > drops {
			t.Errorf("shards=%d: unscheduled drops exceed total drops", shards)
		}
		// The experiment-level drop count and the telemetry registry must
		// agree on admission drops.
		admissionDrops := c["model/drops_threshold"] + c["model/drops_nobuffer"] +
			c["model/drops_aqm"] + c["model/drops_afd"]
		if res.Drops != admissionDrops+c["model/drops_dequeue"] {
			t.Errorf("shards=%d: Result.Drops %d != telemetry drops %d",
				shards, res.Drops, admissionDrops+c["model/drops_dequeue"])
		}
	}
}
