package experiments

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"abm/internal/runner"
	"abm/internal/units"
)

func TestGridExpansion(t *testing.T) {
	g := Grid{
		Name: "t", BMs: []string{"DT", "ABM"}, CCs: []string{"cubic", "dctcp"},
		Loads: []float64{0.2, 0.4}, RequestFracs: []float64{0.3},
		Reps: 3, TimeoutSec: 7,
	}
	if got := g.Jobs(); got != 2*2*2*1*1*3 {
		t.Fatalf("Jobs() = %d", got)
	}
	plan, err := g.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Specs) != g.Jobs() {
		t.Fatalf("expanded %d, want %d", len(plan.Specs), g.Jobs())
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	groups := map[string]int{}
	for i, s := range plan.Specs {
		if s.Timeout != 7*time.Second {
			t.Fatalf("timeout not propagated: %v", s.Timeout)
		}
		groups[s.Group]++
		if s.Seed != 0 {
			t.Fatalf("grid jobs must derive seeds, spec %d has %d", i, s.Seed)
		}
	}
	if len(groups) != 8 {
		t.Fatalf("groups = %d, want 8", len(groups))
	}
	for gname, n := range groups {
		if n != 3 {
			t.Fatalf("group %s has %d reps, want 3", gname, n)
		}
	}
	// Defaults fill empty axes; unknown scales are rejected.
	if n := (Grid{}).Jobs(); n != 1 {
		t.Fatalf("default grid jobs = %d", n)
	}
	if _, err := (Grid{Scale: "galactic"}).Plan(); err == nil {
		t.Fatal("bad scale accepted")
	}
}

// tinyGrid is a real-simulation grid small enough for tests: 2 schemes
// x 2 replications of a 2ms small-fabric cell.
func tinyGrid() Grid {
	return Grid{
		Name: "tiny", Scale: "small", Seed: 11, Reps: 2,
		BMs: []string{"DT", "ABM"}, CCs: []string{"cubic"},
		Loads: []float64{0.3}, RequestFracs: []float64{0.25},
		DurationMS: 2,
	}
}

// TestGridDeterminismAcrossWorkers runs a real multi-seed grid at 1 and
// 4 workers and requires byte-identical aggregated output — the
// acceptance property of the runner subsystem on the actual simulator
// (the pure-runner version at 1/4/16 workers lives in
// internal/runner/determinism_test.go).
func TestGridDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	var golden []byte
	for _, workers := range []int{1, 4} {
		plan, err := tinyGrid().Plan()
		if err != nil {
			t.Fatal(err)
		}
		recs, err := (&runner.Pool{Workers: workers}).Run(context.Background(), plan)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(runner.Failed(recs)); n != 0 {
			t.Fatalf("%d failed jobs: %+v", n, runner.Failed(recs))
		}
		out, err := json.MarshalIndent(runner.Aggregate(recs), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = out
			continue
		}
		if string(out) != string(golden) {
			t.Fatalf("worker count changed simulation aggregate:\n%s\nvs\n%s", out, golden)
		}
	}
	// Replications must actually differ (distinct derived seeds), or
	// the confidence intervals are fiction.
	var groups []runner.Group
	if err := json.Unmarshal(golden, &groups); err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if g.N != 2 {
			t.Fatalf("group %s aggregated %d reps", g.Group, g.N)
		}
		if len(g.Seeds) != 2 || g.Seeds[0] == g.Seeds[1] {
			t.Fatalf("group %s seeds: %v", g.Group, g.Seeds)
		}
	}
}

// TestRunCellsStoreRoundTrip checks that a figure rendered from cached
// store records is identical to one rendered from fresh runs —
// including the per-priority extras that ride in Extra.
func TestRunCellsStoreRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	jobs := []cellJob{{
		label: "mixed",
		cell: Cell{
			Scale: ScaleSmall, Seed: 3,
			BM: "ABM", Load: 0.4, QueuesPerPort: 3,
			MixedCC: []CCAssignment{
				{CC: "cubic", Prio: 0},
				{CC: "dctcp", Prio: 1},
			},
			RequestFrac: 0.2, IncastCC: "theta-powertcp", IncastPrio: 2,
			Duration: 2 * units.Millisecond,
		},
	}}
	dir := t.TempDir()
	run := func() []Result {
		st, err := runner.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		res, err := runCells(&RunOptions{Store: st}, "roundtrip", jobs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fresh := run()
	cached := run()
	if len(fresh[0].PerPrioP99Short) != 3 {
		t.Fatalf("per-prio metrics missing: %+v", fresh[0].PerPrioP99Short)
	}
	if !reflect.DeepEqual(fresh, cached) {
		t.Fatalf("cached render differs:\nfresh:  %+v\ncached: %+v", fresh[0], cached[0])
	}
}

// TestRunCellsPropagatesFailure checks that a failing cell surfaces its
// job ID and does not take the figure's process down. (Unknown BM names
// used to panic inside the simulator's per-switch factory; scenario
// resolution now rejects them as an ordinary error.)
func TestRunCellsPropagatesFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation test")
	}
	_, err := runCells(nil, "boom", []cellJob{{
		label: "bad",
		cell: Cell{Scale: ScaleSmall, BM: "nonsense", Load: 0.1, WSCC: "cubic",
			Duration: units.Millisecond},
	}})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "boom/000-bad") || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("error lacks job identity: %v", err)
	}
}
