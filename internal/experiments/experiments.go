// Package experiments defines one runnable configuration per figure of
// the paper's evaluation (§4) and the shared machinery to execute them:
// building the fabric, attaching workloads, running to a deadline,
// draining, and summarizing. The cmd/figures binary and the repository's
// benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"
	"math/rand"

	"abm/internal/aqm"
	"abm/internal/bm"
	"abm/internal/cc"
	"abm/internal/device"
	"abm/internal/metrics"
	"abm/internal/obs"
	"abm/internal/packet"
	"abm/internal/randutil"
	"abm/internal/sim"
	"abm/internal/topo"
	"abm/internal/units"
	"abm/internal/workload"
)

// Scale selects the fabric size. The paper runs 8 spines x 8 leaves x 32
// hosts; smaller scales preserve the 4:1 oversubscription and the
// qualitative results at a fraction of the event count.
type Scale int

// Scales.
const (
	// ScaleSmall: 2x2x8 = 16 hosts, ~25ms of traffic. Used by benches.
	ScaleSmall Scale = iota
	// ScaleMedium: 4x4x16 = 64 hosts, ~50ms.
	ScaleMedium
	// ScalePaper: the full 8x8x32 = 256 hosts, 200ms. Slow; CLI only.
	ScalePaper
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScalePaper:
		return "paper"
	default:
		return "unknown"
	}
}

// ParseScale resolves a scale name.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "paper":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q", name)
	}
}

// fabric returns the topology dimensions and run durations for a scale.
func (s Scale) fabric() (spines, leaves, hostsPerLeaf int, duration units.Time) {
	switch s {
	case ScaleMedium:
		return 4, 4, 16, 50 * units.Millisecond
	case ScalePaper:
		return 8, 8, 32, 200 * units.Millisecond
	default:
		return 2, 2, 8, 25 * units.Millisecond
	}
}

// Cell is one experiment configuration: a point on one figure's axes.
type Cell struct {
	Scale Scale
	Seed  int64

	// Shards selects the run mode: 0 (default) is the legacy serial
	// loop; N >= 1 runs the topology-sharded parallel engine with
	// min(N, NumLeaves) shards. Engine output is identical at every
	// shard count (the canonical barrier merge is partition-invariant);
	// it can differ from the legacy loop only in the execution order of
	// events sharing an exact picosecond timestamp.
	Shards int

	BM             string     // bm.New name
	UpdateInterval units.Time // for ABM-approx, in absolute time

	// Web-search workload.
	Load   float64
	WSCC   string // cc.NewFactory name
	WSPrio uint8

	// Incast workload; RequestFrac <= 0 disables it.
	RequestFrac float64 // request size as a fraction of the buffer (§4.1)
	IncastCC    string  // defaults to WSCC
	IncastPrio  uint8
	IncastLoad  float64 // fraction of aggregate bandwidth offered as incast, default 0.04
	Fanout      int     // default 8

	QueuesPerPort int  // default 1
	RandomPrio    bool // spread flows across queues uniformly (fig10/fig12)

	// Scheduler selects the per-port scheduler: "rr" (default), "dwrr",
	// or "strict".
	Scheduler string

	// Workload selects the background flow-size distribution:
	// "websearch" (default) or "datamining".
	Workload string

	// Trimming enables the cut-payload AQM (Figure 1's trimming-based
	// family): above the trim threshold, payloads are removed and
	// headers still delivered, converting timeout losses into immediate
	// duplicate-ACK signals. Incompatible with DCTCP cells.
	Trimming bool

	// BufferKBPerPortGbps overrides the Trident2 default of 9.6 (§4.3).
	BufferKBPerPortGbps float64

	// MixedCC assigns web-search flows alternately to the given
	// algorithm/priority pairs (fig8); overrides WSCC.
	MixedCC []CCAssignment

	// Duration overrides the scale's default traffic duration.
	Duration units.Time

	// Ablation knobs (DESIGN.md §6). Zero values select the defaults the
	// figures use.
	Alpha                 float64    // per-priority alpha, default 0.5
	DrainRateMeasured     bool       // measured estimator instead of scheduler share
	CongestedFactor       float64    // congestion detection factor, default 0.9
	HeadroomFrac          float64    // headroom fraction; <0 disables, 0 selects scheme default
	AlphaUnscheduled      float64    // default 64
	StatsIntervalOverride units.Time // n_p / mu refresh period, default one base RTT

	// Obs selects the run's telemetry (DESIGN.md §4e); the zero value
	// disables it entirely.
	Obs obs.Options
}

// CCAssignment binds a congestion-control algorithm to a priority.
type CCAssignment struct {
	CC   string
	Prio uint8
}

// Result is a finished cell.
type Result struct {
	Cell    Cell
	Summary metrics.Summary
	// PerPrioP99Short holds the per-priority p99 short-flow slowdown for
	// mixed-protocol cells (fig8).
	PerPrioP99Short map[uint8]float64

	Drops            int64
	UnscheduledDrops int64
	Events           uint64

	// Counters holds the telemetry counter totals by export name when
	// the cell enabled telemetry (Cell.Obs); nil otherwise. The model/
	// keys are shard-count-invariant.
	Counters map[string]int64
}

// needsINT reports whether any configured algorithm requires telemetry.
func (c Cell) needsINT() bool {
	names := []string{c.WSCC, c.IncastCC}
	for _, a := range c.MixedCC {
		names = append(names, a.CC)
	}
	for _, n := range names {
		if n == "powertcp" || n == "hpcc" {
			return true
		}
	}
	return false
}

// Run executes one cell and returns its result.
func Run(cell Cell) (Result, error) {
	res, _, err := RunDetailed(cell)
	return res, err
}

// RunDetailed is Run, additionally returning the metrics collector with
// every flow record for tracing and custom analysis.
func RunDetailed(cell Cell) (Result, *metrics.Collector, error) {
	spines, leaves, hostsPerLeaf, duration := cell.Scale.fabric()
	if cell.Duration > 0 {
		duration = cell.Duration
	}
	if cell.QueuesPerPort <= 0 {
		cell.QueuesPerPort = 1
	}
	if cell.IncastCC == "" {
		cell.IncastCC = cell.WSCC
	}
	if cell.IncastLoad <= 0 {
		cell.IncastLoad = 0.04
	}
	if cell.Fanout <= 0 {
		cell.Fanout = 8
	}
	kb := cell.BufferKBPerPortGbps
	if kb <= 0 {
		kb = 9.6 // Trident2
	}

	rate := 10 * units.GigabitPerSec
	ports := hostsPerLeaf + spines
	totalBuffer := topo.BufferFor(kb, ports, rate)

	// ABM-family schemes reserve 1/8 of the chip as headroom (§4.1: "uses
	// headroom similar to IB"); others use the whole chip as shared pool.
	// Cell.HeadroomFrac overrides for ablations.
	hrFrac := 0.0
	if cell.BM == "ABM" || cell.BM == "IB" || cell.BM == "ABM-approx" {
		hrFrac = 1.0 / 8
	}
	if cell.HeadroomFrac > 0 {
		hrFrac = cell.HeadroomFrac
	}
	if cell.HeadroomFrac < 0 {
		hrFrac = 0
	}
	headroom := units.ByteCount(float64(totalBuffer) * hrFrac)
	shared := totalBuffer - headroom

	numQueues := cell.QueuesPerPort * ports
	alphaVal := cell.Alpha
	if alphaVal <= 0 {
		alphaVal = 0.5
	}
	alphas := make([]float64, cell.QueuesPerPort)
	for i := range alphas {
		alphas[i] = alphaVal
	}

	alphaU := cell.AlphaUnscheduled
	if alphaU <= 0 {
		alphaU = 64
	}
	drainMode := device.DrainRateShare
	if cell.DrainRateMeasured {
		drainMode = device.DrainRateMeasured
	}
	cfg := topo.Config{
		NumSpines:     spines,
		NumLeaves:     leaves,
		HostsPerLeaf:  hostsPerLeaf,
		LinkRate:      rate,
		LinkDelay:     10 * units.Microsecond,
		QueuesPerPort: cell.QueuesPerPort,
		BufferSize:    shared,
		Headroom:      headroom,
		BMFactory: func() bm.Policy {
			p, err := bm.New(cell.BM, numQueues, cell.UpdateInterval)
			if err != nil {
				panic(err)
			}
			return p
		},
		Alphas:           alphas,
		AlphaUnscheduled: alphaU,
		CongestedFactor:  cell.CongestedFactor,
		StatsInterval:    cell.StatsIntervalOverride,
		DrainRate:        drainMode,
		EnableINT:        cell.needsINT(),
	}
	switch cell.Scheduler {
	case "", "rr":
		// round robin, the device default
	case "dwrr":
		cfg.NewScheduler = func() device.Scheduler { return &device.DWRR{} }
	case "strict":
		cfg.NewScheduler = func() device.Scheduler { return device.StrictPriority{} }
	default:
		return Result{}, nil, fmt.Errorf("experiments: unknown scheduler %q", cell.Scheduler)
	}
	// DCTCP needs its marking threshold K = 65 packets (§4.1); the
	// threshold only marks ECT packets, so it is safe fabric-wide.
	if usesDCTCP(cell) {
		if cell.Trimming {
			return Result{}, nil, fmt.Errorf("experiments: trimming and DCTCP AQMs are mutually exclusive")
		}
		k := 65 * (1440 + packet.HeaderBytes)
		cfg.AQMFactory = func() aqm.Policy { return aqm.ECNThreshold{K: k} }
	} else if cell.Trimming {
		// Trim once a queue holds an eighth of the chip — roughly where
		// deep per-queue backlogs turn into timeout-inducing tail drops.
		trimAt := totalBuffer / 8
		cfg.AQMFactory = func() aqm.Policy { return aqm.CutPayload{TrimAbove: trimAt} }
	}

	if cell.Shards >= 1 {
		return runSharded(cell, cfg, totalBuffer, duration, rate)
	}

	sess, err := obs.NewSession(cell.Obs, 1)
	if err != nil {
		return Result{}, nil, err
	}
	cfg.Obs = sess

	s := sim.New(cell.Seed)
	n := topo.NewNetwork(s, cfg)
	col := &metrics.Collector{}

	// Incast requests are sized against the chip buffer, not the
	// scheme-dependent shared pool, so every scheme sees the same load.
	ws, ic, sampler, err := buildWorkloads(n, cell, col, totalBuffer)
	if err != nil {
		return Result{}, nil, err
	}
	if ws != nil {
		ws.Start()
	}
	if ic != nil {
		ic.Start()
	}
	sampler.Start(samplerInterval)

	s.RunUntil(duration)
	if ws != nil {
		ws.Stop()
	}
	if ic != nil {
		ic.Stop()
	}
	// Drain: let in-flight flows finish (bounded so pathological cells
	// still terminate).
	s.RunUntil(duration + 500*units.Millisecond)
	sampler.Stop()
	n.Stop()
	s.Run() // flush canceled tickers

	res := collectResult(cell, n, col, rate, s.Executed())
	res.Counters = sess.Totals()
	if err := writeObsOutputs(cell.Obs, sess, n); err != nil {
		return Result{}, nil, err
	}
	return res, col, nil
}

// samplerInterval is the buffer-occupancy sampling period in both run
// modes.
const samplerInterval = 100 * units.Microsecond

// runSharded executes a cell on the parallel engine: the fabric is
// partitioned across shards, workloads are pre-generated to the traffic
// horizon (reproducing the live generators' RNG streams draw-for-draw),
// and the buffer sampler runs at window barriers.
func runSharded(cell Cell, cfg topo.Config, totalBuffer units.ByteCount,
	duration units.Time, rate units.Rate) (Result, *metrics.Collector, error) {

	part := topo.MakePartition(cfg.NumLeaves, cfg.NumSpines, cell.Shards)
	sess, err := obs.NewSession(cell.Obs, part.Shards)
	if err != nil {
		return Result{}, nil, err
	}
	cfg.Obs = sess

	p := sim.NewParallel(cell.Seed, part.Shards)
	defer p.Close()
	p.SetObs(sess)
	n := topo.NewShardedNetwork(p, cfg, part)
	col := &metrics.Collector{}

	ws, ic, sampler, err := buildWorkloads(n, cell, col, totalBuffer)
	if err != nil {
		return Result{}, nil, err
	}
	workload.SchedulePregen(ws, ic, duration)
	sampler.StartBarrier(samplerInterval)

	p.RunUntil(duration)
	p.RunUntil(duration + 500*units.Millisecond)
	sampler.Stop()
	n.Stop()
	p.Drain() // run remaining retransmission chains to exhaustion

	res := collectResult(cell, n, col, rate, p.Executed())
	res.Counters = sess.Totals()
	if err := writeObsOutputs(cell.Obs, sess, n); err != nil {
		return Result{}, nil, err
	}
	return res, col, nil
}

// collectResult assembles the cell result from a finished network.
func collectResult(cell Cell, n *topo.Network, col *metrics.Collector,
	rate units.Rate, events uint64) Result {

	var unschedDrops int64
	for _, sw := range n.Switches() {
		for p := 0; p < sw.NumPorts(); p++ {
			for q := 0; q < sw.Prios(); q++ {
				unschedDrops += sw.Port(p).Queue(q).DropsUnscheduled
			}
		}
	}
	res := Result{
		Cell:             cell,
		Summary:          col.Summarize(rate),
		Drops:            n.TotalDrops(),
		UnscheduledDrops: unschedDrops,
		Events:           events,
	}
	if len(cell.MixedCC) > 0 {
		res.PerPrioP99Short = make(map[uint8]float64)
		for _, a := range cell.MixedCC {
			vals := col.Filter(func(r metrics.FlowRecord) bool {
				return r.Prio == a.Prio && r.Size <= metrics.ShortFlowCut
			})
			res.PerPrioP99Short[a.Prio] = metrics.Percentile(vals, 99)
		}
		if cell.RequestFrac > 0 {
			vals := col.Filter(metrics.ByClass(metrics.ClassIncast))
			res.PerPrioP99Short[cell.IncastPrio] = metrics.Percentile(vals, 99)
		}
	}
	return res
}

func usesDCTCP(cell Cell) bool {
	ecnBased := func(n string) bool { return n == "dctcp" || n == "dcqcn" }
	if ecnBased(cell.WSCC) || ecnBased(cell.IncastCC) {
		return true
	}
	for _, a := range cell.MixedCC {
		if ecnBased(a.CC) {
			return true
		}
	}
	return false
}

// buildWorkloads builds the cell's generators and the buffer sampler
// without starting any of them: the serial path Starts the generators
// live, the sharded path pre-generates their schedules instead.
func buildWorkloads(n *topo.Network, cell Cell, col *metrics.Collector,
	shared units.ByteCount) (*workload.WebSearch, *workload.Incast, *workload.BufferSampler, error) {

	// Workload randomness is isolated from simulation randomness so every
	// scheme at the same seed sees identical arrivals.
	rng := rand.New(rand.NewSource(cell.Seed + 1000))
	qpp := cell.QueuesPerPort

	var ws *workload.WebSearch
	if cell.Load > 0 {
		ws = &workload.WebSearch{Net: n, Load: cell.Load, Collect: col, Seed: cell.Seed + 1}
		switch cell.Workload {
		case "", "websearch":
			// the default distribution
		case "datamining":
			ws.Sizes = randutil.DataMining
		default:
			return nil, nil, nil, fmt.Errorf("experiments: unknown workload %q", cell.Workload)
		}
		switch {
		case len(cell.MixedCC) > 0:
			factories := make([]cc.Factory, len(cell.MixedCC))
			for i, a := range cell.MixedCC {
				f, err := cc.NewFactory(a.CC)
				if err != nil {
					return nil, nil, nil, err
				}
				factories[i] = f
			}
			assignments := cell.MixedCC
			ws.PickCC = func(i int) (cc.Factory, uint8) {
				j := i % len(assignments)
				return factories[j], assignments[j].Prio
			}
		case cell.RandomPrio:
			f, err := cc.NewFactory(cell.WSCC)
			if err != nil {
				return nil, nil, nil, err
			}
			ws.PickCC = func(int) (cc.Factory, uint8) {
				return f, uint8(rng.Intn(qpp))
			}
		default:
			f, err := cc.NewFactory(cell.WSCC)
			if err != nil {
				return nil, nil, nil, err
			}
			ws.CC = f
			ws.Prio = cell.WSPrio
		}
	}

	var ic *workload.Incast
	if cell.RequestFrac > 0 {
		f, err := cc.NewFactory(cell.IncastCC)
		if err != nil {
			return nil, nil, nil, err
		}
		reqSize := units.ByteCount(cell.RequestFrac * float64(shared))
		bisection := float64(n.Cfg.LinkRate) * float64(n.Cfg.NumLeaves*n.Cfg.NumSpines)
		qps := cell.IncastLoad * bisection / float64(reqSize.Bits())
		ic = &workload.Incast{
			Net:         n,
			RequestSize: reqSize,
			Fanout:      cell.Fanout,
			QueryRate:   qps,
			Prio:        cell.IncastPrio,
			CC:          f,
			Collect:     col,
			Seed:        cell.Seed + 2,
		}
		if cell.RandomPrio {
			ic.PickPrio = func() uint8 { return uint8(rng.Intn(qpp)) }
		}
	}

	sampler := &workload.BufferSampler{Net: n, Collect: col}
	return ws, ic, sampler, nil
}
