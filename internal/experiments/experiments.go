// Package experiments defines one runnable configuration per figure of
// the paper's evaluation (§4). A Cell is a point on one figure's axes;
// it compiles to a declarative scenario.Scenario (Cell.Scenario) and the
// scenario layer builds the fabric, attaches workloads, runs to the
// deadline, drains and summarizes. The cmd/figures binary and the
// repository's benchmarks are thin wrappers over this package.
package experiments

import (
	"fmt"

	"abm/internal/metrics"
	"abm/internal/obs"
	"abm/internal/obs/hist"
	"abm/internal/scenario"
	"abm/internal/units"
)

// Scale selects the fabric size. The paper runs 8 spines x 8 leaves x 32
// hosts; smaller scales preserve the 4:1 oversubscription and the
// qualitative results at a fraction of the event count.
type Scale int

// Scales.
const (
	// ScaleSmall: 2x2x8 = 16 hosts, ~25ms of traffic. Used by benches.
	ScaleSmall Scale = iota
	// ScaleMedium: 4x4x16 = 64 hosts, ~50ms.
	ScaleMedium
	// ScalePaper: the full 8x8x32 = 256 hosts, 200ms. Slow; CLI only.
	ScalePaper
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	case ScalePaper:
		return "paper"
	default:
		return "unknown"
	}
}

// ParseScale resolves a scale name.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "small":
		return ScaleSmall, nil
	case "medium":
		return ScaleMedium, nil
	case "paper":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q", name)
	}
}

// fabric returns the topology dimensions and run durations for a scale.
func (s Scale) fabric() (spines, leaves, hostsPerLeaf int, duration units.Time) {
	switch s {
	case ScaleMedium:
		return 4, 4, 16, 50 * units.Millisecond
	case ScalePaper:
		return 8, 8, 32, 200 * units.Millisecond
	default:
		return 2, 2, 8, 25 * units.Millisecond
	}
}

// Cell is one experiment configuration: a point on one figure's axes.
type Cell struct {
	Scale Scale
	Seed  int64

	// Shards selects the run mode: 0 (default) is the legacy serial
	// loop; N >= 1 runs the topology-sharded parallel engine with
	// min(N, NumLeaves) shards. Engine output is identical at every
	// shard count (the canonical barrier merge is partition-invariant);
	// it can differ from the legacy loop only in the execution order of
	// events sharing an exact picosecond timestamp.
	Shards int

	// Fabric overrides the Scale-derived fabric shape (dimensions, link
	// rates, delay) with an explicit spec — how a figure sweep runs on a
	// fabric loaded from a scenario file. Scale still picks the duration.
	Fabric *scenario.Fabric

	BM             string     // bm policy name (bm.Names)
	UpdateInterval units.Time // for ABM-approx, in absolute time

	// Web-search workload.
	Load   float64
	WSCC   string // cc.NewFactory name
	WSPrio uint8

	// Incast workload; RequestFrac <= 0 disables it.
	RequestFrac float64 // request size as a fraction of the buffer (§4.1)
	IncastCC    string  // defaults to WSCC
	IncastPrio  uint8
	IncastLoad  float64 // fraction of aggregate bandwidth offered as incast, default 0.04
	Fanout      int     // default 8

	QueuesPerPort int  // default 1
	RandomPrio    bool // spread flows across queues uniformly (fig10/fig12)

	// Scheduler selects the per-port scheduler: "rr" (default), "dwrr",
	// or "strict".
	Scheduler string

	// Workload selects the background flow-size distribution:
	// "websearch" (default) or "datamining".
	Workload string

	// Trimming enables the cut-payload AQM (Figure 1's trimming-based
	// family): above the trim threshold, payloads are removed and
	// headers still delivered, converting timeout losses into immediate
	// duplicate-ACK signals. Incompatible with DCTCP cells.
	Trimming bool

	// BufferKBPerPortGbps overrides the Trident2 default of 9.6 (§4.3).
	BufferKBPerPortGbps float64

	// MixedCC assigns web-search flows alternately to the given
	// algorithm/priority pairs (fig8); overrides WSCC.
	MixedCC []CCAssignment

	// Duration overrides the scale's default traffic duration.
	Duration units.Time

	// Ablation knobs (DESIGN.md §8). Zero values select the defaults the
	// figures use.
	Alpha                 float64    // per-priority alpha, default 0.5
	DrainRateMeasured     bool       // measured estimator instead of scheduler share
	CongestedFactor       float64    // congestion detection factor, default 0.9
	HeadroomFrac          float64    // headroom fraction; <0 disables, 0 selects scheme default
	AlphaUnscheduled      float64    // default 64
	StatsIntervalOverride units.Time // n_p / mu refresh period, default one base RTT

	// Obs selects the run's telemetry (DESIGN.md §4e); the zero value
	// disables it entirely.
	Obs obs.Options
}

// CCAssignment binds a congestion-control algorithm to a priority.
type CCAssignment struct {
	CC   string
	Prio uint8
}

// Scenario compiles the cell to the declarative spec the scenario layer
// executes. The result is unresolved: Cell zero values map to Scenario
// zero values and scenario.Resolve supplies the shared defaults.
func (c Cell) Scenario() scenario.Scenario {
	spines, leaves, hostsPerLeaf, duration := c.Scale.fabric()
	if c.Duration > 0 {
		duration = c.Duration
	}
	sc := scenario.Scenario{
		Seed:     c.Seed,
		Shards:   c.Shards,
		Duration: scenario.Duration(duration),
		Fabric: scenario.Fabric{
			Spines:       spines,
			Leaves:       leaves,
			HostsPerLeaf: hostsPerLeaf,
		},
		Buffer: scenario.Buffer{
			KBPerPortPerGbps: c.BufferKBPerPortGbps,
			QueuesPerPort:    c.QueuesPerPort,
			AlphaUnscheduled: c.AlphaUnscheduled,
		},
		Switch: scenario.Switch{
			BM:                c.BM,
			UpdateInterval:    scenario.Duration(c.UpdateInterval),
			CongestedFactor:   c.CongestedFactor,
			DrainRateMeasured: c.DrainRateMeasured,
			StatsInterval:     scenario.Duration(c.StatsIntervalOverride),
			Scheduler:         c.Scheduler,
			Trimming:          c.Trimming,
		},
		Workload: scenario.Workload{
			Load:       c.Load,
			Background: c.Workload,
			CC:         c.WSCC,
			Prio:       c.WSPrio,
			RandomPrio: c.RandomPrio,
			Incast: scenario.Incast{
				RequestFrac: c.RequestFrac,
				Fanout:      c.Fanout,
				Load:        c.IncastLoad,
				CC:          c.IncastCC,
				Prio:        c.IncastPrio,
			},
		},
		Obs: c.Obs,
	}
	if c.Fabric != nil {
		sc.Fabric = *c.Fabric
	}
	// The Alpha knob replicates one value across every queue; scenario
	// specs carry the explicit per-queue vector.
	if c.Alpha > 0 {
		sc.Buffer.Alphas = []float64{c.Alpha}
	}
	// Cell headroom is a sentinel float (0 scheme default, <0 disabled);
	// the spec distinguishes "unset" from "explicitly zero" instead.
	switch {
	case c.HeadroomFrac > 0:
		v := c.HeadroomFrac
		sc.Buffer.HeadroomFrac = &v
	case c.HeadroomFrac < 0:
		v := 0.0
		sc.Buffer.HeadroomFrac = &v
	}
	for _, a := range c.MixedCC {
		sc.Workload.MixedCC = append(sc.Workload.MixedCC,
			scenario.CCAssignment{CC: a.CC, Prio: a.Prio})
	}
	return sc
}

// Result is a finished cell.
type Result struct {
	Cell    Cell
	Summary metrics.Summary
	// PerPrioP99Short holds the per-priority p99 short-flow slowdown for
	// mixed-protocol cells (fig8).
	PerPrioP99Short map[uint8]float64

	Drops            int64
	UnscheduledDrops int64
	Events           uint64

	// Counters holds the telemetry counter totals by export name when
	// the cell enabled telemetry (Cell.Obs); nil otherwise. The model/
	// keys are shard-count-invariant.
	Counters map[string]int64

	// Hists holds the merged histogram snapshots by export name when
	// the cell enabled histogram recording; nil otherwise. Shard-count-
	// invariant like Counters.
	Hists map[string]hist.Snapshot

	// Resolved is the fully-explicit scenario the cell executed — the
	// re-runnable record sweep job results embed.
	Resolved scenario.Scenario
}

// Run executes one cell and returns its result.
func Run(cell Cell) (Result, error) {
	res, _, err := RunDetailed(cell)
	return res, err
}

// RunDetailed is Run, additionally returning the metrics collector with
// every flow record for tracing and custom analysis.
func RunDetailed(cell Cell) (Result, *metrics.Collector, error) {
	sres, col, err := scenario.Run(cell.Scenario())
	if err != nil {
		return Result{}, nil, err
	}
	return Result{
		Cell:             cell,
		Summary:          sres.Summary,
		PerPrioP99Short:  sres.PerPrioP99Short,
		Drops:            sres.Drops,
		UnscheduledDrops: sres.UnscheduledDrops,
		Events:           sres.Events,
		Counters:         sres.Counters,
		Hists:            sres.Hists,
		Resolved:         sres.Scenario,
	}, col, nil
}
