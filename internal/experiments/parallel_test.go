package experiments

import (
	"reflect"
	"testing"

	"abm/internal/scenario"
	"abm/internal/units"
)

// shortCells is a Fig6-class slice of the figure grid, cut to a short
// duration so the shard sweep stays CI-sized. IB exercises the
// per-switch RNG stream, RandomPrio the shared workload RNG, MixedCC
// the per-flow CC assignment path.
func shortCells() []Cell {
	base := Cell{Scale: ScaleSmall, Seed: 42, Duration: 8 * units.Millisecond,
		Load: 0.6, WSCC: "dctcp", RequestFrac: 0.5}
	dt := base
	dt.BM = "DT"
	ib := base
	ib.BM = "IB"
	abm := base
	abm.BM = "ABM"
	rp := base
	rp.BM = "ABM"
	rp.QueuesPerPort = 2
	rp.RandomPrio = true
	mixed := Cell{Scale: ScaleSmall, Seed: 42, Duration: 8 * units.Millisecond,
		Load: 0.6, BM: "ABM", QueuesPerPort: 2,
		MixedCC: []CCAssignment{{CC: "dctcp", Prio: 0}, {CC: "timely", Prio: 1}}}
	// Medium scale has 4 leaves, so shards=4 is a genuine 4-way split
	// (small clamps at its 2 leaves).
	med := Cell{Scale: ScaleMedium, Seed: 42, Duration: 3 * units.Millisecond,
		Load: 0.6, WSCC: "dctcp", RequestFrac: 0.5, BM: "ABM"}
	// Fat tree k=4: 16 hosts over 3 tiers and 8 edge groups, so every
	// shard count in the sweep is a genuine split of a multi-tier graph.
	ft := Cell{Seed: 42, Duration: 3 * units.Millisecond,
		Load: 0.6, WSCC: "dctcp", RequestFrac: 0.5, BM: "ABM",
		Fabric: &scenario.Fabric{Topology: "fattree", K: 4}}
	// Mid-run uplink failure + recovery: the barrier-scheduled routing
	// recompute must be shard-count-invariant too.
	fail := Cell{Seed: 42, Duration: 8 * units.Millisecond,
		Load: 0.6, WSCC: "dctcp", RequestFrac: 0.5, BM: "ABM",
		Fabric: &scenario.Fabric{Spines: 2, Leaves: 2, HostsPerLeaf: 8,
			LinkFaults: []scenario.LinkFault{
				{Link: "leaf0-spine1", At: scenario.Duration(2 * units.Millisecond),
					RecoverAt: scenario.Duration(5 * units.Millisecond)},
			}}}
	return []Cell{dt, ib, abm, rp, mixed, med, ft, fail}
}

// TestShardCountInvariance is the cross-shard determinism golden test:
// each cell must produce an identical result — every flow record,
// every buffer sample, every drop counter — at 1, 2, 4, and 8 shards.
// (8 shards clamps to the 2 leaves of the small scale; it exercises the
// clamping path.)
func TestShardCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run shard sweep")
	}
	for _, cell := range shortCells() {
		name := cell.BM
		if cell.Scale != ScaleSmall {
			name += "-" + cell.Scale.String()
		}
		if cell.RandomPrio {
			name += "-randprio"
		}
		if len(cell.MixedCC) > 0 {
			name += "-mixed"
		}
		if cell.Fabric != nil {
			if cell.Fabric.Topology == "fattree" {
				name += "-fattree"
			}
			if len(cell.Fabric.LinkFaults) > 0 {
				name += "-linkfail"
			}
		}
		t.Run(name, func(t *testing.T) {
			var refRes Result
			var refFlows, refSamples any
			for _, shards := range []int{1, 2, 4, 8} {
				c := cell
				c.Shards = shards
				res, col, err := RunDetailed(c)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				// Cell and the resolved scenario differ by construction
				// (Shards); the invariance claim is about the outputs.
				res.Cell = Cell{}
				res.Resolved = scenario.Scenario{}
				if shards == 1 {
					refRes, refFlows, refSamples = res, col.Flows, col.BufferSamples
					if res.Summary.Flows < 25 {
						t.Fatalf("only %d flows; cell too small to be meaningful", res.Summary.Flows)
					}
					continue
				}
				if !reflect.DeepEqual(res, refRes) {
					t.Errorf("shards=%d result diverged:\n%+v\nwant\n%+v", shards, res, refRes)
				}
				if !reflect.DeepEqual(col.Flows, refFlows) {
					t.Errorf("shards=%d flow records diverged", shards)
				}
				if !reflect.DeepEqual(col.BufferSamples, refSamples) {
					t.Errorf("shards=%d buffer samples diverged", shards)
				}
			}
		})
	}
}
