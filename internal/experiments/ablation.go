package experiments

import (
	"fmt"
	"io"

	"abm/internal/units"
)

// Ablations probe the design choices DESIGN.md calls out, each on the
// Figure-6 style cell (web-search 40% + incast 30%, cubic) with ABM:
//
//   - the drain-rate estimator (scheduler share vs measured bytes),
//   - the congestion-detection factor (the paper's 0.9),
//   - the headroom reservation,
//   - the unscheduled alpha (the paper's 64).
//
// RunAblation writes one TSV block per axis.
func RunAblation(scale Scale, seed int64, w io.Writer) error {
	return runAblation(nil, scale, seed, w)
}

func runAblation(o *RunOptions, scale Scale, seed int64, w io.Writer) error {
	base := Cell{
		Scale: scale, Seed: seed,
		BM: "ABM", Load: 0.4, WSCC: "cubic",
		RequestFrac: 0.3,
	}

	// Each block is a titled group of labeled variants; the whole grid
	// runs as one parallel plan, then renders block by block.
	type block struct {
		title string
		jobs  []cellJob
	}
	var blocks []block
	add := func(title string, jobs ...cellJob) {
		blocks = append(blocks, block{title: title, jobs: jobs})
	}

	measured := base
	measured.DrainRateMeasured = true
	add("drain-rate estimator (ABM's mu/b source)",
		cellJob{label: "scheduler-share", cell: base},
		cellJob{label: "measured", cell: measured})

	var factors []cellJob
	for _, f := range []float64{0.5, 0.7, 0.9, 0.99} {
		c := base
		c.CongestedFactor = f
		factors = append(factors, cellJob{label: fmt.Sprintf("f=%.2f", f), cell: c})
	}
	add("congestion detection factor (queue congested above f*threshold)", factors...)

	var headrooms []cellJob
	for _, hr := range []float64{-1, 1.0 / 16, 1.0 / 8, 1.0 / 4} {
		c := base
		c.HeadroomFrac = hr
		label := fmt.Sprintf("headroom=%.3f", hr)
		if hr < 0 {
			label = "headroom=0"
		}
		headrooms = append(headrooms, cellJob{label: label, cell: c})
	}
	add("headroom reservation (fraction of the chip buffer)", headrooms...)

	var alphaUs []cellJob
	for _, au := range []float64{0.5, 8, 64, 512} {
		c := base
		c.AlphaUnscheduled = au
		alphaUs = append(alphaUs, cellJob{label: fmt.Sprintf("alphaU=%g", au), cell: c})
	}
	add("unscheduled alpha (the paper uses 64)", alphaUs...)

	var intervals []cellJob
	for _, mult := range []int{1, 4, 16} {
		c := base
		c.StatsIntervalOverride = units.Time(mult) * 80 * units.Microsecond
		intervals = append(intervals, cellJob{label: fmt.Sprintf("interval=%dxRTT", mult), cell: c})
	}
	add("stats update interval (n_p and mu refresh; the paper uses 1 RTT)", intervals...)

	var jobs []cellJob
	for _, b := range blocks {
		jobs = append(jobs, b.jobs...)
	}
	results, err := runCells(o, "ablation", jobs)
	if err != nil {
		return err
	}
	i := 0
	for _, b := range blocks {
		fmt.Fprintf(w, "# Ablation: %s\n", b.title)
		fmt.Fprintln(w, "variant\tp99_incast\tp99_short\tp99_buffer_pct\tavg_tput_pct")
		for _, job := range b.jobs {
			s := results[i].Summary
			i++
			fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\n",
				job.label, s.P99IncastSlowdown, s.P99ShortSlowdown,
				100*s.P99BufferFrac, 100*s.AvgThroughputFrac)
		}
	}
	return nil
}
