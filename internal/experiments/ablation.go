package experiments

import (
	"fmt"
	"io"

	"abm/internal/units"
)

// Ablations probe the design choices DESIGN.md calls out, each on the
// Figure-6 style cell (web-search 40% + incast 30%, cubic) with ABM:
//
//   - the drain-rate estimator (scheduler share vs measured bytes),
//   - the congestion-detection factor (the paper's 0.9),
//   - the headroom reservation,
//   - the unscheduled alpha (the paper's 64).
//
// RunAblation writes one TSV block per axis.
func RunAblation(scale Scale, seed int64, w io.Writer) error {
	base := Cell{
		Scale: scale, Seed: seed,
		BM: "ABM", Load: 0.4, WSCC: "cubic",
		RequestFrac: 0.3,
	}

	row := func(label string, cell Cell) error {
		res, err := Run(cell)
		if err != nil {
			return err
		}
		s := res.Summary
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\n",
			label, s.P99IncastSlowdown, s.P99ShortSlowdown,
			100*s.P99BufferFrac, 100*s.AvgThroughputFrac)
		return nil
	}
	header := func(title string) {
		fmt.Fprintf(w, "# Ablation: %s\n", title)
		fmt.Fprintln(w, "variant\tp99_incast\tp99_short\tp99_buffer_pct\tavg_tput_pct")
	}

	header("drain-rate estimator (ABM's mu/b source)")
	c := base
	if err := row("scheduler-share", c); err != nil {
		return err
	}
	c.DrainRateMeasured = true
	if err := row("measured", c); err != nil {
		return err
	}

	header("congestion detection factor (queue congested above f*threshold)")
	for _, f := range []float64{0.5, 0.7, 0.9, 0.99} {
		c := base
		c.CongestedFactor = f
		if err := row(fmt.Sprintf("f=%.2f", f), c); err != nil {
			return err
		}
	}

	header("headroom reservation (fraction of the chip buffer)")
	for _, hr := range []float64{-1, 1.0 / 16, 1.0 / 8, 1.0 / 4} {
		c := base
		c.HeadroomFrac = hr
		label := fmt.Sprintf("headroom=%.3f", hr)
		if hr < 0 {
			label = "headroom=0"
		}
		if err := row(label, c); err != nil {
			return err
		}
	}

	header("unscheduled alpha (the paper uses 64)")
	for _, au := range []float64{0.5, 8, 64, 512} {
		c := base
		c.AlphaUnscheduled = au
		if err := row(fmt.Sprintf("alphaU=%g", au), c); err != nil {
			return err
		}
	}

	header("stats update interval (n_p and mu refresh; the paper uses 1 RTT)")
	for _, mult := range []int{1, 4, 16} {
		c := base
		c.StatsIntervalOverride = units.Time(mult) * 80 * units.Microsecond
		if err := row(fmt.Sprintf("interval=%dxRTT", mult), c); err != nil {
			return err
		}
	}
	return nil
}
