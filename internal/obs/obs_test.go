package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"abm/internal/units"
)

func TestParseMask(t *testing.T) {
	cases := []struct {
		in   string
		want uint32
		err  bool
	}{
		{"", MaskAll, false},
		{"  ", MaskAll, false},
		{"all", MaskAll, false},
		{"model", MaskModel, false},
		{"engine", MaskEngine, false},
		{"model,engine", MaskAll, false},
		{"admit", 1 << KindAdmit, false},
		{"admit,dequeue", 1<<KindAdmit | 1<<KindDequeue, false},
		{" admit , mark ,", 1<<KindAdmit | 1<<KindMark, false},
		{"window,barrier", MaskEngine, false},
		{"bogus", 0, true},
		{"admit,bogus", 0, true},
	}
	for _, c := range cases {
		got, err := ParseMask(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseMask(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("ParseMask(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
	// Every kind name must parse back to exactly its own bit.
	for k := Kind(0); k < numKinds; k++ {
		got, err := ParseMask(k.String())
		if err != nil || got != 1<<k {
			t.Errorf("ParseMask(%q) = %#x, %v; want %#x", k.String(), got, err, uint32(1)<<k)
		}
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Get() != 0 {
		t.Fatal("nil Counter.Get != 0")
	}
	var s *Sink
	if s.Enabled(KindAdmit) {
		t.Fatal("nil Sink reports enabled")
	}
	if s.Ctr(CtrDataSent) != nil {
		t.Fatal("nil Sink.Ctr != nil")
	}
	if s.Events() != nil {
		t.Fatal("nil Sink.Events != nil")
	}
	var sess *Session
	if sess.ShardSink(0) != nil || sess.EngineSink() != nil {
		t.Fatal("nil Session returned a sink")
	}
	if sess.MergedEvents() != nil || sess.Totals() != nil {
		t.Fatal("nil Session returned data")
	}
}

func TestSinkBufferCap(t *testing.T) {
	s := &Sink{mask: MaskAll, bar53: 1 << 53, max: 3}
	for i := 0; i < 5; i++ {
		s.Emit(Event{At: units.Time(i), Kind: KindAdmit})
	}
	if len(s.Events()) != 3 {
		t.Fatalf("buffer holds %d events, want cap 3", len(s.Events()))
	}
	if got := s.Ctr(CtrTraceDropped).Get(); got != 2 {
		t.Fatalf("trace_events_dropped = %d, want 2", got)
	}
}

// TestSamplingShardInvariant checks the core property of hash sampling:
// whether an event is kept depends only on its identity, never on which
// sink (shard) it lands in or what was emitted before it.
func TestSamplingShardInvariant(t *testing.T) {
	const n = 4096
	events := make([]Event, n)
	rng := rand.New(rand.NewSource(42))
	for i := range events {
		events[i] = Event{
			At:   units.Time(rng.Int63n(1 << 40)),
			Flow: rng.Uint64() % 512,
			Seq:  rng.Int63n(1 << 20),
			Node: int32(rng.Intn(64)),
			Kind: Kind(rng.Intn(int(KindMark) + 1)), // sampled kinds only
		}
	}
	newSink := func() *Sink {
		s, err := NewSession(Options{EventsFile: "x", Sample: 0.25}, 1)
		if err != nil {
			t.Fatal(err)
		}
		return s.ShardSink(0)
	}

	serial := newSink()
	for i := range events {
		serial.Emit(events[i])
	}
	kept := serial.Events()
	if len(kept) == 0 || len(kept) == n {
		t.Fatalf("sampling kept %d of %d; expected a strict subset", len(kept), n)
	}
	// Rough sanity on the ratio (binomial around 0.25).
	if frac := float64(len(kept)) / n; frac < 0.15 || frac > 0.35 {
		t.Fatalf("sampling kept %.2f, want ~0.25", frac)
	}

	// Re-emit partitioned across 4 sinks by flow; the union must be the
	// same multiset, in the same per-identity order.
	shards := [4]*Sink{newSink(), newSink(), newSink(), newSink()}
	for i := range events {
		shards[events[i].Flow%4].Emit(events[i])
	}
	var union []Event
	for _, sk := range shards {
		union = append(union, sk.Events()...)
	}
	if len(union) != len(kept) {
		t.Fatalf("sharded sampling kept %d, serial kept %d", len(union), len(kept))
	}
	count := func(evs []Event) map[Event]int {
		m := make(map[Event]int, len(evs))
		for _, ev := range evs {
			m[ev]++
		}
		return m
	}
	if !reflect.DeepEqual(count(kept), count(union)) {
		t.Fatal("sharded sampling kept a different event set than serial")
	}
}

// TestMergedEventsOrder checks the canonical export order: a stable
// sort on the identity key, with full-key ties keeping their shard
// buffer's execution order.
func TestMergedEventsOrder(t *testing.T) {
	sess, err := NewSession(Options{EventsFile: "x"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 holds the later events, shard 1 the earlier ones, plus a
	// same-key pair in shard 0 whose relative order must survive.
	sess.ShardSink(0).Emit(Event{At: 200, Node: 3, Kind: KindEnqueue, Seq: 1, Aux: 111})
	sess.ShardSink(0).Emit(Event{At: 200, Node: 3, Kind: KindEnqueue, Seq: 1, Aux: 222})
	sess.ShardSink(0).Emit(Event{At: 300, Node: 1, Kind: KindAdmit})
	sess.ShardSink(1).Emit(Event{At: 100, Node: 9, Kind: KindAdmit})
	sess.ShardSink(1).Emit(Event{At: 200, Node: 2, Kind: KindDequeue})
	sess.EngineSink().Emit(Event{At: 100, Node: 0, Kind: KindWindow})

	got := sess.MergedEvents()
	wantAt := []units.Time{100, 100, 200, 200, 200, 300}
	wantNode := []int32{0, 9, 2, 3, 3, 1}
	if len(got) != len(wantAt) {
		t.Fatalf("merged %d events, want %d", len(got), len(wantAt))
	}
	for i := range got {
		if got[i].At != wantAt[i] || got[i].Node != wantNode[i] {
			t.Fatalf("merged[%d] = (t=%d node=%d), want (t=%d node=%d)",
				i, got[i].At, got[i].Node, wantAt[i], wantNode[i])
		}
	}
	// The tie (t=200, node=3) kept execution order.
	if got[3].Aux != 111 || got[4].Aux != 222 {
		t.Fatalf("full-key tie reordered: %d then %d, want 111 then 222", got[3].Aux, got[4].Aux)
	}
}

// TestWriteNDJSONGolden pins the exact byte output per kind — the
// export is hand-built, so the schema is verified here rather than by
// the json package.
func TestWriteNDJSONGolden(t *testing.T) {
	events := []Event{
		{At: 1500, Kind: KindAdmit, Node: 10000, Port: 2, Prio: 1, Flow: 7, Seq: 3,
			Size: 1500, QLen: 4500, Free: 90000, Thresh: 12000, Alpha: 0.5, MuB: 0.25,
			NCong: 2, Unsched: true, Verdict: VerdictDropThreshold},
		{At: 1600, Kind: KindEnqueue, Node: 10000, Port: 2, Prio: 1, Flow: 7, Seq: 4, Size: 1500, QLen: 6000},
		{At: 1700, Kind: KindDequeue, Node: 10000, Port: 2, Prio: 1, Flow: 7, Seq: 4, Size: 1500,
			QLen: 4500, Aux: 100, Verdict: VerdictTx},
		{At: 1800, Kind: KindMark, Node: 20000, Port: 0, Prio: 0, Flow: 9, Seq: 1, Size: 64, QLen: 128},
		{At: 2000, Kind: KindTimeout, Node: 5, Flow: 9, Seq: 11, Aux: 9000000, QLen: 3000},
		{At: 2100, Kind: KindCwndCut, Node: 5, Flow: 9, QLen: 1500},
		{At: 2150, Kind: KindHybridDemote, Node: 5, Flow: 9, Seq: 20000, QLen: 45000, Aux: 1250000000},
		{At: 2160, Kind: KindHybridPromote, Node: 5, Flow: 9, Seq: 80000, QLen: 60000, Aux: 60000},
		{At: 2200, Kind: KindWindow, Node: 1, Dur: 500, Aux: 42, Wall: 777},
		{At: 2300, Kind: KindBarrier, Aux: 2, Wall: 888},
	}
	want := strings.Join([]string{
		`{"t":1500,"kind":"admit","node":10000,"port":2,"prio":1,"flow":7,"seq":3,"size":1500,"qlen":4500,"free":90000,"thresh":12000,"alpha":0.5,"mu_b":0.25,"ncong":2,"unsched":true,"verdict":"drop-threshold"}`,
		`{"t":1600,"kind":"enqueue","node":10000,"port":2,"prio":1,"flow":7,"seq":4,"size":1500,"qlen":6000}`,
		`{"t":1700,"kind":"dequeue","node":10000,"port":2,"prio":1,"flow":7,"seq":4,"size":1500,"qlen":4500,"sojourn_ps":100,"verdict":"tx"}`,
		`{"t":1800,"kind":"mark","node":20000,"port":0,"prio":0,"flow":9,"seq":1,"size":64,"qlen":128}`,
		`{"t":2000,"kind":"timeout","node":5,"flow":9,"seq":11,"rto_ps":9000000,"cwnd":3000}`,
		`{"t":2100,"kind":"cwndcut","node":5,"flow":9,"cwnd":1500}`,
		`{"t":2150,"kind":"hybrid-demote","node":5,"flow":9,"seq":20000,"cwnd":45000,"rate":1250000000}`,
		`{"t":2160,"kind":"hybrid-promote","node":5,"flow":9,"seq":80000,"cwnd":60000,"fluid_bytes":60000}`,
		`{"t":2200,"kind":"window","shard":1,"dur_ps":500,"events":42,"wall_ns":777}`,
		`{"t":2300,"kind":"barrier","shards":2,"wall_ns":888}`,
	}, "\n") + "\n"

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	if buf.String() != want {
		t.Errorf("NDJSON mismatch:\ngot:\n%swant:\n%s", buf.String(), want)
	}
	// Every line must also be valid JSON.
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Errorf("invalid JSON line %q: %v", line, err)
		}
	}
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	sess, err := NewSession(Options{ChromeFile: "x"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	sess.ShardSink(0).Emit(Event{At: 1000, Kind: KindEnqueue, Node: 10000, Port: 1, QLen: 3000})
	sess.ShardSink(0).Emit(Event{At: 2000, Kind: KindAdmit, Node: 10000, Port: 1, Verdict: VerdictDropThreshold,
		Free: 500, Thresh: 100, Alpha: 0.5, MuB: 1, NCong: 3})
	sess.ShardSink(1).Emit(Event{At: 1500, Kind: KindMark, Node: 20000, Port: 0, QLen: 64})
	sess.ShardSink(1).Emit(Event{At: 3000, Kind: KindTimeout, Node: 4, Flow: 8, QLen: 1500})
	sess.EngineSink().Emit(Event{At: 0, Dur: 1000, Kind: KindWindow, Node: 0, Aux: 10, Wall: 50})
	sess.EngineSink().Emit(Event{At: 1000, Kind: KindBarrier, Aux: 2, Wall: 20})

	var buf bytes.Buffer
	if err := WriteChrome(&buf, sess.MergedEvents(), func(id int32) string { return "n" }); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph]++
	}
	for _, ph := range []string{"M", "C", "i", "X"} {
		if phases[ph] == 0 {
			t.Errorf("chrome trace has no %q events (got %v)", ph, phases)
		}
	}
}

func TestOptionsForJob(t *testing.T) {
	o := Options{EventsFile: "ev", ChromeFile: "ch", CountersFile: "ct", PerJob: true}
	j := o.ForJob("sweep/001-bm=ABM,load=0.4/rep 1")
	if j.PerJob {
		t.Fatal("ForJob left PerJob set")
	}
	if j.EventsFile != "ev/sweep-001-bm=ABM,load=0.4-rep-1.ndjson" {
		t.Errorf("EventsFile = %q", j.EventsFile)
	}
	if j.ChromeFile != "ch/sweep-001-bm=ABM,load=0.4-rep-1.trace.json" {
		t.Errorf("ChromeFile = %q", j.ChromeFile)
	}
	if j.CountersFile != "ct/sweep-001-bm=ABM,load=0.4-rep-1.tsv" {
		t.Errorf("CountersFile = %q", j.CountersFile)
	}
	// Without PerJob the paths pass through untouched.
	o.PerJob = false
	if got := o.ForJob("x"); got != o {
		t.Errorf("ForJob without PerJob changed options: %+v", got)
	}
}

func TestSessionInactive(t *testing.T) {
	sess, err := NewSession(Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sess != nil {
		t.Fatal("inactive options produced a non-nil session")
	}
	// Counters alone activates the registry but records no events.
	sess, err = NewSession(Options{Counters: true}, 2)
	if err != nil || sess == nil {
		t.Fatalf("Counters-only session: %v, %v", sess, err)
	}
	if sess.ShardSink(0).Enabled(KindAdmit) {
		t.Fatal("Counters-only session records events")
	}
	sess.ShardSink(0).Ctr(CtrDataSent).Add(3)
	sess.ShardSink(1).Ctr(CtrDataSent).Add(4)
	if got := sess.Totals()["model/data_pkts_sent"]; got != 7 {
		t.Fatalf("totals sum = %d, want 7", got)
	}
	if mt := sess.ModelTotals(); len(mt) != 1 {
		t.Fatalf("ModelTotals = %v, want only model/data_pkts_sent", mt)
	}
}
