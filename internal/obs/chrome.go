package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace process IDs: one virtual "process" per layer so Perfetto
// groups the tracks.
const (
	chromePidFabric = 1 // per-queue occupancy counters + drop/mark instants
	chromePidEngine = 2 // per-shard window spans + coordinator barriers
	chromePidHosts  = 3 // sender timeouts and window cuts

	chromeTidCoordinator = 1 << 20
)

// chromeEvent is one trace-event JSON object. Args is a map, which
// encoding/json renders with sorted keys, so the output is
// deterministic for a deterministic event stream.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders events as Chrome trace-event JSON, loadable in
// chrome://tracing or Perfetto. Timestamps are simulated microseconds.
// Tracks: one counter track per port-priority queue (occupancy from
// enqueue/dequeue events) with drop/mark instants on matching threads,
// one span track per engine shard (lookahead windows, with executed
// event counts and wall time in args), and instant tracks for sender
// timeouts/window cuts. nodeName labels switch/host IDs; nil falls back
// to "node<id>".
func WriteChrome(w io.Writer, events []Event, nodeName func(int32) string) error {
	if nodeName == nil {
		nodeName = func(id int32) string { return fmt.Sprintf("node%d", id) }
	}
	type queueKey struct {
		node       int32
		port, prio int16
	}
	queueTid := make(map[queueKey]int)
	queueLabel := func(k queueKey) string {
		return fmt.Sprintf("%s p%d.q%d", nodeName(k.node), k.port, k.prio)
	}

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder appends a newline, giving one event per line.
		return enc.Encode(ev)
	}
	meta := func(pid int, tid int, key, name string) error {
		return emit(chromeEvent{Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}})
	}

	if err := meta(chromePidFabric, 0, "process_name", "fabric"); err != nil {
		return err
	}
	if err := meta(chromePidEngine, 0, "process_name", "engine"); err != nil {
		return err
	}
	if err := meta(chromePidHosts, 0, "process_name", "hosts"); err != nil {
		return err
	}

	// tid of a queue, assigned on first encounter (deterministic for a
	// deterministic event order) with its thread-name metadata.
	tidOf := func(k queueKey) (int, error) {
		if tid, ok := queueTid[k]; ok {
			return tid, nil
		}
		tid := len(queueTid)
		queueTid[k] = tid
		return tid, meta(chromePidFabric, tid, "thread_name", queueLabel(k))
	}

	seenShard := make(map[int32]bool)
	seenHost := make(map[int32]bool)
	us := func(ps int64) float64 { return float64(ps) / 1e6 }

	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case KindEnqueue, KindDequeue:
			k := queueKey{ev.Node, ev.Port, ev.Prio}
			tid, err := tidOf(k)
			if err != nil {
				return err
			}
			if err := emit(chromeEvent{Name: "qlen " + queueLabel(k), Ph: "C",
				Pid: chromePidFabric, Tid: tid, Ts: us(int64(ev.At)),
				Args: map[string]any{"bytes": int64(ev.QLen)}}); err != nil {
				return err
			}
			if ev.Kind == KindDequeue && ev.Verdict == VerdictDropDequeue {
				if err := emit(chromeEvent{Name: "drop-dequeue", Ph: "i", S: "t",
					Pid: chromePidFabric, Tid: tid, Ts: us(int64(ev.At)),
					Args: map[string]any{"flow": ev.Flow, "seq": ev.Seq,
						"sojourn_us": us(ev.Aux)}}); err != nil {
					return err
				}
			}
		case KindAdmit:
			if !VerdictDropped(ev.Verdict) {
				continue // admissions are visible through the qlen track
			}
			tid, err := tidOf(queueKey{ev.Node, ev.Port, ev.Prio})
			if err != nil {
				return err
			}
			if err := emit(chromeEvent{Name: VerdictName(ev.Verdict), Ph: "i", S: "t",
				Pid: chromePidFabric, Tid: tid, Ts: us(int64(ev.At)),
				Args: map[string]any{
					"flow": ev.Flow, "seq": ev.Seq, "size": ev.Size,
					"qlen": int64(ev.QLen), "free": int64(ev.Free),
					"thresh": int64(ev.Thresh), "alpha": ev.Alpha,
					"mu_b": ev.MuB, "n_p": ev.NCong, "unscheduled": ev.Unsched,
				}}); err != nil {
				return err
			}
		case KindMark:
			tid, err := tidOf(queueKey{ev.Node, ev.Port, ev.Prio})
			if err != nil {
				return err
			}
			if err := emit(chromeEvent{Name: "ecn-mark", Ph: "i", S: "t",
				Pid: chromePidFabric, Tid: tid, Ts: us(int64(ev.At)),
				Args: map[string]any{"flow": ev.Flow, "seq": ev.Seq,
					"qlen": int64(ev.QLen)}}); err != nil {
				return err
			}
		case KindTimeout, KindCwndCut, KindHybridDemote, KindHybridPromote:
			if !seenHost[ev.Node] {
				seenHost[ev.Node] = true
				if err := meta(chromePidHosts, int(ev.Node), "thread_name", nodeName(ev.Node)); err != nil {
					return err
				}
			}
			name := "rto"
			args := map[string]any{"flow": ev.Flow, "cwnd": int64(ev.QLen)}
			switch ev.Kind {
			case KindTimeout:
				args["seq"] = ev.Seq
				args["rto_us"] = us(ev.Aux)
			case KindCwndCut:
				name = "cwnd-cut"
			case KindHybridDemote:
				name = "hybrid-demote"
				args["seq"] = ev.Seq
				args["rate_bytes_s"] = ev.Aux
			case KindHybridPromote:
				name = "hybrid-promote"
				args["seq"] = ev.Seq
				args["fluid_bytes"] = ev.Aux
			}
			if err := emit(chromeEvent{Name: name, Ph: "i", S: "t",
				Pid: chromePidHosts, Tid: int(ev.Node), Ts: us(int64(ev.At)),
				Args: args}); err != nil {
				return err
			}
		case KindWindow:
			if !seenShard[ev.Node] {
				seenShard[ev.Node] = true
				if err := meta(chromePidEngine, int(ev.Node), "thread_name",
					fmt.Sprintf("shard %d", ev.Node)); err != nil {
					return err
				}
			}
			if err := emit(chromeEvent{Name: "window", Ph: "X",
				Pid: chromePidEngine, Tid: int(ev.Node),
				Ts: us(int64(ev.At)), Dur: us(int64(ev.Dur)),
				Args: map[string]any{"events": ev.Aux,
					"wall_us": float64(ev.Wall) / 1e3}}); err != nil {
				return err
			}
		case KindBarrier:
			if !seenShard[-1] {
				seenShard[-1] = true
				if err := meta(chromePidEngine, chromeTidCoordinator, "thread_name", "coordinator"); err != nil {
					return err
				}
			}
			if err := emit(chromeEvent{Name: "barrier", Ph: "i", S: "p",
				Pid: chromePidEngine, Tid: chromeTidCoordinator, Ts: us(int64(ev.At)),
				Args: map[string]any{"shards": ev.Aux,
					"wait_us": float64(ev.Wall) / 1e3}}); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
