package obs

import (
	"flag"
	"fmt"
	"strings"
)

// Flags registers the shared telemetry flag surface on the default flag
// set. Every simulation CLI (abmsim, figures, sweep) exposes the same
// names; the only difference is whether paths mean files (one run) or
// directories (one file per job).
type Flags struct {
	Opts Options
}

// AddFlags registers -trace-events, -trace-chrome, -trace-filter,
// -trace-sample and -counters. perJob selects directory semantics for
// the path flags (figures/sweep) instead of single files (abmsim).
func (f *Flags) AddFlags(perJob bool) {
	f.AddFlagsTo(flag.CommandLine, perJob)
}

// AddFlagsTo is AddFlags on an explicit flag set, for CLIs that parse
// into their own set instead of the process-global one.
func (f *Flags) AddFlagsTo(fs *flag.FlagSet, perJob bool) {
	noun := "this file"
	if perJob {
		noun = "one file per job under this directory"
	}
	f.Opts.PerJob = perJob
	fs.StringVar(&f.Opts.EventsFile, "trace-events", "",
		"write the telemetry event stream as NDJSON to "+noun)
	fs.StringVar(&f.Opts.ChromeFile, "trace-chrome", "",
		"write a Chrome trace-event JSON (chrome://tracing, Perfetto) to "+noun)
	fs.StringVar(&f.Opts.Filter, "trace-filter", "",
		"event kinds to record: comma-separated "+strings.Join(kindNames[:], ", ")+
			", or the aliases model, engine, all (default all)")
	fs.Float64Var(&f.Opts.Sample, "trace-sample", 0,
		"keep roughly this fraction of queue-level events, selected by a shard-invariant identity hash (0 or 1 = all)")
	fs.StringVar(&f.Opts.CountersFile, "counters", "",
		"write telemetry counter totals and the per-queue summary TSV to "+noun)
	fs.BoolVar(&f.Opts.Hists, "hists", false,
		"record streaming histograms (FCT slowdown per class, queue occupancy/delay, admission headroom)")
	fs.StringVar(&f.Opts.HistFile, "hist-snapshots", "",
		"write the histogram snapshot series as NDJSON to "+noun+" (implies -hists)")
	fs.StringVar(&f.Opts.MetricsAddr, "metrics-addr", "",
		"serve live /metrics (Prometheus text format) on this address while the run is in flight (implies -hists; per-job runs ignore it)")
}

// Validate checks the flag combination early (before a long run) and
// returns the resolved options.
func (f *Flags) Validate() (Options, error) {
	if _, err := ParseMask(f.Opts.Filter); err != nil {
		return Options{}, err
	}
	if f.Opts.Sample < 0 || f.Opts.Sample > 1 {
		return Options{}, fmt.Errorf("obs: -trace-sample %g outside [0, 1]", f.Opts.Sample)
	}
	return f.Opts, nil
}
