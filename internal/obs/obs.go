// Package obs is the simulator's telemetry layer: a deterministic
// counter registry plus a structured event tracer, designed so that a
// disabled instrument costs nothing on the packet hot path.
//
// # Zero cost when disabled
//
// Every instrumented component holds a *Sink (nil when telemetry is
// off) and *Counter handles resolved once at setup. All hot-path
// methods — Counter.Inc/Add, Sink.Enabled — are nil-receiver-safe
// single-branch operations that inline, so the disabled configuration
// adds no allocation, no map lookup, no atomic, and no call through an
// interface to the packet lifecycle (pinned by TestSteadyStateZeroAlloc).
//
// # Determinism across shard counts
//
// The parallel engine gives every shard its own Sink, written only by
// that shard's goroutine; no synchronization is needed until export.
// Model counters are summed across sinks (addition commutes, so the
// totals are trivially shard-count-invariant). Model events are merged
// by a stable sort on the identity key (At, Node, Port, Prio, Flow,
// Seq, Kind): two distinct model events can collide on the full key
// only if they concern the same queue or flow at the same picosecond,
// which places them in the same shard buffer in the engine's canonical
// execution order — so the merged stream, like the simulation output
// it narrates, is byte-identical at any shard count. Engine events
// (KindWindow, KindBarrier) and engine/ counters carry wall-clock
// measurements and are excluded from that guarantee.
//
// The optional sampling ratio hashes each event's identity against a
// fixed threshold instead of counting per-sink, so the sampled subset
// is also shard-count-invariant.
package obs

import (
	"fmt"
	"strings"

	"abm/internal/obs/hist"
	"abm/internal/units"
)

// Kind classifies one traced event.
type Kind uint8

// Event kinds. The first block narrates the model (deterministic); the
// engine block narrates the parallel run itself (wall-clock-dependent).
const (
	// KindAdmit is one MMU admission decision with its full Eq. 9
	// context (B−Q(t), n_p, mu/b, alpha_p, threshold, verdict).
	KindAdmit Kind = iota
	// KindEnqueue is a successful enqueue (queue length after).
	KindEnqueue
	// KindDequeue is a dequeue at the port scheduler: transmitted, or
	// discarded by a sojourn-based AQM (Codel).
	KindDequeue
	// KindMark is an ECN mark applied at admission.
	KindMark
	// KindTimeout is a retransmission-timeout fire at a sender.
	KindTimeout
	// KindCwndCut is a fast-retransmit window reduction at a sender.
	KindCwndCut
	// KindHybridDemote is a flow leaving the packet engine for fluid
	// mode (hybrid engine).
	KindHybridDemote
	// KindHybridPromote is a flow reconstructed back into the packet
	// engine from its fluid trajectory.
	KindHybridPromote
	// KindWindow is one lookahead window executed by one shard.
	KindWindow
	// KindBarrier is one coordinator barrier (mailbox merge + wait).
	KindBarrier

	numKinds
)

var kindNames = [numKinds]string{
	"admit", "enqueue", "dequeue", "mark", "timeout", "cwndcut",
	"hybrid-demote", "hybrid-promote", "window", "barrier",
}

// String names the kind as it appears in the NDJSON "kind" field.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kind masks.
const (
	// MaskModel enables the deterministic model kinds.
	MaskModel uint32 = 1<<KindAdmit | 1<<KindEnqueue | 1<<KindDequeue |
		1<<KindMark | 1<<KindTimeout | 1<<KindCwndCut |
		1<<KindHybridDemote | 1<<KindHybridPromote
	// MaskEngine enables the parallel-engine kinds.
	MaskEngine uint32 = 1<<KindWindow | 1<<KindBarrier
	// MaskAll enables everything.
	MaskAll = MaskModel | MaskEngine

	// maskSampled marks the high-volume queue-level kinds the sampling
	// ratio applies to; rare kinds (timeouts, window cuts) and engine
	// kinds are always kept.
	maskSampled uint32 = 1<<KindAdmit | 1<<KindEnqueue | 1<<KindDequeue | 1<<KindMark
)

// ParseMask resolves a -trace-filter value: a comma-separated list of
// kind names and the aliases "model", "engine" and "all". Empty selects
// everything.
func ParseMask(s string) (uint32, error) {
	if strings.TrimSpace(s) == "" {
		return MaskAll, nil
	}
	var mask uint32
	for _, f := range strings.Split(s, ",") {
		switch f = strings.TrimSpace(f); f {
		case "":
		case "all":
			mask |= MaskAll
		case "model":
			mask |= MaskModel
		case "engine":
			mask |= MaskEngine
		default:
			found := false
			for k, name := range kindNames {
				if f == name {
					mask |= 1 << uint(k)
					found = true
					break
				}
			}
			if !found {
				return 0, fmt.Errorf("obs: unknown event kind %q (have %s, plus model/engine/all)",
					f, strings.Join(kindNames[:], ", "))
			}
		}
	}
	return mask, nil
}

// Admission verdicts. The first six mirror device.AdmitResult value for
// value (pinned by a cross-package test); the last two are dequeue
// outcomes.
const (
	VerdictAdmit uint8 = iota
	VerdictAdmitMark
	VerdictDropThreshold
	VerdictDropNoBuffer
	VerdictDropAQM
	VerdictDropAFD
	VerdictTx          // dequeue: handed to the transmitter
	VerdictDropDequeue // dequeue: discarded by a sojourn AQM

	numVerdicts
)

var verdictNames = [numVerdicts]string{
	"admit", "admit-mark", "drop-threshold", "drop-nobuffer", "drop-aqm",
	"drop-afd", "tx", "drop-dequeue",
}

// VerdictName names a verdict as it appears in NDJSON.
func VerdictName(v uint8) string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return fmt.Sprintf("verdict(%d)", v)
}

// VerdictDropped reports whether the verdict discards the packet.
func VerdictDropped(v uint8) bool {
	return v >= VerdictDropThreshold && v != VerdictTx
}

// Event is one traced occurrence. It is a single flat struct for every
// kind so the per-shard buffers are plain slices (no boxing, no
// per-event allocation); unused fields are zero. Field meaning by kind:
//
//	admit    Node/Port/Prio/Flow/Seq/Size the packet and queue; QLen the
//	         queue length before the decision, Free = B − Q(t) the
//	         remaining shared buffer, Thresh the computed Eq. 9
//	         threshold (for AFD pre-drops: the queue's last one), Alpha
//	         alpha_p, MuB the normalized drain rate mu/b, NCong n_p,
//	         Unsched the first-RTT tag, Verdict the outcome.
//	enqueue  QLen after the push.
//	dequeue  QLen after the pop, Aux the sojourn time in ps, Verdict
//	         VerdictTx or VerdictDropDequeue.
//	mark     QLen before the push of the marked packet.
//	timeout  Node the sender host, Aux the current RTO in ps, QLen the
//	         post-backoff congestion window in bytes.
//	cwndcut  Node the sender host, QLen the post-cut window in bytes.
//	hybrid-demote   Node the sender host, Flow the flow, Seq the next
//	         unsent byte at demotion, QLen the congestion window in
//	         bytes, Aux the fluid rate in bytes/s.
//	hybrid-promote  Node the sender host, Flow the flow, Seq the
//	         reconstructed next byte, QLen the reconstructed window in
//	         bytes, Aux the bytes delivered while fluid.
//	window   Node the shard, At/Dur the window bounds in sim time, Aux
//	         the events executed, Wall the wall-clock ns spent.
//	barrier  At the frontier, Aux the shards dispatched, Wall the
//	         coordinator's wall-clock wait ns.
type Event struct {
	At      units.Time
	Dur     units.Time
	Flow    uint64
	Seq     int64
	QLen    units.ByteCount
	Free    units.ByteCount
	Thresh  units.ByteCount
	Alpha   float64
	MuB     float64
	Aux     int64
	Wall    int64
	Node    int32
	Size    int32
	NCong   int32
	Port    int16
	Prio    int16
	Kind    Kind
	Verdict uint8
	Unsched bool
}

// Sink collects events and counters for one shard (or for the serial
// engine, which is one shard). A Sink is single-writer: only the owning
// shard's goroutine appends to it; merging happens after the run on the
// coordinator. A nil *Sink is the disabled instrument.
type Sink struct {
	mask   uint32
	bar53  uint64 // sampling threshold in [0, 2^53]; 1<<53 keeps all
	max    int    // event-buffer cap
	events []Event
	ctrs   [NumCtrs]Counter
	hists  *[NumHists]hist.Histogram // nil unless Options.Hists
}

// Enabled reports whether events of kind k are being recorded. It is
// the hot-path gate: callers construct an Event only when it returns
// true, so the disabled path costs one nil check and one mask test.
func (s *Sink) Enabled(k Kind) bool {
	return s != nil && s.mask&(1<<k) != 0
}

// Ctr returns the handle for counter id, nil on a nil sink. Resolved
// once at component setup; never on the hot path.
func (s *Sink) Ctr(id Ctr) *Counter {
	if s == nil {
		return nil
	}
	return &s.ctrs[id]
}

// Emit records ev. The caller must have checked Enabled(ev.Kind).
// High-volume kinds are thinned by the sampling ratio via a hash of the
// event identity — a pure function of model state, so the kept subset
// is identical at any shard count. When the per-shard buffer cap is
// reached further events are counted as dropped rather than grown
// without bound.
func (s *Sink) Emit(ev Event) {
	if s.bar53 < 1<<53 && maskSampled&(1<<ev.Kind) != 0 && sampleHash(&ev)>>11 >= s.bar53 {
		return
	}
	if len(s.events) >= s.max {
		s.ctrs[CtrTraceDropped].n++
		return
	}
	s.events = append(s.events, ev)
}

// Events returns the sink's raw buffer (shard-local order).
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	return s.events
}

// mix64 is the SplitMix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sampleHash hashes the event identity fields that survive any shard
// partition (never buffer positions or wall clocks).
func sampleHash(ev *Event) uint64 {
	h := mix64(uint64(ev.At))
	h = mix64(h ^ ev.Flow)
	h = mix64(h ^ uint64(ev.Seq))
	h = mix64(h ^ uint64(uint32(ev.Node))<<8 ^ uint64(ev.Kind))
	return h
}
