// Package hist provides the deterministic log-bucketed histogram the
// telemetry plane records distributions into: FCT slowdown per flow
// class, queue occupancy and queueing delay, admission headroom, and
// hybrid-engine residency.
//
// The bucket layout is fixed at compile time and purely integral, so a
// histogram's state is a function of the multiset of recorded values
// alone: counts are int64, merging is element-wise addition (which
// commutes), and no recording order, shard partition, or wall clock can
// change a snapshot's bytes. That is the property the shard-invariance
// tests pin: a sweep recorded at -shards 1, 2 and 4 produces identical
// snapshots.
//
// # Layout
//
// Index 0 absorbs every value <= 0. Values 1..15 get exact one-value
// buckets (the linear region — small integer measurements like
// milli-slowdowns near 1.0x resolve exactly). From 16 up, each power-
// of-two octave splits into 4 sub-buckets, giving a worst-case relative
// width of 25%. The top index is 255 (values up to 2^63-1), so the
// whole array is a flat [252]int64.
package hist

import (
	"math"
	"math/bits"
)

// NumBuckets is the fixed bucket count of every histogram: 1 bucket
// for <=0, 15 exact linear buckets, and 4*(62-4+1) log sub-buckets up
// to the top positive int64 octave.
const NumBuckets = 252

const (
	linearMax = 16 // values below this index themselves
	subPerOct = 4  // sub-buckets per power-of-two octave
)

// BucketOf maps a recorded value to its bucket index. Pure integer
// arithmetic: deterministic on every platform.
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	if v < linearMax {
		return int(v)
	}
	o := bits.Len64(uint64(v)) - 1 // octave, >= 4
	sub := int((uint64(v) >> (uint(o) - 2)) & 3)
	return linearMax + (o-4)*subPerOct + sub
}

// UpperEdge returns the largest value bucket i holds (inclusive). Edge
// 0 for the <=0 bucket; math.MaxInt64 caps the top bucket.
func UpperEdge(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i < linearMax:
		return int64(i)
	}
	k := i - linearMax
	o := uint(4 + k/subPerOct)
	sub := int64(k % subPerOct)
	if o >= 62 {
		// (4+sub+1)<<(o-2) can overflow in the top octave; the final
		// sub-bucket's edge is exactly MaxInt64.
		hi := (uint64(4+sub+1) << (o - 2)) - 1
		if hi > math.MaxInt64 {
			return math.MaxInt64
		}
		return int64(hi)
	}
	return (4+sub+1)<<(o-2) - 1
}

// Histogram is one distribution: fixed buckets, an exact count, and an
// exact sum. The zero value is ready to use. Like obs.Counter, the nil
// receiver is the disabled instrument: Record on nil is a single-branch
// no-op that inlines, so uninstrumented runs pay nothing and the hot
// path stays allocation-free (pinned by TestSteadyStateZeroAlloc).
type Histogram struct {
	counts [NumBuckets]int64
	count  int64
	sum    int64
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.counts[BucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of recorded observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the exact sum of recorded observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Add merges o into h element-wise. Addition commutes, so any merge
// order yields the same state.
func (h *Histogram) Add(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.count += o.count
	h.sum += o.sum
}

// Snapshot captures the current state as a sparse, JSON-stable value.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{}
	if h == nil {
		return s
	}
	s.Count = h.count
	s.Sum = h.sum
	for i, n := range h.counts {
		if n != 0 {
			s.Buckets = append(s.Buckets, [2]int64{int64(i), n})
		}
	}
	return s
}

// Snapshot is a histogram's serialized state: sparse [index, count]
// pairs in ascending index order plus the exact count and sum. It is
// the unit that rides in runner records and telemetry bundles, and the
// input to order-invariant merging.
type Snapshot struct {
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// Merge returns the element-wise sum of s and o, again in ascending
// index order. Merge is commutative and associative, so folding any
// permutation of shard or worker snapshots yields identical bytes.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	var h Histogram
	h.addSnapshot(s)
	h.addSnapshot(o)
	return h.Snapshot()
}

func (h *Histogram) addSnapshot(s Snapshot) {
	h.count += s.Count
	h.sum += s.Sum
	for _, b := range s.Buckets {
		if i := b[0]; i >= 0 && i < NumBuckets {
			h.counts[i] += b[1]
		}
	}
}

// Quantile returns the upper edge of the bucket holding the q-th
// quantile observation (q in [0,1]), or 0 on an empty snapshot. Rank
// arithmetic is integral, so the answer is deterministic.
func (s Snapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b[1]
		if seen >= rank {
			return UpperEdge(int(b[0]))
		}
	}
	return UpperEdge(NumBuckets - 1)
}
