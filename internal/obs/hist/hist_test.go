package hist

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestBucketLayout pins the layout: exact buckets below 16, 4
// sub-buckets per octave above, edges monotone, and every value inside
// its bucket's range.
func TestBucketLayout(t *testing.T) {
	if got := BucketOf(-5); got != 0 {
		t.Fatalf("BucketOf(-5) = %d, want 0", got)
	}
	if got := BucketOf(0); got != 0 {
		t.Fatalf("BucketOf(0) = %d, want 0", got)
	}
	for v := int64(1); v < 16; v++ {
		if got := BucketOf(v); got != int(v) {
			t.Fatalf("BucketOf(%d) = %d, want exact linear bucket", v, got)
		}
		if UpperEdge(int(v)) != v {
			t.Fatalf("UpperEdge(%d) = %d", v, UpperEdge(int(v)))
		}
	}
	if got := BucketOf(math.MaxInt64); got != NumBuckets-1 {
		t.Fatalf("BucketOf(MaxInt64) = %d, want %d", got, NumBuckets-1)
	}
	if got := UpperEdge(NumBuckets - 1); got != math.MaxInt64 {
		t.Fatalf("UpperEdge(top) = %d, want MaxInt64", got)
	}
	// Edges strictly increase and each value lands at or below its
	// bucket's upper edge but above the previous bucket's.
	for i := 1; i < NumBuckets; i++ {
		lo, hi := UpperEdge(i-1), UpperEdge(i)
		if hi <= lo {
			t.Fatalf("UpperEdge not monotone at %d: %d then %d", i, lo, hi)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for n := 0; n < 100000; n++ {
		v := int64(rng.Uint64() >> uint(rng.Intn(63)))
		i := BucketOf(v)
		if v > UpperEdge(i) || (i > 0 && v <= UpperEdge(i-1)) {
			t.Fatalf("value %d outside bucket %d (%d, %d]", v, i, UpperEdge(i-1), UpperEdge(i))
		}
		// Worst-case relative width 25% of the upper edge in the log
		// region (4 sub-buckets per octave).
		if i >= linearMax {
			lo, hi := UpperEdge(i-1), UpperEdge(i)
			if float64(hi-lo)/float64(hi) > 0.25+1e-9 {
				t.Fatalf("bucket %d too wide: (%d, %d]", i, lo, hi)
			}
		}
	}
}

// TestMergeOrderInvariant pins the merge contract: any split of a value
// stream across histograms, merged in any order, matches recording the
// whole stream into one histogram.
func TestMergeOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = int64(rng.Uint64()>>uint(rng.Intn(62))) - 10
	}
	var whole Histogram
	parts := make([]Histogram, 4)
	for i, v := range vals {
		whole.Record(v)
		parts[i%len(parts)].Record(v)
	}
	// Histogram.Add in reverse shard order.
	var merged Histogram
	for i := len(parts) - 1; i >= 0; i-- {
		merged.Add(&parts[i])
	}
	if !reflect.DeepEqual(whole.Snapshot(), merged.Snapshot()) {
		t.Fatal("Histogram.Add order changed the snapshot")
	}
	// Snapshot.Merge in a different order again.
	snap := parts[2].Snapshot().Merge(parts[0].Snapshot()).
		Merge(parts[3].Snapshot()).Merge(parts[1].Snapshot())
	if !reflect.DeepEqual(whole.Snapshot(), snap) {
		t.Fatal("Snapshot.Merge order changed the snapshot")
	}
	if whole.Count() != int64(len(vals)) {
		t.Fatalf("count %d != %d", whole.Count(), len(vals))
	}
}

// TestQuantile pins quantile semantics: the upper edge of the bucket
// holding the rank-ceil(q*n) observation.
func TestQuantile(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 10; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("p50 = %d, want 5", got)
	}
	if got := s.Quantile(0.99); got != 10 {
		t.Fatalf("p99 = %d, want 10", got)
	}
	if got := (Snapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty p50 = %d, want 0", got)
	}
	// A large value lands in a log bucket; the quantile is that
	// bucket's upper edge, within 25% above the true value.
	var big Histogram
	big.Record(1_000_000)
	q := big.Snapshot().Quantile(0.99)
	if q < 1_000_000 || float64(q) > 1_000_000*1.25 {
		t.Fatalf("log-bucket quantile %d not in [1e6, 1.25e6]", q)
	}
}

// TestSnapshotJSONRoundTrip pins the wire format bundles and records
// use.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	var h Histogram
	h.Record(-3)
	h.Record(1)
	h.Record(1)
	h.Record(300)
	s := h.Snapshot()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed snapshot: %s", data)
	}
	if s.Count != 4 || s.Sum != -3+1+1+300 {
		t.Fatalf("count/sum wrong: %+v", s)
	}
	// Nil receiver is the disabled instrument.
	var nilH *Histogram
	nilH.Record(5)
	if nilH.Count() != 0 || len(nilH.Snapshot().Buckets) != 0 {
		t.Fatal("nil histogram recorded")
	}
}
