package obs

// Ctr identifies one counter in the registry. Counters have fixed IDs
// resolved to *Counter handles at component setup, so the hot path
// performs plain integer increments — no map lookups, no atomics (each
// shard owns its Sink), no name hashing.
type Ctr uint8

// Counter IDs. The model/ block is a pure function of the simulated
// model and therefore shard-count-invariant; the engine/ block
// describes the parallel run itself (wall clocks, batch sizes) and is
// not.
const (
	// model/: packet lifecycle.
	CtrDataSent     Ctr = iota // data packets handed to a host NIC (incl. retransmits)
	CtrRetransSent             // the retransmitted subset of CtrDataSent
	CtrAckSent                 // ACK packets handed to a host NIC
	CtrDataConsumed            // data packets consumed by a receiver
	CtrAckRetired              // ACK packets retired at a sender host

	// model/: MMU admission.
	CtrAdmittedPkts
	CtrAdmittedBytes
	CtrDropThreshold
	CtrDropNoBuffer
	CtrDropAQM
	CtrDropAFD
	CtrDropDequeue     // sojourn-AQM discards at the port scheduler
	CtrDropUnscheduled // dropped packets carrying the first-RTT tag (any cause)
	CtrECNMarked
	CtrTrimmed

	// model/: transport.
	CtrRTOFired
	CtrCwndCuts
	CtrFastRetrans

	// model/: hybrid fluid/packet engine.
	CtrHybridDemotions  // flow transitions packet -> fluid
	CtrHybridPromotions // flow transitions fluid -> packet
	CtrHybridEpochs     // integration epochs executed
	CtrHybridFluidBytes // bytes delivered in fluid mode

	// engine/: parallel run. Wall-clock-dependent; excluded from the
	// shard-invariance guarantee.
	CtrWindows        // lookahead windows executed
	CtrBarriers       // coordinator barriers (mailbox flushes)
	CtrBarrierWaitNs  // coordinator wall ns blocked on shard workers
	CtrMailboxBatches // non-empty mailbox drains
	CtrMailboxEvents  // events merged across shard boundaries
	CtrTraceDropped   // events discarded by the per-shard buffer cap

	NumCtrs
)

var ctrNames = [NumCtrs]string{
	"model/data_pkts_sent",
	"model/retrans_pkts_sent",
	"model/ack_pkts_sent",
	"model/data_pkts_consumed",
	"model/ack_pkts_retired",
	"model/admitted_pkts",
	"model/admitted_bytes",
	"model/drops_threshold",
	"model/drops_nobuffer",
	"model/drops_aqm",
	"model/drops_afd",
	"model/drops_dequeue",
	"model/drops_unscheduled",
	"model/ecn_marked",
	"model/trimmed_pkts",
	"model/rto_fired",
	"model/cwnd_cuts",
	"model/fast_retrans",
	"model/hybrid_demotions",
	"model/hybrid_promotions",
	"model/hybrid_epochs",
	"model/hybrid_fluid_bytes",
	"engine/windows",
	"engine/barriers",
	"engine/barrier_wait_ns",
	"engine/mailbox_batches",
	"engine/mailbox_events",
	"engine/trace_events_dropped",
}

// Name returns the counter's export name ("model/..." or "engine/...").
func (c Ctr) Name() string { return ctrNames[c] }

// Counter is one registered counter. The nil receiver is the disabled
// instrument: Inc and Add on nil are single-branch no-ops that inline,
// so uninstrumented runs pay nothing.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.n += n
	}
}

// Get returns the current value (0 on nil).
func (c *Counter) Get() int64 {
	if c == nil {
		return 0
	}
	return c.n
}
