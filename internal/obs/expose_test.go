package obs

import (
	"testing"

	"abm/internal/obs/prom"
	"abm/internal/units"
)

// TestWritePromGolden pins the exposition format byte-for-byte: a
// hand-filled two-shard session must render exactly this text. The
// golden covers HELP/TYPE lines, the class-labeled slowdown family,
// cumulative le buckets with unit scaling, +Inf/_sum/_count, and the
// sorted model counter tail.
func TestWritePromGolden(t *testing.T) {
	sess, err := NewSession(Options{Counters: true, Hists: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Slowdowns split across shards: merging must add buckets.
	sess.ShardSink(0).Hist(HistSlowdownWS).Record(1500)
	sess.ShardSink(0).Hist(HistSlowdownWS).Record(2000)
	sess.ShardSink(1).Hist(HistSlowdownWS).Record(3000)
	sess.ShardSink(1).Hist(HistSlowdownIncast).Record(8000)
	sess.ShardSink(0).Hist(HistQueueDelay).Record(2_500_000) // 2.5us
	sess.ShardSink(1).Hist(HistAdmitHeadroom).Record(-300)   // at/past threshold
	sess.ShardSink(0).Ctr(CtrAdmittedPkts).Add(12)
	sess.ShardSink(1).Ctr(CtrAdmittedPkts).Add(30)

	var w prom.Writer
	sess.WriteProm(&w, 2*units.Millisecond)
	got := string(w.Bytes())

	const want = `# HELP abm_sim_time_seconds Simulated time of this snapshot.
# TYPE abm_sim_time_seconds gauge
abm_sim_time_seconds 0.002
# HELP abm_fct_slowdown FCT slowdown (FCT / ideal FCT) of finished flows by class.
# TYPE abm_fct_slowdown histogram
abm_fct_slowdown_bucket{class="websearch",le="1.535"} 1
abm_fct_slowdown_bucket{class="websearch",le="2.047"} 2
abm_fct_slowdown_bucket{class="websearch",le="3.071"} 3
abm_fct_slowdown_bucket{class="websearch",le="+Inf"} 3
abm_fct_slowdown_sum{class="websearch"} 6.5
abm_fct_slowdown_count{class="websearch"} 3
abm_fct_slowdown_bucket{class="incast",le="8.191"} 1
abm_fct_slowdown_bucket{class="incast",le="+Inf"} 1
abm_fct_slowdown_sum{class="incast"} 8
abm_fct_slowdown_count{class="incast"} 1
abm_fct_slowdown_bucket{class="long",le="+Inf"} 0
abm_fct_slowdown_sum{class="long"} 0
abm_fct_slowdown_count{class="long"} 0
abm_fct_slowdown_bucket{class="other",le="+Inf"} 0
abm_fct_slowdown_sum{class="other"} 0
abm_fct_slowdown_count{class="other"} 0
# HELP abm_queue_delay_seconds Per-packet queueing delay at dequeue.
# TYPE abm_queue_delay_seconds histogram
abm_queue_delay_seconds_bucket{le="2.621439e-06"} 1
abm_queue_delay_seconds_bucket{le="+Inf"} 1
abm_queue_delay_seconds_sum 2.5e-06
abm_queue_delay_seconds_count 1
# HELP abm_queue_occupancy_bytes Per-queue occupancy sampled at snapshot ticks.
# TYPE abm_queue_occupancy_bytes histogram
abm_queue_occupancy_bytes_bucket{le="+Inf"} 0
abm_queue_occupancy_bytes_sum 0
abm_queue_occupancy_bytes_count 0
# HELP abm_admit_headroom_bytes Threshold headroom (threshold - queue length) at admission.
# TYPE abm_admit_headroom_bytes histogram
abm_admit_headroom_bytes_bucket{le="0"} 1
abm_admit_headroom_bytes_bucket{le="+Inf"} 1
abm_admit_headroom_bytes_sum -300
abm_admit_headroom_bytes_count 1
# HELP abm_hybrid_residency_seconds Fluid-mode stint length at promotion (hybrid engine).
# TYPE abm_hybrid_residency_seconds histogram
abm_hybrid_residency_seconds_bucket{le="+Inf"} 0
abm_hybrid_residency_seconds_sum 0
abm_hybrid_residency_seconds_count 0
# HELP abm_hybrid_promotion_lead_bytes Bytes remaining at promotion back to packet mode.
# TYPE abm_hybrid_promotion_lead_bytes histogram
abm_hybrid_promotion_lead_bytes_bucket{le="+Inf"} 0
abm_hybrid_promotion_lead_bytes_sum 0
abm_hybrid_promotion_lead_bytes_count 0
# TYPE abm_model_admitted_pkts counter
abm_model_admitted_pkts 42
`
	if got != want {
		t.Errorf("WriteProm golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
