package obs

import (
	"sort"
	"strings"

	"abm/internal/obs/hist"
	"abm/internal/obs/prom"
	"abm/internal/units"
)

// histSeries is one exposed histogram series: the registry histogram
// behind it and its class label ("" for unlabeled single-series
// families).
type histSeries struct {
	id    HistID
	class string
}

// histFamily maps registry histograms onto one exposition family: the
// four slowdown classes share a family distinguished by a class label.
// scale divides recorded integer values into the exposed unit.
type histFamily struct {
	name, help string
	scale      float64
	series     []histSeries
}

var histFamilies = []histFamily{
	{"abm_fct_slowdown", "FCT slowdown (FCT / ideal FCT) of finished flows by class.", 1e3,
		[]histSeries{
			{HistSlowdownWS, "websearch"},
			{HistSlowdownIncast, "incast"},
			{HistSlowdownLong, "long"},
			{HistSlowdownOther, "other"},
		}},
	{"abm_queue_delay_seconds", "Per-packet queueing delay at dequeue.", 1e12,
		[]histSeries{{HistQueueDelay, ""}}},
	{"abm_queue_occupancy_bytes", "Per-queue occupancy sampled at snapshot ticks.", 1,
		[]histSeries{{HistQueueOcc, ""}}},
	{"abm_admit_headroom_bytes", "Threshold headroom (threshold - queue length) at admission.", 1,
		[]histSeries{{HistAdmitHeadroom, ""}}},
	{"abm_hybrid_residency_seconds", "Fluid-mode stint length at promotion (hybrid engine).", 1e12,
		[]histSeries{{HistHybridResidency, ""}}},
	{"abm_hybrid_promotion_lead_bytes", "Bytes remaining at promotion back to packet mode.", 1,
		[]histSeries{{HistHybridPromoLead, ""}}},
}

// WriteProm renders the session's model-side exposition: the merged
// histograms as abm_* histogram families and the model/ counters as
// abm_model_* counters, led by an abm_sim_time_seconds gauge. Engine
// counters carry wall-clock measurements and are excluded, so the
// whole exposition — like the histograms themselves — is byte-
// identical at any shard count.
func (s *Session) WriteProm(w *prom.Writer, now units.Time) {
	w.Family("abm_sim_time_seconds", "gauge", "Simulated time of this snapshot.")
	w.Sample("abm_sim_time_seconds", nil, float64(now)/1e12)
	if s == nil {
		return
	}
	if s.HistsEnabled() {
		merged := make([]hist.Snapshot, NumHists)
		for id := HistID(0); id < NumHists; id++ {
			merged[id] = s.MergedHist(id)
		}
		for _, fam := range histFamilies {
			w.Family(fam.name, "histogram", fam.help)
			for _, ser := range fam.series {
				var labels []prom.Label
				if ser.class != "" {
					labels = []prom.Label{{Name: "class", Value: ser.class}}
				}
				w.Histogram(fam.name, labels, merged[ser.id], fam.scale)
			}
		}
	}
	totals := s.Totals()
	keys := make([]string, 0, len(totals))
	for k := range totals {
		if strings.HasPrefix(k, "model/") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		name := "abm_model_" + strings.TrimPrefix(k, "model/")
		w.Family(name, "counter", "")
		w.IntSample(name, nil, totals[k])
	}
}
