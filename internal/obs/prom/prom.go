// Package prom is a hand-rolled Prometheus text-format (version 0.0.4)
// exposition writer and a tiny pull registry — no external
// dependencies, byte-deterministic output (families and samples render
// in the order the collector emits them; floats use strconv's shortest
// 'g' form), so golden tests and the shard-invariance gate can compare
// whole expositions byte for byte.
package prom

import (
	"bytes"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"abm/internal/obs/hist"
)

// Label is one name="value" pair.
type Label struct {
	Name, Value string
}

// Writer accumulates one exposition. The zero value is ready to use.
type Writer struct {
	b bytes.Buffer
}

// Bytes returns the exposition accumulated so far.
func (w *Writer) Bytes() []byte { return w.b.Bytes() }

// Family emits the # HELP and # TYPE header for one metric family.
// typ is "counter", "gauge" or "histogram".
func (w *Writer) Family(name, typ, help string) {
	if help != "" {
		w.b.WriteString("# HELP ")
		w.b.WriteString(name)
		w.b.WriteByte(' ')
		w.b.WriteString(escapeHelp(help))
		w.b.WriteByte('\n')
	}
	w.b.WriteString("# TYPE ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(typ)
	w.b.WriteByte('\n')
}

// Sample emits one sample line for a previously declared family.
func (w *Writer) Sample(name string, labels []Label, v float64) {
	w.b.WriteString(name)
	w.writeLabels(labels, "", 0)
	w.b.WriteByte(' ')
	w.writeFloat(v)
	w.b.WriteByte('\n')
}

// IntSample emits one sample with an exactly-rendered integer value.
func (w *Writer) IntSample(name string, labels []Label, v int64) {
	w.b.WriteString(name)
	w.writeLabels(labels, "", 0)
	w.b.WriteByte(' ')
	w.b.WriteString(strconv.FormatInt(v, 10))
	w.b.WriteByte('\n')
}

// Histogram emits the _bucket/_sum/_count samples for one histogram
// series from a snapshot. Recorded integer values are divided by scale
// to reach the exposed unit (e.g. 1e12 maps picoseconds to seconds,
// 1e3 maps milli-slowdowns to slowdowns); bucket edges follow the same
// mapping, so `le` values are exact shortest-form floats of the fixed
// layout in hist.
func (w *Writer) Histogram(name string, labels []Label, s hist.Snapshot, scale float64) {
	var cum int64
	for _, b := range s.Buckets {
		cum += b[1]
		le := float64(hist.UpperEdge(int(b[0]))) / scale
		w.b.WriteString(name)
		w.b.WriteString("_bucket")
		w.writeLabels(labels, "le", le)
		w.b.WriteByte(' ')
		w.b.WriteString(strconv.FormatInt(cum, 10))
		w.b.WriteByte('\n')
	}
	w.b.WriteString(name)
	w.b.WriteString("_bucket")
	w.writeLabelsInf(labels)
	w.b.WriteByte(' ')
	w.b.WriteString(strconv.FormatInt(s.Count, 10))
	w.b.WriteByte('\n')
	w.b.WriteString(name)
	w.b.WriteString("_sum")
	w.writeLabels(labels, "", 0)
	w.b.WriteByte(' ')
	w.writeFloat(float64(s.Sum) / scale)
	w.b.WriteByte('\n')
	w.b.WriteString(name)
	w.b.WriteString("_count")
	w.writeLabels(labels, "", 0)
	w.b.WriteByte(' ')
	w.b.WriteString(strconv.FormatInt(s.Count, 10))
	w.b.WriteByte('\n')
}

func (w *Writer) writeFloat(v float64) {
	w.b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

// writeLabels renders {a="b",...}; with leName set, an le label with
// the given float value is appended.
func (w *Writer) writeLabels(labels []Label, leName string, le float64) {
	if len(labels) == 0 && leName == "" {
		return
	}
	w.b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			w.b.WriteByte(',')
		}
		w.b.WriteString(l.Name)
		w.b.WriteString(`="`)
		w.b.WriteString(escapeValue(l.Value))
		w.b.WriteByte('"')
	}
	if leName != "" {
		if len(labels) > 0 {
			w.b.WriteByte(',')
		}
		w.b.WriteString(leName)
		w.b.WriteString(`="`)
		w.writeFloat(le)
		w.b.WriteByte('"')
	}
	w.b.WriteByte('}')
}

func (w *Writer) writeLabelsInf(labels []Label) {
	w.b.WriteByte('{')
	for _, l := range labels {
		w.b.WriteString(l.Name)
		w.b.WriteString(`="`)
		w.b.WriteString(escapeValue(l.Value))
		w.b.WriteString(`",`)
	}
	w.b.WriteString(`le="+Inf"}`)
}

func escapeValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// ContentType is the exposition's Content-Type header value.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Registry is a pull-model snapshot registry: collectors registered
// once render the current state into a Writer on every scrape. It is
// safe for concurrent Register/Render.
type Registry struct {
	mu         sync.Mutex
	collectors []func(*Writer)
}

// Register adds a collector. Collectors run in registration order on
// every render, so the exposition layout is stable.
func (r *Registry) Register(fn func(*Writer)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Render runs every collector and returns the exposition.
func (r *Registry) Render() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	var w Writer
	for _, fn := range r.collectors {
		fn(&w)
	}
	return w.Bytes()
}

// Handler serves the registry at GET /metrics (and any path it is
// mounted on).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", ContentType)
		rw.Write(r.Render())
	})
}
