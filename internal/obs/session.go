package obs

import (
	"path/filepath"
	"sort"
	"strings"

	"abm/internal/obs/hist"
)

// Options selects what one run records and where it lands. It is part
// of the experiment-cell JSON schema, so a run's telemetry setup is
// reproducible from its config echo. The zero value disables telemetry
// entirely (nil Session, nil Sinks, zero hot-path cost).
type Options struct {
	// EventsFile receives the merged event stream as NDJSON.
	EventsFile string `json:"events_file,omitempty"`
	// ChromeFile receives a Chrome trace-event JSON (chrome://tracing /
	// Perfetto): one counter track per port-priority queue, instant
	// events for drops/marks/timeouts, and one span track per shard.
	ChromeFile string `json:"chrome_file,omitempty"`
	// CountersFile receives the counter totals and the per-queue
	// summary TSV.
	CountersFile string `json:"counters_file,omitempty"`
	// Counters alone (no files) still activates the registry so totals
	// embed in runner records.
	Counters bool `json:"counters,omitempty"`
	// Filter is the event-kind mask (ParseMask syntax); empty records
	// every kind when an event destination is set.
	Filter string `json:"filter,omitempty"`
	// Sample keeps roughly this fraction of the high-volume queue
	// events (admit/enqueue/dequeue/mark), selected by an identity hash
	// so the subset is shard-count-invariant. <=0 or >=1 keeps all.
	Sample float64 `json:"sample,omitempty"`
	// MaxEvents caps each shard's event buffer; 0 selects 1<<20.
	// Overflow increments engine/trace_events_dropped instead of
	// growing without bound.
	MaxEvents int `json:"max_events,omitempty"`
	// PerJob marks the path fields as directories: each job of a sweep
	// or figure resolves its own file inside them via ForJob.
	PerJob bool `json:"per_job,omitempty"`
	// Hists activates the streaming histogram registry: FCT slowdown
	// per class, queue occupancy/delay, admission headroom, hybrid
	// residency. Merged totals embed in runner records like counters.
	Hists bool `json:"hists,omitempty"`
	// HistFile receives the histogram snapshot series as NDJSON ("hist"
	// record kind, one line per histogram per sim-time tick). Implies
	// Hists.
	HistFile string `json:"hist_file,omitempty"`
	// MetricsAddr serves a Prometheus text exposition of the live run
	// at http://<addr>/metrics while it executes. Implies Hists.
	MetricsAddr string `json:"metrics_addr,omitempty"`
}

// Active reports whether the options request any telemetry.
func (o Options) Active() bool {
	return o.EventsFile != "" || o.ChromeFile != "" || o.CountersFile != "" ||
		o.Counters || o.HistsActive()
}

// HistsActive reports whether the options request histogram recording.
func (o Options) HistsActive() bool {
	return o.Hists || o.HistFile != "" || o.MetricsAddr != ""
}

// ForJob resolves per-job output paths: with PerJob set, each path
// field is a directory and the job's file is named by its sanitized ID.
func (o Options) ForJob(id string) Options {
	if !o.PerJob {
		return o
	}
	name := sanitizeID(id)
	if o.EventsFile != "" {
		o.EventsFile = filepath.Join(o.EventsFile, name+".ndjson")
	}
	if o.ChromeFile != "" {
		o.ChromeFile = filepath.Join(o.ChromeFile, name+".trace.json")
	}
	if o.CountersFile != "" {
		o.CountersFile = filepath.Join(o.CountersFile, name+".tsv")
	}
	if o.HistFile != "" {
		o.HistFile = filepath.Join(o.HistFile, name+".hist.ndjson")
	}
	// A single listen address cannot be shared by concurrent jobs.
	o.MetricsAddr = ""
	o.PerJob = false
	return o
}

// sanitizeID maps a job ID to a safe file stem (the runner store's
// convention: keep [a-zA-Z0-9._=,-], everything else becomes '-').
func sanitizeID(id string) string {
	var b strings.Builder
	b.Grow(len(id))
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '=', r == ',', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return b.String()
}

// Session is one run's telemetry: one Sink per shard plus one for the
// parallel coordinator. It is created before the fabric is built and
// read after the run has drained.
type Session struct {
	opts   Options
	sinks  []*Sink
	engine *Sink
}

// NewSession builds a session for a run with the given shard count
// (1 for the serial engine). It returns nil — the disabled instrument —
// when the options request nothing.
func NewSession(o Options, shards int) (*Session, error) {
	if !o.Active() {
		return nil, nil
	}
	mask := uint32(0)
	if o.EventsFile != "" || o.ChromeFile != "" {
		var err error
		if mask, err = ParseMask(o.Filter); err != nil {
			return nil, err
		}
	}
	bar53 := uint64(1 << 53)
	if o.Sample > 0 && o.Sample < 1 {
		bar53 = uint64(o.Sample * float64(uint64(1)<<53))
	}
	max := o.MaxEvents
	if max <= 0 {
		max = 1 << 20
	}
	if shards < 1 {
		shards = 1
	}
	s := &Session{opts: o, sinks: make([]*Sink, shards)}
	for i := range s.sinks {
		s.sinks[i] = &Sink{mask: mask, bar53: bar53, max: max}
		if o.HistsActive() {
			s.sinks[i].hists = new([NumHists]hist.Histogram)
		}
	}
	s.engine = &Sink{mask: mask, bar53: bar53, max: max}
	return s, nil
}

// Options returns the session's configuration.
func (s *Session) Options() Options {
	if s == nil {
		return Options{}
	}
	return s.opts
}

// ShardSink returns shard i's sink (nil on a nil session), the handle
// wired into that shard's switches, hosts and transports.
func (s *Session) ShardSink(i int) *Sink {
	if s == nil {
		return nil
	}
	return s.sinks[i]
}

// EngineSink returns the parallel coordinator's sink (nil on a nil
// session). Only the coordinator goroutine writes it, between windows.
func (s *Session) EngineSink() *Sink {
	if s == nil {
		return nil
	}
	return s.engine
}

// MergedEvents returns every recorded event in the canonical export
// order: a stable sort of the concatenated per-shard buffers (shards
// in index order, engine last) by the identity key (At, Node, Port,
// Prio, Flow, Seq, Kind). Full-key ties necessarily concern one model
// entity, hence live in one shard's buffer, and keep that buffer's
// execution order — so the model-kind stream is byte-identical at any
// shard count.
func (s *Session) MergedEvents() []Event {
	if s == nil {
		return nil
	}
	total := 0
	for _, sk := range s.sinks {
		total += len(sk.events)
	}
	total += len(s.engine.events)
	out := make([]Event, 0, total)
	for _, sk := range s.sinks {
		out = append(out, sk.events...)
	}
	out = append(out, s.engine.events...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		if a.Prio != b.Prio {
			return a.Prio < b.Prio
		}
		if a.Flow != b.Flow {
			return a.Flow < b.Flow
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Kind < b.Kind
	})
	return out
}

// Totals sums every counter across all sinks, keyed by export name.
// Zero-valued counters are omitted. Addition commutes, so the model/
// keys are shard-count-invariant; engine/ keys carry wall clocks and
// are not.
func (s *Session) Totals() map[string]int64 {
	if s == nil {
		return nil
	}
	out := make(map[string]int64)
	add := func(sk *Sink) {
		for id := Ctr(0); id < NumCtrs; id++ {
			if v := sk.ctrs[id].n; v != 0 {
				out[id.Name()] += v
			}
		}
	}
	for _, sk := range s.sinks {
		add(sk)
	}
	add(s.engine)
	return out
}

// ModelTotals returns only the model/ counters — the shard-count-
// invariant subset the determinism tests compare.
func (s *Session) ModelTotals() map[string]int64 {
	all := s.Totals()
	for k := range all {
		if !strings.HasPrefix(k, "model/") {
			delete(all, k)
		}
	}
	return all
}
