package obs

import (
	"bufio"
	"io"
	"strconv"
)

// WriteNDJSON writes one JSON object per event, one per line, in the
// order given (use Session.MergedEvents for the canonical order). The
// schema is documented in DESIGN.md §4e and validated by
// cmd/obsvalidate; fields are emitted in a fixed order with
// shortest-round-trip float formatting, so the byte stream for model
// kinds is deterministic.
//
// Common fields: t (picoseconds), kind. Per kind:
//
//	admit    node port prio flow seq size qlen free thresh alpha mu_b
//	         ncong unsched verdict
//	enqueue  node port prio flow seq size qlen
//	dequeue  node port prio flow seq size qlen sojourn_ps verdict
//	mark     node port prio flow seq size qlen
//	timeout  node flow seq rto_ps cwnd
//	cwndcut  node flow cwnd
//	hybrid-demote   node flow seq cwnd rate (bytes/s)
//	hybrid-promote  node flow seq cwnd fluid_bytes
//	window   shard dur_ps events wall_ns
//	barrier  shards wall_ns
func WriteNDJSON(w io.Writer, events []Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 512)
	for i := range events {
		buf = appendEventJSON(buf[:0], &events[i])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// appendEventJSON renders one event; field order is fixed per kind.
func appendEventJSON(b []byte, ev *Event) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(ev.At), 10)
	b = append(b, `,"kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, '"')
	switch ev.Kind {
	case KindWindow:
		b = appendIntField(b, "shard", int64(ev.Node))
		b = appendIntField(b, "dur_ps", int64(ev.Dur))
		b = appendIntField(b, "events", ev.Aux)
		b = appendIntField(b, "wall_ns", ev.Wall)
	case KindBarrier:
		b = appendIntField(b, "shards", ev.Aux)
		b = appendIntField(b, "wall_ns", ev.Wall)
	case KindTimeout:
		b = appendIntField(b, "node", int64(ev.Node))
		b = appendUintField(b, "flow", ev.Flow)
		b = appendIntField(b, "seq", ev.Seq)
		b = appendIntField(b, "rto_ps", ev.Aux)
		b = appendIntField(b, "cwnd", int64(ev.QLen))
	case KindCwndCut:
		b = appendIntField(b, "node", int64(ev.Node))
		b = appendUintField(b, "flow", ev.Flow)
		b = appendIntField(b, "cwnd", int64(ev.QLen))
	case KindHybridDemote:
		b = appendIntField(b, "node", int64(ev.Node))
		b = appendUintField(b, "flow", ev.Flow)
		b = appendIntField(b, "seq", ev.Seq)
		b = appendIntField(b, "cwnd", int64(ev.QLen))
		b = appendIntField(b, "rate", ev.Aux)
	case KindHybridPromote:
		b = appendIntField(b, "node", int64(ev.Node))
		b = appendUintField(b, "flow", ev.Flow)
		b = appendIntField(b, "seq", ev.Seq)
		b = appendIntField(b, "cwnd", int64(ev.QLen))
		b = appendIntField(b, "fluid_bytes", ev.Aux)
	default: // admit, enqueue, dequeue, mark
		b = appendIntField(b, "node", int64(ev.Node))
		b = appendIntField(b, "port", int64(ev.Port))
		b = appendIntField(b, "prio", int64(ev.Prio))
		b = appendUintField(b, "flow", ev.Flow)
		b = appendIntField(b, "seq", ev.Seq)
		b = appendIntField(b, "size", int64(ev.Size))
		b = appendIntField(b, "qlen", int64(ev.QLen))
		switch ev.Kind {
		case KindAdmit:
			b = appendIntField(b, "free", int64(ev.Free))
			b = appendIntField(b, "thresh", int64(ev.Thresh))
			b = appendFloatField(b, "alpha", ev.Alpha)
			b = appendFloatField(b, "mu_b", ev.MuB)
			b = appendIntField(b, "ncong", int64(ev.NCong))
			b = append(b, `,"unsched":`...)
			b = strconv.AppendBool(b, ev.Unsched)
			b = appendVerdict(b, ev.Verdict)
		case KindDequeue:
			b = appendIntField(b, "sojourn_ps", ev.Aux)
			b = appendVerdict(b, ev.Verdict)
		}
	}
	return append(b, '}')
}

func appendIntField(b []byte, name string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

func appendUintField(b []byte, name string, v uint64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendUint(b, v, 10)
}

func appendFloatField(b []byte, name string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendVerdict(b []byte, v uint8) []byte {
	b = append(b, `,"verdict":"`...)
	b = append(b, VerdictName(v)...)
	return append(b, '"')
}
