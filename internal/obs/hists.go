package obs

import (
	"sort"
	"strconv"

	"abm/internal/obs/hist"
	"abm/internal/units"
)

// HistID identifies one histogram in the registry. Like counters,
// histograms have fixed IDs resolved to *hist.Histogram handles at
// component setup, so the hot path performs plain array increments —
// no map lookups, no atomics (each shard owns its Sink), and a nil
// handle when histograms are off.
type HistID uint8

// Histogram IDs. All are model-side: pure functions of the simulated
// model, merged shard-wise by element-wise bucket addition, and
// therefore shard-count-invariant.
const (
	// FCT slowdown per flow class, recorded in milli-slowdowns
	// (slowdown x1000) when a finished flow first becomes visible to a
	// snapshot tick.
	HistSlowdownWS HistID = iota
	HistSlowdownIncast
	HistSlowdownLong
	HistSlowdownOther
	// HistQueueDelay is per-packet queueing delay in picoseconds,
	// recorded at dequeue from the enqueue timestamp.
	HistQueueDelay
	// HistQueueOcc is per-queue occupancy in bytes, sampled across
	// every fabric queue at each snapshot tick.
	HistQueueOcc
	// HistAdmitHeadroom is the Eq. 9 threshold headroom in bytes
	// (threshold - queue length) at each admission decision; values
	// <= 0 (decisions at or past the threshold) land in bucket 0.
	HistAdmitHeadroom
	// HistHybridResidency is a flow's fluid-mode stint length in
	// picoseconds, recorded at promotion.
	HistHybridResidency
	// HistHybridPromoLead is the bytes a flow still has to send at
	// promotion — how early the guard band pulled it back to packet
	// mode.
	HistHybridPromoLead

	NumHists
)

var histNames = [NumHists]string{
	"fct_slowdown_websearch",
	"fct_slowdown_incast",
	"fct_slowdown_long",
	"fct_slowdown_other",
	"queue_delay_ps",
	"queue_occupancy_bytes",
	"admit_headroom_bytes",
	"hybrid_residency_ps",
	"hybrid_promotion_lead_bytes",
}

// histUnits names each histogram's recorded unit for the NDJSON
// snapshot stream ("milli" = value x1000, "ps" = picoseconds).
var histUnits = [NumHists]string{
	"milli", "milli", "milli", "milli",
	"ps", "bytes", "bytes", "ps", "bytes",
}

// Name returns the histogram's export name.
func (h HistID) Name() string { return histNames[h] }

// Unit returns the histogram's recorded unit.
func (h HistID) Unit() string { return histUnits[h] }

// Hist returns the handle for histogram id: nil on a nil sink or when
// the session did not enable histograms — the disabled instrument,
// since hist.Histogram methods are nil-receiver-safe.
func (s *Sink) Hist(id HistID) *hist.Histogram {
	if s == nil || s.hists == nil {
		return nil
	}
	return &s.hists[id]
}

// HistsEnabled reports whether the session records histograms.
func (s *Session) HistsEnabled() bool {
	return s != nil && s.sinks[0].hists != nil
}

// MergedHist sums histogram id across every shard sink — element-wise
// bucket addition commutes, so the result is shard-count-invariant.
func (s *Session) MergedHist(id HistID) hist.Snapshot {
	var m hist.Histogram
	if s != nil {
		for _, sk := range s.sinks {
			if sk.hists != nil {
				m.Add(&sk.hists[id])
			}
		}
	}
	return m.Snapshot()
}

// HistTotals returns every non-empty merged histogram keyed by export
// name — the form that embeds in runner records and telemetry bundles.
// Nil when histograms are off or nothing was recorded.
func (s *Session) HistTotals() map[string]hist.Snapshot {
	if !s.HistsEnabled() {
		return nil
	}
	var out map[string]hist.Snapshot
	for id := HistID(0); id < NumHists; id++ {
		snap := s.MergedHist(id)
		if snap.Count == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]hist.Snapshot)
		}
		out[id.Name()] = snap
	}
	return out
}

// AppendHistJSON appends one histogram-snapshot NDJSON line (without
// the trailing newline): the "hist" record kind of the snapshot
// stream, with a fixed field order so the export is byte-stable.
func AppendHistJSON(b []byte, at units.Time, id HistID, s hist.Snapshot) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, int64(at), 10)
	b = append(b, `,"kind":"hist","name":"`...)
	b = append(b, id.Name()...)
	b = append(b, `","unit":"`...)
	b = append(b, id.Unit()...)
	b = append(b, `","count":`...)
	b = strconv.AppendInt(b, s.Count, 10)
	b = append(b, `,"sum":`...)
	b = strconv.AppendInt(b, s.Sum, 10)
	b = append(b, `,"buckets":[`...)
	for i, bk := range s.Buckets {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '[')
		b = strconv.AppendInt(b, bk[0], 10)
		b = append(b, ',')
		b = strconv.AppendInt(b, bk[1], 10)
		b = append(b, ']')
	}
	b = append(b, "]}"...)
	return b
}

// SortedHistNames returns the keys of a hist-snapshot map in sorted
// order — the stable iteration order exporters use.
func SortedHistNames(m map[string]hist.Snapshot) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
