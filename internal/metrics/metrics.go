// Package metrics collects the quantities the paper reports: flow
// completion time slowdowns (actual FCT over ideal FCT, §4.1), their
// percentiles, average throughput of long flows, and tail buffer
// occupancy sampled from the switches.
package metrics

import (
	"fmt"
	"sort"

	"abm/internal/units"
)

// FlowClass labels which workload a flow belongs to.
type FlowClass uint8

// Flow classes.
const (
	ClassWebSearch FlowClass = iota
	ClassIncast
	ClassOther
	ClassLong // steady long-flow permutation workload
)

// String renders the class.
func (c FlowClass) String() string {
	switch c {
	case ClassWebSearch:
		return "websearch"
	case ClassIncast:
		return "incast"
	case ClassLong:
		return "long"
	default:
		return "other"
	}
}

// FlowRecord is one completed (or abandoned) flow.
type FlowRecord struct {
	ID       uint64
	Class    FlowClass
	Prio     uint8
	Size     units.ByteCount
	Start    units.Time
	End      units.Time
	Ideal    units.Time
	Finished bool
}

// FCT returns the measured completion time.
func (r FlowRecord) FCT() units.Time { return r.End - r.Start }

// Slowdown returns FCT divided by the ideal FCT.
func (r FlowRecord) Slowdown() float64 {
	if r.Ideal <= 0 {
		return 0
	}
	return float64(r.FCT()) / float64(r.Ideal)
}

// Throughput returns the flow's achieved goodput.
func (r FlowRecord) Throughput() units.Rate {
	return units.RateOf(r.Size, r.FCT())
}

// Collector accumulates flow records and buffer-occupancy samples.
type Collector struct {
	Flows []FlowRecord

	// BufferSamples are per-sample total occupancy fractions in [0,1].
	BufferSamples []float64
}

// AddFlow records a completed flow.
func (c *Collector) AddFlow(r FlowRecord) { c.Flows = append(c.Flows, r) }

// SampleBuffer records one occupancy fraction observation.
func (c *Collector) SampleBuffer(frac float64) {
	c.BufferSamples = append(c.BufferSamples, frac)
}

// Filter returns the slowdowns of finished flows matching the predicate.
func (c *Collector) Filter(pred func(FlowRecord) bool) []float64 {
	var out []float64
	for _, f := range c.Flows {
		if f.Finished && (pred == nil || pred(f)) {
			out = append(out, f.Slowdown())
		}
	}
	return out
}

// ShortFlowCut is the paper's short-flow size boundary (100 KB).
const ShortFlowCut = 100 * units.Kilobyte

// ByClass selects finished flows of one class.
func ByClass(class FlowClass) func(FlowRecord) bool {
	return func(r FlowRecord) bool { return r.Class == class }
}

// ShortOf selects finished short flows of one class.
func ShortOf(class FlowClass) func(FlowRecord) bool {
	return func(r FlowRecord) bool { return r.Class == class && r.Size <= ShortFlowCut }
}

// LongOf selects finished long flows of one class.
func LongOf(class FlowClass) func(FlowRecord) bool {
	return func(r FlowRecord) bool { return r.Class == class && r.Size > ShortFlowCut }
}

// ByPrio selects finished flows of one priority.
func ByPrio(prio uint8) func(FlowRecord) bool {
	return func(r FlowRecord) bool { return r.Prio == prio }
}

// Percentile returns the p-th percentile (0..100) of vals using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile %v out of range", p))
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0]
	}
	rank := int(p/100*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// AvgThroughputFrac returns the mean goodput of finished long flows of
// the given class as a fraction of the line rate — the paper's
// "average throughput (%)" panel.
func (c *Collector) AvgThroughputFrac(class FlowClass, lineRate units.Rate) float64 {
	var fracs []float64
	for _, f := range c.Flows {
		if !f.Finished || f.Class != class || f.Size <= ShortFlowCut {
			continue
		}
		fracs = append(fracs, float64(f.Throughput())/float64(lineRate))
	}
	return Mean(fracs)
}

// FinishedCount returns how many recorded flows finished.
func (c *Collector) FinishedCount() int {
	n := 0
	for _, f := range c.Flows {
		if f.Finished {
			n++
		}
	}
	return n
}

// Summary holds the headline numbers for one experiment cell. The JSON
// tags define the schema of the runner's per-job result records.
type Summary struct {
	P99IncastSlowdown float64 `json:"p99_incast_slowdown"`
	P99ShortSlowdown  float64 `json:"p99_short_slowdown"`  // web-search short flows
	P999ShortSlowdown float64 `json:"p999_short_slowdown"` // web-search short flows
	// P999AllShortSlowdown covers short flows of every class (web-search
	// and incast) — the population §4.4 reports.
	P999AllShortSlowdown float64 `json:"p999_all_short_slowdown"`
	MedianLongSlowdown   float64 `json:"median_long_slowdown"`
	P99BufferFrac        float64 `json:"p99_buffer_frac"`
	AvgThroughputFrac    float64 `json:"avg_tput_frac"`
	Flows                int     `json:"flows"`
	Unfinished           int     `json:"unfinished"`
}

// Summarize computes the standard panel set.
func (c *Collector) Summarize(lineRate units.Rate) Summary {
	short := c.Filter(func(r FlowRecord) bool {
		return r.Class == ClassWebSearch && r.Size <= ShortFlowCut
	})
	allShort := c.Filter(func(r FlowRecord) bool { return r.Size <= ShortFlowCut })
	long := c.Filter(LongOf(ClassWebSearch))
	incast := c.Filter(ByClass(ClassIncast))
	return Summary{
		P99IncastSlowdown:    Percentile(incast, 99),
		P99ShortSlowdown:     Percentile(short, 99),
		P999ShortSlowdown:    Percentile(short, 99.9),
		P999AllShortSlowdown: Percentile(allShort, 99.9),
		MedianLongSlowdown:   Percentile(long, 50),
		P99BufferFrac:        Percentile(c.BufferSamples, 99),
		AvgThroughputFrac:    c.AvgThroughputFrac(ClassWebSearch, lineRate),
		Flows:                len(c.Flows),
		Unfinished:           len(c.Flows) - c.FinishedCount(),
	}
}
