package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"abm/internal/units"
)

func TestPercentileBasics(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	if got := Percentile(vals, 50); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := Percentile(vals, 100); got != 5 {
		t.Fatalf("p100 = %v, want 5", got)
	}
	if got := Percentile(vals, 0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := Percentile(nil, 99); got != 0 {
		t.Fatalf("empty = %v, want 0", got)
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

// Property: the percentile always equals an element of the input, and
// p99 >= p50 >= p1.
func TestPercentileProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%100) + 1
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = rng.Float64() * 1000
		}
		p1, p50, p99 := Percentile(vals, 1), Percentile(vals, 50), Percentile(vals, 99)
		if !(p1 <= p50 && p50 <= p99) {
			return false
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		found := func(x float64) bool {
			for _, v := range sorted {
				if v == x {
					return true
				}
			}
			return false
		}
		return found(p1) && found(p50) && found(p99)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	// 100 values 1..100: p99 must be 99, p99.9 must be 100.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	if got := Percentile(vals, 99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := Percentile(vals, 99.9); got != 100 {
		t.Fatalf("p99.9 = %v, want 100", got)
	}
}

func TestSlowdown(t *testing.T) {
	r := FlowRecord{Start: 0, End: 100, Ideal: 20, Finished: true}
	if got := r.Slowdown(); got != 5 {
		t.Fatalf("slowdown = %v, want 5", got)
	}
	bad := FlowRecord{Ideal: 0}
	if bad.Slowdown() != 0 {
		t.Fatal("zero-ideal slowdown must be 0")
	}
}

func TestThroughput(t *testing.T) {
	r := FlowRecord{Size: 1250, Start: 0, End: units.Microsecond}
	if got := r.Throughput(); got != 10*units.GigabitPerSec {
		t.Fatalf("throughput = %v, want 10Gbps", got)
	}
}

func collectorFixture() *Collector {
	c := &Collector{}
	// Short web-search flows with slowdowns 1..10.
	for i := 1; i <= 10; i++ {
		c.AddFlow(FlowRecord{
			ID: uint64(i), Class: ClassWebSearch, Size: 50 * units.Kilobyte,
			Start: 0, End: units.Time(i) * units.Microsecond, Ideal: units.Microsecond,
			Finished: true,
		})
	}
	// A long web-search flow at half line rate.
	c.AddFlow(FlowRecord{
		ID: 11, Class: ClassWebSearch, Size: units.Megabyte,
		Start: 0, End: 1600 * units.Microsecond, Ideal: 850 * units.Microsecond,
		Finished: true,
	})
	// Incast flows.
	for i := 0; i < 5; i++ {
		c.AddFlow(FlowRecord{
			ID: uint64(20 + i), Class: ClassIncast, Size: 30 * units.Kilobyte,
			Start: 0, End: units.Time(40+i) * units.Microsecond, Ideal: 2 * units.Microsecond,
			Finished: true,
		})
	}
	// An unfinished flow must be excluded everywhere.
	c.AddFlow(FlowRecord{ID: 99, Class: ClassIncast, Size: units.Kilobyte, Finished: false})
	return c
}

func TestFilters(t *testing.T) {
	c := collectorFixture()
	if got := len(c.Filter(ByClass(ClassIncast))); got != 5 {
		t.Fatalf("incast filter: %d, want 5 (unfinished excluded)", got)
	}
	if got := len(c.Filter(ShortOf(ClassWebSearch))); got != 10 {
		t.Fatalf("short filter: %d, want 10", got)
	}
	if got := len(c.Filter(LongOf(ClassWebSearch))); got != 1 {
		t.Fatalf("long filter: %d, want 1", got)
	}
	if got := len(c.Filter(nil)); got != 16 {
		t.Fatalf("nil filter: %d, want all finished (16)", got)
	}
	if got := len(c.Filter(ByPrio(3))); got != 0 {
		t.Fatalf("prio filter: %d, want 0", got)
	}
}

func TestSummarize(t *testing.T) {
	c := collectorFixture()
	c.SampleBuffer(0.2)
	c.SampleBuffer(0.9)
	s := c.Summarize(10 * units.GigabitPerSec)
	if s.P99ShortSlowdown != 10 {
		t.Fatalf("p99 short = %v, want 10", s.P99ShortSlowdown)
	}
	if s.P99IncastSlowdown < 20 {
		t.Fatalf("p99 incast = %v, want ~22", s.P99IncastSlowdown)
	}
	if s.P99BufferFrac != 0.9 {
		t.Fatalf("p99 buffer = %v", s.P99BufferFrac)
	}
	if s.Unfinished != 1 {
		t.Fatalf("unfinished = %d, want 1", s.Unfinished)
	}
	// The long flow: 1MB in 1.6ms = 5 Gb/s = 0.5 of line rate.
	if s.AvgThroughputFrac < 0.49 || s.AvgThroughputFrac > 0.51 {
		t.Fatalf("avg throughput frac = %v, want ~0.5", s.AvgThroughputFrac)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %v", got)
	}
}

func TestClassString(t *testing.T) {
	if ClassWebSearch.String() != "websearch" || ClassIncast.String() != "incast" || ClassOther.String() != "other" {
		t.Fatal("class strings wrong")
	}
}
