// Package randutil provides the random distributions used by the
// workload generators: exponential inter-arrival times for Poisson
// processes and empirical CDFs for flow-size distributions such as the
// web-search workload.
package randutil

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"abm/internal/units"
)

// splitMixGamma is the golden-ratio increment of the SplitMix64
// sequence (Steele, Lea & Flood, OOPSLA 2014).
const splitMixGamma = 0x9e3779b97f4a7c15

// SplitMix64 returns the index-th output of the SplitMix64 pseudo-random
// sequence seeded with seed. Outputs for distinct (seed, index) pairs
// are statistically independent, which makes the function the standard
// way to derive per-job seeds from one plan seed: the derivation depends
// only on the job's position, never on scheduling order or worker count.
func SplitMix64(seed, index uint64) uint64 {
	z := seed + (index+1)*splitMixGamma
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed maps one base seed and a job index to a positive int64
// simulation seed via SplitMix64.
func DeriveSeed(seed int64, index int) int64 {
	v := int64(SplitMix64(uint64(seed), uint64(index)) &^ (1 << 63))
	if v == 0 {
		v = 1
	}
	return v
}

// Exponential samples an exponentially distributed duration with the
// given mean. It panics on a non-positive mean.
func Exponential(rng *rand.Rand, mean units.Time) units.Time {
	if mean <= 0 {
		panic("randutil: exponential mean must be positive")
	}
	x := rng.ExpFloat64() * float64(mean)
	if x > math.MaxInt64/2 {
		x = math.MaxInt64 / 2
	}
	return units.Time(x)
}

// CDFPoint is one step of an empirical cumulative distribution: value v
// has cumulative probability P.
type CDFPoint struct {
	Value float64
	P     float64
}

// EmpiricalCDF samples from a piecewise-linear empirical CDF, the
// standard way datacenter simulators encode measured flow-size
// distributions.
type EmpiricalCDF struct {
	points []CDFPoint
	mean   float64
}

// NewEmpiricalCDF validates and builds a CDF. Points must be sorted by
// value, have nondecreasing probabilities, and end at P=1.
func NewEmpiricalCDF(points []CDFPoint) (*EmpiricalCDF, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("randutil: empty CDF")
	}
	for i, pt := range points {
		if pt.P < 0 || pt.P > 1 {
			return nil, fmt.Errorf("randutil: probability %v out of range at %d", pt.P, i)
		}
		if pt.Value < 0 {
			return nil, fmt.Errorf("randutil: negative value %v at %d", pt.Value, i)
		}
		if i > 0 {
			if pt.Value < points[i-1].Value {
				return nil, fmt.Errorf("randutil: values not sorted at %d", i)
			}
			if pt.P < points[i-1].P {
				return nil, fmt.Errorf("randutil: probabilities decrease at %d", i)
			}
		}
	}
	if last := points[len(points)-1].P; last != 1 {
		return nil, fmt.Errorf("randutil: CDF must end at 1, got %v", last)
	}
	c := &EmpiricalCDF{points: append([]CDFPoint(nil), points...)}
	c.mean = c.computeMean()
	return c, nil
}

// MustEmpiricalCDF is NewEmpiricalCDF that panics on error; used for
// compile-time-constant distributions.
func MustEmpiricalCDF(points []CDFPoint) *EmpiricalCDF {
	c, err := NewEmpiricalCDF(points)
	if err != nil {
		panic(err)
	}
	return c
}

// computeMean integrates the piecewise-linear inverse CDF.
func (c *EmpiricalCDF) computeMean() float64 {
	var mean float64
	prev := CDFPoint{Value: c.points[0].Value, P: 0}
	for _, pt := range c.points {
		dp := pt.P - prev.P
		if dp > 0 {
			mean += dp * (prev.Value + pt.Value) / 2
		}
		prev = pt
	}
	return mean
}

// Mean returns the distribution mean.
func (c *EmpiricalCDF) Mean() float64 { return c.mean }

// Min returns the smallest value in the support.
func (c *EmpiricalCDF) Min() float64 { return c.points[0].Value }

// Max returns the largest value in the support.
func (c *EmpiricalCDF) Max() float64 { return c.points[len(c.points)-1].Value }

// Sample draws one value by inverse-transform sampling with linear
// interpolation between CDF points.
func (c *EmpiricalCDF) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.Search(len(c.points), func(i int) bool { return c.points[i].P >= u })
	if i == 0 {
		return c.points[0].Value
	}
	if i >= len(c.points) {
		return c.points[len(c.points)-1].Value
	}
	lo, hi := c.points[i-1], c.points[i]
	if hi.P == lo.P {
		return hi.Value
	}
	frac := (u - lo.P) / (hi.P - lo.P)
	return lo.Value + frac*(hi.Value-lo.Value)
}

// SampleBytes draws a flow size in bytes, at least 1.
func (c *EmpiricalCDF) SampleBytes(rng *rand.Rand) units.ByteCount {
	v := units.ByteCount(math.Round(c.Sample(rng)))
	if v < 1 {
		v = 1
	}
	return v
}

// WebSearch is the web-search flow-size distribution from the DCTCP
// measurement study, as distributed with the HPCC/PowerTCP/ABM
// artifacts: heavy-tailed, with roughly half the flows under 100 KB and
// a mean around 1.6 MB. Values are bytes.
var WebSearch = MustEmpiricalCDF([]CDFPoint{
	{Value: 6_000, P: 0},
	{Value: 6_000, P: 0.15},
	{Value: 13_000, P: 0.20},
	{Value: 19_000, P: 0.30},
	{Value: 33_000, P: 0.40},
	{Value: 53_000, P: 0.53},
	{Value: 133_000, P: 0.60},
	{Value: 667_000, P: 0.70},
	{Value: 1_333_000, P: 0.80},
	{Value: 3_333_000, P: 0.90},
	{Value: 6_667_000, P: 0.97},
	{Value: 20_000_000, P: 1.00},
})

// DataMining is the data-mining flow-size distribution (Greenberg et
// al., VL2), the other canonical datacenter workload: more extreme than
// web-search — ~80% of flows under 10 KB with a multi-MB elephant tail.
// Values are bytes.
var DataMining = MustEmpiricalCDF([]CDFPoint{
	{Value: 100, P: 0},
	{Value: 300, P: 0.3},
	{Value: 1_000, P: 0.5},
	{Value: 2_000, P: 0.6},
	{Value: 10_000, P: 0.8},
	{Value: 100_000, P: 0.9},
	{Value: 1_000_000, P: 0.95},
	{Value: 10_000_000, P: 0.98},
	{Value: 100_000_000, P: 1.00},
})
