package randutil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"abm/internal/units"
)

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mean := 100 * units.Microsecond
	var sum float64
	const n = 200_000
	for i := 0; i < n; i++ {
		sum += float64(Exponential(rng, mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean))/float64(mean) > 0.02 {
		t.Errorf("empirical mean %v, want ~%v", units.Time(got), mean)
	}
}

func TestExponentialNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10_000; i++ {
		if Exponential(rng, units.Microsecond) < 0 {
			t.Fatal("negative sample")
		}
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Exponential(rand.New(rand.NewSource(1)), 0)
}

func TestNewEmpiricalCDFValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []CDFPoint
	}{
		{"empty", nil},
		{"not ending at 1", []CDFPoint{{1, 0.5}}},
		{"decreasing P", []CDFPoint{{1, 0.5}, {2, 0.4}, {3, 1}}},
		{"unsorted values", []CDFPoint{{5, 0.5}, {2, 0.7}, {9, 1}}},
		{"P out of range", []CDFPoint{{1, -0.1}, {2, 1}}},
		{"negative value", []CDFPoint{{-1, 0.2}, {2, 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewEmpiricalCDF(tc.pts); err == nil {
				t.Errorf("expected error for %s", tc.name)
			}
		})
	}
}

func TestSampleWithinSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100_000; i++ {
		v := WebSearch.Sample(rng)
		if v < WebSearch.Min() || v > WebSearch.Max() {
			t.Fatalf("sample %v outside [%v, %v]", v, WebSearch.Min(), WebSearch.Max())
		}
	}
}

func TestSampleBytesAtLeastOne(t *testing.T) {
	c := MustEmpiricalCDF([]CDFPoint{{0, 0}, {0, 1}})
	rng := rand.New(rand.NewSource(1))
	if got := c.SampleBytes(rng); got != 1 {
		t.Fatalf("SampleBytes = %v, want clamped to 1", got)
	}
}

func TestWebSearchShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 200_000
	var under100K, total int
	var sum float64
	for i := 0; i < n; i++ {
		v := WebSearch.Sample(rng)
		sum += v
		total++
		if v <= 100_000 {
			under100K++
		}
	}
	fracShort := float64(under100K) / float64(total)
	// The distribution has ~53% of flows at or below 53KB, so >50% must be
	// under 100KB (the paper's short-flow cut).
	if fracShort < 0.5 || fracShort > 0.65 {
		t.Errorf("fraction under 100KB = %.3f, want ~0.53-0.6", fracShort)
	}
	mean := sum / float64(n)
	if mean < 1e6 || mean > 2.5e6 {
		t.Errorf("mean = %.0f bytes, want ~1.6MB (heavy tail)", mean)
	}
	if math.Abs(mean-WebSearch.Mean())/WebSearch.Mean() > 0.05 {
		t.Errorf("empirical mean %.0f differs from analytic %.0f", mean, WebSearch.Mean())
	}
}

// Property: samples from any valid random CDF stay within its support,
// and quantiles are monotone in u.
func TestCDFSampleProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(rawN%8) + 2
		pts := make([]CDFPoint, n)
		v, p := 0.0, 0.0
		for i := 0; i < n; i++ {
			v += rng.Float64() * 100
			p += rng.Float64()
			pts[i] = CDFPoint{Value: v, P: p}
		}
		for i := range pts {
			pts[i].P /= p // normalize so last = 1
		}
		pts[n-1].P = 1
		c, err := NewEmpiricalCDF(pts)
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			s := c.Sample(rng)
			if s < c.Min()-1e-9 || s > c.Max()+1e-9 {
				return false
			}
		}
		return c.Mean() >= c.Min() && c.Mean() <= c.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMustEmpiricalCDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustEmpiricalCDF(nil)
}

func TestSplitMix64(t *testing.T) {
	// Reference values: the first outputs of the canonical SplitMix64
	// generator seeded with 0 (Steele, Lea & Flood; also used by JDK
	// SplittableRandom): 0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4.
	if got := SplitMix64(0, 0); got != 0xe220a8397b1dcdaf {
		t.Fatalf("SplitMix64(0,0) = %#x", got)
	}
	if got := SplitMix64(0, 1); got != 0x6e789e6aa1b965f4 {
		t.Fatalf("SplitMix64(0,1) = %#x", got)
	}
	// Distinct (seed, index) pairs give distinct outputs.
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 8; seed++ {
		for idx := uint64(0); idx < 1000; idx++ {
			v := SplitMix64(seed*1_000_000, idx)
			if seen[v] {
				t.Fatalf("collision at seed=%d idx=%d", seed, idx)
			}
			seen[v] = true
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if s <= 0 {
			t.Fatalf("DeriveSeed(42,%d) = %d, want positive", i, s)
		}
		if s != DeriveSeed(42, i) {
			t.Fatal("not deterministic")
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("seed ignored")
	}
}
