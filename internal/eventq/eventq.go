// Package eventq implements the priority queue that drives the
// discrete-event simulator: a binary min-heap of events ordered by
// firing time with insertion order as tie-break, so simultaneous events
// execute deterministically in the order they were scheduled.
package eventq

import (
	"container/heap"

	"abm/internal/units"
)

// Event is a scheduled callback. Events are created by Queue.Push and may
// be canceled; a canceled event is skipped when popped.
type Event struct {
	Time units.Time
	Fn   func()

	seq      uint64
	index    int // heap position, -1 once removed
	canceled bool
}

// Cancel marks the event so that it will not fire. Canceling an already
// fired or canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel has been called.
func (e *Event) Canceled() bool { return e.canceled }

// Scheduled reports whether the event is still in the queue.
func (e *Event) Scheduled() bool { return e.index >= 0 && !e.canceled }

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Len returns the number of events in the queue, including canceled ones
// that have not yet been popped.
func (q *Queue) Len() int { return len(q.h) }

// Push schedules fn at time t and returns the event handle.
func (q *Queue) Push(t units.Time, fn func()) *Event {
	q.seq++
	e := &Event{Time: t, Fn: fn, seq: q.seq}
	heap.Push(&q.h, e)
	return e
}

// Pop removes and returns the earliest non-canceled event, or nil if the
// queue holds no live events.
func (q *Queue) Pop() *Event {
	for len(q.h) > 0 {
		e := heap.Pop(&q.h).(*Event)
		if e.canceled {
			continue
		}
		return e
	}
	return nil
}

// Peek returns the earliest non-canceled event without removing it, or
// nil. Canceled events at the head are discarded.
func (q *Queue) Peek() *Event {
	for len(q.h) > 0 {
		if e := q.h[0]; e.canceled {
			heap.Pop(&q.h)
		} else {
			return e
		}
	}
	return nil
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
