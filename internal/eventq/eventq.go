// Package eventq implements the priority queue that drives the
// discrete-event simulator: a two-level scheduler ordered by firing
// time with insertion order as tie-break, so simultaneous events
// execute deterministically in the order they were scheduled.
//
// # Design
//
// Events live in an index-based arena ([]node) addressed by int32
// slots, so scheduling performs no per-event heap allocation and no
// interface conversions. Two structures order the slots:
//
//   - Lanes: per-source FIFO ring buffers keyed by a small integer
//     LaneID (one per switch egress port, per link, per host NIC, per
//     transport timer stream — any producer whose events are born in
//     nondecreasing time order). A push to a lane is O(1): it appends
//     to the ring and touches no heap. A 4-ary min-heap orders only
//     the lane *heads*, so its size is the number of nonempty lanes,
//     not the event population.
//   - The fallback 4-ary arena heap (the PR-2 design) holds events
//     pushed with no lane, batch injections, and the rare out-of-order
//     lane push (PushLaneArg diverts to the heap when the new time
//     precedes the lane's tail).
//
// Pop compares the lane-head minimum against the heap minimum under
// the same (time, seq) key, so the two-level split is invisible to
// callers: the pop sequence is exactly the sequence a single flat heap
// would produce. Within a lane, times are nondecreasing and the global
// push counter seq is increasing, so ring order IS (time, seq) order;
// the head of the lane-head heap is therefore the minimum over all
// lane-resident events, and the overall minimum is the smaller of the
// two structure heads. Determinism does not depend on how producers
// are assigned to lanes.
//
// Fired and discarded slots go onto a LIFO free list and are reused by
// later pushes; reuse is safe because every slot carries a generation
// counter and every Event handle captures the generation it was
// created under.
//
// # Cancel semantics
//
// Cancel is O(1): it only marks the node, and canceled nodes are
// discarded lazily when they surface as the minimum of their structure
// (heap head, or lane head at the lane-heap root). The generation
// check makes every handle operation safe and precise:
//
//   - Cancel on a fired, discarded, or already-canceled event is a
//     no-op, even if the arena slot has since been reused by a new
//     event.
//   - Scheduled reports false as soon as the event is popped, before
//     its callback runs.
//   - Canceled reports true only while the canceled node still
//     occupies the calendar; once it is lazily discarded the handle is
//     stale and Canceled reports false. Use it directly after Cancel.
//
// The zero Event handle is valid and inert: Cancel is a no-op and
// Scheduled/Canceled report false.
package eventq

import "abm/internal/units"

// node is one arena slot: the event payload plus heap bookkeeping.
type node struct {
	time units.Time
	seq  uint64    // monotonic push counter: FIFO tie-break
	fn   func(any) // callback; nil while the slot is free
	arg  any

	gen      uint32 // bumped on release; validates handles
	pos      int32  // heap position; posLane while lane-resident, -1 while free
	canceled bool
}

// pos sentinel values for nodes not resident in the fallback heap.
const (
	posFree = -1
	posLane = -2
)

// Event is a cancelable handle to a scheduled event. It is a small
// value (copy freely); the zero value is inert.
type Event struct {
	q    *Queue
	slot int32
	gen  uint32
}

// live returns the node the handle refers to, or nil if the event has
// fired, been discarded, or the handle is zero.
func (e Event) live() *node {
	if e.q == nil {
		return nil
	}
	nd := &e.q.nodes[e.slot]
	if nd.gen != e.gen {
		return nil
	}
	return nd
}

// Cancel marks the event so that it will not fire. Canceling an
// already fired, discarded, or canceled event is a no-op.
func (e Event) Cancel() {
	if nd := e.live(); nd != nil {
		nd.canceled = true
	}
}

// Canceled reports whether the event is canceled and still occupies
// the calendar (see the package comment for the post-discard caveat).
func (e Event) Canceled() bool {
	nd := e.live()
	return nd != nil && nd.canceled
}

// Scheduled reports whether the event is still pending: in the
// calendar, not canceled, and not yet popped for execution.
func (e Event) Scheduled() bool {
	nd := e.live()
	return nd != nil && !nd.canceled
}

// Time returns the event's firing time, or zero if the handle is no
// longer live.
func (e Event) Time() units.Time {
	if nd := e.live(); nd != nil {
		return nd.time
	}
	return 0
}

// LaneID names one FIFO lane of a Queue. Lane IDs are dense small
// integers handed out by NewLane; they are never reclaimed.
type LaneID int32

// lane is one per-source FIFO: a power-of-two ring of arena slots in
// nondecreasing (time, seq) order. head is a free-running index
// (masked on access); tail is the firing time of the most recently
// appended event, the in-order admission bound.
type lane struct {
	ring []int32
	head uint32
	n    uint32
	tail units.Time
}

// headSlot returns the arena slot at the lane head. The lane must be
// nonempty.
func (ln *lane) headSlot() int32 {
	return ln.ring[ln.head&uint32(len(ln.ring)-1)]
}

// grow doubles the ring (minimum 8), unwrapping the occupied region to
// the base so the mask math stays valid.
func (ln *lane) grow() {
	newCap := len(ln.ring) * 2
	if newCap == 0 {
		newCap = 8
	}
	next := make([]int32, newCap)
	mask := uint32(len(ln.ring) - 1)
	for i := uint32(0); i < ln.n; i++ {
		next[i] = ln.ring[(ln.head+i)&mask]
	}
	ln.ring, ln.head = next, 0
}

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue struct {
	nodes []node  // arena; handles index into it
	heap  []int32 // fallback 4-ary min-heap of arena slots
	free  []int32 // LIFO free slots (deterministic reuse order)
	seq   uint64

	lanes     []lane    // per-source FIFOs; LaneID indexes this
	laneHeap  []laneRef // 4-ary min-heap of nonempty lanes, keyed by head
	freeLanes []LaneID  // released lanes awaiting reuse (LIFO)
	live      int       // events in lanes + heap, including undiscarded canceled
}

// Len returns the number of events in the queue, including canceled
// ones that have not yet been discarded.
func (q *Queue) Len() int { return q.live }

// NewLane allocates a FIFO lane. Producers whose events fire in
// nondecreasing time order (a link with fixed delay, a serializing
// port, a pacing or periodic timer) should push through a private lane
// so scheduling bypasses the heap. Released lanes are reused.
func (q *Queue) NewLane() LaneID {
	if n := len(q.freeLanes); n > 0 {
		id := q.freeLanes[n-1]
		q.freeLanes = q.freeLanes[:n-1]
		return id
	}
	q.lanes = append(q.lanes, lane{})
	return LaneID(len(q.lanes) - 1)
}

// ReleaseLane returns a lane for reuse by a later NewLane. Transient
// producers (per-flow timer streams) release their lanes on completion
// so lane state does not accumulate over long runs. The lane need not
// be drained: admission is checked per push against the lane's current
// tail, so a recycled lane stays correctly ordered and any residual
// (typically canceled) events drain as simulated time reaches them.
// Lane assignment affects scheduling cost only, never pop order. The
// caller must not push through the released ID afterwards.
func (q *Queue) ReleaseLane(id LaneID) {
	q.freeLanes = append(q.freeLanes, id)
}

// callFunc adapts a no-argument callback to the node's fn/arg pair so
// that Push needs no per-event closure: a func() value is
// pointer-shaped and boxes into `any` without allocating.
func callFunc(a any) { a.(func())() }

// Push schedules fn at time t and returns the event handle.
func (q *Queue) Push(t units.Time, fn func()) Event {
	return q.PushArg(t, callFunc, fn)
}

// PushLane schedules fn at time t through the given lane; see
// PushLaneArg.
func (q *Queue) PushLane(id LaneID, t units.Time, fn func()) Event {
	return q.PushLaneArg(id, t, callFunc, fn)
}

// alloc takes a slot from the free list (or extends the arena) and
// stamps the payload. The caller links the slot into a structure.
func (q *Queue) alloc(t units.Time, fn func(any), arg any) int32 {
	q.seq++
	var slot int32
	if n := len(q.free); n > 0 {
		slot = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.nodes = append(q.nodes, node{})
		slot = int32(len(q.nodes) - 1)
	}
	nd := &q.nodes[slot]
	nd.time, nd.seq, nd.fn, nd.arg, nd.canceled = t, q.seq, fn, arg, false
	q.live++
	return slot
}

// PushArg schedules fn(arg) at time t into the fallback heap. Passing
// a long-lived fn and a pointer-shaped arg makes scheduling
// allocation-free; this is the hot path the simulator's packet
// pipeline uses.
func (q *Queue) PushArg(t units.Time, fn func(any), arg any) Event {
	slot := q.alloc(t, fn, arg)
	nd := &q.nodes[slot]
	i := len(q.heap)
	q.heap = append(q.heap, slot)
	nd.pos = int32(i)
	q.siftUp(i)
	return Event{q: q, slot: slot, gen: nd.gen}
}

// PushLaneArg schedules fn(arg) at time t through the given lane. When
// t is at or after the lane's most recent push (the overwhelmingly
// common case for per-source streams) this is O(1) amortized: an
// append to the lane's ring, plus one lane-heap insert only when the
// lane was empty. An out-of-order push falls back to the heap, so lane
// misuse costs performance, never correctness.
func (q *Queue) PushLaneArg(id LaneID, t units.Time, fn func(any), arg any) Event {
	ln := &q.lanes[id]
	if ln.n > 0 && t < ln.tail {
		return q.PushArg(t, fn, arg)
	}
	slot := q.alloc(t, fn, arg)
	nd := &q.nodes[slot]
	nd.pos = posLane
	if ln.n == uint32(len(ln.ring)) {
		ln.grow()
	}
	ln.ring[(ln.head+ln.n)&uint32(len(ln.ring)-1)] = slot
	ln.n++
	ln.tail = t
	if ln.n == 1 {
		q.lanePush(int32(id))
	}
	return Event{q: q, slot: slot, gen: nd.gen}
}

// laneRef is one lane-heap entry: the lane plus a copy of its head
// event's sort key and slot. Caching the key keeps sift comparisons
// inside the contiguous heap slice instead of chasing lane ring ->
// arena node on every compare; the copy stays valid because a queued
// node's (time, seq) never changes, and the head only changes through
// laneTakeHead, which re-keys the entry.
type laneRef struct {
	time units.Time
	seq  uint64
	li   int32
	slot int32
}

// refLess orders lane-heap entries by their cached (time, seq) key.
func refLess(a, b laneRef) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// minSrc identifies which structure holds the overall minimum.
type minSrc uint8

const (
	srcNone minSrc = iota
	srcHeap
	srcLane
)

// minHead discards canceled events at both structure heads and returns
// the location and slot of the earliest live event.
func (q *Queue) minHead() (minSrc, int32) {
	q.dropCanceledHead()
	q.dropCanceledLaneHead()
	if len(q.heap) == 0 {
		if len(q.laneHeap) == 0 {
			return srcNone, 0
		}
		return srcLane, q.laneHeap[0].slot
	}
	if len(q.laneHeap) == 0 {
		return srcHeap, q.heap[0]
	}
	hs, lr := q.heap[0], &q.laneHeap[0]
	hn := &q.nodes[hs]
	if hn.time != lr.time {
		if hn.time < lr.time {
			return srcHeap, hs
		}
	} else if hn.seq < lr.seq {
		return srcHeap, hs
	}
	return srcLane, lr.slot
}

// take detaches the minimum slot from the structure minHead reported.
// The caller must release the slot after reading its payload.
func (q *Queue) take(src minSrc) int32 {
	if src == srcHeap {
		return q.removeMin()
	}
	return q.laneTakeHead()
}

// Pop removes the earliest non-canceled event and returns its callback
// pair and firing time. ok is false if the queue holds no live events.
// The event's slot is released before returning, so handles to it stop
// reporting Scheduled even before the callback is invoked.
func (q *Queue) Pop() (fn func(any), arg any, t units.Time, ok bool) {
	src, slot := q.minHead()
	if src == srcNone {
		return nil, nil, 0, false
	}
	q.take(src)
	nd := &q.nodes[slot]
	fn, arg, t = nd.fn, nd.arg, nd.time
	q.release(slot)
	return fn, arg, t, true
}

// PopLE pops the earliest live event only if it fires at or before
// limit; otherwise the event stays queued and ok is false. It fuses
// the PeekTime+Pop pair of a bounded run loop into one head selection.
func (q *Queue) PopLE(limit units.Time) (fn func(any), arg any, t units.Time, ok bool) {
	src, slot := q.minHead()
	if src == srcNone || q.nodes[slot].time > limit {
		return nil, nil, 0, false
	}
	q.take(src)
	nd := &q.nodes[slot]
	fn, arg, t = nd.fn, nd.arg, nd.time
	q.release(slot)
	return fn, arg, t, true
}

// PopLT is PopLE with a strict bound: only events firing strictly
// before limit are popped.
func (q *Queue) PopLT(limit units.Time) (fn func(any), arg any, t units.Time, ok bool) {
	src, slot := q.minHead()
	if src == srcNone || q.nodes[slot].time >= limit {
		return nil, nil, 0, false
	}
	q.take(src)
	nd := &q.nodes[slot]
	fn, arg, t = nd.fn, nd.arg, nd.time
	q.release(slot)
	return fn, arg, t, true
}

// Item is one event of a PushBatch call: the arguments of a PushArg,
// as a value so batches can be built, sorted, and injected without
// touching the queue.
type Item struct {
	Time units.Time
	Fn   func(any)
	Arg  any
}

// PushBatch schedules every item in order: items[i] receives a lower
// sequence number than items[i+1], so a batch sorted by (time, key)
// executes in exactly that order among simultaneous events. It is the
// window-barrier injection path of the parallel engine: cross-shard
// deliveries accumulated over a lookahead window land in one call.
// Batches always target the fallback heap; lane order is a per-source
// property batches cannot claim.
//
// For small batches relative to the calendar it performs the same
// sift-up per item as Push; once a batch is large enough that
// re-heapifying the whole calendar is cheaper (k*log(n) sift work vs
// O(n+k) build), it appends every item and restores the heap property
// in one bottom-up pass.
func (q *Queue) PushBatch(items []Item) {
	k := len(items)
	if k == 0 {
		return
	}
	// Cost model: per-item sift-up does ~log4(n+k) node moves; bottom-up
	// heapify visits every slot once. Prefer heapify when k dominates
	// the existing calendar.
	if n := len(q.heap); k >= 64 && k >= n {
		q.pushBatchHeapify(items)
		return
	}
	for i := range items {
		q.PushArg(items[i].Time, items[i].Fn, items[i].Arg)
	}
}

// pushBatchHeapify appends all items and rebuilds the heap bottom-up in
// one O(n+k) pass.
func (q *Queue) pushBatchHeapify(items []Item) {
	for i := range items {
		slot := q.alloc(items[i].Time, items[i].Fn, items[i].Arg)
		q.nodes[slot].pos = int32(len(q.heap))
		q.heap = append(q.heap, slot)
	}
	for i := (len(q.heap) - 2) / 4; i >= 0; i-- {
		q.siftDown(i)
	}
}

// PeekTime returns the firing time of the earliest non-canceled event
// without removing it. Canceled events at the structure heads are
// discarded.
func (q *Queue) PeekTime() (units.Time, bool) {
	src, slot := q.minHead()
	if src == srcNone {
		return 0, false
	}
	return q.nodes[slot].time, true
}

// dropCanceledHead removes and releases canceled events sitting at the
// fallback heap head.
func (q *Queue) dropCanceledHead() {
	for len(q.heap) > 0 && q.nodes[q.heap[0]].canceled {
		q.release(q.removeMin())
	}
}

// dropCanceledLaneHead removes and releases canceled events at the
// head of the minimum lane. Canceled nodes deeper in a lane (or at the
// head of a non-minimum lane) wait until ring order surfaces them
// here, exactly as mid-heap canceled nodes wait to reach the heap
// head.
func (q *Queue) dropCanceledLaneHead() {
	for len(q.laneHeap) > 0 && q.nodes[q.laneHeap[0].slot].canceled {
		q.release(q.laneTakeHead())
	}
}

// release returns a slot to the free list, invalidating all handles to
// the event it held. fn/arg are deliberately left in place: clearing
// them costs two write barriers per event, and the values they can
// reference (prebound callbacks, pooled packets) are immortal in this
// codebase, so a stale reference pins no memory the pools would not.
func (q *Queue) release(slot int32) {
	nd := &q.nodes[slot]
	nd.gen++
	nd.pos = posFree
	nd.canceled = false
	q.free = append(q.free, slot)
	q.live--
}

// less orders arena slots by (time, seq): earliest first, FIFO among
// simultaneous events.
func (q *Queue) less(a, b int32) bool {
	na, nb := &q.nodes[a], &q.nodes[b]
	if na.time != nb.time {
		return na.time < nb.time
	}
	return na.seq < nb.seq
}

// removeMin detaches the heap root and returns its slot. The caller
// must release the slot (the node stays intact so its payload can be
// read first).
func (q *Queue) removeMin() int32 {
	h := q.heap
	slot := h[0]
	last := len(h) - 1
	if last > 0 {
		h[0] = h[last]
		q.nodes[h[0]].pos = 0
	}
	q.heap = h[:last]
	if last > 1 {
		q.siftDown(0)
	}
	return slot
}

// siftUp restores the heap property from position i toward the root.
func (q *Queue) siftUp(i int) {
	h := q.heap
	slot := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(slot, h[p]) {
			break
		}
		h[i] = h[p]
		q.nodes[h[i]].pos = int32(i)
		i = p
	}
	h[i] = slot
	q.nodes[slot].pos = int32(i)
}

// siftDown restores the heap property from position i toward the
// leaves.
func (q *Queue) siftDown(i int) {
	h := q.heap
	n := len(h)
	slot := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.less(h[c], h[best]) {
				best = c
			}
		}
		if !q.less(h[best], slot) {
			break
		}
		h[i] = h[best]
		q.nodes[h[i]].pos = int32(i)
		i = best
	}
	h[i] = slot
	q.nodes[slot].pos = int32(i)
}

// laneTakeHead detaches the head event of the minimum lane (the
// lane-heap root) and returns its slot. The caller must release the
// slot after reading its payload.
func (q *Queue) laneTakeHead() int32 {
	r := q.laneHeap[0]
	ln := &q.lanes[r.li]
	ln.head++
	ln.n--
	last := len(q.laneHeap) - 1
	if ln.n == 0 {
		q.laneHeap[0] = q.laneHeap[last]
		q.laneHeap = q.laneHeap[:last]
		last--
	} else {
		// Re-key the root from the lane's new head, then restore.
		hs := ln.headSlot()
		nd := &q.nodes[hs]
		q.laneHeap[0] = laneRef{time: nd.time, seq: nd.seq, li: r.li, slot: hs}
	}
	if last > 0 {
		q.laneSiftDown(0)
	}
	return r.slot
}

// lanePush inserts a newly nonempty lane into the lane-head heap.
func (q *Queue) lanePush(li int32) {
	hs := q.lanes[li].headSlot()
	nd := &q.nodes[hs]
	q.laneHeap = append(q.laneHeap, laneRef{time: nd.time, seq: nd.seq, li: li, slot: hs})
	q.laneSiftUp(len(q.laneHeap) - 1)
}

// laneSiftUp restores the lane-heap property from position i toward
// the root. Lane positions are not tracked: the lane heap is only ever
// modified at the root (take, canceled-head discard) or by insertion.
func (q *Queue) laneSiftUp(i int) {
	h := q.laneHeap
	r := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !refLess(r, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = r
}

// laneSiftDown restores the lane-heap property from position i toward
// the leaves.
func (q *Queue) laneSiftDown(i int) {
	h := q.laneHeap
	n := len(h)
	r := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if refLess(h[c], h[best]) {
				best = c
			}
		}
		if !refLess(h[best], r) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = r
}
