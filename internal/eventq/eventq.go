// Package eventq implements the priority queue that drives the
// discrete-event simulator: a hand-specialized 4-ary min-heap of events
// ordered by firing time with insertion order as tie-break, so
// simultaneous events execute deterministically in the order they were
// scheduled.
//
// # Design
//
// Events live in an index-based arena ([]node) and the heap orders
// int32 arena slots, so a Push performs no per-event heap allocation
// and no interface conversions (the container/heap + boxed `any`
// implementation this replaced cost one node allocation plus two
// interface conversions per event). Fired and discarded slots go onto
// a LIFO free list and are reused by later Pushes; reuse is safe
// because every slot carries a generation counter and every Event
// handle captures the generation it was created under.
//
// # Cancel semantics
//
// Cancel is O(1): it only marks the node, and the heap discards
// canceled nodes lazily when they reach the head (Pop and PeekTime
// share that discard path). The generation check makes every handle
// operation safe and precise:
//
//   - Cancel on a fired, discarded, or already-canceled event is a
//     no-op, even if the arena slot has since been reused by a new
//     event.
//   - Scheduled reports false as soon as the event is popped, before
//     its callback runs (the previous implementation left popped
//     events looking scheduled until container/heap happened to
//     overwrite their index).
//   - Canceled reports true only while the canceled node still
//     occupies the calendar; once it is lazily discarded the handle is
//     stale and Canceled reports false. Use it directly after Cancel.
//
// The zero Event handle is valid and inert: Cancel is a no-op and
// Scheduled/Canceled report false.
package eventq

import "abm/internal/units"

// node is one arena slot: the event payload plus heap bookkeeping.
type node struct {
	time units.Time
	seq  uint64    // monotonic push counter: FIFO tie-break
	fn   func(any) // callback; nil while the slot is free
	arg  any

	gen      uint32 // bumped on release; validates handles
	pos      int32  // heap position, -1 while free
	canceled bool
}

// Event is a cancelable handle to a scheduled event. It is a small
// value (copy freely); the zero value is inert.
type Event struct {
	q    *Queue
	slot int32
	gen  uint32
}

// live returns the node the handle refers to, or nil if the event has
// fired, been discarded, or the handle is zero.
func (e Event) live() *node {
	if e.q == nil {
		return nil
	}
	nd := &e.q.nodes[e.slot]
	if nd.gen != e.gen {
		return nil
	}
	return nd
}

// Cancel marks the event so that it will not fire. Canceling an
// already fired, discarded, or canceled event is a no-op.
func (e Event) Cancel() {
	if nd := e.live(); nd != nil {
		nd.canceled = true
	}
}

// Canceled reports whether the event is canceled and still occupies
// the calendar (see the package comment for the post-discard caveat).
func (e Event) Canceled() bool {
	nd := e.live()
	return nd != nil && nd.canceled
}

// Scheduled reports whether the event is still pending: in the
// calendar, not canceled, and not yet popped for execution.
func (e Event) Scheduled() bool {
	nd := e.live()
	return nd != nil && !nd.canceled
}

// Time returns the event's firing time, or zero if the handle is no
// longer live.
func (e Event) Time() units.Time {
	if nd := e.live(); nd != nil {
		return nd.time
	}
	return 0
}

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue struct {
	nodes []node  // arena; handles index into it
	heap  []int32 // 4-ary min-heap of arena slots
	free  []int32 // LIFO free slots (deterministic reuse order)
	seq   uint64
}

// Len returns the number of events in the queue, including canceled
// ones that have not yet been discarded.
func (q *Queue) Len() int { return len(q.heap) }

// callFunc adapts a no-argument callback to the node's fn/arg pair so
// that Push needs no per-event closure: a func() value is
// pointer-shaped and boxes into `any` without allocating.
func callFunc(a any) { a.(func())() }

// Push schedules fn at time t and returns the event handle.
func (q *Queue) Push(t units.Time, fn func()) Event {
	return q.PushArg(t, callFunc, fn)
}

// PushArg schedules fn(arg) at time t. Passing a long-lived fn and a
// pointer-shaped arg makes scheduling allocation-free; this is the hot
// path the simulator's packet pipeline uses.
func (q *Queue) PushArg(t units.Time, fn func(any), arg any) Event {
	q.seq++
	var slot int32
	if n := len(q.free); n > 0 {
		slot = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		q.nodes = append(q.nodes, node{})
		slot = int32(len(q.nodes) - 1)
	}
	nd := &q.nodes[slot]
	nd.time, nd.seq, nd.fn, nd.arg, nd.canceled = t, q.seq, fn, arg, false
	i := len(q.heap)
	q.heap = append(q.heap, slot)
	nd.pos = int32(i)
	q.siftUp(i)
	return Event{q: q, slot: slot, gen: nd.gen}
}

// Pop removes the earliest non-canceled event and returns its callback
// pair and firing time. ok is false if the queue holds no live events.
// The event's slot is released before returning, so handles to it stop
// reporting Scheduled even before the callback is invoked.
func (q *Queue) Pop() (fn func(any), arg any, t units.Time, ok bool) {
	q.dropCanceledHead()
	if len(q.heap) == 0 {
		return nil, nil, 0, false
	}
	slot := q.removeMin()
	nd := &q.nodes[slot]
	fn, arg, t = nd.fn, nd.arg, nd.time
	q.release(slot)
	return fn, arg, t, true
}

// Item is one event of a PushBatch call: the arguments of a PushArg,
// as a value so batches can be built, sorted, and injected without
// touching the queue.
type Item struct {
	Time units.Time
	Fn   func(any)
	Arg  any
}

// PushBatch schedules every item in order: items[i] receives a lower
// sequence number than items[i+1], so a batch sorted by (time, key)
// executes in exactly that order among simultaneous events. It is the
// window-barrier injection path of the parallel engine: cross-shard
// deliveries accumulated over a lookahead window land in one call.
//
// For small batches relative to the calendar it performs the same
// sift-up per item as Push; once a batch is large enough that
// re-heapifying the whole calendar is cheaper (k*log(n) sift work vs
// O(n+k) build), it appends every item and restores the heap property
// in one bottom-up pass.
func (q *Queue) PushBatch(items []Item) {
	k := len(items)
	if k == 0 {
		return
	}
	// Cost model: per-item sift-up does ~log4(n+k) node moves; bottom-up
	// heapify visits every slot once. Prefer heapify when k dominates
	// the existing calendar.
	if n := len(q.heap); k >= 64 && k >= n {
		q.pushBatchHeapify(items)
		return
	}
	for i := range items {
		q.PushArg(items[i].Time, items[i].Fn, items[i].Arg)
	}
}

// pushBatchHeapify appends all items and rebuilds the heap bottom-up in
// one O(n+k) pass.
func (q *Queue) pushBatchHeapify(items []Item) {
	for i := range items {
		q.seq++
		var slot int32
		if n := len(q.free); n > 0 {
			slot = q.free[n-1]
			q.free = q.free[:n-1]
		} else {
			q.nodes = append(q.nodes, node{})
			slot = int32(len(q.nodes) - 1)
		}
		nd := &q.nodes[slot]
		nd.time, nd.seq, nd.fn, nd.arg, nd.canceled = items[i].Time, q.seq, items[i].Fn, items[i].Arg, false
		nd.pos = int32(len(q.heap))
		q.heap = append(q.heap, slot)
	}
	for i := (len(q.heap) - 2) / 4; i >= 0; i-- {
		q.siftDown(i)
	}
}

// PeekTime returns the firing time of the earliest non-canceled event
// without removing it. Canceled events at the head are discarded.
func (q *Queue) PeekTime() (units.Time, bool) {
	q.dropCanceledHead()
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.nodes[q.heap[0]].time, true
}

// dropCanceledHead is the shared lazy-discard helper: it removes and
// releases canceled events sitting at the heap head so Pop and
// PeekTime always observe a live minimum.
func (q *Queue) dropCanceledHead() {
	for len(q.heap) > 0 && q.nodes[q.heap[0]].canceled {
		q.release(q.removeMin())
	}
}

// release returns a slot to the free list, invalidating all handles to
// the event it held.
func (q *Queue) release(slot int32) {
	nd := &q.nodes[slot]
	nd.gen++
	nd.fn, nd.arg = nil, nil // drop references for the GC
	nd.pos = -1
	nd.canceled = false
	q.free = append(q.free, slot)
}

// less orders arena slots by (time, seq): earliest first, FIFO among
// simultaneous events.
func (q *Queue) less(a, b int32) bool {
	na, nb := &q.nodes[a], &q.nodes[b]
	if na.time != nb.time {
		return na.time < nb.time
	}
	return na.seq < nb.seq
}

// removeMin detaches the heap root and returns its slot. The caller
// must release the slot (the node stays intact so its payload can be
// read first).
func (q *Queue) removeMin() int32 {
	h := q.heap
	slot := h[0]
	last := len(h) - 1
	if last > 0 {
		h[0] = h[last]
		q.nodes[h[0]].pos = 0
	}
	q.heap = h[:last]
	if last > 1 {
		q.siftDown(0)
	}
	return slot
}

// siftUp restores the heap property from position i toward the root.
func (q *Queue) siftUp(i int) {
	h := q.heap
	slot := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !q.less(slot, h[p]) {
			break
		}
		h[i] = h[p]
		q.nodes[h[i]].pos = int32(i)
		i = p
	}
	h[i] = slot
	q.nodes[slot].pos = int32(i)
}

// siftDown restores the heap property from position i toward the
// leaves.
func (q *Queue) siftDown(i int) {
	h := q.heap
	n := len(h)
	slot := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if q.less(h[c], h[best]) {
				best = c
			}
		}
		if !q.less(h[best], slot) {
			break
		}
		h[i] = h[best]
		q.nodes[h[i]].pos = int32(i)
		i = best
	}
	h[i] = slot
	q.nodes[slot].pos = int32(i)
}
