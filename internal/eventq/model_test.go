package eventq

import (
	"math/rand"
	"sort"
	"testing"

	"abm/internal/units"
)

// modelEvent mirrors one live event in the reference model.
type modelEvent struct {
	time     units.Time
	seq      uint64 // doubles as the event's identity
	canceled bool
}

// refModel is the sorted-slice reference implementation the two-level
// queue is checked against: a plain slice ordered by (time, seq) with
// eager removal. It has no notion of lanes — which is the point: lane
// placement must be invisible in the pop order, so the same flat model
// checks heap pushes, lane pushes, and the fallback path alike. Its
// pop order is the determinism contract.
type refModel struct {
	events []*modelEvent
}

func (m *refModel) push(t units.Time, seq uint64) *modelEvent {
	e := &modelEvent{time: t, seq: seq}
	i := sort.Search(len(m.events), func(i int) bool {
		o := m.events[i]
		if o.time != t {
			return o.time > t
		}
		return o.seq > seq
	})
	m.events = append(m.events, nil)
	copy(m.events[i+1:], m.events[i:])
	m.events[i] = e
	return e
}

func (m *refModel) pop() (*modelEvent, bool) {
	for len(m.events) > 0 {
		e := m.events[0]
		m.events = m.events[1:]
		if !e.canceled {
			return e, true
		}
	}
	return nil, false
}

// applyOps drives the real queue and the reference model through one
// random interleaving of heap pushes, in-order lane pushes,
// out-of-order lane pushes (the heap-fallback path), pops, cancels on
// live handles (heap- or lane-resident), and mid-stream lane recycling
// — failing if the pop sequences ever diverge. ops supplies one byte
// per step; times one byte of firing time per push.
func applyOps(t *testing.T, ops, times []byte) {
	t.Helper()
	var q Queue
	var model refModel
	var seq uint64
	type pair struct {
		real  Event
		model *modelEvent
	}
	var live []pair
	ti := 0
	nextTime := func() units.Time {
		if len(times) == 0 {
			return 0
		}
		b := times[ti%len(times)]
		ti++
		return units.Time(b % 97) // small range forces time collisions
	}

	// A small fixed set of lanes, recycled mid-stream by one of the
	// ops. laneTails tracks, per lane ID, an upper bound on the lane's
	// internal tail (exact whenever the last push took the lane path),
	// so the in-order op can construct pushes guaranteed to take the
	// O(1) ring path while the arbitrary-time op probabilistically
	// exercises the fallback.
	const numLanes = 4
	laneIDs := make([]LaneID, numLanes)
	for i := range laneIDs {
		laneIDs[i] = q.NewLane()
	}
	var laneTails []units.Time
	tailOf := func(id LaneID) *units.Time {
		for int(id) >= len(laneTails) {
			laneTails = append(laneTails, 0)
		}
		return &laneTails[id]
	}

	// Each pushed callback records its identity, so the check compares
	// exact pop order (identity), not just firing times — simultaneous
	// events must pop FIFO regardless of which structure holds them.
	var firedID uint64
	popBoth := func(where string, step int) bool {
		fn, arg, tm, ok := q.Pop()
		me, mok := model.pop()
		if ok != mok {
			t.Fatalf("%s %d: pop ok=%v, model ok=%v", where, step, ok, mok)
		}
		if !ok {
			return false
		}
		fn(arg)
		if tm != me.time || firedID != me.seq {
			t.Fatalf("%s %d: popped (t=%v id=%d), model (t=%v id=%d)",
				where, step, tm, firedID, me.time, me.seq)
		}
		return true
	}
	for step, op := range ops {
		switch op % 8 {
		case 0, 1: // heap push (weighted: keeps the queue populated)
			seq++
			id := seq
			tm := nextTime()
			live = append(live, pair{
				q.Push(tm, func() { firedID = id }),
				model.push(tm, seq),
			})
		case 4: // in-order lane push: guaranteed ring path
			k := laneIDs[(step*13+int(op))%numLanes]
			pt := tailOf(k)
			tm := *pt + units.Time(int(op/8)%5)
			*pt = tm
			seq++
			id := seq
			live = append(live, pair{
				q.PushLane(k, tm, func() { firedID = id }),
				model.push(tm, seq),
			})
		case 5: // arbitrary-time lane push: often out of order -> fallback
			k := laneIDs[(step*29+int(op))%numLanes]
			tm := nextTime()
			if pt := tailOf(k); tm > *pt {
				*pt = tm
			}
			seq++
			id := seq
			live = append(live, pair{
				q.PushLane(k, tm, func() { firedID = id }),
				model.push(tm, seq),
			})
		case 6: // recycle a lane; residual events must keep draining in order
			k := (step*17 + int(op)) % numLanes
			q.ReleaseLane(laneIDs[k])
			laneIDs[k] = q.NewLane()
		case 2, 7: // pop
			popBoth("step", step)
		case 3: // cancel a pseudo-random live handle (heap- or lane-resident)
			if len(live) == 0 {
				continue
			}
			i := (step*31 + int(op)) % len(live)
			live[i].real.Cancel()
			live[i].model.canceled = true
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	// Drain: remaining pop order must match exactly.
	step := 0
	for popBoth("drain", step) {
		step++
	}
	if q.Len() != 0 {
		t.Fatalf("drained queue reports Len()=%d", q.Len())
	}
}

// TestModelRandomInterleavings runs many seeded random op sequences
// through applyOps — the property-test face of the model check.
func TestModelRandomInterleavings(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(400) + 10
		ops := make([]byte, n)
		times := make([]byte, n)
		rng.Read(ops)
		rng.Read(times)
		applyOps(t, ops, times)
	}
}

// FuzzEventQueue is the fuzz face of the same model check: the fuzzer
// explores interleavings of heap pushes, lane pushes (in- and
// out-of-order), pops, cancels, and lane recycling beyond the seeded
// corpus. Run with `go test -fuzz=FuzzEventQueue ./internal/eventq`.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0, 0, 2, 3, 2}, []byte{5, 5, 1})
	f.Add([]byte{0, 1, 0, 1, 3, 3, 2, 2, 2}, []byte{9, 9, 9, 9})
	f.Add([]byte{2, 3, 0, 2, 0, 0, 3, 2, 2, 2}, []byte{0, 255, 128})
	f.Add([]byte{4, 4, 4, 2, 5, 5, 2, 2, 2}, []byte{40, 3, 80})        // lanes vs heap
	f.Add([]byte{4, 5, 3, 6, 4, 2, 3, 2, 2, 2}, []byte{96, 1, 50, 2})  // cancel + recycle
	f.Add([]byte{4, 0, 4, 0, 2, 2, 6, 5, 2, 2, 2}, []byte{7, 7, 7, 7}) // ties across structures
	f.Fuzz(func(t *testing.T, ops, times []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		applyOps(t, ops, times)
	})
}
